(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Section 7, Figures 8-15), the Theorem 6.1 sample-size curve, the
   ablations called out in DESIGN.md, and Bechamel micro-benchmarks of the
   core primitives.

   Usage: dune exec bench/main.exe --
            [--only SECTION]... [--seeds K] [--scale N] [--out DIR]
            [--trace FILE] [--compare OLD] [--tolerance PCT]

   Every section writes a stable-schema BENCH_<section>.json into the
   --out directory (default "."): the shared CLI envelope whose
   report.summary is {section, scale, seeds, metrics} with metrics a flat
   name -> number map (median over --seeds).  `--compare OLD` (a previous
   BENCH_*.json, or a directory of them) runs no benches; it prints a
   per-metric delta table against the matching files in --out and exits 1
   if any metric regressed past --tolerance percent (time metrics, named
   *_s, regress upward; quality metrics regress downward).

   Sizes are scaled down from the paper's 10k-300k testbed (see DESIGN.md,
   substitutions): the default base size is 4,000 tuples so the full
   harness finishes in minutes; pass --scale to change it.  Shapes, not
   absolute numbers, are the reproduction target; EXPERIMENTS.md records
   the comparison. *)

open Dq_relation
open Dq_cfd
open Dq_core
open Dq_workload
module Pool = Dq_parallel.Pool
module Json = Dq_obs.Json
module Trace = Dq_obs.Trace
module Deadline = Dq_fault.Deadline
module Atomic_io = Dq_fault.Atomic_io

(* ---- command line ---------------------------------------------------- *)

let valid_sections =
  [
    "fig8";
    "fig9";
    "fig10";
    "fig11";
    "fig12";
    "fig13";
    "fig14";
    "fig15";
    "thm61";
    "abl-depgraph";
    "abl-cluster";
    "abl-k";
    "parallel";
    "analyze";
    "engines";
    "serve";
    "micro";
  ]

let only = ref []

let seeds = ref [ 7 ]

let base_n = ref 4_000

let out_dir = ref "."

let compare_against = ref None

let tolerance = ref 15.0

let trace_path = ref None

(* Wall-clock budget for the whole run; checked at section boundaries, so
   a section that has started always runs to completion and its
   BENCH_*.json is whole. *)
let deadline = ref Deadline.never

let sections_ran = ref 0

let sections_skipped = ref 0

let usage () =
  Fmt.epr
    "usage: main.exe [--only SECTION]... [--seeds K] [--scale N] [--out DIR] \
     [--deadline SECS] [--trace FILE] [--compare OLD] [--tolerance PCT]@.\
     \  --only SECTION   run one section (repeatable); SECTION is one of:@.\
     \                   %s@.\
     \  --seeds K        median results over K dataset seeds (default 1)@.\
     \  --scale N        base database size in tuples (default 4000)@.\
     \  --out DIR        directory receiving the per-section BENCH_*.json \
     files (default .)@.\
     \  --deadline SECS  wall-clock budget; sections not yet started when \
     it expires are@.\
     \                   skipped (exit 4 if no section ran at all)@.\
     \  --trace FILE     write a Chrome trace-event dump of the run@.\
     \  --compare OLD    compare OLD (BENCH_*.json file or directory of \
     them) against@.\
     \                   the matching files in --out; no benches run@.\
     \  --tolerance PCT  regression threshold for --compare (default 15)@."
    (String.concat " " valid_sections)

let () =
  let rec parse = function
    | [] -> ()
    | "--only" :: name :: rest ->
      if not (List.mem name valid_sections) then begin
        Fmt.epr "unknown section %S; valid sections are:@.  %s@." name
          (String.concat " " valid_sections);
        exit 2
      end;
      only := name :: !only;
      parse rest
    | "--seeds" :: k :: rest ->
      seeds := List.init (int_of_string k) (fun i -> 7 + (13 * i));
      parse rest
    | "--scale" :: n :: rest ->
      base_n := int_of_string n;
      parse rest
    | "--out" :: dir :: rest ->
      out_dir := dir;
      parse rest
    | "--trace" :: path :: rest ->
      trace_path := Some path;
      parse rest
    | "--deadline" :: secs :: rest ->
      let s = float_of_string secs in
      if s < 0. then begin
        Fmt.epr "--deadline must be non-negative (got %g)@." s;
        exit 2
      end;
      deadline := Deadline.after s;
      parse rest
    | "--compare" :: old :: rest ->
      compare_against := Some old;
      parse rest
    | "--tolerance" :: pct :: rest ->
      tolerance := float_of_string pct;
      parse rest
    | arg :: _ ->
      Fmt.epr "unknown argument %S@." arg;
      usage ();
      exit 2
  in
  match parse (List.tl (Array.to_list Sys.argv)) with
  | () -> ()
  | exception (Failure _ | Invalid_argument _) ->
    usage ();
    exit 2

let enabled name = !only = [] || List.mem name !only

let section name title =
  if not (enabled name) then false
  else if Deadline.expired !deadline then begin
    incr sections_skipped;
    Fmt.pr "@.=== %s — skipped (deadline expired) ===@." name;
    false
  end
  else begin
    incr sections_ran;
    Fmt.pr "@.=== %s — %s ===@." name title;
    true
  end

(* ---- per-section BENCH_<section>.json --------------------------------- *)

(* The same envelope schema the CLI emits with --format json, so CI reads
   BENCH_*.json and `cfdclean ... --format json` with one parser.  The
   metrics map is flat name -> number, the unit of comparison for
   --compare: names are stable across PRs, values are medians over
   --seeds.  Names ending in _s are wall-clock seconds (lower is better);
   all others are quality/size metrics (higher is better). *)
let write_section sect metrics =
  let report =
    Dq_obs.Report.make ~engine:"bench"
      ~summary:
        [
          ("section", Json.String sect);
          ("scale", Json.Int !base_n);
          ("seeds", Json.Int (List.length !seeds));
          ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) metrics));
        ]
      ()
  in
  let doc =
    Dq_obs.Envelope.make ~request:"bench" ~ok:true
      ~report:(Dq_obs.Report.to_json report)
      ~diagnostics:[] ()
  in
  let path = Filename.concat !out_dir ("BENCH_" ^ sect ^ ".json") in
  match Atomic_io.write_file path (Json.to_string doc) with
  | () -> Fmt.pr "wrote %s@." path
  | exception Sys_error msg ->
    Fmt.epr "bench: cannot write %s: %s@." path msg;
    exit 2

(* ---- shared machinery ------------------------------------------------ *)

type outcome = { precision : float; recall : float; runtime : float }

(* The engines return results with an attached observability report; the
   bench only wants the (value, stats) pair and treats errors as fatal. *)
let engine_ok = function
  | Ok (pair, _report) -> pair
  | Error e -> failwith (Dq_error.to_string e)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let dataset ?(n = !base_n) seed =
  Datagen.generate (Datagen.default_params ~n_tuples:n ~seed ())

let dirtied ?(rate = 0.05) ?(constant_share = 0.5) ds seed =
  Noise.inject (Noise.default_params ~rate ~constant_share ~seed ()) ds

let score ds (info : Noise.info) repair runtime =
  let m =
    Metrics.evaluate ~dopt:ds.Datagen.dopt ~dirty:info.Noise.dirty ~repair
  in
  { precision = m.Metrics.precision; recall = m.Metrics.recall; runtime }

let run_batch ?(sigma = None) ds info =
  let sigma = match sigma with Some s -> s | None -> ds.Datagen.sigma in
  let (repair, _), runtime =
    time (fun () -> engine_ok (Batch_repair.repair info.Noise.dirty sigma))
  in
  assert (Violation.satisfies repair sigma);
  score ds info repair runtime

let run_inc ordering ds info =
  let (repair, _), runtime =
    time (fun () ->
        engine_ok
          (Inc_repair.repair_dirty ~ordering info.Noise.dirty ds.Datagen.sigma))
  in
  assert (Violation.satisfies repair ds.Datagen.sigma);
  score ds info repair runtime

let median xs =
  let a = Array.of_list (List.sort Float.compare xs) in
  let n = Array.length a in
  if n = 0 then 0.
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

(* Component-wise median over seeds: robust to one seed hitting a noisy
   scheduler moment, which an average would smear into every metric. *)
let over_seeds f =
  let os = List.map f !seeds in
  {
    precision = median (List.map (fun o -> o.precision) os);
    recall = median (List.map (fun o -> o.recall) os);
    runtime = median (List.map (fun o -> o.runtime) os);
  }

let pct x = 100. *. x

(* Print one table row of floats under a label. *)
let row label values =
  Fmt.pr "%-14s" label;
  List.iter (Fmt.pr " %8.1f") values;
  Fmt.pr "@."

let header label columns =
  Fmt.pr "%-14s" label;
  List.iter (fun c -> Fmt.pr " %8s" c) columns;
  Fmt.pr "@."

let noise_rates = [ 0.01; 0.03; 0.05; 0.08; 0.10 ]

(* ---- Figure 8: efficacy of CFDs vs plain FDs ------------------------- *)

let fig8 () =
  if section "fig8" "CFDs vs embedded FDs (BATCHREPAIR accuracy)" then begin
    (* three points: the FD baseline is slow (no constant anchors; see
       EXPERIMENTS.md) *)
    let rates = [ 0.02; 0.06; 0.10 ] in
    header "rho(%)" (List.map (fun r -> Fmt.str "%g" (pct r)) rates);
    let metrics = ref [] in
    let per_constraints name sigma_of =
      let prec = ref [] and rec_ = ref [] in
      List.iter
        (fun rate ->
          let o =
            over_seeds (fun seed ->
                let ds = dataset seed in
                let info = dirtied ~rate ds (seed + 1) in
                run_batch ~sigma:(Some (sigma_of ds)) ds info)
          in
          let tag = Fmt.str "%s.rho%g" name (pct rate) in
          metrics :=
            ((tag ^ ".recall", o.recall) :: (tag ^ ".prec", o.precision)
            :: !metrics);
          prec := pct o.precision :: !prec;
          rec_ := pct o.recall :: !rec_)
        rates;
      row (name ^ "/Prec") (List.rev !prec);
      row (name ^ "/Recall") (List.rev !rec_)
    in
    per_constraints "CFD" (fun ds -> ds.Datagen.sigma);
    per_constraints "FD" (fun ds ->
        Cfd.number (Cfd.embedded_fds (Array.to_list ds.Datagen.sigma)));
    write_section "fig8" (List.rev !metrics)
  end

(* ---- Figures 9, 10 and 13: accuracy and time vs noise rate ----------- *)

let algorithms =
  [
    ("BatchRepair", fun ds info -> run_batch ds info);
    ("V-IncRepair", run_inc Inc_repair.By_violations);
    ("W-IncRepair", run_inc Inc_repair.By_weight);
    ("L-IncRepair", run_inc Inc_repair.Linear);
  ]

let fig9_10_13 () =
  let want9 = enabled "fig9"
  and want10 = enabled "fig10"
  and want13 = enabled "fig13" in
  if want9 || want10 || want13 then begin
    let results =
      List.map
        (fun (name, algo) ->
          ( name,
            List.map
              (fun rate ->
                ( rate,
                  over_seeds (fun seed ->
                      let ds = dataset seed in
                      let info = dirtied ~rate ds (seed + 1) in
                      algo ds info) ))
              noise_rates ))
        algorithms
    in
    let cols = List.map (fun r -> Fmt.str "%g" (pct r)) noise_rates in
    let collect proj suffix =
      List.concat_map
        (fun (name, os) ->
          List.map
            (fun (rate, o) ->
              (Fmt.str "%s.rho%g.%s" name (pct rate) suffix, proj o))
            os)
        results
    in
    if section "fig9" "Precision vs noise rate (%)" then begin
      header "rho(%)" cols;
      List.iter
        (fun (name, os) ->
          row name (List.map (fun (_, o) -> pct o.precision) os))
        results;
      write_section "fig9" (collect (fun o -> o.precision) "prec")
    end;
    if section "fig10" "Recall vs noise rate (%)" then begin
      header "rho(%)" cols;
      List.iter
        (fun (name, os) -> row name (List.map (fun (_, o) -> pct o.recall) os))
        results;
      write_section "fig10" (collect (fun o -> o.recall) "recall")
    end;
    if section "fig13" "Runtime vs noise rate (seconds)" then begin
      header "rho(%)" cols;
      List.iter
        (fun (name, os) ->
          Fmt.pr "%-14s" name;
          List.iter (fun (_, o) -> Fmt.pr " %8.2f" o.runtime) os;
          Fmt.pr "@.")
        results;
      write_section "fig13" (collect (fun o -> o.runtime) "runtime_s")
    end
  end

(* ---- Figure 11: BATCHREPAIR scalability in |D| ----------------------- *)

let fig11 () =
  if section "fig11" "BATCHREPAIR runtime vs database size (rho = 5%)" then begin
    let sizes = List.map (fun k -> k * !base_n / 2) [ 1; 2; 3; 4; 5 ] in
    header "tuples" (List.map string_of_int sizes);
    let times =
      List.map
        (fun n ->
          ( n,
            (over_seeds (fun seed ->
                 let ds = dataset ~n seed in
                 let info = dirtied ds (seed + 1) in
                 run_batch ds info))
              .runtime ))
        sizes
    in
    Fmt.pr "%-14s" "BatchRepair";
    List.iter (fun (_, t) -> Fmt.pr " %8.2f" t) times;
    Fmt.pr "@.";
    write_section "fig11"
      (List.concat_map
         (fun (n, t) ->
           [
             (Fmt.str "BatchRepair.n%d.runtime_s" n, t);
             (Fmt.str "BatchRepair.n%d.tps" n, float_of_int n /. Float.max 1e-9 t);
           ])
         times)
  end

(* ---- Figure 12: incremental setting ---------------------------------- *)

let fig12 () =
  if
    section "fig12"
      "Incremental: runtime vs number of dirty tuples inserted into a clean \
       database"
  then begin
    let base_size = !base_n * 3 / 2 in
    let max_inserts = 70 in
    let counts = [ 10; 20; 30; 40; 50; 60; 70 ] in
    header "#inserted" (List.map string_of_int counts);
    let per_seed seed =
      (* Build a clean base plus a pool of dirty insertions. *)
      let ds = dataset ~n:(base_size + max_inserts) seed in
      let rate = float_of_int max_inserts /. float_of_int (base_size + max_inserts) in
      let info = dirtied ~rate ds (seed + 1) in
      let dirty_set = Hashtbl.create 64 in
      List.iter (fun tid -> Hashtbl.replace dirty_set tid ()) info.Noise.dirty_tids;
      let base = Relation.create Order_schema.schema in
      let pool = ref [] in
      Relation.iter
        (fun t ->
          if Hashtbl.mem dirty_set (Tuple.tid t) then pool := Tuple.copy t :: !pool
          else Relation.add base (Tuple.copy t))
        info.Noise.dirty;
      let pool = Array.of_list (List.rev !pool) in
      (ds, base, pool)
    in
    let inc_times = ref [] and batch_times = ref [] in
    List.iter
      (fun k ->
        let inc = ref [] and batch = ref [] in
        List.iter
          (fun seed ->
            let ds, base, pool = per_seed seed in
            let delta = Array.to_list (Array.sub pool 0 (min k (Array.length pool))) in
            let (_, stats) =
              engine_ok (Inc_repair.repair_inserts base delta ds.Datagen.sigma)
            in
            inc := stats.Inc_repair.runtime :: !inc;
            let whole = Relation.copy base in
            List.iter (fun t -> Relation.add whole (Tuple.copy t)) delta;
            let (_, bstats) = engine_ok (Batch_repair.repair whole ds.Datagen.sigma) in
            batch := bstats.Batch_repair.runtime :: !batch)
          !seeds;
        inc_times := (k, median !inc) :: !inc_times;
        batch_times := (k, median !batch) :: !batch_times)
      counts;
    let inc_times = List.rev !inc_times
    and batch_times = List.rev !batch_times in
    Fmt.pr "%-14s" "IncRepair";
    List.iter (fun (_, t) -> Fmt.pr " %8.2f" t) inc_times;
    Fmt.pr "@.%-14s" "BatchRepair";
    List.iter (fun (_, t) -> Fmt.pr " %8.2f" t) batch_times;
    Fmt.pr "@.";
    write_section "fig12"
      (List.map (fun (k, t) -> (Fmt.str "IncRepair.k%d.runtime_s" k, t)) inc_times
      @ List.map
          (fun (k, t) -> (Fmt.str "BatchRepair.k%d.runtime_s" k, t))
          batch_times)
  end

(* ---- Figures 14 and 15: constant vs variable CFD violations ---------- *)

let fig14_15 () =
  let want14 = enabled "fig14" and want15 = enabled "fig15" in
  if want14 || want15 then begin
    let shares = [ 0.2; 0.4; 0.6; 0.8 ] in
    let results =
      List.map
        (fun (name, algo) ->
          ( name,
            List.map
              (fun share ->
                ( share,
                  over_seeds (fun seed ->
                      let ds = dataset seed in
                      let info = dirtied ~constant_share:share ds (seed + 1) in
                      algo ds info) ))
              shares ))
        [
          ("BatchRepair", fun ds info -> run_batch ds info);
          ("IncRepair", run_inc Inc_repair.By_violations);
        ]
    in
    let cols = List.map (fun s -> Fmt.str "%g" (pct s)) shares in
    let collect proj suffix =
      List.concat_map
        (fun (name, os) ->
          List.map
            (fun (share, o) ->
              (Fmt.str "%s.c%g.%s" name (pct share) suffix, proj o))
            os)
        results
    in
    if
      section "fig14"
        "Accuracy vs %% of dirty tuples violating constant CFDs"
    then begin
      header "const(%)" cols;
      List.iter
        (fun (name, os) ->
          row (name ^ "/Prec") (List.map (fun (_, o) -> pct o.precision) os);
          row (name ^ "/Recall") (List.map (fun (_, o) -> pct o.recall) os))
        results;
      write_section "fig14"
        (collect (fun o -> o.precision) "prec"
        @ collect (fun o -> o.recall) "recall")
    end;
    if section "fig15" "Runtime vs %% constant-CFD violations (seconds)" then begin
      header "const(%)" cols;
      List.iter
        (fun (name, os) ->
          Fmt.pr "%-14s" name;
          List.iter (fun (_, o) -> Fmt.pr " %8.2f" o.runtime) os;
          Fmt.pr "@.")
        results;
      write_section "fig15" (collect (fun o -> o.runtime) "runtime_s")
    end
  end

(* ---- Theorem 6.1: Chernoff sample sizes ------------------------------ *)

let thm61 () =
  if
    section "thm61" "Chernoff sample-size bound (delta = 0.95, varying c, eps)"
  then begin
    let cs = [ 1; 5; 10; 20; 50 ] in
    header "c" (List.map string_of_int cs);
    let metrics = ref [] in
    List.iter
      (fun epsilon ->
        Fmt.pr "%-14s" (Fmt.str "eps=%.2f" epsilon);
        List.iter
          (fun c ->
            let size =
              Stats.chernoff_sample_size ~epsilon ~confidence:0.95 ~c
            in
            metrics :=
              (Fmt.str "eps%g.c%d.size" epsilon c, float_of_int size)
              :: !metrics;
            Fmt.pr " %8d" size)
          cs;
        Fmt.pr "@.")
      [ 0.01; 0.05; 0.10 ];
    write_section "thm61" (List.rev !metrics)
  end

(* ---- Ablations -------------------------------------------------------- *)

let ablation outcomes =
  List.concat_map
    (fun (label, o) ->
      [
        (label ^ ".prec", o.precision);
        (label ^ ".recall", o.recall);
        (label ^ ".runtime_s", o.runtime);
      ])
    outcomes

let ablation_depgraph () =
  if
    section "abl-depgraph"
      "BATCHREPAIR with/without the dependency-graph stratum bias"
  then begin
    header "" [ "prec"; "recall"; "seconds" ];
    let outcomes =
      List.map
        (fun (label, use_dependency_graph) ->
          let o =
            over_seeds (fun seed ->
                let ds = dataset seed in
                let info = dirtied ds (seed + 1) in
                let (repair, _), runtime =
                  time (fun () ->
                      engine_ok
                        (Batch_repair.repair ~use_dependency_graph
                           info.Noise.dirty ds.Datagen.sigma))
                in
                score ds info repair runtime)
          in
          row label [ pct o.precision; pct o.recall; o.runtime ];
          (label, o))
        [ ("with", true); ("without", false) ]
    in
    write_section "abl-depgraph" (ablation outcomes)
  end

let ablation_cluster () =
  if
    section "abl-cluster"
      "INCREPAIR with/without the cost-based cluster index"
  then begin
    header "" [ "prec"; "recall"; "seconds" ];
    let outcomes =
      List.map
        (fun (label, use_cluster_index) ->
          let o =
            over_seeds (fun seed ->
                let ds = dataset seed in
                let info = dirtied ds (seed + 1) in
                let (repair, _), runtime =
                  time (fun () ->
                      engine_ok
                        (Inc_repair.repair_dirty ~use_cluster_index
                           info.Noise.dirty ds.Datagen.sigma))
                in
                score ds info repair runtime)
          in
          row label [ pct o.precision; pct o.recall; o.runtime ];
          (label, o))
        [ ("with", true); ("without", false) ]
    in
    write_section "abl-cluster" (ablation outcomes)
  end

let ablation_k () =
  if section "abl-k" "TUPLERESOLVE: attributes fixed per greedy step (k)" then begin
    header "k" [ "prec"; "recall"; "seconds" ];
    let outcomes =
      List.map
        (fun k ->
          let o =
            over_seeds (fun seed ->
                let ds = dataset seed in
                let info = dirtied ds (seed + 1) in
                let (repair, _), runtime =
                  time (fun () ->
                      engine_ok
                        (Inc_repair.repair_dirty ~k info.Noise.dirty
                           ds.Datagen.sigma))
                in
                score ds info repair runtime)
          in
          row (string_of_int k) [ pct o.precision; pct o.recall; o.runtime ];
          (Fmt.str "k%d" k, o))
        [ 1; 2; 3 ]
    in
    write_section "abl-k" (ablation outcomes)
  end

(* ---- Parallel scaling -------------------------------------------------- *)

(* Time detection ([find_all], [vio_counts]) and the hybrid repair
   ([Inc_repair.repair_dirty], whose scoring passes parallelise but whose
   resolve loop is sequential) at several job counts and two database
   sizes.  Besides wall-clock, every run is cross-checked against the
   1-job baseline — the engine's contract is byte-identical output at any
   job count — and the whole table lands in BENCH_parallel.json so CI or
   EXPERIMENTS.md can track the curves ("identical" is 1.0 when every run
   matched its baseline). *)

type parallel_entry = {
  pe_n : int;
  pe_jobs : int;
  pe_find_all : float;
  pe_vio_counts : float;
  pe_repair : float;
  pe_identical : bool;
}

let parallel () =
  if
    section "parallel"
      "Detection and repair at several job counts (byte-identical outputs)"
  then begin
    let jobs_list = [ 1; 2; 4 ] in
    let scales = [ !base_n; 2 * !base_n ] in
    let best_of k f =
      let result = ref None and best = ref infinity in
      for _ = 1 to k do
        let r, t = time f in
        result := Some r;
        if t < !best then best := t
      done;
      (Option.get !result, !best)
    in
    (* Job-count-independent projections of each result, for the
       identity cross-check. *)
    let violations_key vs =
      List.map (fun v -> (Cfd.id (Violation.cfd_of v), Violation.tids v)) vs
    in
    let counts_key counts =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
    in
    let entries = ref [] in
    List.iter
      (fun n ->
        let ds = dataset ~n 7 in
        let info = dirtied ds 8 in
        let rel = info.Noise.dirty and sigma = ds.Datagen.sigma in
        let baseline = ref None in
        List.iter
          (fun jobs ->
            Pool.with_pool ~jobs @@ fun pool ->
            let vs, t_find =
              best_of 3 (fun () -> Violation.find_all ~pool rel sigma)
            in
            let counts, t_counts =
              best_of 3 (fun () -> Violation.vio_counts ~pool rel sigma)
            in
            let (repaired, _), t_repair =
              best_of 1 (fun () -> engine_ok (Inc_repair.repair_dirty ~pool rel sigma))
            in
            let key = (violations_key vs, counts_key counts, Csv.save_string repaired) in
            let identical =
              match !baseline with
              | None ->
                baseline := Some key;
                true
              | Some base -> base = key
            in
            entries :=
              {
                pe_n = n;
                pe_jobs = jobs;
                pe_find_all = t_find;
                pe_vio_counts = t_counts;
                pe_repair = t_repair;
                pe_identical = identical;
              }
              :: !entries)
          jobs_list)
      scales;
    let entries = List.rev !entries in
    header "n/jobs"
      (List.concat_map
         (fun c -> List.map (fun j -> Fmt.str "%s j%d" c j) jobs_list)
         [ "find"; "counts"; "repair" ]);
    List.iter
      (fun n ->
        let es = List.filter (fun e -> e.pe_n = n) entries in
        Fmt.pr "%-14s" (string_of_int n);
        List.iter (fun e -> Fmt.pr " %8.3f" e.pe_find_all) es;
        List.iter (fun e -> Fmt.pr " %8.3f" e.pe_vio_counts) es;
        List.iter (fun e -> Fmt.pr " %8.3f" e.pe_repair) es;
        Fmt.pr "@.")
      scales;
    let all_identical = List.for_all (fun e -> e.pe_identical) entries in
    if all_identical then
      Fmt.pr "outputs identical across job counts: yes@."
    else Fmt.pr "outputs identical across job counts: NO — BUG@.";
    (match List.find_opt (fun e -> e.pe_jobs = 2) entries with
    | Some e2 ->
      let e1 = List.find (fun e -> e.pe_jobs = 1 && e.pe_n = e2.pe_n) entries in
      Fmt.pr "find_all speedup at 2 jobs (n=%d): %.2fx (%d core(s) available)@."
        e2.pe_n
        (e1.pe_find_all /. e2.pe_find_all)
        (Pool.default_jobs ())
    | None -> ());
    write_section "parallel"
      (("identical", if all_identical then 1.0 else 0.0)
      :: List.concat_map
           (fun e ->
             let tag = Fmt.str "n%d.j%d" e.pe_n e.pe_jobs in
             [
               (tag ^ ".find_all_s", e.pe_find_all);
               (tag ^ ".vio_counts_s", e.pe_vio_counts);
               (tag ^ ".repair_s", e.pe_repair);
             ])
           entries)
  end

(* ---- analyze: Σ-interaction analyzer and partitioned repair ----------- *)

(* The analyzer itself is cheap; the interesting numbers are what its
   shard plan buys BATCHREPAIR on the generated workload (whose Σ carries
   the phi2/phi4 dependency cycle): byte-identical output at 1 and 4
   jobs, and fewer class-root visits across instantiation rounds — the
   re-resolution churn each full-width round pays on columns some other
   shard owns. *)
let analyze_bench () =
  if
    section "analyze" "Σ-interaction analysis and shard-partitioned repair"
  then begin
    let runs =
      List.map
        (fun seed ->
          let ds = dataset seed in
          let info = dirtied ds (seed + 1) in
          let rel = info.Noise.dirty and sigma = ds.Datagen.sigma in
          let a, t_analyze =
            time (fun () ->
                Dq_analysis.Interaction.analyze ~data:rel
                  (Relation.schema rel) sigma)
          in
          let (seq, seq_stats), t_seq =
            time (fun () -> engine_ok (Batch_repair.repair rel sigma))
          in
          let partition = a.Dq_analysis.Interaction.partition in
          let (part, part_stats), t_part =
            time (fun () -> engine_ok (Batch_repair.repair ~partition rel sigma))
          in
          let part4 =
            Pool.with_pool ~jobs:4 (fun pool ->
                fst (engine_ok (Batch_repair.repair ~pool ~partition rel sigma)))
          in
          let seq_csv = Csv.save_string seq in
          let identical =
            String.equal seq_csv (Csv.save_string part)
            && String.equal seq_csv (Csv.save_string part4)
          in
          (a, t_analyze, t_seq, seq_stats, t_part, part_stats, identical))
        !seeds
    in
    let med f = median (List.map f runs) in
    let a0, _, _, _, _, _, _ = List.hd runs in
    let n_shards = List.length a0.Dq_analysis.Interaction.shards in
    let n_cycles = List.length a0.Dq_analysis.Interaction.cycles in
    let n_osc = List.length a0.Dq_analysis.Interaction.oscillations in
    let seq_visits =
      med (fun (_, _, _, s, _, _, _) ->
          float_of_int s.Batch_repair.instantiate_visits)
    in
    let part_visits =
      med (fun (_, _, _, _, _, p, _) ->
          float_of_int p.Batch_repair.instantiate_visits)
    in
    let all_identical =
      List.for_all (fun (_, _, _, _, _, _, i) -> i) runs
    in
    Fmt.pr "shards: %d  cycles: %d  oscillation pairs: %d@." n_shards
      n_cycles n_osc;
    header "" [ "analyze"; "seq"; "part" ];
    row "time (s)"
      [
        med (fun (_, t, _, _, _, _, _) -> t) *. 1000.;
        med (fun (_, _, t, _, _, _, _) -> t) *. 1000.;
        med (fun (_, _, _, _, t, _, _) -> t) *. 1000.;
      ];
    row "inst. visits" [ 0.; seq_visits; part_visits ];
    Fmt.pr "re-resolution drop (root visits saved): %.0f@."
      (seq_visits -. part_visits);
    if all_identical then
      Fmt.pr "partitioned output identical at 1 and 4 jobs: yes@."
    else Fmt.pr "partitioned output identical at 1 and 4 jobs: NO — BUG@.";
    write_section "analyze"
      [
        ("identical", if all_identical then 1.0 else 0.0);
        ("n_shards", float_of_int n_shards);
        ("n_cycles", float_of_int n_cycles);
        ("n_oscillations", float_of_int n_osc);
        ("analyze_s", med (fun (_, t, _, _, _, _, _) -> t));
        ("seq_repair_s", med (fun (_, _, t, _, _, _, _) -> t));
        ("part_repair_s", med (fun (_, _, _, _, t, _, _) -> t));
        ( "seq_steps",
          med (fun (_, _, _, s, _, _, _) -> float_of_int s.Batch_repair.steps)
        );
        ( "part_steps",
          med (fun (_, _, _, _, _, p, _) -> float_of_int p.Batch_repair.steps)
        );
        ("seq_instantiate_visits", seq_visits);
        ("part_instantiate_visits", part_visits);
        ("reresolution_drop", seq_visits -. part_visits);
      ]
  end

(* ---- engines: pluggable repair engines head-to-head -------------------- *)

module Engine = Dq_engine.Engine

(* Batch, inc and opt-fd on the same dirty instance over the FD-only
   acyclic fragment of the workload Σ (the largest ruleset all three
   accept).  The engines are deterministic, so the cost and cell metrics
   are drift-free tripwires: any delta against the committed baseline is
   a semantic change to an engine, not noise.  Each engine is also
   re-run at 4 jobs and must reproduce its 1-job bytes and report. *)
let engines_bench () =
  if
    section "engines" "Repair engines head-to-head (batch / inc / opt-fd)"
  then begin
    let resolve name =
      match Engine.find name with
      | Ok e -> e
      | Error e -> failwith (Dq_error.to_string e)
    in
    let run (module E : Engine.ENGINE) ?pool rel sigma =
      match E.run (Engine.ctx ?pool rel sigma) with
      | Ok ((repaired, _line), report) -> (repaired, report)
      | Error e -> failwith (Dq_error.to_string e)
    in
    (* Greedily keep embedded FDs of Σ while the opt-fd fragment check
       still accepts the prefix — drops the clauses that close the
       workload's phi2/phi4 dependency cycle. *)
    let fd_fragment schema sigma =
      let (module O : Engine.ENGINE) = resolve "opt-fd" in
      let keep =
        List.fold_left
          (fun acc c ->
            let candidate = Cfd.number (List.rev (c :: acc)) in
            match O.fragment schema candidate with
            | Ok () -> c :: acc
            | Error _ -> acc)
          []
          (Cfd.embedded_fds (Array.to_list sigma))
      in
      Cfd.number (List.rev keep)
    in
    let engine_names = [ "batch"; "inc"; "opt-fd" ] in
    let per_seed seed =
      let ds = dataset seed in
      let info = dirtied ds (seed + 1) in
      let rel = info.Noise.dirty in
      let sigma = fd_fragment (Relation.schema rel) ds.Datagen.sigma in
      List.map
        (fun name ->
          let e = resolve name in
          let (repaired, report), t = time (fun () -> run e rel sigma) in
          assert (Violation.satisfies repaired sigma);
          let repaired4, report4 =
            Pool.with_pool ~jobs:4 (fun pool -> run e ~pool rel sigma)
          in
          let identical =
            String.equal (Csv.save_string repaired) (Csv.save_string repaired4)
            && Dq_obs.Report.equal report report4
          in
          ( name,
            t,
            Cost.repair_cost ~original:rel ~repair:repaired,
            float_of_int (Relation.dif rel repaired),
            identical ))
        engine_names
    in
    let runs = List.map per_seed !seeds in
    let med name proj =
      median
        (List.map
           (fun run ->
             let _, t, cost, cells, _ =
               List.find (fun (n, _, _, _, _) -> n = name) run
             in
             proj (t, cost, cells))
           runs)
    in
    let all_identical =
      List.for_all (List.for_all (fun (_, _, _, _, i) -> i)) runs
    in
    header "" [ "seconds"; "cost"; "cells" ];
    List.iter
      (fun name ->
        row name
          [
            med name (fun (t, _, _) -> t);
            med name (fun (_, c, _) -> c);
            med name (fun (_, _, cl) -> cl);
          ])
      engine_names;
    let batch_cost = med "batch" (fun (_, c, _) -> c) in
    let optfd_cost = med "opt-fd" (fun (_, c, _) -> c) in
    Fmt.pr "opt-fd cost <= batch cost: %s@."
      (if optfd_cost <= batch_cost +. 1e-9 then "yes" else "NO — BUG");
    if all_identical then
      Fmt.pr "outputs and reports identical at 1 and 4 jobs: yes@."
    else Fmt.pr "outputs and reports identical at 1 and 4 jobs: NO — BUG@.";
    write_section "engines"
      (("identical", if all_identical then 1.0 else 0.0)
      :: ( "optfd_cost_le_batch",
           if optfd_cost <= batch_cost +. 1e-9 then 1.0 else 0.0 )
      :: ("optfd_cost_saving", batch_cost -. optfd_cost)
      :: List.concat_map
           (fun name ->
             [
               (name ^ ".repair_s", med name (fun (t, _, _) -> t));
               (name ^ ".cost", med name (fun (_, c, _) -> c));
               (name ^ ".cells", med name (fun (_, _, cl) -> cl));
             ])
           engine_names)
  end

(* ---- serve: telemetry overhead ----------------------------------------- *)

module Serve = Dq_serve.Serve

(* One-shot HTTP GET against the in-process daemon; the daemon closes the
   connection after the response, so read to EOF. *)
let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\ncontent-length: 0\r\n\r\n" path
      in
      let _ = Unix.write_substring fd req 0 (String.length req) in
      let buf = Bytes.create 65536 in
      let out = Buffer.create 1024 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes out buf 0 n;
          drain ()
      in
      drain ();
      Buffer.contents out)

let http_post port path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "POST %s HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s" path
          (String.length body) body
      in
      let _ = Unix.write_substring fd req 0 (String.length req) in
      let buf = Bytes.create 65536 in
      let out = Buffer.create 1024 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes out buf 0 n;
          drain ()
      in
      drain ();
      Buffer.contents out)

(* The same request stream against a telemetry-off daemon and a
   telemetry-on one (request counters, latency histograms, gauges, ids).
   The off configuration is the zero-overhead baseline the serve tests
   pin byte-identical; the ratio is the price of turning collection on.
   overhead_ratio = off/on, so less overhead is a higher (better)
   number and --compare flags a telemetry slowdown as a regression. *)
let serve_bench () =
  if section "serve" "Serving telemetry overhead and concurrent throughput" then begin
    let requests = max 20 (!base_n / 20) in
    let per_request telemetry =
      let d =
        match
          Serve.start
            { Serve.port = 0; state_dir = None; jobs = 1; resume = false;
              telemetry; limits = Serve.default_limits }
        with
        | Ok d -> d
        | Error e -> failwith (Dq_error.to_string e)
      in
      Fun.protect
        ~finally:(fun () ->
          Serve.stop d;
          Dq_obs.Metrics.set_enabled false)
        (fun () ->
          let port = Serve.port d in
          for _ = 1 to 10 do
            ignore (http_get port "/v1/health")
          done;
          let (), t =
            time (fun () ->
                for _ = 1 to requests do
                  ignore (http_get port "/v1/health")
                done)
          in
          t /. float_of_int requests)
    in
    let runs =
      List.map
        (fun _seed ->
          (per_request Serve.telemetry_off, per_request Serve.default_telemetry))
        !seeds
    in
    let t_off = median (List.map fst runs) in
    let t_on = median (List.map snd runs) in
    header "" [ "us/req" ];
    row "off" [ t_off *. 1e6 ];
    row "on" [ t_on *. 1e6 ];
    Fmt.pr "telemetry overhead over %d requests: %+.1f%%@." requests
      (((t_on /. t_off) -. 1.) *. 100.);
    (* Two independent sessions' batch streams, first back-to-back from
       one client and then from two concurrent clients, against a daemon
       with worker domains on: per-session lanes keep each stream FIFO
       while the repair compute overlaps across sessions.  The speedup
       is the concurrency dividend --compare holds against the committed
       baseline. *)
    let expect_2xx what resp =
      if not (String.length resp > 9 && resp.[9] = '2') then
        failwith
          (Printf.sprintf "serve bench: %s did not answer 2xx: %s" what
             (String.sub resp 0 (min 64 (String.length resp))))
    in
    let create_body =
      {|{"schema":{"name":"r","attributes":["A","B","C","D"]},"rules":"p1: [A] -> [B]\np2: [C] -> [D]\n","force":true}|}
    in
    let batch_count = 6 in
    let batch_rows = max 100 (!base_n / 2) in
    let st = Random.State.make [| 0x5e21 |] in
    let batches =
      List.init batch_count (fun _ ->
          let row () =
            Printf.sprintf "[%d,%d,%d,%d]"
              (Random.State.int st 20) (Random.State.int st 200)
              (Random.State.int st 20) (Random.State.int st 200)
          in
          Printf.sprintf {|{"tuples":[%s]}|}
            (String.concat "," (List.init batch_rows (fun _ -> row ()))))
    in
    let with_conc_daemon f =
      let d =
        match
          Serve.start
            { Serve.port = 0; state_dir = None; jobs = 1; resume = false;
              telemetry = Serve.telemetry_off;
              limits = { Serve.default_limits with ingest_workers = 2 } }
        with
        | Ok d -> d
        | Error e -> failwith (Dq_error.to_string e)
      in
      Fun.protect
        ~finally:(fun () -> Serve.stop d)
        (fun () ->
          let port = Serve.port d in
          expect_2xx "create s1" (http_post port "/v1/sessions" create_body);
          expect_2xx "create s2" (http_post port "/v1/sessions" create_body);
          f port)
    in
    let post_all port sid =
      List.iter
        (fun b ->
          expect_2xx ("ingest " ^ sid)
            (http_post port ("/v1/sessions/" ^ sid ^ "/tuples") b))
        batches
    in
    let conc_runs =
      List.map
        (fun _seed ->
          let t_seq =
            with_conc_daemon (fun port ->
                let (), t =
                  time (fun () ->
                      post_all port "s1";
                      post_all port "s2")
                in
                t)
          in
          let t_conc =
            with_conc_daemon (fun port ->
                let (), t =
                  time (fun () ->
                      let ts =
                        List.map
                          (fun sid ->
                            Thread.create (fun () -> post_all port sid) ())
                          [ "s1"; "s2" ]
                      in
                      List.iter Thread.join ts)
                in
                t)
          in
          (t_seq, t_conc))
        !seeds
    in
    let t_seq = median (List.map fst conc_runs) in
    let t_conc = median (List.map snd conc_runs) in
    header "2 sessions" [ "s" ];
    row "sequential" [ t_seq ];
    row "concurrent" [ t_conc ];
    Fmt.pr
      "concurrent-sessions speedup (%d batches x %d rows each): %.2fx on %d \
       core(s)@."
      batch_count batch_rows (t_seq /. t_conc)
      (Domain.recommended_domain_count ());
    if Domain.recommended_domain_count () < 2 then
      Fmt.pr
        "  (single core: worker domains cannot overlap; expect the dividend \
         only on >= 2 cores)@.";
    write_section "serve"
      [
        ("request_s_off", t_off);
        ("request_s_on", t_on);
        ("overhead_ratio", t_off /. t_on);
        ("ingest_s_sequential", t_seq);
        ("ingest_s_concurrent", t_conc);
        ("concurrent_speedup", t_seq /. t_conc);
      ]
  end

(* ---- Bechamel micro-benchmarks ---------------------------------------- *)

let micro () =
  if section "micro" "Bechamel micro-benchmarks of the core primitives" then begin
    let open Bechamel in
    let ds = dataset ~n:2_000 7 in
    let info = dirtied ds 8 in
    let sigma = ds.Datagen.sigma in
    let clean = ds.Datagen.dopt in
    let dirty_tuple =
      Relation.find_exn info.Noise.dirty (List.hd info.Noise.dirty_tids)
    in
    let env = Tuple_resolve.make_env clean sigma in
    (* Warm the lazy cluster indexes out of the measured path. *)
    ignore (Tuple_resolve.resolve env (Tuple.copy dirty_tuple));
    let zip_domain = Relation.active_domain clean Order_schema.zip in
    let tests =
      Test.make_grouped ~name:"core"
        [
          Test.make ~name:"dl-distance" (Staged.stage (fun () ->
               Cost.dl_distance "Philadelphia" "Philadlephia"));
          Test.make ~name:"violation-scan-2k" (Staged.stage (fun () ->
               Violation.satisfies clean sigma));
          Test.make ~name:"lhs-index-build-2k" (Staged.stage (fun () ->
               Lhs_index.build sigma clean));
          Test.make ~name:"cluster-index-build" (Staged.stage (fun () ->
               Cluster_index.build zip_domain));
          Test.make ~name:"tuple-resolve" (Staged.stage (fun () ->
               Tuple_resolve.resolve env (Tuple.copy dirty_tuple)));
        ]
    in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let rows =
      Hashtbl.fold
        (fun name res acc ->
          match Analyze.OLS.estimates res with
          | Some (est :: _) -> (name, est) :: acc
          | _ -> acc)
        results []
      |> List.sort compare
    in
    List.iter
      (fun (name, ns) ->
        if ns > 1e6 then Fmt.pr "%-28s %10.3f ms/run@." name (ns /. 1e6)
        else if ns > 1e3 then Fmt.pr "%-28s %10.3f us/run@." name (ns /. 1e3)
        else Fmt.pr "%-28s %10.1f ns/run@." name ns)
      rows;
    write_section "micro"
      (List.map (fun (name, ns) -> (name ^ ".runtime_s", ns /. 1e9)) rows)
  end

(* ---- --compare: the perf-trajectory gate ------------------------------- *)

let json_of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> (
    match Json.parse s with
    | Ok v -> v
    | Error msg ->
      Fmt.epr "bench: --compare: %s: %s@." path msg;
      exit 2)
  | exception Sys_error msg ->
    Fmt.epr "bench: --compare: %s@." msg;
    exit 2

let number = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

(* Pull (section, metrics) out of a BENCH_*.json envelope. *)
let section_metrics path doc =
  let ( let* ) = Option.bind in
  match
    let* report = Json.member "report" doc in
    let* summary = Json.member "summary" report in
    let* sect =
      match Json.member "section" summary with
      | Some (Json.String s) -> Some s
      | _ -> None
    in
    let* metrics =
      match Json.member "metrics" summary with
      | Some (Json.Obj fields) ->
        Some
          (List.filter_map
             (fun (k, v) -> Option.map (fun f -> (k, f)) (number v))
             fields)
      | _ -> None
    in
    Some (sect, metrics)
  with
  | Some r -> r
  | None ->
    Fmt.epr
      "bench: --compare: %s does not look like a per-section BENCH_*.json \
       (missing report.summary.section/metrics)@."
      path;
    exit 2

(* Seconds metrics get a small absolute slack on top of the relative
   tolerance so micro-scale timings (a few ms) don't flag on scheduler
   noise alone. *)
let time_slack_s = 0.005

type verdict = Regressed | Improved | Unchanged

let judge name ~old_v ~new_v =
  let tol = !tolerance /. 100. in
  let lower_is_better =
    String.length name >= 2 && String.sub name (String.length name - 2) 2 = "_s"
  in
  let rel =
    if Float.abs old_v > 1e-12 then (new_v -. old_v) /. Float.abs old_v
    else if Float.abs new_v > 1e-12 then Float.infinity
    else 0.
  in
  if lower_is_better then
    if rel > tol && new_v -. old_v > time_slack_s then Regressed
    else if rel < -.tol && old_v -. new_v > time_slack_s then Improved
    else Unchanged
  else if rel < -.tol then Regressed
  else if rel > tol then Improved
  else Unchanged

let compare_files old_path =
  let new_path sect = Filename.concat !out_dir ("BENCH_" ^ sect ^ ".json") in
  let olds =
    if Sys.is_directory old_path then
      Sys.readdir old_path |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort String.compare
      |> List.map (Filename.concat old_path)
    else [ old_path ]
  in
  if olds = [] then begin
    Fmt.epr "bench: --compare: no BENCH_*.json files in %s@." old_path;
    exit 2
  end;
  let regressions = ref 0 in
  List.iter
    (fun old_file ->
      let sect, old_metrics = section_metrics old_file (json_of_file old_file) in
      let nf = new_path sect in
      if not (Sys.file_exists nf) then begin
        Fmt.epr "bench: --compare: %s (for section %s) does not exist — run \
                 `--only %s --out %s` first@."
          nf sect sect !out_dir;
        exit 2
      end;
      let sect', new_metrics = section_metrics nf (json_of_file nf) in
      if sect' <> sect then begin
        Fmt.epr "bench: --compare: %s claims section %s but %s claims %s@."
          old_file sect nf sect';
        exit 2
      end;
      Fmt.pr "@.=== compare %s (old: %s, new: %s, tolerance %g%%) ===@." sect
        old_file nf !tolerance;
      Fmt.pr "%-36s %12s %12s %9s@." "metric" "old" "new" "delta";
      List.iter
        (fun (name, old_v) ->
          match List.assoc_opt name new_metrics with
          | None ->
            incr regressions;
            Fmt.pr "%-36s %12.4g %12s %9s REGRESSED (metric disappeared)@."
              name old_v "-" "-"
          | Some new_v ->
            let delta =
              if Float.abs old_v > 1e-12 then
                100. *. (new_v -. old_v) /. Float.abs old_v
              else 0.
            in
            let verdict = judge name ~old_v ~new_v in
            Fmt.pr "%-36s %12.4g %12.4g %8.1f%%%s@." name old_v new_v delta
              (match verdict with
              | Regressed ->
                incr regressions;
                " REGRESSED"
              | Improved -> " improved"
              | Unchanged -> ""))
        old_metrics;
      List.iter
        (fun (name, _) ->
          if List.assoc_opt name old_metrics = None then
            Fmt.pr "%-36s %12s (new metric)@." name "-")
        new_metrics)
    olds;
  if !regressions > 0 then begin
    Fmt.pr "@.%d metric(s) regressed past %g%%@." !regressions !tolerance;
    exit 1
  end
  else Fmt.pr "@.no regressions (tolerance %g%%)@." !tolerance

let () =
  match !compare_against with
  | Some old_path -> compare_files old_path
  | None ->
    (match !trace_path with
    | Some _ ->
      Trace.clear ();
      Trace.set_enabled true
    | None -> ());
    let started = Unix.gettimeofday () in
    Fmt.pr
      "dataqual bench harness — base size %d tuples, %d seed(s)@.\
       (scaled-down testbed; see EXPERIMENTS.md for paper-vs-measured)@."
      !base_n (List.length !seeds);
    fig8 ();
    fig9_10_13 ();
    fig11 ();
    fig12 ();
    fig14_15 ();
    thm61 ();
    ablation_depgraph ();
    ablation_cluster ();
    ablation_k ();
    parallel ();
    analyze_bench ();
    engines_bench ();
    serve_bench ();
    micro ();
    (match !trace_path with
    | Some path -> (
      try
        Trace.write path;
        Fmt.pr "wrote %s@." path
      with Sys_error msg -> Fmt.epr "bench: --trace: %s@." msg)
    | None -> ());
    Fmt.pr "@.total bench time: %.1fs@." (Unix.gettimeofday () -. started);
    if !sections_skipped > 0 then begin
      Fmt.pr "%d section(s) skipped — deadline expired@." !sections_skipped;
      if !sections_ran = 0 then exit 4
    end
