(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Section 7, Figures 8-15), the Theorem 6.1 sample-size curve, the
   ablations called out in DESIGN.md, and Bechamel micro-benchmarks of the
   core primitives.

   Usage: dune exec bench/main.exe -- [--only fig9] [--seeds 2] [--scale N]

   Sizes are scaled down from the paper's 10k-300k testbed (see DESIGN.md,
   substitutions): the default base size is 4,000 tuples so the full
   harness finishes in minutes; pass --scale to change it.  Shapes, not
   absolute numbers, are the reproduction target; EXPERIMENTS.md records
   the comparison. *)

open Dq_relation
open Dq_cfd
open Dq_core
open Dq_workload
module Pool = Dq_parallel.Pool

(* ---- command line ---------------------------------------------------- *)

let only = ref []

let seeds = ref [ 7 ]

let base_n = ref 4_000

let out_path = ref "BENCH_parallel.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--only" :: name :: rest ->
      only := name :: !only;
      parse rest
    | "--seeds" :: k :: rest ->
      seeds := List.init (int_of_string k) (fun i -> 7 + (13 * i));
      parse rest
    | "--scale" :: n :: rest ->
      base_n := int_of_string n;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: _ ->
      Fmt.epr "unknown argument %S@." arg;
      Fmt.epr
        "usage: main.exe [--only figN]... [--seeds K] [--scale N] [--out \
         BENCH.json]@.";
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let enabled name = !only = [] || List.mem name !only

let section name title =
  if enabled name then begin
    Fmt.pr "@.=== %s — %s ===@." name title;
    true
  end
  else false

(* ---- shared machinery ------------------------------------------------ *)

type outcome = { precision : float; recall : float; runtime : float }

(* The engines return results with an attached observability report; the
   bench only wants the (value, stats) pair and treats errors as fatal. *)
let engine_ok = function
  | Ok (pair, _report) -> pair
  | Error e -> failwith (Dq_error.to_string e)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let dataset ?(n = !base_n) seed =
  Datagen.generate (Datagen.default_params ~n_tuples:n ~seed ())

let dirtied ?(rate = 0.05) ?(constant_share = 0.5) ds seed =
  Noise.inject (Noise.default_params ~rate ~constant_share ~seed ()) ds

let score ds (info : Noise.info) repair runtime =
  let m =
    Metrics.evaluate ~dopt:ds.Datagen.dopt ~dirty:info.Noise.dirty ~repair
  in
  { precision = m.Metrics.precision; recall = m.Metrics.recall; runtime }

let run_batch ?(sigma = None) ds info =
  let sigma = match sigma with Some s -> s | None -> ds.Datagen.sigma in
  let (repair, _), runtime =
    time (fun () -> engine_ok (Batch_repair.repair info.Noise.dirty sigma))
  in
  assert (Violation.satisfies repair sigma);
  score ds info repair runtime

let run_inc ordering ds info =
  let (repair, _), runtime =
    time (fun () ->
        engine_ok
          (Inc_repair.repair_dirty ~ordering info.Noise.dirty ds.Datagen.sigma))
  in
  assert (Violation.satisfies repair ds.Datagen.sigma);
  score ds info repair runtime

let average outcomes =
  let n = float_of_int (List.length outcomes) in
  {
    precision = List.fold_left (fun a o -> a +. o.precision) 0. outcomes /. n;
    recall = List.fold_left (fun a o -> a +. o.recall) 0. outcomes /. n;
    runtime = List.fold_left (fun a o -> a +. o.runtime) 0. outcomes /. n;
  }

let over_seeds f = average (List.map f !seeds)

let pct x = 100. *. x

(* Print one table row of floats under a label. *)
let row label values =
  Fmt.pr "%-14s" label;
  List.iter (Fmt.pr " %8.1f") values;
  Fmt.pr "@."

let header label columns =
  Fmt.pr "%-14s" label;
  List.iter (fun c -> Fmt.pr " %8s" c) columns;
  Fmt.pr "@."

let noise_rates = [ 0.01; 0.03; 0.05; 0.08; 0.10 ]

(* ---- Figure 8: efficacy of CFDs vs plain FDs ------------------------- *)

let fig8 () =
  if section "fig8" "CFDs vs embedded FDs (BATCHREPAIR accuracy)" then begin
    (* three points: the FD baseline is slow (no constant anchors; see
       EXPERIMENTS.md) *)
    let rates = [ 0.02; 0.06; 0.10 ] in
    header "rho(%)" (List.map (fun r -> Fmt.str "%g" (pct r)) rates);
    let per_constraints name sigma_of =
      let prec = ref [] and rec_ = ref [] in
      List.iter
        (fun rate ->
          let o =
            over_seeds (fun seed ->
                let ds = dataset seed in
                let info = dirtied ~rate ds (seed + 1) in
                run_batch ~sigma:(Some (sigma_of ds)) ds info)
          in
          prec := pct o.precision :: !prec;
          rec_ := pct o.recall :: !rec_)
        rates;
      row (name ^ "/Prec") (List.rev !prec);
      row (name ^ "/Recall") (List.rev !rec_)
    in
    per_constraints "CFD" (fun ds -> ds.Datagen.sigma);
    per_constraints "FD" (fun ds ->
        Cfd.number (Cfd.embedded_fds (Array.to_list ds.Datagen.sigma)))
  end

(* ---- Figures 9, 10 and 13: accuracy and time vs noise rate ----------- *)

let algorithms =
  [
    ("BatchRepair", fun ds info -> run_batch ds info);
    ("V-IncRepair", run_inc Inc_repair.By_violations);
    ("W-IncRepair", run_inc Inc_repair.By_weight);
    ("L-IncRepair", run_inc Inc_repair.Linear);
  ]

let fig9_10_13 () =
  let want9 = enabled "fig9"
  and want10 = enabled "fig10"
  and want13 = enabled "fig13" in
  if want9 || want10 || want13 then begin
    let results =
      List.map
        (fun (name, algo) ->
          ( name,
            List.map
              (fun rate ->
                over_seeds (fun seed ->
                    let ds = dataset seed in
                    let info = dirtied ~rate ds (seed + 1) in
                    algo ds info))
              noise_rates ))
        algorithms
    in
    let cols = List.map (fun r -> Fmt.str "%g" (pct r)) noise_rates in
    if section "fig9" "Precision vs noise rate (%)" then begin
      header "rho(%)" cols;
      List.iter
        (fun (name, os) -> row name (List.map (fun o -> pct o.precision) os))
        results
    end;
    if section "fig10" "Recall vs noise rate (%)" then begin
      header "rho(%)" cols;
      List.iter
        (fun (name, os) -> row name (List.map (fun o -> pct o.recall) os))
        results
    end;
    if section "fig13" "Runtime vs noise rate (seconds)" then begin
      header "rho(%)" cols;
      List.iter
        (fun (name, os) ->
          Fmt.pr "%-14s" name;
          List.iter (fun o -> Fmt.pr " %8.2f" o.runtime) os;
          Fmt.pr "@.")
        results
    end
  end

(* ---- Figure 11: BATCHREPAIR scalability in |D| ----------------------- *)

let fig11 () =
  if section "fig11" "BATCHREPAIR runtime vs database size (rho = 5%)" then begin
    let sizes = List.map (fun k -> k * !base_n / 2) [ 1; 2; 3; 4; 5 ] in
    header "tuples" (List.map string_of_int sizes);
    let times =
      List.map
        (fun n ->
          (over_seeds (fun seed ->
               let ds = dataset ~n seed in
               let info = dirtied ds (seed + 1) in
               run_batch ds info))
            .runtime)
        sizes
    in
    Fmt.pr "%-14s" "BatchRepair";
    List.iter (Fmt.pr " %8.2f") times;
    Fmt.pr "@."
  end

(* ---- Figure 12: incremental setting ---------------------------------- *)

let fig12 () =
  if
    section "fig12"
      "Incremental: runtime vs number of dirty tuples inserted into a clean \
       database"
  then begin
    let base_size = !base_n * 3 / 2 in
    let max_inserts = 70 in
    let counts = [ 10; 20; 30; 40; 50; 60; 70 ] in
    header "#inserted" (List.map string_of_int counts);
    let per_seed seed =
      (* Build a clean base plus a pool of dirty insertions. *)
      let ds = dataset ~n:(base_size + max_inserts) seed in
      let rate = float_of_int max_inserts /. float_of_int (base_size + max_inserts) in
      let info = dirtied ~rate ds (seed + 1) in
      let dirty_set = Hashtbl.create 64 in
      List.iter (fun tid -> Hashtbl.replace dirty_set tid ()) info.Noise.dirty_tids;
      let base = Relation.create Order_schema.schema in
      let pool = ref [] in
      Relation.iter
        (fun t ->
          if Hashtbl.mem dirty_set (Tuple.tid t) then pool := Tuple.copy t :: !pool
          else Relation.add base (Tuple.copy t))
        info.Noise.dirty;
      let pool = Array.of_list (List.rev !pool) in
      (ds, base, pool)
    in
    let inc_times = ref [] and batch_times = ref [] in
    List.iter
      (fun k ->
        let inc = ref 0. and batch = ref 0. in
        List.iter
          (fun seed ->
            let ds, base, pool = per_seed seed in
            let delta = Array.to_list (Array.sub pool 0 (min k (Array.length pool))) in
            let (_, stats) =
              engine_ok (Inc_repair.repair_inserts base delta ds.Datagen.sigma)
            in
            inc := !inc +. stats.Inc_repair.runtime;
            let whole = Relation.copy base in
            List.iter (fun t -> Relation.add whole (Tuple.copy t)) delta;
            let (_, bstats) = engine_ok (Batch_repair.repair whole ds.Datagen.sigma) in
            batch := !batch +. bstats.Batch_repair.runtime)
          !seeds;
        let n = float_of_int (List.length !seeds) in
        inc_times := (!inc /. n) :: !inc_times;
        batch_times := (!batch /. n) :: !batch_times)
      counts;
    Fmt.pr "%-14s" "IncRepair";
    List.iter (Fmt.pr " %8.2f") (List.rev !inc_times);
    Fmt.pr "@.%-14s" "BatchRepair";
    List.iter (Fmt.pr " %8.2f") (List.rev !batch_times);
    Fmt.pr "@."
  end

(* ---- Figures 14 and 15: constant vs variable CFD violations ---------- *)

let fig14_15 () =
  let want14 = enabled "fig14" and want15 = enabled "fig15" in
  if want14 || want15 then begin
    let shares = [ 0.2; 0.4; 0.6; 0.8 ] in
    let results =
      List.map
        (fun (name, algo) ->
          ( name,
            List.map
              (fun share ->
                over_seeds (fun seed ->
                    let ds = dataset seed in
                    let info = dirtied ~constant_share:share ds (seed + 1) in
                    algo ds info))
              shares ))
        [
          ("BatchRepair", fun ds info -> run_batch ds info);
          ("IncRepair", run_inc Inc_repair.By_violations);
        ]
    in
    let cols = List.map (fun s -> Fmt.str "%g" (pct s)) shares in
    if
      section "fig14"
        "Accuracy vs %% of dirty tuples violating constant CFDs"
    then begin
      header "const(%)" cols;
      List.iter
        (fun (name, os) ->
          row (name ^ "/Prec") (List.map (fun o -> pct o.precision) os);
          row (name ^ "/Recall") (List.map (fun o -> pct o.recall) os))
        results
    end;
    if section "fig15" "Runtime vs %% constant-CFD violations (seconds)" then begin
      header "const(%)" cols;
      List.iter
        (fun (name, os) ->
          Fmt.pr "%-14s" name;
          List.iter (fun o -> Fmt.pr " %8.2f" o.runtime) os;
          Fmt.pr "@.")
        results
    end
  end

(* ---- Theorem 6.1: Chernoff sample sizes ------------------------------ *)

let thm61 () =
  if
    section "thm6.1" "Chernoff sample-size bound (delta = 0.95, varying c, eps)"
  then begin
    let cs = [ 1; 5; 10; 20; 50 ] in
    header "c" (List.map string_of_int cs);
    List.iter
      (fun epsilon ->
        Fmt.pr "%-14s" (Fmt.str "eps=%.2f" epsilon);
        List.iter
          (fun c ->
            Fmt.pr " %8d"
              (Stats.chernoff_sample_size ~epsilon ~confidence:0.95 ~c))
          cs;
        Fmt.pr "@.")
      [ 0.01; 0.05; 0.10 ]
  end

(* ---- Ablations -------------------------------------------------------- *)

let ablation_depgraph () =
  if
    section "abl-depgraph"
      "BATCHREPAIR with/without the dependency-graph stratum bias"
  then begin
    header "" [ "prec"; "recall"; "seconds" ];
    List.iter
      (fun (label, use_dependency_graph) ->
        let o =
          over_seeds (fun seed ->
              let ds = dataset seed in
              let info = dirtied ds (seed + 1) in
              let (repair, _), runtime =
                time (fun () ->
                    engine_ok
                      (Batch_repair.repair ~use_dependency_graph
                         info.Noise.dirty ds.Datagen.sigma))
              in
              score ds info repair runtime)
        in
        row label [ pct o.precision; pct o.recall; o.runtime ])
      [ ("with", true); ("without", false) ]
  end

let ablation_cluster () =
  if
    section "abl-cluster"
      "INCREPAIR with/without the cost-based cluster index"
  then begin
    header "" [ "prec"; "recall"; "seconds" ];
    List.iter
      (fun (label, use_cluster_index) ->
        let o =
          over_seeds (fun seed ->
              let ds = dataset seed in
              let info = dirtied ds (seed + 1) in
              let (repair, _), runtime =
                time (fun () ->
                    engine_ok
                      (Inc_repair.repair_dirty ~use_cluster_index
                         info.Noise.dirty ds.Datagen.sigma))
              in
              score ds info repair runtime)
        in
        row label [ pct o.precision; pct o.recall; o.runtime ])
      [ ("with", true); ("without", false) ]
  end

let ablation_k () =
  if section "abl-k" "TUPLERESOLVE: attributes fixed per greedy step (k)" then begin
    header "k" [ "prec"; "recall"; "seconds" ];
    List.iter
      (fun k ->
        let o =
          over_seeds (fun seed ->
              let ds = dataset seed in
              let info = dirtied ds (seed + 1) in
              let (repair, _), runtime =
                time (fun () ->
                    engine_ok
                      (Inc_repair.repair_dirty ~k info.Noise.dirty
                         ds.Datagen.sigma))
              in
              score ds info repair runtime)
        in
        row (string_of_int k) [ pct o.precision; pct o.recall; o.runtime ])
      [ 1; 2; 3 ]
  end

(* ---- Parallel scaling (writes BENCH_parallel.json) -------------------- *)

(* Time detection ([find_all], [vio_counts]) and the hybrid repair
   ([Inc_repair.repair_dirty], whose scoring passes parallelise but whose
   resolve loop is sequential) at several job counts and two database
   sizes.  Besides wall-clock, every run is cross-checked against the
   1-job baseline — the engine's contract is byte-identical output at any
   job count — and the whole table is written as machine-readable JSON so
   CI or EXPERIMENTS.md can track the curves. *)

type parallel_entry = {
  pe_n : int;
  pe_jobs : int;
  pe_find_all : float;
  pe_vio_counts : float;
  pe_repair : float;
  pe_identical : bool;
}

(* The same envelope schema the CLI emits with --format json, with the
   scaling table as the report's summary — so CI consumes BENCH_*.json and
   `cfdclean ... --format json` with one parser. *)
let parallel_json entries =
  let module J = Dq_obs.Json in
  let entry_json e =
    J.Obj
      [
        ("n", J.Int e.pe_n);
        ("jobs", J.Int e.pe_jobs);
        ("find_all_s", J.Float e.pe_find_all);
        ("vio_counts_s", J.Float e.pe_vio_counts);
        ("repair_dirty_s", J.Float e.pe_repair);
        ("identical", J.Bool e.pe_identical);
      ]
  in
  let report =
    Dq_obs.Report.make ~engine:"bench_parallel"
      ~summary:
        [
          ("recommended_domains", J.Int (Pool.default_jobs ()));
          ("seconds", J.String "best-of-3 (repair: single run)");
          ("results", J.List (List.map entry_json entries));
        ]
      ()
  in
  J.to_string
    (J.Obj
       [
         ("command", J.String "bench");
         ("ok", J.Bool true);
         ("report", Dq_obs.Report.to_json report);
         ("diagnostics", J.List []);
       ])

let parallel () =
  if
    section "parallel"
      "Detection and repair at several job counts (byte-identical outputs)"
  then begin
    let jobs_list = [ 1; 2; 4 ] in
    let scales = [ !base_n; 2 * !base_n ] in
    let best_of k f =
      let result = ref None and best = ref infinity in
      for _ = 1 to k do
        let r, t = time f in
        result := Some r;
        if t < !best then best := t
      done;
      (Option.get !result, !best)
    in
    (* Job-count-independent projections of each result, for the
       identity cross-check. *)
    let violations_key vs =
      List.map (fun v -> (Cfd.id (Violation.cfd_of v), Violation.tids v)) vs
    in
    let counts_key counts =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
    in
    let entries = ref [] in
    List.iter
      (fun n ->
        let ds = dataset ~n 7 in
        let info = dirtied ds 8 in
        let rel = info.Noise.dirty and sigma = ds.Datagen.sigma in
        let baseline = ref None in
        List.iter
          (fun jobs ->
            Pool.with_pool ~jobs @@ fun pool ->
            let vs, t_find =
              best_of 3 (fun () -> Violation.find_all ~pool rel sigma)
            in
            let counts, t_counts =
              best_of 3 (fun () -> Violation.vio_counts ~pool rel sigma)
            in
            let (repaired, _), t_repair =
              best_of 1 (fun () -> engine_ok (Inc_repair.repair_dirty ~pool rel sigma))
            in
            let key = (violations_key vs, counts_key counts, Csv.save_string repaired) in
            let identical =
              match !baseline with
              | None ->
                baseline := Some key;
                true
              | Some base -> base = key
            in
            entries :=
              {
                pe_n = n;
                pe_jobs = jobs;
                pe_find_all = t_find;
                pe_vio_counts = t_counts;
                pe_repair = t_repair;
                pe_identical = identical;
              }
              :: !entries)
          jobs_list)
      scales;
    let entries = List.rev !entries in
    header "n/jobs"
      (List.concat_map
         (fun c -> List.map (fun j -> Fmt.str "%s j%d" c j) jobs_list)
         [ "find"; "counts"; "repair" ]);
    List.iter
      (fun n ->
        let es = List.filter (fun e -> e.pe_n = n) entries in
        Fmt.pr "%-14s" (string_of_int n);
        List.iter (fun e -> Fmt.pr " %8.3f" e.pe_find_all) es;
        List.iter (fun e -> Fmt.pr " %8.3f" e.pe_vio_counts) es;
        List.iter (fun e -> Fmt.pr " %8.3f" e.pe_repair) es;
        Fmt.pr "@.")
      scales;
    if List.for_all (fun e -> e.pe_identical) entries then
      Fmt.pr "outputs identical across job counts: yes@."
    else Fmt.pr "outputs identical across job counts: NO — BUG@.";
    (match List.find_opt (fun e -> e.pe_jobs = 2) entries with
    | Some e2 ->
      let e1 = List.find (fun e -> e.pe_jobs = 1 && e.pe_n = e2.pe_n) entries in
      Fmt.pr "find_all speedup at 2 jobs (n=%d): %.2fx (%d core(s) available)@."
        e2.pe_n
        (e1.pe_find_all /. e2.pe_find_all)
        (Pool.default_jobs ())
    | None -> ());
    let oc = open_out !out_path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (parallel_json entries));
    Fmt.pr "wrote %s@." !out_path
  end

(* ---- Bechamel micro-benchmarks ---------------------------------------- *)

let micro () =
  if section "micro" "Bechamel micro-benchmarks of the core primitives" then begin
    let open Bechamel in
    let ds = dataset ~n:2_000 7 in
    let info = dirtied ds 8 in
    let sigma = ds.Datagen.sigma in
    let clean = ds.Datagen.dopt in
    let dirty_tuple =
      Relation.find_exn info.Noise.dirty (List.hd info.Noise.dirty_tids)
    in
    let env = Tuple_resolve.make_env clean sigma in
    (* Warm the lazy cluster indexes out of the measured path. *)
    ignore (Tuple_resolve.resolve env (Tuple.copy dirty_tuple));
    let zip_domain = Relation.active_domain clean Order_schema.zip in
    let tests =
      Test.make_grouped ~name:"core"
        [
          Test.make ~name:"dl-distance" (Staged.stage (fun () ->
               Cost.dl_distance "Philadelphia" "Philadlephia"));
          Test.make ~name:"violation-scan-2k" (Staged.stage (fun () ->
               Violation.satisfies clean sigma));
          Test.make ~name:"lhs-index-build-2k" (Staged.stage (fun () ->
               Lhs_index.build sigma clean));
          Test.make ~name:"cluster-index-build" (Staged.stage (fun () ->
               Cluster_index.build zip_domain));
          Test.make ~name:"tuple-resolve" (Staged.stage (fun () ->
               Tuple_resolve.resolve env (Tuple.copy dirty_tuple)));
        ]
    in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let rows =
      Hashtbl.fold
        (fun name res acc ->
          match Analyze.OLS.estimates res with
          | Some (est :: _) -> (name, est) :: acc
          | _ -> acc)
        results []
      |> List.sort compare
    in
    List.iter
      (fun (name, ns) ->
        if ns > 1e6 then Fmt.pr "%-28s %10.3f ms/run@." name (ns /. 1e6)
        else if ns > 1e3 then Fmt.pr "%-28s %10.3f us/run@." name (ns /. 1e3)
        else Fmt.pr "%-28s %10.1f ns/run@." name ns)
      rows
  end

let () =
  let started = Unix.gettimeofday () in
  Fmt.pr
    "dataqual bench harness — base size %d tuples, %d seed(s)@.\
     (scaled-down testbed; see EXPERIMENTS.md for paper-vs-measured)@."
    !base_n (List.length !seeds);
  fig8 ();
  fig9_10_13 ();
  fig11 ();
  fig12 ();
  fig14_15 ();
  thm61 ();
  ablation_depgraph ();
  ablation_cluster ();
  ablation_k ();
  parallel ();
  micro ();
  Fmt.pr "@.total bench time: %.1fs@." (Unix.gettimeofday () -. started)
