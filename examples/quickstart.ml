(* Quickstart: the paper's running example (Figures 1 and 2) end to end.

   Load the order table from CSV, declare the CFDs in the textual format,
   detect the inconsistencies that plain FDs miss, and repair them with
   BATCHREPAIR.

   Run with: dune exec examples/quickstart.exe *)

open Dq_relation
open Dq_cfd
open Dq_core

let data_csv =
  "id,name,PR,AC,PN,STR,CT,ST,zip\n\
   a23,H. Porter,17.99,215,8983490,Walnut,PHI,PA,19014\n\
   a23,H. Porter,17.99,610,3456789,Spruce,PHI,PA,19014\n\
   a12,J. Denver,7.94,212,3345677,Canel,PHI,PA,10012\n\
   a89,Snow White,18.99,212,5674322,Broad,PHI,PA,10012\n"

let cfds_text =
  {|# Figure 1(b): CFDs with pattern tableaus
phi1: [AC, PN] -> [STR, CT, ST] {
  (_, _   || _, _, _)          # the embedded FD fd1
  (212, _ || _, NYC, NY)
  (610, _ || _, PHI, PA)
  (215, _ || _, PHI, PA)
}
phi2: [zip] -> [CT, ST] {
  (_     || _, _)              # the embedded FD fd2
  (10012 || NYC, NY)
  (19014 || PHI, PA)
}
# Figure 2: traditional FDs expressed as CFDs
phi3: [id] -> [name, PR]
phi4: [CT, STR] -> [zip]
|}

(* The weights of Figure 1(a): low confidence on t3/t4's city and state. *)
let weights =
  [
    [ 1.0; 0.5; 0.5; 0.5; 0.5; 0.8; 0.8; 0.8; 0.8 ];
    [ 1.0; 0.5; 0.5; 0.5; 0.5; 0.6; 0.6; 0.6; 0.6 ];
    [ 1.0; 0.9; 0.9; 0.9; 0.9; 0.6; 0.1; 0.1; 0.8 ];
    [ 1.0; 0.6; 0.5; 0.9; 0.9; 0.1; 0.6; 0.6; 0.9 ];
  ]

let () =
  let db = Csv.load_string ~name:"order" data_csv in
  List.iteri
    (fun tid ws ->
      let t = Relation.find_exn db tid in
      List.iteri (Tuple.set_weight t) ws)
    weights;
  let tableaus =
    match Cfd_parser.parse_string cfds_text with
    | Ok tabs -> tabs
    | Error e -> Fmt.failwith "CFD parse error: %a" Cfd_parser.pp_error e
  in
  let sigma = Cfd_parser.resolve (Relation.schema db) tableaus in
  Satisfiability.check_exn (Relation.schema db) sigma;

  Fmt.pr "The order table:@.%a@.@." Relation.pp db;

  (* Plain FDs see nothing wrong with this data... *)
  let fds = Cfd.number (Cfd.embedded_fds (Array.to_list sigma)) in
  Fmt.pr "Satisfies the traditional FDs? %b@." (Violation.satisfies db fds);

  (* ... but the CFDs catch t3 and t4 (area code 212 belongs to NYC, NY). *)
  Fmt.pr "Satisfies the CFDs? %b@.@." (Violation.satisfies db sigma);
  List.iter (Fmt.pr "  %a@." Violation.pp) (Violation.find_all db sigma);

  let (repair, stats), _report = Result.get_ok (Batch_repair.repair db sigma) in
  Fmt.pr "@.BATCHREPAIR: %a@.@." Batch_repair.pp_stats stats;
  Fmt.pr "The repair (t3/t4 moved to NYC, NY as the weights suggest):@.%a@."
    Relation.pp repair;
  Fmt.pr "Repair satisfies the CFDs? %b@." (Violation.satisfies repair sigma);
  Fmt.pr "Repair cost (Section 3.2): %.3f@."
    (Cost.repair_cost ~original:db ~repair)
