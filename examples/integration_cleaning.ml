(* Data integration (the paper's motivating setting for CFDs): FDs that
   hold on individual sources hold only *conditionally* on integrated data.

   Two regional sales databases each satisfy the FD [AC] -> [CT]: an area
   code determines the city.  After integration the FD is false — dialing
   code 20 is London in the UK rows but meaningless in the US rows — yet
   it survives as a CFD conditioned on the country.  We integrate the
   sources, declare the per-source FDs as CFDs, and let the repairing
   module fix records that were mangled during integration.

   Run with: dune exec examples/integration_cleaning.exe *)

open Dq_relation
open Dq_cfd
open Dq_core

let us_csv =
  "src,AC,CT,ST,CTY\n\
   us,212,NYC,NY,US\n\
   us,215,PHI,PA,US\n\
   us,206,Seattle,WA,US\n"

let uk_csv =
  "src,AC,CT,ST,CTY\n\
   uk,20,London,LND,UK\n\
   uk,161,Manchester,MAN,UK\n\
   uk,121,Birmingham,BIR,UK\n"

(* Each source satisfies AC -> CT.  On the union, the dependency only
   holds per country: a CFD with CTY in the LHS. *)
let cfds_text =
  {|city_by_code: [CTY, AC] -> [CT, ST] {
  (US, 212 || NYC, NY)
  (US, 215 || PHI, PA)
  (US, 206 || Seattle, WA)
  (UK, 20  || London, LND)
  (UK, 161 || Manchester, MAN)
  (UK, 121 || Birmingham, BIR)
}
country_fd: [src] -> [CTY]
|}

let () =
  let us = Csv.load_string ~name:"orders" us_csv in
  let uk = Csv.load_string ~name:"orders" uk_csv in
  let schema = Relation.schema us in

  (* Per-source, the plain FD AC -> CT holds. *)
  let fd =
    Cfd.number
      (Cfd.normalize schema (Cfd.Tableau.fd ~name:"fd" ~lhs:[ "AC" ] ~rhs:[ "CT" ]))
  in
  Fmt.pr "US source satisfies [AC] -> [CT]? %b@." (Violation.satisfies us fd);
  Fmt.pr "UK source satisfies [AC] -> [CT]? %b@.@." (Violation.satisfies uk fd);

  (* Integrate, with some records mangled in transit: a UK row marked US,
     and a US row whose city was overwritten by a UK city. *)
  let integrated = Relation.create schema in
  let copy_all src = Relation.iter (fun t -> ignore (Relation.insert integrated (Tuple.values t))) src in
  copy_all us;
  copy_all uk;
  let v = Value.of_string in
  ignore (Relation.insert integrated [| v "uk"; v "20"; v "London"; v "LND"; v "US" |]);
  ignore (Relation.insert integrated [| v "us"; v "212"; v "London"; v "NY"; v "US" |]);

  let sigma =
    match Cfd_parser.parse_string cfds_text with
    | Ok tabs -> Cfd_parser.resolve schema tabs
    | Error e -> Fmt.failwith "parse error: %a" Cfd_parser.pp_error e
  in
  Fmt.pr "Integrated table:@.%a@.@." Relation.pp integrated;
  Fmt.pr "Integrated data satisfies the conditional constraints? %b@."
    (Violation.satisfies integrated sigma);
  List.iter (Fmt.pr "  %a@." Violation.pp) (Violation.find_all integrated sigma);

  let (repair, stats), _report =
    Result.get_ok (Batch_repair.repair integrated sigma)
  in
  Fmt.pr "@.After repair (%a):@.%a@." Batch_repair.pp_stats stats Relation.pp
    repair;
  Fmt.pr "Clean? %b@." (Violation.satisfies repair sigma)
