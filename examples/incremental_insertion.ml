(* Incremental cleaning (Section 5): a clean database receives a batch of
   new orders, some of them inconsistent.  INCREPAIR repairs only the
   insertions — the clean base is never touched — and the three processing
   orderings (L/V/W) are compared.

   This replays Example 1.1/5.1: the inserted t5 agrees with an existing
   order on (AC, PN) = (215, 8983490) but claims to be in NYC, NY, 10012,
   so phi1 and phi2 pull it in opposite directions.

   Run with: dune exec examples/incremental_insertion.exe *)

open Dq_relation
open Dq_cfd
open Dq_core
open Dq_workload

let () =
  (* A clean synthetic sales database with the seven-CFD constraint set. *)
  let ds =
    Datagen.generate
      {
        (Datagen.default_params ~n_tuples:2_000 ()) with
        Datagen.tableau_coverage = 0.8;
      }
  in
  let base = ds.Datagen.dopt and sigma = ds.Datagen.sigma in
  Fmt.pr "Clean base: %d tuples, %d normal-form clauses. D |= Sigma? %b@.@."
    (Relation.cardinality base) (Array.length sigma)
    (Violation.satisfies base sigma);

  (* Craft insertions: copy three existing orders and corrupt them, plus
     one perfectly fine new order. *)
  let sample tid = Relation.find_exn base tid in
  let fresh i t = Tuple.copy ~tid:(1_000_000 + i) t in
  let t5 =
    let t = fresh 0 (sample 0) in
    (* contradictory city/state/zip, as in Example 1.1 *)
    Tuple.set t Order_schema.ct (Value.string "Springfield");
    Tuple.set t Order_schema.st (Value.string "ZZ");
    t
  in
  let wrong_price =
    let t = fresh 1 (sample 1) in
    Tuple.set t Order_schema.pr (Value.string "0.01");
    t
  in
  let typo_city =
    let t = fresh 2 (sample 2) in
    let city = Value.to_string (Tuple.get t Order_schema.ct) in
    Tuple.set t Order_schema.ct (Value.string (city ^ "x"));
    t
  in
  let clean_insert = fresh 3 (sample 3) in
  let delta = [ t5; wrong_price; typo_city; clean_insert ] in

  List.iter
    (fun ordering ->
      let (repr, stats), _report =
        Result.get_ok (Inc_repair.repair_inserts ~ordering base delta sigma)
      in
      Fmt.pr "%-12s: %a@.              result |= Sigma? %b@."
        (Inc_repair.ordering_name ordering)
        Inc_repair.pp_stats stats
        (Violation.satisfies repr sigma);
      (* The clean base is untouched by construction. *)
      assert (
        Relation.fold
          (fun ok t ->
            ok
            && Tuple.equal_values t (Relation.find_exn repr (Tuple.tid t)))
          true base))
    [ Inc_repair.Linear; Inc_repair.By_violations; Inc_repair.By_weight ];

  (* Show what happened to t5 under V-INCREPAIR. *)
  let (repr, _), _ =
    Result.get_ok
      (Inc_repair.repair_inserts ~ordering:Inc_repair.By_violations base delta
         sigma)
  in
  let before = t5 and after = Relation.find_exn repr 1_000_000 in
  Fmt.pr "@.t5 before: %a@." (Tuple.pp Order_schema.schema) before;
  Fmt.pr "t5 after:  %a@." (Tuple.pp Order_schema.schema) after;
  Fmt.pr "@.Deletions never need repairing (Section 3.3): removing any tuple \
          from a clean database leaves it clean.@."
