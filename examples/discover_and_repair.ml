(* CFD discovery (the paper's first future-work item) closing the loop:
   mine CFDs from a trusted snapshot of the data, then use them to detect
   and repair inconsistencies introduced later.

   Run with: dune exec examples/discover_and_repair.exe *)

open Dq_relation
open Dq_cfd
open Dq_core
open Dq_workload

let () =
  (* A trusted snapshot: last quarter's audited sales data. *)
  let ds = Datagen.generate (Datagen.default_params ~n_tuples:2_000 ()) in
  let snapshot = ds.Datagen.dopt in

  (* Mine CFDs from it: embedded FDs that hold instance-wide plus constant
     pattern rows with enough support. *)
  let config = Discovery.default_config ~max_lhs_size:1 ~min_support:8 () in
  let d = Discovery.discover ~config snapshot in
  Fmt.pr "Mined %d embedded FDs and %d constant pattern rows from %d tuples.@."
    d.Discovery.n_variable d.Discovery.n_constant
    (Relation.cardinality snapshot);
  let sigma = Discovery.resolve d in
  Fmt.pr "Snapshot satisfies what was mined from it: %b@.@."
    (Violation.satisfies snapshot sigma);

  (* Show a few mined constraints. *)
  List.iteri
    (fun i (tab : Cfd.Tableau.t) ->
      if i < 2 then
        Fmt.pr "%s: [%s] -> [%s] with %d pattern rows@." tab.Cfd.Tableau.name
          (String.concat ", " tab.Cfd.Tableau.lhs_attrs)
          (String.concat ", " tab.Cfd.Tableau.rhs_attrs)
          (List.length tab.Cfd.Tableau.rows))
    d.Discovery.tableaus;

  (* This quarter's data arrives with errors. *)
  let noise = Noise.inject (Noise.default_params ~rate:0.04 ()) ds in
  let dirty = noise.Noise.dirty in
  let flagged = Violation.violating_tids dirty sigma in
  Fmt.pr "@.New data: %d tuples, %d dirtied; mined CFDs flag %d tuples.@."
    (Relation.cardinality dirty)
    (List.length noise.Noise.dirty_tids)
    (List.length flagged);

  (* Repair against the mined constraints and measure against the truth. *)
  let (repair, stats), _report = Result.get_ok (Batch_repair.repair dirty sigma) in
  Fmt.pr "BATCHREPAIR with mined CFDs: %a@." Batch_repair.pp_stats stats;
  Fmt.pr "Repair satisfies mined sigma: %b@." (Violation.satisfies repair sigma);
  let m = Metrics.evaluate ~dopt:ds.Datagen.dopt ~dirty ~repair in
  Fmt.pr "Quality vs ground truth: %a@." Metrics.pp m;

  (* Redundancy analysis: a cover of a small slice of the mined set. *)
  let slice = Array.sub sigma 0 (min 40 (Array.length sigma)) in
  let cover = Implication.minimize Order_schema.schema slice in
  Fmt.pr "@.Implication analysis: %d of the first %d clauses form a cover.@."
    (Array.length cover) (Array.length slice)
