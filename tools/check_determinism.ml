(* Determinism lint: fail if library code iterates a hash table.

   Hashtbl.iter / Hashtbl.fold visit bindings in an order that depends on
   hashing history, so any engine decision routed through them can differ
   between runs, job counts, or OCaml versions.  The repo's rule is that
   such iteration is confined to modules that either sort afterwards or
   feed commutative reductions, and everything else uses keyed lookups
   (find/find_opt/mem/replace) or arrays.  This checker walks a source
   tree and reports every Hashtbl.iter/Hashtbl.fold outside the audited
   allowlist, with file:line positions, exiting 1 if any is found.

   Run as:  check_determinism.exe LIB_DIR
   Wired into `dune runtest` via tools/dune, so a new unaudited call site
   fails the test suite (and CI) with an actionable message. *)

(* Modules audited for order-insensitivity: each call site there sorts
   the collected bindings, folds a commutative operation (sums, maxima,
   set union), or iterates a table with at most one binding. *)
let allowlist =
  [
    "relation.ml";
    (* active-domain fold feeds a sort *)
    "metrics.ml";
    (* snapshot sorts by name; reset is per-binding *)
    "violation.ml";
    (* per-key counts merged commutatively *)
    "lint.ml";
    (* W004/W005 sites sort diagnostics afterwards *)
    "discovery.ml";
    (* candidate fold feeds a sort *)
    "batch_repair.ml";
    (* audited per-site: sorted or canonical-mode-gated *)
    "eqclass.ml";
    (* root folds feed sorts *)
  ]

let banned = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let contains_at line pat i =
  i + String.length pat <= String.length line
  && String.sub line i (String.length pat) = pat

(* Report a hit only outside comments; a mention in prose (like the ones
   in this very file) is not a call site.  Strings are rare enough in
   library code that we do not bother lexing them. *)
let scan_line ~in_comment line k =
  let n = String.length line in
  let depth = ref in_comment in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && line.[!i] = '(' && line.[!i + 1] = '*' then begin
      incr depth;
      i := !i + 2
    end
    else if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = ')' then begin
      if !depth > 0 then decr depth;
      i := !i + 2
    end
    else begin
      if !depth = 0 then
        List.iter (fun pat -> if contains_at line pat !i then k pat) banned;
      incr i
    end
  done;
  !depth

let scan_file path =
  let ic = open_in path in
  let hits = ref [] in
  let lineno = ref 0 in
  let comment_depth = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       comment_depth :=
         scan_line ~in_comment:!comment_depth line (fun pat ->
             hits := (path, !lineno, pat) :: !hits)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !hits

let rec walk dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then walk path
         else if
           Filename.check_suffix entry ".ml"
           && not (List.mem entry allowlist)
         then scan_file path
         else [])

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib" in
  match walk root with
  | [] -> ()
  | hits ->
    List.iter
      (fun (path, line, pat) ->
        Printf.eprintf
          "%s:%d: %s iterates in hash order; sort the bindings or use keyed \
           lookups (see tools/check_determinism.ml for the audited \
           allowlist)\n"
          path line pat)
      hits;
    exit 1
