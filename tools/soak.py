#!/usr/bin/env python3
"""Chaos soak harness for `cfdclean serve`.

Hammers a daemon with N concurrent clients (each owning one session)
mixing ingest, status, relation, quarantine and resolve traffic, under
an optional --fault-plan, then asserts the robustness contract:

  * no lost acked work: every batch the daemon answered 200 is
    accounted for in the final relation + quarantine (discards netted
    out); ambiguous outcomes (connection died mid-request) widen the
    bound but never excuse a loss;
  * no deadlocks: every request completes within a socket timeout and
    the whole run within a watchdog;
  * graceful drain: SIGTERM exits 0 with a serve.stop log line;
  * durable checkpoints: a --resume restart serves byte-identical
    relations, and so does a restart after kill -9;
  * bounded memory: the daemon's VmRSS stays under --max-rss-mb.

Stdlib only; exit 0 on success, 1 on any violated assertion.
"""

import argparse
import http.client
import json
import os
import random
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

RULES = (
    "p1: [A] -> [B]\n"
    "p2: [C] -> [D]\n"
    "q1: [A] -> [B] {\n  (1 || 10)\n}\n"
    "q2: [A] -> [B] {\n  (1 || 20)\n}\n"
)

CREATE_BODY = json.dumps(
    {
        "schema": {"name": "soak", "attributes": ["A", "B", "C", "D"]},
        "rules": RULES,
        "force": True,
    }
)

failures = []
fail_lock = threading.Lock()


def fail(msg):
    with fail_lock:
        failures.append(msg)
    print(f"soak: FAIL: {msg}", file=sys.stderr)


def note(msg):
    print(f"soak: {msg}")


class Daemon:
    def __init__(self, cfdclean, state_dir, fault_plan=None, resume=False):
        cmd = [
            cfdclean, "serve", "--port", "0",
            "--state-dir", state_dir,
            "--log", os.path.join(state_dir, "serve.log"),
            "--keep-alive", "--idle-timeout", "10",
            "--read-timeout", "10",
            "--queue-depth", "4", "--max-inflight", "32",
            "--max-connections", "64",
            "--breaker-threshold", "8",
            "--ingest-workers", "2",
            "--drain-timeout", "20",
        ]
        if fault_plan:
            cmd += ["--fault-plan", fault_plan]
        if resume:
            cmd += ["--resume"]
        self.state_dir = state_dir
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
        )
        line = self.proc.stdout.readline()
        m = re.search(r"127\.0\.0\.1:(\d+)", line)
        if not m:
            err = self.proc.stderr.read()
            raise RuntimeError(f"daemon did not report a port: {line!r} {err!r}")
        self.port = int(m.group(1))

    def rss_mb(self):
        try:
            with open(f"/proc/{self.proc.pid}/status") as f:
                for line in f:
                    if line.startswith("VmRSS:"):
                        return int(line.split()[1]) / 1024.0
        except OSError:
            pass
        return None

    def sigterm(self, timeout=30):
        self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            return None
        return code

    def kill9(self):
        self.proc.kill()
        self.proc.wait()

    def log_text(self):
        path = os.path.join(self.state_dir, "serve.log")
        try:
            with open(path) as f:
                return f.read()
        except OSError:
            return ""


class Client:
    """One session's worth of traffic; keep-alive with reconnects."""

    def __init__(self, port, rng):
        self.port = port
        self.rng = rng
        self.conn = None
        self.sid = None
        # accounting (rows)
        self.acked = 0        # rows in batches answered 200
        self.maybe = 0        # rows whose request died ambiguously
        self.discarded = 0    # quarantined tuples discarded with a 200
        self.maybe_discarded = 0
        self.sheds = 0        # 429/503 answers seen
        self.faults = 0       # 500 answers seen (injected engine faults)

    def _connect(self):
        self.conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=15)

    def request(self, method, path, body=None):
        """Returns (status, body_bytes) or None when the connection died
        (ambiguous for mutations)."""
        for attempt in (1, 2):
            if self.conn is None:
                self._connect()
            try:
                self.conn.request(method, path, body=body)
                resp = self.conn.getresponse()
                data = resp.read()
                if resp.headers.get("Connection", "").lower() == "close":
                    self.conn.close()
                    self.conn = None
                return resp.status, data
            except (http.client.HTTPException, OSError):
                try:
                    self.conn.close()
                except Exception:
                    pass
                self.conn = None
                if attempt == 1 and method == "GET":
                    continue  # reads are safe to retry
                return None

    def mutate(self, path, body, rows):
        """POST with shed retries.  Returns "ok", "ambiguous" (connection
        died mid-request: the server may or may not have committed) or
        "failed" (a typed refusal: definitely not committed)."""
        for _ in range(40):
            r = self.request("POST", path, body)
            if r is None:
                self.maybe += rows
                return "ambiguous"
            status, data = r
            if status == 200:
                self.acked += rows
                return "ok"
            if status in (429, 503):
                self.sheds += 1
                time.sleep(0.1 if status == 503 else 0.3)
                continue
            if status == 500:
                self.faults += 1  # injected fault: nothing committed
                return "failed"
            fail(f"{self.sid}: unexpected {status} on {path}: {data[:120]!r}")
            return "failed"
        fail(f"{self.sid}: shed-retry budget exhausted on {path}")
        return "failed"

    def create_session(self):
        r = self.request("POST", "/v1/sessions", CREATE_BODY)
        if r is None or r[0] != 201:
            raise RuntimeError(f"session create failed: {r!r}")
        report = json.loads(r[1])["report"]
        self.sid = report["id"]

    def batch(self):
        rows = []
        for _ in range(self.rng.randint(1, 8)):
            a = self.rng.randint(1, 6)  # a == 1 hits the conflicting pair
            rows.append([a, self.rng.randint(10, 30),
                         self.rng.randint(0, 5), self.rng.randint(0, 50)])
        return rows

    def step(self):
        op = self.rng.random()
        if op < 0.65:
            rows = self.batch()
            self.mutate(f"/v1/sessions/{self.sid}/tuples",
                        json.dumps({"tuples": rows}), len(rows))
        elif op < 0.80:
            self.request("GET", f"/v1/sessions/{self.sid}")
        elif op < 0.90:
            self.request("GET", f"/v1/sessions/{self.sid}/relation")
        else:
            r = self.request("GET", f"/v1/sessions/{self.sid}/quarantine")
            if r is None or r[0] != 200:
                return
            entries = json.loads(r[1])["report"].get("entries", [])
            if entries:
                tid = entries[0]["tid"]
                outcome = self.mutate(
                    f"/v1/sessions/{self.sid}/quarantine/{tid}/resolve",
                    json.dumps({"action": "discard"}), 0)
                if outcome == "ok":
                    self.discarded += 1
                elif outcome == "ambiguous":
                    self.maybe_discarded += 1

    def close(self):
        if self.conn is not None:
            try:
                self.conn.close()
            except Exception:
                pass


def run_clients(port, n_clients, total_requests, seed):
    clients = [Client(port, random.Random(seed + i)) for i in range(n_clients)]
    for c in clients:
        c.create_session()
    per = max(1, total_requests // n_clients)

    def drive(c):
        for _ in range(per):
            c.step()
        c.close()

    threads = [threading.Thread(target=drive, args=(c,), daemon=True)
               for c in clients]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    watchdog = 60 + per * n_clients * 2
    for t in threads:
        t.join(timeout=max(1, watchdog - (time.monotonic() - t0)))
    alive = [t for t in threads if t.is_alive()]
    if alive:
        fail(f"deadlock: {len(alive)} client threads still running after "
             f"{watchdog}s watchdog")
    return clients


def session_counts(port, sid):
    """(relation_csv_bytes, relation_rows, quarantine_len) via HTTP."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        conn.request("GET", f"/v1/sessions/{sid}/relation")
        resp = conn.getresponse()
        csv = resp.read()
        if resp.status != 200:
            fail(f"{sid}: relation fetch: {resp.status}")
            return b"", 0, 0
        conn.request("GET", f"/v1/sessions/{sid}")
        resp = conn.getresponse()
        body = json.loads(resp.read())
        report = body["report"]
        rows = report["tuples"]
        qlen = report["quarantine"]
        return csv, rows, qlen
    finally:
        conn.close()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cfdclean",
                    default="_build/default/bin/cfdclean.exe")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--requests", type=int, default=200,
                    help="total requests across all clients")
    ap.add_argument("--fault-plan", default=None)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--max-rss-mb", type=float, default=1024.0)
    ap.add_argument("--scrape-out", default=None,
                    help="write a final /v1/metrics scrape to this file")
    ap.add_argument("--keep-tmp", action="store_true")
    args = ap.parse_args()

    if not os.path.exists(args.cfdclean):
        print(f"soak: cfdclean binary not found at {args.cfdclean}",
              file=sys.stderr)
        return 2

    tmp = tempfile.mkdtemp(prefix="cfdclean-soak-")
    daemon = None
    try:
        note(f"state dir {tmp}")
        daemon = Daemon(args.cfdclean, tmp, fault_plan=args.fault_plan)
        note(f"daemon up on port {daemon.port}"
             + (f" with fault plan {args.fault_plan!r}" if args.fault_plan else ""))

        clients = run_clients(daemon.port, args.clients, args.requests,
                              args.seed)

        rss = daemon.rss_mb()
        if rss is not None:
            note(f"daemon RSS {rss:.1f} MiB after client phase")
            if rss > args.max_rss_mb:
                fail(f"daemon RSS {rss:.1f} MiB exceeds bound "
                     f"{args.max_rss_mb} MiB")

        # -- accounting: acked work is never lost ------------------------
        total_acked = total_maybe = total_shed = total_fault = 0
        relations = {}
        for c in clients:
            csv, rows, qlen = session_counts(daemon.port, c.sid)
            relations[c.sid] = csv
            observed = rows + qlen
            low = c.acked - c.discarded - c.maybe_discarded
            high = c.acked + c.maybe - c.discarded
            if not (low <= observed <= high):
                fail(f"{c.sid}: lost acked work: observed {observed} rows "
                     f"(relation {rows} + quarantine {qlen}), acked {c.acked}"
                     f", ambiguous {c.maybe}, discards {c.discarded}"
                     f"+{c.maybe_discarded}?")
            total_acked += c.acked
            total_maybe += c.maybe
            total_shed += c.sheds
            total_fault += c.faults
        note(f"acked {total_acked} rows, ambiguous {total_maybe}, "
             f"sheds {total_shed}, injected faults {total_fault}")

        # -- graceful drain ---------------------------------------------
        code = daemon.sigterm()
        if code != 0:
            fail(f"SIGTERM drain exited {code!r}, want 0")
        log = daemon.log_text()
        if '"event":"serve.stop"' not in log:
            fail("no serve.stop line in the daemon log after drain")
        note("drain ok" if code == 0 else "drain FAILED")

        # -- resume: byte-identical relations ---------------------------
        daemon = Daemon(args.cfdclean, tmp, resume=True)
        for sid, before in relations.items():
            after, _, _ = session_counts(daemon.port, sid)
            if after != before:
                fail(f"{sid}: relation differs after graceful drain + resume "
                     f"({len(before)} vs {len(after)} bytes)")
        note("graceful resume byte-identical")

        # -- kill -9: checkpoints survive -------------------------------
        daemon.kill9()
        daemon = Daemon(args.cfdclean, tmp, resume=True)
        for sid, before in relations.items():
            after, _, _ = session_counts(daemon.port, sid)
            if after != before:
                fail(f"{sid}: relation differs after kill -9 + resume")
        note("kill -9 resume byte-identical")

        if args.scrape_out:
            conn = http.client.HTTPConnection("127.0.0.1", daemon.port,
                                              timeout=15)
            try:
                conn.request("GET", "/v1/metrics")
                resp = conn.getresponse()
                data = resp.read()
            finally:
                conn.close()
            if resp.status != 200:
                fail(f"final metrics scrape answered {resp.status}")
            else:
                with open(args.scrape_out, "wb") as f:
                    f.write(data)
                note(f"final scrape -> {args.scrape_out}")

        code = daemon.sigterm()
        if code != 0:
            fail(f"final drain exited {code!r}, want 0")
        daemon = None
    finally:
        if daemon is not None:
            daemon.kill9()
        if args.keep_tmp:
            note(f"keeping {tmp}")
        else:
            shutil.rmtree(tmp, ignore_errors=True)

    if failures:
        print(f"soak: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    note("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
