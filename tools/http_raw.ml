(* Raw HTTP probe for the serve cram tests.

   Sends exactly the bytes given on the command line (with \r\n and \n
   escapes expanded) to 127.0.0.1:PORT and prints every response status
   line the daemon answers with, in order, plus whether the daemon
   closed the connection.  curl refuses to send malformed framing, which
   is precisely what the overload tests need to send.

   Usage: http_raw PORT RAW [RAW ...]

   Each RAW argument is written as one send (so pipelined requests can
   be probed either as one write or several).  An empty RAW argument
   sends nothing — useful to probe a daemon's reaction to a silent
   client together with a read timeout. *)

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if i + 1 < n && s.[i] = '\\' then begin
        (match s.[i + 1] with
        | 'r' -> Buffer.add_char buf '\r'
        | 'n' -> Buffer.add_char buf '\n'
        | '0' -> Buffer.add_char buf '\000'
        | '\\' -> Buffer.add_char buf '\\'
        | c ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let () =
  if Array.length Sys.argv < 3 then begin
    prerr_endline "usage: http_raw PORT RAW [RAW ...]";
    exit 2
  end;
  let port = int_of_string Sys.argv.(1) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  for i = 2 to Array.length Sys.argv - 1 do
    send_all fd (unescape Sys.argv.(i))
  done;
  (* Nothing more to say: let the daemon see EOF-on-request if it reads
     past what we sent, but keep the read side open for its answers. *)
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let buf = Bytes.create 65536 in
  let out = Buffer.create 4096 in
  let rec drain () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes out buf 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  Unix.close fd;
  (* Print just the status lines: bodies carry request ids and uptimes
     the cram test must not depend on. *)
  let text = Buffer.contents out in
  List.iter
    (fun line ->
      let line =
        match String.index_opt line '\r' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      if String.length line > 5 && String.sub line 0 5 = "HTTP/" then
        print_endline line)
    (String.split_on_char '\n' text);
  print_endline "closed"
