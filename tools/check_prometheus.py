#!/usr/bin/env python3
"""Validate a Prometheus text-format exposition (version 0.0.4).

Reads the exposition on stdin (what `GET /v1/metrics` serves) and checks
the invariants a scraper relies on:

  * every non-comment line is `name{labels} value` with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a parseable value;
  * every sample's family has a preceding `# TYPE` comment, and the
    sample name matches the declared type's suffix discipline
    (counters end in _total; summaries/histograms only emit the
    _sum/_count/_bucket series);
  * label names are legal, label values use only the three escapes the
    format defines (\\\\, \\", \\n) and quotes are balanced;
  * histogram buckets are cumulative, carry an le="+Inf" bucket, and
    that bucket equals the family's _count for the same label set;
  * no duplicate sample (same name + label set).

Exits 0 and prints a one-line summary when clean; prints each violation
and exits 1 otherwise.  Used by the CI serve smoke job and runnable by
hand:  curl -s localhost:8930/v1/metrics | tools/check_prometheus.py
"""
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$"
)
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def parse_labels(raw, errs, lineno):
    """Split a `k="v",k2="v2"` blob, checking names and escapes."""
    labels = []
    i, n = 0, len(raw)
    while i < n:
        eq = raw.find("=", i)
        if eq < 0:
            errs.append(f"line {lineno}: malformed label pair in {raw!r}")
            return labels
        name = raw[i:eq]
        if not LABEL_NAME_RE.match(name):
            errs.append(f"line {lineno}: bad label name {name!r}")
        if eq + 1 >= n or raw[eq + 1] != '"':
            errs.append(f"line {lineno}: label value for {name!r} not quoted")
            return labels
        j = eq + 2
        value = []
        while j < n:
            c = raw[j]
            if c == "\\":
                if j + 1 >= n or raw[j + 1] not in ('\\', '"', 'n'):
                    errs.append(
                        f"line {lineno}: illegal escape in label {name!r}")
                    j += 1
                else:
                    value.append(raw[j:j + 2])
                    j += 2
            elif c == '"':
                break
            else:
                value.append(c)
                j += 1
        else:
            errs.append(f"line {lineno}: unterminated label value for {name!r}")
            return labels
        labels.append((name, "".join(value)))
        i = j + 1
        if i < n:
            if raw[i] != ",":
                errs.append(f"line {lineno}: expected ',' between labels")
                return labels
            i += 1
    return labels


def base_family(name):
    """Strip the series suffix a summary/histogram sample carries."""
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def main():
    text = sys.stdin.read()
    errs = []
    declared = {}  # family -> type
    samples = 0
    seen = set()
    # family -> label-set-without-le -> {"buckets": [(le, v)], "count": v}
    histograms = {}

    if text and not text.endswith("\n"):
        errs.append("exposition does not end with a newline")

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errs.append(f"line {lineno}: malformed TYPE comment")
                    continue
                _, _, fam, typ = parts
                if not NAME_RE.match(fam):
                    errs.append(f"line {lineno}: bad family name {fam!r}")
                if typ not in TYPES:
                    errs.append(f"line {lineno}: unknown type {typ!r}")
                if fam in declared:
                    errs.append(f"line {lineno}: duplicate TYPE for {fam!r}")
                declared[fam] = typ
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errs.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        samples += 1
        name = m.group("name")
        labels = parse_labels(m.group("labels"), errs, lineno) \
            if m.group("labels") is not None else []
        try:
            value = float(m.group("value"))
        except ValueError:
            if m.group("value") not in ("+Inf", "-Inf", "NaN"):
                errs.append(
                    f"line {lineno}: unparseable value {m.group('value')!r}")
            value = 0.0

        key = (name, tuple(sorted(labels)))
        if key in seen:
            errs.append(f"line {lineno}: duplicate sample {name}{labels}")
        seen.add(key)

        # Tie the sample back to its TYPE declaration.
        fam, suffix = base_family(name)
        if name in declared:
            fam, suffix = name, ""
        if fam not in declared:
            errs.append(f"line {lineno}: sample {name!r} has no TYPE comment")
            continue
        typ = declared[fam]
        if typ == "counter":
            if not name.endswith("_total"):
                errs.append(
                    f"line {lineno}: counter sample {name!r} "
                    "must end in _total")
            if value < 0:
                errs.append(f"line {lineno}: negative counter {name!r}")
        elif typ in ("summary", "histogram") and fam != name:
            allowed = {"_sum", "_count"} | (
                {"_bucket"} if typ == "histogram" else set())
            if suffix not in allowed:
                errs.append(
                    f"line {lineno}: {typ} {fam!r} has stray series {name!r}")
        if typ == "histogram":
            others = tuple(sorted(kv for kv in labels if kv[0] != "le"))
            h = histograms.setdefault(fam, {}).setdefault(
                others, {"buckets": [], "count": None})
            if suffix == "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    errs.append(
                        f"line {lineno}: bucket of {fam!r} missing le label")
                else:
                    h["buckets"].append((lineno, le, value))
            elif suffix == "_count":
                h["count"] = value

    for fam, by_labels in histograms.items():
        for labels, h in by_labels.items():
            if not h["buckets"]:
                continue
            inf = [v for _, le, v in h["buckets"] if le == "+Inf"]
            if not inf:
                errs.append(f"histogram {fam!r}{dict(labels)}: no +Inf bucket")
            elif h["count"] is not None and inf[0] != h["count"]:
                errs.append(
                    f"histogram {fam!r}{dict(labels)}: +Inf bucket "
                    f"{inf[0]} != _count {h['count']}")
            prev = None
            for lineno, le, v in h["buckets"]:
                if prev is not None and v < prev:
                    errs.append(
                        f"line {lineno}: histogram {fam!r} buckets "
                        "not cumulative")
                prev = v

    if errs:
        for e in errs:
            print(e, file=sys.stderr)
        print(f"FAIL: {len(errs)} violation(s) in {samples} sample(s)",
              file=sys.stderr)
        return 1
    print(f"ok: {samples} samples, {len(declared)} families")
    return 0


if __name__ == "__main__":
    sys.exit(main())
