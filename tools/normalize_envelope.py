#!/usr/bin/env python3
"""Zero out the wall-clock phase timings in a cfdclean JSON envelope.

Everything else in the envelope is deterministic, so after this pass the
output is byte-comparable against a committed golden.  Reads one envelope
on stdin, writes the normalized envelope (2-space indent, trailing
newline) on stdout.  Envelopes without a report.phases object (e.g. error
envelopes) pass through unchanged apart from re-indentation.

Also gates the envelope version: every producer (CLI subcommands, bench,
the serve daemon) emits the v2 shape — {"v": 2, "request": ..., "ok":
..., "report": ..., "diagnostics": [...]} — and a golden regenerated
from an older binary should fail here, not as a confusing diff.
"""
import json
import sys


def main() -> None:
    envelope = json.load(sys.stdin)
    if envelope.get("v") != 2:
        sys.exit(f"normalize_envelope: expected envelope v2, got {envelope.get('v')!r}")
    report = envelope.get("report") or {}
    phases = report.get("phases")
    if isinstance(phases, dict):
        for name in phases:
            phases[name] = 0.0
    json.dump(envelope, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
