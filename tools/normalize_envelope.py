#!/usr/bin/env python3
"""Zero out the wall-clock phase timings in a cfdclean JSON envelope.

Everything else in the envelope is deterministic, so after this pass the
output is byte-comparable against a committed golden.  Reads one envelope
on stdin, writes the normalized envelope (2-space indent, trailing
newline) on stdout.  Envelopes without a report.phases object (e.g. error
envelopes) pass through unchanged apart from re-indentation.
"""
import json
import sys


def main() -> None:
    envelope = json.load(sys.stdin)
    report = envelope.get("report") or {}
    phases = report.get("phases")
    if isinstance(phases, dict):
        for name in phases:
            phases[name] = 0.0
    json.dump(envelope, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
