(* The Dq_parallel pool and the byte-identical-at-any-job-count contract.

   Unit tests pin the pool's own semantics (chunking, exceptions,
   determinism of the merge order); qcheck properties then check that the
   parallel detection functions agree exactly with their sequential runs
   on random instances, for job counts including odd ones (7) whose
   uneven chunk boundaries would expose any merge-order dependence; and a
   seeded regression pins whole-repair and discovery determinism across
   job counts, including oversubscription (far more jobs than tuples) and
   the degenerate empty/single-tuple relations. *)

open Dq_relation
open Dq_cfd
open Dq_core
open Dq_workload
module Pool = Dq_parallel.Pool

let job_counts = [ 1; 2; 4; 7 ]

(* ---- pool unit tests -------------------------------------------------- *)

let test_ranges () =
  List.iter
    (fun (chunks, n) ->
      let rs = Pool.ranges ~chunks n in
      (* Contiguous cover of [0, n) in order. *)
      let expected_lo = ref 0 in
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !expected_lo lo;
          Alcotest.(check bool) "non-empty" true (hi > lo);
          expected_lo := hi)
        rs;
      Alcotest.(check int) "covers n" n !expected_lo;
      Alcotest.(check bool)
        "at most [chunks] ranges" true
        (List.length rs <= max chunks 1);
      (* Balanced: sizes differ by at most one. *)
      let sizes = List.map (fun (lo, hi) -> hi - lo) rs in
      match sizes with
      | [] -> Alcotest.(check int) "empty only when n = 0" 0 n
      | s :: rest ->
        let mn = List.fold_left min s rest and mx = List.fold_left max s rest in
        Alcotest.(check bool) "balanced" true (mx - mn <= 1))
    [ (1, 10); (3, 10); (4, 4); (7, 3); (16, 5); (2, 0); (5, 1) ]

let test_jobs_validation () =
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1 (got 0)") (fun () ->
      ignore (Pool.create ~jobs:0));
  Alcotest.check_raises "negative jobs rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1 (got -3)") (fun () ->
      ignore (Pool.create ~jobs:(-3)))

let test_parallel_for () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let n = 1_000 in
      let hits = Array.make n 0 in
      Pool.parallel_for pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "every index visited exactly once (jobs=%d)" jobs)
        true
        (Array.for_all (fun h -> h = 1) hits))
    job_counts

let test_map_reduce_order () =
  (* The fold must see chunk results in chunk-index order at any job
     count, so collecting (lo, hi) pairs reproduces [ranges] exactly. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let n = 103 in
      let seen =
        Pool.map_reduce pool ~chunks:jobs ~n
          ~map:(fun lo hi -> [ (lo, hi) ])
          ~fold:(fun acc r -> acc @ r)
          ~init:[]
      in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "chunk-index order (jobs=%d)" jobs)
        (Pool.ranges ~chunks:jobs n) seen)
    job_counts

let test_run_reraises () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  Alcotest.check_raises "task exception reaches the caller" Exit (fun () ->
      Pool.run pool
        (Array.init 8 (fun i -> fun () -> if i = 5 then raise Exit)));
  (* The pool survives a failed batch. *)
  let total =
    Pool.map_reduce pool ~chunks:4 ~n:100
      ~map:(fun lo hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        !s)
      ~fold:( + ) ~init:0
  in
  Alcotest.(check int) "pool usable after exception" 4950 total

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 in
  Pool.shutdown pool;
  Pool.shutdown pool

(* ---- qcheck: parallel detection = sequential detection ---------------- *)

(* Job-count-independent projection of a violation list; [find_all]'s
   order is canonical, so the projected lists must be equal {e as lists}. *)
let violations_key vs =
  List.map (fun v -> (Cfd.id (Violation.cfd_of v), Violation.tids v)) vs

let counts_key counts =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])

let equivalence_prop name check =
  QCheck.Test.make ~name ~count:60 Helpers.Gen.instance (fun (rel, sigma) ->
      List.for_all
        (fun jobs -> Pool.with_pool ~jobs (fun pool -> check pool rel sigma))
        job_counts)

let prop_find_all =
  equivalence_prop "find_all: parallel = sequential, canonical order"
    (fun pool rel sigma ->
      violations_key (Violation.find_all ~pool rel sigma)
      = violations_key (Violation.find_all rel sigma))

let prop_vio_counts =
  equivalence_prop "vio_counts: parallel = sequential" (fun pool rel sigma ->
      counts_key (Violation.vio_counts ~pool rel sigma)
      = counts_key (Violation.vio_counts rel sigma))

let prop_total =
  equivalence_prop "total: parallel = sequential" (fun pool rel sigma ->
      Violation.total ~pool rel sigma = Violation.total rel sigma)

let prop_satisfies =
  equivalence_prop "satisfies: parallel = sequential" (fun pool rel sigma ->
      Violation.satisfies ~pool rel sigma = Violation.satisfies rel sigma)

(* ---- seeded regression: whole-pipeline determinism --------------------- *)

(* A small dirty instance from the synthetic workload generator. *)
let dirty_fixture n =
  let ds = Datagen.generate (Datagen.default_params ~n_tuples:n ~seed:11 ()) in
  let noise = Noise.inject (Noise.default_params ~rate:0.08 ~seed:12 ()) ds in
  (noise.Noise.dirty, ds)

(* Everything observable about a batch repair except wall-clock. *)
let batch_key (repair, (stats : Batch_repair.stats)) =
  ( Csv.save_string repair,
    stats.Batch_repair.steps,
    stats.Batch_repair.merges,
    stats.Batch_repair.rhs_fixes,
    stats.Batch_repair.lhs_fixes,
    stats.Batch_repair.nulls_introduced,
    stats.Batch_repair.cells_changed )

let inc_key (repair, (stats : Inc_repair.stats)) =
  ( Csv.save_string repair,
    stats.Inc_repair.tuples_processed,
    stats.Inc_repair.tuples_changed,
    stats.Inc_repair.cells_changed,
    stats.Inc_repair.nulls_introduced )

let check_all_jobs name expected f =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      Alcotest.(check bool)
        (Printf.sprintf "%s identical at jobs=%d" name jobs)
        true
        (f pool = expected))
    job_counts

let test_repair_determinism () =
  let rel, ds = dirty_fixture 300 in
  let sigma = ds.Datagen.sigma in
  let batch = batch_key (Helpers.ok (Batch_repair.repair rel sigma)) in
  check_all_jobs "Batch_repair.repair" batch (fun pool ->
      batch_key (Helpers.ok (Batch_repair.repair ~pool rel sigma)));
  let inc = inc_key (Helpers.ok (Inc_repair.repair_dirty rel sigma)) in
  check_all_jobs "Inc_repair.repair_dirty" inc (fun pool ->
      inc_key (Helpers.ok (Inc_repair.repair_dirty ~pool rel sigma)))

let test_discovery_determinism () =
  let _, ds = dirty_fixture 400 in
  let clean = ds.Datagen.dopt in
  let mined rel pool =
    let d = Discovery.discover ?pool rel in
    ( Cfd_parser.to_string d.Discovery.tableaus,
      d.Discovery.n_variable,
      d.Discovery.n_constant )
  in
  let expected = mined clean None in
  check_all_jobs "Discovery.discover" expected (fun pool ->
      mined clean (Some pool))

(* ---- degenerate shapes ------------------------------------------------- *)

let test_oversubscription () =
  (* Far more jobs than tuples: chunks clamp to the tuple count. *)
  let rel = Helpers.fig1_db () in
  let sigma = Helpers.fig1_sigma () in
  let expected = violations_key (Violation.find_all rel sigma) in
  Pool.with_pool ~jobs:16 @@ fun pool ->
  Alcotest.(check bool)
    "find_all with jobs >> tuples" true
    (violations_key (Violation.find_all ~pool rel sigma) = expected);
  Alcotest.(check int)
    "total with jobs >> tuples"
    (Violation.total rel sigma)
    (Violation.total ~pool rel sigma);
  let repair, _ = Helpers.ok (Batch_repair.repair rel sigma) in
  let repair', _ = Helpers.ok (Batch_repair.repair ~pool rel sigma) in
  Alcotest.(check int) "repair with jobs >> tuples" 0
    (Relation.dif repair repair')

let test_empty_relation () =
  let rel = Relation.create Helpers.order_schema in
  let sigma = Helpers.fig1_sigma () in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  Alcotest.(check int)
    "no violations in the empty relation" 0
    (List.length (Violation.find_all ~pool rel sigma));
  Alcotest.(check int) "vio(empty) = 0" 0 (Violation.total ~pool rel sigma);
  Alcotest.(check bool)
    "empty relation satisfies" true
    (Violation.satisfies ~pool rel sigma)

let test_single_tuple () =
  let rel = Relation.create Helpers.order_schema in
  let values, weights = List.hd Helpers.fig1_rows in
  ignore (Relation.insert ~weights rel values);
  let sigma = Helpers.fig1_sigma () in
  let expected = violations_key (Violation.find_all rel sigma) in
  Pool.with_pool ~jobs:7 @@ fun pool ->
  Alcotest.(check bool)
    "single tuple, 7 jobs" true
    (violations_key (Violation.find_all ~pool rel sigma) = expected)

let suite =
  [
    Alcotest.test_case "ranges partition correctly" `Quick test_ranges;
    Alcotest.test_case "job count validation" `Quick test_jobs_validation;
    Alcotest.test_case "parallel_for covers every index" `Quick
      test_parallel_for;
    Alcotest.test_case "map_reduce folds in chunk order" `Quick
      test_map_reduce_order;
    Alcotest.test_case "run re-raises task exceptions" `Quick test_run_reraises;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    QCheck_alcotest.to_alcotest prop_find_all;
    QCheck_alcotest.to_alcotest prop_vio_counts;
    QCheck_alcotest.to_alcotest prop_total;
    QCheck_alcotest.to_alcotest prop_satisfies;
    Alcotest.test_case "repairs identical at any job count" `Quick
      test_repair_determinism;
    Alcotest.test_case "discovery identical at any job count" `Quick
      test_discovery_determinism;
    Alcotest.test_case "jobs >> tuples" `Quick test_oversubscription;
    Alcotest.test_case "empty relation" `Quick test_empty_relation;
    Alcotest.test_case "single tuple" `Quick test_single_tuple;
  ]
