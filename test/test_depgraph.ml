open Dq_relation
open Dq_cfd
open Dq_core
open Helpers

let test_scc_dag () =
  (* 0 -> 1 -> 2, no cycles: three components in topological order. *)
  let comp = Depgraph.scc ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "0 before 1" true (comp.(0) < comp.(1));
  Alcotest.(check bool) "1 before 2" true (comp.(1) < comp.(2))

let test_scc_cycle () =
  (* 0 <-> 1 form one component; 2 downstream. *)
  let comp = Depgraph.scc ~n:3 ~edges:[ (0, 1); (1, 0); (0, 2) ] in
  Alcotest.(check int) "cycle collapsed" comp.(0) comp.(1);
  Alcotest.(check bool) "2 after the cycle" true (comp.(2) > comp.(0))

let test_scc_disconnected () =
  let comp = Depgraph.scc ~n:4 ~edges:[] in
  Alcotest.(check int) "4 isolated components" 4
    (List.length (List.sort_uniq Int.compare (Array.to_list comp)))

let test_scc_self_loop () =
  let comp = Depgraph.scc ~n:2 ~edges:[ (0, 0); (0, 1) ] in
  Alcotest.(check bool) "self loop ok" true (comp.(0) < comp.(1))

let test_fig1_strata () =
  (* phi2: zip -> CT and phi4: CT,STR -> zip make zip and CT cyclic, so
     every clause of phi2 and phi4 shares a stratum. *)
  let sigma = fig1_sigma () in
  let strata = Depgraph.strata order_schema sigma in
  let stratum_of name rhs_attr =
    let found = ref None in
    Array.iteri
      (fun cid c ->
        if
          String.equal (Cfd.name c) name
          && Cfd.rhs c = Schema.position_exn order_schema rhs_attr
        then found := Some strata.(cid))
      sigma;
    Option.get !found
  in
  Alcotest.(check int) "phi2 CT and phi4 zip share a stratum"
    (stratum_of "phi2" "CT") (stratum_of "phi4" "zip");
  (* phi3's RHS name depends on nothing downstream of the cycle. *)
  Alcotest.(check bool) "strata assigned to all clauses" true
    (Array.length strata = Array.length sigma)

let prop_scc_respects_edges =
  QCheck.Test.make ~name:"edges never point to lower components" ~count:200
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let comp = Depgraph.scc ~n:10 ~edges in
      List.for_all (fun (u, v) -> comp.(u) <= comp.(v)) edges)

let prop_scc_mutual_reachability =
  (* Nodes on a generated cycle end up in one component. *)
  QCheck.Test.make ~name:"cycles collapse" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 2 6) (int_bound 9))
    (fun nodes ->
      let distinct = List.sort_uniq Int.compare nodes in
      QCheck.assume (List.length distinct >= 2);
      let cycle_edges =
        let arr = Array.of_list distinct in
        Array.to_list
          (Array.mapi
             (fun i x -> (x, arr.((i + 1) mod Array.length arr)))
             arr)
      in
      let comp = Depgraph.scc ~n:10 ~edges:cycle_edges in
      List.for_all (fun x -> comp.(x) = comp.(List.hd distinct)) distinct)

(* Reachability closure by Floyd–Warshall: [reach.(u).(v)] iff a
   non-empty edge path u → v exists. *)
let reachability ~n edges =
  let reach = Array.make_matrix n n false in
  List.iter (fun (u, v) -> reach.(u).(v) <- true) edges;
  for k = 0 to n - 1 do
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if reach.(u).(k) && reach.(k).(v) then reach.(u).(v) <- true
      done
    done
  done;
  reach

let prop_scc_reverse_topo =
  (* Component ids are exactly the condensation's topological order:
     strict reachability means a strictly lower id, and two nodes share
     an id iff they reach each other.  Random edge lists over 10 nodes
     mix DAG parts with back edges. *)
  QCheck.Test.make ~name:"component ids order the condensation" ~count:300
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let n = 10 in
      let comp = Depgraph.scc ~n ~edges in
      let reach = reachability ~n edges in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then
            if reach.(u).(v) && reach.(v).(u) then
              ok := !ok && comp.(u) = comp.(v)
            else begin
              ok := !ok && comp.(u) <> comp.(v);
              if reach.(u).(v) then ok := !ok && comp.(u) < comp.(v)
            end
        done
      done;
      !ok)

let prop_scc_edge_permutation =
  (* The canonical numbering is a function of the edge set: permuting
     (here: reversing) and duplicating the edge list changes nothing. *)
  QCheck.Test.make ~name:"scc stable under edge permutation" ~count:200
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let comp = Depgraph.scc ~n:10 ~edges in
      let shuffled = List.rev edges @ edges in
      comp = Depgraph.scc ~n:10 ~edges:shuffled)

let prop_strata_permutation =
  (* Strata are per-clause data, so permuting Σ must permute the strata
     the same way: [strata(π·Σ)ᵢ = strata(Σ)_{π(i)}]. *)
  QCheck.Test.make ~name:"strata stable under clause permutation" ~count:200
    QCheck.(pair (make Helpers.Gen.sigma_gen) (small_list small_int))
    (fun (sigma, keys) ->
      let n = Array.length sigma in
      let key i = match List.nth_opt keys i with Some k -> k | None -> 0 in
      let perm = Array.init n (fun i -> i) in
      Array.sort (fun i j -> compare (key i, i) (key j, j)) perm;
      let permuted =
        Cfd.number (Array.to_list (Array.map (fun p -> sigma.(p)) perm))
      in
      let s_orig = Depgraph.strata Gen.schema sigma in
      let s_perm = Depgraph.strata Gen.schema permuted in
      Array.for_all Fun.id
        (Array.init n (fun i -> s_perm.(i) = s_orig.(perm.(i)))))

let suite =
  [
    Alcotest.test_case "DAG order" `Quick test_scc_dag;
    Alcotest.test_case "cycle collapsed" `Quick test_scc_cycle;
    Alcotest.test_case "disconnected nodes" `Quick test_scc_disconnected;
    Alcotest.test_case "self loop" `Quick test_scc_self_loop;
    Alcotest.test_case "fig1 strata" `Quick test_fig1_strata;
    QCheck_alcotest.to_alcotest prop_scc_respects_edges;
    QCheck_alcotest.to_alcotest prop_scc_mutual_reachability;
    QCheck_alcotest.to_alcotest prop_scc_reverse_topo;
    QCheck_alcotest.to_alcotest prop_scc_edge_permutation;
    QCheck_alcotest.to_alcotest prop_strata_permutation;
  ]
