(* Property-based tests of the end-to-end repair guarantees on random
   instances: random small relations, random CFD sets (random FDs plus
   random constant rows).  Theorem 4.2 / 5.3: the algorithms terminate and
   produce consistent instances, never inventing or dropping tuples. *)

open Dq_relation
open Dq_cfd
open Dq_core

(* Generators live in {!Helpers.Gen}, shared with the parallel suite. *)
open Helpers.Gen

let satisfiable sigma = Satisfiability.is_satisfiable schema sigma

let same_tids r1 r2 =
  Relation.cardinality r1 = Relation.cardinality r2
  && Relation.fold (fun ok t -> ok && Relation.mem r2 (Tuple.tid t)) true r1

let prop_batch_repair_satisfies =
  QCheck.Test.make ~name:"BATCHREPAIR yields a consistent instance" ~count:150
    instance
    (fun (rel, sigma) ->
      QCheck.assume (satisfiable sigma);
      let repair, _ = Helpers.ok (Batch_repair.repair rel sigma) in
      Violation.satisfies repair sigma)

let prop_batch_repair_preserves_tuples =
  QCheck.Test.make ~name:"BATCHREPAIR preserves the tuple set" ~count:100
    instance
    (fun (rel, sigma) ->
      QCheck.assume (satisfiable sigma);
      let repair, _ = Helpers.ok (Batch_repair.repair rel sigma) in
      same_tids rel repair)

let prop_batch_repair_clean_fixpoint =
  QCheck.Test.make ~name:"BATCHREPAIR is a no-op on consistent data" ~count:100
    instance
    (fun (rel, sigma) ->
      QCheck.assume (satisfiable sigma);
      let first, _ = Helpers.ok (Batch_repair.repair rel sigma) in
      let second, stats = Helpers.ok (Batch_repair.repair first sigma) in
      stats.Batch_repair.cells_changed = 0 && Relation.dif first second = 0)

let prop_batch_stats_consistent =
  QCheck.Test.make ~name:"cells_changed agrees with dif" ~count:100 instance
    (fun (rel, sigma) ->
      QCheck.assume (satisfiable sigma);
      let repair, stats = Helpers.ok (Batch_repair.repair rel sigma) in
      stats.Batch_repair.cells_changed = Relation.dif rel repair)

let prop_increpair_satisfies =
  QCheck.Test.make ~name:"INCREPAIR (section 5.3) yields a consistent instance"
    ~count:150 instance
    (fun (rel, sigma) ->
      QCheck.assume (satisfiable sigma);
      let repair, _ = Helpers.ok (Inc_repair.repair_dirty rel sigma) in
      Violation.satisfies repair sigma && same_tids rel repair)

let prop_increpair_orderings_agree_on_consistency =
  QCheck.Test.make ~name:"all INCREPAIR orderings yield consistent instances"
    ~count:60 instance
    (fun (rel, sigma) ->
      QCheck.assume (satisfiable sigma);
      List.for_all
        (fun ordering ->
          let repair, _ = Helpers.ok (Inc_repair.repair_dirty ~ordering rel sigma) in
          Violation.satisfies repair sigma)
        [ Inc_repair.Linear; Inc_repair.By_violations; Inc_repair.By_weight ])

let prop_insertions_never_touch_base =
  QCheck.Test.make ~name:"INCREPAIR insertions never modify the clean base"
    ~count:80
    (QCheck.make QCheck.Gen.(triple instance_gen tuple_gen tuple_gen))
    (fun ((rel, sigma), v1, v2) ->
      QCheck.assume (satisfiable sigma);
      let base, _ = Helpers.ok (Batch_repair.repair rel sigma) in
      let delta =
        [ Tuple.create ~tid:9_000 v1; Tuple.create ~tid:9_001 v2 ]
      in
      let repair, _ = Helpers.ok (Inc_repair.repair_inserts base delta sigma) in
      Violation.satisfies repair sigma
      && Relation.fold
           (fun ok t ->
             ok && Tuple.equal_values t (Relation.find_exn repair (Tuple.tid t)))
           true base)

let prop_violation_detection_agrees_with_repair =
  QCheck.Test.make
    ~name:"satisfies(D) iff repairing changes nothing is needed" ~count:100
    instance
    (fun (rel, sigma) ->
      QCheck.assume (satisfiable sigma);
      let clean = Violation.satisfies rel sigma in
      if clean then
        let _, stats = Helpers.ok (Batch_repair.repair rel sigma) in
        stats.Batch_repair.cells_changed = 0
      else true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_batch_repair_satisfies;
      prop_batch_repair_preserves_tuples;
      prop_batch_repair_clean_fixpoint;
      prop_batch_stats_consistent;
      prop_increpair_satisfies;
      prop_increpair_orderings_agree_on_consistency;
      prop_insertions_never_touch_base;
      prop_violation_detection_agrees_with_repair;
    ]
