(* The observability layer: Json rendering, the Metrics registry, the
   Report determinism contract (stable under --jobs), and provenance
   replay — the trail recorded by a repair, applied back to the dirty
   input, must reproduce the repaired relation. *)

open Dq_relation
open Dq_core
open Helpers
module Pool = Dq_parallel.Pool
module Json = Dq_obs.Json
module Metrics = Dq_obs.Metrics
module Report = Dq_obs.Report
module Provenance = Dq_obs.Provenance

(* ---- Json ------------------------------------------------------------- *)

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.String "x\"y" ]);
        ("c", Json.Float 1.5);
      ]
  in
  Alcotest.(check string)
    "minified, construction order"
    {|{"a":1,"b":[true,null,"x\"y"],"c":1.5}|}
    (String.trim (Json.to_string ~minify:true v));
  Alcotest.(check string)
    "non-finite floats render as null" "null"
    (String.trim (Json.to_string ~minify:true (Json.Float Float.nan)));
  Alcotest.(check string)
    "control characters escaped" {|"a\nb\u0001"|}
    (String.trim (Json.to_string ~minify:true (Json.String "a\nb\x01")))

(* ---- Metrics ----------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Metrics.set_enabled false;
  Metrics.reset ();
  let c = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "disabled counter stays zero" 0 (Metrics.counter_value c)

let test_metrics_enabled () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let c = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter_value c);
  let t = Metrics.timer "test.obs.timer" in
  Metrics.record t 0.25;
  Metrics.record t 0.75;
  match Metrics.snapshot () with
  | Json.Obj [ ("counters", Json.Obj cs); ("timers", Json.Obj ts) ] ->
    Alcotest.(check bool) "counter in snapshot" true
      (List.mem_assoc "test.obs.counter" cs);
    (match List.assoc_opt "test.obs.timer" ts with
    | Some (Json.Obj fields) ->
      Alcotest.(check bool) "timer count" true
        (List.assoc_opt "count" fields = Some (Json.Int 2))
    | _ -> Alcotest.fail "timer entry missing or malformed");
    let names = List.map fst cs in
    Alcotest.(check (list string))
      "counters sorted by name"
      (List.sort compare names)
      names
  | _ -> Alcotest.fail "snapshot is not {counters; timers}"

(* ---- Report ------------------------------------------------------------ *)

let entry =
  {
    Provenance.tid = 3;
    attr = 1;
    attr_name = "CT";
    old_value = Value.of_string "PHI";
    new_value = Value.of_string "NYC";
    clause = Some "phi2";
    cost_delta = 0.5;
    pass = 7;
  }

let test_report_timing_excluded () =
  let r1 =
    Report.make ~engine:"x"
      ~summary:[ ("n", Json.Int 1) ]
      ~phases:[ ("a", 0.5) ]
      ~provenance:[ entry ] ()
  in
  let r2 =
    Report.make ~engine:"x"
      ~summary:[ ("n", Json.Int 1) ]
      ~phases:[ ("a", 0.9); ("b", 0.1) ]
      ~provenance:[ entry ] ()
  in
  Alcotest.(check bool) "equal ignores phases" true (Report.equal r1 r2);
  Alcotest.(check string)
    "stable_json ignores phases"
    (Json.to_string (Report.stable_json r1))
    (Json.to_string (Report.stable_json r2));
  let r3 = Report.make ~engine:"x" ~summary:[ ("n", Json.Int 1) ] () in
  Alcotest.(check bool)
    "provenance is part of equality" false (Report.equal r1 r3)

(* ---- determinism across job counts ------------------------------------ *)

let job_counts = [ 1; 4; 7 ]

let batch_stable ?pool rel sigma =
  Json.to_string
    (Report.stable_json (ok_report (Batch_repair.repair ?pool rel sigma)))

let test_report_stable_under_jobs () =
  let db = fig1_db () and sigma = fig1_sigma () in
  let expected = batch_stable db sigma in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      Alcotest.(check string)
        (Printf.sprintf "stable_json identical at jobs=%d" jobs)
        expected
        (batch_stable ~pool db sigma))
    job_counts

let prop_report_stable_under_jobs =
  QCheck.Test.make
    ~name:"Report.stable_json byte-identical across jobs {1,4,7}" ~count:40
    Gen.instance
    (fun (rel, sigma) ->
      QCheck.assume (Dq_cfd.Satisfiability.is_satisfiable Gen.schema sigma);
      let expected = batch_stable rel sigma in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs @@ fun pool ->
          String.equal expected (batch_stable ~pool rel sigma))
        job_counts)

(* ---- provenance replay ------------------------------------------------ *)

(* Every cell that differs between [before] and [after] must be covered
   by a trail entry. *)
let check_changed_cells_covered before after entries =
  let covered = Hashtbl.create 64 in
  List.iter
    (fun e -> Hashtbl.replace covered (e.Provenance.tid, e.Provenance.attr) ())
    entries;
  Relation.iter
    (fun t ->
      match Relation.find before (Tuple.tid t) with
      | None -> ()
      | Some orig ->
        for pos = 0 to Tuple.arity t - 1 do
          if not (Value.equal (Tuple.get orig pos) (Tuple.get t pos)) then
            Alcotest.(check bool)
              (Printf.sprintf "entry for changed cell (t%d, %d)" (Tuple.tid t)
                 pos)
              true
              (Hashtbl.mem covered (Tuple.tid t, pos))
        done)
    after

let test_batch_replay_reconstructs () =
  let db = fig1_db () and sigma = fig1_sigma () in
  let run ?pool () =
    let (repaired, _stats), report = ok2 (Batch_repair.repair ?pool db sigma) in
    Alcotest.(check bool)
      "repair changed something" true
      (List.length report.Report.provenance > 0);
    check_changed_cells_covered db repaired report.Report.provenance;
    let replayed = Provenance.replay db report.Report.provenance in
    Alcotest.(check string)
      "replay reproduces the repair byte-for-byte"
      (Csv.save_string repaired)
      (Csv.save_string replayed)
  in
  run ();
  Pool.with_pool ~jobs:4 (fun pool -> run ~pool ())

let test_inc_replay_reconstructs () =
  let db = fig1_db () and sigma = fig1_sigma () in
  let run ?pool () =
    let (repaired, _stats), report =
      ok2 (Inc_repair.repair_dirty ?pool db sigma)
    in
    check_changed_cells_covered db repaired report.Report.provenance;
    (* repair_dirty reorders tuples (consistent core first), so compare
       tid-by-tid rather than byte-by-byte. *)
    let replayed = Provenance.replay db report.Report.provenance in
    Alcotest.(check int)
      "replay agrees with the repair on every cell" 0
      (Relation.dif repaired replayed)
  in
  run ();
  Pool.with_pool ~jobs:4 (fun pool -> run ~pool ())

let suite =
  [
    Alcotest.test_case "json rendering" `Quick test_json_render;
    Alcotest.test_case "metrics disabled is a no-op" `Quick
      test_metrics_disabled_noop;
    Alcotest.test_case "metrics enabled" `Quick test_metrics_enabled;
    Alcotest.test_case "report timing excluded from equality" `Quick
      test_report_timing_excluded;
    Alcotest.test_case "report stable under --jobs (fig1)" `Quick
      test_report_stable_under_jobs;
    Alcotest.test_case "batch provenance replay" `Quick
      test_batch_replay_reconstructs;
    Alcotest.test_case "incremental provenance replay" `Quick
      test_inc_replay_reconstructs;
    QCheck_alcotest.to_alcotest prop_report_stable_under_jobs;
  ]
