(* The observability layer: Json rendering, the Metrics registry, the
   Report determinism contract (stable under --jobs), and provenance
   replay — the trail recorded by a repair, applied back to the dirty
   input, must reproduce the repaired relation. *)

open Dq_relation
open Dq_core
open Helpers
module Pool = Dq_parallel.Pool
module Json = Dq_obs.Json
module Metrics = Dq_obs.Metrics
module Report = Dq_obs.Report
module Provenance = Dq_obs.Provenance

(* ---- Json ------------------------------------------------------------- *)

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.String "x\"y" ]);
        ("c", Json.Float 1.5);
      ]
  in
  Alcotest.(check string)
    "minified, construction order"
    {|{"a":1,"b":[true,null,"x\"y"],"c":1.5}|}
    (String.trim (Json.to_string ~minify:true v));
  Alcotest.(check string)
    "non-finite floats render as null" "null"
    (String.trim (Json.to_string ~minify:true (Json.Float Float.nan)));
  Alcotest.(check string)
    "control characters escaped" {|"a\nb\u0001"|}
    (String.trim (Json.to_string ~minify:true (Json.String "a\nb\x01")))

(* ---- Metrics ----------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Metrics.set_enabled false;
  Metrics.reset ();
  let c = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "disabled counter stays zero" 0 (Metrics.counter_value c)

let test_metrics_enabled () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let c = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter_value c);
  let t = Metrics.timer "test.obs.timer" in
  Metrics.record t 0.25;
  Metrics.record t 0.75;
  match Metrics.snapshot () with
  | Json.Obj
      [
        ("counters", Json.Obj cs);
        ("timers", Json.Obj ts);
        ("gauges", Json.Obj _);
        ("histograms", Json.Obj _);
      ] ->
    Alcotest.(check bool) "counter in snapshot" true
      (List.mem_assoc "test.obs.counter" cs);
    (match List.assoc_opt "test.obs.timer" ts with
    | Some (Json.Obj fields) ->
      Alcotest.(check bool) "timer count" true
        (List.assoc_opt "count" fields = Some (Json.Int 2))
    | _ -> Alcotest.fail "timer entry missing or malformed");
    let names = List.map fst cs in
    Alcotest.(check (list string))
      "counters sorted by name"
      (List.sort compare names)
      names
  | _ -> Alcotest.fail "snapshot is not {counters; timers; gauges; histograms}"

(* Counters are monotonic: a negative increment is clamped to a no-op by
   default (a daemon must not die on a bad delta) and raises under
   strict mode (the test suite, debug builds). *)
let test_metrics_negative_add () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_strict false;
      Metrics.set_enabled false)
  @@ fun () ->
  let c = Metrics.counter "test.obs.neg" in
  Metrics.add c 3;
  Metrics.add c (-2);
  Alcotest.(check int) "negative add clamps to a no-op" 3
    (Metrics.counter_value c);
  Metrics.set_strict true;
  (match Metrics.add c (-1) with
  | () -> Alcotest.fail "strict negative add did not raise"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "error names the counter" true
      (Helpers.contains msg "test.obs.neg"));
  Alcotest.(check int) "value unchanged after the strict raise" 3
    (Metrics.counter_value c);
  (* The contract is checked even with collection off: a negative delta
     is a caller bug regardless of whether anyone is recording. *)
  Metrics.set_enabled false;
  match Metrics.add c (-1) with
  | () -> Alcotest.fail "strict negative add ignored while disabled"
  | exception Invalid_argument _ -> ()

let test_gauge_semantics () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set_gauge g 5.;
  Metrics.add_gauge g 1.;
  Alcotest.(check (float 0.)) "disabled gauge stays zero" 0.
    (Metrics.gauge_value g);
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  Metrics.set_gauge g 5.;
  Metrics.add_gauge g 2.5;
  Metrics.add_gauge g (-1.5);
  Alcotest.(check (float 1e-9)) "set then signed adds" 6.
    (Metrics.gauge_value g);
  (* Adds from pool workers are atomic with respect to each other: 32
     concurrent +1s always sum to exactly 32, at jobs 1 and 4. *)
  List.iter
    (fun jobs ->
      Metrics.set_gauge g 0.;
      Pool.with_pool ~jobs (fun pool ->
          Pool.run pool (Array.init 32 (fun _ () -> Metrics.add_gauge g 1.)));
      Alcotest.(check (float 0.))
        (Printf.sprintf "32 worker adds sum exactly at jobs=%d" jobs)
        32. (Metrics.gauge_value g))
    [ 1; 4 ]

let test_histogram_buckets () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let h = Metrics.histogram ~buckets:[| 1.; 10.; 100. |] "test.obs.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.; 1000. ];
  Alcotest.(check int) "observation count" 4 (Metrics.histogram_count h);
  (* The exposition renders cumulative bucket counts: le="1" holds 0.5
     and the boundary value 1.0 (bounds are inclusive), le="10" adds 5,
     le="100" adds nothing, +Inf catches 1000. *)
  let text = Metrics.to_prometheus ~prefix:"test.obs.hist" () in
  let expected =
    "# TYPE cfdclean_test_obs_hist histogram\n\
     cfdclean_test_obs_hist_bucket{le=\"1\"} 2\n\
     cfdclean_test_obs_hist_bucket{le=\"10\"} 3\n\
     cfdclean_test_obs_hist_bucket{le=\"100\"} 3\n\
     cfdclean_test_obs_hist_bucket{le=\"+Inf\"} 4\n\
     cfdclean_test_obs_hist_sum 1006.5\n\
     cfdclean_test_obs_hist_count 4\n"
  in
  Alcotest.(check string) "cumulative buckets" expected text

(* The exposition golden: stable family ordering, label escaping, the
   counter _total convention, all filtered by instrument-name prefix so
   the rest of the process registry stays out of the comparison. *)
let test_prometheus_exposition () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let c =
    Metrics.counter
      ~labels:[ ("status", "200"); ("route", "GET /x") ]
      "promtest.requests"
  in
  Metrics.add c 3;
  let g = Metrics.gauge "promtest.live" in
  Metrics.set_gauge g 2.;
  let esc = Metrics.counter ~labels:[ ("k", "a\\b\"c\nd") ] "promtest.esc" in
  Metrics.incr esc;
  let got = Metrics.to_prometheus ~prefix:"promtest." () in
  let expected =
    "# TYPE cfdclean_promtest_esc_total counter\n\
     cfdclean_promtest_esc_total{k=\"a\\\\b\\\"c\\nd\"} 1\n\
     # TYPE cfdclean_promtest_live gauge\n\
     cfdclean_promtest_live 2\n\
     # TYPE cfdclean_promtest_requests_total counter\n\
     cfdclean_promtest_requests_total{route=\"GET /x\",status=\"200\"} 3\n"
  in
  Alcotest.(check string) "exposition golden" expected got;
  (* Labels are canonicalised: the permuted label set names the same
     instrument, so re-registering adds nothing. *)
  let c' =
    Metrics.counter
      ~labels:[ ("route", "GET /x"); ("status", "200") ]
      "promtest.requests"
  in
  Metrics.incr c';
  Alcotest.(check int) "label order canonical" 4 (Metrics.counter_value c)

(* ---- Report ------------------------------------------------------------ *)

let entry =
  {
    Provenance.tid = 3;
    attr = 1;
    attr_name = "CT";
    old_value = Value.of_string "PHI";
    new_value = Value.of_string "NYC";
    clause = Some "phi2";
    cost_delta = 0.5;
    pass = 7;
  }

let test_report_timing_excluded () =
  let r1 =
    Report.make ~engine:"x"
      ~summary:[ ("n", Json.Int 1) ]
      ~phases:[ ("a", 0.5) ]
      ~provenance:[ entry ] ()
  in
  let r2 =
    Report.make ~engine:"x"
      ~summary:[ ("n", Json.Int 1) ]
      ~phases:[ ("a", 0.9); ("b", 0.1) ]
      ~provenance:[ entry ] ()
  in
  Alcotest.(check bool) "equal ignores phases" true (Report.equal r1 r2);
  Alcotest.(check string)
    "stable_json ignores phases"
    (Json.to_string (Report.stable_json r1))
    (Json.to_string (Report.stable_json r2));
  let r3 = Report.make ~engine:"x" ~summary:[ ("n", Json.Int 1) ] () in
  Alcotest.(check bool)
    "provenance is part of equality" false (Report.equal r1 r3)

(* ---- determinism across job counts ------------------------------------ *)

let job_counts = [ 1; 4; 7 ]

let batch_stable ?pool rel sigma =
  Json.to_string
    (Report.stable_json (ok_report (Batch_repair.repair ?pool rel sigma)))

let test_report_stable_under_jobs () =
  let db = fig1_db () and sigma = fig1_sigma () in
  let expected = batch_stable db sigma in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      Alcotest.(check string)
        (Printf.sprintf "stable_json identical at jobs=%d" jobs)
        expected
        (batch_stable ~pool db sigma))
    job_counts

let prop_report_stable_under_jobs =
  QCheck.Test.make
    ~name:"Report.stable_json byte-identical across jobs {1,4,7}" ~count:40
    Gen.instance
    (fun (rel, sigma) ->
      QCheck.assume (Dq_cfd.Satisfiability.is_satisfiable Gen.schema sigma);
      let expected = batch_stable rel sigma in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs @@ fun pool ->
          String.equal expected (batch_stable ~pool rel sigma))
        job_counts)

(* ---- provenance replay ------------------------------------------------ *)

(* Every cell that differs between [before] and [after] must be covered
   by a trail entry. *)
let check_changed_cells_covered before after entries =
  let covered = Hashtbl.create 64 in
  List.iter
    (fun e -> Hashtbl.replace covered (e.Provenance.tid, e.Provenance.attr) ())
    entries;
  Relation.iter
    (fun t ->
      match Relation.find before (Tuple.tid t) with
      | None -> ()
      | Some orig ->
        for pos = 0 to Tuple.arity t - 1 do
          if not (Value.equal (Tuple.get orig pos) (Tuple.get t pos)) then
            Alcotest.(check bool)
              (Printf.sprintf "entry for changed cell (t%d, %d)" (Tuple.tid t)
                 pos)
              true
              (Hashtbl.mem covered (Tuple.tid t, pos))
        done)
    after

let test_batch_replay_reconstructs () =
  let db = fig1_db () and sigma = fig1_sigma () in
  let run ?pool () =
    let (repaired, _stats), report = ok2 (Batch_repair.repair ?pool db sigma) in
    Alcotest.(check bool)
      "repair changed something" true
      (List.length report.Report.provenance > 0);
    check_changed_cells_covered db repaired report.Report.provenance;
    let replayed = Provenance.replay db report.Report.provenance in
    Alcotest.(check string)
      "replay reproduces the repair byte-for-byte"
      (Csv.save_string repaired)
      (Csv.save_string replayed)
  in
  run ();
  Pool.with_pool ~jobs:4 (fun pool -> run ~pool ())

let test_inc_replay_reconstructs () =
  let db = fig1_db () and sigma = fig1_sigma () in
  let run ?pool () =
    let (repaired, _stats), report =
      ok2 (Inc_repair.repair_dirty ?pool db sigma)
    in
    check_changed_cells_covered db repaired report.Report.provenance;
    (* repair_dirty reorders tuples (consistent core first), so compare
       tid-by-tid rather than byte-by-byte. *)
    let replayed = Provenance.replay db report.Report.provenance in
    Alcotest.(check int)
      "replay agrees with the repair on every cell" 0
      (Relation.dif repaired replayed)
  in
  run ();
  Pool.with_pool ~jobs:4 (fun pool -> run ~pool ())

(* ---- Json parsing ------------------------------------------------------ *)

let test_json_parse () =
  let ok s = function
    | Ok v -> v
    | Error msg -> Alcotest.failf "parse %S failed: %s" s msg
  in
  let parse s = ok s (Json.parse s) in
  Alcotest.(check string)
    "object roundtrip"
    {|{"a":1,"b":[true,null,"x\"y"],"c":1.5}|}
    (String.trim
       (Json.to_string ~minify:true
          (parse {| {"a": 1, "b": [true, null, "x\"y"], "c": 1.5} |})));
  (match parse {|{"n": 12}|} with
  | Json.Obj [ ("n", Json.Int 12) ] -> ()
  | _ -> Alcotest.fail "integer literal parses as Int");
  (match parse {|{"n": 12.0}|} with
  | Json.Obj [ ("n", Json.Float 12.0) ] -> ()
  | _ -> Alcotest.fail "fractional literal parses as Float");
  (match parse {|"é\n"|} with
  | Json.String "\xc3\xa9\n" -> ()
  | _ -> Alcotest.fail "escape sequences decode");
  let rejected s =
    Alcotest.(check bool)
      (Printf.sprintf "%S rejected" s)
      true
      (Result.is_error (Json.parse s))
  in
  rejected "[1,]";
  rejected "{\"a\":1} trailing";
  rejected "{'a':1}";
  rejected ""

(* ---- Trace ------------------------------------------------------------- *)

module Trace = Dq_obs.Trace

(* Run [f] with a fresh enabled trace; return its result and the events. *)
let traced f =
  Trace.clear ();
  Trace.set_enabled true;
  let result =
    Fun.protect ~finally:(fun () -> Trace.set_enabled false) f
  in
  let events = Trace.events () in
  Trace.clear ();
  (result, events)

(* Bracket discipline per domain lane: within one tid, every E closes the
   innermost open B of the same name and does not travel back in time.
   (Paths span lanes — a worker chunk's logical parent lives on the
   submitting domain — so nesting of paths is checked separately, by
   prefix closure.) *)
let check_well_formed events =
  let stacks = Hashtbl.create 8 in
  let stack tid = try Hashtbl.find stacks tid with Not_found -> [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.ph with
      | `B -> Hashtbl.replace stacks e.tid ((e.name, e.ts) :: stack e.tid)
      | `E -> (
        match stack e.tid with
        | [] -> Alcotest.failf "E %S on tid %d with no open span" e.name e.tid
        | (name, ts) :: rest ->
          Alcotest.(check string)
            (Printf.sprintf "E matches innermost B on tid %d" e.tid)
            name e.name;
          Alcotest.(check bool)
            (Printf.sprintf "span %S ends at or after its start" e.name)
            true (e.ts >= ts);
          Hashtbl.replace stacks e.tid rest))
    events;
  Hashtbl.iter
    (fun tid st ->
      Alcotest.(check int)
        (Printf.sprintf "tid %d balanced" tid)
        0 (List.length st))
    stacks

(* Logical tree shape: every B path ends in the span's own name and its
   parent prefix is itself the path of some span — the observed path set
   is prefix-closed. *)
let check_paths_nested events =
  let b_paths = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      if e.ph = `B then Hashtbl.replace b_paths e.path ())
    events;
  List.iter
    (fun (e : Trace.event) ->
      if e.ph = `B then begin
        (match List.rev e.path with
        | last :: _ ->
          Alcotest.(check string) "path ends with span name" e.name last
        | [] -> Alcotest.fail "B event with empty path");
        match List.rev e.path with
        | _ :: (_ :: _ as parent_rev) ->
          Alcotest.(check bool)
            (Printf.sprintf "parent path of %s exists"
               (String.concat "/" e.path))
            true
            (Hashtbl.mem b_paths (List.rev parent_rev))
        | _ -> ()
      end)
    events

let path_set events =
  List.sort_uniq compare
    (List.filter_map
       (fun (e : Trace.event) -> if e.ph = `B then Some e.path else None)
       events)

let test_trace_disabled_noop () =
  Trace.clear ();
  let r = Trace.span "unrecorded" (fun () -> 41 + 1) in
  Alcotest.(check int) "span runs its thunk" 42 r;
  Alcotest.(check int) "nothing buffered" 0 (List.length (Trace.events ()))

let test_trace_well_formed () =
  let db = fig1_db () and sigma = fig1_sigma () in
  let _, events =
    traced (fun () ->
        Pool.with_pool ~jobs:4 @@ fun pool ->
        ok2 (Batch_repair.repair ~pool db sigma))
  in
  Alcotest.(check bool) "events recorded" true (events <> []);
  check_well_formed events;
  check_paths_nested events;
  (* exceptional exit still closes the span *)
  let _, events =
    traced (fun () ->
        try Trace.span "outer" (fun () -> failwith "boom") with _ -> ())
  in
  check_well_formed events

let test_trace_json_roundtrip () =
  let db = fig1_db () and sigma = fig1_sigma () in
  Trace.clear ();
  Trace.set_enabled true;
  ignore
    (Fun.protect
       ~finally:(fun () -> Trace.set_enabled false)
       (fun () -> ok2 (Batch_repair.repair db sigma)));
  let doc = Trace.to_json () in
  Trace.clear ();
  match Json.parse (Json.to_string ~minify:true doc) with
  | Error msg -> Alcotest.failf "trace JSON does not reparse: %s" msg
  | Ok (Json.Obj fields) ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "traceEvents missing or empty");
    Alcotest.(check bool)
      "displayTimeUnit present" true
      (List.assoc_opt "displayTimeUnit" fields = Some (Json.String "ms"))
  | Ok _ -> Alcotest.fail "trace JSON is not an object"

let test_trace_paths_jobs_independent () =
  let db = fig1_db () and sigma = fig1_sigma () in
  let run jobs =
    let _, events =
      traced (fun () ->
          Pool.with_pool ~jobs @@ fun pool ->
          ok2 (Batch_repair.repair ~pool db sigma))
    in
    path_set events
  in
  let p1 = run 1 and p4 = run 4 in
  Alcotest.(check int) "same number of distinct paths" (List.length p1)
    (List.length p4);
  Alcotest.(check bool) "identical path sets at jobs {1,4}" true (p1 = p4)

let prop_trace_paths_jobs_independent =
  QCheck.Test.make
    ~name:"trace span path set identical across jobs {1,4}" ~count:20
    Gen.instance
    (fun (rel, sigma) ->
      QCheck.assume (Dq_cfd.Satisfiability.is_satisfiable Gen.schema sigma);
      let run jobs =
        let _, events =
          traced (fun () ->
              Pool.with_pool ~jobs @@ fun pool ->
              ok_report (Batch_repair.repair ~pool rel sigma))
        in
        check_well_formed events;
        path_set events
      in
      run 1 = run 4)

let suite =
  [
    Alcotest.test_case "json rendering" `Quick test_json_render;
    Alcotest.test_case "json parsing" `Quick test_json_parse;
    Alcotest.test_case "trace disabled is a no-op" `Quick
      test_trace_disabled_noop;
    Alcotest.test_case "trace events well-formed" `Quick
      test_trace_well_formed;
    Alcotest.test_case "trace JSON reparses" `Quick test_trace_json_roundtrip;
    Alcotest.test_case "trace paths stable under --jobs (fig1)" `Quick
      test_trace_paths_jobs_independent;
    QCheck_alcotest.to_alcotest prop_trace_paths_jobs_independent;
    Alcotest.test_case "metrics disabled is a no-op" `Quick
      test_metrics_disabled_noop;
    Alcotest.test_case "metrics enabled" `Quick test_metrics_enabled;
    Alcotest.test_case "metrics: negative add clamps or raises" `Quick
      test_metrics_negative_add;
    Alcotest.test_case "metrics: gauge semantics (jobs 1 and 4)" `Quick
      test_gauge_semantics;
    Alcotest.test_case "metrics: histogram buckets" `Quick
      test_histogram_buckets;
    Alcotest.test_case "metrics: prometheus exposition golden" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "report timing excluded from equality" `Quick
      test_report_timing_excluded;
    Alcotest.test_case "report stable under --jobs (fig1)" `Quick
      test_report_stable_under_jobs;
    Alcotest.test_case "batch provenance replay" `Quick
      test_batch_replay_reconstructs;
    Alcotest.test_case "incremental provenance replay" `Quick
      test_inc_replay_reconstructs;
    QCheck_alcotest.to_alcotest prop_report_stable_under_jobs;
  ]
