open Dq_relation
open Dq_core
open Dq_workload

let dataset_with_repair () =
  let ds =
    Datagen.generate
      {
        Datagen.n_tuples = 600;
        n_cities = 10;
        n_streets_per_city = 4;
        n_items = 40;
        n_customers = 150;
        tableau_coverage = 0.8;
        seed = 5;
      }
  in
  let info = Noise.inject (Noise.default_params ~rate:0.05 ~seed:5 ()) ds in
  let repair, _ = Helpers.ok (Dq_core.Batch_repair.repair info.Noise.dirty ds.Datagen.sigma) in
  (ds, info, repair)

let oracle_against dopt t' =
  match Relation.find dopt (Tuple.tid t') with
  | Some truth -> not (Tuple.equal_values t' truth)
  | None -> true

let test_config_validation () =
  let ok = Sampling.default_config () in
  Alcotest.(check bool) "default valid" true
    (Result.is_ok (Sampling.validate_config ok));
  let bad_cases =
    [
      { ok with Sampling.epsilon = 0. };
      { ok with Sampling.confidence = 1. };
      { ok with Sampling.sample_size = 0 };
      { ok with Sampling.fractions = [| 0.5; 0.5 |] } (* wrong stratum count *);
      { ok with Sampling.fractions = [| 0.2; 0.3; 0.4 |] } (* sums to 0.9 *);
      { ok with Sampling.fractions = [| 0.5; 0.3; 0.2 |] } (* decreasing *);
      { ok with Sampling.strategy = Sampling.By_violations [ 3; 1 ] };
    ]
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) "invalid config rejected" true
        (Result.is_error (Sampling.validate_config c)))
    bad_cases

let test_perfect_repair_accepted () =
  let ds, info, _ = dataset_with_repair () in
  (* Inspect Dopt itself as the "repair": the oracle never complains. *)
  let report =
    Helpers.ok
      (Sampling.inspect
         (Sampling.default_config ~sample_size:300 ())
         ~original:info.Noise.dirty ~repair:ds.Datagen.dopt
         ~sigma:ds.Datagen.sigma
         ~oracle:(oracle_against ds.Datagen.dopt))
  in
  Alcotest.(check (float 1e-9)) "no inaccuracy" 0. report.Sampling.p_hat;
  Alcotest.(check bool) "accepted" true report.Sampling.accepted

let test_garbage_repair_rejected () =
  let ds, info, _ = dataset_with_repair () in
  (* A repair that nulls every CT is mostly wrong. *)
  let garbage = Relation.copy info.Noise.dirty in
  Relation.iter (fun t -> Relation.set_value garbage t Order_schema.ct Value.null) garbage;
  let report =
    Helpers.ok
      (Sampling.inspect
         (Sampling.default_config ~sample_size:200 ())
         ~original:info.Noise.dirty ~repair:garbage ~sigma:ds.Datagen.sigma
         ~oracle:(oracle_against ds.Datagen.dopt))
  in
  Alcotest.(check bool) "high inaccuracy" true (report.Sampling.p_hat > 0.5);
  Alcotest.(check bool) "rejected" false report.Sampling.accepted

let test_stratification_prioritises_suspects () =
  let ds, info, repair = dataset_with_repair () in
  let report =
    Helpers.ok
      (Sampling.inspect
         (Sampling.default_config ~sample_size:120 ())
         ~original:info.Noise.dirty ~repair ~sigma:ds.Datagen.sigma
         ~oracle:(oracle_against ds.Datagen.dopt))
  in
  let m = Array.length report.Sampling.strata_sizes in
  Alcotest.(check int) "three strata" 3 m;
  (* population is partitioned *)
  Alcotest.(check int) "strata cover the repair"
    (Relation.cardinality repair)
    (Array.fold_left ( + ) 0 report.Sampling.strata_sizes);
  (* drawn never exceeds stratum size or its fraction of the sample *)
  Array.iteri
    (fun i drawn ->
      Alcotest.(check bool) "drawn <= size" true
        (drawn <= report.Sampling.strata_sizes.(i)))
    report.Sampling.drawn;
  (* each stratum contributes its configured share of the sample (capped
     by the stratum's population) *)
  let config = Sampling.default_config ~sample_size:120 () in
  Array.iteri
    (fun i drawn ->
      let target =
        int_of_float
          (Float.round (config.Sampling.fractions.(i) *. 120.))
      in
      Alcotest.(check int)
        (Printf.sprintf "stratum %d draws min(target, size)" i)
        (min target report.Sampling.strata_sizes.(i))
        drawn)
    report.Sampling.drawn

let test_by_cost_strategy () =
  let ds, info, repair = dataset_with_repair () in
  let config =
    {
      (Sampling.default_config ~sample_size:100 ()) with
      Sampling.strategy = Sampling.By_cost [ 0.0001; 0.5 ];
    }
  in
  let report =
    Helpers.ok
      (Sampling.inspect config ~original:info.Noise.dirty ~repair
         ~sigma:ds.Datagen.sigma ~oracle:(oracle_against ds.Datagen.dopt))
  in
  Alcotest.(check int) "cost strata cover repair"
    (Relation.cardinality repair)
    (Array.fold_left ( + ) 0 report.Sampling.strata_sizes);
  (* unchanged tuples all land in stratum 0 *)
  Alcotest.(check bool) "stratum 0 dominated by unchanged" true
    (report.Sampling.strata_sizes.(0) > report.Sampling.strata_sizes.(2))

let test_deterministic_given_seed () =
  let ds, info, repair = dataset_with_repair () in
  let run seed =
    Helpers.ok
      (Sampling.inspect ~seed
         (Sampling.default_config ~sample_size:50 ())
         ~original:info.Noise.dirty ~repair ~sigma:ds.Datagen.sigma
         ~oracle:(fun _ -> false))
  in
  let r1 = run 9 and r2 = run 9 in
  Alcotest.(check (list int)) "same sample tids"
    (List.map (fun (_, t) -> Tuple.tid t) r1.Sampling.sample)
    (List.map (fun (_, t) -> Tuple.tid t) r2.Sampling.sample)

let test_invalid_config_rejected () =
  let ds, info, repair = dataset_with_repair () in
  let bad = { (Sampling.default_config ()) with Sampling.epsilon = 2.0 } in
  match
    Sampling.inspect bad ~original:info.Noise.dirty ~repair
      ~sigma:ds.Datagen.sigma ~oracle:(fun _ -> false)
  with
  | Error (Dq_error.Invalid_config msg) ->
    Alcotest.(check string)
      "config error message" "Sampling.inspect: epsilon must be in (0,1)" msg
  | Error e ->
    Alcotest.failf "unexpected error: %s" (Dq_error.to_string e)
  | Ok _ -> Alcotest.fail "invalid config was accepted"

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "perfect repair accepted" `Quick test_perfect_repair_accepted;
    Alcotest.test_case "garbage repair rejected" `Quick test_garbage_repair_rejected;
    Alcotest.test_case "stratification prioritises suspects" `Quick
      test_stratification_prioritises_suspects;
    Alcotest.test_case "cost-based strata" `Quick test_by_cost_strategy;
    Alcotest.test_case "deterministic sampling" `Quick test_deterministic_given_seed;
    Alcotest.test_case "invalid config rejected" `Quick test_invalid_config_rejected;
  ]
