(* The serve daemon stack, bottom to top: HTTP framing on plain strings,
   session semantics (ingest, quarantine, resolve), the crash-safe store
   round-trip, the batch-split determinism property the ingest queue
   promises, and an end-to-end socket test covering restart
   byte-identity.  The true kill -9 crash is exercised by the CI smoke
   job; here the restart path is driven in-process. *)

open Dq_relation
open Dq_cfd
module Http = Dq_serve.Http
module Session = Dq_serve.Session
module Store = Dq_serve.Store
module Serve = Dq_serve.Serve
module Json = Dq_obs.Json

let unwrap = function
  | Ok x -> x
  | Error e -> Alcotest.failf "serve error: %s" (Dq_error.to_string e)

(* ---- HTTP framing ------------------------------------------------------- *)

let test_http_parse () =
  let r =
    match
      Http.parse
        "POST /v1/sessions/s1/tuples?x=1 HTTP/1.1\r\nContent-Length: \
         4\r\nX-Deadline-Seconds: 2.5\r\n\r\nbodyEXTRA"
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e.Http.reason
  in
  Alcotest.(check string) "method" "POST" r.Http.meth;
  Alcotest.(check (list string))
    "path split, query dropped"
    [ "v1"; "sessions"; "s1"; "tuples" ]
    r.Http.path;
  Alcotest.(check string) "body sized by content-length" "body" r.Http.body;
  Alcotest.(check (option string))
    "case-insensitive header" (Some "2.5")
    (Http.header r "x-deadline-seconds")

let test_http_parse_bare_lf () =
  match Http.parse "GET /v1/health HTTP/1.1\n\n" with
  | Ok r -> Alcotest.(check string) "target" "/v1/health" r.Http.target
  | Error e -> Alcotest.failf "bare-LF head rejected: %s" e.Http.reason

let test_http_parse_errors () =
  let err input =
    match Http.parse input with
    | Ok _ -> Alcotest.failf "accepted %S" input
    | Error e -> e
  in
  let check_err name input status needle =
    let e = err input in
    Alcotest.(check int) (name ^ ": status") status e.Http.status;
    Alcotest.(check bool)
      (name ^ ": reason")
      true
      (Helpers.contains e.Http.reason needle)
  in
  check_err "unterminated head" "GET / HTTP/1.1\r\n" 400 "not terminated";
  check_err "truncated body" "GET / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"
    400 "truncated";
  check_err "bad request line" "NONSENSE\r\n\r\n" 400 "malformed request line";
  check_err "bad content-length" "GET / HTTP/1.1\r\ncontent-length: -4\r\n\r\n"
    400 "bad content-length";
  match
    Http.parse ~max_body:3 "GET / HTTP/1.1\r\ncontent-length: 9\r\n\r\nwaytolong"
  with
  | Ok _ -> Alcotest.fail "accepted an oversized body"
  | Error e ->
    Alcotest.(check int) "body limit is 413" 413 e.Http.status;
    Alcotest.(check bool)
      "body limit reason" true
      (Helpers.contains e.Http.reason "exceeds")

(* ---- sessions ----------------------------------------------------------- *)

let ab_schema = ("r", [ "A"; "B" ])

(* Two constant rows forcing B to both 10 and 20 when A = 1: the lint
   gate flags them (E002), so sessions need [force]; a tuple with A = 1
   can then only be settled by nulling B — the quarantine trigger. *)
let conflicting_rules =
  "p1: [A] -> [B] {\n  (1 || 10)\n}\np2: [A] -> [B] {\n  (1 || 20)\n}\n"

let make_session ?(force = false) ~rules () =
  let schema_name, attributes = ab_schema in
  Session.create ~id:"s1" ~schema_name ~attributes ~rules ~engine:"l-inc"
    ~force ()

let ints l = Array.of_list (List.map Value.int l)

let test_session_gates () =
  (match make_session ~rules:conflicting_rules () with
  | Error (Dq_error.Lint_gated { errors; _ }) ->
    Alcotest.(check bool) "lint gate counts errors" true (errors > 0)
  | Ok _ -> Alcotest.fail "conflicting rules passed the lint gate"
  | Error e -> Alcotest.failf "wrong gate: %s" (Dq_error.to_string e));
  (match
     let schema_name, attributes = ab_schema in
     Session.create ~id:"s1" ~schema_name ~attributes
       ~rules:"p1: [A] -> [B]\n" ~engine:"batch" ()
   with
  | Error (Dq_error.Engine_unsupported { engine; reason }) ->
    Alcotest.(check string) "engine named" "batch" engine;
    Alcotest.(check bool)
      "reason mentions ingest" true
      (Helpers.contains reason "ingest")
  | Ok _ -> Alcotest.fail "batch engine accepted for a session"
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e));
  match
    let schema_name, attributes = ab_schema in
    Session.create ~id:"s1" ~schema_name ~attributes
      ~rules:"p1: [A] -> [B]\np2: [B] -> [A]\n" ~engine:"l-inc" ()
  with
  | Error (Dq_error.Analyze_gated { cycles; _ }) ->
    Alcotest.(check bool) "cycle certified" true (cycles > 0)
  | Ok _ -> Alcotest.fail "cyclic Σ passed the termination gate"
  | Error e -> Alcotest.failf "wrong gate: %s" (Dq_error.to_string e)

let test_quarantine_lifecycle () =
  let s = unwrap (make_session ~force:true ~rules:conflicting_rules ()) in
  Session.with_lock s @@ fun () ->
  let outcomes, _stats, _report =
    unwrap
      (Session.ingest s [ (ints [ 1; 10 ], None); (ints [ 2; 20 ], None) ])
  in
  (match outcomes with
  | [ Session.Quarantined (1, [ 1 ]); Session.Clean 2 ] -> ()
  | _ -> Alcotest.fail "expected tid 1 quarantined on B, tid 2 clean");
  (* The quarantined tuple left the relation, which stays Σ-consistent,
     and is held in submitted form. *)
  Alcotest.(check int) "relation holds the clean tuple only" 1
    (Relation.cardinality s.Session.relation);
  Alcotest.(check int) "quarantine count" 1 (List.length s.Session.quarantine);
  let q =
    match Session.find_quarantined s 1 with
    | Some q -> q
    | None -> Alcotest.fail "tid 1 not in quarantine"
  in
  Alcotest.(check Helpers.value)
    "original value preserved" (Value.int 10)
    (Tuple.get q.Session.tuple 1);
  (* A resolution that still conflicts is refused and the entry stays. *)
  (match Session.resolve s 1 (Session.Replace (ints [ 1; 30 ], None)) with
  | Error (Dq_error.Invalid_input msg) ->
    Alcotest.(check bool)
      "refusal says unrepairable" true
      (Helpers.contains msg "unrepairable")
  | Ok _ -> Alcotest.fail "conflicting resolution accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e));
  Alcotest.(check int) "entry stayed" 1 (List.length s.Session.quarantine);
  (* A clean resolution re-ingests under the same tid. *)
  (match unwrap (Session.resolve s 1 (Session.Replace (ints [ 2; 20 ], None))) with
  | Session.Clean 1 -> ()
  | _ -> Alcotest.fail "resolution not clean");
  Alcotest.(check int) "quarantine drained" 0 (List.length s.Session.quarantine);
  Alcotest.(check int) "relation restored" 2
    (Relation.cardinality s.Session.relation);
  Alcotest.(check int) "resolved counter" 1 s.Session.resolved;
  (* Unknown tids are typed errors, and discard drops for good. *)
  (match Session.resolve s 99 Session.Discard with
  | Error (Dq_error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "unknown tid accepted");
  let outcomes, _, _ = unwrap (Session.ingest s [ (ints [ 1; 10 ], None) ]) in
  (match outcomes with
  | [ Session.Quarantined (3, _) ] -> ()
  | _ -> Alcotest.fail "expected tid 3 quarantined");
  (match unwrap (Session.resolve s 3 Session.Discard) with
  | Session.Clean 3 -> ()
  | _ -> Alcotest.fail "discard outcome");
  Alcotest.(check int) "discard drains quarantine" 0
    (List.length s.Session.quarantine)

(* ---- store round-trip ---------------------------------------------------- *)

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_store_%d" (Unix.getpid ()))
  in
  let rec cleanup path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> cleanup (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  cleanup dir;
  Fun.protect ~finally:(fun () -> cleanup dir) (fun () -> f dir)

let test_store_round_trip () =
  with_tmp_dir @@ fun dir ->
  let s = unwrap (make_session ~force:true ~rules:conflicting_rules ()) in
  Session.with_lock s (fun () ->
      (* Exercise every value constructor, a non-default weight vector
         and a quarantined entry: the exact cases a lossy encoding would
         corrupt.  0.1 has no finite binary expansion, so a decimal
         round-trip would shift it. *)
      let rows =
        [
          (ints [ 1; 10 ], None);
          ([| Value.float 0.1; Value.string "x,y" |], Some [| 0.25; 1.0 |]);
          ([| Value.Null; Value.int 3 |], None);
        ]
      in
      let _ = unwrap (Session.ingest s rows) in
      let (_ : int) = Store.save ~dir s in
      ());
  let loaded =
    match Store.load_dir dir with
    | Ok [ ("s1.json", loaded) ] -> loaded
    | Ok files ->
      Alcotest.failf "expected one session file, got %d" (List.length files)
    | Error msg -> Alcotest.failf "load_dir: %s" msg
  in
  let csv (x : Session.t) =
    Session.with_lock x (fun () -> Csv.save_string x.Session.relation)
  in
  Alcotest.(check string) "relation CSV byte-identical" (csv s) (csv loaded);
  Alcotest.(check int) "next_tid" s.Session.next_tid loaded.Session.next_tid;
  Alcotest.(check int) "batches" s.Session.batches loaded.Session.batches;
  Alcotest.(check int)
    "quarantine entries"
    (List.length s.Session.quarantine)
    (List.length loaded.Session.quarantine);
  (* Weights survive exactly: further ingest ordering (w-inc) and the
     cost model depend on them. *)
  let t = Relation.find_exn loaded.Session.relation 2 in
  Alcotest.(check (float 0.)) "weight exact" 0.25 (Tuple.weight t 0);
  Alcotest.(check Helpers.value)
    "float value exact" (Value.float 0.1)
    (Tuple.get t 0)

(* ---- batch-split determinism (the ingest-queue property) ----------------- *)

(* Acyclic FD rulesets over A..D rendered back to source text, so the
   session path (which parses rules) can consume them. *)
let fd_rules_gen =
  QCheck.Gen.(
    let attrs = [ "A"; "B"; "C"; "D" ] in
    let fd_gen i =
      let* lhs_size = 1 -- 2 in
      let* perm = shuffle_l attrs in
      let lhs = List.filteri (fun j _ -> j < lhs_size) perm in
      let rhs = [ List.nth perm lhs_size ] in
      return (Cfd.Tableau.fd ~name:(Printf.sprintf "p%d" i) ~lhs ~rhs)
    in
    let* n = 1 -- 3 in
    let* tabs = flatten_l (List.init n fd_gen) in
    return (Cfd_parser.to_string tabs))

let rows_gen =
  QCheck.Gen.(list_size (1 -- 16) Helpers.Gen.tuple_gen)

(* Random batch split: a list of cut points partitioning the rows. *)
let split_gen rows =
  QCheck.Gen.(
    let n = List.length rows in
    let* cuts = list_size (0 -- 3) (1 -- max 1 (n - 1)) in
    let cuts = List.sort_uniq compare (List.filter (fun c -> c < n) cuts) in
    let rec take k = function
      | [] -> ([], [])
      | x :: rest when k > 0 ->
        let a, b = take (k - 1) rest in
        (x :: a, b)
      | rest -> ([], rest)
    in
    let rec split off rows = function
      | [] -> [ rows ]
      | c :: cs ->
        let batch, rest = take (c - off) rows in
        batch :: split c rest cs
    in
    return (split 0 rows cuts))

let print_instance (rules, rows, batches) =
  let row values =
    "["
    ^ String.concat ";"
        (List.map Value.to_string (Array.to_list values))
    ^ "]"
  in
  Printf.sprintf "rules:\n%s\nrows: %s\nbatches: %s" rules
    (String.concat " " (List.map row rows))
    (String.concat " | "
       (List.map (fun b -> String.concat " " (List.map row b)) batches))

let serve_instance =
  QCheck.make ~print:print_instance
    QCheck.Gen.(
      let* rules = fd_rules_gen in
      let* rows = rows_gen in
      let* batches = split_gen rows in
      return (rules, rows, batches))

let no_quarantine outcomes =
  List.for_all (function Session.Quarantined _ -> false | _ -> true) outcomes

(* The contract behind serve's ingest queue: because sessions default to
   the linear (l-inc) ordering, draining N batches one by one leaves the
   same relation as one repair_inserts call over the concatenation —
   batch boundaries are invisible.  Checked at jobs 1 and 4. *)
let prop_batches_equal_one_shot =
  QCheck.Test.make
    ~name:"N ingest batches equal one-shot ingest, at jobs 1 and 4" ~count:60
    serve_instance
    (fun (rules, rows, batches) ->
      let run ?pool split =
        let s =
          match
            Session.create ~id:"s1" ~schema_name:"r"
              ~attributes:Helpers.Gen.attrs ~rules ~engine:"l-inc" ~force:true
              ()
          with
          | Ok s -> s
          | Error e ->
            QCheck.Test.fail_reportf "session create: %s" (Dq_error.to_string e)
        in
        Session.with_lock s @@ fun () ->
        List.iter
          (fun batch ->
            if batch <> [] then begin
              match
                Session.ingest ?pool s
                  (List.map (fun values -> (values, None)) batch)
              with
              | Ok (outcomes, _, _) -> QCheck.assume (no_quarantine outcomes)
              | Error e ->
                QCheck.Test.fail_reportf "ingest: %s" (Dq_error.to_string e)
            end)
          split;
        Csv.save_string s.Session.relation
      in
      let at jobs split =
        Dq_parallel.Pool.with_pool ~jobs (fun pool -> run ~pool split)
      in
      let split_1 = run batches in
      let one_shot_1 = run [ rows ] in
      String.equal split_1 one_shot_1
      && String.equal split_1 (at 4 batches)
      && String.equal one_shot_1 (at 4 [ rows ]))

(* ---- end-to-end over sockets --------------------------------------------- *)

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents buf

let rec index_sub s off sub =
  let n = String.length sub in
  if off + n > String.length s then None
  else if String.sub s off n = sub then Some off
  else index_sub s (off + 1) sub

let decode_chunked body =
  let out = Buffer.create (String.length body) in
  let rec go off =
    match String.index_from_opt body off '\n' with
    | None -> ()
    | Some nl -> (
      match int_of_string_opt ("0x" ^ String.trim (String.sub body off (nl - off))) with
      | None | Some 0 -> ()
      | Some len ->
        Buffer.add_string out (String.sub body (nl + 1) len);
        go (nl + 1 + len + 2))
  in
  go 0;
  Buffer.contents out

(* A one-shot HTTP client against the in-process daemon: returns status,
   the raw response head and the (de-chunked) body. *)
let request_full ?(headers = []) port meth path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Http.send fd
        (Printf.sprintf "%s %s HTTP/1.1\r\n%scontent-length: %d\r\n\r\n%s" meth
           path
           (String.concat ""
              (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
           (String.length body) body);
      let raw = read_all fd in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
        | _ -> 0
      in
      let head, payload =
        match index_sub raw 0 "\r\n\r\n" with
        | Some i ->
          ( String.sub raw 0 i,
            String.sub raw (i + 4) (String.length raw - i - 4) )
        | None -> (raw, "")
      in
      let payload =
        if Helpers.contains (String.lowercase_ascii head) "transfer-encoding: chunked"
        then decode_chunked payload
        else payload
      in
      (status, head, payload))

let request port meth path body =
  let status, _head, payload = request_full port meth path body in
  (status, payload)

(* Case-insensitive response-header lookup in a raw head blob. *)
let header_of head name =
  String.split_on_char '\n' head
  |> List.find_map (fun line ->
         let line = String.trim line in
         match String.index_opt line ':' with
         | Some i when String.lowercase_ascii (String.sub line 0 i) = name ->
           Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> None)

let json_of body =
  match Json.parse body with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response not JSON (%s): %s" msg body

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing %S in %s" name (Json.to_string ~minify:true j)

let test_e2e_restart () =
  with_tmp_dir @@ fun dir ->
  let start () =
    unwrap
      (Serve.start
         {
           Serve.port = 0;
           state_dir = Some dir;
           jobs = 1;
           resume = true;
           telemetry = Serve.telemetry_off;
           limits = Serve.default_limits;
         })
  in
  let d1 = start () in
  let p1 = Serve.port d1 in
  (* Create a session and drive two batches through it. *)
  let status, body =
    request p1 "POST" "/v1/sessions"
      {|{"schema":{"name":"orders","attributes":["AC","PN","CT"]},
         "rules":"phi1: [AC] -> [CT] {\n  (212 || NYC)\n  (610 || PHI)\n}\n"}|}
  in
  Alcotest.(check int) "create is 201" 201 status;
  (match member "v" (json_of body) with
  | Json.Int 2 -> ()
  | _ -> Alcotest.fail "envelope not v2");
  let status, body =
    request p1 "POST" "/v1/sessions/s1/tuples"
      {|{"tuples":[[212,"a","NYC"],[212,"b","LA"]]}|}
  in
  Alcotest.(check int) "batch 1 is 200" 200 status;
  (match member "ok" (json_of body) with
  | Json.Bool true -> ()
  | _ -> Alcotest.fail "batch 1 envelope not ok");
  let status, _ =
    request p1 "POST" "/v1/sessions/s1/tuples" {|{"tuples":[[610,"c","PHI"]]}|}
  in
  Alcotest.(check int) "batch 2 is 200" 200 status;
  let status, before = request p1 "GET" "/v1/sessions/s1/relation" "" in
  Alcotest.(check int) "relation is 200" 200 status;
  Alcotest.(check bool)
    "violating tuple was repaired" true
    (Helpers.contains before "212,b,NYC");
  (* 404 and 400 map through the error envelope. *)
  let status, _ = request p1 "GET" "/v1/sessions/nope" "" in
  Alcotest.(check int) "unknown session is 404" 404 status;
  let status, _ = request p1 "POST" "/v1/sessions/s1/tuples" "{not json" in
  Alcotest.(check int) "bad body is 400" 400 status;
  Serve.stop d1;
  (* Restart over the same state directory: the session and its relation
     come back byte-identical (the checkpoint ran before each 200). *)
  let d2 = start () in
  Fun.protect
    ~finally:(fun () -> Serve.stop d2)
    (fun () ->
      let p2 = Serve.port d2 in
      let status, after = request p2 "GET" "/v1/sessions/s1/relation" "" in
      Alcotest.(check int) "relation after restart is 200" 200 status;
      Alcotest.(check string) "relation byte-identical" before after;
      let _, body = request p2 "GET" "/v1/sessions/s1" "" in
      match member "batches" (member "report" (json_of body)) with
      | Json.Int 2 -> ()
      | j ->
        Alcotest.failf "batches counter lost: %s" (Json.to_string ~minify:true j))

(* ---- serving telemetry ---------------------------------------------------- *)

let start_daemon ?(limits = Serve.default_limits) ?state_dir ?(jobs = 1)
    telemetry =
  unwrap
    (Serve.start
       {
         Serve.port = 0;
         state_dir;
         jobs;
         resume = false;
         telemetry;
         limits;
       })

let with_daemon ?limits ?state_dir ?jobs telemetry f =
  let d = start_daemon ?limits ?state_dir ?jobs telemetry in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop d;
      Dq_obs.Metrics.set_enabled false)
    (fun () -> f (Serve.port d))

let metrics_on = { Serve.metrics = true; slow_request_s = None }

let test_request_ids () =
  with_daemon metrics_on @@ fun p ->
  (* A client-supplied x-request-id is echoed in the response header and
     the envelope. *)
  let _, head, body =
    request_full ~headers:[ ("x-request-id", "abc-123") ] p "GET" "/v1/health"
      ""
  in
  Alcotest.(check (option string))
    "header echoed" (Some "abc-123")
    (header_of head "x-request-id");
  (match member "id" (json_of body) with
  | Json.String "abc-123" -> ()
  | j -> Alcotest.failf "envelope id not echoed: %s" (Json.to_string ~minify:true j));
  (* Unsafe bytes are dropped before the id goes anywhere. *)
  let _, head, _ =
    request_full
      ~headers:[ ("x-request-id", "a b\"c{}!") ]
      p "GET" "/v1/health" ""
  in
  Alcotest.(check (option string))
    "echoed id sanitized" (Some "abc")
    (header_of head "x-request-id");
  (* Without a client id, the daemon generates one; header and envelope
     agree. *)
  let _, head, body = request_full p "GET" "/v1/health" "" in
  let generated =
    match header_of head "x-request-id" with
    | Some h -> h
    | None -> Alcotest.fail "no generated request id header"
  in
  match member "id" (json_of body) with
  | Json.String id ->
    Alcotest.(check string) "envelope id equals header" generated id
  | _ -> Alcotest.fail "no envelope id on a telemetry-on daemon"

let test_zero_overhead_no_id () =
  with_daemon Serve.telemetry_off @@ fun p ->
  let _, head, body = request_full p "GET" "/v1/sessions" "" in
  Alcotest.(check (option string))
    "no request-id header" None
    (header_of head "x-request-id");
  (match Json.member "id" (json_of body) with
  | None -> ()
  | Some _ -> Alcotest.fail "telemetry-off envelope carries an id");
  (* The metrics endpoint is not routed when metrics are off: it falls
     through to the 404 unknown-endpoint error. *)
  let status, body = request p "GET" "/v1/metrics" "" in
  Alcotest.(check int) "metrics endpoint unrouted when off" 404 status;
  Alcotest.(check bool)
    "unknown-endpoint error" true
    (Helpers.contains body "no such endpoint")

let test_health_fields () =
  with_daemon Serve.telemetry_off @@ fun p ->
  let status, body = request p "GET" "/v1/health" "" in
  Alcotest.(check int) "health is 200" 200 status;
  let report = member "report" (json_of body) in
  (match member "version" report with
  | Json.String v -> Alcotest.(check string) "version" Serve.version v
  | _ -> Alcotest.fail "version missing");
  (match member "uptime_s" report with
  | Json.Int u -> Alcotest.(check bool) "uptime non-negative" true (u >= 0)
  | _ -> Alcotest.fail "uptime_s missing");
  (match member "sessions" report with
  | Json.Int 0 -> ()
  | _ -> Alcotest.fail "sessions should be 0");
  match member "state" report with
  | Json.Obj fields ->
    Alcotest.(check bool)
      "in-memory daemon is not persistent" true
      (List.assoc_opt "persistent" fields = Some (Json.Bool false)
      && List.assoc_opt "dir" fields = Some Json.Null)
  | _ -> Alcotest.fail "state missing"

let test_metrics_endpoint () =
  with_daemon metrics_on @@ fun p ->
  let status, _ = request p "GET" "/v1/health" "" in
  Alcotest.(check int) "health is 200" 200 status;
  let status, head, text = request_full p "GET" "/v1/metrics" "" in
  Alcotest.(check int) "metrics is 200" 200 status;
  Alcotest.(check (option string))
    "prometheus content type"
    (Some "text/plain; version=0.0.4")
    (header_of head "content-type");
  (* Not an envelope: raw exposition text. *)
  Alcotest.(check bool) "not JSON" true (Result.is_error (Json.parse text));
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "exposition contains %S" needle)
        true
        (Helpers.contains text needle))
    [
      "# TYPE cfdclean_serve_requests_total counter";
      "cfdclean_serve_requests_total{route=\"GET /v1/health\",status=\"200\"} ";
      "# TYPE cfdclean_serve_request_seconds histogram";
      "cfdclean_serve_request_seconds_bucket{le=\"+Inf\",route=\"GET /v1/health\"} ";
      "cfdclean_serve_sessions_live 0";
      "cfdclean_serve_quarantine_depth 0";
      "cfdclean_serve_uptime_seconds ";
      "cfdclean_gc_heap_words ";
      "cfdclean_gc_major_words ";
      "# TYPE cfdclean_serve_ingest_batch_size histogram";
    ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_access_log_schema () =
  with_tmp_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let log_file = Filename.concat dir "serve.log" in
  let sink =
    match Dq_obs.Log.file_sink log_file with
    | Ok s -> s
    | Error msg -> Alcotest.failf "file sink: %s" msg
  in
  Dq_obs.Log.set_sink (Some sink);
  Fun.protect ~finally:(fun () -> Dq_obs.Log.set_sink None) @@ fun () ->
  let envelope_id =
    with_daemon Serve.telemetry_off @@ fun p ->
    let _, _, body = request_full p "GET" "/v1/health" "" in
    (* A log sink alone activates request ids: the access-log line and
       the envelope must correlate. *)
    match member "id" (json_of body) with
    | Json.String id -> id
    | _ -> Alcotest.fail "log sink installed but envelope has no id"
  in
  let lines =
    String.split_on_char '\n' (read_file log_file)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           match Json.parse l with
           | Ok j -> j
           | Error msg -> Alcotest.failf "log line not JSON (%s): %s" msg l)
  in
  (* Every line carries the fixed preamble. *)
  List.iter
    (fun j ->
      List.iter
        (fun f ->
          if Json.member f j = None then
            Alcotest.failf "log line missing %S: %s" f
              (Json.to_string ~minify:true j))
        [ "ts"; "uptime_s"; "level"; "event" ])
    lines;
  (* Exactly one access line, with the request's shape and its id. *)
  match
    List.filter
      (fun j -> Json.member "event" j = Some (Json.String "http.access"))
      lines
  with
  | [ line ] ->
    Alcotest.(check bool)
      "level info" true
      (Json.member "level" line = Some (Json.String "info"));
    Alcotest.(check bool)
      "method" true
      (Json.member "method" line = Some (Json.String "GET"));
    Alcotest.(check bool)
      "route template" true
      (Json.member "route" line = Some (Json.String "GET /v1/health"));
    Alcotest.(check bool)
      "status" true
      (Json.member "status" line = Some (Json.Int 200));
    (match Json.member "latency_s" line with
    | Some (Json.Float l) ->
      Alcotest.(check bool) "latency non-negative" true (l >= 0.)
    | _ -> Alcotest.fail "latency_s missing");
    (match Json.member "bytes" line with
    | Some (Json.Int b) -> Alcotest.(check bool) "bytes positive" true (b > 0)
    | _ -> Alcotest.fail "bytes missing");
    Alcotest.(check bool)
      "access-log id equals envelope id" true
      (Json.member "id" line = Some (Json.String envelope_id))
  | l -> Alcotest.failf "expected one http.access line, got %d" (List.length l)

(* ---- overload hardening --------------------------------------------------- *)

(* A persistent raw client: one socket, explicit sends, one-response-at-
   a-time reads (so keep-alive and pipelining are observable). *)
type client = { cfd : Unix.file_descr; mutable cbuf : string }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { cfd = fd; cbuf = "" }

let close_client c = try Unix.close c.cfd with Unix.Unix_error _ -> ()

let send_raw c bytes = Http.send c.cfd bytes

(* Read exactly one response off the connection; leftover bytes (the
   next pipelined response) stay in the client buffer. *)
let recv c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf c.cbuf;
  c.cbuf <- "";
  let chunk = Bytes.create 4096 in
  let more what =
    match Unix.read c.cfd chunk 0 (Bytes.length chunk) with
    | 0 -> Alcotest.failf "peer closed %s" what
    | n -> Buffer.add_subbytes buf chunk 0 n
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      Alcotest.failf "peer reset %s" what
  in
  let rec head_end () =
    match index_sub (Buffer.contents buf) 0 "\r\n\r\n" with
    | Some i -> i
    | None ->
      more "mid-head";
      head_end ()
  in
  let head_end = head_end () in
  let head = String.sub (Buffer.contents buf) 0 head_end in
  let clen =
    match header_of head "content-length" with
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n -> n
      | None -> Alcotest.failf "bad content-length in %S" head)
    | None -> 0
  in
  while Buffer.length buf < head_end + 4 + clen do
    more "mid-body"
  done;
  let all = Buffer.contents buf in
  let body = String.sub all (head_end + 4) clen in
  let past = head_end + 4 + clen in
  c.cbuf <- String.sub all past (String.length all - past);
  let status =
    match String.split_on_char ' ' head with
    | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
    | _ -> 0
  in
  (status, head, body)

(* True when the peer has closed: the next read returns EOF (and no
   buffered bytes remain). *)
let closed_by_peer c =
  c.cbuf = ""
  &&
  match Unix.read c.cfd (Bytes.create 1) 0 1 with
  | 0 -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true

let plain_rules = "p1: [A] -> [B]\n"

let create_session p =
  let status, _ =
    request p "POST" "/v1/sessions"
      (Printf.sprintf
         {|{"schema":{"name":"r","attributes":["A","B"]},"rules":%s}|}
         (Json.to_string ~minify:true (Json.String plain_rules)))
  in
  Alcotest.(check int) "session create is 201" 201 status

(* An announced body over the daemon's limit answers 413 before any body
   bytes arrive. *)
let test_oversized_body_413 () =
  with_daemon Serve.telemetry_off @@ fun p ->
  let c = connect p in
  Fun.protect
    ~finally:(fun () -> close_client c)
    (fun () ->
      send_raw c
        "POST /v1/sessions/s1/tuples HTTP/1.1\r\n\
         content-length: 999999999\r\n\r\n";
      let status, _, body = recv c in
      Alcotest.(check int) "announced oversized body is 413" 413 status;
      Alcotest.(check bool)
        "reason names the limit" true
        (Helpers.contains body "exceeds"))

(* keep-alive: two requests pipelined down one connection both answer;
   with keep-alive off the daemon closes after the first response. *)
let test_keep_alive_pipelining () =
  let ka = { Serve.default_limits with keep_alive = true } in
  with_daemon ~limits:ka Serve.telemetry_off (fun p ->
      let c = connect p in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          let health = "GET /v1/health HTTP/1.1\r\ncontent-length: 0\r\n\r\n" in
          send_raw c (health ^ health);
          let s1, h1, _ = recv c in
          let s2, _, _ = recv c in
          Alcotest.(check int) "first pipelined response" 200 s1;
          Alcotest.(check int) "second pipelined response" 200 s2;
          Alcotest.(check bool)
            "keep-alive announced" true
            (header_of h1 "connection" = Some "keep-alive");
          (* an explicit connection: close is honored *)
          send_raw c
            "GET /v1/health HTTP/1.1\r\nconnection: close\r\n\
             content-length: 0\r\n\r\n";
          let s3, h3, _ = recv c in
          Alcotest.(check int) "final response" 200 s3;
          Alcotest.(check bool)
            "close announced" true
            (header_of h3 "connection" = Some "close");
          Alcotest.(check bool) "daemon closed" true (closed_by_peer c)));
  (* default framing: close after one response *)
  with_daemon Serve.telemetry_off (fun p ->
      let c = connect p in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          send_raw c "GET /v1/health HTTP/1.1\r\ncontent-length: 0\r\n\r\n";
          let s, h, _ = recv c in
          Alcotest.(check int) "response" 200 s;
          Alcotest.(check bool)
            "close announced by default" true
            (header_of h "connection" = Some "close");
          Alcotest.(check bool) "daemon closed" true (closed_by_peer c)))

(* A full session lane sheds with 429 + retry-after while the first
   batch is still repairing; the shed request commits nothing. *)
let test_queue_full_429 () =
  let limits = { Serve.default_limits with queue_depth = 1 } in
  with_daemon ~limits Serve.telemetry_off @@ fun p ->
  Fun.protect ~finally:Dq_fault.Fault.disarm @@ fun () ->
  create_session p;
  (match Dq_fault.Fault.parse_plan "serve.ingest@1:delay 400" with
  | Ok plan -> Dq_fault.Fault.arm plan
  | Error msg -> Alcotest.failf "plan: %s" msg);
  let first = ref (0, "") in
  let t =
    Thread.create
      (fun () ->
        let status, body =
          request p "POST" "/v1/sessions/s1/tuples" {|{"tuples":[[1,10]]}|}
        in
        first := (status, body))
      ()
  in
  Thread.delay 0.1;
  let status, head, body =
    request_full p "POST" "/v1/sessions/s1/tuples" {|{"tuples":[[2,20]]}|}
  in
  Thread.join t;
  Alcotest.(check int) "held batch answers 200" 200 (fst !first);
  Alcotest.(check int) "second batch shed with 429" 429 status;
  Alcotest.(check (option string))
    "retry-after header" (Some "1")
    (header_of head "retry-after");
  Alcotest.(check bool)
    "shed error is typed queue-full" true
    (Helpers.contains body "queue is full");
  (* only the admitted batch committed *)
  let _, body = request p "GET" "/v1/sessions/s1" "" in
  match member "batches" (member "report" (json_of body)) with
  | Json.Int 1 -> ()
  | j -> Alcotest.failf "batches: %s" (Json.to_string ~minify:true j)

(* Drain: a keep-alive connection that asks again mid-drain gets 503 +
   connection: close, and stop returns once the connection is gone. *)
let test_drain_refuses_and_closes () =
  let limits =
    { Serve.default_limits with keep_alive = true; drain_timeout_s = 5. }
  in
  let d = start_daemon ~limits Serve.telemetry_off in
  let p = Serve.port d in
  let c = connect p in
  Fun.protect
    ~finally:(fun () ->
      close_client c;
      Serve.stop d)
    (fun () ->
      let health = "GET /v1/health HTTP/1.1\r\ncontent-length: 0\r\n\r\n" in
      send_raw c health;
      let s, _, _ = recv c in
      Alcotest.(check int) "pre-drain request" 200 s;
      let stopper = Thread.create Serve.stop d in
      (* stop waits for this connection; requests sent mid-drain are
         refused and the refusal closes the connection *)
      let rec await_drain tries =
        if tries = 0 then Alcotest.fail "drain never refused a request"
        else begin
          send_raw c health;
          match recv c with
          | 200, _, _ ->
            Thread.delay 0.05;
            await_drain (tries - 1)
          | 503, head, body ->
            Alcotest.(check bool)
              "drain refusal is typed" true
              (Helpers.contains body "draining");
            Alcotest.(check bool)
              "drain refusal closes" true
              (header_of head "connection" = Some "close");
            Alcotest.(check bool) "socket closed" true (closed_by_peer c)
          | s, _, _ -> Alcotest.failf "unexpected mid-drain status %d" s
        end
      in
      await_drain 100;
      Thread.join stopper)

(* The circuit breaker: consecutive engine faults quarantine the
   session (503 engine-failed, state visible) until an operator resume
   closes it again. *)
let test_breaker_quarantine_and_resume () =
  let limits = { Serve.default_limits with breaker_threshold = 2 } in
  with_daemon ~limits Serve.telemetry_off @@ fun p ->
  Fun.protect ~finally:Dq_fault.Fault.disarm @@ fun () ->
  create_session p;
  let arm () =
    match Dq_fault.Fault.parse_plan "serve.ingest@1" with
    | Ok plan -> Dq_fault.Fault.arm plan
    | Error msg -> Alcotest.failf "plan: %s" msg
  in
  let ingest () = request p "POST" "/v1/sessions/s1/tuples" {|{"tuples":[[1,10]]}|} in
  arm ();
  let status, _ = ingest () in
  Alcotest.(check int) "first fault is 500" 500 status;
  let _, body = request p "GET" "/v1/sessions/s1" "" in
  (match member "state" (member "report" (json_of body)) with
  | Json.String "active" -> ()
  | j -> Alcotest.failf "one fault must not trip: %s" (Json.to_string ~minify:true j));
  arm ();
  let status, _ = ingest () in
  Alcotest.(check int) "second fault is 500" 500 status;
  (* breaker open: refused without touching the engine *)
  let status, body = ingest () in
  Alcotest.(check int) "quarantined session answers 503" 503 status;
  Alcotest.(check bool)
    "error names the resume endpoint" true
    (Helpers.contains body "resume");
  let _, body = request p "GET" "/v1/sessions/s1" "" in
  let report = member "report" (json_of body) in
  (match member "state" report with
  | Json.String "engine_failed" -> ()
  | j -> Alcotest.failf "state: %s" (Json.to_string ~minify:true j));
  (match member "engine_faults" report with
  | Json.Int 2 -> ()
  | j -> Alcotest.failf "engine_faults: %s" (Json.to_string ~minify:true j));
  (* operator resume closes the breaker *)
  let status, body = request p "POST" "/v1/sessions/s1/resume" "" in
  Alcotest.(check int) "resume is 200" 200 status;
  (match member "state" (member "report" (json_of body)) with
  | Json.String "active" -> ()
  | j -> Alcotest.failf "post-resume state: %s" (Json.to_string ~minify:true j));
  let status, _ = ingest () in
  Alcotest.(check int) "ingest works after resume" 200 status

(* Idle eviction checkpoints the session out of memory; the next request
   naming it reloads transparently and serves identical bytes. *)
let test_evict_and_reload () =
  with_tmp_dir @@ fun dir ->
  let limits = { Serve.default_limits with evict_idle_s = 0.2 } in
  with_daemon ~limits ~state_dir:dir Serve.telemetry_off @@ fun p ->
  create_session p;
  let status, _ =
    request p "POST" "/v1/sessions/s1/tuples" {|{"tuples":[[1,10],[2,20]]}|}
  in
  Alcotest.(check int) "ingest" 200 status;
  let _, before = request p "GET" "/v1/sessions/s1/relation" "" in
  (* wait for the sweeper *)
  let rec await_evict tries =
    if tries = 0 then Alcotest.fail "session never evicted"
    else
      let _, body = request p "GET" "/v1/sessions" "" in
      if not (Helpers.contains body "evicted") then begin
        Thread.delay 0.05;
        await_evict (tries - 1)
      end
  in
  await_evict 100;
  (* transparent reload on the next touch *)
  let status, after = request p "GET" "/v1/sessions/s1/relation" "" in
  Alcotest.(check int) "reloaded relation is 200" 200 status;
  Alcotest.(check string) "relation byte-identical after reload" before after;
  let _, body = request p "GET" "/v1/sessions" "" in
  Alcotest.(check bool)
    "session live again" true
    (not (Helpers.contains body "evicted"))

(* The lane property behind the whole design: concurrent clients
   ingesting into distinct sessions commit exactly what a sequential
   client would, batch for batch — checked at daemon jobs 1 and 4 with
   worker domains on. *)
let int_rows_gen =
  QCheck.Gen.(
    list_size (2 -- 8)
      (array_repeat 4 (map Value.int (0 -- 2))))

let concurrent_instance =
  QCheck.make
    ~print:(fun (rules, per_session) ->
      Printf.sprintf "rules:\n%s\nsessions: %d" rules (List.length per_session))
    QCheck.Gen.(
      let* rules = fd_rules_gen in
      let* per_session = list_size (2 -- 3) int_rows_gen in
      return (rules, per_session))

let prop_concurrent_sessions_equal_sequential =
  QCheck.Test.make
    ~name:"concurrent ingest to distinct sessions equals sequential, jobs 1/4"
    ~count:10 concurrent_instance
    (fun (rules, per_session) ->
      (* every session's rows go in as two batches, identically on both
         sides, so quarantine decisions line up *)
      let halves rows =
        let n = List.length rows in
        List.filter
          (fun b -> b <> [])
          [
            List.filteri (fun j _ -> j < n / 2) rows;
            List.filteri (fun j _ -> j >= n / 2) rows;
          ]
      in
      (* ground truth: each session alone, in-process, sequential *)
      let expected =
        List.map
          (fun rows ->
            let s =
              match
                Session.create ~id:"x" ~schema_name:"r"
                  ~attributes:[ "A"; "B"; "C"; "D" ] ~rules ~engine:"l-inc"
                  ~force:true ()
              with
              | Ok s -> s
              | Error e ->
                QCheck.Test.fail_reportf "create: %s" (Dq_error.to_string e)
            in
            Session.with_lock s (fun () ->
                List.iter
                  (fun batch ->
                    match
                      Session.ingest s
                        (List.map (fun v -> (v, None)) batch)
                    with
                    | Ok _ -> ()
                    | Error e ->
                      QCheck.Test.fail_reportf "ingest: %s"
                        (Dq_error.to_string e))
                  (halves rows);
                Csv.save_string s.Session.relation))
          per_session
      in
      let tuples_body rows =
        Json.to_string ~minify:true
          (Json.Obj
             [
               ( "tuples",
                 Json.List
                   (List.map
                      (fun values ->
                        Json.List
                          (List.map Json.of_value (Array.to_list values)))
                      rows) );
             ])
      in
      List.for_all
        (fun jobs ->
          let limits = { Serve.default_limits with ingest_workers = 2 } in
          let d = start_daemon ~limits ~jobs Serve.telemetry_off in
          Fun.protect
            ~finally:(fun () -> Serve.stop d)
            (fun () ->
              let p = Serve.port d in
              List.iteri
                (fun _ _ ->
                  let status, _ =
                    request p "POST" "/v1/sessions"
                      (Printf.sprintf
                         {|{"schema":{"name":"r","attributes":["A","B","C","D"]},"rules":%s,"force":true}|}
                         (Json.to_string ~minify:true (Json.String rules)))
                  in
                  if status <> 201 then
                    QCheck.Test.fail_reportf "create: %d" status)
                per_session;
              (* one thread per session, each splitting its rows in two
                 batches *)
              let threads =
                List.mapi
                  (fun i rows ->
                    Thread.create
                      (fun () ->
                        let sid = Printf.sprintf "s%d" (i + 1) in
                        List.iter
                          (fun batch ->
                            let status, _ =
                              request p "POST"
                                ("/v1/sessions/" ^ sid ^ "/tuples")
                                (tuples_body batch)
                            in
                            if status <> 200 then
                              QCheck.Test.fail_reportf "ingest %s: %d" sid
                                status)
                          (halves rows))
                      ())
                  per_session
              in
              List.iter Thread.join threads;
              List.for_all2
                (fun i want ->
                  let _, got =
                    request p "GET"
                      (Printf.sprintf "/v1/sessions/s%d/relation" (i + 1))
                      ""
                  in
                  String.equal want got)
                (List.mapi (fun i _ -> i) per_session)
                expected))
        [ 1; 4 ])

let suite =
  [
    Alcotest.test_case "http: request parsing" `Quick test_http_parse;
    Alcotest.test_case "http: bare-LF heads accepted" `Quick
      test_http_parse_bare_lf;
    Alcotest.test_case "http: framing errors are typed" `Quick
      test_http_parse_errors;
    Alcotest.test_case "session: creation gates" `Quick test_session_gates;
    Alcotest.test_case "session: quarantine lifecycle" `Quick
      test_quarantine_lifecycle;
    Alcotest.test_case "store: exact round-trip" `Quick test_store_round_trip;
    Alcotest.test_case "e2e: restart serves byte-identical relations" `Quick
      test_e2e_restart;
    Alcotest.test_case "telemetry: request ids echo, sanitize, generate" `Quick
      test_request_ids;
    Alcotest.test_case "telemetry: off means no ids, no metrics route" `Quick
      test_zero_overhead_no_id;
    Alcotest.test_case "telemetry: health reports version and uptime" `Quick
      test_health_fields;
    Alcotest.test_case "telemetry: /v1/metrics Prometheus exposition" `Quick
      test_metrics_endpoint;
    Alcotest.test_case "telemetry: access-log line schema and correlation"
      `Quick test_access_log_schema;
    Alcotest.test_case "overload: announced oversized body is 413" `Quick
      test_oversized_body_413;
    Alcotest.test_case "overload: keep-alive pipelining and close framing"
      `Quick test_keep_alive_pipelining;
    Alcotest.test_case "overload: full lane sheds 429 with retry-after" `Quick
      test_queue_full_429;
    Alcotest.test_case "overload: drain refuses with 503 and closes" `Quick
      test_drain_refuses_and_closes;
    Alcotest.test_case "overload: breaker quarantines until resume" `Quick
      test_breaker_quarantine_and_resume;
    Alcotest.test_case "overload: idle eviction reloads byte-identical" `Quick
      test_evict_and_reload;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_batches_equal_one_shot; prop_concurrent_sessions_equal_sequential ]
