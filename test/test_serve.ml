(* The serve daemon stack, bottom to top: HTTP framing on plain strings,
   session semantics (ingest, quarantine, resolve), the crash-safe store
   round-trip, the batch-split determinism property the ingest queue
   promises, and an end-to-end socket test covering restart
   byte-identity.  The true kill -9 crash is exercised by the CI smoke
   job; here the restart path is driven in-process. *)

open Dq_relation
open Dq_cfd
module Http = Dq_serve.Http
module Session = Dq_serve.Session
module Store = Dq_serve.Store
module Serve = Dq_serve.Serve
module Json = Dq_obs.Json

let unwrap = function
  | Ok x -> x
  | Error e -> Alcotest.failf "serve error: %s" (Dq_error.to_string e)

(* ---- HTTP framing ------------------------------------------------------- *)

let test_http_parse () =
  let r =
    match
      Http.parse
        "POST /v1/sessions/s1/tuples?x=1 HTTP/1.1\r\nContent-Length: \
         4\r\nX-Deadline-Seconds: 2.5\r\n\r\nbodyEXTRA"
    with
    | Ok r -> r
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  Alcotest.(check string) "method" "POST" r.Http.meth;
  Alcotest.(check (list string))
    "path split, query dropped"
    [ "v1"; "sessions"; "s1"; "tuples" ]
    r.Http.path;
  Alcotest.(check string) "body sized by content-length" "body" r.Http.body;
  Alcotest.(check (option string))
    "case-insensitive header" (Some "2.5")
    (Http.header r "x-deadline-seconds")

let test_http_parse_bare_lf () =
  match Http.parse "GET /v1/health HTTP/1.1\n\n" with
  | Ok r -> Alcotest.(check string) "target" "/v1/health" r.Http.target
  | Error msg -> Alcotest.failf "bare-LF head rejected: %s" msg

let test_http_parse_errors () =
  let err input =
    match Http.parse input with
    | Ok _ -> Alcotest.failf "accepted %S" input
    | Error msg -> msg
  in
  Alcotest.(check bool)
    "unterminated head" true
    (Helpers.contains (err "GET / HTTP/1.1\r\n") "not terminated");
  Alcotest.(check bool)
    "truncated body" true
    (Helpers.contains
       (err "GET / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
       "truncated");
  Alcotest.(check bool)
    "bad request line" true
    (Helpers.contains (err "NONSENSE\r\n\r\n") "malformed request line");
  Alcotest.(check bool)
    "bad content-length" true
    (Helpers.contains
       (err "GET / HTTP/1.1\r\ncontent-length: -4\r\n\r\n")
       "bad content-length");
  match Http.parse ~max_body:3 "GET / HTTP/1.1\r\ncontent-length: 9\r\n\r\nwaytolong" with
  | Ok _ -> Alcotest.fail "accepted an oversized body"
  | Error msg ->
    Alcotest.(check bool) "body limit" true (Helpers.contains msg "exceeds")

(* ---- sessions ----------------------------------------------------------- *)

let ab_schema = ("r", [ "A"; "B" ])

(* Two constant rows forcing B to both 10 and 20 when A = 1: the lint
   gate flags them (E002), so sessions need [force]; a tuple with A = 1
   can then only be settled by nulling B — the quarantine trigger. *)
let conflicting_rules =
  "p1: [A] -> [B] {\n  (1 || 10)\n}\np2: [A] -> [B] {\n  (1 || 20)\n}\n"

let make_session ?(force = false) ~rules () =
  let schema_name, attributes = ab_schema in
  Session.create ~id:"s1" ~schema_name ~attributes ~rules ~engine:"l-inc"
    ~force ()

let ints l = Array.of_list (List.map Value.int l)

let test_session_gates () =
  (match make_session ~rules:conflicting_rules () with
  | Error (Dq_error.Lint_gated { errors; _ }) ->
    Alcotest.(check bool) "lint gate counts errors" true (errors > 0)
  | Ok _ -> Alcotest.fail "conflicting rules passed the lint gate"
  | Error e -> Alcotest.failf "wrong gate: %s" (Dq_error.to_string e));
  (match
     let schema_name, attributes = ab_schema in
     Session.create ~id:"s1" ~schema_name ~attributes
       ~rules:"p1: [A] -> [B]\n" ~engine:"batch" ()
   with
  | Error (Dq_error.Engine_unsupported { engine; reason }) ->
    Alcotest.(check string) "engine named" "batch" engine;
    Alcotest.(check bool)
      "reason mentions ingest" true
      (Helpers.contains reason "ingest")
  | Ok _ -> Alcotest.fail "batch engine accepted for a session"
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e));
  match
    let schema_name, attributes = ab_schema in
    Session.create ~id:"s1" ~schema_name ~attributes
      ~rules:"p1: [A] -> [B]\np2: [B] -> [A]\n" ~engine:"l-inc" ()
  with
  | Error (Dq_error.Analyze_gated { cycles; _ }) ->
    Alcotest.(check bool) "cycle certified" true (cycles > 0)
  | Ok _ -> Alcotest.fail "cyclic Σ passed the termination gate"
  | Error e -> Alcotest.failf "wrong gate: %s" (Dq_error.to_string e)

let test_quarantine_lifecycle () =
  let s = unwrap (make_session ~force:true ~rules:conflicting_rules ()) in
  Session.with_lock s @@ fun () ->
  let outcomes, _stats, _report =
    unwrap
      (Session.ingest s [ (ints [ 1; 10 ], None); (ints [ 2; 20 ], None) ])
  in
  (match outcomes with
  | [ Session.Quarantined (1, [ 1 ]); Session.Clean 2 ] -> ()
  | _ -> Alcotest.fail "expected tid 1 quarantined on B, tid 2 clean");
  (* The quarantined tuple left the relation, which stays Σ-consistent,
     and is held in submitted form. *)
  Alcotest.(check int) "relation holds the clean tuple only" 1
    (Relation.cardinality s.Session.relation);
  Alcotest.(check int) "quarantine count" 1 (List.length s.Session.quarantine);
  let q =
    match Session.find_quarantined s 1 with
    | Some q -> q
    | None -> Alcotest.fail "tid 1 not in quarantine"
  in
  Alcotest.(check Helpers.value)
    "original value preserved" (Value.int 10)
    (Tuple.get q.Session.tuple 1);
  (* A resolution that still conflicts is refused and the entry stays. *)
  (match Session.resolve s 1 (Session.Replace (ints [ 1; 30 ], None)) with
  | Error (Dq_error.Invalid_input msg) ->
    Alcotest.(check bool)
      "refusal says unrepairable" true
      (Helpers.contains msg "unrepairable")
  | Ok _ -> Alcotest.fail "conflicting resolution accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e));
  Alcotest.(check int) "entry stayed" 1 (List.length s.Session.quarantine);
  (* A clean resolution re-ingests under the same tid. *)
  (match unwrap (Session.resolve s 1 (Session.Replace (ints [ 2; 20 ], None))) with
  | Session.Clean 1 -> ()
  | _ -> Alcotest.fail "resolution not clean");
  Alcotest.(check int) "quarantine drained" 0 (List.length s.Session.quarantine);
  Alcotest.(check int) "relation restored" 2
    (Relation.cardinality s.Session.relation);
  Alcotest.(check int) "resolved counter" 1 s.Session.resolved;
  (* Unknown tids are typed errors, and discard drops for good. *)
  (match Session.resolve s 99 Session.Discard with
  | Error (Dq_error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "unknown tid accepted");
  let outcomes, _, _ = unwrap (Session.ingest s [ (ints [ 1; 10 ], None) ]) in
  (match outcomes with
  | [ Session.Quarantined (3, _) ] -> ()
  | _ -> Alcotest.fail "expected tid 3 quarantined");
  (match unwrap (Session.resolve s 3 Session.Discard) with
  | Session.Clean 3 -> ()
  | _ -> Alcotest.fail "discard outcome");
  Alcotest.(check int) "discard drains quarantine" 0
    (List.length s.Session.quarantine)

(* ---- store round-trip ---------------------------------------------------- *)

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_store_%d" (Unix.getpid ()))
  in
  let rec cleanup path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> cleanup (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  cleanup dir;
  Fun.protect ~finally:(fun () -> cleanup dir) (fun () -> f dir)

let test_store_round_trip () =
  with_tmp_dir @@ fun dir ->
  let s = unwrap (make_session ~force:true ~rules:conflicting_rules ()) in
  Session.with_lock s (fun () ->
      (* Exercise every value constructor, a non-default weight vector
         and a quarantined entry: the exact cases a lossy encoding would
         corrupt.  0.1 has no finite binary expansion, so a decimal
         round-trip would shift it. *)
      let rows =
        [
          (ints [ 1; 10 ], None);
          ([| Value.float 0.1; Value.string "x,y" |], Some [| 0.25; 1.0 |]);
          ([| Value.Null; Value.int 3 |], None);
        ]
      in
      let _ = unwrap (Session.ingest s rows) in
      let (_ : int) = Store.save ~dir s in
      ());
  let loaded =
    match Store.load_dir dir with
    | Ok [ ("s1.json", loaded) ] -> loaded
    | Ok files ->
      Alcotest.failf "expected one session file, got %d" (List.length files)
    | Error msg -> Alcotest.failf "load_dir: %s" msg
  in
  let csv (x : Session.t) =
    Session.with_lock x (fun () -> Csv.save_string x.Session.relation)
  in
  Alcotest.(check string) "relation CSV byte-identical" (csv s) (csv loaded);
  Alcotest.(check int) "next_tid" s.Session.next_tid loaded.Session.next_tid;
  Alcotest.(check int) "batches" s.Session.batches loaded.Session.batches;
  Alcotest.(check int)
    "quarantine entries"
    (List.length s.Session.quarantine)
    (List.length loaded.Session.quarantine);
  (* Weights survive exactly: further ingest ordering (w-inc) and the
     cost model depend on them. *)
  let t = Relation.find_exn loaded.Session.relation 2 in
  Alcotest.(check (float 0.)) "weight exact" 0.25 (Tuple.weight t 0);
  Alcotest.(check Helpers.value)
    "float value exact" (Value.float 0.1)
    (Tuple.get t 0)

(* ---- batch-split determinism (the ingest-queue property) ----------------- *)

(* Acyclic FD rulesets over A..D rendered back to source text, so the
   session path (which parses rules) can consume them. *)
let fd_rules_gen =
  QCheck.Gen.(
    let attrs = [ "A"; "B"; "C"; "D" ] in
    let fd_gen i =
      let* lhs_size = 1 -- 2 in
      let* perm = shuffle_l attrs in
      let lhs = List.filteri (fun j _ -> j < lhs_size) perm in
      let rhs = [ List.nth perm lhs_size ] in
      return (Cfd.Tableau.fd ~name:(Printf.sprintf "p%d" i) ~lhs ~rhs)
    in
    let* n = 1 -- 3 in
    let* tabs = flatten_l (List.init n fd_gen) in
    return (Cfd_parser.to_string tabs))

let rows_gen =
  QCheck.Gen.(list_size (1 -- 16) Helpers.Gen.tuple_gen)

(* Random batch split: a list of cut points partitioning the rows. *)
let split_gen rows =
  QCheck.Gen.(
    let n = List.length rows in
    let* cuts = list_size (0 -- 3) (1 -- max 1 (n - 1)) in
    let cuts = List.sort_uniq compare (List.filter (fun c -> c < n) cuts) in
    let rec take k = function
      | [] -> ([], [])
      | x :: rest when k > 0 ->
        let a, b = take (k - 1) rest in
        (x :: a, b)
      | rest -> ([], rest)
    in
    let rec split off rows = function
      | [] -> [ rows ]
      | c :: cs ->
        let batch, rest = take (c - off) rows in
        batch :: split c rest cs
    in
    return (split 0 rows cuts))

let print_instance (rules, rows, batches) =
  let row values =
    "["
    ^ String.concat ";"
        (List.map Value.to_string (Array.to_list values))
    ^ "]"
  in
  Printf.sprintf "rules:\n%s\nrows: %s\nbatches: %s" rules
    (String.concat " " (List.map row rows))
    (String.concat " | "
       (List.map (fun b -> String.concat " " (List.map row b)) batches))

let serve_instance =
  QCheck.make ~print:print_instance
    QCheck.Gen.(
      let* rules = fd_rules_gen in
      let* rows = rows_gen in
      let* batches = split_gen rows in
      return (rules, rows, batches))

let no_quarantine outcomes =
  List.for_all (function Session.Quarantined _ -> false | _ -> true) outcomes

(* The contract behind serve's ingest queue: because sessions default to
   the linear (l-inc) ordering, draining N batches one by one leaves the
   same relation as one repair_inserts call over the concatenation —
   batch boundaries are invisible.  Checked at jobs 1 and 4. *)
let prop_batches_equal_one_shot =
  QCheck.Test.make
    ~name:"N ingest batches equal one-shot ingest, at jobs 1 and 4" ~count:60
    serve_instance
    (fun (rules, rows, batches) ->
      let run ?pool split =
        let s =
          match
            Session.create ~id:"s1" ~schema_name:"r"
              ~attributes:Helpers.Gen.attrs ~rules ~engine:"l-inc" ~force:true
              ()
          with
          | Ok s -> s
          | Error e ->
            QCheck.Test.fail_reportf "session create: %s" (Dq_error.to_string e)
        in
        Session.with_lock s @@ fun () ->
        List.iter
          (fun batch ->
            if batch <> [] then begin
              match
                Session.ingest ?pool s
                  (List.map (fun values -> (values, None)) batch)
              with
              | Ok (outcomes, _, _) -> QCheck.assume (no_quarantine outcomes)
              | Error e ->
                QCheck.Test.fail_reportf "ingest: %s" (Dq_error.to_string e)
            end)
          split;
        Csv.save_string s.Session.relation
      in
      let at jobs split =
        Dq_parallel.Pool.with_pool ~jobs (fun pool -> run ~pool split)
      in
      let split_1 = run batches in
      let one_shot_1 = run [ rows ] in
      String.equal split_1 one_shot_1
      && String.equal split_1 (at 4 batches)
      && String.equal one_shot_1 (at 4 [ rows ]))

(* ---- end-to-end over sockets --------------------------------------------- *)

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents buf

let rec index_sub s off sub =
  let n = String.length sub in
  if off + n > String.length s then None
  else if String.sub s off n = sub then Some off
  else index_sub s (off + 1) sub

let decode_chunked body =
  let out = Buffer.create (String.length body) in
  let rec go off =
    match String.index_from_opt body off '\n' with
    | None -> ()
    | Some nl -> (
      match int_of_string_opt ("0x" ^ String.trim (String.sub body off (nl - off))) with
      | None | Some 0 -> ()
      | Some len ->
        Buffer.add_string out (String.sub body (nl + 1) len);
        go (nl + 1 + len + 2))
  in
  go 0;
  Buffer.contents out

(* A one-shot HTTP client against the in-process daemon: returns status,
   the raw response head and the (de-chunked) body. *)
let request_full ?(headers = []) port meth path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Http.send fd
        (Printf.sprintf "%s %s HTTP/1.1\r\n%scontent-length: %d\r\n\r\n%s" meth
           path
           (String.concat ""
              (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
           (String.length body) body);
      let raw = read_all fd in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
        | _ -> 0
      in
      let head, payload =
        match index_sub raw 0 "\r\n\r\n" with
        | Some i ->
          ( String.sub raw 0 i,
            String.sub raw (i + 4) (String.length raw - i - 4) )
        | None -> (raw, "")
      in
      let payload =
        if Helpers.contains (String.lowercase_ascii head) "transfer-encoding: chunked"
        then decode_chunked payload
        else payload
      in
      (status, head, payload))

let request port meth path body =
  let status, _head, payload = request_full port meth path body in
  (status, payload)

(* Case-insensitive response-header lookup in a raw head blob. *)
let header_of head name =
  String.split_on_char '\n' head
  |> List.find_map (fun line ->
         let line = String.trim line in
         match String.index_opt line ':' with
         | Some i when String.lowercase_ascii (String.sub line 0 i) = name ->
           Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> None)

let json_of body =
  match Json.parse body with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response not JSON (%s): %s" msg body

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing %S in %s" name (Json.to_string ~minify:true j)

let test_e2e_restart () =
  with_tmp_dir @@ fun dir ->
  let start () =
    unwrap
      (Serve.start
         {
           Serve.port = 0;
           state_dir = Some dir;
           jobs = 1;
           resume = true;
           telemetry = Serve.telemetry_off;
         })
  in
  let d1 = start () in
  let p1 = Serve.port d1 in
  (* Create a session and drive two batches through it. *)
  let status, body =
    request p1 "POST" "/v1/sessions"
      {|{"schema":{"name":"orders","attributes":["AC","PN","CT"]},
         "rules":"phi1: [AC] -> [CT] {\n  (212 || NYC)\n  (610 || PHI)\n}\n"}|}
  in
  Alcotest.(check int) "create is 201" 201 status;
  (match member "v" (json_of body) with
  | Json.Int 2 -> ()
  | _ -> Alcotest.fail "envelope not v2");
  let status, body =
    request p1 "POST" "/v1/sessions/s1/tuples"
      {|{"tuples":[[212,"a","NYC"],[212,"b","LA"]]}|}
  in
  Alcotest.(check int) "batch 1 is 200" 200 status;
  (match member "ok" (json_of body) with
  | Json.Bool true -> ()
  | _ -> Alcotest.fail "batch 1 envelope not ok");
  let status, _ =
    request p1 "POST" "/v1/sessions/s1/tuples" {|{"tuples":[[610,"c","PHI"]]}|}
  in
  Alcotest.(check int) "batch 2 is 200" 200 status;
  let status, before = request p1 "GET" "/v1/sessions/s1/relation" "" in
  Alcotest.(check int) "relation is 200" 200 status;
  Alcotest.(check bool)
    "violating tuple was repaired" true
    (Helpers.contains before "212,b,NYC");
  (* 404 and 400 map through the error envelope. *)
  let status, _ = request p1 "GET" "/v1/sessions/nope" "" in
  Alcotest.(check int) "unknown session is 404" 404 status;
  let status, _ = request p1 "POST" "/v1/sessions/s1/tuples" "{not json" in
  Alcotest.(check int) "bad body is 400" 400 status;
  Serve.stop d1;
  (* Restart over the same state directory: the session and its relation
     come back byte-identical (the checkpoint ran before each 200). *)
  let d2 = start () in
  Fun.protect
    ~finally:(fun () -> Serve.stop d2)
    (fun () ->
      let p2 = Serve.port d2 in
      let status, after = request p2 "GET" "/v1/sessions/s1/relation" "" in
      Alcotest.(check int) "relation after restart is 200" 200 status;
      Alcotest.(check string) "relation byte-identical" before after;
      let _, body = request p2 "GET" "/v1/sessions/s1" "" in
      match member "batches" (member "report" (json_of body)) with
      | Json.Int 2 -> ()
      | j ->
        Alcotest.failf "batches counter lost: %s" (Json.to_string ~minify:true j))

(* ---- serving telemetry ---------------------------------------------------- *)

let start_daemon telemetry =
  unwrap
    (Serve.start
       {
         Serve.port = 0;
         state_dir = None;
         jobs = 1;
         resume = false;
         telemetry;
       })

let with_daemon telemetry f =
  let d = start_daemon telemetry in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop d;
      Dq_obs.Metrics.set_enabled false)
    (fun () -> f (Serve.port d))

let metrics_on = { Serve.metrics = true; slow_request_s = None }

let test_request_ids () =
  with_daemon metrics_on @@ fun p ->
  (* A client-supplied x-request-id is echoed in the response header and
     the envelope. *)
  let _, head, body =
    request_full ~headers:[ ("x-request-id", "abc-123") ] p "GET" "/v1/health"
      ""
  in
  Alcotest.(check (option string))
    "header echoed" (Some "abc-123")
    (header_of head "x-request-id");
  (match member "id" (json_of body) with
  | Json.String "abc-123" -> ()
  | j -> Alcotest.failf "envelope id not echoed: %s" (Json.to_string ~minify:true j));
  (* Unsafe bytes are dropped before the id goes anywhere. *)
  let _, head, _ =
    request_full
      ~headers:[ ("x-request-id", "a b\"c{}!") ]
      p "GET" "/v1/health" ""
  in
  Alcotest.(check (option string))
    "echoed id sanitized" (Some "abc")
    (header_of head "x-request-id");
  (* Without a client id, the daemon generates one; header and envelope
     agree. *)
  let _, head, body = request_full p "GET" "/v1/health" "" in
  let generated =
    match header_of head "x-request-id" with
    | Some h -> h
    | None -> Alcotest.fail "no generated request id header"
  in
  match member "id" (json_of body) with
  | Json.String id ->
    Alcotest.(check string) "envelope id equals header" generated id
  | _ -> Alcotest.fail "no envelope id on a telemetry-on daemon"

let test_zero_overhead_no_id () =
  with_daemon Serve.telemetry_off @@ fun p ->
  let _, head, body = request_full p "GET" "/v1/sessions" "" in
  Alcotest.(check (option string))
    "no request-id header" None
    (header_of head "x-request-id");
  (match Json.member "id" (json_of body) with
  | None -> ()
  | Some _ -> Alcotest.fail "telemetry-off envelope carries an id");
  (* The metrics endpoint is not routed when metrics are off: it falls
     through to the 404 unknown-endpoint error. *)
  let status, body = request p "GET" "/v1/metrics" "" in
  Alcotest.(check int) "metrics endpoint unrouted when off" 404 status;
  Alcotest.(check bool)
    "unknown-endpoint error" true
    (Helpers.contains body "no such endpoint")

let test_health_fields () =
  with_daemon Serve.telemetry_off @@ fun p ->
  let status, body = request p "GET" "/v1/health" "" in
  Alcotest.(check int) "health is 200" 200 status;
  let report = member "report" (json_of body) in
  (match member "version" report with
  | Json.String v -> Alcotest.(check string) "version" Serve.version v
  | _ -> Alcotest.fail "version missing");
  (match member "uptime_s" report with
  | Json.Int u -> Alcotest.(check bool) "uptime non-negative" true (u >= 0)
  | _ -> Alcotest.fail "uptime_s missing");
  (match member "sessions" report with
  | Json.Int 0 -> ()
  | _ -> Alcotest.fail "sessions should be 0");
  match member "state" report with
  | Json.Obj fields ->
    Alcotest.(check bool)
      "in-memory daemon is not persistent" true
      (List.assoc_opt "persistent" fields = Some (Json.Bool false)
      && List.assoc_opt "dir" fields = Some Json.Null)
  | _ -> Alcotest.fail "state missing"

let test_metrics_endpoint () =
  with_daemon metrics_on @@ fun p ->
  let status, _ = request p "GET" "/v1/health" "" in
  Alcotest.(check int) "health is 200" 200 status;
  let status, head, text = request_full p "GET" "/v1/metrics" "" in
  Alcotest.(check int) "metrics is 200" 200 status;
  Alcotest.(check (option string))
    "prometheus content type"
    (Some "text/plain; version=0.0.4")
    (header_of head "content-type");
  (* Not an envelope: raw exposition text. *)
  Alcotest.(check bool) "not JSON" true (Result.is_error (Json.parse text));
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "exposition contains %S" needle)
        true
        (Helpers.contains text needle))
    [
      "# TYPE cfdclean_serve_requests_total counter";
      "cfdclean_serve_requests_total{route=\"GET /v1/health\",status=\"200\"} ";
      "# TYPE cfdclean_serve_request_seconds histogram";
      "cfdclean_serve_request_seconds_bucket{le=\"+Inf\",route=\"GET /v1/health\"} ";
      "cfdclean_serve_sessions_live 0";
      "cfdclean_serve_quarantine_depth 0";
      "cfdclean_serve_uptime_seconds ";
      "cfdclean_gc_heap_words ";
      "cfdclean_gc_major_words ";
      "# TYPE cfdclean_serve_ingest_batch_size histogram";
    ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_access_log_schema () =
  with_tmp_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let log_file = Filename.concat dir "serve.log" in
  let sink =
    match Dq_obs.Log.file_sink log_file with
    | Ok s -> s
    | Error msg -> Alcotest.failf "file sink: %s" msg
  in
  Dq_obs.Log.set_sink (Some sink);
  Fun.protect ~finally:(fun () -> Dq_obs.Log.set_sink None) @@ fun () ->
  let envelope_id =
    with_daemon Serve.telemetry_off @@ fun p ->
    let _, _, body = request_full p "GET" "/v1/health" "" in
    (* A log sink alone activates request ids: the access-log line and
       the envelope must correlate. *)
    match member "id" (json_of body) with
    | Json.String id -> id
    | _ -> Alcotest.fail "log sink installed but envelope has no id"
  in
  let lines =
    String.split_on_char '\n' (read_file log_file)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           match Json.parse l with
           | Ok j -> j
           | Error msg -> Alcotest.failf "log line not JSON (%s): %s" msg l)
  in
  (* Every line carries the fixed preamble. *)
  List.iter
    (fun j ->
      List.iter
        (fun f ->
          if Json.member f j = None then
            Alcotest.failf "log line missing %S: %s" f
              (Json.to_string ~minify:true j))
        [ "ts"; "uptime_s"; "level"; "event" ])
    lines;
  (* Exactly one access line, with the request's shape and its id. *)
  match
    List.filter
      (fun j -> Json.member "event" j = Some (Json.String "http.access"))
      lines
  with
  | [ line ] ->
    Alcotest.(check bool)
      "level info" true
      (Json.member "level" line = Some (Json.String "info"));
    Alcotest.(check bool)
      "method" true
      (Json.member "method" line = Some (Json.String "GET"));
    Alcotest.(check bool)
      "route template" true
      (Json.member "route" line = Some (Json.String "GET /v1/health"));
    Alcotest.(check bool)
      "status" true
      (Json.member "status" line = Some (Json.Int 200));
    (match Json.member "latency_s" line with
    | Some (Json.Float l) ->
      Alcotest.(check bool) "latency non-negative" true (l >= 0.)
    | _ -> Alcotest.fail "latency_s missing");
    (match Json.member "bytes" line with
    | Some (Json.Int b) -> Alcotest.(check bool) "bytes positive" true (b > 0)
    | _ -> Alcotest.fail "bytes missing");
    Alcotest.(check bool)
      "access-log id equals envelope id" true
      (Json.member "id" line = Some (Json.String envelope_id))
  | l -> Alcotest.failf "expected one http.access line, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "http: request parsing" `Quick test_http_parse;
    Alcotest.test_case "http: bare-LF heads accepted" `Quick
      test_http_parse_bare_lf;
    Alcotest.test_case "http: framing errors are typed" `Quick
      test_http_parse_errors;
    Alcotest.test_case "session: creation gates" `Quick test_session_gates;
    Alcotest.test_case "session: quarantine lifecycle" `Quick
      test_quarantine_lifecycle;
    Alcotest.test_case "store: exact round-trip" `Quick test_store_round_trip;
    Alcotest.test_case "e2e: restart serves byte-identical relations" `Quick
      test_e2e_restart;
    Alcotest.test_case "telemetry: request ids echo, sanitize, generate" `Quick
      test_request_ids;
    Alcotest.test_case "telemetry: off means no ids, no metrics route" `Quick
      test_zero_overhead_no_id;
    Alcotest.test_case "telemetry: health reports version and uptime" `Quick
      test_health_fields;
    Alcotest.test_case "telemetry: /v1/metrics Prometheus exposition" `Quick
      test_metrics_endpoint;
    Alcotest.test_case "telemetry: access-log line schema and correlation"
      `Quick test_access_log_schema;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_batches_equal_one_shot ]
