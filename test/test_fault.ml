(* The fault-tolerance layer: fault injection, deadlines, crash-safe
   I/O, and checkpoint/resume.  The kill-and-resume tests are the
   heart: a batch repair killed at a pass boundary and resumed from
   its checkpoint must be byte-identical to the same run left
   uninterrupted. *)
open Dq_relation
open Dq_core
module Pool = Dq_parallel.Pool
module Fault = Dq_fault.Fault
module Deadline = Dq_fault.Deadline
module Atomic_io = Dq_fault.Atomic_io
open Dq_workload

let job_counts = [ 1; 2; 4; 7 ]

(* Every test disarms on exit so an assertion failure cannot leak an
   armed plan into later suites. *)
let with_plan plan f =
  match Fault.parse_plan plan with
  | Error msg -> Alcotest.failf "parse_plan %S: %s" plan msg
  | Ok specs ->
    Fault.arm specs;
    Fun.protect ~finally:Fault.disarm f

let in_temp_file f =
  let path = Filename.temp_file "dataqual" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ---- plan grammar ----------------------------------------------------- *)

let test_parse_plan () =
  (match Fault.parse_plan "io.write@1" with
  | Ok [ { Fault.site = "io.write"; hits = 1; action = Fault.Raise } ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error msg -> Alcotest.fail msg);
  (match Fault.parse_plan "pool.task@3:delay 50,csv.load@2:raise" with
  | Ok
      [
        { Fault.site = "pool.task"; hits = 3; action = Fault.Delay d };
        { site = "csv.load"; hits = 2; action = Fault.Raise };
      ] ->
    Alcotest.(check (float 1e-9)) "50ms" 0.05 d
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Fault.parse_plan bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ ""; "site"; "site@"; "site@0"; "site@-1"; "site@1:boom"; "@1"; "site@1:delay" ]

let test_hit_fires_kth () =
  with_plan "x@3" @@ fun () ->
  Fault.hit "x";
  Fault.hit "y";
  Fault.hit "x";
  (match Fault.hit "x" with
  | () -> Alcotest.fail "third hit should raise"
  | exception Fault.Injected site -> Alcotest.(check string) "site" "x" site);
  (* Counters stay spent: the site does not re-fire. *)
  Fault.hit "x"

let test_disarmed_is_noop () =
  Fault.disarm ();
  Alcotest.(check bool) "not armed" false (Fault.armed ());
  Fault.hit "io.write";
  Fault.hit "no.such.site"

let test_delay_continues () =
  with_plan "slow@1:delay 10" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Fault.hit "slow";
  Alcotest.(check bool)
    "slept >= 10ms" true
    (Unix.gettimeofday () -. t0 >= 0.009)

(* ---- deadlines -------------------------------------------------------- *)

let test_deadline_units () =
  Alcotest.(check bool) "never" false (Deadline.expired Deadline.never);
  Deadline.tick Deadline.never;
  Alcotest.(check bool) "after 0 expired" true
    (Deadline.expired (Deadline.after 0.));
  Alcotest.(check bool) "after 1h alive" false
    (Deadline.expired (Deadline.after 3600.));
  let d = Deadline.after_passes 2 in
  Alcotest.(check bool) "fresh" false (Deadline.expired d);
  Alcotest.(check bool) "logical is not wall" false
    (Deadline.wall_expired d);
  Deadline.tick d;
  Alcotest.(check bool) "one tick" false (Deadline.expired d);
  Deadline.tick d;
  Alcotest.(check bool) "two ticks" true (Deadline.expired d);
  Alcotest.check_raises "check raises" Deadline.Expired (fun () ->
      Deadline.check d)

(* ---- Atomic_io -------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_write () =
  in_temp_file @@ fun path ->
  Atomic_io.write_file path "first";
  Alcotest.(check string) "writes" "first" (read_file path);
  Atomic_io.write_file path "second";
  Alcotest.(check string) "overwrites" "second" (read_file path);
  (* A fault in the crash window (staged but unpublished) leaves the
     previous contents untouched and no temp litter behind. *)
  let dir_entries () =
    Array.to_list (Sys.readdir (Filename.dirname path))
    |> List.filter (fun f -> String.length f > 0 && f.[0] = '.')
    |> List.length
  in
  let dots = dir_entries () in
  with_plan "io.write@1" (fun () ->
      Alcotest.check_raises "injected" (Fault.Injected "io.write") (fun () ->
          Atomic_io.write_file path "third"));
  Alcotest.(check string) "intact after fault" "second" (read_file path);
  Alcotest.(check int) "no temp litter" dots (dir_entries ())

(* ---- pool robustness -------------------------------------------------- *)

let test_pool_first_failure_wins () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      (* Only task 3 raises; the exception (with its backtrace) reaches
         the caller at every job count and the pool stays usable. *)
      match
        Pool.run pool
          (Array.init 16 (fun i -> fun () -> if i = 3 then failwith "boom"))
      with
      | () -> Alcotest.failf "jobs=%d: expected the failure to surface" jobs
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "message intact (jobs=%d)" jobs)
          "boom" msg;
        Pool.run pool (Array.init 8 (fun _ -> fun () -> ())))
    job_counts

let test_pool_fault_site () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  with_plan "pool.task@2" @@ fun () ->
  match Pool.run pool (Array.init 4 (fun _ -> fun () -> ())) with
  | () -> Alcotest.fail "expected pool.task injection"
  | exception Fault.Injected site ->
    Alcotest.(check string) "site" "pool.task" site

let test_pool_deadline_skips () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let ran = Atomic.make 0 in
      (match
         Pool.run ~deadline:(Deadline.after 0.) pool
           (Array.init 32 (fun _ -> fun () -> Atomic.incr ran))
       with
      | () -> Alcotest.failf "jobs=%d: expired deadline must raise" jobs
      | exception Deadline.Expired -> ());
      Alcotest.(check int)
        (Printf.sprintf "no task started (jobs=%d)" jobs)
        0 (Atomic.get ran);
      (* The batch drained: the pool accepts the next batch. *)
      Pool.run pool (Array.init 4 (fun _ -> fun () -> ())))
    job_counts

let prop_pool_never_hangs =
  (* Batches mixing normal, raising and delaying tasks always terminate:
     either cleanly or with the first failure re-raised.  Termination
     itself is the property — a hang fails the suite's timeout. *)
  let spec =
    QCheck.Gen.(
      pair (oneofl job_counts)
        (list_size (1 -- 20) (oneofl [ `Ok; `Raise; `Delay ])))
  in
  QCheck.Test.make ~name:"raising/delayed tasks never hang" ~count:40
    (QCheck.make spec) (fun (jobs, kinds) ->
      Pool.with_pool ~jobs @@ fun pool ->
      let tasks =
        Array.of_list
          (List.map
             (fun kind () ->
               match kind with
               | `Ok -> ()
               | `Raise -> raise Exit
               | `Delay -> Unix.sleepf 0.001)
             kinds)
      in
      match Pool.run pool tasks with
      | () -> not (List.mem `Raise kinds)
      | exception Exit -> List.mem `Raise kinds)

(* ---- batch repair: deadlines ------------------------------------------ *)

let dirty_fixture n =
  let ds = Datagen.generate (Datagen.default_params ~n_tuples:n ~seed:11 ()) in
  let noise = Noise.inject (Noise.default_params ~rate:0.08 ~seed:12 ()) ds in
  (noise.Noise.dirty, ds.Datagen.sigma)

let batch_key (repair, (stats : Batch_repair.stats)) =
  ( Csv.save_string repair,
    stats.Batch_repair.steps,
    stats.Batch_repair.merges,
    stats.Batch_repair.rhs_fixes,
    stats.Batch_repair.lhs_fixes,
    stats.Batch_repair.nulls_introduced,
    stats.Batch_repair.cells_changed )

let degraded_of = function
  | Ok (_, report) -> report.Dq_obs.Report.degraded
  | Error e -> Alcotest.failf "engine error: %s" (Dq_error.to_string e)

let test_batch_deadline_determinism () =
  let rel, sigma = dirty_fixture 250 in
  (* A pass-count cut is deterministic: the same k yields the same bytes
     at any job count, and a cut run is marked degraded. *)
  let cut k jobs =
    Pool.with_pool ~jobs @@ fun pool ->
    let r =
      Batch_repair.repair ~pool ~deadline:(Deadline.after_passes k) rel sigma
    in
    (batch_key (Helpers.ok r), degraded_of r <> None)
  in
  let k1, d1 = cut 1 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "cut at pass 1 identical (jobs=%d)" jobs)
        true
        ((k1, d1) = cut 1 jobs))
    job_counts;
  Alcotest.(check bool) "cut run is degraded" true d1;
  (* A budget the run never exhausts leaves the result — and the absence
     of a degraded marker — untouched. *)
  let full = batch_key (Helpers.ok (Batch_repair.repair rel sigma)) in
  let huge, dh = cut 10_000 4 in
  Alcotest.(check bool) "unreached budget = no deadline" true (full = huge);
  Alcotest.(check bool) "not degraded" false dh

let test_batch_deadline_zero () =
  let rel, sigma = dirty_fixture 100 in
  match Batch_repair.repair ~deadline:(Deadline.after 0.) rel sigma with
  | Error Dq_error.Deadline_exceeded -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e)
  | Ok _ -> Alcotest.fail "nothing ran, so nothing usable exists"

(* ---- batch repair: checkpoint / resume -------------------------------- *)

(* Uninterrupted canonical run (checkpointing arms canonical mode), the
   baseline every kill-and-resume comparison is against. *)
let canonical_run ?pool rel sigma path =
  Helpers.ok
    (Batch_repair.repair ?pool
       ~checkpoint:{ Batch_repair.path; every = 1 }
       rel sigma)

let last_boundary path =
  match Checkpoint.load path with
  | Ok cp -> cp.Checkpoint.counters.pass
  | Error msg -> Alcotest.failf "checkpoint unreadable: %s" msg

let test_kill_resume_identity () =
  let rel, sigma = dirty_fixture 250 in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let full =
        in_temp_file (fun p -> batch_key (canonical_run ~pool rel sigma p))
      in
      in_temp_file @@ fun path ->
      (* Kill the run at the first pass boundary via the repair.pass
         fault site, which fires just {e after} the boundary's
         checkpoint is written — the crash window resume exists for. *)
      (match
         with_plan "repair.pass@1" (fun () ->
             Batch_repair.repair ~pool
               ~checkpoint:{ Batch_repair.path; every = 1 }
               rel sigma)
       with
      | exception Fault.Injected "repair.pass" -> ()
      | exception e -> raise e
      | Ok _ -> Alcotest.fail "fault should have killed the run"
      | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e));
      Alcotest.(check int) "killed after checkpoint 1" 1 (last_boundary path);
      let cp =
        match Checkpoint.load path with
        | Ok cp -> cp
        | Error msg -> Alcotest.failf "checkpoint unreadable: %s" msg
      in
      let resumed =
        batch_key
          (Helpers.ok
             (Batch_repair.repair ~pool ~resume:cp
                ~checkpoint:{ Batch_repair.path; every = 1 }
                rel sigma))
      in
      Alcotest.(check bool)
        (Printf.sprintf "kill+resume = uninterrupted (jobs=%d)" jobs)
        true (resumed = full))
    [ 1; 4 ]

let test_deadline_cut_resume_identity () =
  (* Same prefix property via deadlines instead of faults: cut at pass k,
     resume from the checkpoint, land on the uninterrupted bytes. *)
  let rel, sigma = dirty_fixture 250 in
  let full = in_temp_file (fun p -> batch_key (canonical_run rel sigma p)) in
  in_temp_file @@ fun path ->
  let _cut =
    Helpers.ok
      (Batch_repair.repair
         ~deadline:(Deadline.after_passes 1)
         ~checkpoint:{ Batch_repair.path; every = 1 }
         rel sigma)
  in
  let cp =
    match Checkpoint.load path with
    | Ok cp -> cp
    | Error msg -> Alcotest.failf "checkpoint unreadable: %s" msg
  in
  let resumed =
    batch_key
      (Helpers.ok
         (Batch_repair.repair ~resume:cp
            ~checkpoint:{ Batch_repair.path; every = 1 }
            rel sigma))
  in
  Alcotest.(check bool) "deadline cut + resume = uninterrupted" true
    (resumed = full)

let test_checkpoint_load_errors () =
  (match Checkpoint.load "/no/such/file.ckpt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an Error");
  in_temp_file (fun path ->
      Atomic_io.write_file path "not json";
      match Checkpoint.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage must be an Error");
  in_temp_file (fun path ->
      Atomic_io.write_file path "{\"version\": 999}";
      match Checkpoint.load path with
      | Error msg ->
        Alcotest.(check bool)
          "mentions version" true
          (String.length msg > 0)
      | Ok _ -> Alcotest.fail "future version must be an Error")

let test_resume_fingerprint_mismatch () =
  let rel, sigma = dirty_fixture 120 in
  in_temp_file @@ fun path ->
  let _ = canonical_run rel sigma path in
  let cp =
    match Checkpoint.load path with
    | Ok cp -> cp
    | Error msg -> Alcotest.failf "checkpoint unreadable: %s" msg
  in
  let other, other_sigma = dirty_fixture 130 in
  match Batch_repair.repair ~resume:cp other other_sigma with
  | Error (Dq_error.Invalid_input _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e)
  | Ok _ -> Alcotest.fail "mismatched inputs must be rejected"

let test_default_mode_unchanged () =
  (* The zero-overhead gate: without checkpoint/resume/deadline the
     engine must produce the very bytes it produced before the fault
     layer existed — canonical mode must not leak into the default
     path.  Compare default mode against itself across job counts and
     confirm it differs-or-equals canonical only through explicit
     opt-in (the repairs may legitimately coincide; what matters is
     default = default). *)
  let rel, sigma = dirty_fixture 250 in
  let plain = batch_key (Helpers.ok (Batch_repair.repair rel sigma)) in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      Alcotest.(check bool)
        (Printf.sprintf "default mode stable (jobs=%d)" jobs)
        true
        (batch_key (Helpers.ok (Batch_repair.repair ~pool rel sigma)) = plain))
    job_counts

(* ---- incremental repair: deadlines ------------------------------------ *)

let test_inc_deadline_degrades () =
  let rel, sigma = dirty_fixture 200 in
  let full = Helpers.ok (Inc_repair.repair_dirty rel sigma) in
  let _, (full_stats : Inc_repair.stats) = full in
  let n = full_stats.Inc_repair.tuples_processed in
  Alcotest.(check bool) "fixture has dirty tuples" true (n > 2);
  let k = n / 2 in
  (* One tick per resolved tuple: budget k resolves exactly k tuples. *)
  let r = Inc_repair.repair_dirty ~deadline:(Deadline.after_passes k) rel sigma in
  let (repaired, stats), report = Helpers.ok2 r in
  Alcotest.(check int) "processed exactly k" k stats.Inc_repair.tuples_processed;
  Alcotest.(check int)
    "every tuple still present"
    (Relation.cardinality rel)
    (Relation.cardinality repaired);
  match report.Dq_obs.Report.degraded with
  | Some d ->
    Alcotest.(check bool) "progress in (0,1)" true
      (d.Dq_obs.Report.progress > 0. && d.Dq_obs.Report.progress < 1.)
  | None -> Alcotest.fail "cut inc repair must be degraded"

let test_inc_deadline_zero () =
  let rel, sigma = dirty_fixture 100 in
  match Inc_repair.repair_dirty ~deadline:(Deadline.after 0.) rel sigma with
  | Error Dq_error.Deadline_exceeded -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e)
  | Ok _ -> Alcotest.fail "zero budget must fail outright"

(* ---- sampling: deadlines ---------------------------------------------- *)

let test_sampling_deadline () =
  let rel, sigma = dirty_fixture 100 in
  let repaired, _ = Helpers.ok (Batch_repair.repair rel sigma) in
  let config = Sampling.default_config () in
  match
    Sampling.inspect ~deadline:(Deadline.after 0.) config ~original:rel
      ~repair:repaired ~sigma ~oracle:(fun _ -> false)
  with
  | Error Dq_error.Deadline_exceeded -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e)
  | Ok _ -> Alcotest.fail "no partial verdict exists"

(* ---- resolve.tuple fault site ----------------------------------------- *)

let test_resolve_fault_site () =
  let rel, sigma = dirty_fixture 150 in
  with_plan "resolve.tuple@1" @@ fun () ->
  match Inc_repair.repair_dirty rel sigma with
  | exception Fault.Injected site ->
    Alcotest.(check string) "site" "resolve.tuple" site
  | Ok _ -> Alcotest.fail "expected resolve.tuple injection"
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e)

let suite =
  [
    Alcotest.test_case "plan grammar" `Quick test_parse_plan;
    Alcotest.test_case "hit fires on the k-th execution" `Quick
      test_hit_fires_kth;
    Alcotest.test_case "disarmed hit is a no-op" `Quick test_disarmed_is_noop;
    Alcotest.test_case "delay action continues" `Quick test_delay_continues;
    Alcotest.test_case "deadline units" `Quick test_deadline_units;
    Alcotest.test_case "atomic write survives a fault" `Quick test_atomic_write;
    Alcotest.test_case "pool: first failure wins" `Quick
      test_pool_first_failure_wins;
    Alcotest.test_case "pool: pool.task fault site" `Quick test_pool_fault_site;
    Alcotest.test_case "pool: expired deadline skips tasks" `Quick
      test_pool_deadline_skips;
    QCheck_alcotest.to_alcotest prop_pool_never_hangs;
    Alcotest.test_case "batch: pass-count cut is deterministic" `Slow
      test_batch_deadline_determinism;
    Alcotest.test_case "batch: zero budget fails outright" `Quick
      test_batch_deadline_zero;
    Alcotest.test_case "batch: kill at pass 2, resume, identical" `Slow
      test_kill_resume_identity;
    Alcotest.test_case "batch: deadline cut, resume, identical" `Slow
      test_deadline_cut_resume_identity;
    Alcotest.test_case "checkpoint: load failure modes" `Quick
      test_checkpoint_load_errors;
    Alcotest.test_case "checkpoint: fingerprint mismatch rejected" `Quick
      test_resume_fingerprint_mismatch;
    Alcotest.test_case "default mode byte-stable" `Slow
      test_default_mode_unchanged;
    Alcotest.test_case "inc: deadline degrades, keeps all tuples" `Quick
      test_inc_deadline_degrades;
    Alcotest.test_case "inc: zero budget fails outright" `Quick
      test_inc_deadline_zero;
    Alcotest.test_case "sampling: no partial verdict" `Quick
      test_sampling_deadline;
    Alcotest.test_case "inc: resolve.tuple fault site" `Quick
      test_resolve_fault_site;
  ]
