open Dq_relation
open Dq_cfd
open Dq_core
open Helpers

let clean_db_and_sigma () =
  let sigma = fig1_sigma () in
  let repair, _ = Helpers.ok (Batch_repair.repair (fig1_db ()) sigma) in
  (repair, sigma)

let find_clause sigma ~name ~rhs_attr =
  let rhs = Schema.position_exn order_schema rhs_attr in
  Array.to_list sigma
  |> List.find (fun c -> String.equal (Cfd.name c) name && Cfd.rhs c = rhs)

let fresh values = Tuple.create ~tid:999 (Array.map Value.of_string values)

let test_expected_rhs_constant_clause () =
  let db, sigma = clean_db_and_sigma () in
  let idx = Lhs_index.build sigma db in
  (* phi2's constant row (10012 || NYC): a tuple with zip 10012 is expected
     to have CT = NYC, regardless of what the relation holds. *)
  let phi2_ct =
    Array.to_list sigma
    |> List.find (fun c ->
           String.equal (Cfd.name c) "phi2"
           && Cfd.rhs c = Schema.position_exn order_schema "CT"
           && Cfd.is_constant c
           && Pattern.matches (Value.int 10012) (Cfd.lhs_patterns c).(0))
  in
  let t =
    fresh [| "a1"; "X"; "1.0"; "212"; "1234567"; "Elm"; "PHI"; "PA"; "10012" |]
  in
  Alcotest.(check (option value)) "expected NYC" (Some (Value.string "NYC"))
    (Lhs_index.expected_rhs idx phi2_ct t);
  Alcotest.(check bool) "violates" true (Lhs_index.violates idx phi2_ct t)

let test_expected_rhs_variable_clause () =
  let db, sigma = clean_db_and_sigma () in
  let idx = Lhs_index.build sigma db in
  (* phi3's wildcard row: id a23 determines name "H. Porter" from the data. *)
  let phi3_name =
    Array.to_list sigma
    |> List.find (fun c ->
           String.equal (Cfd.name c) "phi3"
           && Cfd.rhs c = Schema.position_exn order_schema "name")
  in
  let t =
    fresh [| "a23"; "Wrong"; "17.99"; "999"; "0"; "Elm"; "LA"; "CA"; "90001" |]
  in
  Alcotest.(check (option value)) "indexed name"
    (Some (Value.string "H. Porter"))
    (Lhs_index.expected_rhs idx phi3_name t);
  Alcotest.(check bool) "conflicting name violates" true
    (Lhs_index.violates idx phi3_name t);
  (* unknown key: no constraint *)
  let unknown =
    fresh [| "zz"; "Wrong"; "1.0"; "999"; "0"; "Elm"; "LA"; "CA"; "90001" |]
  in
  Alcotest.(check (option value)) "unknown key free" None
    (Lhs_index.expected_rhs idx phi3_name unknown)

let test_vio_counts_clauses () =
  let db, sigma = clean_db_and_sigma () in
  let idx = Lhs_index.build sigma db in
  (* A tuple cloning t1 but claiming NYC/NY: conflicts with phi1 (STR via
     index? no - STR matches), CT, ST and phi4 (zip). *)
  let t =
    fresh
      [| "a23"; "H. Porter"; "17.99"; "215"; "8983490"; "Walnut"; "NYC"; "NY"; "19014" |]
  in
  Alcotest.(check bool) "some violations" true (Lhs_index.vio idx t > 0);
  let clean_clone =
    fresh
      [| "a23"; "H. Porter"; "17.99"; "215"; "8983490"; "Walnut"; "PHI"; "PA"; "19014" |]
  in
  Alcotest.(check int) "clone of clean tuple violates nothing" 0
    (Lhs_index.vio idx clean_clone)

let test_nulls_resolve () =
  let db, sigma = clean_db_and_sigma () in
  let idx = Lhs_index.build sigma db in
  let t =
    fresh [| "a23"; ""; ""; ""; ""; ""; ""; ""; "" |]
  in
  (* null RHS and null LHS both resolve: only id is set, and the phi3
     clauses see null names/prices, which violate nothing. *)
  Alcotest.(check int) "nulls violate nothing" 0 (Lhs_index.vio idx t)

let test_add_tuple_updates_index () =
  let db, sigma = clean_db_and_sigma () in
  let idx = Lhs_index.build sigma db in
  let phi3_name = find_clause sigma ~name:"phi3" ~rhs_attr:"name" in
  let newcomer =
    fresh [| "a99"; "Tea Pot"; "3.50"; "215"; "1111111"; "Oak"; "PHI"; "PA"; "19014" |]
  in
  Alcotest.(check (option value)) "a99 unknown before" None
    (Lhs_index.expected_rhs idx phi3_name newcomer);
  Lhs_index.add_tuple idx newcomer;
  let probe =
    fresh [| "a99"; "Other"; "9.99"; "1"; "2"; "3"; "4"; "5"; "6" |]
  in
  Alcotest.(check (option value)) "a99 bound after add"
    (Some (Value.string "Tea Pot"))
    (Lhs_index.expected_rhs idx phi3_name probe);
  Alcotest.(check bool) "conflict detected" true
    (Lhs_index.violates idx phi3_name probe)

let test_vio_subset () =
  let db, sigma = clean_db_and_sigma () in
  let idx = Lhs_index.build sigma db in
  let t =
    fresh [| "a23"; "Wrong"; "99.99"; "215"; "8983490"; "Walnut"; "PHI"; "PA"; "19014" |]
  in
  let phi3_clauses =
    Array.to_list sigma |> List.filter (fun c -> String.equal (Cfd.name c) "phi3")
  in
  let sub = Lhs_index.vio_subset idx phi3_clauses t in
  Alcotest.(check bool) "phi3 violations found" true (sub >= 2);
  Alcotest.(check int) "subset of total" (Lhs_index.vio idx t) sub

let suite =
  [
    Alcotest.test_case "constant clause lookup" `Quick test_expected_rhs_constant_clause;
    Alcotest.test_case "variable clause lookup" `Quick test_expected_rhs_variable_clause;
    Alcotest.test_case "vio counting" `Quick test_vio_counts_clauses;
    Alcotest.test_case "nulls resolve" `Quick test_nulls_resolve;
    Alcotest.test_case "add_tuple updates" `Quick test_add_tuple_updates_index;
    Alcotest.test_case "vio_subset" `Quick test_vio_subset;
  ]
