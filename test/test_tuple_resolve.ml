open Dq_relation
open Dq_cfd
open Dq_core
open Helpers

let clean_env () =
  let sigma = fig1_sigma () in
  let repair, _ = Helpers.ok (Batch_repair.repair (fig1_db ()) sigma) in
  (repair, sigma)

let fresh values = Tuple.create ~tid:777 (Array.map Value.of_string values)

let test_clean_tuple_untouched () =
  let repr, sigma = clean_env () in
  let env = Tuple_resolve.make_env repr sigma in
  let t =
    fresh [| "a50"; "Clock"; "9.99"; "215"; "8983490"; "Walnut"; "PHI"; "PA"; "19014" |]
  in
  let rt = Tuple_resolve.resolve env t in
  Alcotest.(check bool) "no change" true (Tuple.equal_values t rt);
  Alcotest.(check int) "same tid" 777 (Tuple.tid rt)

let test_resolved_tuple_is_insertable () =
  let repr, sigma = clean_env () in
  let env = Tuple_resolve.make_env repr sigma in
  let t =
    (* conflicting city for a known zip AND a known (AC, PN) *)
    fresh [| "a50"; "Clock"; "9.99"; "215"; "8983490"; "Walnut"; "LA"; "CA"; "19014" |]
  in
  Alcotest.(check bool) "violates before" true (Tuple_resolve.vio_against env t > 0);
  let rt = Tuple_resolve.resolve env t in
  Alcotest.(check int) "violates nothing after" 0 (Tuple_resolve.vio_against env rt);
  Relation.add repr rt;
  Alcotest.(check bool) "relation stays clean" true (Violation.satisfies repr sigma)

let test_weights_steer_the_choice () =
  let repr, sigma = clean_env () in
  let env = Tuple_resolve.make_env repr sigma in
  (* Same contradiction, but trusted city vs untrusted zip: the resolver
     should prefer touching the low-weight attribute. *)
  let values =
    Array.map Value.of_string
      [| "a50"; "Clock"; "9.99"; "999"; "0000000"; "Canel"; "NYC"; "NY"; "19014" |]
  in
  let weights = [| 1.; 1.; 1.; 1.; 1.; 1.; 0.9; 0.9; 0.05 |] in
  let t = Tuple.create ~tid:778 ~weights values in
  let rt = Tuple_resolve.resolve env t in
  Alcotest.(check int) "clean after" 0 (Tuple_resolve.vio_against env rt);
  Alcotest.check value "trusted city kept" (Value.string "NYC")
    (Tuple.get rt (Schema.position_exn order_schema "CT"));
  Alcotest.(check bool) "zip changed instead" false
    (Value.equal (Tuple.get rt (Schema.position_exn order_schema "zip"))
       (Value.int 19014))

let test_k1_vs_k2 () =
  let repr, sigma = clean_env () in
  let t =
    fresh [| "a50"; "Clock"; "9.99"; "215"; "8983490"; "Oak"; "NYC"; "NY"; "10012" |]
  in
  List.iter
    (fun k ->
      let env = Tuple_resolve.make_env ~k repr sigma in
      let rt = Tuple_resolve.resolve env t in
      Alcotest.(check int)
        (Printf.sprintf "k=%d yields consistent tuple" k)
        0
        (Tuple_resolve.vio_against env rt))
    [ 1; 2; 3 ]

let test_example_5_1_needs_null_or_zip () =
  (* Example 5.1: with the two CT,ST attributes free there is no
     active-domain assignment satisfying both phi1 and phi2 for t5; the
     resolver must reach for null or also touch zip (k=3). *)
  let repr, sigma = clean_env () in
  let env = Tuple_resolve.make_env ~k:2 repr sigma in
  let t5 =
    fresh [| "a55"; "Mug"; "4.99"; "215"; "8983490"; "Oak"; "NYC"; "NY"; "10012" |]
  in
  let rt = Tuple_resolve.resolve env t5 in
  Alcotest.(check int) "consistent" 0 (Tuple_resolve.vio_against env rt);
  let changed = Tuple.diff_positions t5 rt in
  Alcotest.(check bool) "some attribute had to give" true (changed <> [])

let test_register_affects_later_tuples () =
  let repr, sigma = clean_env () in
  let env = Tuple_resolve.make_env repr sigma in
  (* Insert a tuple binding a fresh id to a name... *)
  let first =
    fresh [| "a77"; "Vase"; "12.00"; "215"; "8983490"; "Walnut"; "PHI"; "PA"; "19014" |]
  in
  let r1 = Tuple_resolve.resolve env first in
  Relation.add repr r1;
  Tuple_resolve.register env r1;
  (* ... a second tuple with the same id but another name now conflicts
     and must be reconciled against the first. *)
  let second =
    Tuple.create ~tid:778
      (Array.map Value.of_string
         [| "a77"; "Base"; "12.00"; "215"; "8983490"; "Walnut"; "PHI"; "PA"; "19014" |])
  in
  Alcotest.(check bool) "second violates phi3" true
    (Tuple_resolve.vio_against env second > 0);
  let r2 = Tuple_resolve.resolve env second in
  Alcotest.(check int) "reconciled" 0 (Tuple_resolve.vio_against env r2);
  Alcotest.check value "takes the registered name" (Value.string "Vase")
    (Tuple.get r2 (Schema.position_exn order_schema "name"))

let test_invalid_k () =
  let repr, sigma = clean_env () in
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Tuple_resolve.make_env: k must be >= 1") (fun () ->
      ignore (Tuple_resolve.make_env ~k:0 repr sigma))

let suite =
  [
    Alcotest.test_case "clean tuple untouched" `Quick test_clean_tuple_untouched;
    Alcotest.test_case "resolved tuple insertable" `Quick
      test_resolved_tuple_is_insertable;
    Alcotest.test_case "weights steer the choice" `Quick test_weights_steer_the_choice;
    Alcotest.test_case "k = 1, 2, 3 all consistent" `Quick test_k1_vs_k2;
    Alcotest.test_case "example 5.1" `Quick test_example_5_1_needs_null_or_zip;
    Alcotest.test_case "register affects later tuples" `Quick
      test_register_affects_later_tuples;
    Alcotest.test_case "invalid k" `Quick test_invalid_k;
  ]
