open Dq_relation
open Dq_cfd
open Helpers

let parse_ok text =
  match Cfd_parser.parse_string text with
  | Ok tabs -> tabs
  | Error e -> Alcotest.failf "parse error: %a" Cfd_parser.pp_error e

let parse_err text =
  match Cfd_parser.parse_string text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let test_parse_fd () =
  match parse_ok "phi3: [id] -> [name, PR]" with
  | [ tab ] ->
    Alcotest.(check string) "name" "phi3" tab.Cfd.Tableau.name;
    Alcotest.(check (list string)) "lhs" [ "id" ] tab.Cfd.Tableau.lhs_attrs;
    Alcotest.(check (list string)) "rhs" [ "name"; "PR" ] tab.Cfd.Tableau.rhs_attrs;
    Alcotest.(check int) "no rows = plain FD" 0 (List.length tab.Cfd.Tableau.rows)
  | tabs -> Alcotest.failf "expected 1 tableau, got %d" (List.length tabs)

let test_parse_with_rows () =
  let text =
    {|# CFDs of Figure 1(b)
phi1: [AC, PN] -> [STR, CT, ST] {
  (212, _ || _, NYC, NY)
  (610, _ || _, PHI, PA),
  (215, _ || _, PHI, PA)
}|}
  in
  match parse_ok text with
  | [ tab ] ->
    Alcotest.(check int) "3 rows" 3 (List.length tab.Cfd.Tableau.rows);
    let row = List.hd tab.Cfd.Tableau.rows in
    Alcotest.(check bool) "first lhs pattern is 212" true
      (Pattern.equal (List.hd row.Cfd.Tableau.lhs)
         (Pattern.const (Value.int 212)));
    Alcotest.(check bool) "PN wildcard" true
      (Pattern.is_wild (List.nth row.Cfd.Tableau.lhs 1))
  | _ -> Alcotest.fail "expected 1 tableau"

let test_parse_multiple_and_comments () =
  let text = "a: [X] -> [Y]\n# comment line\nb: [Y] -> [Z] { (1 || _) }\n" in
  Alcotest.(check int) "two cfds" 2 (List.length (parse_ok text))

let test_quoted_values () =
  match parse_ok {|c: [A] -> [B] { ("hello, world" || "42") }|} with
  | [ tab ] -> (
    match tab.Cfd.Tableau.rows with
    | [ { lhs = [ Pattern.Const v1 ]; rhs = [ Pattern.Const v2 ] } ] ->
      Alcotest.check value "comma inside quotes" (Value.string "hello, world") v1;
      Alcotest.check value "quoted numbers stay strings" (Value.string "42") v2
    | _ -> Alcotest.fail "unexpected rows")
  | _ -> Alcotest.fail "expected 1 tableau"

let test_errors_have_line_numbers () =
  let e = parse_err "a: [X] -> [Y] {\n  (1 || 2\n}" in
  Alcotest.(check bool) "error beyond line 1" true (e.Cfd_parser.line >= 2)

let test_errors_have_columns () =
  (* The stray '|' sits at column 6 of line 2. *)
  let e = parse_err "a: [X] -> [Y] {\n  (1 | 2)\n}" in
  Alcotest.(check int) "line" 2 e.Cfd_parser.line;
  Alcotest.(check int) "col" 6 e.Cfd_parser.col

let test_located_spans () =
  let text = "phi: [AC, PN] -> [CT] {\n  (212, _ || NYC)\n}" in
  match Cfd_parser.parse_string_located text with
  | Error e -> Alcotest.failf "parse error: %a" Cfd_parser.pp_error e
  | Ok [ lt ] ->
    let open Cfd_parser in
    Alcotest.(check int) "name col" 1 lt.Located.name_span.col_start;
    (match lt.Located.lhs_attr_spans with
    | [ ac; pn ] ->
      Alcotest.(check int) "AC col" 7 ac.col_start;
      Alcotest.(check int) "PN col" 11 pn.col_start
    | _ -> Alcotest.fail "expected two LHS attr spans");
    (match lt.Located.row_spans with
    | [ row ] ->
      Alcotest.(check int) "row line" 2 row.line;
      Alcotest.(check int) "row col" 3 row.col_start;
      Alcotest.(check int) "row end col" 18 row.col_end
    | _ -> Alcotest.fail "expected one row span")
  | Ok tabs -> Alcotest.failf "expected 1 tableau, got %d" (List.length tabs)

let test_error_cases () =
  List.iter
    (fun text -> ignore (parse_err text))
    [
      "a [X] -> [Y]" (* missing colon *);
      "a: [] -> [Y]" (* empty attr list *);
      "a: [X] -> [Y] { (1 | 2) }" (* single bar *);
      "a: [X] -> [Y] { (1, 2 || 3) }" (* lhs arity *);
      "a: [X] -> [Y] { (1 || 2), " (* unterminated *);
      "a: [X] -> [Y] { (\"unclosed || _) }";
    ]

let test_roundtrip () =
  let tabs = [ phi1; phi2; phi3; phi4 ] in
  let text = Cfd_parser.to_string tabs in
  let tabs2 = parse_ok text in
  Alcotest.(check int) "same count" (List.length tabs) (List.length tabs2);
  (* Resolving both against the schema yields identical clause sets. *)
  let s1 = Cfd_parser.resolve order_schema tabs in
  let s2 = Cfd_parser.resolve order_schema tabs2 in
  Alcotest.(check int) "same clauses" (Array.length s1) (Array.length s2);
  Array.iteri
    (fun i c1 ->
      let c2 = s2.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "clause %d equal" i)
        true
        (Cfd.lhs c1 = Cfd.lhs c2
        && Cfd.rhs c1 = Cfd.rhs c2
        && Array.for_all2 Pattern.equal (Cfd.lhs_patterns c1) (Cfd.lhs_patterns c2)
        && Pattern.equal (Cfd.rhs_pattern c1) (Cfd.rhs_pattern c2)))
    s1

let test_resolve_numbers_clauses () =
  let sigma = Cfd_parser.resolve order_schema (parse_ok "a: [zip] -> [CT, ST]") in
  Alcotest.(check int) "two clauses" 2 (Array.length sigma);
  Alcotest.(check int) "ids sequential" 1 (Cfd.id sigma.(1))

let test_arrow_inside_bare_word () =
  (* '->' must terminate a bare word; 'a->b' lexes as 'a', '->', 'b'. *)
  let e_or_ok = Cfd_parser.parse_string "x: [a->b] -> [c]" in
  Alcotest.(check bool) "a->b does not parse as one attribute" true
    (match e_or_ok with Error _ -> true | Ok _ -> false)

let suite =
  [
    Alcotest.test_case "plain FD" `Quick test_parse_fd;
    Alcotest.test_case "rows and patterns" `Quick test_parse_with_rows;
    Alcotest.test_case "multiple CFDs, comments" `Quick test_parse_multiple_and_comments;
    Alcotest.test_case "quoted values" `Quick test_quoted_values;
    Alcotest.test_case "errors carry line numbers" `Quick test_errors_have_line_numbers;
    Alcotest.test_case "errors carry columns" `Quick test_errors_have_columns;
    Alcotest.test_case "located parses carry spans" `Quick test_located_spans;
    Alcotest.test_case "malformed inputs rejected" `Quick test_error_cases;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "resolve numbers clauses" `Quick test_resolve_numbers_clauses;
    Alcotest.test_case "arrow terminates bare words" `Quick test_arrow_inside_bare_word;
  ]
