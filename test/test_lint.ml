open Dq_cfd
open Dq_analysis
open Helpers

(* Fixtures are staged by the (deps ...) of the test stanza; the runner's
   cwd is _build/default/test. *)
let fixture name = "../data/lint_fixtures/" ^ name

let parse_fixture name =
  match Cfd_parser.parse_file_located (fixture name) with
  | Ok tabs -> tabs
  | Error e -> Alcotest.failf "fixture %s: %a" name Cfd_parser.pp_error e

let lint ?schema name = Lint.run ?schema (parse_fixture name)

let has code diags = List.exists (fun d -> d.Diagnostic.code = code) diags

let find code diags = List.find (fun d -> d.Diagnostic.code = code) diags

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0

let test_clean_file () =
  Alcotest.(check int)
    "zero diagnostics with schema" 0
    (List.length (lint ~schema:order_schema "clean.cfd"));
  Alcotest.(check int)
    "zero diagnostics without schema" 0
    (List.length (lint "clean.cfd"))

let test_syntax_error_position () =
  match Cfd_parser.parse_file_located (fixture "e000.cfd") with
  | Ok _ -> Alcotest.fail "e000.cfd should not parse"
  | Error e ->
    Alcotest.(check int) "line" 3 e.Cfd_parser.line;
    Alcotest.(check int) "column of the stray '|'" 8 e.Cfd_parser.col

let test_unsatisfiable () =
  let diags = lint ~schema:order_schema "e001.cfd" in
  let d = find Diagnostic.E001 diags in
  Alcotest.(check bool) "core names all_nyc" true
    (contains ~sub:"all_nyc" d.Diagnostic.message);
  Alcotest.(check bool) "core names all_phi" true
    (contains ~sub:"all_phi" d.Diagnostic.message);
  Alcotest.(check bool) "minimal core excludes extra" false
    (contains ~sub:"extra" d.Diagnostic.message);
  Alcotest.(check bool) "positioned" true (d.Diagnostic.span <> None)

let test_conflicting_constants () =
  let diags = lint ~schema:order_schema "e002.cfd" in
  Alcotest.(check bool) "E002 fires" true (has Diagnostic.E002 diags);
  Alcotest.(check bool) "still satisfiable: no E001" false
    (has Diagnostic.E001 diags)

let test_unknown_attribute () =
  let diags = lint ~schema:order_schema "e003.cfd" in
  let e003 = List.filter (fun d -> d.Diagnostic.code = Diagnostic.E003) diags in
  Alcotest.(check int) "unknown attr + duplicate LHS" 2 (List.length e003);
  let unknown = List.hd e003 in
  Alcotest.(check bool) "names the attribute" true
    (contains ~sub:"area_code" unknown.Diagnostic.message);
  (match unknown.Diagnostic.span with
  | Some s ->
    Alcotest.(check int) "line of area_code" 3 s.Cfd_parser.line;
    Alcotest.(check int) "column of area_code" 12 s.Cfd_parser.col_start
  | None -> Alcotest.fail "E003 should carry a span");
  (* Without a schema the unknown-attribute check cannot run, but the
     duplicate-LHS one still does. *)
  let no_schema = lint "e003.cfd" in
  Alcotest.(check int) "duplicate LHS only" 1
    (List.length
       (List.filter (fun d -> d.Diagnostic.code = Diagnostic.E003) no_schema))

let test_redundant_row () =
  let diags = lint ~schema:order_schema "w001.cfd" in
  Alcotest.(check bool) "W001 fires" true (has Diagnostic.W001 diags);
  Alcotest.(check bool) "no error codes" false
    (List.exists Diagnostic.is_error diags);
  (* errors_only skips the (expensive) warning checks entirely. *)
  Alcotest.(check int) "errors_only is silent here" 0
    (List.length (Lint.run ~errors_only:true ~schema:order_schema
                    (parse_fixture "w001.cfd")))

let test_subsumed_row () =
  let diags = lint ~schema:order_schema "w002.cfd" in
  let d = find Diagnostic.W002 diags in
  Alcotest.(check bool) "points at row 2" true
    (contains ~sub:"row 2" d.Diagnostic.message)

let test_trivial_cfd () =
  let diags = lint ~schema:order_schema "w003.cfd" in
  Alcotest.(check bool) "W003 fires" true (has Diagnostic.W003 diags);
  Alcotest.(check bool) "no W001 double-report on a fully trivial CFD" false
    (has Diagnostic.W001 diags)

let test_cyclic_interaction () =
  let diags = lint ~schema:order_schema "w004.cfd" in
  let d = find Diagnostic.W004 diags in
  Alcotest.(check bool) "names zip_city" true
    (contains ~sub:"zip_city" d.Diagnostic.message);
  Alcotest.(check bool) "names city_zip" true
    (contains ~sub:"city_zip" d.Diagnostic.message);
  (* The paper's own Figure 2 ruleset has the CT <-> zip cycle. *)
  match Cfd_parser.parse_file_located "../data/orders.cfd" with
  | Error e -> Alcotest.failf "orders.cfd: %a" Cfd_parser.pp_error e
  | Ok tabs ->
    let diags = Lint.run ~schema:order_schema tabs in
    Alcotest.(check bool) "orders.cfd: W004 only" true
      (diags <> [] && List.for_all (fun d -> d.Diagnostic.code = Diagnostic.W004) diags);
    Alcotest.(check bool) "orders.cfd: no errors" false
      (List.exists Diagnostic.is_error diags)

let test_duplicates () =
  let diags = lint ~schema:order_schema "w005.cfd" in
  let w005 = List.filter (fun d -> d.Diagnostic.code = Diagnostic.W005) diags in
  Alcotest.(check int) "duplicate name + duplicate row" 2 (List.length w005)

(* Every diagnostic code shows up, with its code string, in both the text
   and the JSON rendering of its fixture. *)
let test_renderings () =
  let cases =
    [
      ("e001.cfd", Diagnostic.E001);
      ("e002.cfd", Diagnostic.E002);
      ("e003.cfd", Diagnostic.E003);
      ("w001.cfd", Diagnostic.W001);
      ("w002.cfd", Diagnostic.W002);
      ("w003.cfd", Diagnostic.W003);
      ("w004.cfd", Diagnostic.W004);
      ("w005.cfd", Diagnostic.W005);
    ]
  in
  List.iter
    (fun (file, code) ->
      let diags = lint ~schema:order_schema file in
      let code_str = Diagnostic.code_to_string code in
      let text =
        String.concat "\n"
          (List.map
             (fun d -> Fmt.str "%a" (Render.pp_text ?source:None ~path:file) d)
             diags)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s in text output of %s" code_str file)
        true
        (contains ~sub:(Printf.sprintf "[%s]" code_str) text);
      let json = Render.to_json ~path:file diags in
      Alcotest.(check bool)
        (Printf.sprintf "%s in json output of %s" code_str file)
        true
        (contains ~sub:(Printf.sprintf "\"code\": \"%s\"" code_str) json))
    cases

let test_text_render_caret () =
  let diags = lint ~schema:order_schema "e003.cfd" in
  let source =
    let ic = open_in_bin (fixture "e003.cfd") in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let d = find Diagnostic.E003 diags in
  let text = Fmt.str "%a" (Render.pp_text ~path:"e003.cfd" ~source) d in
  Alcotest.(check bool) "shows the offending line" true
    (contains ~sub:"[area_code]" text);
  Alcotest.(check bool) "underlines it" true (contains ~sub:"^^^" text)

let test_json_escaping () =
  let d = Diagnostic.make Diagnostic.E000 "a \"quoted\"\nmessage" in
  let json = Render.to_json [ d ] in
  Alcotest.(check bool) "escapes quotes and newlines" true
    (contains ~sub:{|a \"quoted\"\nmessage|} json)

let test_summary () =
  let diags = lint ~schema:order_schema "e003.cfd" in
  Alcotest.(check string) "summary" "2 errors, 0 warnings"
    (Render.summary diags)

let suite =
  [
    Alcotest.test_case "clean file is clean" `Quick test_clean_file;
    Alcotest.test_case "E000 syntax error position" `Quick test_syntax_error_position;
    Alcotest.test_case "E001 unsatisfiable with minimal core" `Quick test_unsatisfiable;
    Alcotest.test_case "E002 conflicting constants" `Quick test_conflicting_constants;
    Alcotest.test_case "E003 unknown attribute" `Quick test_unknown_attribute;
    Alcotest.test_case "W001 redundant row" `Quick test_redundant_row;
    Alcotest.test_case "W002 subsumed row" `Quick test_subsumed_row;
    Alcotest.test_case "W003 trivial CFD" `Quick test_trivial_cfd;
    Alcotest.test_case "W004 cyclic interaction" `Quick test_cyclic_interaction;
    Alcotest.test_case "W005 duplicates" `Quick test_duplicates;
    Alcotest.test_case "text and json renderings" `Quick test_renderings;
    Alcotest.test_case "caret rendering" `Quick test_text_render_caret;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "summary line" `Quick test_summary;
  ]
