The bench harness's perf-trajectory surface: section validation,
per-section BENCH_<section>.json files, and the --compare gate.

Unknown --only names are rejected up front with the valid list.

  $ ../../bench/main.exe --only bogus
  unknown section "bogus"; valid sections are:
    fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 thm61 abl-depgraph abl-cluster abl-k parallel analyze engines serve micro
  [2]

thm61 is pure computation — fast and fully deterministic — and lands its
metrics in BENCH_thm61.json under the shared CLI envelope, in the --out
directory.

  $ mkdir out
  $ ../../bench/main.exe --only thm61 --out out > /dev/null
  $ python3 - <<'EOF'
  > import json
  > d = json.load(open("out/BENCH_thm61.json"))
  > assert d["v"] == 2 and d["request"] == "bench" and d["ok"]
  > s = d["report"]["summary"]
  > assert s["section"] == "thm61"
  > m = s["metrics"]
  > assert m["eps0.05.c1.size"] == 159, m
  > print(len(m), "metrics")
  > EOF
  15 metrics

Comparing a run against itself reports zero regressions and exits 0;
--compare also accepts a directory of BENCH_*.json files.

  $ cp out/BENCH_thm61.json old.json
  $ ../../bench/main.exe --compare old.json --out out | tail -1
  no regressions (tolerance 15%)
  $ mkdir baseline && cp out/BENCH_thm61.json baseline/
  $ ../../bench/main.exe --compare baseline --out out > /dev/null

A fabricated regression trips the gate (sizes are higher-is-better, so
inflating the old values makes the new run look worse).

  $ python3 - <<'EOF'
  > import json
  > d = json.load(open("old.json"))
  > m = d["report"]["summary"]["metrics"]
  > for k in m:
  >     m[k] *= 2
  > json.dump(d, open("old.json", "w"))
  > EOF
  $ ../../bench/main.exe --compare old.json --out out > table.txt
  [1]
  $ tail -1 table.txt
  15 metric(s) regressed past 15%

Comparing against a section that has not been re-run is a usage error,
not a silent pass.

  $ ../../bench/main.exe --compare old.json --out /nonexistent 2>&1 | head -1
  bench: --compare: /nonexistent/BENCH_thm61.json (for section thm61) does not exist — run `--only thm61 --out /nonexistent` first
