The serving daemon's HTTP framing under abuse: malformed requests are
answered with typed statuses and the connection is closed, a SIGTERM
drains gracefully with exit 0.  The http_raw probe sends exactly the
bytes given (curl refuses to emit malformed framing) and prints the
response status lines plus "closed" when the daemon hangs up.

Start a keep-alive daemon on an ephemeral port and wait for the ready
line.

  $ cfdclean serve --port 0 --keep-alive --idle-timeout 5 --log serve.log \
  >   > serve.out 2> serve.err & echo $! > serve.pid
  $ for i in $(seq 1 100); do grep -q listening serve.out 2>/dev/null && break; sleep 0.1; done
  $ PORT=$(sed -n 's#.*127\.0\.0\.1:\([0-9]*\).*#\1#p' serve.out)

A well-formed request answers 200 and, on this keep-alive daemon, an
explicit connection: close is honored.

  $ ../../tools/http_raw.exe "$PORT" \
  >   'GET /v1/health HTTP/1.1\r\nconnection: close\r\ncontent-length: 0\r\n\r\n'
  HTTP/1.1 200 OK
  closed

A body announced over the limit is refused up front with 413 — no body
bytes are read.

  $ ../../tools/http_raw.exe "$PORT" \
  >   'POST /v1/sessions/s1/tuples HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n'
  HTTP/1.1 413 Payload Too Large
  closed

An unparseable content-length is a framing error.

  $ ../../tools/http_raw.exe "$PORT" \
  >   'GET /v1/health HTTP/1.1\r\ncontent-length: banana\r\n\r\n'
  HTTP/1.1 400 Bad Request
  closed

So is a request head truncated mid-header.

  $ ../../tools/http_raw.exe "$PORT" 'GET /v1/health HTTP/1.1\r\ncontent-len'
  HTTP/1.1 400 Bad Request
  closed

And a body shorter than announced.

  $ ../../tools/http_raw.exe "$PORT" \
  >   'POST /v1/sessions HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort'
  HTTP/1.1 400 Bad Request
  closed

Pipelined garbage after a valid request: the first request answers, the
garbage is a framing error that closes the connection.

  $ ../../tools/http_raw.exe "$PORT" \
  >   'GET /v1/health HTTP/1.1\r\ncontent-length: 0\r\n\r\nNOT A REQUEST\r\n\r\n'
  HTTP/1.1 200 OK
  HTTP/1.1 400 Bad Request
  closed

SIGTERM drains gracefully: the process exits 0 and its last log line is
the drain completion.

  $ kill -TERM "$(cat serve.pid)" && wait "$(cat serve.pid)"
  $ grep -c '"event":"serve.stop"' serve.log
  1
