The Σ-interaction analyzer.  On the cyclic fixture it prints a cycle
certificate, a may-oscillate verdict and the oscillation pair, and
exits 1.

  $ cfdclean analyze ../../data/analyze_fixtures/cyclic.cfd
  ../../data/analyze_fixtures/cyclic.cfd: 2 clauses over 3 attributes
  termination: MAY OSCILLATE (1 cycle)
    cycle: zip --zip_city--> CT --city_zip--> zip
  shard plan: 1 shard
    shard 0: clauses {zip_city, city_zip} over {zip, CT, STR} (requires reconciliation)
  oscillation: zip_city <-> city_zip (severity high)
  [1]

The shardable fixture splits into two independently repairable clause
groups and terminates (exit 0).

  $ cfdclean analyze ../../data/analyze_fixtures/shardable.cfd
  ../../data/analyze_fixtures/shardable.cfd: 5 clauses over 5 attributes
  termination: dependency graph is acyclic
  shard plan: 2 shards
    shard 0: clauses {zip_city (4 rows)} over {zip, CT, ST}
    shard 1: clauses {id_name} over {id, name}

Constant-RHS oscillation pairs are low severity: the ping-pong closes
after one round.

  $ cfdclean analyze ../../data/analyze_fixtures/oscillating.cfd
  ../../data/analyze_fixtures/oscillating.cfd: 2 clauses over 2 attributes
  termination: MAY OSCILLATE (1 cycle)
    cycle: A --set_b--> B --set_a--> A
  shard plan: 1 shard
    shard 0: clauses {set_b, set_a} over {A, B} (requires reconciliation)
  oscillation: set_b <-> set_a (severity low)
  [1]

With --data the report adds per-clause cost estimates from a bounded
sample; the Figure-1 instance makes phi2's misspelled-city rows hot.

  $ cfdclean analyze ../../data/orders.cfd --data ../../data/orders.csv | grep -c HOT
  4

The JSON envelope carries the machine-readable shard plan and A-code
diagnostics with source spans.

  $ cfdclean analyze ../../data/analyze_fixtures/cyclic.cfd --format json | python3 -c '
  > import json, sys
  > d = json.load(sys.stdin)
  > s = d["report"]["summary"]
  > print(s["termination"])
  > print([sh["independent"] for sh in s["shards"]])
  > print([x["code"] for x in d["diagnostics"]])
  > '
  may-oscillate
  [False]
  ['A001', 'A002']

--analyze-gate makes detect/repair/sample refuse a cyclic ruleset with
exit 3; the plain run is unaffected.

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd --analyze-gate
  cfdclean: ../../data/orders.cfd: ruleset has 1 dependency cycle; run `cfdclean analyze ../../data/orders.cfd` for the cycle certificates, or drop --analyze-gate
  [3]
  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd --analyze-gate
  cfdclean: ../../data/orders.cfd: ruleset has 1 dependency cycle; run `cfdclean analyze ../../data/orders.cfd` for the cycle certificates, or drop --analyze-gate
  [3]

repair --partition consumes the analyzer's shard plan; the output is
byte-identical to the unpartitioned repair at any job count, and the
report's summary counts the shards.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o seq.csv 2> /dev/null
  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd --partition -o part1.csv 2> /dev/null
  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd --partition --jobs 4 -o part4.csv 2> /dev/null
  $ cmp seq.csv part1.csv && cmp seq.csv part4.csv && echo identical
  identical
  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd --partition --format json 2> /dev/null | python3 -c '
  > import json, sys
  > print(json.load(sys.stdin)["report"]["summary"]["shards"])
  > '
  2

--partition is gated per engine: the inc family refuses it.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd --partition --engine inc
  cfdclean: --partition is not supported by the inc engine (use --engine batch or --engine opt-fd)
  [2]

lint --explain prints the diagnostic catalog entry without needing a
ruleset; unknown codes are a usage error.

  $ cfdclean lint --explain A001 | head -n 1
  A001 — attribute dependency cycle
  $ cfdclean lint --explain X999
  cfdclean: --explain: unknown diagnostic code "X999" (codes: E000, E001, E002, E003, W001, W002, W003, W004, W005, A001, A002, A003)
  [2]
  $ cfdclean lint
  cfdclean: a CONSTRAINTS.cfd argument is required (or use --explain CODE)
  [2]
