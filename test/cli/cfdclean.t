The Figure-1 running example ships in data/; detect finds exactly the
violations of t3 and t4 described in the paper.

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd
  4 tuples, 21 clauses: 2 violating tuples, vio(D) = 8
  [1]

The CFD set of Figure 1(b)/2 is satisfiable.

  $ cfdclean check ../../data/orders.csv ../../data/orders.cfd
  satisfiable (21 normal-form clauses)

Repair produces a consistent instance; detect then reports zero violations.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o repaired.csv 2> /dev/null
  $ cfdclean detect repaired.csv ../../data/orders.cfd
  4 tuples, 21 clauses: 0 violating tuples, vio(D) = 0

An unsatisfiable constraint set is rejected before repairing: the lint
gate refuses to run, and --force falls through to repair's own
satisfiability check.

  $ cat > contradictory.cfd <<'CFD'
  > a: [AC] -> [CT] { (_ || NYC) }
  > b: [AC] -> [CT] { (_ || PHI) }
  > CFD
  $ cfdclean check ../../data/orders.csv contradictory.cfd
  UNSATISFIABLE: no non-empty instance can satisfy these CFDs
  [1]
  $ cfdclean repair ../../data/orders.csv contradictory.cfd
  cfdclean: contradictory.cfd: ruleset has 2 lint errors; run `cfdclean lint contradictory.cfd --data ../../data/orders.csv` for details, or pass --force
  [3]
  $ cfdclean repair ../../data/orders.csv contradictory.cfd --force
  cfdclean: the CFD set is unsatisfiable; no repair exists
  [1]

Parse errors carry line and column numbers.

  $ cat > broken.cfd <<'CFD'
  > a: [AC] -> [CT] {
  >   (212 | NYC)
  > }
  > CFD
  $ cfdclean detect ../../data/orders.csv broken.cfd
  cfdclean: broken.cfd: line 2, column 8: expected '||' (single '|' is not a token)
  [2]

Lint reports errors with source excerpts and exits 1; the stray '|' above
surfaces as an E000 diagnostic rather than a hard failure.

  $ cfdclean lint contradictory.cfd --data ../../data/orders.csv --errors-only
  contradictory.cfd:1:19: error[E001]: the ruleset is unsatisfiable: no non-empty instance can satisfy it; minimal conflicting clauses: a#0: [AC] -> [CT] | (_ || NYC); b#1: [AC] -> [CT] | (_ || PHI)
     1 | a: [AC] -> [CT] { (_ || NYC) }
       |                   ^^^^^^^^^^
  contradictory.cfd:2:19: error[E002]: a row 1 and b row 1 have compatible LHS patterns but contradictory constants for CT: NYC vs PHI
     2 | b: [AC] -> [CT] { (_ || PHI) }
       |                   ^^^^^^^^^^
  contradictory.cfd: 2 errors, 0 warnings
  [1]
  $ cfdclean lint broken.cfd
  broken.cfd:2:8: error[E000]: expected '||' (single '|' is not a token)
     2 |   (212 | NYC)
       |        ^
  broken.cfd: 1 error, 0 warnings
  [1]

Warnings alone exit 0: the paper's own ruleset carries the Example-4.1
CT/zip dependency cycle.

  $ cfdclean lint ../../data/orders.cfd --data ../../data/orders.csv
  ../../data/orders.cfd:11:1: warning[W004]: attributes CT, zip form a dependency cycle through phi2, phi4: repairing one clause can re-violate another (the Example 4.1 oscillation hazard)
    11 | phi2: [zip] -> [CT, ST] {
       | ^^^^
  ../../data/orders.cfd: 0 errors, 1 warning
  $ cfdclean lint ../../data/lint_fixtures/w002.cfd
  ../../data/lint_fixtures/w002.cfd:5:3: warning[W002]: row 2 is subsumed by the more general row 1
     5 |   (10012 || NYC, NY)
       |   ^^^^^^^^^^^^^^^^^^
  ../../data/lint_fixtures/w002.cfd: 0 errors, 1 warning

JSON output is machine-readable for CI gating.

  $ cfdclean lint ../../data/lint_fixtures/e002.cfd --data ../../data/orders.csv --format json
  {
    "v": 2,
    "request": "lint",
    "ok": true,
    "report": {
      "engine": "lint",
      "summary": {
        "path": "../../data/lint_fixtures/e002.cfd",
        "errors": 1,
        "warnings": 0
      },
      "phases": {},
      "provenance": []
    },
    "diagnostics": [
      {
        "code": "E002",
        "severity": "error",
        "message": "city_a row 1 and city_b row 1 have compatible LHS patterns but contradictory constants for CT: NYC vs PHI",
        "clause": "city_b",
        "line": 5,
        "col": 24,
        "end_col": 36
      }
    ]
  }
  [1]
