The engine registry behind repair --engine.  Every built-in engine
repairs the pure-FD fixture at the same cost 1.500; batch and opt-fd
also agree on the repaired bytes, while inc picks a different (equally
cheap) witness.  (The wall-clock runtime field is normalized away.)

  $ D=../../data/engine_fixtures
  $ norm () { "$@" 2>&1 | sed 's/runtime=[0-9.]*s/runtime=_/'; }

  $ norm cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine batch -o batch.csv
  batchrepair: steps=2 merges=2 rhs_fixes=0 lhs_fixes=0 nulls=0 cells_changed=2 runtime=_
  repair cost: 1.500; dif: 2 cells
  $ norm cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine inc -o inc.csv
  V-IncRepair: processed=5 changed=2 cells_changed=2 nulls=0 runtime=_
  repair cost: 1.500; dif: 2 cells
  $ norm cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine opt-fd -o opt.csv
  opt-fd: strata=2 groups=6 merges=6 cells_changed=2 runtime=_
  repair cost: 1.500; dif: 2 cells
  $ cmp batch.csv opt.csv && echo batch-and-opt-fd-agree
  batch-and-opt-fd-agree
  $ cmp -s batch.csv inc.csv || echo inc-differs
  inc-differs

The repaired instance is consistent.

  $ cfdclean detect opt.csv $D/fd_only.cfd
  6 tuples, 2 clauses: 0 violating tuples, vio(D) = 0

--engine wins over the legacy -a spelling, and v-inc still resolves as
an alias for inc.

  $ norm cfdclean repair $D/fd_only.csv $D/fd_only.cfd -a batch --engine v-inc -o alias.csv
  cfdclean: warning: W101: -a/--algorithm is deprecated and will be removed; use --engine
  V-IncRepair: processed=5 changed=2 cells_changed=2 nulls=0 runtime=_
  repair cost: 1.500; dif: 2 cells

An unknown engine is a usage error with a stable diagnostic listing
the registry.

  $ cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine bogus -o x.csv
  cfdclean: unknown repair engine "bogus" (known engines: batch, inc, l-inc, w-inc, opt-fd)
  [2]

  $ cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine bogus --format json -o x.csv
  {
    "v": 2,
    "request": "repair",
    "ok": false,
    "report": null,
    "diagnostics": [
      {
        "kind": "unknown-engine",
        "message": "unknown repair engine \"bogus\" (known engines: batch, inc, l-inc, w-inc, opt-fd)",
        "name": "bogus",
        "known": [
          "batch",
          "inc",
          "l-inc",
          "w-inc",
          "opt-fd"
        ]
      }
    ]
  }
  [2]

opt-fd is scoped to acyclic pure-FD rulesets: constant patterns are
rejected up front with a typed diagnostic, not repaired wrongly.

  $ cfdclean repair $D/constant.csv $D/constant.cfd --engine opt-fd -o x.csv
  cfdclean: the opt-fd engine cannot repair this ruleset: clause c1 has constant patterns; only pure FDs (all-wildcard pattern rows) are supported
  [2]

  $ cfdclean repair $D/mixed.csv $D/mixed.cfd --engine opt-fd --format json -o x.csv
  {
    "v": 2,
    "request": "repair",
    "ok": false,
    "report": null,
    "diagnostics": [
      {
        "kind": "engine-unsupported",
        "message": "the opt-fd engine cannot repair this ruleset: clause m2 has constant patterns; only pure FDs (all-wildcard pattern rows) are supported",
        "engine": "opt-fd",
        "reason": "clause m2 has constant patterns; only pure FDs (all-wildcard pattern rows) are supported"
      }
    ]
  }
  [2]

A cyclic FD ruleset is likewise out of fragment, with a pointer at the
analyzer.

  $ cat > cyc.cfd <<'EOF'
  > a: [zip] -> [city]
  > b: [city] -> [zip]
  > EOF
  $ cfdclean repair $D/fd_only.csv cyc.cfd --engine opt-fd -o x.csv
  cfdclean: the opt-fd engine cannot repair this ruleset: the attribute dependency graph has 1 cycle (run `cfdclean analyze` for the certificates); stratified repair needs an acyclic ruleset
  [2]

--deadline-passes cuts deterministically at a stratum boundary: the
run degrades (exit 0), reports its progress, and only the completed
strata's fixes are applied.

  $ norm cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine opt-fd --deadline-passes 1 -o cut.csv
  opt-fd: strata=1 groups=3 merges=3 cells_changed=1 runtime=_
  repair cost: 1.000; dif: 1 cells
  cfdclean: warning: deadline expired at a stratum boundary — partial repair (progress 50%)
  $ cfdclean detect cut.csv $D/fd_only.cfd
  6 tuples, 2 clauses: 2 violating tuples, vio(D) = 2
  [1]

Combining the wall-clock and logical deadlines is refused.

  $ cfdclean repair $D/fd_only.csv $D/fd_only.cfd --deadline 5 --deadline-passes 1 -o x.csv
  cfdclean: --deadline and --deadline-passes cannot be combined
  [2]

An opt-fd checkpoint resumes to the same bytes as the uninterrupted
run, and the batch engine refuses to resume it.

  $ norm cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine opt-fd \
  >   --deadline-passes 1 --checkpoint o.ckpt --checkpoint-every 1 -o x.csv
  opt-fd: strata=1 groups=3 merges=3 cells_changed=1 runtime=_
  repair cost: 1.000; dif: 1 cells
  cfdclean: warning: deadline expired at a stratum boundary — partial repair (progress 50%)
  $ norm cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine opt-fd --resume o.ckpt -o resumed.csv
  opt-fd: strata=2 groups=6 merges=6 cells_changed=2 runtime=_
  repair cost: 1.500; dif: 2 cells
  $ cmp resumed.csv opt.csv && echo resume-identical
  resume-identical
  $ cfdclean repair $D/fd_only.csv $D/fd_only.cfd --engine batch --resume o.ckpt -o x.csv
  cfdclean: checkpoint kind "opt-fd-repair" was written by a different engine (this engine reads "batch-repair")
  [2]
