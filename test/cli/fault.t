The fault-tolerance layer end to end: fault injection, crash-safe
writes, deadlines, and checkpoint/resume.

A synthetic workload to repair.

  $ cfdclean generate -n 300 --rate 0.08 --seed 11 --prefix w > /dev/null
  $ cfdclean repair w_dirty.csv w.cfd -o baseline.csv 2> /dev/null

An unknown fault site is rejected up front, listing the real ones.

  $ cfdclean repair w_dirty.csv w.cfd --fault-plan 'io.wrt@1' -o x.csv
  cfdclean: --fault-plan: unknown site "io.wrt" (known sites: csv.load, io.write, pool.task, repair.pass, resolve.tuple, serve.accept, serve.read, serve.write, serve.ingest)
  [2]

So is a malformed plan.

  $ cfdclean detect w_dirty.csv w.cfd --fault-plan 'csv.load@zero'
  cfdclean: --fault-plan: "csv.load@zero": hit count must be a positive integer
  [2]

An injected crash in the write path exits with a structured error (no
stack trace) and leaves the previous output intact: the atomic writer
stages to a temp file and only then renames.

  $ cp baseline.csv out.csv
  $ cfdclean repair w_dirty.csv w.cfd --fault-plan 'io.write@1' -o out.csv 2> /dev/null
  [2]
  $ cmp baseline.csv out.csv

The DQ_FAULT environment variable arms the same plans.

  $ DQ_FAULT='csv.load@1' cfdclean detect w_dirty.csv w.cfd
  cfdclean: fault injected at site csv.load (armed by a fault plan)
  [2]

A zero deadline expires before anything usable exists: exit 4.

  $ cfdclean repair w_dirty.csv w.cfd --deadline 0 -o x.csv
  cfdclean: deadline exceeded before any usable result was produced
  [4]

A negative deadline is a usage error.

  $ cfdclean repair w_dirty.csv w.cfd --deadline=-1 -o x.csv
  cfdclean: --deadline must be non-negative (got -1)
  [2]

Checkpoint/resume: kill the repair at the first pass boundary (the
repair.pass site fires just after that boundary's checkpoint hits the
disk), then resume from the snapshot.  The resumed repair is
byte-identical to the same checkpointing run left uninterrupted.

  $ cfdclean repair w_dirty.csv w.cfd --checkpoint full.ckpt -o full.csv 2> /dev/null
  $ cfdclean repair w_dirty.csv w.cfd --checkpoint kill.ckpt --fault-plan 'repair.pass@1' -o x.csv 2> /dev/null
  [2]
  $ cfdclean repair w_dirty.csv w.cfd --resume kill.ckpt --checkpoint kill.ckpt -o resumed.csv 2> /dev/null
  $ cmp full.csv resumed.csv

A checkpoint refuses to resume against different input data.

  $ cfdclean generate -n 200 --rate 0.08 --seed 5 --prefix other > /dev/null
  $ cfdclean repair other_dirty.csv other.cfd --resume kill.ckpt -o x.csv
  cfdclean: checkpoint does not match this input (data, ruleset or configuration changed)
  [2]

Checkpointing is gated per engine: the inc family refuses it.

  $ cfdclean repair w_dirty.csv w.cfd --engine inc --checkpoint x.ckpt -o x.csv
  cfdclean: --checkpoint/--resume are not supported by the inc engine (use --engine batch or --engine opt-fd)
  [2]

Without any of the new flags the repair is byte-identical to the
pre-fault-layer output (the zero-overhead gate); with --checkpoint the
engine switches to its canonical decision order, which may legitimately
pick a different (equally costed) repair.

  $ cfdclean repair w_dirty.csv w.cfd -o again.csv 2> /dev/null
  $ cmp baseline.csv again.csv
