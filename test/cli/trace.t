Span tracing (--trace) and live progress (--progress) on the cfdclean CLI.

--trace FILE writes a Chrome trace-event dump alongside the normal output:
an object with a traceEvents list of B/E span events, loadable in
chrome://tracing or Perfetto.  Per domain lane (tid) the events bracket
properly, and the engine/phase spans are present.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o r.csv --trace t.json --jobs 2 2>/dev/null
  $ python3 - <<'EOF'
  > import json
  > d = json.load(open("t.json"))
  > assert d["displayTimeUnit"] == "ms"
  > evs = d["traceEvents"]
  > assert evs, "no events recorded"
  > assert all(e["ph"] in ("B", "E") for e in evs)
  > assert all(isinstance(e["ts"], (int, float)) and e["ts"] >= 0 for e in evs)
  > stacks = {}
  > for e in evs:
  >     s = stacks.setdefault(e["tid"], [])
  >     if e["ph"] == "B":
  >         s.append(e["name"])
  >     else:
  >         assert s and s[-1] == e["name"], ("unbalanced", e)
  >         s.pop()
  > assert all(not s for s in stacks.values()), "span left open"
  > names = {e["name"] for e in evs}
  > assert {"batch_repair", "init", "initial_scan", "resolve", "write_back"} <= names, names
  > assert any(e["name"] == "batch.pass" for e in evs)
  > print("trace well-formed")
  > EOF
  trace well-formed

--progress paints transient status lines; they go to stderr only.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o p.csv --progress 2>progress.err
  $ grep -c "batch_repair: pass" progress.err
  1

With --format json, stdout is byte-identical whether or not tracing and
progress are on (phase timings are wall-clock and normalised away; they
vary run to run regardless of instrumentation).

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o a.csv --format json 2>/dev/null \
  >   | sed -E '/"(init|initial_scan|resolve|write_back)":/d' > plain.json
  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o b.csv --format json \
  >     --trace t2.json --progress 2>/dev/null \
  >   | sed -E '/"(init|initial_scan|resolve|write_back)":/d' > instrumented.json
  $ diff plain.json instrumented.json

--trace composes with every subcommand, not just repair.

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd --trace d.json >/dev/null
  [1]
  $ python3 -c 'import json; d = json.load(open("d.json")); print(len(d["traceEvents"]) > 0)'
  True
