Detection accepts --jobs and reports the same violations at any job
count (the engine's outputs are byte-identical regardless of
parallelism).

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd --jobs 4
  4 tuples, 21 clauses: 2 violating tuples, vio(D) = 8
  [1]

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd --jobs 1 > one.out
  [1]
  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd --jobs 7 > seven.out
  [1]
  $ diff one.out seven.out

Repair at several job counts produces identical repairs.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd --jobs 1 2> /dev/null > r1.csv
  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd --jobs 4 2> /dev/null > r4.csv
  $ diff r1.csv r4.csv

A job count below one is rejected with a clear error.

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd --jobs 0
  cfdclean: --jobs must be at least 1 (got 0)
  [2]

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd --jobs=-3
  cfdclean: --jobs must be at least 1 (got -3)
  [2]
