The observability surface: --format json envelopes, --explain provenance
tables, --metrics dumps, and the --in-place overwrite guard.

Every subcommand shares one JSON envelope: command, ok, report,
diagnostics.  The report's summary and provenance are deterministic;
phase timings are wall-clock and normalised away here.

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd --format json
  {
    "v": 2,
    "request": "detect",
    "ok": true,
    "report": {
      "engine": "detect",
      "summary": {
        "tuples": 4,
        "clauses": 21,
        "violating_tuples": 2,
        "violations": 8
      },
      "phases": {},
      "provenance": []
    },
    "diagnostics": []
  }
  [1]

Repair with --explain prints one provenance row per cell write.  With -o
the table goes to stdout and the stats line to stderr.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o repaired.csv --explain 2>/dev/null
  pass  tuple  attr       old            -> new            clause           cost
     0  t2     CT         PHI            -> NYC            phi1             1.0250
     1  t3     zip        10012          -> 19014          phi2             0.1000
     2  t2     ST         PA             -> NY             phi1             0.3333
     3  t3     CT         PHI            -> NYC            phi1             3.1000
     4  t3     zip        19014          -> ⊥            phi2             0.3333
     5  t3     ST         PA             -> NY             phi1             0.5000

The JSON report carries the same trail: an entry for every changed cell
(t3's zip is written twice; the last write wins).

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o r.csv --format json \
  >   | sed -E 's/^(\s*"(init|initial_scan|resolve|write_back)": )[0-9.e+-]+(,?)$/\1X\3/'
  {
    "v": 2,
    "request": "repair",
    "ok": true,
    "report": {
      "engine": "batch_repair",
      "summary": {
        "steps": 6,
        "merges": 0,
        "rhs_fixes": 4,
        "lhs_fixes": 2,
        "nulls_introduced": 1,
        "cells_changed": 5
      },
      "phases": {
        "init": X,
        "initial_scan": X,
        "resolve": X,
        "write_back": X
      },
      "provenance": [
        {
          "tid": 2,
          "attr": 6,
          "attr_name": "CT",
          "old": "PHI",
          "new": "NYC",
          "clause": "phi1",
          "cost_delta": 1.025,
          "pass": 0
        },
        {
          "tid": 3,
          "attr": 8,
          "attr_name": "zip",
          "old": 10012,
          "new": 19014,
          "clause": "phi2",
          "cost_delta": 0.1,
          "pass": 1
        },
        {
          "tid": 2,
          "attr": 7,
          "attr_name": "ST",
          "old": "PA",
          "new": "NY",
          "clause": "phi1",
          "cost_delta": 0.333333333333,
          "pass": 2
        },
        {
          "tid": 3,
          "attr": 6,
          "attr_name": "CT",
          "old": "PHI",
          "new": "NYC",
          "clause": "phi1",
          "cost_delta": 3.1,
          "pass": 3
        },
        {
          "tid": 3,
          "attr": 8,
          "attr_name": "zip",
          "old": 19014,
          "new": null,
          "clause": "phi2",
          "cost_delta": 0.333333333333,
          "pass": 4
        },
        {
          "tid": 3,
          "attr": 7,
          "attr_name": "ST",
          "old": "PA",
          "new": "NY",
          "clause": "phi1",
          "cost_delta": 0.5,
          "pass": 5
        }
      ]
    },
    "diagnostics": []
  }

The report (timings aside) is byte-identical at any job count.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o a.csv --format json --jobs 1 \
  >   | sed -E '/"(init|initial_scan|resolve|write_back)":/d' > jobs1.json
  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o b.csv --format json --jobs 4 \
  >   | sed -E '/"(init|initial_scan|resolve|write_back)":/d' > jobs4.json
  $ diff jobs1.json jobs4.json

--metrics dumps the process-wide instrument registry; counter values are
deterministic, durations are not.

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd --metrics metrics.json > /dev/null
  [1]
  $ sed -n '/"counters"/,/}/p' metrics.json
    "counters": {
      "batch.merges": 0,
      "batch.rescans": 0,
      "batch.resolve_steps": 0,
      "inc.resolves": 0,
      "inc.tuples_changed": 0,
      "pool.batches": 0,
      "pool.tasks": 0,
      "sampling.drawn": 0,
      "sampling.inspections": 0,
      "violation.found": 8,
      "violation.scans": 1
    },

Repair refuses to silently overwrite its input; --in-place opts in.

  $ cp ../../data/orders.csv orders.csv
  $ cfdclean repair orders.csv ../../data/orders.cfd -o orders.csv
  cfdclean: refusing to overwrite the input file orders.csv; pass --in-place to allow it
  [2]
  $ cfdclean repair orders.csv ../../data/orders.cfd -o orders.csv --format json
  {
    "v": 2,
    "request": "repair",
    "ok": false,
    "report": null,
    "diagnostics": [
      {
        "kind": "would-overwrite",
        "message": "refusing to overwrite the input file orders.csv; pass --in-place to allow it"
      }
    ]
  }
  [2]
  $ cfdclean repair orders.csv ../../data/orders.cfd --in-place 2>/dev/null
  $ cfdclean detect orders.csv ../../data/orders.cfd
  4 tuples, 21 clauses: 0 violating tuples, vio(D) = 0
