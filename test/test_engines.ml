(* Differential cross-engine suite: every registered engine must satisfy
   the {!Dq_engine.Engine.ENGINE} contract on random instances — a
   Σ-consistent repair, byte-identical output at any job count (and under
   the shard partition where supported), a replayable provenance trail —
   and the opt-fd engine must additionally beat (or tie) BATCHREPAIR's
   cost on its own fragment, since it is optimal there. *)

open Dq_relation
open Dq_cfd
open Dq_core
open Dq_engine
open Helpers.Gen

let satisfiable sigma = Satisfiability.is_satisfiable schema sigma

let engine name =
  match Engine.find name with
  | Ok e -> e
  | Error e -> Alcotest.failf "Engine.find %s: %s" name (Dq_error.to_string e)

let run ?pool ?deadline ?checkpoint ?resume ?partition name rel sigma =
  let (module E : Engine.ENGINE) = engine name in
  Helpers.ok2
    (E.run (Engine.ctx ?pool ?deadline ?checkpoint ?resume ?partition rel sigma))

let repair_of ?pool ?deadline ?checkpoint ?resume ?partition name rel sigma =
  fst
    (fst (run ?pool ?deadline ?checkpoint ?resume ?partition name rel sigma))

let all_names = [ "batch"; "inc"; "l-inc"; "w-inc"; "opt-fd" ]

(* ---- generators --------------------------------------------------------- *)

(* A pure-FD acyclic Σ over the fixed A..D attribute order: every clause
   is all-wildcard and its RHS attribute index is strictly greater than
   each LHS index, so the attribute dependency graph can only point
   "rightwards" and is acyclic by construction.  Exactly the opt-fd
   fragment. *)
let fd_clause_gen =
  QCheck.Gen.(
    let* rhs_idx = 1 -- (List.length attrs - 1) in
    let candidates = List.filteri (fun i _ -> i < rhs_idx) attrs in
    let* lhs_size = 1 -- List.length candidates in
    let* perm = shuffle_l candidates in
    let lhs_attrs = List.filteri (fun i _ -> i < lhs_size) perm in
    return
      (Cfd.make schema
         ~lhs:(List.map (fun a -> (a, Pattern.Wild)) lhs_attrs)
         ~rhs:(List.nth attrs rhs_idx, Pattern.Wild)))

let fd_sigma_gen =
  QCheck.Gen.(map (fun l -> Cfd.number l) (list_size (1 -- 5) fd_clause_gen))

let fd_instance = QCheck.make QCheck.Gen.(pair relation_gen fd_sigma_gen)

(* ---- differential properties ------------------------------------------- *)

let prop_all_engines_satisfy =
  QCheck.Test.make
    ~name:"every engine yields a Σ-consistent repair (general Σ)" ~count:80
    instance
    (fun (rel, sigma) ->
      QCheck.assume (satisfiable sigma);
      List.for_all
        (fun name ->
          let (module E : Engine.ENGINE) = engine name in
          match E.fragment schema sigma with
          | Error _ -> true (* rejected up front, nothing to check *)
          | Ok () ->
            let repaired = repair_of name rel sigma in
            Violation.total repaired sigma = 0)
        all_names)

let prop_fd_fragment_differential =
  QCheck.Test.make
    ~name:"every engine repairs the FD-only fragment consistently" ~count:100
    fd_instance
    (fun (rel, sigma) ->
      List.for_all
        (fun name ->
          let (module E : Engine.ENGINE) = engine name in
          (match E.fragment schema sigma with
          | Ok () -> ()
          | Error reason ->
            QCheck.Test.fail_reportf "%s rejected a pure-FD acyclic Σ: %s"
              name reason);
          Violation.total (repair_of name rel sigma) sigma = 0)
        all_names)

let prop_opt_fd_cost_le_batch =
  QCheck.Test.make ~name:"opt-fd cost is at most batch cost on FD-only Σ"
    ~count:150 fd_instance
    (fun (rel, sigma) ->
      let batch = repair_of "batch" rel sigma in
      let opt = repair_of "opt-fd" rel sigma in
      let cost r = Cost.repair_cost ~original:rel ~repair:r in
      if cost opt <= cost batch +. 1e-9 then true
      else
        QCheck.Test.fail_reportf "opt-fd cost %.6f > batch cost %.6f"
          (cost opt) (cost batch))

let prop_engines_jobs_invariant =
  QCheck.Test.make
    ~name:"each engine's repair is byte-identical at jobs 1 and 4" ~count:40
    fd_instance
    (fun (rel, sigma) ->
      List.for_all
        (fun name ->
          let at jobs =
            Dq_parallel.Pool.with_pool ~jobs @@ fun pool ->
            Csv.save_string (repair_of ~pool name rel sigma)
          in
          String.equal (at 1) (at 4))
        all_names)

let prop_partition_invariant =
  QCheck.Test.make
    ~name:"--partition leaves batch and opt-fd output byte-identical"
    ~count:40 fd_instance
    (fun (rel, sigma) ->
      let partition =
        (Dq_analysis.Interaction.analyze schema sigma)
          .Dq_analysis.Interaction.partition
      in
      List.for_all
        (fun name ->
          let plain = Csv.save_string (repair_of name rel sigma) in
          let sharded = Csv.save_string (repair_of ~partition name rel sigma) in
          String.equal plain sharded)
        [ "batch"; "opt-fd" ])

let prop_provenance_replays =
  QCheck.Test.make
    ~name:"every engine's provenance trail replays to its repair" ~count:60
    fd_instance
    (fun (rel, sigma) ->
      List.for_all
        (fun name ->
          let (repaired, _), report = run name rel sigma in
          let replayed =
            Dq_obs.Provenance.replay rel report.Dq_obs.Report.provenance
          in
          Relation.dif repaired replayed = 0)
        all_names)

(* ---- unit tests: checkpoint/resume and fault plans ---------------------- *)

let with_tmp f =
  let path = Filename.temp_file "engines" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Figure-2-style FD ruleset on the shared order schema: acyclic and
   pure-FD, so opt-fd accepts it. *)
let fd_fixture () =
  let rel = Helpers.fig1_db () in
  let sigma =
    Cfd.number
      (List.concat_map
         (Cfd.normalize Helpers.order_schema)
         [ Helpers.phi3; Helpers.phi4 ])
  in
  (rel, sigma)

let test_opt_fd_checkpoint_resume () =
  let rel, sigma = fd_fixture () in
  let direct = Csv.save_string (repair_of "opt-fd" rel sigma) in
  with_tmp @@ fun path ->
  (* Cut after the first stratum: the run is degraded and leaves a
     checkpoint behind... *)
  let (_, _), report =
    run
      ~deadline:(Dq_fault.Deadline.after_passes 1)
      ~checkpoint:{ Engine.path; every = 1 } "opt-fd" rel sigma
  in
  Alcotest.(check bool)
    "first run is degraded" true
    (report.Dq_obs.Report.degraded <> None);
  let cp =
    match Checkpoint.load path with
    | Ok cp -> cp
    | Error e -> Alcotest.failf "checkpoint load: %s" e
  in
  Alcotest.(check string)
    "checkpoint kind" Checkpoint.opt_fd_kind cp.Checkpoint.kind;
  (* ...and resuming from it finishes the job byte-identically. *)
  let resumed = Csv.save_string (repair_of ~resume:cp "opt-fd" rel sigma) in
  Alcotest.(check string) "resume completes the direct repair" direct resumed

let test_cross_engine_resume_refused () =
  let rel, sigma = fd_fixture () in
  with_tmp @@ fun path ->
  let (_ : (Relation.t * string) * Dq_obs.Report.t) =
    run
      ~deadline:(Dq_fault.Deadline.after_passes 1)
      ~checkpoint:{ Engine.path; every = 1 } "opt-fd" rel sigma
  in
  let cp =
    match Checkpoint.load path with
    | Ok cp -> cp
    | Error e -> Alcotest.failf "checkpoint load: %s" e
  in
  let (module Batch : Engine.ENGINE) = engine "batch" in
  match Batch.run (Engine.ctx ~resume:cp rel sigma) with
  | Ok _ -> Alcotest.fail "batch accepted an opt-fd checkpoint"
  | Error e ->
    let msg = Dq_error.to_string e in
    Alcotest.(check bool)
      "refusal names the foreign kind" true
      (Helpers.contains msg "opt-fd-repair")

(* A delay plan must not change any engine's output — fault sites are
   pure interposition points. *)
let test_fault_plan_differential () =
  let rel, sigma = fd_fixture () in
  let plan =
    match Dq_fault.Fault.parse_plan "repair.pass@1:delay 1" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse_plan: %s" e
  in
  List.iter
    (fun name ->
      let plain = Csv.save_string (repair_of name rel sigma) in
      Dq_fault.Fault.arm plan;
      let faulted =
        Fun.protect ~finally:Dq_fault.Fault.disarm (fun () ->
            Csv.save_string (repair_of name rel sigma))
      in
      Alcotest.(check string)
        (Printf.sprintf "%s output unchanged under a delay plan" name)
        plain faulted)
    all_names

let test_unknown_engine () =
  match Engine.find "bogus" with
  | Ok _ -> Alcotest.fail "found an engine named bogus"
  | Error (Dq_error.Unknown_engine { name; known }) ->
    Alcotest.(check string) "name echoed" "bogus" name;
    Alcotest.(check (list string)) "known list" (Engine.names ()) known
  | Error e ->
    Alcotest.failf "wrong error: %s" (Dq_error.to_string e)

let test_fragment_mismatch () =
  let sigma = Helpers.fig1_sigma () in
  match Engine.check_fragment (engine "opt-fd") Helpers.order_schema sigma with
  | Ok () -> Alcotest.fail "opt-fd accepted a constant-pattern Σ"
  | Error (Dq_error.Engine_unsupported { engine; reason }) ->
    Alcotest.(check string) "engine named" "opt-fd" engine;
    Alcotest.(check bool)
      "reason mentions constants" true
      (Helpers.contains reason "constant patterns")
  | Error e -> Alcotest.failf "wrong error: %s" (Dq_error.to_string e)

let test_alias_and_registry () =
  let (module V : Engine.ENGINE) = engine "v-inc" in
  Alcotest.(check string) "v-inc aliases inc" "inc" V.name;
  Alcotest.(check (list string))
    "registry order" all_names (Engine.names ())

let suite =
  [
    Alcotest.test_case "unknown engine is a typed error" `Quick
      test_unknown_engine;
    Alcotest.test_case "opt-fd rejects constant patterns up front" `Quick
      test_fragment_mismatch;
    Alcotest.test_case "v-inc alias and registry names" `Quick
      test_alias_and_registry;
    Alcotest.test_case "opt-fd checkpoint/resume is byte-identical" `Quick
      test_opt_fd_checkpoint_resume;
    Alcotest.test_case "batch refuses an opt-fd checkpoint" `Quick
      test_cross_engine_resume_refused;
    Alcotest.test_case "delay fault plans never change output" `Quick
      test_fault_plan_differential;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_all_engines_satisfy;
        prop_fd_fragment_differential;
        prop_opt_fd_cost_le_batch;
        prop_engines_jobs_invariant;
        prop_partition_invariant;
        prop_provenance_replays;
      ]
