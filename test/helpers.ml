(* Shared fixtures: the paper's Figure 1 running example. *)
open Dq_relation
open Dq_cfd

let order_schema =
  Schema.make ~name:"order"
    [ "id"; "name"; "PR"; "AC"; "PN"; "STR"; "CT"; "ST"; "zip" ]

let v = Value.string

let row values weights =
  (Array.of_list (List.map Value.of_string values), Array.of_list weights)

(* Figure 1(a), including the wt rows. *)
let fig1_rows =
  [
    row
      [ "a23"; "H. Porter"; "17.99"; "215"; "8983490"; "Walnut"; "PHI"; "PA"; "19014" ]
      [ 1.0; 0.5; 0.5; 0.5; 0.5; 0.8; 0.8; 0.8; 0.8 ];
    row
      [ "a23"; "H. Porter"; "17.99"; "610"; "3456789"; "Spruce"; "PHI"; "PA"; "19014" ]
      [ 1.0; 0.5; 0.5; 0.5; 0.5; 0.6; 0.6; 0.6; 0.6 ];
    row
      [ "a12"; "J. Denver"; "7.94"; "212"; "3345677"; "Canel"; "PHI"; "PA"; "10012" ]
      [ 1.0; 0.9; 0.9; 0.9; 0.9; 0.6; 0.1; 0.1; 0.8 ];
    row
      [ "a89"; "Snow White"; "18.99"; "212"; "5674322"; "Broad"; "PHI"; "PA"; "10012" ]
      [ 1.0; 0.6; 0.5; 0.9; 0.9; 0.1; 0.6; 0.6; 0.9 ];
  ]

let fig1_db () =
  let rel = Relation.create order_schema in
  List.iter (fun (values, weights) -> ignore (Relation.insert ~weights rel values)) fig1_rows;
  rel

let wild = Pattern.Wild

let const s = Pattern.const (Value.of_string s)

(* phi1 = ([AC,PN] -> [STR,CT,ST], T1) of Figure 1(b). *)
let phi1 =
  Cfd.Tableau.
    {
      name = "phi1";
      lhs_attrs = [ "AC"; "PN" ];
      rhs_attrs = [ "STR"; "CT"; "ST" ];
      rows =
        [
          { lhs = [ wild; wild ]; rhs = [ wild; wild; wild ] };
          { lhs = [ const "212"; wild ]; rhs = [ wild; const "NYC"; const "NY" ] };
          { lhs = [ const "610"; wild ]; rhs = [ wild; const "PHI"; const "PA" ] };
          { lhs = [ const "215"; wild ]; rhs = [ wild; const "PHI"; const "PA" ] };
        ];
    }

(* phi2 = ([zip] -> [CT,ST], T2). *)
let phi2 =
  Cfd.Tableau.
    {
      name = "phi2";
      lhs_attrs = [ "zip" ];
      rhs_attrs = [ "CT"; "ST" ];
      rows =
        [
          { lhs = [ wild ]; rhs = [ wild; wild ] };
          { lhs = [ const "10012" ]; rhs = [ const "NYC"; const "NY" ] };
          { lhs = [ const "19014" ]; rhs = [ const "PHI"; const "PA" ] };
        ];
    }

(* phi3, phi4: the traditional FDs of Figure 2. *)
let phi3 = Cfd.Tableau.fd ~name:"phi3" ~lhs:[ "id" ] ~rhs:[ "name"; "PR" ]

let phi4 = Cfd.Tableau.fd ~name:"phi4" ~lhs:[ "CT"; "STR" ] ~rhs:[ "zip" ]

let fig1_sigma () =
  Cfd.number
    (List.concat_map (Cfd.normalize order_schema) [ phi1; phi2; phi3; phi4 ])

let value = Alcotest.testable Value.pp Value.equal

(* Random-instance generators shared by the property suites: small
   relations over a fixed 4-attribute schema, and random CFD sets (random
   FDs plus random constant rows) over a tiny value universe so
   violations are common. *)
module Gen = struct
  let attrs = [ "A"; "B"; "C"; "D" ]

  let schema = Schema.make ~name:"r" attrs

  let value_gen =
    QCheck.Gen.(map (fun i -> Value.string (Printf.sprintf "v%d" i)) (0 -- 4))

  let tuple_gen =
    QCheck.Gen.(array_size (return (List.length attrs)) value_gen)

  let relation_gen =
    QCheck.Gen.(
      map
        (fun rows ->
          let rel = Relation.create schema in
          List.iter (fun values -> ignore (Relation.insert rel values)) rows;
          rel)
        (list_size (1 -- 25) tuple_gen))

  (* A random normal-form clause: distinct LHS attrs, one RHS attr, each
     pattern position either wild or a small constant. *)
  let clause_gen =
    QCheck.Gen.(
      let* lhs_size = 1 -- 2 in
      let* perm = shuffle_l attrs in
      let lhs_attrs = List.filteri (fun i _ -> i < lhs_size) perm in
      let rhs_attr = List.nth perm lhs_size in
      let pattern_gen =
        oneof [ return Pattern.Wild; map (fun v -> Pattern.const v) value_gen ]
      in
      let* lhs_pats = flatten_l (List.map (fun _ -> pattern_gen) lhs_attrs) in
      let* rhs_pat = pattern_gen in
      return
        (Cfd.make schema
           ~lhs:(List.combine lhs_attrs lhs_pats)
           ~rhs:(rhs_attr, rhs_pat)))

  let sigma_gen =
    QCheck.Gen.(map (fun l -> Cfd.number l) (list_size (1 -- 6) clause_gen))

  let instance_gen = QCheck.Gen.pair relation_gen sigma_gen

  let instance = QCheck.make instance_gen
end

(* Substring check for error-message assertions. *)
let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* Unwrap an engine [result], dropping the attached observability report.
   Failing the running test with the error message beats [Result.get_ok]'s
   anonymous [Invalid_argument]. *)
let ok = function
  | Ok (payload, _report) -> payload
  | Error e -> Alcotest.failf "engine error: %s" (Dq_error.to_string e)

(* Same, but keep the report for observability-focused assertions. *)
let ok_report = function
  | Ok (_payload, report) -> report
  | Error e -> Alcotest.failf "engine error: %s" (Dq_error.to_string e)

(* Both halves: the engine payload and its report. *)
let ok2 = function
  | Ok pair -> pair
  | Error e -> Alcotest.failf "engine error: %s" (Dq_error.to_string e)
