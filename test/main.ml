let () =
  Alcotest.run "dataqual"
    [
      ("vec", Test_vec.suite);
      ("heap", Test_heap.suite);
      ("value", Test_value.suite);
      ("schema", Test_schema.suite);
      ("tuple", Test_tuple.suite);
      ("relation", Test_relation.suite);
      ("csv", Test_csv.suite);
      ("pattern", Test_pattern.suite);
      ("cfd", Test_cfd.suite);
      ("parser", Test_parser.suite);
      ("violation", Test_violation.suite);
      ("lhs_index", Test_lhs_index.suite);
      ("satisfiability", Test_satisfiability.suite);
      ("cost", Test_cost.suite);
      ("eqclass", Test_eqclass.suite);
      ("depgraph", Test_depgraph.suite);
      ("cluster_index", Test_cluster_index.suite);
      ("stats", Test_stats.suite);
      ("reservoir", Test_reservoir.suite);
      ("sampling", Test_sampling.suite);
      ("framework", Test_framework.suite);
      ("batch_repair", Test_batch_repair.suite);
      ("tuple_resolve", Test_tuple_resolve.suite);
      ("inc_repair", Test_inc_repair.suite);
      ("workload", Test_workload.suite);
      ("datagen", Test_datagen.suite);
      ("noise", Test_noise.suite);
      ("discovery", Test_discovery.suite);
      ("implication", Test_implication.suite);
      ("lint", Test_lint.suite);
      ("ind", Test_ind.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("properties", Test_properties.suite);
    ]
