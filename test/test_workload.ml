open Dq_relation
open Dq_cfd
open Dq_core
open Dq_workload

let small_dataset ?(n = 300) ?(seed = 7) () =
  Datagen.generate
    {
      Datagen.n_tuples = n;
      n_cities = 10;
      n_streets_per_city = 4;
      n_items = 30;
      n_customers = 100;
      tableau_coverage = 0.8;
      seed;
    }

let test_dopt_is_clean () =
  let ds = small_dataset () in
  Alcotest.(check bool) "Dopt satisfies sigma" true
    (Violation.satisfies ds.Datagen.dopt ds.Datagen.sigma)

let test_sigma_is_satisfiable () =
  let ds = small_dataset () in
  Alcotest.(check bool) "sigma satisfiable" true
    (Satisfiability.is_satisfiable Order_schema.schema ds.Datagen.sigma)

let test_pattern_rows_in_paper_range () =
  (* At the default experimental scale the tableaus carry a few hundred
     pattern rows, matching the paper's 300-5,000 band. *)
  let ds = Datagen.generate (Datagen.default_params ~n_tuples:10_000 ()) in
  let rows = Datagen.pattern_row_count ds in
  Alcotest.(check bool)
    (Printf.sprintf "pattern rows (%d) within 300..5000" rows)
    true
    (rows >= 300 && rows <= 5000)

let test_noise_dirties () =
  let ds = small_dataset () in
  let noise = Noise.default_params ~rate:0.1 () in
  let info = Noise.inject noise ds in
  Alcotest.(check bool) "dirty violates sigma" false
    (Violation.satisfies info.Noise.dirty ds.Datagen.sigma);
  Alcotest.(check bool) "roughly rate*n tuples dirty" true
    (let n = List.length info.Noise.dirty_tids in
     n > 15 && n <= 30);
  (* every reported dirty tuple indeed violates something *)
  let counts = Violation.vio_counts info.Noise.dirty ds.Datagen.sigma in
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "tuple %d violates" tid)
        true (Hashtbl.mem counts tid))
    info.Noise.dirty_tids

let test_noise_preserves_dopt () =
  let ds = small_dataset () in
  let info = Noise.inject (Noise.default_params ~rate:0.1 ()) ds in
  Alcotest.(check int) "dif(D,Dopt) = dirtied cells"
    (List.length info.Noise.dirtied_cells)
    (Relation.dif info.Noise.dirty ds.Datagen.dopt)

let test_zero_rate () =
  let ds = small_dataset () in
  let info = Noise.inject (Noise.default_params ~rate:0.0 ()) ds in
  Alcotest.(check (list int)) "no dirty tuples" [] info.Noise.dirty_tids;
  Alcotest.(check bool) "still clean" true
    (Violation.satisfies info.Noise.dirty ds.Datagen.sigma)

let test_batch_pipeline () =
  let ds = small_dataset () in
  let info = Noise.inject (Noise.default_params ~rate:0.05 ()) ds in
  let repr, _ = Helpers.ok (Batch_repair.repair info.Noise.dirty ds.Datagen.sigma) in
  Alcotest.(check bool) "repair clean" true
    (Violation.satisfies repr ds.Datagen.sigma);
  let m = Metrics.evaluate ~dopt:ds.Datagen.dopt ~dirty:info.Noise.dirty ~repair:repr in
  Alcotest.(check bool)
    (Format.asprintf "batch precision reasonable (%a)" Metrics.pp m)
    true (m.Metrics.precision > 0.5);
  Alcotest.(check bool)
    (Format.asprintf "batch recall reasonable (%a)" Metrics.pp m)
    true (m.Metrics.recall > 0.5)

let test_increpair_pipeline () =
  let ds = small_dataset () in
  let info = Noise.inject (Noise.default_params ~rate:0.05 ()) ds in
  let repr, _ = Helpers.ok (Inc_repair.repair_dirty info.Noise.dirty ds.Datagen.sigma) in
  Alcotest.(check bool) "repair clean" true
    (Violation.satisfies repr ds.Datagen.sigma);
  let m = Metrics.evaluate ~dopt:ds.Datagen.dopt ~dirty:info.Noise.dirty ~repair:repr in
  Alcotest.(check bool)
    (Format.asprintf "increpair precision reasonable (%a)" Metrics.pp m)
    true (m.Metrics.precision > 0.5);
  Alcotest.(check bool)
    (Format.asprintf "increpair recall reasonable (%a)" Metrics.pp m)
    true (m.Metrics.recall > 0.5)

let test_metrics_identities () =
  let ds = small_dataset () in
  let info = Noise.inject (Noise.default_params ~rate:0.05 ()) ds in
  (* Perfect repair: Repr = Dopt. *)
  let perfect =
    Metrics.evaluate ~dopt:ds.Datagen.dopt ~dirty:info.Noise.dirty
      ~repair:ds.Datagen.dopt
  in
  Alcotest.(check (float 1e-9)) "perfect precision" 1.0 perfect.Metrics.precision;
  Alcotest.(check (float 1e-9)) "perfect recall" 1.0 perfect.Metrics.recall;
  (* No-op repair: Repr = D. *)
  let noop =
    Metrics.evaluate ~dopt:ds.Datagen.dopt ~dirty:info.Noise.dirty
      ~repair:info.Noise.dirty
  in
  Alcotest.(check (float 1e-9)) "noop precision (vacuous)" 1.0 noop.Metrics.precision;
  Alcotest.(check (float 1e-9)) "noop recall" 0.0 noop.Metrics.recall

let test_determinism () =
  let ds1 = small_dataset () in
  let ds2 = small_dataset () in
  Alcotest.(check int) "same data for same seed" 0
    (Relation.dif ds1.Datagen.dopt ds2.Datagen.dopt);
  let i1 = Noise.inject (Noise.default_params ()) ds1 in
  let i2 = Noise.inject (Noise.default_params ()) ds2 in
  Alcotest.(check int) "same noise for same seed" 0
    (Relation.dif i1.Noise.dirty i2.Noise.dirty)

let test_constant_share_extremes () =
  let ds = small_dataset ~n:400 () in
  List.iter
    (fun share ->
      let info =
        Noise.inject (Noise.default_params ~rate:0.05 ~constant_share:share ()) ds
      in
      Alcotest.(check bool)
        (Printf.sprintf "share %.1f dirties data" share)
        true
        (List.length info.Noise.dirty_tids > 0))
    [ 0.0; 1.0 ]

let suite =
  [
    Alcotest.test_case "Dopt |= sigma" `Quick test_dopt_is_clean;
    Alcotest.test_case "sigma satisfiable" `Quick test_sigma_is_satisfiable;
    Alcotest.test_case "pattern rows in 300..5000" `Quick
      test_pattern_rows_in_paper_range;
    Alcotest.test_case "noise creates violations" `Quick test_noise_dirties;
    Alcotest.test_case "dif(D,Dopt) matches dirtied cells" `Quick
      test_noise_preserves_dopt;
    Alcotest.test_case "zero noise rate" `Quick test_zero_rate;
    Alcotest.test_case "batch pipeline end-to-end" `Quick test_batch_pipeline;
    Alcotest.test_case "increpair pipeline end-to-end" `Quick
      test_increpair_pipeline;
    Alcotest.test_case "metric identities" `Quick test_metrics_identities;
    Alcotest.test_case "generation is deterministic" `Quick test_determinism;
    Alcotest.test_case "constant-share extremes" `Quick
      test_constant_share_extremes;
  ]
