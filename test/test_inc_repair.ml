open Dq_relation
open Dq_cfd
open Dq_core
open Helpers

let clean_base () =
  let repr, _ = Helpers.ok (Batch_repair.repair (fig1_db ()) (fig1_sigma ())) in
  repr

let t5_values =
  (* Example 1.1's t5: agrees with t1 on AC,PN but claims NYC/NY/10012. *)
  Array.map Value.of_string
    [| "a55"; "Alice"; "5.00"; "215"; "8983490"; "Oak"; "NYC"; "NY"; "10012" |]

let fresh_tuple ?(tid = 1000) values = Tuple.create ~tid values

(* Example 5.1: with k = 2, TUPLERESOLVE cannot satisfy both phi1 and phi2
   by changing CT,ST to active-domain values; it must reach null or touch
   zip; with k = 3 the (PHI, PA, 19014) repair exists.  Either way the
   result must be consistent. *)
let test_t5_insert k () =
  let base = clean_base () in
  let sigma = fig1_sigma () in
  let repr, stats =
    Helpers.ok (Inc_repair.repair_inserts ~k base [ fresh_tuple t5_values ] sigma)
  in
  Alcotest.(check bool) "result satisfies sigma" true (Violation.satisfies repr sigma);
  Alcotest.(check int) "one processed" 1 stats.Inc_repair.tuples_processed;
  Alcotest.(check int) "base untouched" 0
    (Relation.dif base repr - (Schema.arity order_schema * 1))
(* dif counts the new tuple as arity differences; base rows unchanged *)

let test_base_never_modified () =
  let base = clean_base () in
  let sigma = fig1_sigma () in
  let before = Relation.copy base in
  let repr, _ = Helpers.ok (Inc_repair.repair_inserts base [ fresh_tuple t5_values ] sigma) in
  Alcotest.(check int) "input relation unchanged" 0 (Relation.dif base before);
  Relation.iter
    (fun t ->
      match Relation.find repr (Tuple.tid t) with
      | Some t' ->
        Alcotest.(check bool) "base tuple unchanged in repair" true
          (Tuple.equal_values t t')
      | None -> Alcotest.fail "base tuple missing from repair")
    base

let test_clean_insert_untouched () =
  let base = clean_base () in
  let sigma = fig1_sigma () in
  (* A tuple consistent with the base: copies t1's semantics with new id. *)
  let values =
    Array.map Value.of_string
      [| "a99"; "Tea"; "3.50"; "215"; "8983490"; "Walnut"; "PHI"; "PA"; "19014" |]
  in
  let repr, stats = Helpers.ok (Inc_repair.repair_inserts base [ fresh_tuple values ] sigma) in
  Alcotest.(check bool) "satisfies" true (Violation.satisfies repr sigma);
  Alcotest.(check int) "no changes needed" 0 stats.Inc_repair.cells_changed

let test_orderings_all_clean () =
  let base = clean_base () in
  let sigma = fig1_sigma () in
  let delta =
    [
      fresh_tuple ~tid:1000 t5_values;
      fresh_tuple ~tid:1001
        (Array.map Value.of_string
           [| "a23"; "H. Porter"; "99.99"; "610"; "1112223"; "Elm"; "PHI"; "PA"; "19014" |]);
      (* violates phi3: same id, different PR *)
    ]
  in
  List.iter
    (fun ordering ->
      let repr, _ = Helpers.ok (Inc_repair.repair_inserts ~ordering base delta sigma) in
      Alcotest.(check bool)
        (Inc_repair.ordering_name ordering ^ " yields clean result")
        true
        (Violation.satisfies repr sigma))
    [ Inc_repair.Linear; Inc_repair.By_violations; Inc_repair.By_weight ]

let test_repair_dirty_nonincremental () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let repr, stats = Helpers.ok (Inc_repair.repair_dirty db sigma) in
  Alcotest.(check bool) "clean" true (Violation.satisfies repr sigma);
  Alcotest.(check int) "cardinality preserved" (Relation.cardinality db)
    (Relation.cardinality repr);
  Alcotest.(check bool) "only t3,t4 reprocessed" true
    (stats.Inc_repair.tuples_processed = 2)

let test_consistent_core () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let core = Inc_repair.consistent_core db sigma in
  (* t1 (tid 0) and t2 (tid 1) are clean; t3, t4 violate phi1/phi2. *)
  Alcotest.(check (list int)) "core tids" [ 0; 1 ] core

let test_deletions_never_dirty () =
  let base = clean_base () in
  let sigma = fig1_sigma () in
  ignore (Relation.delete base 0);
  Alcotest.(check bool) "still clean after deletion" true
    (Violation.satisfies base sigma)

let test_no_cluster_index_variant () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let repr, _ = Helpers.ok (Inc_repair.repair_dirty ~use_cluster_index:false db sigma) in
  Alcotest.(check bool) "clean" true (Violation.satisfies repr sigma)

let suite =
  [
    Alcotest.test_case "t5 insert, k=2" `Quick (test_t5_insert 2);
    Alcotest.test_case "t5 insert, k=3" `Quick (test_t5_insert 3);
    Alcotest.test_case "base never modified" `Quick test_base_never_modified;
    Alcotest.test_case "clean insert untouched" `Quick test_clean_insert_untouched;
    Alcotest.test_case "all orderings yield clean repairs" `Quick
      test_orderings_all_clean;
    Alcotest.test_case "repair_dirty (section 5.3)" `Quick
      test_repair_dirty_nonincremental;
    Alcotest.test_case "consistent core" `Quick test_consistent_core;
    Alcotest.test_case "deletions never dirty" `Quick test_deletions_never_dirty;
    Alcotest.test_case "works without cluster index" `Quick
      test_no_cluster_index_variant;
  ]
