open Dq_relation
open Dq_cfd
open Dq_core
open Helpers

let check_clean rel sigma =
  Alcotest.(check bool) "repair satisfies sigma" true (Violation.satisfies rel sigma)

(* The running example: t3 and t4 violate phi1 and phi2; the cheap repair
   (Example 3.1) sets their CT,ST to NYC,NY because those weights are low. *)
let test_fig1_repair () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  Alcotest.(check bool) "dirty initially" false (Violation.satisfies db sigma);
  let repr, stats = Helpers.ok (Batch_repair.repair db sigma) in
  check_clean repr sigma;
  Alcotest.(check bool) "original untouched" false (Violation.satisfies db sigma);
  Alcotest.(check bool) "some cells changed" true (stats.Batch_repair.cells_changed > 0);
  let ct = Schema.position_exn order_schema "CT" in
  let st = Schema.position_exn order_schema "ST" in
  let t3 = Relation.find_exn repr 2 and t4 = Relation.find_exn repr 3 in
  Alcotest.check value "t3.CT" (Value.string "NYC") (Tuple.get t3 ct);
  Alcotest.check value "t3.ST" (Value.string "NY") (Tuple.get t3 st);
  Alcotest.check value "t4.CT" (Value.string "NYC") (Tuple.get t4 ct);
  Alcotest.check value "t4.ST" (Value.string "NY") (Tuple.get t4 st)

let test_clean_is_noop () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let repr, _ = Helpers.ok (Batch_repair.repair db sigma) in
  let repr2, stats2 = Helpers.ok (Batch_repair.repair repr sigma) in
  Alcotest.(check int) "no further changes" 0 stats2.Batch_repair.cells_changed;
  Alcotest.(check int) "dif is 0" 0 (Relation.dif repr repr2)

(* Example 4.1 / 5.1: inserting t5 makes phi1/phi2 interact cyclically; the
   FD-style RHS-only strategy would loop, BATCHREPAIR must terminate and
   produce a clean instance. *)
let test_cyclic_t5 () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let repr, _ = Helpers.ok (Batch_repair.repair db sigma) in
  ignore
    (Relation.insert repr
       (Array.map Value.of_string
          [| "a77"; "Mog"; "9.99"; "215"; "8983490"; "Oak"; "NYC"; "NY"; "10012" |]));
  Alcotest.(check bool) "t5 makes it dirty" false (Violation.satisfies repr sigma);
  let repr2, _ = Helpers.ok (Batch_repair.repair repr sigma) in
  check_clean repr2 sigma

let test_embedded_fd_baseline () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let fds = Cfd.number (Cfd.embedded_fds (Array.to_list sigma)) in
  (* Figure 1(a) satisfies the plain FDs, so the FD baseline changes nothing
     even though the data violates the CFDs. *)
  Alcotest.(check bool) "FDs hold" true (Violation.satisfies db fds);
  let repr, stats = Helpers.ok (Batch_repair.repair db fds) in
  check_clean repr fds;
  Alcotest.(check int) "no changes needed" 0 stats.Batch_repair.cells_changed

let test_fd_pair_violation () =
  let schema = Schema.make ~name:"r" [ "A"; "B" ] in
  let rel = Relation.create schema in
  let add a b = ignore (Relation.insert rel [| Value.string a; Value.string b |]) in
  add "x" "1";
  add "x" "2";
  add "y" "3";
  let sigma =
    Cfd.number (Cfd.normalize schema (Cfd.Tableau.fd ~name:"fd" ~lhs:[ "A" ] ~rhs:[ "B" ]))
  in
  let repr, _ = Helpers.ok (Batch_repair.repair rel sigma) in
  check_clean repr sigma;
  (* The two x-tuples must have been merged onto a common B value. *)
  let t0 = Relation.find_exn repr 0 and t1 = Relation.find_exn repr 1 in
  Alcotest.(check bool) "B values equal" true
    (Value.equal (Tuple.get t0 1) (Tuple.get t1 1));
  let t2 = Relation.find_exn repr 2 in
  Alcotest.check value "y untouched" (Value.string "3") (Tuple.get t2 1)

let test_constant_cfd_fix () =
  let schema = Schema.make ~name:"r" [ "A"; "B" ] in
  let rel = Relation.create schema in
  ignore (Relation.insert rel [| Value.string "k"; Value.string "bad" |]);
  let sigma =
    Cfd.number
      [
        Cfd.make schema ~name:"c"
          ~lhs:[ ("A", Pattern.const (Value.string "k")) ]
          ~rhs:("B", Pattern.const (Value.string "good"));
      ]
  in
  let repr, stats = Helpers.ok (Batch_repair.repair rel sigma) in
  check_clean repr sigma;
  let t = Relation.find_exn repr 0 in
  Alcotest.check value "B fixed to constant" (Value.string "good") (Tuple.get t 1);
  Alcotest.(check int) "one rhs fix" 1 stats.Batch_repair.rhs_fixes

(* Two constant CFDs that disagree on B for the same LHS pattern force an
   LHS change (case 1.2) — the RHS target cannot satisfy both. *)
let test_lhs_escalation () =
  let schema = Schema.make ~name:"r" [ "A"; "B"; "C" ] in
  let rel = Relation.create schema in
  ignore
    (Relation.insert rel
       [| Value.string "k"; Value.string "x"; Value.string "u" |]);
  let k = Pattern.const (Value.string "k") in
  let sigma =
    Cfd.number
      [
        Cfd.make schema ~name:"c1" ~lhs:[ ("A", k) ]
          ~rhs:("B", Pattern.const (Value.string "v1"));
        Cfd.make schema ~name:"c2" ~lhs:[ ("A", k) ]
          ~rhs:("B", Pattern.const (Value.string "v2"));
      ]
  in
  let repr, stats = Helpers.ok (Batch_repair.repair rel sigma) in
  check_clean repr sigma;
  Alcotest.(check bool) "escalated to the LHS" true
    (stats.Batch_repair.lhs_fixes >= 1);
  (* Resolving needed an uncertain value somewhere: A (or B) became null. *)
  let t = Relation.find_exn repr 0 in
  Alcotest.(check bool) "a null was introduced" true
    (Value.is_null (Tuple.get t 0) || Value.is_null (Tuple.get t 1))

let test_no_dependency_graph_variant () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let repr, _ = Helpers.ok (Batch_repair.repair ~use_dependency_graph:false db sigma) in
  check_clean repr sigma

let suite =
  [
    Alcotest.test_case "fig1 repair" `Quick test_fig1_repair;
    Alcotest.test_case "repair is idempotent on clean data" `Quick test_clean_is_noop;
    Alcotest.test_case "cyclic t5 terminates" `Quick test_cyclic_t5;
    Alcotest.test_case "embedded FD baseline" `Quick test_embedded_fd_baseline;
    Alcotest.test_case "FD pair violation merged" `Quick test_fd_pair_violation;
    Alcotest.test_case "constant CFD fixed" `Quick test_constant_cfd_fix;
    Alcotest.test_case "LHS escalation" `Quick test_lhs_escalation;
    Alcotest.test_case "works without dependency graph" `Quick
      test_no_dependency_graph_variant;
  ]
