open Dq_relation

let test_parse_simple () =
  Alcotest.(check (list (list string)))
    "rows" [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv.parse_string "a,b\nc,d\n")

let test_parse_crlf_and_no_trailing_newline () =
  Alcotest.(check (list (list string)))
    "crlf" [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv.parse_string "a,b\r\nc,d")

let test_parse_quoted () =
  Alcotest.(check (list (list string)))
    "quotes" [ [ "a,b"; "he said \"hi\""; "multi\nline" ] ]
    (Csv.parse_string "\"a,b\",\"he said \"\"hi\"\"\",\"multi\nline\"")

let test_parse_empty_cells () =
  Alcotest.(check (list (list string)))
    "empties" [ [ ""; "x"; "" ] ]
    (Csv.parse_string ",x,\n")

let test_unterminated_quote () =
  Alcotest.check_raises "unterminated"
    (Failure "Csv.parse_string: line 1, column 1: unterminated quoted field")
    (fun () -> ignore (Csv.parse_string "\"oops"))

let test_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_cell "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_cell "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_cell "a\"b")

let test_load_and_save_roundtrip () =
  let text = "A,B,C\n1,NYC,\nx y,\"q,r\",2.5\n" in
  let rel = Csv.load_string ~name:"t" text in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality rel);
  let t0 = Relation.find_exn rel 0 in
  Alcotest.(check bool) "int typed" true (Value.equal (Tuple.get t0 0) (Value.int 1));
  Alcotest.(check bool) "null cell" true (Value.is_null (Tuple.get t0 2));
  let rel2 = Csv.load_string ~name:"t" (Csv.save_string rel) in
  Alcotest.(check int) "roundtrip identical" 0 (Relation.dif rel rel2)

let test_load_ragged () =
  Alcotest.check_raises "ragged row"
    (Failure "Csv.load_string: line 2, column 1: row has 1 cells, expected 2")
    (fun () -> ignore (Csv.load_string "A,B\nonly_one\n"))

let test_load_empty () =
  Alcotest.check_raises "empty file"
    (Failure
       "Csv.load_string: line 1, column 1: empty input: expected a header row")
    (fun () -> ignore (Csv.load_string ""))

(* The structured [_res] variants report a 1-based source position. *)
let check_error name ~line ~col ~message = function
  | Ok _ -> Alcotest.failf "%s: expected Error, got Ok" name
  | Error e ->
    Alcotest.(check (triple int int string))
      name (line, col, message)
      (e.Csv.line, e.Csv.col, e.Csv.message)

let test_structured_errors () =
  check_error "unterminated position" ~line:3 ~col:3
    ~message:"unterminated quoted field"
    (Csv.parse_string_res "a,b\nc,d\ne,\"oops\nstill open");
  check_error "NUL byte" ~line:2 ~col:2 ~message:"NUL byte in input"
    (Csv.parse_string_res "ok\na\000b");
  check_error "field guard" ~line:1 ~col:3
    ~message:"field longer than 4 bytes"
    (Csv.parse_string_res ~max_field_bytes:4 "a,bcdefgh");
  check_error "ragged" ~line:3 ~col:1 ~message:"row has 3 cells, expected 2"
    (Csv.load_string_res "A,B\n1,2\n1,2,3\n");
  check_error "duplicate header" ~line:1 ~col:1
    ~message:"bad header: Schema.make: duplicate attribute \"A\""
    (Csv.load_string_res "A,A\n1,2\n")

let test_crlf_in_quotes () =
  (* CRLF is a row separator outside quotes but literal bytes inside. *)
  Alcotest.(check (list (list string)))
    "quoted crlf" [ [ "a\r\nb" ]; [ "c" ] ]
    (Csv.parse_string "\"a\r\nb\"\r\nc\r\n")

let prop_load_never_raises =
  (* Any byte sequence either loads or yields a structured error — the
     hardened loader never raises.  The alphabet is skewed towards the
     CSV metacharacters and hostile bytes. *)
  let byte =
    QCheck.Gen.(
      oneof
        [
          oneofl [ ','; '"'; '\n'; '\r'; '\000'; 'a'; '1'; '.' ];
          char_range '\000' '\255';
        ])
  in
  QCheck.Test.make ~name:"load_string_res never raises" ~count:1000
    (QCheck.make QCheck.Gen.(string_size ~gen:byte (0 -- 60)))
    (fun text ->
      match Csv.load_string_res text with Ok _ | Error _ -> true)

let test_save_file_atomic_on_fault () =
  (* Satellite (a): an injected crash mid-write must leave the previous
     file contents intact — Atomic_io writes a temp file and renames. *)
  let path = Filename.temp_file "dataqual" ".csv" in
  Fun.protect
    ~finally:(fun () ->
      Dq_fault.Fault.disarm ();
      Sys.remove path)
    (fun () ->
      let rel = Csv.load_string ~name:"t" "A,B\n1,x\n" in
      Csv.save_file rel path;
      let before = Csv.save_string rel in
      let rel2 = Csv.load_string ~name:"t" "A,B\n2,y\n3,z\n" in
      (match Dq_fault.Fault.parse_plan "io.write@1" with
      | Ok plan -> Dq_fault.Fault.arm plan
      | Error msg -> Alcotest.failf "plan: %s" msg);
      (match Csv.save_file rel2 path with
      | () -> Alcotest.fail "expected the io.write fault to fire"
      | exception Dq_fault.Fault.Injected site ->
        Alcotest.(check string) "site" "io.write" site);
      Dq_fault.Fault.disarm ();
      let ic = open_in_bin path in
      let after =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "original contents intact" before after)

let test_file_roundtrip () =
  let path = Filename.temp_file "dataqual" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rel = Csv.load_string ~name:"t" "A,B\n1,x\n2,y\n" in
      Csv.save_file rel path;
      let rel2 = Csv.load_file path in
      Alcotest.(check int) "file roundtrip" 0 (Relation.dif rel rel2))

let prop_roundtrip =
  (* Cells from a CSV-hostile alphabet: commas, quotes, newlines. *)
  let cell =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; ','; '"'; '\n'; 'z' ]) (1 -- 6))
  in
  QCheck.Test.make ~name:"escape/parse roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 4) cell))
    (fun row ->
      let text = Csv.rows_to_string [ row ] in
      match Csv.parse_string text with [ parsed ] -> parsed = row | _ -> false)

let suite =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse crlf" `Quick test_parse_crlf_and_no_trailing_newline;
    Alcotest.test_case "parse quoted" `Quick test_parse_quoted;
    Alcotest.test_case "empty cells" `Quick test_parse_empty_cells;
    Alcotest.test_case "unterminated quote" `Quick test_unterminated_quote;
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "load/save roundtrip" `Quick test_load_and_save_roundtrip;
    Alcotest.test_case "ragged rows rejected" `Quick test_load_ragged;
    Alcotest.test_case "empty input rejected" `Quick test_load_empty;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
