open Dq_relation
open Dq_cfd
open Dq_core
open Dq_analysis
open Helpers
module Pool = Dq_parallel.Pool

(* The Figure-1 workload: phi2 (zip → CT, ST) and phi4 (CT, STR → zip)
   close a dependency cycle; phi3 (id → name, PR) is attribute-disjoint
   from everything else. *)

let test_fig1_cycle () =
  let sigma = fig1_sigma () in
  let a = Interaction.analyze order_schema sigma in
  match a.Interaction.termination with
  | Interaction.Terminating -> Alcotest.fail "fig1 ruleset must be cyclic"
  | Interaction.May_oscillate cycles ->
    Alcotest.(check bool) "at least one certificate" true (cycles <> []);
    let witness =
      Interaction.cycle_to_string order_schema sigma (List.hd cycles)
    in
    let mentions s =
      let n = String.length witness and m = String.length s in
      let rec at i = i + m <= n && (String.sub witness i m = s || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool)
      (witness ^ " mentions zip") true (mentions "zip");
    Alcotest.(check bool) (witness ^ " mentions CT") true (mentions "CT")

let test_fig1_shards () =
  let sigma = fig1_sigma () in
  let a = Interaction.analyze order_schema sigma in
  Alcotest.(check bool)
    "at least two shards" true
    (List.length a.Interaction.shards >= 2);
  Alcotest.(check int)
    "partition covers sigma"
    (Array.length sigma)
    (Array.length a.Interaction.partition);
  (* Shards never share an attribute. *)
  let attr_sets =
    List.map (fun (s : Interaction.shard) -> s.Interaction.attrs)
      a.Interaction.shards
  in
  List.iteri
    (fun i s1 ->
      List.iteri
        (fun j s2 ->
          if i < j then
            Alcotest.(check bool)
              "shard attr sets disjoint" true
              (List.for_all (fun x -> not (List.mem x s2)) s1))
        attr_sets)
    attr_sets;
  (* The cyclic phi2/phi4 shard needs reconciliation; phi3's does not. *)
  let shard_of cid =
    List.find
      (fun (s : Interaction.shard) -> List.mem cid s.Interaction.clauses)
      a.Interaction.shards
  in
  let clause_named name =
    let found = ref (-1) in
    Array.iteri
      (fun i c -> if !found < 0 && Cfd.name c = name then found := i)
      sigma;
    !found
  in
  Alcotest.(check bool)
    "phi2's shard requires reconciliation" false
    (shard_of (clause_named "phi2")).Interaction.independent;
  Alcotest.(check bool)
    "phi3's shard is independent" true
    (shard_of (clause_named "phi3")).Interaction.independent

let test_fig1_oscillation () =
  let sigma = fig1_sigma () in
  let a = Interaction.analyze order_schema sigma in
  Alcotest.(check bool)
    "phi2/phi4 oscillation found" true
    (List.exists
       (fun (o : Interaction.oscillation) ->
         let na = Cfd.name sigma.(o.Interaction.a)
         and nb = Cfd.name sigma.(o.Interaction.b) in
         (na = "phi2" && nb = "phi4") || (na = "phi4" && nb = "phi2"))
       a.Interaction.oscillations)

let test_fig1_costs () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let a = Interaction.analyze ~data:db order_schema sigma in
  match a.Interaction.costs with
  | None -> Alcotest.fail "costs expected when data is supplied"
  | Some costs ->
    Alcotest.(check int) "one estimate per clause" (Array.length sigma)
      (List.length costs);
    List.iter
      (fun (c : Interaction.clause_cost) ->
        let in_unit x = x >= 0. && x <= 1. in
        Alcotest.(check bool) "selectivity in [0,1]" true
          (in_unit c.Interaction.selectivity);
        Alcotest.(check bool) "violation density in [0,1]" true
          (in_unit c.Interaction.violation_density);
        Alcotest.(check bool) "fanout >= 0" true (c.Interaction.fanout >= 0.))
      costs;
    (* fig1's dirty tuples t1/t2 violate phi2's (44) rows, so at least
       one clause must be flagged hot on this 4-tuple instance. *)
    Alcotest.(check bool) "a hot clause on the dirty instance" true
      (List.exists (fun (c : Interaction.clause_cost) -> c.Interaction.hot)
         costs)

(* Partitioned repair must be byte-identical to the sequential repair —
   the whole point of the shard plan.  Checked on the Figure-1 workload
   at jobs 1 and 4, and on random instances below. *)
let repair_csv ?pool ?partition db sigma =
  let (repaired, stats), _report =
    ok2 (Batch_repair.repair ?pool ?partition db sigma)
  in
  (Csv.save_string repaired, stats)

let test_fig1_partition_identity () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let a = Interaction.analyze order_schema sigma in
  let seq, seq_stats = repair_csv db sigma in
  let part1, part_stats =
    repair_csv ~partition:a.Interaction.partition db sigma
  in
  Alcotest.(check string) "partitioned (jobs 1) byte-identical" seq part1;
  Pool.with_pool ~jobs:4 (fun pool ->
      let part4, _ =
        repair_csv ~pool ~partition:a.Interaction.partition db sigma
      in
      Alcotest.(check string) "partitioned (jobs 4) byte-identical" seq part4);
  Alcotest.(check int) "same cells changed" seq_stats.Batch_repair.cells_changed
    part_stats.Batch_repair.cells_changed;
  (* The re-resolution metric: each shard's instantiation rounds only
     visit its own columns' class roots, so the partitioned run does no
     more visiting than the full-width run. *)
  Alcotest.(check bool) "instantiate_visits no worse" true
    (part_stats.Batch_repair.instantiate_visits
    <= seq_stats.Batch_repair.instantiate_visits)

let prop_partition_identity =
  QCheck.Test.make ~count:60
    ~name:"partitioned repair byte-identical to sequential (jobs 1 and 4)"
    Gen.instance
    (fun (db, sigma) ->
      QCheck.assume
        (Satisfiability.is_satisfiable (Relation.schema db) sigma);
      let a = Interaction.analyze (Relation.schema db) sigma in
      match Batch_repair.repair db sigma with
      | Error _ -> QCheck.assume_fail ()
      | Ok ((seq, _), _) ->
        let seq = Csv.save_string seq in
        let with_partition pool =
          match
            Batch_repair.repair ?pool ~partition:a.Interaction.partition db
              sigma
          with
          | Error e ->
            QCheck.Test.fail_reportf "partitioned repair failed: %s"
              (Dq_error.to_string e)
          | Ok ((rel, _), _) -> Csv.save_string rel
        in
        let part1 = with_partition None in
        let part4 =
          Pool.with_pool ~jobs:4 (fun pool -> with_partition (Some pool))
        in
        seq = part1 && seq = part4)

let prop_shards_disjoint =
  QCheck.Test.make ~count:200 ~name:"shard attribute sets pairwise disjoint"
    (QCheck.make Helpers.Gen.sigma_gen)
    (fun sigma ->
      let a = Interaction.analyze Helpers.Gen.schema sigma in
      let sets =
        List.map (fun (s : Interaction.shard) -> s.Interaction.attrs)
          a.Interaction.shards
      in
      List.for_all
        (fun (i, s1) ->
          List.for_all
            (fun (j, s2) ->
              i >= j || List.for_all (fun x -> not (List.mem x s2)) s1)
            (List.mapi (fun j s -> (j, s)) sets))
        (List.mapi (fun i s -> (i, s)) sets))

let suite =
  [
    Alcotest.test_case "fig1 cycle certificate" `Quick test_fig1_cycle;
    Alcotest.test_case "fig1 shard plan" `Quick test_fig1_shards;
    Alcotest.test_case "fig1 oscillation pair" `Quick test_fig1_oscillation;
    Alcotest.test_case "fig1 cost estimates" `Quick test_fig1_costs;
    Alcotest.test_case "fig1 partition byte-identity" `Quick
      test_fig1_partition_identity;
    QCheck_alcotest.to_alcotest prop_partition_identity;
    QCheck_alcotest.to_alcotest prop_shards_disjoint;
  ]
