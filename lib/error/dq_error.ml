module Json = Dq_obs.Json

type t =
  | Io of string
  | Parse of { path : string; line : int; col : int; message : string }
  | Invalid_input of string
  | Invalid_config of string
  | Lint_gated of { path : string; errors : int; hint : string }
  | Analyze_gated of { path : string; cycles : int; hint : string }
  | Unsatisfiable
  | Would_overwrite of string
  | Deadline_exceeded
  | Fault_injected of string
  | Unknown_engine of { name : string; known : string list }
  | Engine_unsupported of { engine : string; reason : string }
  | No_such_session of string
  | Queue_full of { session : string; depth : int }
  | Unavailable of string
  | Breaker_open of { session : string; faults : int }
  | Internal of string

let to_string = function
  | Io msg -> msg
  | Parse { path; line; col; message } ->
    Printf.sprintf "%s: line %d, column %d: %s" path line col message
  | Invalid_input msg -> msg
  | Invalid_config msg -> msg
  | Lint_gated { path; errors; hint } ->
    Printf.sprintf "%s: ruleset has %d lint error%s; %s" path errors
      (if errors = 1 then "" else "s")
      hint
  | Analyze_gated { path; cycles; hint } ->
    Printf.sprintf "%s: ruleset has %d dependency cycle%s; %s" path cycles
      (if cycles = 1 then "" else "s")
      hint
  | Unsatisfiable -> "the CFD set is unsatisfiable; no repair exists"
  | Would_overwrite path ->
    Printf.sprintf
      "refusing to overwrite the input file %s; pass --in-place to allow it"
      path
  | Deadline_exceeded ->
    "deadline exceeded before any usable result was produced"
  | Fault_injected site ->
    Printf.sprintf "fault injected at site %s (armed by a fault plan)" site
  | Unknown_engine { name; known } ->
    Printf.sprintf "unknown repair engine %S (known engines: %s)" name
      (String.concat ", " known)
  | Engine_unsupported { engine; reason } ->
    Printf.sprintf "the %s engine cannot repair this ruleset: %s" engine reason
  | No_such_session id -> Printf.sprintf "no such session: %s" id
  | Queue_full { session; depth } ->
    Printf.sprintf
      "session %s ingest queue is full (depth %d); retry after a short backoff"
      session depth
  | Unavailable msg -> msg
  | Breaker_open { session; faults } ->
    Printf.sprintf
      "session %s is quarantined after %d consecutive engine fault%s; POST \
       /v1/sessions/%s/resume to re-enable it"
      session faults
      (if faults = 1 then "" else "s")
      session
  | Internal msg -> Printf.sprintf "internal error: %s" msg

let kind = function
  | Io _ -> "io"
  | Parse _ -> "parse"
  | Invalid_input _ -> "invalid-input"
  | Invalid_config _ -> "invalid-config"
  | Lint_gated _ -> "lint-gated"
  | Analyze_gated _ -> "analyze-gated"
  | Unsatisfiable -> "unsatisfiable"
  | Would_overwrite _ -> "would-overwrite"
  | Deadline_exceeded -> "deadline-exceeded"
  | Fault_injected _ -> "fault-injected"
  | Unknown_engine _ -> "unknown-engine"
  | Engine_unsupported _ -> "engine-unsupported"
  | No_such_session _ -> "no-such-session"
  | Queue_full _ -> "queue-full"
  | Unavailable _ -> "unavailable"
  | Breaker_open _ -> "engine-failed"
  | Internal _ -> "internal"

let to_json e =
  let base =
    [
      ("kind", Json.String (kind e)); ("message", Json.String (to_string e));
    ]
  in
  match e with
  | Parse { path; line; col; _ } ->
    Json.Obj
      (base
      @ [
          ("path", Json.String path);
          ("line", Json.Int line);
          ("col", Json.Int col);
        ])
  | Lint_gated { path; errors; _ } ->
    Json.Obj
      (base @ [ ("path", Json.String path); ("errors", Json.Int errors) ])
  | Analyze_gated { path; cycles; _ } ->
    Json.Obj
      (base @ [ ("path", Json.String path); ("cycles", Json.Int cycles) ])
  | Fault_injected site -> Json.Obj (base @ [ ("site", Json.String site) ])
  | Unknown_engine { name; known } ->
    Json.Obj
      (base
      @ [
          ("name", Json.String name);
          ("known", Json.List (List.map (fun n -> Json.String n) known));
        ])
  | Engine_unsupported { engine; reason } ->
    Json.Obj
      (base
      @ [ ("engine", Json.String engine); ("reason", Json.String reason) ])
  | Queue_full { session; depth } ->
    Json.Obj
      (base @ [ ("session", Json.String session); ("depth", Json.Int depth) ])
  | Breaker_open { session; faults } ->
    Json.Obj
      (base @ [ ("session", Json.String session); ("faults", Json.Int faults) ])
  | _ -> Json.Obj base

module Exit = struct
  let ok = 0

  let dirty = 1

  let usage = 2

  let lint_gated = 3

  let deadline = 4
end

let exit_code = function
  | Unsatisfiable -> Exit.dirty
  | Lint_gated _ | Analyze_gated _ -> Exit.lint_gated
  | Deadline_exceeded -> Exit.deadline
  | Io _ | Parse _ | Invalid_input _ | Invalid_config _ | Would_overwrite _
  | Fault_injected _ | Unknown_engine _ | Engine_unsupported _
  | No_such_session _ | Queue_full _ | Unavailable _ | Breaker_open _
  | Internal _ ->
    Exit.usage

(* ---- warnings ---------------------------------------------------------- *)

type warning = Deprecated_flag of { flag : string; replacement : string }

let warning_code = function Deprecated_flag _ -> "W101"

let warning_to_string = function
  | Deprecated_flag { flag; replacement } as w ->
    Printf.sprintf "%s: %s is deprecated and will be removed; use %s"
      (warning_code w) flag replacement

let warning_to_json = function
  | Deprecated_flag { flag; replacement } as w ->
    Json.Obj
      [
        ("kind", Json.String "deprecated");
        ("code", Json.String (warning_code w));
        ("message", Json.String (warning_to_string w));
        ("flag", Json.String flag);
        ("replacement", Json.String replacement);
      ]
