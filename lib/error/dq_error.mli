(** The one error type the public engine APIs and the CLI agree on.

    Engine entry points return [('a * Dq_obs.Report.t, Dq_error.t) result]
    instead of raising; the CLI maps each constructor to a stable message
    ({!to_string}), a machine-readable object ({!to_json}, used in the
    [diagnostics] field of the JSON envelope), and a process exit code
    ({!exit_code}) — so every subcommand fails the same way.

    Exit codes are standardised in {!Exit}:
    - [0] — success;
    - [1] — the command ran and found problems (violations detected, a
      rejected sample, an unsatisfiable ruleset);
    - [2] — usage or input error (bad flags, unreadable files, schema
      mismatches, invalid configuration, refusal to overwrite);
    - [3] — a gated refusal: the ruleset has lint errors and [--force]
      was not given, or [--analyze-gate] found dependency cycles;
    - [4] — a deadline expired before anything usable was produced
      (when a partial result exists the command instead succeeds with
      [degraded] set in the report). *)

type t =
  | Io of string  (** file system or CSV framing problems *)
  | Parse of { path : string; line : int; col : int; message : string }
      (** CFD ruleset syntax errors, with source position *)
  | Invalid_input of string
      (** schema resolution failures, malformed deltas, bad argument
          combinations *)
  | Invalid_config of string  (** rejected engine configuration *)
  | Lint_gated of { path : string; errors : int; hint : string }
      (** refused because the ruleset has lint errors and no [--force] *)
  | Analyze_gated of { path : string; cycles : int; hint : string }
      (** refused by [--analyze-gate]: the ruleset's attribute dependency
          graph has cycles, so the naive repair fixpoint may oscillate *)
  | Unsatisfiable  (** no repair exists for the constraint set *)
  | Would_overwrite of string
      (** the output path resolves to the input and [--in-place] was not
          given *)
  | Deadline_exceeded
      (** a [--deadline] expired before any usable (even partial) result
          existed *)
  | Fault_injected of string
      (** an armed fault plan fired at this site — only reachable when
          [--fault-plan]/[DQ_FAULT] is set *)
  | Unknown_engine of { name : string; known : string list }
      (** [--engine] named no registered repair engine *)
  | Engine_unsupported of { engine : string; reason : string }
      (** the selected engine refuses this Σ fragment (e.g. [opt-fd] on a
          ruleset with constant patterns or dependency cycles) *)
  | No_such_session of string
      (** a serve endpoint named a session id the daemon does not hold
          (mapped to HTTP 404 by [cfdclean serve]) *)
  | Queue_full of { session : string; depth : int }
      (** a session's bounded ingest lane was already holding [depth]
          batches — the daemon shed the request (HTTP 429); nothing was
          committed and the same batch is safe to retry *)
  | Unavailable of string
      (** the daemon refused admission: draining, or a global in-flight /
          connection ceiling was hit (HTTP 503) *)
  | Breaker_open of { session : string; faults : int }
      (** the session's circuit breaker opened after consecutive engine
          faults; ingest/resolve are refused (HTTP 503) until an operator
          POSTs [/v1/sessions/ID/resume] *)
  | Internal of string  (** an engine invariant broke — a bug *)

val to_string : t -> string
(** Stable, single-line rendering (no trailing newline). *)

val to_json : t -> Dq_obs.Json.t
(** An object with at least ["kind"] and ["message"] fields; [Parse]
    adds ["path"], ["line"], ["col"]. *)

val exit_code : t -> int

module Exit : sig
  val ok : int
  (** [0] *)

  val dirty : int
  (** [1]: violations / problems found *)

  val usage : int
  (** [2]: usage, input or configuration error *)

  val lint_gated : int
  (** [3]: refused because of lint errors (no [--force]) *)

  val deadline : int
  (** [4]: deadline exceeded with nothing usable to return *)
end

(** {1 Warnings}

    Non-fatal diagnostics with stable W-codes, rendered into the
    envelope's [diagnostics] list (and to stderr in text mode) without
    changing the exit code.  Numbering continues the lint catalog: lint
    owns W001–W0xx, the CLI surface owns W1xx. *)

type warning =
  | Deprecated_flag of { flag : string; replacement : string }
      (** [W101]: a legacy flag spelling (e.g. [-a/--algorithm]) was
          used; the replacement does the same thing *)

val warning_code : warning -> string
(** The stable W-code, e.g. ["W101"]. *)

val warning_to_string : warning -> string
(** One line: ["W101: --algorithm is deprecated ..."]. *)

val warning_to_json : warning -> Dq_obs.Json.t
(** An object with ["kind"], ["code"] and ["message"] fields (plus
    warning-specific detail fields). *)
