type error = { line : int; col : int; message : string }

let error_to_string e =
  Printf.sprintf "line %d, column %d: %s" e.line e.col e.message

exception Csv_error of error

(* A guard against hostile input: a single multi-gigabyte field (an
   unterminated quote swallowing a huge file, say) fails fast instead of
   buffering without bound. *)
let default_max_field_bytes = 64 * 1024 * 1024

let parse_rows ?(max_field_bytes = default_max_field_bytes) text =
  let n = String.length text in
  let rows = Vec.create () in
  let row = Vec.create () in
  let cell = Buffer.create 32 in
  (* 1-based position of the next unconsumed character. *)
  let line = ref 1 and col = ref 1 in
  let row_line = ref 1 in
  let cell_line = ref 1 and cell_col = ref 1 in
  let error l c message = raise (Csv_error { line = l; col = c; message }) in
  let advance c =
    if c = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  in
  let add_to_cell c =
    if Buffer.length cell >= max_field_bytes then
      error !cell_line !cell_col
        (Printf.sprintf "field longer than %d bytes" max_field_bytes);
    Buffer.add_char cell c
  in
  let flush_cell () =
    Vec.push row (Buffer.contents cell);
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    Vec.push rows (!row_line, Vec.to_list row);
    Vec.clear row;
    row_line := !line
  in
  let rec plain i =
    if i >= n then begin
      if Vec.length row > 0 || Buffer.length cell > 0 then flush_row ()
    end
    else begin
      let c = text.[i] in
      if c = '\000' then error !line !col "NUL byte in input";
      match c with
      | ',' ->
        advance c;
        flush_cell ();
        plain (i + 1)
      | '\n' ->
        advance c;
        flush_row ();
        plain (i + 1)
      | '\r' when i + 1 < n && text.[i + 1] = '\n' ->
        advance '\r';
        advance '\n';
        flush_row ();
        plain (i + 2)
      | '"' when Buffer.length cell = 0 ->
        cell_line := !line;
        cell_col := !col;
        advance c;
        quoted (i + 1)
      | c ->
        if Buffer.length cell = 0 then begin
          cell_line := !line;
          cell_col := !col
        end;
        advance c;
        add_to_cell c;
        plain (i + 1)
    end
  and quoted i =
    if i >= n then error !cell_line !cell_col "unterminated quoted field"
    else begin
      let c = text.[i] in
      if c = '\000' then error !line !col "NUL byte in input";
      match c with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
        advance '"';
        advance '"';
        add_to_cell '"';
        quoted (i + 2)
      | '"' ->
        advance c;
        plain (i + 1)
      | c ->
        advance c;
        add_to_cell c;
        quoted (i + 1)
    end
  in
  match plain 0 with
  | () -> Ok (Vec.to_list rows)
  | exception Csv_error e -> Error e

let parse_string_res ?max_field_bytes text =
  Result.map (List.map snd) (parse_rows ?max_field_bytes text)

let parse_string text =
  match parse_string_res text with
  | Ok rows -> rows
  | Error e -> failwith ("Csv.parse_string: " ^ error_to_string e)

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_cell s =
  if needs_quoting s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let rows_to_string rows =
  let b = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string b (String.concat "," (List.map escape_cell row));
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let load_string_res ?(name = "R") ?max_field_bytes text =
  match parse_rows ?max_field_bytes text with
  | Error e -> Error e
  | Ok [] ->
    Error { line = 1; col = 1; message = "empty input: expected a header row" }
  | Ok ((header_line, header) :: data) -> (
    match Schema.make ~name header with
    | exception Invalid_argument msg ->
      Error { line = header_line; col = 1; message = "bad header: " ^ msg }
    | schema ->
      let rel = Relation.create schema in
      let arity = List.length header in
      (try
         List.iter
           (fun (line, row) ->
             let cells = List.length row in
             if cells <> arity then
               raise
                 (Csv_error
                    {
                      line;
                      col = 1;
                      message =
                        Printf.sprintf "row has %d cells, expected %d" cells
                          arity;
                    });
             let values = Array.of_list (List.map Value.of_string row) in
             ignore (Relation.insert rel values))
           data;
         Ok rel
       with Csv_error e -> Error e))

let load_string ?name text =
  match load_string_res ?name text with
  | Ok rel -> rel
  | Error e -> failwith ("Csv.load_string: " ^ error_to_string e)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let default_name path = Filename.remove_extension (Filename.basename path)

let load_file_res ?name ?max_field_bytes path =
  let name = match name with Some n -> n | None -> default_name path in
  Dq_fault.Fault.hit "csv.load";
  load_string_res ~name ?max_field_bytes (read_whole_file path)

let load_file ?name path =
  let name = match name with Some n -> n | None -> default_name path in
  Dq_fault.Fault.hit "csv.load";
  load_string ~name (read_whole_file path)

let save_string rel =
  let schema = Relation.schema rel in
  let header = Array.to_list (Schema.attributes schema) in
  let rows =
    Relation.fold
      (fun acc t ->
        let cells =
          List.init (Tuple.arity t) (fun i -> Value.to_string (Tuple.get t i))
        in
        cells :: acc)
      [] rel
  in
  rows_to_string (header :: List.rev rows)

let save_file rel path = Dq_fault.Atomic_io.write_file path (save_string rel)
