(** Binary min-heaps with explicit float priorities.

    Used for best-first traversal of cluster trees ({!Dq_core.Cluster_index})
    and for cost-ordered candidate selection in the repairing algorithms. *)

type 'a t

val create : ?tie:('a -> 'a -> int) -> unit -> 'a t
(** [create ()] breaks priority ties arbitrarily (by internal layout,
    which depends on the full add/pop history).  [create ~tie ()] breaks
    them with [tie], making the pop order a total order over entries — a
    pure function of the heap's contents, independent of the order they
    were added in.  Pass a tie-break whenever pop sequences must be
    replayable or composable across runs with different histories. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> unit
(** Insert an element with the given priority (lower pops first). *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the element with the smallest priority; equal
    priorities are ordered by the [tie] comparator when one was supplied,
    arbitrarily otherwise. *)

val peek_min : 'a t -> (float * 'a) option

val clear : 'a t -> unit
