(** Minimal RFC-4180-style CSV reading and writing.

    Supports quoted fields containing commas, double quotes (escaped by
    doubling) and newlines, and both LF and CRLF line endings.  Empty cells
    load as {!Value.Null}; numeric-looking cells load as numbers (see
    {!Value.of_string}).

    Loading is hardened against hostile input: ragged rows, unterminated
    quotes, embedded NUL bytes and oversized fields all surface as a
    structured {!error} with a 1-based source position (the [_res]
    variants) — the raising variants wrap the same message in [Failure]
    for callers that predate them.  [load_string_res] never raises on any
    byte sequence (qcheck-fuzzed). *)

type error = { line : int; col : int; message : string }
(** A loading failure at a 1-based source position.  For multi-line
    (quoted) fields the position is where the field started. *)

val error_to_string : error -> string
(** ["line L, column C: MESSAGE"]. *)

val parse_string_res :
  ?max_field_bytes:int -> string -> (string list list, error) result
(** Parse CSV text into rows of cells.  A trailing newline does not
    produce an empty row.  Fails on an unterminated quoted field, a NUL
    byte, or a field longer than [max_field_bytes] (default 64 MiB — a
    guard against quote-swallowed multi-gigabyte inputs). *)

val parse_string : string -> string list list
(** @raise Failure where {!parse_string_res} returns [Error]. *)

val escape_cell : string -> string
(** Quote a cell if it contains a comma, quote or newline. *)

val rows_to_string : string list list -> string

val load_string_res :
  ?name:string -> ?max_field_bytes:int -> string -> (Relation.t, error) result
(** Build a relation from CSV text whose first row is the header
    (attribute names).  Also fails on empty input, a bad header
    (empty/duplicate attribute names) and ragged rows — each with the
    line number of the offending row.  Never raises. *)

val load_string : ?name:string -> string -> Relation.t
(** @raise Failure where {!load_string_res} returns [Error]. *)

val load_file_res :
  ?name:string -> ?max_field_bytes:int -> string -> (Relation.t, error) result
(** {!load_string_res} over a file's bytes.  Declares the ["csv.load"]
    fault site.  @raise Sys_error if the file cannot be read. *)

val load_file : ?name:string -> string -> Relation.t

val save_string : Relation.t -> string
(** Render a relation as CSV with a header row. *)

val save_file : Relation.t -> string -> unit
(** Crash-safe: writes via {!Dq_fault.Atomic_io.write_file} (temp file +
    fsync + rename), so an interrupted save never truncates or corrupts
    an existing file at [path]. *)
