type 'a t = {
  tie : ('a -> 'a -> int) option;
  data : (float * 'a) Vec.t;
}

let create ?tie () = { tie; data = Vec.create () }

let length h = Vec.length h.data

let is_empty h = Vec.is_empty h.data

let swap h i j =
  let tmp = Vec.get h.data i in
  Vec.set h.data i (Vec.get h.data j);
  Vec.set h.data j tmp

(* Strict "comes before" order.  Without a tie-break, entries of equal
   priority compare unordered and pop in an order that depends on the
   heap's internal layout — i.e. on the interleaved history of every add
   and pop.  With [tie], the order is total, so [pop_min] is a pure
   function of the heap's *contents*: callers that need replayable or
   composable pop sequences (the repair queue, whose shard-partitioned
   runs must replay the full-width run's per-shard decisions) pass one. *)
let before h i j =
  let pi, xi = Vec.get h.data i and pj, xj = Vec.get h.data j in
  pi < pj
  || (pi = pj && match h.tie with Some cmp -> cmp xi xj < 0 | None -> false)

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h.data in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && before h l !smallest then smallest := l;
  if r < n && before h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h ~priority x =
  Vec.push h.data (priority, x);
  sift_up h (Vec.length h.data - 1)

let peek_min h = if Vec.is_empty h.data then None else Some (Vec.get h.data 0)

let pop_min h =
  match Vec.length h.data with
  | 0 -> None
  | 1 -> Vec.pop h.data
  | n ->
    let min = Vec.get h.data 0 in
    let last = Vec.get h.data (n - 1) in
    ignore (Vec.pop h.data);
    Vec.set h.data 0 last;
    sift_down h 0;
    Some min

let clear h = Vec.clear h.data
