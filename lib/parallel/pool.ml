module Metrics = Dq_obs.Metrics
module Trace = Dq_obs.Trace
module Fault = Dq_fault.Fault
module Deadline = Dq_fault.Deadline

(* Pool utilization instruments: batches and tasks executed, wall time per
   batch, and busy time summed across all domains.  Utilization over a
   window is busy / (wall * jobs). *)
let m_batches = Metrics.counter "pool.batches"

let m_tasks = Metrics.counter "pool.tasks"

let m_batch_wall = Metrics.timer "pool.batch_wall"

let m_task_busy = Metrics.timer "pool.task_busy"

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs pool = pool.jobs

(* Workers block on [work_available] until a task arrives or the pool
   closes; tasks run outside the lock. *)
let worker pool () =
  let rec take () =
    match Queue.take_opt pool.queue with
    | Some task ->
      Mutex.unlock pool.lock;
      Some task
    | None ->
      if pool.closed then begin
        Mutex.unlock pool.lock;
        None
      end
      else begin
        Condition.wait pool.work_available pool.lock;
        take ()
      end
  in
  let rec loop () =
    Mutex.lock pool.lock;
    match take () with
    | Some task ->
      task ();
      loop ()
    | None -> ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be >= 1 (got %d)" jobs);
  let pool =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let with_pool ?jobs f =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?(deadline = Deadline.never) pool tasks =
  let n = Array.length tasks in
  (* The ["pool.task"] fault site wraps every task when a plan is armed
     (and costs one atomic read otherwise) — how the robustness tests
     inject a raising or stalling task into the middle of a batch. *)
  let tasks =
    if not (Fault.armed ()) then tasks
    else
      Array.map
        (fun f () ->
          Fault.hit "pool.task";
          f ())
        tasks
  in
  let tasks =
    if not (Metrics.enabled ()) then tasks
    else begin
      Metrics.incr m_batches;
      Metrics.add m_tasks n;
      Array.map (fun f -> fun () -> Metrics.time m_task_busy f) tasks
    end
  in
  (* Tasks inherit the submitter's span stack: a chunk span's logical
     parent is the span that submitted the batch, whichever domain (lane)
     ends up executing it. *)
  let tasks =
    if not (Trace.enabled ()) then tasks
    else begin
      let ctx = Trace.current_context () in
      Array.map (fun f -> fun () -> Trace.with_context ctx f) tasks
    end
  in
  Metrics.time m_batch_wall @@ fun () ->
  if n = 0 then ()
  else if pool.jobs = 1 || n = 1 then
    Array.iter
      (fun f ->
        Deadline.check deadline;
        f ())
      tasks
  else begin
    let remaining = Atomic.make n in
    (* First failure wins: the winning task's exception and backtrace,
       re-raised in the caller once the whole batch has drained. *)
    let failed = Atomic.make None in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let record e bt = ignore (Atomic.compare_and_set failed None (Some (e, bt))) in
    let wrap f () =
      (* Cooperative cancellation: once the deadline expires, tasks not
         yet started are skipped (they still count down [remaining], so
         the batch drains normally) and the caller sees
         [Deadline.Expired].  A task already running is never
         interrupted. *)
      (if Deadline.expired deadline then
         record Deadline.Expired (Printexc.get_callstack 0)
       else
         try f ()
         with e -> record e (Printexc.get_raw_backtrace ()));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* Last task out signals under the batch lock so the waiter can't
           miss the wake-up between its counter check and its wait. *)
        Mutex.lock batch_lock;
        Condition.broadcast batch_done;
        Mutex.unlock batch_lock
      end
    in
    Mutex.lock pool.lock;
    Array.iter (fun f -> Queue.add (wrap f) pool.queue) tasks;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    (* The caller helps drain the queue instead of idling: with j jobs the
       batch runs on j domains, and a busy pool can never deadlock its
       submitter. *)
    let rec help () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock pool.lock;
        let task = Queue.take_opt pool.queue in
        Mutex.unlock pool.lock;
        match task with
        | Some task ->
          task ();
          help ()
        | None ->
          Mutex.lock batch_lock;
          while Atomic.get remaining > 0 do
            Condition.wait batch_done batch_lock
          done;
          Mutex.unlock batch_lock
      end
    in
    help ();
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let ranges ~chunks n =
  if n <= 0 then []
  else begin
    let chunks = max 1 (min chunks n) in
    List.init chunks (fun c -> (c * n / chunks, (c + 1) * n / chunks))
  end

let map_reduce ?deadline pool ?chunks ~n ~map ~fold ~init =
  let chunks = match chunks with Some c -> c | None -> pool.jobs in
  let ranges = Array.of_list (ranges ~chunks n) in
  let results = Array.make (Array.length ranges) None in
  run ?deadline pool
    (Array.mapi
       (fun c (lo, hi) -> fun () -> results.(c) <- Some (map lo hi))
       ranges);
  Array.fold_left
    (fun acc r -> match r with Some x -> fold acc x | None -> acc)
    init results

let parallel_for pool ?chunks ~n f =
  map_reduce pool ?chunks ~n
    ~map:(fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)
    ~fold:(fun () () -> ())
    ~init:()

(* ---- ?pool-threading conveniences ------------------------------------ *)

let sequential = function
  | None -> true
  | Some pool -> pool.jobs = 1

(* With a [?label], each chunk runs under a traced span — sequential and
   parallel paths alike, so the set of span paths is jobs-independent. *)
let chunk_span label f =
  match label with
  | None -> f
  | Some name ->
    fun lo hi ->
      Trace.span ~cat:"pool"
        ~args:(fun () -> [ ("lo", Dq_obs.Json.Int lo); ("hi", Dq_obs.Json.Int hi) ])
        name
        (fun () -> f lo hi)

let for_chunks ?deadline ?chunks ?label pool ~n f =
  if n <= 0 then ()
  else
    let f = chunk_span label f in
    match pool with
    | Some pool when not (sequential (Some pool)) ->
      map_reduce ?deadline pool ?chunks ~n ~map:f
        ~fold:(fun () () -> ())
        ~init:()
    | _ ->
      Option.iter Deadline.check deadline;
      f 0 n

let map_chunks ?deadline ?chunks ?label pool ~n map =
  if n <= 0 then []
  else
    let map = chunk_span label map in
    match pool with
    | Some pool when not (sequential (Some pool)) ->
      map_reduce ?deadline pool ?chunks ~n ~map
        ~fold:(fun acc x -> x :: acc)
        ~init:[]
      |> List.rev
    | _ ->
      Option.iter Deadline.check deadline;
      [ map 0 n ]

let map_array ?deadline ?chunks ?label pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    for_chunks ?deadline ?chunks ?label pool ~n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f arr.(i))
        done);
    Array.map (function Some x -> x | None -> assert false) out
  end
