(** A hand-rolled, dependency-free domain pool for OCaml 5.

    The switch carries no [domainslib], so this module provides the small
    slice of it the cleaning algorithms need: a persistent pool of worker
    domains, a chunked [parallel_for], and a [map_reduce] whose merge
    order is {e deterministic} — chunk results are folded left-to-right in
    chunk-index order, never in completion order, so any function built on
    it returns byte-identical results at any job count.

    A pool with [jobs = 1] spawns no domains and runs everything in the
    calling domain, making the sequential path literally the same code as
    the parallel one.  The caller also participates in draining the task
    queue while waiting on a batch, so a pool of [jobs = n] uses [n]
    domains in total ([n - 1] workers plus the caller).

    Tasks must not submit further tasks to the same pool (no nested
    parallelism), and anything they touch concurrently must be read-only
    or chunk-private — the intended style is: map chunk-private state,
    then merge sequentially.

    When {!Dq_obs.Metrics} collection is enabled, every {!run} batch
    records the instruments [pool.batches], [pool.tasks],
    [pool.batch_wall] (wall seconds per batch) and [pool.task_busy]
    (per-task busy seconds summed across domains) — utilization over a
    window is [busy / (wall * jobs)].  With metrics disabled (the
    default) the pool takes one atomic read per batch and nothing else. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI's default for
    [--jobs]. *)

val create : jobs:int -> t
(** A pool of [jobs] domains ([jobs - 1] spawned workers; the caller is
    the last).  @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Outstanding batches must have
    completed (every [run] returns only once its tasks are done, so this
    only matters for exceptional control flow). *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] — even on exceptions.  [jobs] defaults to
    {!default_jobs}. *)

val run : ?deadline:Dq_fault.Deadline.t -> t -> (unit -> unit) array -> unit
(** Execute every task, in parallel, returning once all have finished.

    {b First-failure-wins}: if tasks raise, exactly one exception — the
    first to be recorded — is re-raised in the caller {e with the
    raising task's backtrace}, and only after the whole batch has
    drained (remaining tasks still run; none are interrupted, so the
    pool is left quiescent and reusable).  With [jobs = 1] "first" is
    first in task order; with more jobs it is first in wall-clock
    completion order.  A raising or stalling task can therefore never
    hang the batch: the other tasks finish, then the caller sees the
    failure.

    [deadline] cancels cooperatively: tasks that have not started when
    it expires are skipped (the batch still drains) and
    [Dq_fault.Deadline.Expired] is raised in the caller; a task already
    running always completes.  When a fault plan is armed, every task
    is wrapped in the ["pool.task"] fault site. *)

val ranges : chunks:int -> int -> (int * int) list
(** [ranges ~chunks n] splits [0, n) into at most [chunks] contiguous
    [(lo, hi)] half-open ranges, in order, sizes differing by at most
    one.  [n = 0] yields [[]]. *)

val parallel_for : t -> ?chunks:int -> n:int -> (int -> unit) -> unit
(** Apply [f] to every index of [0, n), chunked across the pool.  [f]
    must confine its writes to index-private slots (e.g. [a.(i)]).
    [chunks] defaults to {!jobs}. *)

val map_reduce :
  ?deadline:Dq_fault.Deadline.t ->
  t ->
  ?chunks:int ->
  n:int ->
  map:(int -> int -> 'a) ->
  fold:('acc -> 'a -> 'acc) ->
  init:'acc ->
  'acc
(** [map lo hi] runs once per chunk, in parallel; the chunk results are
    then folded {e sequentially, in chunk-index order} in the calling
    domain.  Chunk boundaries are a pure function of [n] and [chunks],
    so the fold sequence — and hence the result — is deterministic. *)

(** {1 [?pool]-threading conveniences}

    Call sites take a [?pool:t] optional argument; [None] (or a 1-job
    pool, or a trivially small [n]) runs the identical code on a single
    chunk in the calling domain.

    With a [?label] and {!Dq_obs.Trace} collection enabled, every chunk
    runs inside a span of that name ([cat = "pool"], [args] carrying the
    chunk's [lo]/[hi] bounds) on whichever domain executes it — this is
    what renders worker lanes in a trace viewer.  The spans appear on
    the sequential path too (one chunk), so the {e set} of span paths a
    computation produces does not depend on the job count. *)

val for_chunks :
  ?deadline:Dq_fault.Deadline.t ->
  ?chunks:int ->
  ?label:string ->
  t option ->
  n:int ->
  (int -> int -> unit) ->
  unit
(** Run [f lo hi] over the ranges of [0, n); sequentially as [f 0 n]
    when no parallelism applies.  An expired [deadline] raises
    [Dq_fault.Deadline.Expired] on both paths. *)

val map_chunks :
  ?deadline:Dq_fault.Deadline.t ->
  ?chunks:int ->
  ?label:string ->
  t option ->
  n:int ->
  (int -> int -> 'a) ->
  'a list
(** Chunk results in chunk-index order; [[map 0 n]] when sequential
    (and [[]] when [n = 0]). *)

val map_array :
  ?deadline:Dq_fault.Deadline.t ->
  ?chunks:int ->
  ?label:string ->
  t option ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** Element-wise map preserving positions.  Elements of a chunk are
    evaluated in index order within their domain. *)
