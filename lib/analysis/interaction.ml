open Dq_relation
open Dq_cfd
open Dq_core

type edge = { src : int; dst : int; clauses : int list }

type cycle = { attrs : int list; steps : (int * int * int) list }

type termination = Terminating | May_oscillate of cycle list

type shard = {
  shard_id : int;
  clauses : int list;
  attrs : int list;
  independent : bool;
}

type osc_severity = High | Medium | Low

type oscillation = { a : int; b : int; severity : osc_severity }

type clause_cost = {
  clause : int;
  selectivity : float;
  violation_density : float;
  fanout : float;
  hot : bool;
}

let hot_threshold = 0.01

type t = {
  schema : Schema.t;
  sigma : Cfd.t array;
  edges : edge list;
  comp : int array;
  cycles : cycle list;
  termination : termination;
  shards : shard list;
  partition : int array;
  oscillations : oscillation list;
  costs : clause_cost list option;
}

(* ---- dependency graph ------------------------------------------------- *)

(* Edges [B → A] for every clause [(X → A, tp)], [B ∈ X], self-edges
   excluded (a clause whose RHS sits in its own LHS constrains nothing the
   LHS hasn't already fixed; Lint's W004 makes the same cut).  Inducing
   clause ids are collected per (src, dst) pair in an arity×arity matrix —
   no hash tables, so the output order is a pure function of Σ. *)
let dependency_edges arity sigma =
  let by_pair = Array.make_matrix arity arity [] in
  Array.iter
    (fun c ->
      let rhs = Cfd.rhs c in
      Array.iter
        (fun b -> if b <> rhs then by_pair.(b).(rhs) <- Cfd.id c :: by_pair.(b).(rhs))
        (Cfd.lhs c))
    sigma;
  let edges = ref [] in
  for src = arity - 1 downto 0 do
    for dst = arity - 1 downto 0 do
      match by_pair.(src).(dst) with
      | [] -> ()
      | cids -> edges := { src; dst; clauses = List.rev cids } :: !edges
    done
  done;
  !edges

(* ---- cycle certificates ----------------------------------------------- *)

(* A closed walk through one SCC of size > 1: BFS (adjacency restricted to
   the component, neighbours in ascending order) from the smallest member
   to the nearest attribute with a back-edge to it, then that back-edge.
   Each step carries the smallest inducing clause id, so the certificate
   names concrete clauses a user can look up. *)
let cycle_of_component edges members =
  let in_comp a = List.mem a members in
  let start = List.hd members in
  let succ a =
    List.filter_map
      (fun e ->
        if e.src = a && in_comp e.dst then Some (e.dst, List.hd e.clauses)
        else None)
      edges
  in
  (* parent.(a) = Some (pred, clause) once reached *)
  let parent = Hashtbl.create 8 in
  Hashtbl.add parent start (start, -1);
  let queue = Queue.create () in
  Queue.add start queue;
  let closing = ref None in
  while !closing = None && not (Queue.is_empty queue) do
    let a = Queue.pop queue in
    List.iter
      (fun (b, cid) ->
        if !closing = None then
          if b = start then closing := Some (a, cid)
          else if not (Hashtbl.mem parent b) then begin
            Hashtbl.add parent b (a, cid);
            Queue.add b queue
          end)
      (succ a)
  done;
  match !closing with
  | None -> { attrs = members; steps = [] } (* unreachable: SCC of size > 1 *)
  | Some (last, closing_clause) ->
    let rec path_to a acc =
      if a = start then acc
      else
        let pred, cid = Hashtbl.find parent a in
        path_to pred ((pred, cid, a) :: acc)
    in
    let steps = path_to last [] @ [ (last, closing_clause, start) ] in
    { attrs = members; steps }

let cycle_to_string schema sigma cycle =
  match cycle.steps with
  | [] ->
    String.concat ", " (List.map (Schema.attribute schema) cycle.attrs)
  | (first_src, _, _) :: _ ->
    let step_str (src, cid, _) =
      Printf.sprintf "%s --%s--> " (Schema.attribute schema src)
        (Cfd.name sigma.(cid))
    in
    String.concat "" (List.map step_str cycle.steps)
    ^ Schema.attribute schema first_src

(* ---- oscillation pairs ------------------------------------------------ *)

let patterns_compatible p q =
  match (p, q) with
  | Pattern.Wild, _ | _, Pattern.Wild -> true
  | Pattern.Const a, Pattern.Const b -> Value.equal a b

(* The LHS pattern of [c] at attribute position [pos] ([Wild] when [pos]
   is not in the LHS — callers only ask for positions that are). *)
let lhs_pattern_at c pos =
  let lhs = Cfd.lhs c and pats = Cfd.lhs_patterns c in
  let rec find k =
    if k >= Array.length lhs then Pattern.Wild
    else if lhs.(k) = pos then pats.(k)
    else find (k + 1)
  in
  find 0

(* [a] feeds [b]: [a]'s RHS attribute appears in [b]'s LHS and the value
   [a] pushes there is compatible with what [b]'s pattern expects. *)
let feeds a b =
  Array.exists (fun p -> p = Cfd.rhs a) (Cfd.lhs b)
  && patterns_compatible (Cfd.rhs_pattern a) (lhs_pattern_at b (Cfd.rhs a))

let oscillation_pairs sigma =
  let n = Array.length sigma in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      let a = sigma.(i) and b = sigma.(j) in
      if Cfd.rhs a <> Cfd.rhs b && feeds a b && feeds b a then
        let severity =
          match (Cfd.rhs_pattern a, Cfd.rhs_pattern b) with
          | Pattern.Wild, Pattern.Wild -> High
          | Pattern.Const _, Pattern.Const _ -> Low
          | _ -> Medium
        in
        out := { a = i; b = j; severity } :: !out
    done
  done;
  !out

let severity_to_string = function
  | High -> "high"
  | Medium -> "medium"
  | Low -> "low"

(* ---- shard-safety partition ------------------------------------------- *)

(* Union–find over clause ids: clauses sharing any attribute coalesce.
   Two resulting groups touch disjoint attribute sets, so their repairs
   cannot interact through any cell. *)
let shard_partition arity sigma =
  let n = Array.length sigma in
  let uf = Array.init n (fun i -> i) in
  let rec find i = if uf.(i) = i then i else find uf.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then if ri < rj then uf.(rj) <- ri else uf.(ri) <- rj
  in
  let owner = Array.make arity (-1) in
  Array.iteri
    (fun i c ->
      List.iter
        (fun attr ->
          if owner.(attr) = -1 then owner.(attr) <- i
          else union owner.(attr) i)
        (Cfd.attrs c))
    sigma;
  (* Dense shard ids in order of smallest member clause id: roots appear
     in ascending order because union always keeps the smaller root. *)
  let shard_of_root = Array.make n (-1) in
  let next = ref 0 in
  let partition =
    Array.init n (fun i ->
        let r = find i in
        if shard_of_root.(r) = -1 then begin
          shard_of_root.(r) <- !next;
          incr next
        end;
        shard_of_root.(r))
  in
  partition

let shards_of_partition arity sigma partition ~cycles ~oscillations =
  let n = Array.length sigma in
  let n_shards =
    Array.fold_left (fun acc s -> max acc (s + 1)) 0 partition
  in
  let clauses = Array.make n_shards [] in
  for i = n - 1 downto 0 do
    clauses.(partition.(i)) <- i :: clauses.(partition.(i))
  done;
  let attrs = Array.make n_shards [] in
  Array.iteri
    (fun sid cids ->
      let mark = Array.make arity false in
      List.iter
        (fun cid -> List.iter (fun a -> mark.(a) <- true) (Cfd.attrs sigma.(cid)))
        cids;
      let out = ref [] in
      for a = arity - 1 downto 0 do
        if mark.(a) then out := a :: !out
      done;
      attrs.(sid) <- !out)
    clauses;
  (* A cycle's inducing clauses all share attributes pairwise along the
     walk, so each cycle (and each oscillation pair) lives inside exactly
     one shard — that shard needs reconciliation. *)
  let unsafe = Array.make n_shards false in
  List.iter
    (fun (c : cycle) ->
      match c.steps with
      | (_, cid, _) :: _ -> unsafe.(partition.(cid)) <- true
      | [] -> ())
    cycles;
  List.iter (fun o -> unsafe.(partition.(o.a)) <- true) oscillations;
  List.init n_shards (fun sid ->
      {
        shard_id = sid;
        clauses = clauses.(sid);
        attrs = attrs.(sid);
        independent = not unsafe.(sid);
      })

(* ---- data-aware cost estimates ---------------------------------------- *)

(* Bounded deterministic sample: the instance's first [sample] tuples in
   insertion order.  Per clause, group matching tuples by effective LHS
   key; a tuple counts as violating when its group holds two distinct
   non-null RHS values (wildcard RHS) or its own RHS value contradicts the
   pattern constant.  No hash-table iteration: groups are re-read
   per-tuple through [find_opt], so every number is a pure function of the
   sample order. *)
let clause_costs sigma tuples =
  let n_sample = Array.length tuples in
  if n_sample = 0 then
    Array.to_list
      (Array.map
         (fun c ->
           {
             clause = Cfd.id c;
             selectivity = 0.;
             violation_density = 0.;
             fanout = (if Cfd.is_constant c then 1.0 else 0.);
             hot = false;
           })
         sigma)
  else
    Array.to_list
      (Array.map
         (fun c ->
           let matched = ref 0 and violating = ref 0 in
           let fan_sum = ref 0 in
           if Cfd.is_constant c then begin
             let rhs_pat = Cfd.rhs_pattern c in
             Array.iter
               (fun t ->
                 if Cfd.applies_lhs c t then begin
                   incr matched;
                   let v = Tuple.get t (Cfd.rhs c) in
                   if (not (Value.is_null v)) && not (Pattern.matches v rhs_pat)
                   then incr violating
                 end)
               tuples
           end
           else begin
             (* group sizes and distinct non-null RHS values per LHS key *)
             let groups : (int * Value.t list) Vkey.Table.t =
               Vkey.Table.create 64
             in
             Array.iter
               (fun t ->
                 if Cfd.applies_lhs c t then begin
                   let key = Cfd.lhs_key c t in
                   let size, vals =
                     match Vkey.Table.find_opt groups key with
                     | Some entry -> entry
                     | None -> (0, [])
                   in
                   let v = Tuple.get t (Cfd.rhs c) in
                   let vals =
                     if Value.is_null v || List.exists (Value.equal v) vals
                     then vals
                     else v :: vals
                   in
                   Vkey.Table.replace groups key (size + 1, vals)
                 end)
               tuples;
             Array.iter
               (fun t ->
                 if Cfd.applies_lhs c t then begin
                   incr matched;
                   match Vkey.Table.find_opt groups (Cfd.lhs_key c t) with
                   | None -> ()
                   | Some (size, vals) ->
                     fan_sum := !fan_sum + size;
                     if List.length vals >= 2 then incr violating
                 end)
               tuples
           end;
           let frac k = float_of_int k /. float_of_int n_sample in
           let violation_density = frac !violating in
           {
             clause = Cfd.id c;
             selectivity = frac !matched;
             violation_density;
             fanout =
               (if Cfd.is_constant c then 1.0
                else if !matched = 0 then 0.
                else float_of_int !fan_sum /. float_of_int !matched);
             hot = violation_density >= hot_threshold;
           })
         sigma)

(* ---- entry point ------------------------------------------------------ *)

let analyze ?data ?(sample = 2000) schema sigma =
  Array.iter
    (fun c ->
      if not (Schema.equal (Cfd.schema c) schema) then
        invalid_arg "Interaction.analyze: clause schema mismatch")
    sigma;
  let arity = Schema.arity schema in
  let edges = dependency_edges arity sigma in
  let comp =
    Depgraph.scc ~n:arity
      ~edges:(List.map (fun e -> (e.src, e.dst)) edges)
  in
  (* SCC members, per component, ascending — components in id order. *)
  let n_comps = Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp in
  let members = Array.make n_comps [] in
  for a = arity - 1 downto 0 do
    members.(comp.(a)) <- a :: members.(comp.(a))
  done;
  let cyclic =
    Array.to_list members |> List.filter (fun ms -> List.length ms > 1)
  in
  let cycles = List.map (cycle_of_component edges) cyclic in
  let cycles =
    List.sort (fun (c1 : cycle) (c2 : cycle) -> compare c1.attrs c2.attrs) cycles
  in
  let termination =
    if cycles = [] then Terminating else May_oscillate cycles
  in
  let oscillations = oscillation_pairs sigma in
  let partition = shard_partition arity sigma in
  let shards =
    shards_of_partition arity sigma partition ~cycles ~oscillations
  in
  let costs =
    Option.map
      (fun rel ->
        let tuples = Relation.tuples rel in
        let tuples =
          if Array.length tuples <= sample then tuples
          else Array.sub tuples 0 sample
        in
        clause_costs sigma tuples)
      data
  in
  {
    schema;
    sigma;
    edges;
    comp;
    cycles;
    termination;
    shards;
    partition;
    oscillations;
    costs;
  }
