(** Diagnostics for the static analysis of CFD rulesets.

    Modeled on compiler diagnostics: every finding carries a stable code
    ([E0xx] for errors, [W0xx] for lint warnings, [A0xx] for whole-Σ
    interaction findings), a severity, a human-readable message and, when
    known, the source span of the offending construct and the name of the
    CFD it belongs to.  Codes are stable so CI pipelines can match on them
    ({!Render.to_json} emits them verbatim). *)

type severity = Error | Warning | Info

type code =
  | E000  (** syntax error (a {!Dq_cfd.Cfd_parser.error} surfaced as a diagnostic) *)
  | E001  (** unsatisfiable ruleset (Section 2) *)
  | E002  (** conflicting constant patterns *)
  | E003  (** unknown attribute / malformed clause w.r.t. the schema *)
  | W001  (** redundant pattern row (implied by the rest of Σ) *)
  | W002  (** pattern row subsumed by a more general row of the same tableau *)
  | W003  (** trivial CFD: RHS attribute already constrained by the LHS *)
  | W004  (** cyclic clause interaction (Example 4.1's oscillation hazard) *)
  | W005  (** duplicate CFD name or duplicate pattern row *)
  | A001  (** attribute dependency cycle (whole-Σ, with certificate) *)
  | A002  (** oscillation pair: two clauses feed each other's LHS *)
  | A003  (** hot clause: high estimated violation density (data-aware) *)

val all_codes : code list
(** In reporting order: [E000] … [A003]. *)

val code_to_string : code -> string
(** E.g. ["E001"]. *)

val code_of_string : string -> code option

val severity_of_code : code -> severity

val severity_to_string : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val describe : code -> string
(** One-line summary of the check, for docs and [--explain]-style output. *)

val explain : code -> string
(** Multi-line catalog entry with a worked example — what
    [cfdclean lint --explain CODE] prints; [docs/ANALYSIS.md] is generated
    from the same text. *)

type t = {
  code : code;
  message : string;
  span : Dq_cfd.Cfd_parser.span option;
      (** position of the offending construct, when the ruleset came from
          source text *)
  clause : string option;  (** name of the CFD involved, when there is one *)
}

val make : ?span:Dq_cfd.Cfd_parser.span -> ?clause:string -> code -> string -> t

val severity : t -> severity

val is_error : t -> bool

val compare : t -> t -> int
(** Source order: by position (diagnostics without a span sort first), then
    by code, then message — the order lint output is presented in. *)

val pp : Format.formatter -> t -> unit
(** One line, no source excerpt: ["error[E001]: …"]. *)
