(** Whole-ruleset static analysis of a normalized Σ.

    Where {!Lint} checks one construct at a time, this module analyses how
    the clauses of Σ {e interact}: the attribute dependency graph and its
    SCC condensation (with printable cycle certificates generalizing the
    Example-4.1 lint), a termination verdict for the naive repair fixpoint,
    a {e shard-safety partition} grouping clauses into independently
    repairable components (the static half of the ROADMAP sharding item),
    direct clause-pair oscillation hazards, and — when a data instance is
    supplied — per-clause cost estimates from a bounded sample.

    Everything here is pure data: the [cfdclean analyze] subcommand and the
    bench harness render it; {!Dq_core.Batch_repair} consumes
    {!t.partition} to run clause groups as separate pool tasks. *)

open Dq_relation
open Dq_cfd

(** One condensed edge [src → dst] of the attribute dependency graph:
    some clause has [src] in its LHS and [dst] as its RHS.  [clauses]
    lists every inducing clause id, ascending. *)
type edge = { src : int; dst : int; clauses : int list }

(** A printable certificate for one attribute SCC of size > 1: a closed
    walk of [(src attribute, clause id, dst attribute)] steps, starting
    and ending at the same attribute.  [attrs] is the full component,
    ascending. *)
type cycle = { attrs : int list; steps : (int * int * int) list }

type termination =
  | Terminating  (** the attribute dependency graph is acyclic *)
  | May_oscillate of cycle list
      (** naive RHS-only rule application may loop (Example 4.1); one
          certificate per cyclic SCC.  BATCHREPAIR itself still
          terminates (Theorem 4.2) — this verdict is about the repair
          {e fixpoint} a gate should refuse. *)

(** A connected component of clauses over shared attributes.  Two shards
    never touch a common attribute, so they are repairable in isolation;
    [independent] is [false] when the shard contains a dependency cycle
    or an oscillation pair and its internal repairs may need
    reconciliation passes. *)
type shard = {
  shard_id : int;  (** dense ids, ordered by smallest member clause id *)
  clauses : int list;  (** member clause ids, ascending *)
  attrs : int list;  (** attribute positions the shard touches, ascending *)
  independent : bool;
}

type osc_severity = High | Medium | Low

(** A direct two-clause oscillation hazard: [a]'s RHS attribute feeds
    [b]'s LHS and vice versa, with pattern entries compatible enough
    that one repair can trigger the other.  Severity: [High] when both
    RHS patterns are wildcards (unbounded ping-pong), [Medium] when
    exactly one is a constant, [Low] when both are constants (the loop
    closes after at most one round). *)
type oscillation = { a : int; b : int; severity : osc_severity }

(** Data-aware per-clause estimates over a bounded sample of the
    instance.  [selectivity] is the fraction of sampled tuples matching
    the clause's LHS pattern; [violation_density] the fraction involved
    in a violation of the clause; [fanout] the mean size of the LHS
    groups a matching tuple lands in (1.0 for constant-RHS clauses —
    repairs touch one tuple at a time).  [hot] flags clauses whose
    violation density crosses {!hot_threshold}. *)
type clause_cost = {
  clause : int;
  selectivity : float;
  violation_density : float;
  fanout : float;
  hot : bool;
}

val hot_threshold : float
(** Violation density at which a clause is flagged hot (0.01). *)

type t = {
  schema : Schema.t;
  sigma : Cfd.t array;
  edges : edge list;  (** ascending by (src, dst) *)
  comp : int array;  (** attribute position → SCC id (reverse topo order) *)
  cycles : cycle list;  (** one per SCC of size > 1, by smallest attr *)
  termination : termination;
  shards : shard list;
  partition : int array;  (** clause id → shard id, for {!Dq_core.Batch_repair} *)
  oscillations : oscillation list;  (** ascending by (a, b) *)
  costs : clause_cost list option;  (** [Some _] iff [analyze] got [?data] *)
}

val analyze : ?data:Relation.t -> ?sample:int -> Schema.t -> Cfd.t array -> t
(** [analyze schema sigma] runs every static analysis; with [?data] also
    the sampled cost estimates ([sample] caps the tuples examined,
    default 2000 — the sample is the instance's first tuples, so results
    are deterministic).  All list outputs are deterministically ordered.
    @raise Invalid_argument if a clause's schema disagrees with [schema]. *)

val cycle_to_string : Schema.t -> Cfd.t array -> cycle -> string
(** Render a certificate, e.g. ["CT --phi4--> zip --phi2--> CT"]. *)

val severity_to_string : osc_severity -> string
(** ["high"], ["medium"] or ["low"]. *)
