open Dq_relation
open Dq_cfd
open Dq_core
module P = Cfd_parser

(* Where a normal-form clause came from: tableau index, pattern-row index
   ([-1] for the implicit all-wild row of a plain FD) and RHS attribute.
   [span] points at the pattern row (or the CFD name for implicit rows). *)
type origin = {
  tab_idx : int;
  row_idx : int;
  rhs_attr : string;
  span : P.span;
  name : string;
  name_span : P.span;
}

let origin_label o =
  if o.row_idx < 0 then o.name else Printf.sprintf "%s row %d" o.name (o.row_idx + 1)

(* attribute name → position within [xs], computed once per tableau so the
   per-row checks below do array lookups instead of rescanning lists. *)
let position_map xs =
  let tbl = Hashtbl.create (List.length xs * 2) in
  List.iteri (fun i x -> if not (Hashtbl.mem tbl x) then Hashtbl.add tbl x i) xs;
  tbl

let row_equal (a : Cfd.Tableau.row) (b : Cfd.Tableau.row) =
  List.length a.lhs = List.length b.lhs
  && List.length a.rhs = List.length b.rhs
  && List.for_all2 Pattern.equal a.lhs b.lhs
  && List.for_all2 Pattern.equal a.rhs b.rhs

(* [a] subsumed by [b]: every tuple matching [a]'s LHS matches [b]'s LHS,
   and the rows assert the same RHS patterns — so [a] adds nothing. *)
let row_subsumed_by (a : Cfd.Tableau.row) (b : Cfd.Tableau.row) =
  List.length a.lhs = List.length b.lhs
  && List.length a.rhs = List.length b.rhs
  && List.for_all2 Pattern.subsumes a.lhs b.lhs
  && List.for_all2 Pattern.equal a.rhs b.rhs

let patterns_compatible p q =
  match (p, q) with
  | Pattern.Wild, _ | _, Pattern.Wild -> true
  | Pattern.Const a, Pattern.Const b -> Value.equal a b

(* The all-wild row [Cfd.normalize] inserts for a body-less FD. *)
let implicit_row (tab : Cfd.Tableau.t) =
  Cfd.Tableau.
    {
      lhs = List.map (fun _ -> Pattern.Wild) tab.lhs_attrs;
      rhs = List.map (fun _ -> Pattern.Wild) tab.rhs_attrs;
    }

(* Rows of a tableau with their indices and spans, including the implicit
   row (index -1, located at the CFD name). *)
let located_rows (lt : P.Located.tableau) =
  match lt.tab.rows with
  | [] -> [ (implicit_row lt.tab, -1, lt.name_span) ]
  | rows ->
    let spans = Array.of_list lt.row_spans in
    List.mapi (fun j r -> (r, j, spans.(j))) rows

let synthesize_schema tabs =
  let seen = Hashtbl.create 16 in
  let attrs = ref [] in
  List.iter
    (fun (lt : P.Located.tableau) ->
      List.iter
        (fun a ->
          if not (Hashtbl.mem seen a) then begin
            Hashtbl.add seen a ();
            attrs := a :: !attrs
          end)
        (lt.tab.lhs_attrs @ lt.tab.rhs_attrs))
    tabs;
  Schema.make ~name:"ruleset" (List.rev !attrs)

let run ?(node_budget = 200_000) ?(errors_only = false) ?schema
    (tabs : P.Located.tableau list) =
  if tabs = [] then []
  else begin
    let diags = ref [] in
    let emit ?span ?clause code fmt =
      Format.kasprintf
        (fun message -> diags := Diagnostic.make ?span ?clause code message :: !diags)
        fmt
    in
    let explicit_schema = schema <> None in
    let schema =
      match schema with Some s -> s | None -> synthesize_schema tabs
    in
    (* E003: unknown attributes and malformed clauses, per attribute token.
       A tableau with any E003 cannot be resolved and is excluded from the
       clause-level checks below. *)
    let bad = Hashtbl.create 8 in
    List.iteri
      (fun i (lt : P.Located.tableau) ->
        let check_attr (a, span) =
          if explicit_schema && not (Schema.mem schema a) then begin
            Hashtbl.replace bad i ();
            emit ~span ~clause:lt.tab.name Diagnostic.E003
              "unknown attribute %S (not in schema %s)" a (Schema.name schema)
          end
        in
        List.iter check_attr
          (List.combine lt.tab.lhs_attrs lt.lhs_attr_spans
          @ List.combine lt.tab.rhs_attrs lt.rhs_attr_spans);
        let seen = Hashtbl.create 4 in
        List.iter2
          (fun a span ->
            if Hashtbl.mem seen a then begin
              Hashtbl.replace bad i ();
              emit ~span ~clause:lt.tab.name Diagnostic.E003
                "duplicate LHS attribute %S" a
            end
            else Hashtbl.add seen a ())
          lt.tab.lhs_attrs lt.lhs_attr_spans)
      tabs;
    (* Expand good tableaux into normal-form clauses, keeping provenance. *)
    let clauses = ref [] in
    List.iteri
      (fun i (lt : P.Located.tableau) ->
        if not (Hashtbl.mem bad i) then
          List.iter
            (fun (row, row_idx, span) ->
              let rhs_pats = Array.of_list row.Cfd.Tableau.rhs in
              List.iteri
                (fun k rhs_attr ->
                  let rhs_pat = rhs_pats.(k) in
                  match
                    Cfd.make ~name:lt.tab.name schema
                      ~lhs:(List.combine lt.tab.lhs_attrs row.Cfd.Tableau.lhs)
                      ~rhs:(rhs_attr, rhs_pat)
                  with
                  | c ->
                    clauses :=
                      ( c,
                        {
                          tab_idx = i;
                          row_idx;
                          rhs_attr;
                          span;
                          name = lt.tab.name;
                          name_span = lt.name_span;
                        } )
                      :: !clauses
                  | exception Invalid_argument msg ->
                    Hashtbl.replace bad i ();
                    emit ~span ~clause:lt.tab.name Diagnostic.E003 "%s" msg)
                lt.tab.rhs_attrs)
            (located_rows lt))
      tabs;
    let clauses = Array.of_list (List.rev !clauses) in
    let sigma = Cfd.number (Array.to_list (Array.map fst clauses)) in
    let origins = Array.map snd clauses in
    let n = Array.length sigma in
    (* E002: two clauses over the same embedded FD whose LHS patterns can
       match the same tuple but whose RHS constants disagree — any matching
       tuple is unrepairable without leaving the patterns' scope. *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let c1 = sigma.(i) and c2 = sigma.(j) in
        if Cfd.same_embedded_fd c1 c2 then
          match (Cfd.rhs_pattern c1, Cfd.rhs_pattern c2) with
          | Pattern.Const v1, Pattern.Const v2 when not (Value.equal v1 v2) ->
            let pat_at c pos =
              let lhs = Cfd.lhs c and pats = Cfd.lhs_patterns c in
              let rec find k =
                if k >= Array.length lhs then Pattern.Wild
                else if lhs.(k) = pos then pats.(k)
                else find (k + 1)
              in
              find 0
            in
            let compatible =
              Array.for_all
                (fun pos -> patterns_compatible (pat_at c1 pos) (pat_at c2 pos))
                (Cfd.lhs c1)
            in
            if compatible then
              emit ~span:origins.(j).span ~clause:origins.(j).name
                Diagnostic.E002
                "%s and %s have compatible LHS patterns but contradictory \
                 constants for %s: %s vs %s"
                (origin_label origins.(i))
                (origin_label origins.(j))
                origins.(j).rhs_attr (Value.to_string v1) (Value.to_string v2)
          | _ -> ()
      done
    done;
    (* E001: satisfiability of the whole ruleset (Section 2), with a minimal
       conflicting clause subset found by greedy deletion. *)
    let satisfiable =
      n = 0 || Satisfiability.witness schema sigma <> None
    in
    if not satisfiable then begin
      let unsat idxs =
        Satisfiability.witness schema
          (Cfd.number (List.map (fun i -> sigma.(i)) idxs))
        = None
      in
      let rec shrink kept = function
        | [] -> List.rev kept
        | i :: rest ->
          if unsat (List.rev_append kept rest) then shrink kept rest
          else shrink (i :: kept) rest
      in
      let core = shrink [] (List.init n Fun.id) in
      let first = List.hd core in
      emit ~span:origins.(first).span ~clause:origins.(first).name
        Diagnostic.E001
        "the ruleset is unsatisfiable: no non-empty instance can satisfy it; \
         minimal conflicting clauses: %s"
        (String.concat "; "
           (List.map (fun i -> Fmt.str "%a" Cfd.pp sigma.(i)) core))
    end;
    if not errors_only then begin
      (* W005: duplicate CFD names across the ruleset. *)
      let names = Hashtbl.create 8 in
      List.iteri
        (fun i (lt : P.Located.tableau) ->
          match Hashtbl.find_opt names lt.tab.name with
          | Some first ->
            emit ~span:lt.name_span ~clause:lt.tab.name Diagnostic.W005
              "duplicate CFD name %S (first defined as CFD %d)" lt.tab.name
              (first + 1)
          | None -> Hashtbl.add names lt.tab.name i)
        tabs;
      (* W005 (rows) and W002, per tableau; rows flagged here are excluded
         from W001 so each defect is reported once. *)
      let flagged = Hashtbl.create 8 in
      List.iteri
        (fun i (lt : P.Located.tableau) ->
          let rows =
            Array.of_list
              (List.map2
                 (fun r s -> (r, s))
                 lt.tab.rows lt.row_spans)
          in
          for j = 0 to Array.length rows - 1 do
            let rj, sj = rows.(j) in
            let dup = ref None and subsumer = ref None in
            for k = 0 to Array.length rows - 1 do
              if k <> j then begin
                let rk, _ = rows.(k) in
                if k < j && !dup = None && row_equal rj rk then dup := Some k;
                if !subsumer = None && (not (row_equal rj rk))
                   && row_subsumed_by rj rk
                then subsumer := Some k
              end
            done;
            match !dup with
            | Some k ->
              Hashtbl.replace flagged (i, j) ();
              emit ~span:sj ~clause:lt.tab.name Diagnostic.W005
                "row %d duplicates row %d" (j + 1) (k + 1)
            | None -> (
              match !subsumer with
              | Some k ->
                Hashtbl.replace flagged (i, j) ();
                emit ~span:sj ~clause:lt.tab.name Diagnostic.W002
                  "row %d is subsumed by the more general row %d" (j + 1)
                  (k + 1)
              | None -> ())
          done)
        tabs;
      (* W003: an RHS attribute that already appears in the LHS, with
         patterns that can never constrain a matching tuple.  A tableau
         whose every RHS attribute is trivial is vacuously implied by
         anything, so W001 skips it rather than double-report. *)
      let all_trivial = Hashtbl.create 4 in
      List.iteri
        (fun i (lt : P.Located.tableau) ->
          let lhs_pos = position_map lt.tab.lhs_attrs in
          let rhs_spans = Array.of_list lt.rhs_attr_spans in
          (* Pattern rows as arrays, once per tableau, so the per-RHS
             vacuity check indexes instead of [List.nth]-ing. *)
          let rows =
            (match lt.tab.rows with
            | [] -> [ implicit_row lt.tab ]
            | rows -> rows)
            |> List.map (fun (r : Cfd.Tableau.row) ->
                   (Array.of_list r.lhs, Array.of_list r.rhs))
            |> Array.of_list
          in
          let trivial = ref 0 in
          List.iteri
            (fun k rhs_attr ->
              match Hashtbl.find_opt lhs_pos rhs_attr with
              | None -> ()
              | Some li ->
                let vacuous (lhs_pats, rhs_pats) =
                  match (rhs_pats.(k), lhs_pats.(li)) with
                  | Pattern.Wild, _ -> true
                  | Pattern.Const a, Pattern.Const b -> Value.equal a b
                  | Pattern.Const _, Pattern.Wild -> false
                in
                if Array.for_all vacuous rows then begin
                  incr trivial;
                  emit ~span:rhs_spans.(k) ~clause:lt.tab.name Diagnostic.W003
                    "trivial CFD: RHS attribute %S already appears in the \
                     LHS, so every matching tuple satisfies it"
                    rhs_attr
                end)
            lt.tab.rhs_attrs;
          if !trivial = List.length lt.tab.rhs_attrs then
            Hashtbl.replace all_trivial i ())
        tabs;
      (* W004: attribute SCCs of size > 1 in the dependency graph — the
         cyclic interaction behind Example 4.1's oscillation hazard. *)
      if n > 0 then begin
        let arity = Schema.arity schema in
        let edges =
          Array.to_list sigma
          |> List.concat_map (fun c ->
                 let rhs = Cfd.rhs c in
                 Array.to_list (Cfd.lhs c)
                 |> List.filter_map (fun b ->
                        if b = rhs then None else Some (b, rhs)))
        in
        let comp = Depgraph.scc ~n:arity ~edges in
        let members = Hashtbl.create 8 in
        Array.iteri
          (fun pos c ->
            Hashtbl.replace members c
              (pos :: Option.value ~default:[] (Hashtbl.find_opt members c)))
          comp;
        Hashtbl.iter
          (fun _ positions ->
            let positions = List.sort Int.compare positions in
            if List.length positions > 1 then begin
              let in_comp pos = List.mem pos positions in
              let involved =
                Array.to_list
                  (Array.mapi
                     (fun i c ->
                       if
                         in_comp (Cfd.rhs c)
                         && Array.exists in_comp (Cfd.lhs c)
                       then Some i
                       else None)
                     sigma)
                |> List.filter_map Fun.id
              in
              match involved with
              | [] -> ()
              | first :: _ ->
                let names =
                  List.fold_left
                    (fun acc i ->
                      let nm = origins.(i).name in
                      if List.mem nm acc then acc else acc @ [ nm ])
                    [] involved
                in
                emit ~span:origins.(first).name_span
                  ~clause:origins.(first).name Diagnostic.W004
                  "attributes %s form a dependency cycle through %s: \
                   repairing one clause can re-violate another (the \
                   Example 4.1 oscillation hazard)"
                  (String.concat ", "
                     (List.map (Schema.attribute schema) positions))
                  (String.concat ", " names)
            end)
          members
      end;
      (* W001: a pattern row all of whose clauses are implied by the rest of
         Σ is dead weight (Dq_core.Implication's refutation search). *)
      if satisfiable && n > 1 then
        List.iteri
          (fun i (lt : P.Located.tableau) ->
            if not (Hashtbl.mem bad i) && not (Hashtbl.mem all_trivial i) then
              List.iter
                (fun ((_ : Cfd.Tableau.row), row_idx, span) ->
                  if not (Hashtbl.mem flagged (i, row_idx)) then begin
                    let mine = ref [] and rest = ref [] in
                    Array.iteri
                      (fun k o ->
                        if o.tab_idx = i && o.row_idx = row_idx then
                          mine := sigma.(k) :: !mine
                        else rest := sigma.(k) :: !rest)
                      origins;
                    if !mine <> [] && !rest <> [] then begin
                      let rest_sigma = Cfd.number (List.rev !rest) in
                      let implied c =
                        try Implication.implies ~node_budget schema rest_sigma c
                        with Implication.Budget_exceeded -> false
                      in
                      if List.for_all implied !mine then
                        emit ~span ~clause:lt.tab.name Diagnostic.W001
                          "%s is implied by the rest of the ruleset and can \
                           be dropped"
                          (if row_idx < 0 then lt.tab.name
                           else Printf.sprintf "row %d" (row_idx + 1))
                    end
                  end)
                (located_rows lt))
          tabs
    end;
    List.sort Diagnostic.compare !diags
  end
