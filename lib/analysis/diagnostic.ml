type severity = Error | Warning

type code = E000 | E001 | E002 | E003 | W001 | W002 | W003 | W004 | W005

let all_codes = [ E000; E001; E002; E003; W001; W002; W003; W004; W005 ]

let code_to_string = function
  | E000 -> "E000"
  | E001 -> "E001"
  | E002 -> "E002"
  | E003 -> "E003"
  | W001 -> "W001"
  | W002 -> "W002"
  | W003 -> "W003"
  | W004 -> "W004"
  | W005 -> "W005"

let code_of_string s =
  List.find_opt (fun c -> String.equal (code_to_string c) s) all_codes

let severity_of_code = function
  | E000 | E001 | E002 | E003 -> Error
  | W001 | W002 | W003 | W004 | W005 -> Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

let describe = function
  | E000 -> "syntax error: the ruleset does not parse"
  | E001 -> "unsatisfiable ruleset: no non-empty instance can satisfy it"
  | E002 -> "conflicting constant patterns: compatible LHS, contradictory RHS"
  | E003 -> "unknown attribute or malformed clause for the schema"
  | W001 -> "redundant pattern row: implied by the rest of the ruleset"
  | W002 -> "pattern row subsumed by a more general row of the same tableau"
  | W003 -> "trivial CFD: the RHS attribute already appears in the LHS"
  | W004 -> "cyclic clause interaction: repairs may oscillate"
  | W005 -> "duplicate CFD name or duplicate pattern row"

type t = {
  code : code;
  message : string;
  span : Dq_cfd.Cfd_parser.span option;
  clause : string option;
}

let make ?span ?clause code message = { code; message; span; clause }

let severity t = severity_of_code t.code

let is_error t = severity t = Error

let code_index c =
  let rec find i = function
    | [] -> assert false
    | c' :: rest -> if c = c' then i else find (i + 1) rest
  in
  find 0 all_codes

let compare a b =
  let pos d =
    match d.span with
    | None -> (0, 0)
    | Some s -> (s.Dq_cfd.Cfd_parser.line, s.Dq_cfd.Cfd_parser.col_start)
  in
  let c = Stdlib.compare (pos a) (pos b) in
  if c <> 0 then c
  else
    let c = Int.compare (code_index a.code) (code_index b.code) in
    if c <> 0 then c else String.compare a.message b.message

let pp ppf t =
  Format.fprintf ppf "%s[%s]: %s"
    (severity_to_string (severity t))
    (code_to_string t.code) t.message
