type severity = Error | Warning | Info

type code =
  | E000
  | E001
  | E002
  | E003
  | W001
  | W002
  | W003
  | W004
  | W005
  | A001
  | A002
  | A003

let all_codes =
  [ E000; E001; E002; E003; W001; W002; W003; W004; W005; A001; A002; A003 ]

let code_to_string = function
  | E000 -> "E000"
  | E001 -> "E001"
  | E002 -> "E002"
  | E003 -> "E003"
  | W001 -> "W001"
  | W002 -> "W002"
  | W003 -> "W003"
  | W004 -> "W004"
  | W005 -> "W005"
  | A001 -> "A001"
  | A002 -> "A002"
  | A003 -> "A003"

let code_of_string s =
  List.find_opt (fun c -> String.equal (code_to_string c) s) all_codes

let severity_of_code = function
  | E000 | E001 | E002 | E003 -> Error
  | W001 | W002 | W003 | W004 | W005 | A001 | A002 -> Warning
  | A003 -> Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let describe = function
  | E000 -> "syntax error: the ruleset does not parse"
  | E001 -> "unsatisfiable ruleset: no non-empty instance can satisfy it"
  | E002 -> "conflicting constant patterns: compatible LHS, contradictory RHS"
  | E003 -> "unknown attribute or malformed clause for the schema"
  | W001 -> "redundant pattern row: implied by the rest of the ruleset"
  | W002 -> "pattern row subsumed by a more general row of the same tableau"
  | W003 -> "trivial CFD: the RHS attribute already appears in the LHS"
  | W004 -> "cyclic clause interaction: repairs may oscillate"
  | W005 -> "duplicate CFD name or duplicate pattern row"
  | A001 -> "attribute dependency cycle: the repair fixpoint may not terminate"
  | A002 -> "oscillation pair: two clauses feed each other's LHS"
  | A003 -> "hot clause: high estimated violation density on the instance"

let explain = function
  | E000 ->
    "E000 — syntax error\n\n\
     The ruleset file does not parse, so no further analysis runs.  The\n\
     diagnostic carries the parser's position and message.\n\n\
     Example (missing '->'):\n\n\
    \  cfd bad [zip] [CT]\n\n\
     Fix the syntax; 'cfdclean lint FILE' re-checks without needing data."
  | E001 ->
    "E001 — unsatisfiable ruleset\n\n\
     Taken together the pattern rows admit no non-empty instance: every\n\
     tuple is forced into a contradiction.  Detection follows the\n\
     satisfiability check of Section 2 of the paper.\n\n\
     Example:\n\n\
    \  cfd a [AC] -> [CT] (_ || NYC)\n\
    \  cfd b [AC] -> [CT] (_ || PHI)\n\n\
     Any tuple at all must have CT = NYC and CT = PHI at once."
  | E002 ->
    "E002 — conflicting constant patterns\n\n\
     Two rows have compatible LHS patterns but contradictory RHS\n\
     constants, so some tuples can satisfy neither.\n\n\
     Example:\n\n\
    \  cfd a [zip] -> [CT] (10012 || NYC)\n\
    \  cfd b [zip] -> [CT] (10012 || PHI)\n\n\
     A tuple with zip = 10012 violates one of the two whatever its CT."
  | E003 ->
    "E003 — unknown attribute / malformed clause\n\n\
     A clause names an attribute the schema does not have, or its pattern\n\
     row arity disagrees with its attribute lists.\n\n\
     Example (schema has no 'zipp'):\n\n\
    \  cfd a [zipp] -> [CT]\n\n\
     Check spelling against the CSV header or declared schema."
  | W001 ->
    "W001 — redundant pattern row\n\n\
     The row is implied by the rest of the ruleset: removing it changes\n\
     nothing.  Redundant rows slow detection and repair for no benefit.\n\n\
     Example:\n\n\
    \  cfd a [zip] -> [CT] (10012 || NYC)\n\
    \  cfd b [zip] -> [CT] (_ || _)        # implied: an FD row already\n\
    \                                      # follows from row-level logic"
  | W002 ->
    "W002 — subsumed pattern row\n\n\
     A row of the same tableau is strictly more general (wildcards where\n\
     this row has constants, equal elsewhere) with the same RHS, so this\n\
     row never fires on its own.\n\n\
     Example:\n\n\
    \  (_ || NYC)\n\
    \  (10012 || NYC)   # subsumed by the row above"
  | W003 ->
    "W003 — trivial CFD\n\n\
     The RHS attribute already appears in the LHS, so the clause can only\n\
     restate what the LHS match fixed.  Usually a typo in the attribute\n\
     lists.\n\n\
     Example:\n\n\
    \  cfd a [CT, zip] -> [CT]"
  | W004 ->
    "W004 — cyclic clause interaction\n\n\
     Within one tableau pair, clause A's RHS attribute feeds clause B's\n\
     LHS and vice versa — Example 4.1's oscillation hazard: naive\n\
     rule-at-a-time repair can flip the two attributes forever.\n\
     BATCHREPAIR still terminates (Theorem 4.2), but the result can\n\
     depend on application order.\n\n\
     Example:\n\n\
    \  cfd phi2 [zip] -> [CT]\n\
    \  cfd phi4 [CT, STR] -> [zip]\n\n\
     'cfdclean analyze' generalizes this check to whole-Σ certificates\n\
     (A001)."
  | W005 ->
    "W005 — duplicate name or row\n\n\
     Two tableaus share a name, or one tableau repeats a pattern row.\n\
     Duplicates make diagnostics ambiguous and waste work.\n\n\
     Example:\n\n\
    \  cfd a [zip] -> [CT]\n\
    \  cfd a [AC] -> [ST]    # same name 'a'"
  | A001 ->
    "A001 — attribute dependency cycle\n\n\
     The attribute dependency graph of Σ (edge B → A for every clause\n\
     [X → A] with B ∈ X) has a strongly connected component of size > 1.\n\
     The diagnostic prints a closed-walk certificate naming the inducing\n\
     clauses, e.g.\n\n\
    \  CT --phi4--> zip --phi2--> CT\n\n\
     Naive fixpoint repair over such a ruleset may not terminate;\n\
     'detect/repair/sample --analyze-gate' refuse it.  Break the cycle by\n\
     dropping or reorienting one of the named clauses."
  | A002 ->
    "A002 — oscillation pair\n\n\
     Two specific clauses feed each other: A's RHS attribute is in B's\n\
     LHS and vice versa, with compatible pattern entries, so one repair\n\
     can re-trigger the other.  Severity: high when both RHS patterns are\n\
     wildcards (unbounded ping-pong), medium when exactly one is a\n\
     constant, low when both are constants (the loop closes after at most\n\
     one exchange).\n\n\
     Example (high):\n\n\
    \  cfd a [x] -> [y]\n\
    \  cfd b [y] -> [x]"
  | A003 ->
    "A003 — hot clause\n\n\
     With '--data FILE', 'cfdclean analyze' estimates per-clause costs\n\
     from a bounded sample (first 2000 tuples by default).  A clause is\n\
     flagged hot when its estimated violation density — the fraction of\n\
     sampled tuples involved in a violation — reaches 1%.  Hot clauses\n\
     dominate repair time; consider cleaning their attributes first or\n\
     tightening their patterns."

type t = {
  code : code;
  message : string;
  span : Dq_cfd.Cfd_parser.span option;
  clause : string option;
}

let make ?span ?clause code message = { code; message; span; clause }

let severity t = severity_of_code t.code

let is_error t = severity t = Error

let code_index c =
  let rec find i = function
    | [] -> assert false
    | c' :: rest -> if c = c' then i else find (i + 1) rest
  in
  find 0 all_codes

let compare a b =
  let pos d =
    match d.span with
    | None -> (0, 0)
    | Some s -> (s.Dq_cfd.Cfd_parser.line, s.Dq_cfd.Cfd_parser.col_start)
  in
  let c = Stdlib.compare (pos a) (pos b) in
  if c <> 0 then c
  else
    let c = Int.compare (code_index a.code) (code_index b.code) in
    if c <> 0 then c else String.compare a.message b.message

let pp ppf t =
  Format.fprintf ppf "%s[%s]: %s"
    (severity_to_string (severity t))
    (code_to_string t.code) t.message
