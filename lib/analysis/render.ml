module P = Dq_cfd.Cfd_parser

let pp_text ?path ?source ppf (d : Diagnostic.t) =
  (match (path, d.span) with
  | Some p, Some s -> Format.fprintf ppf "%s:%d:%d: " p s.P.line s.P.col_start
  | Some p, None -> Format.fprintf ppf "%s: " p
  | None, Some s -> Format.fprintf ppf "%d:%d: " s.P.line s.P.col_start
  | None, None -> ());
  Diagnostic.pp ppf d;
  match (source, d.span) with
  | Some text, Some s -> (
    let lines = String.split_on_char '\n' text in
    match List.nth_opt lines (s.P.line - 1) with
    | None -> ()
    | Some line ->
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      let width = max 1 (s.P.col_end - s.P.col_start) in
      let width = min width (max 1 (String.length line - s.P.col_start + 1)) in
      Format.fprintf ppf "@,%4d | %s@,     | %s%s" s.P.line line
        (String.make (s.P.col_start - 1) ' ')
        (String.make width '^'))
  | _ -> ()

let summary diags =
  let errors = List.length (List.filter Diagnostic.is_error diags) in
  let warnings = List.length diags - errors in
  let plural n = if n = 1 then "" else "s" in
  Printf.sprintf "%d error%s, %d warning%s" errors (plural errors) warnings
    (plural warnings)

(* JSON -------------------------------------------------------------- *)

let escape_json s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?path diags =
  let b = Buffer.create 1024 in
  let field_str k v = Printf.sprintf "\"%s\": \"%s\"" k (escape_json v) in
  let field_int k v = Printf.sprintf "\"%s\": %d" k v in
  Buffer.add_string b "{\n";
  (match path with
  | Some p -> Buffer.add_string b ("  " ^ field_str "path" p ^ ",\n")
  | None -> ());
  let errors = List.length (List.filter Diagnostic.is_error diags) in
  Buffer.add_string b ("  " ^ field_int "errors" errors ^ ",\n");
  Buffer.add_string b
    ("  " ^ field_int "warnings" (List.length diags - errors) ^ ",\n");
  Buffer.add_string b "  \"diagnostics\": [";
  List.iteri
    (fun i (d : Diagnostic.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    { ";
      let fields =
        [
          field_str "code" (Diagnostic.code_to_string d.code);
          field_str "severity"
            (Diagnostic.severity_to_string (Diagnostic.severity d));
          field_str "message" d.message;
        ]
        @ (match d.clause with Some c -> [ field_str "clause" c ] | None -> [])
        @
        match d.span with
        | Some s ->
          [
            field_int "line" s.P.line;
            field_int "col" s.P.col_start;
            field_int "end_col" s.P.col_end;
          ]
        | None -> []
      in
      Buffer.add_string b (String.concat ", " fields);
      Buffer.add_string b " }")
    diags;
  if diags <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b
