(** The lint pass over parsed CFD tableaux.

    Runs every check against a located parse ({!Dq_cfd.Cfd_parser.Located})
    and returns diagnostics in source order.  See the library overview in
    {!Dq_analysis} ([lib/analysis/dq_analysis.ml]) for the check catalogue
    and how each one maps back to the paper. *)

val synthesize_schema :
  Dq_cfd.Cfd_parser.Located.tableau list -> Dq_relation.Schema.t
(** The schema implied by a ruleset alone: every attribute the tableaux
    mention, in first-mention order.  What {!run} (and [cfdclean analyze])
    falls back to when no data file supplies a real schema. *)

val run :
  ?node_budget:int ->
  ?errors_only:bool ->
  ?schema:Dq_relation.Schema.t ->
  Dq_cfd.Cfd_parser.Located.tableau list ->
  Diagnostic.t list
(** [run ?schema tabs] lints a ruleset.

    When [schema] is given (normally the header of the CSV the rules govern)
    attribute names are checked against it (E003).  Without a schema one is
    synthesized from the attributes the ruleset mentions, so the semantic
    checks still run and only the unknown-attribute check is skipped.

    [errors_only] (default [false]) skips the warning checks entirely —
    cheaper, since W001 runs an implication search per pattern row; this is
    what the CLI's pre-repair gate uses.  [node_budget] bounds each
    implication search ({!Dq_core.Implication}); a row whose search exhausts
    the budget is simply not reported.

    Diagnostics come back sorted by source position. *)
