(** Presentation of lint diagnostics: compiler-style text with a source
    excerpt and caret, and a machine-readable JSON document for CI. *)

val pp_text :
  ?path:string -> ?source:string -> Format.formatter -> Diagnostic.t -> unit
(** ["FILE:LINE:COL: severity[CODE]: message"], followed — when [source] (the
    ruleset text) is given and the diagnostic has a span — by the offending
    line and a caret underlining the span:
    {v
    orders.cfd:4:7: error[E003]: unknown attribute "AC2" (not in schema order)
       4 | phi1: [AC2, PN] -> [CT]
         |        ^^^
    v} *)

val summary : Diagnostic.t list -> string
(** E.g. ["2 errors, 1 warning"]. *)

val to_json : ?path:string -> Diagnostic.t list -> string
(** A JSON document:
    {v
    { "path": "orders.cfd",
      "errors": 1, "warnings": 2,
      "diagnostics": [
        { "code": "E001", "severity": "error", "message": "...",
          "clause": "phi1", "line": 4, "col": 1, "end_col": 5 } ] }
    v}
    [clause] and the position fields are omitted when unknown. *)
