(** Static analysis of CFD rulesets — [cfdclean lint].

    Every algorithm in this repo assumes a well-formed, satisfiable Σ: an
    unsatisfiable or pathological CFD set makes BATCHREPAIR / INCREPAIR
    meaningless.  This library is a compiler-style lint pass over parsed
    tableaux ({!Dq_cfd.Cfd_parser.Located}) that catches those problems
    before any repair runs.  How each check maps back to the paper
    ("Improving Data Quality: Consistency and Accuracy", Cong et al.,
    VLDB 2007):

    - [E001] {e unsatisfiable ruleset} — Section 2 observes that, unlike
      FDs, a CFD set may admit no non-empty instance; the cleaning
      algorithms assume a satisfiable Σ.  Decided via
      {!Dq_cfd.Satisfiability.witness}; a minimal conflicting clause subset
      is extracted by greedy deletion so the report is actionable.
    - [E002] {e conflicting constant patterns} — two clauses over the same
      embedded FD whose LHS patterns can match the same tuple but whose RHS
      constants disagree.  Σ may still be satisfiable (no tuple need match),
      but every matching tuple is unrepairable in place — the degenerate
      case of Section 2's satisfiability discussion.
    - [E003] {e unknown attribute / malformed clause} — a clause that does
      not type-check against [attr(R)] (Section 2's well-formedness), with
      the span of the offending attribute token.
    - [W001] {e redundant pattern row} — implied by the rest of Σ, decided
      with {!Dq_core.Implication}'s refutation search (the companion
      implication analysis Section 2 cites); dropping it shrinks the Σ every
      repair iterates over.
    - [W002] {e subsumed pattern row} — a row strictly less general than a
      sibling row with identical RHS patterns (syntactic special case of
      W001, cf. {!Dq_core.Implication.subsumes}).
    - [W003] {e trivial CFD} — the RHS attribute already appears in the LHS
      with patterns that cannot constrain a matching tuple, so the clause is
      vacuous ([X → A] with [A ∈ X]).
    - [W004] {e cyclic clause interaction} — attribute SCCs of size > 1 in
      the dependency graph of Section 7.2 ({!Dq_core.Depgraph}).  Example
      4.1 shows FD-style repair oscillating exactly on such cycles, which is
      why INCREPAIR must re-examine upstream clauses.
    - [W005] {e duplicate clause names / rows} — harmless to the semantics
      but a smell in hand-written or mined rulesets, and duplicate names
      break per-clause reporting.

    Beyond the per-construct lint, {!Interaction} analyses the whole Σ at
    once — the attribute dependency graph with printable cycle certificates
    ([A001]), direct oscillation pairs ([A002]), the shard-safety partition
    {!Dq_core.Batch_repair} consumes to repair clause groups independently,
    and data-aware cost estimates ([A003]) — surfaced as
    [cfdclean analyze].

    {!Lint.run} executes the checks; {!Render} presents the results as
    caret-annotated text or JSON for CI gating. *)

module Diagnostic = Diagnostic
module Lint = Lint
module Render = Render
module Interaction = Interaction
