open Dq_relation
module Json = Dq_obs.Json
module Envelope = Dq_obs.Envelope
module Report = Dq_obs.Report
module Log = Dq_obs.Log
module Metrics = Dq_obs.Metrics
module Trace = Dq_obs.Trace
module Deadline = Dq_fault.Deadline
module Pool = Dq_parallel.Pool
module Engine = Dq_engine.Engine

let ( let* ) = Result.bind

(* Reported by /v1/health; keep in sync with the cfdclean man page
   version in bin/cfdclean.ml. *)
let version = "1.0.0"

type telemetry = {
  metrics : bool;
  slow_request_s : float option;
}

let default_telemetry = { metrics = true; slow_request_s = None }

let telemetry_off = { metrics = false; slow_request_s = None }

type config = {
  port : int;
  state_dir : string option;
  jobs : int;
  resume : bool;
  telemetry : telemetry;
}

(* The daemon-wide instruments, registered at [start] — never at module
   initialisation, which would leak serve counters into every binary
   that links this library (the CLI's [--metrics] snapshot is a pinned
   golden).  Per-(route, status) request counters and per-route latency
   histograms are labeled instruments, registered on demand as traffic
   arrives. *)
type instruments = {
  sessions_live : Metrics.gauge;
  quarantine_depth : Metrics.gauge;
  uptime : Metrics.gauge;
  gc_heap_words : Metrics.gauge;
  gc_minor_words : Metrics.gauge;
  gc_major_words : Metrics.gauge;
  gc_compactions : Metrics.gauge;
  ingest_batch : Metrics.histogram;
  checkpoint_bytes : Metrics.histogram;
  checkpoint_seconds : Metrics.timer;
}

let register_instruments () =
  {
    sessions_live = Metrics.gauge "serve.sessions_live";
    quarantine_depth = Metrics.gauge "serve.quarantine_depth";
    uptime = Metrics.gauge "serve.uptime_seconds";
    gc_heap_words = Metrics.gauge "gc.heap_words";
    gc_minor_words = Metrics.gauge "gc.minor_words";
    gc_major_words = Metrics.gauge "gc.major_words";
    gc_compactions = Metrics.gauge "gc.compactions";
    ingest_batch =
      Metrics.histogram ~buckets:Metrics.size_buckets "serve.ingest_batch_size";
    checkpoint_bytes =
      Metrics.histogram ~buckets:Metrics.size_buckets "serve.checkpoint_bytes";
    checkpoint_seconds = Metrics.timer "serve.checkpoint_seconds";
  }

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  state_dir : string option;
  pool : Pool.t option;
  sessions : (string, Session.t) Hashtbl.t;
  registry : Mutex.t;  (** guards [sessions] and [next_id] *)
  ingest_queue : Mutex.t;
      (** the in-process ingest queue: engine invocations from all
          sessions drain through this one lock, in arrival order *)
  telemetry : telemetry;
  instruments : instruments option;  (** [Some] iff [telemetry.metrics] *)
  started : float;  (** wall clock at [start], for uptime *)
  id_prefix : string;  (** per-process prefix of generated request ids *)
  req_counter : int Atomic.t;
  mutable next_id : int;
  mutable stopped : bool;
  mutable acceptor : Thread.t option;
}

let port t = t.bound_port

let status_of_error = function
  | Dq_error.No_such_session _ -> 404
  | Dq_error.Parse _ | Dq_error.Invalid_input _ | Dq_error.Invalid_config _
  | Dq_error.Would_overwrite _ | Dq_error.Unknown_engine _ ->
    400
  | Dq_error.Lint_gated _ | Dq_error.Analyze_gated _ | Dq_error.Unsatisfiable
  | Dq_error.Engine_unsupported _ ->
    422
  | Dq_error.Deadline_exceeded -> 504
  | Dq_error.Io _ | Dq_error.Fault_injected _ | Dq_error.Internal _ -> 500

(* The envelope's [request] field: verb plus canonical path (query
   dropped), e.g. ["POST /v1/sessions/s1/tuples"]. *)
let request_name (r : Http.request) =
  r.Http.meth ^ " /" ^ String.concat "/" r.Http.path

(* ---- responses as values ------------------------------------------------- *)

(* Handlers build a response value instead of writing to the socket, so
   one central path ({!send_response}) stamps every response with its
   request-id header, counts the bytes, records the route metrics and
   emits the access-log line — error paths included. *)
type body = Fixed of string | Stream of ((string -> unit) -> unit)

type response = { status : int; content_type : string; body : body }

let json_response ~status j =
  {
    status;
    content_type = "application/json";
    body = Fixed (Json.to_string j);
  }

let ok_response ?(status = 200) ~request ~id report =
  json_response ~status
    (Envelope.make ~request ?id ~ok:true ~report ~diagnostics:[] ())

let err_response ?status ~request ~id e =
  let status =
    match status with Some s -> s | None -> status_of_error e
  in
  json_response ~status (Envelope.error ~request ?id (Dq_error.to_json e))

(* ---- request ids --------------------------------------------------------- *)

(* A client-supplied [x-request-id] is echoed after sanitising (so a log
   line is one JSON token no matter what arrived); otherwise an id is
   generated — but only when some telemetry is on.  With metrics off and
   no log sink, responses carry no id and are byte-identical to the
   pre-telemetry wire format (the zero-overhead gate). *)
let sanitize_request_id s =
  let b = Buffer.create (min (String.length s) 64) in
  String.iter
    (fun c ->
      if Buffer.length b < 64 then
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' ->
          Buffer.add_char b c
        | _ -> ())
    s;
  if Buffer.length b = 0 then None else Some (Buffer.contents b)

let telemetry_active d =
  d.instruments <> None || Log.enabled Log.Error

let request_id_of d (r : Http.request) =
  match Option.bind (Http.header r "x-request-id") sanitize_request_id with
  | Some _ as id -> id
  | None ->
    if telemetry_active d then
      Some
        (Printf.sprintf "%s-%06d" d.id_prefix
           (Atomic.fetch_and_add d.req_counter 1))
    else None

(* ---- request decoding --------------------------------------------------- *)

let parse_body (r : Http.request) =
  match Json.parse r.Http.body with
  | Ok j -> Ok j
  | Error msg -> Error (Dq_error.Invalid_input ("request body: " ^ msg))

let field ?default name j =
  match (Json.member name j, default) with
  | Some v, _ -> Ok v
  | None, Some d -> Ok d
  | None, None ->
    Error (Dq_error.Invalid_input (Printf.sprintf "missing field %S" name))

let string_field ?default name j =
  let* v = field ?default:(Option.map (fun s -> Json.String s) default) name j in
  match v with
  | Json.String s -> Ok s
  | _ ->
    Error (Dq_error.Invalid_input (Printf.sprintf "field %S: expected a string" name))

let bool_field ~default name j =
  match Json.member name j with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ ->
    Error
      (Dq_error.Invalid_input (Printf.sprintf "field %S: expected a boolean" name))

let map_m f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

(* A relation value in a request body: a plain JSON scalar. *)
let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Int n -> Ok (Value.Int n)
  | Json.Float f -> Ok (Value.Float f)
  | Json.String s -> Ok (Value.String s)
  | j ->
    Error
      (Dq_error.Invalid_input
         ("tuple values must be JSON scalars, got "
         ^ String.trim (Json.to_string ~minify:true j)))

let values_of_json l =
  let* vs = map_m value_of_json l in
  Ok (Array.of_list vs)

let weights_of_json j =
  match j with
  | None -> Ok None
  | Some (Json.List l) ->
    let* ws =
      map_m
        (function
          | Json.Int n -> Ok (float_of_int n)
          | Json.Float f -> Ok f
          | _ -> Error (Dq_error.Invalid_input "weights must be numbers"))
        l
    in
    Ok (Some (Array.of_list ws))
  | Some _ -> Error (Dq_error.Invalid_input "field \"weights\": expected a list")

(* One submitted tuple: either a bare array of values, or an object
   [{"values": [...], "weights": [...]}] carrying per-attribute
   confidence weights (Section 3.2). *)
let row_of_json = function
  | Json.List l ->
    let* values = values_of_json l in
    Ok (values, None)
  | Json.Obj _ as j ->
    let* values = field "values" j in
    let* values =
      match values with
      | Json.List l -> values_of_json l
      | _ -> Error (Dq_error.Invalid_input "field \"values\": expected a list")
    in
    let* weights = weights_of_json (Json.member "weights" j) in
    Ok (values, weights)
  | _ ->
    Error
      (Dq_error.Invalid_input
         "each tuple must be a list of values or {\"values\": ..., \
          \"weights\": ...}")

let deadline_of_request (r : Http.request) =
  match Http.header r "x-deadline-seconds" with
  | None -> Ok Deadline.never
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some secs when secs >= 0. -> Ok (Deadline.after secs)
    | _ ->
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "x-deadline-seconds: bad value %S" s)))

(* ---- response fragments -------------------------------------------------- *)

let session_status (s : Session.t) =
  Json.Obj
    [
      ("id", Json.String s.Session.id);
      ("engine", Json.String s.Session.engine);
      ( "schema",
        Json.Obj
          [
            ("name", Json.String (Schema.name s.Session.schema));
            ( "attributes",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun a -> Json.String a)
                      (Schema.attributes s.Session.schema))) );
          ] );
      ("tuples", Json.Int (Relation.cardinality s.Session.relation));
      ("next_tid", Json.Int s.Session.next_tid);
      ("batches", Json.Int s.Session.batches);
      ("repaired", Json.Int s.Session.repaired);
      ("quarantine", Json.Int (List.length s.Session.quarantine));
      ("quarantined_total", Json.Int s.Session.quarantined_total);
      ("resolved", Json.Int s.Session.resolved);
    ]

let outcome_json schema = function
  | Session.Clean tid ->
    Json.Obj [ ("tid", Json.Int tid); ("status", Json.String "clean") ]
  | Session.Repaired (tid, cells) ->
    Json.Obj
      [
        ("tid", Json.Int tid);
        ("status", Json.String "repaired");
        ("cells_changed", Json.Int cells);
      ]
  | Session.Quarantined (tid, attrs) ->
    Json.Obj
      [
        ("tid", Json.Int tid);
        ("status", Json.String "quarantined");
        ( "attrs",
          Json.List
            (List.map (fun p -> Json.String (Schema.attribute schema p)) attrs)
        );
      ]

let quarantined_json schema (q : Session.quarantined) =
  Json.Obj
    [
      ("tid", Json.Int (Tuple.tid q.Session.tuple));
      ("batch", Json.Int q.Session.batch);
      ( "attrs",
        Json.List
          (List.map
             (fun p -> Json.String (Schema.attribute schema p))
             q.Session.attrs) );
      ( "values",
        Json.List
          (Array.to_list
             (Array.map Json.of_value (Tuple.values q.Session.tuple))) );
    ]

(* ---- session registry ---------------------------------------------------- *)

let find_session d id =
  Mutex.protect d.registry (fun () ->
      match Hashtbl.find_opt d.sessions id with
      | Some s -> Ok s
      | None -> Error (Dq_error.No_such_session id))

(* Checkpoint a committed mutation before the response goes out.  Caller
   holds the session lock, so the snapshot is the acknowledged state. *)
let save_session d s =
  match d.state_dir with
  | None -> ()
  | Some dir -> (
    match d.instruments with
    | None -> ignore (Store.save ~dir s)
    | Some i ->
      let t0 = Unix.gettimeofday () in
      let bytes = Store.save ~dir s in
      Metrics.record i.checkpoint_seconds (Unix.gettimeofday () -. t0);
      Metrics.observe i.checkpoint_bytes (float_of_int bytes))

(* ---- handlers ------------------------------------------------------------ *)

let handle_health d ~request ~id =
  let sessions = Mutex.protect d.registry (fun () -> Hashtbl.length d.sessions) in
  let uptime = int_of_float (Unix.gettimeofday () -. d.started) in
  let state =
    match d.state_dir with
    | None ->
      Json.Obj [ ("persistent", Json.Bool false); ("dir", Json.Null) ]
    | Some dir ->
      Json.Obj [ ("persistent", Json.Bool true); ("dir", Json.String dir) ]
  in
  ok_response ~request ~id
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("version", Json.String version);
         ("uptime_s", Json.Int uptime);
         ("sessions", Json.Int sessions);
         ("state", state);
         ( "engines",
           Json.List (List.map (fun n -> Json.String n) (Engine.names ())) );
       ])

(* /v1/metrics is the one endpoint outside the envelope: Prometheus text
   exposition, scraped verbatim.  Gauges that mirror daemon state are
   refreshed here, at scrape time, rather than maintained on every
   mutation. *)
let handle_metrics d =
  (match d.instruments with
  | None -> ()
  | Some i ->
    let sessions =
      Mutex.protect d.registry (fun () ->
          List.of_seq (Hashtbl.to_seq_values d.sessions))
    in
    let qdepth =
      List.fold_left
        (fun acc (s : Session.t) ->
          acc
          + Session.with_lock s (fun () -> List.length s.Session.quarantine))
        0 sessions
    in
    Metrics.set_gauge i.sessions_live (float_of_int (List.length sessions));
    Metrics.set_gauge i.quarantine_depth (float_of_int qdepth);
    Metrics.set_gauge i.uptime (Unix.gettimeofday () -. d.started);
    (* A young handler thread reads zeroed quick_stat counters until it
       has been through a minor collection; force one (cheap, bounded by
       the minor heap) so the gauges are real. *)
    Gc.minor ();
    let st = Gc.quick_stat () in
    Metrics.set_gauge i.gc_heap_words (float_of_int st.Gc.heap_words);
    Metrics.set_gauge i.gc_minor_words st.Gc.minor_words;
    Metrics.set_gauge i.gc_major_words st.Gc.major_words;
    Metrics.set_gauge i.gc_compactions (float_of_int st.Gc.compactions));
  {
    status = 200;
    content_type = "text/plain; version=0.0.4";
    body = Fixed (Metrics.to_prometheus ());
  }

let handle_create d ~request ~id:rid (r : Http.request) =
  let result =
    let* body = parse_body r in
    let* schema = field "schema" body in
    let* schema_name = string_field "name" schema in
    let* attributes = field "attributes" schema in
    let* attributes =
      match attributes with
      | Json.List l ->
        map_m
          (function
            | Json.String a -> Ok a
            | _ ->
              Error
                (Dq_error.Invalid_input
                   "field \"attributes\": expected strings"))
          l
      | _ ->
        Error (Dq_error.Invalid_input "field \"attributes\": expected a list")
    in
    let* rules = string_field "rules" body in
    (* l-inc is the default session engine: its linear tuple ordering
       makes batch-split ingest equal one-shot ingest (the determinism
       property the test suite checks). *)
    let* engine = string_field ~default:"l-inc" "engine" body in
    let* force = bool_field ~default:false "force" body in
    Mutex.protect d.registry (fun () ->
        let id = Printf.sprintf "s%d" d.next_id in
        let* s =
          Session.create ~id ~schema_name ~attributes ~rules ~engine ~force ()
        in
        d.next_id <- d.next_id + 1;
        Hashtbl.replace d.sessions id s;
        Session.with_lock s (fun () -> save_session d s);
        Ok s)
  in
  match result with
  | Error e -> err_response ~request ~id:rid e
  | Ok s ->
    Log.info "session.create" (fun () ->
        [
          ("session", Json.String s.Session.id);
          ("engine", Json.String s.Session.engine);
        ]
        @ match rid with None -> [] | Some i -> [ ("id", Json.String i) ]);
    ok_response ~request ~id:rid ~status:201
      (Session.with_lock s (fun () -> session_status s))

let handle_list d ~request ~id =
  let statuses =
    Mutex.protect d.registry (fun () ->
        Hashtbl.to_seq_values d.sessions
        |> List.of_seq
        |> List.sort (fun (a : Session.t) b ->
               compare a.Session.id b.Session.id)
        |> List.map (fun s -> Session.with_lock s (fun () -> session_status s)))
  in
  ok_response ~request ~id (Json.Obj [ ("sessions", Json.List statuses) ])

let handle_status d ~request ~id sid =
  match find_session d sid with
  | Error e -> err_response ~request ~id e
  | Ok s ->
    ok_response ~request ~id (Session.with_lock s (fun () -> session_status s))

let handle_delete d ~request ~id sid =
  let result =
    Mutex.protect d.registry (fun () ->
        match Hashtbl.find_opt d.sessions sid with
        | None -> Error (Dq_error.No_such_session sid)
        | Some _ ->
          Hashtbl.remove d.sessions sid;
          (match d.state_dir with
          | Some dir -> Store.delete ~dir sid
          | None -> ());
          Ok ())
  in
  match result with
  | Error e -> err_response ~request ~id e
  | Ok () ->
    ok_response ~request ~id (Json.Obj [ ("deleted", Json.String sid) ])

let handle_ingest d ~request ~id:rid (r : Http.request) sid =
  let result =
    let* s = find_session d sid in
    let* deadline = deadline_of_request r in
    let* body = parse_body r in
    let* rows = field "tuples" body in
    let* rows =
      match rows with
      | Json.List l -> map_m row_of_json l
      | _ -> Error (Dq_error.Invalid_input "field \"tuples\": expected a list")
    in
    (match d.instruments with
    | Some i -> Metrics.observe i.ingest_batch (float_of_int (List.length rows))
    | None -> ());
    Session.with_lock s (fun () ->
        let* outcomes, stats, report =
          Mutex.protect d.ingest_queue (fun () ->
              Session.ingest ?pool:d.pool ~deadline ?request_id:rid s rows)
        in
        save_session d s;
        Ok
          (Json.Obj
             [
               ("session", Json.String sid);
               ("batch", Json.Int s.Session.batches);
               ("ingested", Json.Int (List.length rows));
               ( "outcomes",
                 Json.List
                   (List.map (outcome_json s.Session.schema) outcomes) );
               ("stats", Json.String stats);
               ("engine_report", Report.stable_json report);
             ]))
  in
  match result with
  | Error e -> err_response ~request ~id:rid e
  | Ok report -> ok_response ~request ~id:rid report

let handle_relation d ~request ~id sid =
  match find_session d sid with
  | Error e -> err_response ~request ~id e
  | Ok s ->
    (* Snapshot under the lock, stream outside it. *)
    let csv = Session.with_lock s (fun () -> Csv.save_string s.Session.relation) in
    {
      status = 200;
      content_type = "text/csv";
      body =
        Stream
          (fun write ->
            let chunk = 64 * 1024 in
            let n = String.length csv in
            let rec go off =
              if off < n then begin
                write (String.sub csv off (min chunk (n - off)));
                go (off + chunk)
              end
            in
            go 0);
    }

let handle_quarantine d ~request ~id sid =
  match find_session d sid with
  | Error e -> err_response ~request ~id e
  | Ok s ->
    ok_response ~request ~id
      (Session.with_lock s (fun () ->
           Json.Obj
             [
               ("session", Json.String sid);
               ( "entries",
                 Json.List
                   (List.map
                      (quarantined_json s.Session.schema)
                      s.Session.quarantine) );
             ]))

let handle_resolve d ~request ~id:rid (r : Http.request) sid tid_str =
  let result =
    let* s = find_session d sid in
    let* tid =
      match int_of_string_opt tid_str with
      | Some t -> Ok t
      | None ->
        Error (Dq_error.Invalid_input (Printf.sprintf "bad tid %S" tid_str))
    in
    let* deadline = deadline_of_request r in
    let* body = parse_body r in
    let* resolution =
      match (Json.member "action" body, Json.member "values" body) with
      | Some (Json.String "discard"), None -> Ok Session.Discard
      | (None | Some (Json.String "replace")), Some (Json.List l) ->
        let* values = values_of_json l in
        let* weights = weights_of_json (Json.member "weights" body) in
        Ok (Session.Replace (values, weights))
      | _ ->
        Error
          (Dq_error.Invalid_input
             "resolve body must be {\"action\": \"discard\"} or {\"values\": \
              [...]}")
    in
    Session.with_lock s (fun () ->
        let* outcome =
          Mutex.protect d.ingest_queue (fun () ->
              Session.resolve ?pool:d.pool ~deadline ?request_id:rid s tid
                resolution)
        in
        save_session d s;
        Ok
          (Json.Obj
             [
               ("session", Json.String sid);
               ("resolved", Json.Int tid);
               ("outcome", outcome_json s.Session.schema outcome);
             ]))
  in
  match result with
  | Error e -> err_response ~request ~id:rid e
  | Ok report -> ok_response ~request ~id:rid report

(* ---- dispatch ------------------------------------------------------------ *)

(* The route template (what metrics and access-log lines are keyed by —
   a bounded label set, ids collapsed to [:id]) plus the session id the
   path names, if any. *)
let route_info (r : Http.request) =
  match (r.Http.meth, r.Http.path) with
  | "GET", [ "v1"; "health" ] -> ("GET /v1/health", None)
  | "GET", [ "v1"; "metrics" ] -> ("GET /v1/metrics", None)
  | "POST", [ "v1"; "sessions" ] -> ("POST /v1/sessions", None)
  | "GET", [ "v1"; "sessions" ] -> ("GET /v1/sessions", None)
  | "GET", [ "v1"; "sessions"; id ] -> ("GET /v1/sessions/:id", Some id)
  | "DELETE", [ "v1"; "sessions"; id ] -> ("DELETE /v1/sessions/:id", Some id)
  | "POST", [ "v1"; "sessions"; id; "tuples" ] ->
    ("POST /v1/sessions/:id/tuples", Some id)
  | "GET", [ "v1"; "sessions"; id; "relation" ] ->
    ("GET /v1/sessions/:id/relation", Some id)
  | "GET", [ "v1"; "sessions"; id; "quarantine" ] ->
    ("GET /v1/sessions/:id/quarantine", Some id)
  | "POST", [ "v1"; "sessions"; id; "quarantine"; _; "resolve" ] ->
    ("POST /v1/sessions/:id/quarantine/:tid/resolve", Some id)
  | _, _ -> ("(unmatched)", None)

let route d (r : Http.request) ~request ~id =
  match (r.Http.meth, r.Http.path) with
  | "GET", [ "v1"; "health" ] -> handle_health d ~request ~id
  | "GET", [ "v1"; "metrics" ] when d.instruments <> None -> handle_metrics d
  | "POST", [ "v1"; "sessions" ] -> handle_create d ~request ~id r
  | "GET", [ "v1"; "sessions" ] -> handle_list d ~request ~id
  | "GET", [ "v1"; "sessions"; sid ] -> handle_status d ~request ~id sid
  | "DELETE", [ "v1"; "sessions"; sid ] -> handle_delete d ~request ~id sid
  | "POST", [ "v1"; "sessions"; sid; "tuples" ] ->
    handle_ingest d ~request ~id r sid
  | "GET", [ "v1"; "sessions"; sid; "relation" ] ->
    handle_relation d ~request ~id sid
  | "GET", [ "v1"; "sessions"; sid; "quarantine" ] ->
    handle_quarantine d ~request ~id sid
  | "POST", [ "v1"; "sessions"; sid; "quarantine"; tid; "resolve" ] ->
    handle_resolve d ~request ~id r sid tid
  | _, _ ->
    err_response ~status:404 ~request ~id
      (Dq_error.Invalid_input (Printf.sprintf "no such endpoint: %s" request))

(* Write the response, then account for it: the per-route request
   counter and latency histogram, one [http.access] log line carrying
   the request id, and the slow-request warning.  A peer that vanished
   mid-write still gets accounted (bytes reflect what was written
   before the pipe broke only approximately; we log the intended
   size). *)
let send_response d fd ~meth ~route ~session ~id ~t0 resp =
  let headers =
    match id with Some i -> [ ("x-request-id", i) ] | None -> []
  in
  let bytes =
    try
      match resp.body with
      | Fixed body ->
        Http.respond fd ~status:resp.status ~content_type:resp.content_type
          ~headers body;
        String.length body
      | Stream produce ->
        Http.respond_stream fd ~status:resp.status
          ~content_type:resp.content_type ~headers produce
    with Http.Closed -> 0
  in
  let dt = Unix.gettimeofday () -. t0 in
  (match d.instruments with
  | None -> ()
  | Some _ ->
    Metrics.incr
      (Metrics.counter
         ~labels:
           [ ("route", route); ("status", string_of_int resp.status) ]
         "serve.requests");
    Metrics.observe
      (Metrics.histogram ~labels:[ ("route", route) ] "serve.request_seconds")
      dt);
  let fields () =
    [
      ("method", Json.String meth);
      ("route", Json.String route);
      ("status", Json.Int resp.status);
      ("latency_s", Json.Float dt);
      ("bytes", Json.Int bytes);
    ]
    @ (match session with
      | Some s -> [ ("session", Json.String s) ]
      | None -> [])
    @ match id with Some i -> [ ("id", Json.String i) ] | None -> []
  in
  Log.info "http.access" fields;
  match d.telemetry.slow_request_s with
  | Some limit when dt > limit ->
    Log.warn "http.slow" (fun () ->
        fields () @ [ ("threshold_s", Json.Float limit) ])
  | _ -> ()

let serve_request d fd (r : Http.request) =
  let request = request_name r in
  let route_tmpl, session = route_info r in
  let id = request_id_of d r in
  let t0 = Unix.gettimeofday () in
  let resp =
    Trace.span ~cat:"serve"
      ~args:(fun () ->
        ("route", Json.String route_tmpl)
        :: (match id with
           | Some i -> [ ("request_id", Json.String i) ]
           | None -> []))
      "http.request"
      (fun () ->
        try route d r ~request ~id with
        | Deadline.Expired -> err_response ~request ~id Dq_error.Deadline_exceeded
        | Dq_fault.Fault.Injected site ->
          err_response ~request ~id (Dq_error.Fault_injected site)
        | Sys_error msg -> err_response ~request ~id (Dq_error.Io msg)
        | Http.Closed ->
          (* already half-written by a streaming handler's peer: nothing
             more to send, but the request still gets accounted *)
          { status = 499; content_type = "text/plain"; body = Fixed "" }
        | exn ->
          err_response ~request ~id
            (Dq_error.Internal (Printexc.to_string exn)))
  in
  send_response d fd ~meth:r.Http.meth ~route:route_tmpl ~session ~id ~t0 resp

let handle_connection d fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        match Http.read_request fd with
        | Ok None -> ()
        | Ok (Some r) -> serve_request d fd r
        | Error msg ->
          let t0 = Unix.gettimeofday () in
          send_response d fd ~meth:"-" ~route:"(malformed)" ~session:None
            ~id:None ~t0
            (err_response ~request:"(malformed)" ~id:None
               (Dq_error.Invalid_input msg))
      with Http.Closed -> ())

(* ---- lifecycle ----------------------------------------------------------- *)

let accept_loop d =
  let rec go () =
    match Unix.accept d.sock with
    | fd, _ ->
      ignore (Thread.create (handle_connection d) fd);
      go ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      () (* socket closed by [stop] *)
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> go ()
  in
  go ()

(* Resumed session files are named ID.json, ids are s<N>: continue the
   counter past the largest N on disk. *)
let next_id_after sessions =
  1
  + List.fold_left
      (fun acc (s : Session.t) ->
        match
          if String.length s.Session.id > 1 && s.Session.id.[0] = 's' then
            int_of_string_opt
              (String.sub s.Session.id 1 (String.length s.Session.id - 1))
          else None
        with
        | Some n -> max acc n
        | None -> acc)
      0 sessions

let start config =
  (* A peer that disappears mid-response must surface as EPIPE, not kill
     the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let* loaded =
    match (config.resume, config.state_dir) with
    | true, None ->
      Error (Dq_error.Invalid_input "resume requires a state directory")
    | true, Some dir -> (
      match Store.load_dir dir with
      | Ok pairs -> Ok (List.map snd pairs)
      | Error msg -> Error (Dq_error.Io (dir ^ ": " ^ msg)))
    | false, _ -> Ok []
  in
  let* pool =
    if config.jobs < 1 then
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "jobs must be at least 1 (got %d)" config.jobs))
    else if config.jobs = 1 then Ok None
    else Ok (Some (Pool.create ~jobs:config.jobs))
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
    Unix.listen sock 64;
    Unix.getsockname sock
  with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Option.iter Pool.shutdown pool;
    Error
      (Dq_error.Io
         (Printf.sprintf "cannot listen on 127.0.0.1:%d: %s" config.port
            (Unix.error_message err)))
  | addr ->
    let bound_port =
      match addr with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> 0
    in
    let instruments =
      if config.telemetry.metrics then begin
        Metrics.set_enabled true;
        Some (register_instruments ())
      end
      else None
    in
    let started = Unix.gettimeofday () in
    let d =
      {
        sock;
        bound_port;
        state_dir = config.state_dir;
        pool;
        sessions = Hashtbl.create 16;
        registry = Mutex.create ();
        ingest_queue = Mutex.create ();
        telemetry = config.telemetry;
        instruments;
        started;
        id_prefix =
          Printf.sprintf "%04x%04x"
            (Unix.getpid () land 0xffff)
            (int_of_float (started *. 1000.) land 0xffff);
        req_counter = Atomic.make 1;
        next_id = next_id_after loaded;
        stopped = false;
        acceptor = None;
      }
    in
    List.iter (fun (s : Session.t) -> Hashtbl.replace d.sessions s.Session.id s) loaded;
    Log.info "serve.start" (fun () ->
        [
          ("port", Json.Int bound_port);
          ( "state_dir",
            match config.state_dir with
            | Some dir -> Json.String dir
            | None -> Json.Null );
          ("jobs", Json.Int config.jobs);
          ("resumed_sessions", Json.Int (List.length loaded));
          ("metrics", Json.Bool config.telemetry.metrics);
        ]);
    d.acceptor <- Some (Thread.create accept_loop d);
    Ok d

let wait d = match d.acceptor with Some t -> Thread.join t | None -> ()

let stop d =
  if not d.stopped then begin
    d.stopped <- true;
    (* Closing an fd does not wake a thread already blocked in accept(2);
       shutdown does (the accept fails with EINVAL). *)
    (try Unix.shutdown d.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close d.sock with Unix.Unix_error _ -> ());
    wait d;
    Option.iter Pool.shutdown d.pool;
    Log.info "serve.stop" (fun () -> [ ("port", Json.Int d.bound_port) ])
  end
