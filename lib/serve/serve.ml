open Dq_relation
module Json = Dq_obs.Json
module Envelope = Dq_obs.Envelope
module Report = Dq_obs.Report
module Log = Dq_obs.Log
module Metrics = Dq_obs.Metrics
module Trace = Dq_obs.Trace
module Deadline = Dq_fault.Deadline
module Fault = Dq_fault.Fault
module Pool = Dq_parallel.Pool
module Engine = Dq_engine.Engine

let ( let* ) = Result.bind

(* Reported by /v1/health; keep in sync with the cfdclean man page
   version in bin/cfdclean.ml. *)
let version = "1.0.0"

type telemetry = {
  metrics : bool;
  slow_request_s : float option;
}

let default_telemetry = { metrics = true; slow_request_s = None }

let telemetry_off = { metrics = false; slow_request_s = None }

(* Overload limits, all off by default: with [default_limits] the daemon
   behaves — and frames responses — exactly like the pre-limits daemon
   (one request per connection, unbounded admission, no timeouts, no
   breaker, no eviction), which is what the byte-identity tests pin. *)
type limits = {
  max_connections : int;
  max_inflight : int;
  queue_depth : int;
  ingest_workers : int;
  keep_alive : bool;
  idle_timeout_s : float;
  read_timeout_s : float;
  evict_idle_s : float;
  breaker_threshold : int;
  drain_timeout_s : float;
}

let default_limits =
  {
    max_connections = 0;
    max_inflight = 0;
    queue_depth = 0;
    ingest_workers = 0;
    keep_alive = false;
    idle_timeout_s = 5.;
    read_timeout_s = 0.;
    evict_idle_s = 0.;
    breaker_threshold = 0;
    drain_timeout_s = 30.;
  }

type config = {
  port : int;
  state_dir : string option;
  jobs : int;
  resume : bool;
  telemetry : telemetry;
  limits : limits;
}

(* The daemon-wide instruments, registered at [start] — never at module
   initialisation, which would leak serve counters into every binary
   that links this library (the CLI's [--metrics] snapshot is a pinned
   golden).  Per-(route, status) request counters, per-route latency
   histograms and the per-reason shed counter are labeled instruments,
   registered on demand as traffic arrives. *)
type instruments = {
  sessions_live : Metrics.gauge;
  quarantine_depth : Metrics.gauge;
  uptime : Metrics.gauge;
  connections_live : Metrics.gauge;
  inflight_gauge : Metrics.gauge;
  ingest_queue_depth : Metrics.gauge;
  sessions_failed : Metrics.gauge;
  gc_heap_words : Metrics.gauge;
  gc_minor_words : Metrics.gauge;
  gc_major_words : Metrics.gauge;
  gc_compactions : Metrics.gauge;
  ingest_batch : Metrics.histogram;
  checkpoint_bytes : Metrics.histogram;
  checkpoint_seconds : Metrics.timer;
  drain_seconds : Metrics.histogram;
}

let register_instruments () =
  {
    sessions_live = Metrics.gauge "serve.sessions_live";
    quarantine_depth = Metrics.gauge "serve.quarantine_depth";
    uptime = Metrics.gauge "serve.uptime_seconds";
    connections_live = Metrics.gauge "serve.connections_live";
    inflight_gauge = Metrics.gauge "serve.inflight";
    ingest_queue_depth = Metrics.gauge "serve.ingest_queue_depth";
    sessions_failed = Metrics.gauge "serve.sessions_failed";
    gc_heap_words = Metrics.gauge "gc.heap_words";
    gc_minor_words = Metrics.gauge "gc.minor_words";
    gc_major_words = Metrics.gauge "gc.major_words";
    gc_compactions = Metrics.gauge "gc.compactions";
    ingest_batch =
      Metrics.histogram ~buckets:Metrics.size_buckets "serve.ingest_batch_size";
    checkpoint_bytes =
      Metrics.histogram ~buckets:Metrics.size_buckets "serve.checkpoint_bytes";
    checkpoint_seconds = Metrics.timer "serve.checkpoint_seconds";
    drain_seconds = Metrics.histogram "serve.drain_seconds";
  }

(* A registry slot.  [Evicted] marks a session the idle sweeper has
   checkpointed and dropped from memory; the next request naming it
   reloads from the state directory transparently. *)
type entry = Live of Session.t | Evicted

type state = Running | Draining | Stopped

(* One live connection: its socket (so drain can force-close stragglers)
   and its handler thread (so [stop] can join finished handlers instead
   of racing them into [Pool.shutdown]). *)
type conn = { cfd : Unix.file_descr; mutable thread : Thread.t option }

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  state_dir : string option;
  pool : Pool.t option;
  workers : Workers.t option;
      (** domain pool for whole ingest jobs ([limits.ingest_workers]) *)
  limits : limits;
  sessions : (string, entry) Hashtbl.t;
  registry : Mutex.t;  (** guards [sessions], [next_id] and pin counts *)
  reload : Mutex.t;  (** serializes evicted-session reloads *)
  telemetry : telemetry;
  instruments : instruments option;  (** [Some] iff [telemetry.metrics] *)
  started : float;  (** wall clock at [start], for uptime *)
  id_prefix : string;  (** per-process prefix of generated request ids *)
  req_counter : int Atomic.t;
  mutable next_id : int;
  lifecycle : Mutex.t;  (** guards [state] transitions *)
  mutable state : state;
  cm : Mutex.t;  (** guards [conns] and [next_tok] *)
  conns : (int, conn) Hashtbl.t;
  mutable next_tok : int;
  inflight : int Atomic.t;
  mutable acceptor : Thread.t option;
  mutable sweeper : Thread.t option;
}

let port t = t.bound_port

let status_of_error = function
  | Dq_error.No_such_session _ -> 404
  | Dq_error.Parse _ | Dq_error.Invalid_input _ | Dq_error.Invalid_config _
  | Dq_error.Would_overwrite _ | Dq_error.Unknown_engine _ ->
    400
  | Dq_error.Lint_gated _ | Dq_error.Analyze_gated _ | Dq_error.Unsatisfiable
  | Dq_error.Engine_unsupported _ ->
    422
  | Dq_error.Queue_full _ -> 429
  | Dq_error.Unavailable _ | Dq_error.Breaker_open _ -> 503
  | Dq_error.Deadline_exceeded -> 504
  | Dq_error.Io _ | Dq_error.Fault_injected _ | Dq_error.Internal _ -> 500

(* The envelope's [request] field: verb plus canonical path (query
   dropped), e.g. ["POST /v1/sessions/s1/tuples"]. *)
let request_name (r : Http.request) =
  r.Http.meth ^ " /" ^ String.concat "/" r.Http.path

(* ---- responses as values ------------------------------------------------- *)

(* Handlers build a response value instead of writing to the socket, so
   one central path ({!send_response}) stamps every response with its
   request-id header, counts the bytes, records the route metrics and
   emits the access-log line — error paths included. *)
type body = Fixed of string | Stream of ((string -> unit) -> unit)

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : body;
}

let json_response ?(headers = []) ~status j =
  {
    status;
    content_type = "application/json";
    headers;
    body = Fixed (Json.to_string j);
  }

let ok_response ?(status = 200) ~request ~id report =
  json_response ~status
    (Envelope.make ~request ?id ~ok:true ~report ~diagnostics:[] ())

let err_response ?status ?headers ~request ~id e =
  let status =
    match status with Some s -> s | None -> status_of_error e
  in
  json_response ?headers ~status
    (Envelope.error ~request ?id (Dq_error.to_json e))

(* Per-reason load-shed counter; reasons are a small fixed set
   (queue_full, inflight, connections, draining). *)
let shed d reason =
  match d.instruments with
  | None -> ()
  | Some _ ->
    Metrics.incr (Metrics.counter ~labels:[ ("reason", reason) ] "serve.shed")

(* ---- request ids --------------------------------------------------------- *)

(* A client-supplied [x-request-id] is echoed after sanitising (so a log
   line is one JSON token no matter what arrived); otherwise an id is
   generated — but only when some telemetry is on.  With metrics off and
   no log sink, responses carry no id and are byte-identical to the
   pre-telemetry wire format (the zero-overhead gate). *)
let sanitize_request_id s =
  let b = Buffer.create (min (String.length s) 64) in
  String.iter
    (fun c ->
      if Buffer.length b < 64 then
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' ->
          Buffer.add_char b c
        | _ -> ())
    s;
  if Buffer.length b = 0 then None else Some (Buffer.contents b)

let telemetry_active d =
  d.instruments <> None || Log.enabled Log.Error

let request_id_of d (r : Http.request) =
  match Option.bind (Http.header r "x-request-id") sanitize_request_id with
  | Some _ as id -> id
  | None ->
    if telemetry_active d then
      Some
        (Printf.sprintf "%s-%06d" d.id_prefix
           (Atomic.fetch_and_add d.req_counter 1))
    else None

(* ---- request decoding --------------------------------------------------- *)

let parse_body (r : Http.request) =
  match Json.parse r.Http.body with
  | Ok j -> Ok j
  | Error msg -> Error (Dq_error.Invalid_input ("request body: " ^ msg))

let field ?default name j =
  match (Json.member name j, default) with
  | Some v, _ -> Ok v
  | None, Some d -> Ok d
  | None, None ->
    Error (Dq_error.Invalid_input (Printf.sprintf "missing field %S" name))

let string_field ?default name j =
  let* v = field ?default:(Option.map (fun s -> Json.String s) default) name j in
  match v with
  | Json.String s -> Ok s
  | _ ->
    Error (Dq_error.Invalid_input (Printf.sprintf "field %S: expected a string" name))

let bool_field ~default name j =
  match Json.member name j with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ ->
    Error
      (Dq_error.Invalid_input (Printf.sprintf "field %S: expected a boolean" name))

let map_m f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

(* A relation value in a request body: a plain JSON scalar. *)
let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Int n -> Ok (Value.Int n)
  | Json.Float f -> Ok (Value.Float f)
  | Json.String s -> Ok (Value.String s)
  | j ->
    Error
      (Dq_error.Invalid_input
         ("tuple values must be JSON scalars, got "
         ^ String.trim (Json.to_string ~minify:true j)))

let values_of_json l =
  let* vs = map_m value_of_json l in
  Ok (Array.of_list vs)

let weights_of_json j =
  match j with
  | None -> Ok None
  | Some (Json.List l) ->
    let* ws =
      map_m
        (function
          | Json.Int n -> Ok (float_of_int n)
          | Json.Float f -> Ok f
          | _ -> Error (Dq_error.Invalid_input "weights must be numbers"))
        l
    in
    Ok (Some (Array.of_list ws))
  | Some _ -> Error (Dq_error.Invalid_input "field \"weights\": expected a list")

(* One submitted tuple: either a bare array of values, or an object
   [{"values": [...], "weights": [...]}] carrying per-attribute
   confidence weights (Section 3.2). *)
let row_of_json = function
  | Json.List l ->
    let* values = values_of_json l in
    Ok (values, None)
  | Json.Obj _ as j ->
    let* values = field "values" j in
    let* values =
      match values with
      | Json.List l -> values_of_json l
      | _ -> Error (Dq_error.Invalid_input "field \"values\": expected a list")
    in
    let* weights = weights_of_json (Json.member "weights" j) in
    Ok (values, weights)
  | _ ->
    Error
      (Dq_error.Invalid_input
         "each tuple must be a list of values or {\"values\": ..., \
          \"weights\": ...}")

let deadline_of_request (r : Http.request) =
  match Http.header r "x-deadline-seconds" with
  | None -> Ok Deadline.never
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some secs when secs >= 0. -> Ok (Deadline.after secs)
    | _ ->
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "x-deadline-seconds: bad value %S" s)))

(* ---- response fragments -------------------------------------------------- *)

(* Session status object.  The breaker fields are appended only when the
   daemon runs with a breaker, so the default-configuration status body
   is byte-identical to the pre-breaker wire format. *)
let session_status d (s : Session.t) =
  let base =
    [
      ("id", Json.String s.Session.id);
      ("engine", Json.String s.Session.engine);
      ( "schema",
        Json.Obj
          [
            ("name", Json.String (Schema.name s.Session.schema));
            ( "attributes",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun a -> Json.String a)
                      (Schema.attributes s.Session.schema))) );
          ] );
      ("tuples", Json.Int (Relation.cardinality s.Session.relation));
      ("next_tid", Json.Int s.Session.next_tid);
      ("batches", Json.Int s.Session.batches);
      ("repaired", Json.Int s.Session.repaired);
      ("quarantine", Json.Int (List.length s.Session.quarantine));
      ("quarantined_total", Json.Int s.Session.quarantined_total);
      ("resolved", Json.Int s.Session.resolved);
    ]
  in
  let breaker =
    if d.limits.breaker_threshold > 0 then
      [
        ( "state",
          Json.String
            (if s.Session.breaker_open then "engine_failed" else "active") );
        ("engine_faults", Json.Int s.Session.engine_faults);
      ]
    else []
  in
  Json.Obj (base @ breaker)

let outcome_json schema = function
  | Session.Clean tid ->
    Json.Obj [ ("tid", Json.Int tid); ("status", Json.String "clean") ]
  | Session.Repaired (tid, cells) ->
    Json.Obj
      [
        ("tid", Json.Int tid);
        ("status", Json.String "repaired");
        ("cells_changed", Json.Int cells);
      ]
  | Session.Quarantined (tid, attrs) ->
    Json.Obj
      [
        ("tid", Json.Int tid);
        ("status", Json.String "quarantined");
        ( "attrs",
          Json.List
            (List.map (fun p -> Json.String (Schema.attribute schema p)) attrs)
        );
      ]

let quarantined_json schema (q : Session.quarantined) =
  Json.Obj
    [
      ("tid", Json.Int (Tuple.tid q.Session.tuple));
      ("batch", Json.Int q.Session.batch);
      ( "attrs",
        Json.List
          (List.map
             (fun p -> Json.String (Schema.attribute schema p))
             q.Session.attrs) );
      ( "values",
        Json.List
          (Array.to_list
             (Array.map Json.of_value (Tuple.values q.Session.tuple))) );
    ]

(* ---- session registry ---------------------------------------------------- *)

(* Checkpoint a committed mutation before the response goes out.  Caller
   holds the session lock, so the snapshot is the acknowledged state. *)
let save_session d s =
  match d.state_dir with
  | None -> ()
  | Some dir -> (
    match d.instruments with
    | None -> ignore (Store.save ~dir s)
    | Some i ->
      let t0 = Unix.gettimeofday () in
      let bytes = Store.save ~dir s in
      Metrics.record i.checkpoint_seconds (Unix.gettimeofday () -. t0);
      Metrics.observe i.checkpoint_bytes (float_of_int bytes))

(* Pin a session for the duration of one request: bump its pin count
   (the sweeper never evicts a pinned session) and stamp its idle clock.
   An [Evicted] slot is reloaded from the state directory first —
   serialized by [d.reload] so a thundering herd loads the file once. *)
let rec pin_session d sid =
  let slot =
    Mutex.protect d.registry (fun () ->
        match Hashtbl.find_opt d.sessions sid with
        | None -> Error (Dq_error.No_such_session sid)
        | Some (Live s) ->
          s.Session.pins <- s.Session.pins + 1;
          Session.touch s;
          Ok (Some s)
        | Some Evicted -> Ok None)
  in
  match slot with
  | Error _ as e -> e
  | Ok (Some s) -> Ok s
  | Ok None ->
    let reloaded =
      Mutex.protect d.reload (fun () ->
          let still_evicted =
            Mutex.protect d.registry (fun () ->
                match Hashtbl.find_opt d.sessions sid with
                | Some Evicted -> true
                | _ -> false)
          in
          if not still_evicted then Ok ()
          else
            match d.state_dir with
            | None ->
              Error
                (Dq_error.Internal
                   ("evicted session without a state directory: " ^ sid))
            | Some dir -> (
              match Store.load_id ~dir sid with
              | Error msg -> Error (Dq_error.Io msg)
              | Ok s ->
                Mutex.protect d.registry (fun () ->
                    match Hashtbl.find_opt d.sessions sid with
                    | Some Evicted -> Hashtbl.replace d.sessions sid (Live s)
                    | _ -> ());
                Log.info "session.reload" (fun () ->
                    [ ("session", Json.String sid) ]);
                Ok ()))
    in
    let* () = reloaded in
    pin_session d sid

let unpin d (s : Session.t) =
  Mutex.protect d.registry (fun () -> s.Session.pins <- s.Session.pins - 1)

let with_session d sid f =
  let* s = pin_session d sid in
  Fun.protect ~finally:(fun () -> unpin d s) (fun () -> f s)

(* ---- handlers ------------------------------------------------------------ *)

let handle_health d ~request ~id =
  let sessions = Mutex.protect d.registry (fun () -> Hashtbl.length d.sessions) in
  let uptime = int_of_float (Unix.gettimeofday () -. d.started) in
  let state =
    match d.state_dir with
    | None ->
      Json.Obj [ ("persistent", Json.Bool false); ("dir", Json.Null) ]
    | Some dir ->
      Json.Obj [ ("persistent", Json.Bool true); ("dir", Json.String dir) ]
  in
  ok_response ~request ~id
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("version", Json.String version);
         ("uptime_s", Json.Int uptime);
         ("sessions", Json.Int sessions);
         ("state", state);
         ( "engines",
           Json.List (List.map (fun n -> Json.String n) (Engine.names ())) );
       ])

(* /v1/metrics is the one endpoint outside the envelope: Prometheus text
   exposition, scraped verbatim.  Gauges that mirror daemon state are
   refreshed here, at scrape time, rather than maintained on every
   mutation. *)
let handle_metrics d =
  (match d.instruments with
  | None -> ()
  | Some i ->
    let entries =
      Mutex.protect d.registry (fun () ->
          List.of_seq (Hashtbl.to_seq d.sessions))
    in
    let live =
      List.filter_map
        (function _, Live s -> Some s | _, Evicted -> None)
        entries
    in
    let qdepth =
      List.fold_left
        (fun acc (s : Session.t) ->
          acc
          + Session.with_lock s (fun () -> List.length s.Session.quarantine))
        0 live
    in
    let lanes =
      List.fold_left
        (fun acc (s : Session.t) -> acc + Session.lane_depth s)
        0 live
    in
    let failed =
      List.length
        (List.filter (fun (s : Session.t) -> s.Session.breaker_open) live)
    in
    Metrics.set_gauge i.sessions_live (float_of_int (List.length entries));
    Metrics.set_gauge i.quarantine_depth (float_of_int qdepth);
    Metrics.set_gauge i.uptime (Unix.gettimeofday () -. d.started);
    Metrics.set_gauge i.connections_live
      (float_of_int (Mutex.protect d.cm (fun () -> Hashtbl.length d.conns)));
    Metrics.set_gauge i.inflight_gauge (float_of_int (Atomic.get d.inflight));
    Metrics.set_gauge i.ingest_queue_depth (float_of_int lanes);
    Metrics.set_gauge i.sessions_failed (float_of_int failed);
    (* A young handler thread reads zeroed quick_stat counters until it
       has been through a minor collection; force one (cheap, bounded by
       the minor heap) so the gauges are real. *)
    Gc.minor ();
    let st = Gc.quick_stat () in
    Metrics.set_gauge i.gc_heap_words (float_of_int st.Gc.heap_words);
    Metrics.set_gauge i.gc_minor_words st.Gc.minor_words;
    Metrics.set_gauge i.gc_major_words st.Gc.major_words;
    Metrics.set_gauge i.gc_compactions (float_of_int st.Gc.compactions));
  {
    status = 200;
    content_type = "text/plain; version=0.0.4";
    headers = [];
    body = Fixed (Metrics.to_prometheus ());
  }

let handle_create d ~request ~id:rid (r : Http.request) =
  let result =
    let* body = parse_body r in
    let* schema = field "schema" body in
    let* schema_name = string_field "name" schema in
    let* attributes = field "attributes" schema in
    let* attributes =
      match attributes with
      | Json.List l ->
        map_m
          (function
            | Json.String a -> Ok a
            | _ ->
              Error
                (Dq_error.Invalid_input
                   "field \"attributes\": expected strings"))
          l
      | _ ->
        Error (Dq_error.Invalid_input "field \"attributes\": expected a list")
    in
    let* rules = string_field "rules" body in
    (* l-inc is the default session engine: its linear tuple ordering
       makes batch-split ingest equal one-shot ingest (the determinism
       property the test suite checks). *)
    let* engine = string_field ~default:"l-inc" "engine" body in
    let* force = bool_field ~default:false "force" body in
    let* s =
      Mutex.protect d.registry (fun () ->
          let id = Printf.sprintf "s%d" d.next_id in
          let* s =
            Session.create ~id ~schema_name ~attributes ~rules ~engine ~force ()
          in
          d.next_id <- d.next_id + 1;
          Hashtbl.replace d.sessions id (Live s);
          Ok s)
    in
    Session.with_lock s (fun () -> save_session d s);
    Ok s
  in
  match result with
  | Error e -> err_response ~request ~id:rid e
  | Ok s ->
    Log.info "session.create" (fun () ->
        [
          ("session", Json.String s.Session.id);
          ("engine", Json.String s.Session.engine);
        ]
        @ match rid with None -> [] | Some i -> [ ("id", Json.String i) ]);
    ok_response ~request ~id:rid ~status:201
      (Session.with_lock s (fun () -> session_status d s))

(* Listing snapshots the registry under its lock but reads each
   session's status outside it — taking every session lock while
   holding the registry lock would stall creates and lookups behind
   the slowest ingest. *)
let handle_list d ~request ~id =
  let entries =
    Mutex.protect d.registry (fun () -> List.of_seq (Hashtbl.to_seq d.sessions))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let statuses =
    List.map
      (fun (sid, entry) ->
        match entry with
        | Live s -> Session.with_lock s (fun () -> session_status d s)
        | Evicted ->
          Json.Obj
            [ ("id", Json.String sid); ("state", Json.String "evicted") ])
      entries
  in
  ok_response ~request ~id (Json.Obj [ ("sessions", Json.List statuses) ])

let handle_status d ~request ~id sid =
  match
    with_session d sid (fun s ->
        Ok (Session.with_lock s (fun () -> session_status d s)))
  with
  | Error e -> err_response ~request ~id e
  | Ok status -> ok_response ~request ~id status

let handle_delete d ~request ~id sid =
  let result =
    Mutex.protect d.registry (fun () ->
        match Hashtbl.find_opt d.sessions sid with
        | None -> Error (Dq_error.No_such_session sid)
        | Some _ ->
          Hashtbl.remove d.sessions sid;
          (match d.state_dir with
          | Some dir -> Store.delete ~dir sid
          | None -> ());
          Ok ())
  in
  match result with
  | Error e -> err_response ~request ~id e
  | Ok () ->
    ok_response ~request ~id (Json.Obj [ ("deleted", Json.String sid) ])

(* Run one engine job: on a worker domain when the daemon has ingest
   workers (real cross-session parallelism — handler systhreads share
   the runtime lock), inline otherwise. *)
let exec_job d f =
  match d.workers with Some w -> Workers.exec w f | None -> f ()

(* Breaker bookkeeping around one engine invocation; caller holds the
   session lock.  Only infrastructure failures count as engine faults:
   injected faults and internal errors, not client mistakes or
   deadline cuts. *)
let note_engine_result d (s : Session.t) = function
  | Ok _ -> Session.breaker_note_success s
  | Error (Dq_error.Fault_injected _ | Dq_error.Internal _) ->
    if Session.breaker_trip ~threshold:d.limits.breaker_threshold s then begin
      (match d.instruments with
      | None -> ()
      | Some _ -> Metrics.incr (Metrics.counter "serve.breaker_opened"));
      Log.warn "session.breaker" (fun () ->
          [
            ("session", Json.String s.Session.id);
            ("faults", Json.Int s.Session.engine_faults);
          ])
    end
  | Error _ -> ()

(* Admission check, deliberately lockless: the session lock is held for
   the whole engine job, and blocking on it here would serialize
   admission behind running work (a full lane could never shed fast and
   a quarantined session could never fail fast).  The flag is a mutable
   bool written under the lock; a torn-in-time read at worst admits one
   request that then records its own fault. *)
let check_breaker (s : Session.t) =
  if Session.breaker_ok s then Ok ()
  else
    Error
      (Dq_error.Breaker_open
         { session = s.Session.id; faults = s.Session.engine_faults })

(* The two mutating endpoints share this shape: queue the job on the
   session's FIFO lane (shedding at [queue_depth]), run the engine under
   the session lock on a worker domain, checkpoint, answer. *)
let run_engine_job d (s : Session.t) job =
  match
    Session.with_lane ~depth:d.limits.queue_depth s (fun () ->
        exec_job d (fun () ->
            Session.with_lock s (fun () ->
                let res =
                  try
                    Fault.hit "serve.ingest";
                    job ()
                  with Fault.Injected site ->
                    Error (Dq_error.Fault_injected site)
                in
                note_engine_result d s res;
                let* payload = res in
                save_session d s;
                Ok payload)))
  with
  | None ->
    Error
      (Dq_error.Queue_full
         { session = s.Session.id; depth = d.limits.queue_depth })
  | Some r -> r

let handle_ingest d ~request ~id:rid (r : Http.request) sid =
  let result =
    with_session d sid (fun s ->
        let* () = check_breaker s in
        let* deadline = deadline_of_request r in
        let* body = parse_body r in
        let* rows = field "tuples" body in
        let* rows =
          match rows with
          | Json.List l -> map_m row_of_json l
          | _ ->
            Error (Dq_error.Invalid_input "field \"tuples\": expected a list")
        in
        (match d.instruments with
        | Some i ->
          Metrics.observe i.ingest_batch (float_of_int (List.length rows))
        | None -> ());
        run_engine_job d s (fun () ->
            let* outcomes, stats, report =
              Session.ingest ?pool:d.pool ~deadline ?request_id:rid s rows
            in
            Ok
              (Json.Obj
                 [
                   ("session", Json.String sid);
                   ("batch", Json.Int s.Session.batches);
                   ("ingested", Json.Int (List.length rows));
                   ( "outcomes",
                     Json.List
                       (List.map (outcome_json s.Session.schema) outcomes) );
                   ("stats", Json.String stats);
                   ("engine_report", Report.stable_json report);
                 ])))
  in
  match result with
  | Error (Dq_error.Queue_full _ as e) ->
    shed d "queue_full";
    err_response ~headers:[ ("retry-after", "1") ] ~request ~id:rid e
  | Error e -> err_response ~request ~id:rid e
  | Ok report -> ok_response ~request ~id:rid report

let handle_relation d ~request ~id sid =
  match
    with_session d sid (fun s ->
        (* Snapshot under the lock, stream outside it. *)
        Ok (Session.with_lock s (fun () -> Csv.save_string s.Session.relation)))
  with
  | Error e -> err_response ~request ~id e
  | Ok csv ->
    {
      status = 200;
      content_type = "text/csv";
      headers = [];
      body =
        Stream
          (fun write ->
            let chunk = 64 * 1024 in
            let n = String.length csv in
            let rec go off =
              if off < n then begin
                write (String.sub csv off (min chunk (n - off)));
                go (off + chunk)
              end
            in
            go 0);
    }

let handle_quarantine d ~request ~id sid =
  match
    with_session d sid (fun s ->
        Ok
          (Session.with_lock s (fun () ->
               Json.Obj
                 [
                   ("session", Json.String sid);
                   ( "entries",
                     Json.List
                       (List.map
                          (quarantined_json s.Session.schema)
                          s.Session.quarantine) );
                 ])))
  with
  | Error e -> err_response ~request ~id e
  | Ok body -> ok_response ~request ~id body

let handle_resolve d ~request ~id:rid (r : Http.request) sid tid_str =
  let result =
    with_session d sid (fun s ->
        let* () = check_breaker s in
        let* tid =
          match int_of_string_opt tid_str with
          | Some t -> Ok t
          | None ->
            Error (Dq_error.Invalid_input (Printf.sprintf "bad tid %S" tid_str))
        in
        let* deadline = deadline_of_request r in
        let* body = parse_body r in
        let* resolution =
          match (Json.member "action" body, Json.member "values" body) with
          | Some (Json.String "discard"), None -> Ok Session.Discard
          | (None | Some (Json.String "replace")), Some (Json.List l) ->
            let* values = values_of_json l in
            let* weights = weights_of_json (Json.member "weights" body) in
            Ok (Session.Replace (values, weights))
          | _ ->
            Error
              (Dq_error.Invalid_input
                 "resolve body must be {\"action\": \"discard\"} or \
                  {\"values\": [...]}")
        in
        run_engine_job d s (fun () ->
            let* outcome =
              Session.resolve ?pool:d.pool ~deadline ?request_id:rid s tid
                resolution
            in
            Ok
              (Json.Obj
                 [
                   ("session", Json.String sid);
                   ("resolved", Json.Int tid);
                   ("outcome", outcome_json s.Session.schema outcome);
                 ])))
  in
  match result with
  | Error (Dq_error.Queue_full _ as e) ->
    shed d "queue_full";
    err_response ~headers:[ ("retry-after", "1") ] ~request ~id:rid e
  | Error e -> err_response ~request ~id:rid e
  | Ok report -> ok_response ~request ~id:rid report

(* Operator resume of a quarantined session: close the breaker, zero the
   fault count, answer with the (now active) status. *)
let handle_resume d ~request ~id:rid sid =
  match
    with_session d sid (fun s ->
        Ok
          (Session.with_lock s (fun () ->
               Session.breaker_reset s;
               session_status d s)))
  with
  | Error e -> err_response ~request ~id:rid e
  | Ok status ->
    Log.info "session.resume" (fun () ->
        [ ("session", Json.String sid) ]
        @ match rid with None -> [] | Some i -> [ ("id", Json.String i) ]);
    ok_response ~request ~id:rid status

(* ---- dispatch ------------------------------------------------------------ *)

(* The route template (what metrics and access-log lines are keyed by —
   a bounded label set, ids collapsed to [:id]) plus the session id the
   path names, if any. *)
let route_info (r : Http.request) =
  match (r.Http.meth, r.Http.path) with
  | "GET", [ "v1"; "health" ] -> ("GET /v1/health", None)
  | "GET", [ "v1"; "metrics" ] -> ("GET /v1/metrics", None)
  | "POST", [ "v1"; "sessions" ] -> ("POST /v1/sessions", None)
  | "GET", [ "v1"; "sessions" ] -> ("GET /v1/sessions", None)
  | "GET", [ "v1"; "sessions"; id ] -> ("GET /v1/sessions/:id", Some id)
  | "DELETE", [ "v1"; "sessions"; id ] -> ("DELETE /v1/sessions/:id", Some id)
  | "POST", [ "v1"; "sessions"; id; "tuples" ] ->
    ("POST /v1/sessions/:id/tuples", Some id)
  | "POST", [ "v1"; "sessions"; id; "resume" ] ->
    ("POST /v1/sessions/:id/resume", Some id)
  | "GET", [ "v1"; "sessions"; id; "relation" ] ->
    ("GET /v1/sessions/:id/relation", Some id)
  | "GET", [ "v1"; "sessions"; id; "quarantine" ] ->
    ("GET /v1/sessions/:id/quarantine", Some id)
  | "POST", [ "v1"; "sessions"; id; "quarantine"; _; "resolve" ] ->
    ("POST /v1/sessions/:id/quarantine/:tid/resolve", Some id)
  | _, _ -> ("(unmatched)", None)

let route d (r : Http.request) ~request ~id =
  match (r.Http.meth, r.Http.path) with
  | "GET", [ "v1"; "health" ] -> handle_health d ~request ~id
  | "GET", [ "v1"; "metrics" ] when d.instruments <> None -> handle_metrics d
  | "POST", [ "v1"; "sessions" ] -> handle_create d ~request ~id r
  | "GET", [ "v1"; "sessions" ] -> handle_list d ~request ~id
  | "GET", [ "v1"; "sessions"; sid ] -> handle_status d ~request ~id sid
  | "DELETE", [ "v1"; "sessions"; sid ] -> handle_delete d ~request ~id sid
  | "POST", [ "v1"; "sessions"; sid; "tuples" ] ->
    handle_ingest d ~request ~id r sid
  | "POST", [ "v1"; "sessions"; sid; "resume" ] ->
    handle_resume d ~request ~id sid
  | "GET", [ "v1"; "sessions"; sid; "relation" ] ->
    handle_relation d ~request ~id sid
  | "GET", [ "v1"; "sessions"; sid; "quarantine" ] ->
    handle_quarantine d ~request ~id sid
  | "POST", [ "v1"; "sessions"; sid; "quarantine"; tid; "resolve" ] ->
    handle_resolve d ~request ~id r sid tid
  | _, _ ->
    err_response ~status:404 ~request ~id
      (Dq_error.Invalid_input (Printf.sprintf "no such endpoint: %s" request))

(* Write the response, then account for it: the per-route request
   counter and latency histogram, one [http.access] log line carrying
   the request id, and the slow-request warning.  A peer that vanished
   mid-write still gets accounted (bytes reflect what was written
   before the pipe broke only approximately; we log the intended
   size). *)
let send_response d fd ~meth ~route ~session ~id ~keep_alive ~t0 resp =
  let headers =
    resp.headers
    @ match id with Some i -> [ ("x-request-id", i) ] | None -> []
  in
  let bytes =
    try
      match resp.body with
      | Fixed body ->
        Http.respond fd ~status:resp.status ~content_type:resp.content_type
          ~headers ~keep_alive body;
        String.length body
      | Stream produce ->
        Http.respond_stream fd ~status:resp.status
          ~content_type:resp.content_type ~headers ~keep_alive produce
    with Http.Closed -> 0
  in
  let dt = Unix.gettimeofday () -. t0 in
  (match d.instruments with
  | None -> ()
  | Some _ ->
    Metrics.incr
      (Metrics.counter
         ~labels:
           [ ("route", route); ("status", string_of_int resp.status) ]
         "serve.requests");
    Metrics.observe
      (Metrics.histogram ~labels:[ ("route", route) ] "serve.request_seconds")
      dt);
  let fields () =
    [
      ("method", Json.String meth);
      ("route", Json.String route);
      ("status", Json.Int resp.status);
      ("latency_s", Json.Float dt);
      ("bytes", Json.Int bytes);
    ]
    @ (match session with
      | Some s -> [ ("session", Json.String s) ]
      | None -> [])
    @ match id with Some i -> [ ("id", Json.String i) ] | None -> []
  in
  Log.info "http.access" fields;
  match d.telemetry.slow_request_s with
  | Some limit when dt > limit ->
    Log.warn "http.slow" (fun () ->
        fields () @ [ ("threshold_s", Json.Float limit) ])
  | _ -> ()

(* Serve one parsed request; the [bool] result is whether the connection
   survives for another request.  Admission control happens here, before
   any routing work: a draining daemon refuses everything (and closes),
   a daemon at its in-flight ceiling refuses mutating and read traffic
   but keeps the connection (health and metrics stay reachable so
   operators can watch an overloaded daemon). *)
let serve_request d fd ~keep_alive ~last_id (r : Http.request) =
  let request = request_name r in
  let route_tmpl, session = route_info r in
  let id = request_id_of d r in
  (match id with Some _ -> last_id := id | None -> ());
  let t0 = Unix.gettimeofday () in
  if d.state <> Running then begin
    shed d "draining";
    send_response d fd ~meth:r.Http.meth ~route:route_tmpl ~session ~id
      ~keep_alive:false ~t0
      (err_response ~request ~id
         (Dq_error.Unavailable "draining: daemon is shutting down"));
    false
  end
  else begin
    let exempt =
      route_tmpl = "GET /v1/health" || route_tmpl = "GET /v1/metrics"
    in
    let cur = Atomic.fetch_and_add d.inflight 1 in
    Fun.protect
      ~finally:(fun () -> Atomic.decr d.inflight)
      (fun () ->
        if
          d.limits.max_inflight > 0
          && (not exempt)
          && cur >= d.limits.max_inflight
        then begin
          shed d "inflight";
          send_response d fd ~meth:r.Http.meth ~route:route_tmpl ~session ~id
            ~keep_alive ~t0
            (err_response ~headers:[ ("retry-after", "1") ] ~request ~id
               (Dq_error.Unavailable
                  "at capacity: too many requests in flight"));
          keep_alive
        end
        else begin
          let resp =
            Trace.span ~cat:"serve"
              ~args:(fun () ->
                ("route", Json.String route_tmpl)
                :: (match id with
                   | Some i -> [ ("request_id", Json.String i) ]
                   | None -> []))
              "http.request"
              (fun () ->
                try route d r ~request ~id with
                | Deadline.Expired ->
                  err_response ~request ~id Dq_error.Deadline_exceeded
                | Fault.Injected site ->
                  err_response ~request ~id (Dq_error.Fault_injected site)
                | Sys_error msg -> err_response ~request ~id (Dq_error.Io msg)
                | Http.Closed ->
                  (* already half-written by a streaming handler's peer:
                     nothing more to send, but the request still gets
                     accounted *)
                  {
                    status = 499;
                    content_type = "text/plain";
                    headers = [];
                    body = Fixed "";
                  }
                | exn ->
                  err_response ~request ~id
                    (Dq_error.Internal (Printexc.to_string exn)))
          in
          send_response d fd ~meth:r.Http.meth ~route:route_tmpl ~session ~id
            ~keep_alive ~t0 resp;
          keep_alive
        end)
  end

let conn_forget d tok =
  Mutex.protect d.cm (fun () -> Hashtbl.remove d.conns tok)

(* One connection: read requests until the peer closes, a framing error
   answers 4xx, keep-alive is off, or the idle timeout fires.  The
   catch-all is deliberate — a handler bug must cost one connection and
   one [http.error] line, never the daemon. *)
let handle_connection d tok fd =
  let last_id = ref None in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      conn_forget d tok)
    (fun () ->
      try
        Fault.hit "serve.accept";
        let rd = Http.reader fd in
        let read_timeout =
          if d.limits.read_timeout_s > 0. then Some d.limits.read_timeout_s
          else None
        in
        let rec loop ~first =
          let idle_timeout =
            if first then read_timeout else Some d.limits.idle_timeout_s
          in
          match Http.read_request ?idle_timeout ?read_timeout rd with
          | Ok None -> ()
          | Ok (Some r) ->
            let want_keep =
              d.limits.keep_alive
              && (match Http.header r "connection" with
                 | Some c ->
                   String.lowercase_ascii (String.trim c) <> "close"
                 | None -> true)
            in
            if serve_request d fd ~keep_alive:want_keep ~last_id r then
              loop ~first:false
          | Error fe ->
            let t0 = Unix.gettimeofday () in
            send_response d fd ~meth:"-" ~route:"(malformed)" ~session:None
              ~id:None ~keep_alive:false ~t0
              (err_response ~status:fe.Http.status ~request:"(malformed)"
                 ~id:None
                 (Dq_error.Invalid_input fe.Http.reason))
        in
        loop ~first:true
      with
      | Http.Closed -> ()
      | exn ->
        Log.error "http.error" (fun () ->
            ("error", Json.String (Printexc.to_string exn))
            :: (match !last_id with
               | Some i -> [ ("id", Json.String i) ]
               | None -> [])))

(* ---- lifecycle ----------------------------------------------------------- *)

(* Refuse a connection past [max_connections] without spawning a
   handler: best-effort 503 (bounded by a one-second send timeout so a
   non-reading peer cannot stall the acceptor), then close. *)
let shed_connection d fd =
  shed d "connections";
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  (try
     Http.respond fd ~status:503
       (Json.to_string
          (Envelope.error ~request:"(connection)"
             (Dq_error.to_json (Dq_error.Unavailable "connection limit reached"))))
   with Http.Closed | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop d =
  let rec go () =
    match Unix.accept d.sock with
    | fd, _ ->
      let admitted =
        d.limits.max_connections = 0
        || Mutex.protect d.cm (fun () -> Hashtbl.length d.conns)
           < d.limits.max_connections
      in
      if not admitted then shed_connection d fd
      else begin
        let tok, conn =
          Mutex.protect d.cm (fun () ->
              let tok = d.next_tok in
              d.next_tok <- tok + 1;
              let c = { cfd = fd; thread = None } in
              Hashtbl.replace d.conns tok c;
              (tok, c))
        in
        let th = Thread.create (handle_connection d tok) fd in
        Mutex.protect d.cm (fun () -> conn.thread <- Some th)
      end;
      go ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      () (* socket closed by [stop] *)
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> go ()
  in
  go ()

(* ---- idle sweeper --------------------------------------------------------- *)

(* Checkpoint-and-drop sessions idle past [evict_idle_s].  A session is
   evictable only when nothing references it: no pins, an empty lane, an
   uncontended lock, and a closed breaker (a quarantined session stays
   resident so its [engine_failed] state remains operator-visible). *)
let sweep_once d =
  let evict = d.limits.evict_idle_s in
  let now = Unix.gettimeofday () in
  let stale =
    Mutex.protect d.registry (fun () ->
        Hashtbl.to_seq d.sessions
        |> Seq.filter_map (fun (sid, entry) ->
               match entry with
               | Live s
                 when s.Session.pins = 0
                      && (not s.Session.breaker_open)
                      && now -. s.Session.last_touch >= evict ->
                 Some (sid, s)
               | _ -> None)
        |> List.of_seq)
  in
  List.iter
    (fun (sid, (s : Session.t)) ->
      if Mutex.try_lock s.Session.lock then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock s.Session.lock)
          (fun () ->
            if Session.lane_depth s = 0 then begin
              (match d.state_dir with
              | Some dir -> ignore (Store.save ~dir s)
              | None -> ());
              let evicted =
                Mutex.protect d.registry (fun () ->
                    match Hashtbl.find_opt d.sessions sid with
                    | Some (Live s') when s' == s && s.Session.pins = 0 ->
                      Hashtbl.replace d.sessions sid Evicted;
                      true
                    | _ -> false)
              in
              if evicted then
                Log.info "session.evict" (fun () ->
                    [ ("session", Json.String sid) ])
            end))
    stale

let sweeper_loop d =
  let tick = Stdlib.min 0.5 (Stdlib.max 0.05 (d.limits.evict_idle_s /. 4.)) in
  let rec go () =
    if d.state = Running then begin
      Thread.delay tick;
      (if d.state = Running then
         try sweep_once d
         with exn ->
           Log.error "serve.sweep" (fun () ->
               [ ("error", Json.String (Printexc.to_string exn)) ]));
      go ()
    end
  in
  go ()

(* Resumed session files are named ID.json, ids are s<N>: continue the
   counter past the largest N on disk. *)
let next_id_after sessions =
  1
  + List.fold_left
      (fun acc (s : Session.t) ->
        match
          if String.length s.Session.id > 1 && s.Session.id.[0] = 's' then
            int_of_string_opt
              (String.sub s.Session.id 1 (String.length s.Session.id - 1))
          else None
        with
        | Some n -> max acc n
        | None -> acc)
      0 sessions

let validate_limits (config : config) =
  let l = config.limits in
  let nonneg name v =
    if v < 0 then
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "%s must be >= 0 (got %d)" name v))
    else Ok ()
  in
  let nonnegf name v =
    if v < 0. then
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "%s must be >= 0 (got %g)" name v))
    else Ok ()
  in
  let* () = nonneg "max-connections" l.max_connections in
  let* () = nonneg "max-inflight" l.max_inflight in
  let* () = nonneg "queue-depth" l.queue_depth in
  let* () = nonneg "ingest-workers" l.ingest_workers in
  let* () = nonneg "breaker-threshold" l.breaker_threshold in
  let* () = nonnegf "idle-timeout" l.idle_timeout_s in
  let* () = nonnegf "read-timeout" l.read_timeout_s in
  let* () = nonnegf "evict-idle" l.evict_idle_s in
  let* () = nonnegf "drain-timeout" l.drain_timeout_s in
  if l.evict_idle_s > 0. && config.state_dir = None then
    Error
      (Dq_error.Invalid_input
         "idle eviction requires a state directory (--state-dir)")
  else Ok ()

let start config =
  (* A peer that disappears mid-response must surface as EPIPE, not kill
     the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let* () = validate_limits config in
  let* loaded =
    match (config.resume, config.state_dir) with
    | true, None ->
      Error (Dq_error.Invalid_input "resume requires a state directory")
    | true, Some dir -> (
      match Store.load_dir dir with
      | Ok pairs -> Ok (List.map snd pairs)
      | Error msg -> Error (Dq_error.Io (dir ^ ": " ^ msg)))
    | false, _ -> Ok []
  in
  let* pool =
    if config.jobs < 1 then
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "jobs must be at least 1 (got %d)" config.jobs))
    else if config.jobs = 1 then Ok None
    else Ok (Some (Pool.create ~jobs:config.jobs))
  in
  let workers =
    if config.limits.ingest_workers > 0 then
      Some (Workers.create ~workers:config.limits.ingest_workers)
    else None
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
    Unix.listen sock 64;
    Unix.getsockname sock
  with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Option.iter Pool.shutdown pool;
    Option.iter Workers.shutdown workers;
    Error
      (Dq_error.Io
         (Printf.sprintf "cannot listen on 127.0.0.1:%d: %s" config.port
            (Unix.error_message err)))
  | addr ->
    let bound_port =
      match addr with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> 0
    in
    let instruments =
      if config.telemetry.metrics then begin
        Metrics.set_enabled true;
        Some (register_instruments ())
      end
      else None
    in
    let started = Unix.gettimeofday () in
    let d =
      {
        sock;
        bound_port;
        state_dir = config.state_dir;
        pool;
        workers;
        limits = config.limits;
        sessions = Hashtbl.create 16;
        registry = Mutex.create ();
        reload = Mutex.create ();
        telemetry = config.telemetry;
        instruments;
        started;
        id_prefix =
          Printf.sprintf "%04x%04x"
            (Unix.getpid () land 0xffff)
            (int_of_float (started *. 1000.) land 0xffff);
        req_counter = Atomic.make 1;
        next_id = next_id_after loaded;
        lifecycle = Mutex.create ();
        state = Running;
        cm = Mutex.create ();
        conns = Hashtbl.create 64;
        next_tok = 0;
        inflight = Atomic.make 0;
        acceptor = None;
        sweeper = None;
      }
    in
    List.iter
      (fun (s : Session.t) -> Hashtbl.replace d.sessions s.Session.id (Live s))
      loaded;
    Log.info "serve.start" (fun () ->
        [
          ("port", Json.Int bound_port);
          ( "state_dir",
            match config.state_dir with
            | Some dir -> Json.String dir
            | None -> Json.Null );
          ("jobs", Json.Int config.jobs);
          ("resumed_sessions", Json.Int (List.length loaded));
          ("metrics", Json.Bool config.telemetry.metrics);
        ]);
    d.acceptor <- Some (Thread.create accept_loop d);
    if config.limits.evict_idle_s > 0. then
      d.sweeper <- Some (Thread.create sweeper_loop d);
    Ok d

let wait d = match d.acceptor with Some t -> Thread.join t | None -> ()

(* Graceful drain.  Flip to [Draining] (new requests answer 503 and
   close), stop accepting, then wait — bounded by [drain_timeout_s] —
   for in-flight and lane-queued work to finish; stragglers get their
   sockets force-closed.  Only after the last handler thread is gone are
   the pools shut down (a handler mid-[Pool.run] must never race
   [Pool.shutdown]) and the sessions given a final checkpoint. *)
let stop d =
  let proceed =
    Mutex.protect d.lifecycle (fun () ->
        match d.state with
        | Running ->
          d.state <- Draining;
          true
        | Draining | Stopped -> false)
  in
  if proceed then begin
    let t0 = Unix.gettimeofday () in
    let conn_count () =
      Mutex.protect d.cm (fun () -> Hashtbl.length d.conns)
    in
    let snapshot =
      Mutex.protect d.cm (fun () -> List.of_seq (Hashtbl.to_seq d.conns))
    in
    Log.info "serve.drain" (fun () ->
        [
          ("connections", Json.Int (List.length snapshot));
          ("inflight", Json.Int (Atomic.get d.inflight));
        ]);
    (* Closing an fd does not wake a thread already blocked in accept(2);
       shutdown does (the accept fails with EINVAL). *)
    (try Unix.shutdown d.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close d.sock with Unix.Unix_error _ -> ());
    (match d.acceptor with Some t -> Thread.join t | None -> ());
    d.acceptor <- None;
    (match d.sweeper with Some t -> Thread.join t | None -> ());
    d.sweeper <- None;
    let deadline = t0 +. Stdlib.max 0.05 d.limits.drain_timeout_s in
    while conn_count () > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    let lingering =
      Mutex.protect d.cm (fun () -> List.of_seq (Hashtbl.to_seq_values d.conns))
    in
    if lingering <> [] then begin
      Log.warn "serve.drain.force" (fun () ->
          [ ("connections", Json.Int (List.length lingering)) ]);
      List.iter
        (fun c ->
          try Unix.shutdown c.cfd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        lingering;
      let grace = Unix.gettimeofday () +. 1.0 in
      while conn_count () > 0 && Unix.gettimeofday () < grace do
        Thread.delay 0.01
      done
    end;
    let leaked = conn_count () in
    if leaked > 0 then
      Log.warn "serve.drain.leak" (fun () ->
          [ ("connections", Json.Int leaked) ]);
    (* Join every handler thread that has left the connection table —
       it is at (or within microseconds of) exit, so each join is
       bounded; threads still in the table after the force-close grace
       are leaked deliberately rather than blocking shutdown. *)
    let gone =
      let live =
        Mutex.protect d.cm (fun () ->
            List.of_seq (Hashtbl.to_seq_keys d.conns))
      in
      List.filter (fun (tok, _) -> not (List.mem tok live)) snapshot
    in
    List.iter
      (fun (_, c) ->
        match c.thread with Some th -> Thread.join th | None -> ())
      gone;
    (* Final checkpoint: persist any session whose lock is free (busy
       ones — leaked handlers — already checkpoint per mutation). *)
    (match d.state_dir with
    | None -> ()
    | Some dir ->
      let live =
        Mutex.protect d.registry (fun () ->
            Hashtbl.to_seq_values d.sessions
            |> Seq.filter_map (function Live s -> Some s | Evicted -> None)
            |> List.of_seq)
      in
      List.iter
        (fun (s : Session.t) ->
          if Mutex.try_lock s.Session.lock then
            Fun.protect
              ~finally:(fun () -> Mutex.unlock s.Session.lock)
              (fun () -> ignore (Store.save ~dir s)))
        live);
    Option.iter Pool.shutdown d.pool;
    Option.iter Workers.shutdown d.workers;
    let drain_s = Unix.gettimeofday () -. t0 in
    (match d.instruments with
    | Some i -> Metrics.observe i.drain_seconds drain_s
    | None -> ());
    Mutex.protect d.lifecycle (fun () -> d.state <- Stopped);
    Log.info "serve.stop" (fun () ->
        [ ("port", Json.Int d.bound_port); ("drain_s", Json.Float drain_s) ])
  end
