open Dq_relation
module Json = Dq_obs.Json
module Envelope = Dq_obs.Envelope
module Report = Dq_obs.Report
module Deadline = Dq_fault.Deadline
module Pool = Dq_parallel.Pool
module Engine = Dq_engine.Engine

let ( let* ) = Result.bind

type config = {
  port : int;
  state_dir : string option;
  jobs : int;
  resume : bool;
}

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  state_dir : string option;
  pool : Pool.t option;
  sessions : (string, Session.t) Hashtbl.t;
  registry : Mutex.t;  (** guards [sessions] and [next_id] *)
  ingest_queue : Mutex.t;
      (** the in-process ingest queue: engine invocations from all
          sessions drain through this one lock, in arrival order *)
  mutable next_id : int;
  mutable stopped : bool;
  mutable acceptor : Thread.t option;
}

let port t = t.bound_port

let status_of_error = function
  | Dq_error.No_such_session _ -> 404
  | Dq_error.Parse _ | Dq_error.Invalid_input _ | Dq_error.Invalid_config _
  | Dq_error.Would_overwrite _ | Dq_error.Unknown_engine _ ->
    400
  | Dq_error.Lint_gated _ | Dq_error.Analyze_gated _ | Dq_error.Unsatisfiable
  | Dq_error.Engine_unsupported _ ->
    422
  | Dq_error.Deadline_exceeded -> 504
  | Dq_error.Io _ | Dq_error.Fault_injected _ | Dq_error.Internal _ -> 500

(* The envelope's [request] field: verb plus canonical path (query
   dropped), e.g. ["POST /v1/sessions/s1/tuples"]. *)
let request_name (r : Http.request) =
  r.Http.meth ^ " /" ^ String.concat "/" r.Http.path

let respond_ok fd ~request ?(status = 200) report =
  Http.respond fd ~status
    (Json.to_string
       (Envelope.make ~request ~ok:true ~report ~diagnostics:[]))

let respond_err fd ~request e =
  Http.respond fd ~status:(status_of_error e)
    (Json.to_string (Envelope.error ~request (Dq_error.to_json e)))

(* ---- request decoding --------------------------------------------------- *)

let parse_body (r : Http.request) =
  match Json.parse r.Http.body with
  | Ok j -> Ok j
  | Error msg -> Error (Dq_error.Invalid_input ("request body: " ^ msg))

let field ?default name j =
  match (Json.member name j, default) with
  | Some v, _ -> Ok v
  | None, Some d -> Ok d
  | None, None ->
    Error (Dq_error.Invalid_input (Printf.sprintf "missing field %S" name))

let string_field ?default name j =
  let* v = field ?default:(Option.map (fun s -> Json.String s) default) name j in
  match v with
  | Json.String s -> Ok s
  | _ ->
    Error (Dq_error.Invalid_input (Printf.sprintf "field %S: expected a string" name))

let bool_field ~default name j =
  match Json.member name j with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ ->
    Error
      (Dq_error.Invalid_input (Printf.sprintf "field %S: expected a boolean" name))

let map_m f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

(* A relation value in a request body: a plain JSON scalar. *)
let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Int n -> Ok (Value.Int n)
  | Json.Float f -> Ok (Value.Float f)
  | Json.String s -> Ok (Value.String s)
  | j ->
    Error
      (Dq_error.Invalid_input
         ("tuple values must be JSON scalars, got "
         ^ String.trim (Json.to_string ~minify:true j)))

let values_of_json l =
  let* vs = map_m value_of_json l in
  Ok (Array.of_list vs)

let weights_of_json j =
  match j with
  | None -> Ok None
  | Some (Json.List l) ->
    let* ws =
      map_m
        (function
          | Json.Int n -> Ok (float_of_int n)
          | Json.Float f -> Ok f
          | _ -> Error (Dq_error.Invalid_input "weights must be numbers"))
        l
    in
    Ok (Some (Array.of_list ws))
  | Some _ -> Error (Dq_error.Invalid_input "field \"weights\": expected a list")

(* One submitted tuple: either a bare array of values, or an object
   [{"values": [...], "weights": [...]}] carrying per-attribute
   confidence weights (Section 3.2). *)
let row_of_json = function
  | Json.List l ->
    let* values = values_of_json l in
    Ok (values, None)
  | Json.Obj _ as j ->
    let* values = field "values" j in
    let* values =
      match values with
      | Json.List l -> values_of_json l
      | _ -> Error (Dq_error.Invalid_input "field \"values\": expected a list")
    in
    let* weights = weights_of_json (Json.member "weights" j) in
    Ok (values, weights)
  | _ ->
    Error
      (Dq_error.Invalid_input
         "each tuple must be a list of values or {\"values\": ..., \
          \"weights\": ...}")

let deadline_of_request (r : Http.request) =
  match Http.header r "x-deadline-seconds" with
  | None -> Ok Deadline.never
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some secs when secs >= 0. -> Ok (Deadline.after secs)
    | _ ->
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "x-deadline-seconds: bad value %S" s)))

(* ---- response fragments -------------------------------------------------- *)

let session_status (s : Session.t) =
  Json.Obj
    [
      ("id", Json.String s.Session.id);
      ("engine", Json.String s.Session.engine);
      ( "schema",
        Json.Obj
          [
            ("name", Json.String (Schema.name s.Session.schema));
            ( "attributes",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun a -> Json.String a)
                      (Schema.attributes s.Session.schema))) );
          ] );
      ("tuples", Json.Int (Relation.cardinality s.Session.relation));
      ("next_tid", Json.Int s.Session.next_tid);
      ("batches", Json.Int s.Session.batches);
      ("repaired", Json.Int s.Session.repaired);
      ("quarantine", Json.Int (List.length s.Session.quarantine));
      ("quarantined_total", Json.Int s.Session.quarantined_total);
      ("resolved", Json.Int s.Session.resolved);
    ]

let outcome_json schema = function
  | Session.Clean tid ->
    Json.Obj [ ("tid", Json.Int tid); ("status", Json.String "clean") ]
  | Session.Repaired (tid, cells) ->
    Json.Obj
      [
        ("tid", Json.Int tid);
        ("status", Json.String "repaired");
        ("cells_changed", Json.Int cells);
      ]
  | Session.Quarantined (tid, attrs) ->
    Json.Obj
      [
        ("tid", Json.Int tid);
        ("status", Json.String "quarantined");
        ( "attrs",
          Json.List
            (List.map (fun p -> Json.String (Schema.attribute schema p)) attrs)
        );
      ]

let quarantined_json schema (q : Session.quarantined) =
  Json.Obj
    [
      ("tid", Json.Int (Tuple.tid q.Session.tuple));
      ("batch", Json.Int q.Session.batch);
      ( "attrs",
        Json.List
          (List.map
             (fun p -> Json.String (Schema.attribute schema p))
             q.Session.attrs) );
      ( "values",
        Json.List
          (Array.to_list
             (Array.map Json.of_value (Tuple.values q.Session.tuple))) );
    ]

(* ---- session registry ---------------------------------------------------- *)

let find_session d id =
  Mutex.protect d.registry (fun () ->
      match Hashtbl.find_opt d.sessions id with
      | Some s -> Ok s
      | None -> Error (Dq_error.No_such_session id))

(* Checkpoint a committed mutation before the response goes out.  Caller
   holds the session lock, so the snapshot is the acknowledged state. *)
let save_session d s =
  match d.state_dir with
  | None -> ()
  | Some dir -> Store.save ~dir s

(* ---- handlers ------------------------------------------------------------ *)

let handle_health d fd ~request =
  let sessions = Mutex.protect d.registry (fun () -> Hashtbl.length d.sessions) in
  respond_ok fd ~request
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("sessions", Json.Int sessions);
         ( "engines",
           Json.List (List.map (fun n -> Json.String n) (Engine.names ())) );
       ])

let handle_create d fd ~request (r : Http.request) =
  let result =
    let* body = parse_body r in
    let* schema = field "schema" body in
    let* schema_name = string_field "name" schema in
    let* attributes = field "attributes" schema in
    let* attributes =
      match attributes with
      | Json.List l ->
        map_m
          (function
            | Json.String a -> Ok a
            | _ ->
              Error
                (Dq_error.Invalid_input
                   "field \"attributes\": expected strings"))
          l
      | _ ->
        Error (Dq_error.Invalid_input "field \"attributes\": expected a list")
    in
    let* rules = string_field "rules" body in
    (* l-inc is the default session engine: its linear tuple ordering
       makes batch-split ingest equal one-shot ingest (the determinism
       property the test suite checks). *)
    let* engine = string_field ~default:"l-inc" "engine" body in
    let* force = bool_field ~default:false "force" body in
    Mutex.protect d.registry (fun () ->
        let id = Printf.sprintf "s%d" d.next_id in
        let* s =
          Session.create ~id ~schema_name ~attributes ~rules ~engine ~force ()
        in
        d.next_id <- d.next_id + 1;
        Hashtbl.replace d.sessions id s;
        Session.with_lock s (fun () -> save_session d s);
        Ok s)
  in
  match result with
  | Error e -> respond_err fd ~request e
  | Ok s ->
    respond_ok fd ~request ~status:201
      (Session.with_lock s (fun () -> session_status s))

let handle_list d fd ~request =
  let statuses =
    Mutex.protect d.registry (fun () ->
        Hashtbl.to_seq_values d.sessions
        |> List.of_seq
        |> List.sort (fun (a : Session.t) b ->
               compare a.Session.id b.Session.id)
        |> List.map (fun s -> Session.with_lock s (fun () -> session_status s)))
  in
  respond_ok fd ~request (Json.Obj [ ("sessions", Json.List statuses) ])

let handle_status d fd ~request id =
  match find_session d id with
  | Error e -> respond_err fd ~request e
  | Ok s -> respond_ok fd ~request (Session.with_lock s (fun () -> session_status s))

let handle_delete d fd ~request id =
  let result =
    Mutex.protect d.registry (fun () ->
        match Hashtbl.find_opt d.sessions id with
        | None -> Error (Dq_error.No_such_session id)
        | Some _ ->
          Hashtbl.remove d.sessions id;
          (match d.state_dir with
          | Some dir -> Store.delete ~dir id
          | None -> ());
          Ok ())
  in
  match result with
  | Error e -> respond_err fd ~request e
  | Ok () ->
    respond_ok fd ~request (Json.Obj [ ("deleted", Json.String id) ])

let handle_ingest d fd ~request (r : Http.request) id =
  let result =
    let* s = find_session d id in
    let* deadline = deadline_of_request r in
    let* body = parse_body r in
    let* rows = field "tuples" body in
    let* rows =
      match rows with
      | Json.List l -> map_m row_of_json l
      | _ -> Error (Dq_error.Invalid_input "field \"tuples\": expected a list")
    in
    Session.with_lock s (fun () ->
        let* outcomes, stats, report =
          Mutex.protect d.ingest_queue (fun () ->
              Session.ingest ?pool:d.pool ~deadline s rows)
        in
        save_session d s;
        Ok
          (Json.Obj
             [
               ("session", Json.String id);
               ("batch", Json.Int s.Session.batches);
               ("ingested", Json.Int (List.length rows));
               ( "outcomes",
                 Json.List
                   (List.map (outcome_json s.Session.schema) outcomes) );
               ("stats", Json.String stats);
               ("engine_report", Report.stable_json report);
             ]))
  in
  match result with
  | Error e -> respond_err fd ~request e
  | Ok report -> respond_ok fd ~request report

let handle_relation d fd ~request id =
  match find_session d id with
  | Error e -> respond_err fd ~request e
  | Ok s ->
    (* Snapshot under the lock, stream outside it. *)
    let csv = Session.with_lock s (fun () -> Csv.save_string s.Session.relation) in
    ignore request;
    Http.respond_stream fd ~status:200 ~content_type:"text/csv" (fun write ->
        let chunk = 64 * 1024 in
        let n = String.length csv in
        let rec go off =
          if off < n then begin
            write (String.sub csv off (min chunk (n - off)));
            go (off + chunk)
          end
        in
        go 0)

let handle_quarantine d fd ~request id =
  match find_session d id with
  | Error e -> respond_err fd ~request e
  | Ok s ->
    respond_ok fd ~request
      (Session.with_lock s (fun () ->
           Json.Obj
             [
               ("session", Json.String id);
               ( "entries",
                 Json.List
                   (List.map
                      (quarantined_json s.Session.schema)
                      s.Session.quarantine) );
             ]))

let handle_resolve d fd ~request (r : Http.request) id tid_str =
  let result =
    let* s = find_session d id in
    let* tid =
      match int_of_string_opt tid_str with
      | Some t -> Ok t
      | None ->
        Error (Dq_error.Invalid_input (Printf.sprintf "bad tid %S" tid_str))
    in
    let* deadline = deadline_of_request r in
    let* body = parse_body r in
    let* resolution =
      match (Json.member "action" body, Json.member "values" body) with
      | Some (Json.String "discard"), None -> Ok Session.Discard
      | (None | Some (Json.String "replace")), Some (Json.List l) ->
        let* values = values_of_json l in
        let* weights = weights_of_json (Json.member "weights" body) in
        Ok (Session.Replace (values, weights))
      | _ ->
        Error
          (Dq_error.Invalid_input
             "resolve body must be {\"action\": \"discard\"} or {\"values\": \
              [...]}")
    in
    Session.with_lock s (fun () ->
        let* outcome =
          Mutex.protect d.ingest_queue (fun () ->
              Session.resolve ?pool:d.pool ~deadline s tid resolution)
        in
        save_session d s;
        Ok
          (Json.Obj
             [
               ("session", Json.String id);
               ("resolved", Json.Int tid);
               ("outcome", outcome_json s.Session.schema outcome);
             ]))
  in
  match result with
  | Error e -> respond_err fd ~request e
  | Ok report -> respond_ok fd ~request report

(* ---- dispatch ------------------------------------------------------------ *)

let route d fd (r : Http.request) =
  let request = request_name r in
  match (r.Http.meth, r.Http.path) with
  | "GET", [ "v1"; "health" ] -> handle_health d fd ~request
  | "POST", [ "v1"; "sessions" ] -> handle_create d fd ~request r
  | "GET", [ "v1"; "sessions" ] -> handle_list d fd ~request
  | "GET", [ "v1"; "sessions"; id ] -> handle_status d fd ~request id
  | "DELETE", [ "v1"; "sessions"; id ] -> handle_delete d fd ~request id
  | "POST", [ "v1"; "sessions"; id; "tuples" ] ->
    handle_ingest d fd ~request r id
  | "GET", [ "v1"; "sessions"; id; "relation" ] ->
    handle_relation d fd ~request id
  | "GET", [ "v1"; "sessions"; id; "quarantine" ] ->
    handle_quarantine d fd ~request id
  | "POST", [ "v1"; "sessions"; id; "quarantine"; tid; "resolve" ] ->
    handle_resolve d fd ~request r id tid
  | _, _ ->
    Http.respond fd ~status:404
      (Json.to_string
         (Envelope.error ~request
            (Dq_error.to_json
               (Dq_error.Invalid_input
                  (Printf.sprintf "no such endpoint: %s" request)))))

let handle_connection d fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        match Http.read_request fd with
        | Ok None -> ()
        | Ok (Some r) -> (
          try route d fd r with
          | Deadline.Expired ->
            respond_err fd ~request:(request_name r) Dq_error.Deadline_exceeded
          | Dq_fault.Fault.Injected site ->
            respond_err fd ~request:(request_name r)
              (Dq_error.Fault_injected site)
          | Sys_error msg ->
            respond_err fd ~request:(request_name r) (Dq_error.Io msg)
          | Http.Closed -> ()
          | exn ->
            respond_err fd ~request:(request_name r)
              (Dq_error.Internal (Printexc.to_string exn)))
        | Error msg ->
          Http.respond fd ~status:400
            (Json.to_string
               (Envelope.error ~request:"(malformed)"
                  (Dq_error.to_json (Dq_error.Invalid_input msg))))
      with Http.Closed -> ())

(* ---- lifecycle ----------------------------------------------------------- *)

let accept_loop d =
  let rec go () =
    match Unix.accept d.sock with
    | fd, _ ->
      ignore (Thread.create (handle_connection d) fd);
      go ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      () (* socket closed by [stop] *)
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> go ()
  in
  go ()

(* Resumed session files are named ID.json, ids are s<N>: continue the
   counter past the largest N on disk. *)
let next_id_after sessions =
  1
  + List.fold_left
      (fun acc (s : Session.t) ->
        match
          if String.length s.Session.id > 1 && s.Session.id.[0] = 's' then
            int_of_string_opt
              (String.sub s.Session.id 1 (String.length s.Session.id - 1))
          else None
        with
        | Some n -> max acc n
        | None -> acc)
      0 sessions

let start config =
  (* A peer that disappears mid-response must surface as EPIPE, not kill
     the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let* loaded =
    match (config.resume, config.state_dir) with
    | true, None ->
      Error (Dq_error.Invalid_input "resume requires a state directory")
    | true, Some dir -> (
      match Store.load_dir dir with
      | Ok pairs -> Ok (List.map snd pairs)
      | Error msg -> Error (Dq_error.Io (dir ^ ": " ^ msg)))
    | false, _ -> Ok []
  in
  let* pool =
    if config.jobs < 1 then
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "jobs must be at least 1 (got %d)" config.jobs))
    else if config.jobs = 1 then Ok None
    else Ok (Some (Pool.create ~jobs:config.jobs))
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
    Unix.listen sock 64;
    Unix.getsockname sock
  with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Option.iter Pool.shutdown pool;
    Error
      (Dq_error.Io
         (Printf.sprintf "cannot listen on 127.0.0.1:%d: %s" config.port
            (Unix.error_message err)))
  | addr ->
    let bound_port =
      match addr with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> 0
    in
    let d =
      {
        sock;
        bound_port;
        state_dir = config.state_dir;
        pool;
        sessions = Hashtbl.create 16;
        registry = Mutex.create ();
        ingest_queue = Mutex.create ();
        next_id = next_id_after loaded;
        stopped = false;
        acceptor = None;
      }
    in
    List.iter (fun (s : Session.t) -> Hashtbl.replace d.sessions s.Session.id s) loaded;
    d.acceptor <- Some (Thread.create accept_loop d);
    Ok d

let wait d = match d.acceptor with Some t -> Thread.join t | None -> ()

let stop d =
  if not d.stopped then begin
    d.stopped <- true;
    (* Closing an fd does not wake a thread already blocked in accept(2);
       shutdown does (the accept fails with EINVAL). *)
    (try Unix.shutdown d.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close d.sock with Unix.Unix_error _ -> ());
    wait d;
    Option.iter Pool.shutdown d.pool
  end
