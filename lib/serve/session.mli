(** One serve session: a clean relation kept consistent with a fixed
    ruleset Σ while tuple batches stream in.

    A session is created from a schema, a ruleset and an engine name
    (the engine must have [supports_ingest]); creation runs the same
    gates as the CLI — lint errors, the Σ-interaction termination
    verdict, satisfiability — so a session that exists is one whose
    ingest path is safe to run unattended.

    Ingest drains each batch through the engine's incremental repair
    ({!Dq_engine.Engine.ENGINE.ingest}, INCREPAIR's insertion mode
    underneath): tuples the repair could settle join the relation
    (possibly modified); tuples the repair could only settle by
    introducing nulls — the paper's "no certain value" outcome — are
    {e quarantined} instead: removed from the relation (deletions never
    introduce violations, Section 3.3) and held aside in submitted form
    for a later {!resolve}.  The batch as a whole still succeeds.

    All mutation happens under the session's lock via {!with_lock};
    the relation invariant between batches is [relation |= Σ]. *)

open Dq_relation
open Dq_cfd

type quarantined = {
  tuple : Tuple.t;  (** the tuple as submitted, tid already assigned *)
  attrs : int list;  (** positions the repair could only null, ascending *)
  batch : int;  (** 1-based ingest batch it arrived in *)
}

(* Mutable fields are protected by [lock]; hold it (via {!with_lock})
   around any read-modify-write, including {!Store.save}. *)
type t = {
  id : string;
  schema : Schema.t;
  rules : string;  (** ruleset source text, persisted verbatim *)
  sigma : Cfd.t array;
  engine : string;
  mutable relation : Relation.t;
  mutable next_tid : int;
  mutable quarantine : quarantined list;  (** oldest first *)
  mutable batches : int;  (** ingest batches committed *)
  mutable repaired : int;  (** ingested tuples the repair modified *)
  mutable quarantined_total : int;
  mutable resolved : int;  (** quarantine entries resolved (either way) *)
  lock : Mutex.t;
  lane_lock : Mutex.t;  (** guards the lane ticket counters *)
  lane_turn : Condition.t;
  mutable lane_next : int;  (** next lane ticket to hand out *)
  mutable lane_serving : int;  (** ticket currently allowed to run *)
  mutable last_touch : float;
      (** wall clock of the last request naming this session (daemon
          idle-eviction bookkeeping) *)
  mutable pins : int;
      (** handlers currently holding a reference (guarded by the
          daemon's registry lock; a pinned session is never evicted) *)
  mutable engine_faults : int;
      (** consecutive engine faults (breaker input; under [lock]) *)
  mutable breaker_open : bool;
      (** circuit breaker: when set, ingest/resolve are refused until
          an operator resumes the session (under [lock]) *)
}

val create :
  id:string ->
  schema_name:string ->
  attributes:string list ->
  rules:string ->
  engine:string ->
  ?force:bool ->
  unit ->
  (t, Dq_error.t) result
(** Gate and build a fresh session.  [force] (default false) skips the
    lint and termination gates, mirroring the CLI's [--force]. *)

val restore :
  id:string ->
  schema_name:string ->
  attributes:string list ->
  rules:string ->
  engine:string ->
  relation:Relation.t ->
  next_tid:int ->
  quarantine:quarantined list ->
  batches:int ->
  repaired:int ->
  quarantined_total:int ->
  resolved:int ->
  (t, Dq_error.t) result
(** Rebuild a session from checkpointed state ({!Store}).  Re-resolves
    the ruleset but skips the creation gates — they passed when the
    session was first created. *)

val with_lock : t -> (unit -> 'a) -> 'a

(** {1 Ingest lane}

    Each session owns a FIFO {e lane}: a ticket lock that orders the
    session's repair jobs (same-session batches commit in arrival
    order) while leaving other sessions free to repair concurrently —
    the replacement for the old daemon-wide ingest queue. *)

val lane_enter : ?depth:int -> t -> bool
(** Take a lane ticket and block until it is at the head.  With
    [depth > 0], returns [false] immediately — load shed, nothing
    taken — when the lane already holds [depth] jobs (running +
    queued); [depth = 0] (default) never sheds.  Every [true] must be
    paired with {!lane_exit}. *)

val lane_exit : t -> unit

val with_lane : ?depth:int -> t -> (unit -> 'a) -> 'a option
(** [lane_enter]/[lane_exit] bracket: [None] when the lane was full. *)

val lane_depth : t -> int
(** Jobs currently in the lane (running + queued). *)

(** {1 Overload bookkeeping}

    Breaker transitions happen under the session lock; {!touch} is a
    single mutable-field write (benign to race). *)

val touch : t -> unit
(** Stamp [last_touch] with the current wall clock. *)

val breaker_ok : t -> bool

val breaker_trip : threshold:int -> t -> bool
(** Record one consecutive engine fault; [true] when this fault just
    opened the breaker ([threshold = 0] disables the breaker — faults
    are counted but never open it). *)

val breaker_note_success : t -> unit
(** An engine invocation succeeded: reset the consecutive-fault count. *)

val breaker_reset : t -> unit
(** Operator resume: close the breaker and zero the fault count. *)

(** Per-tuple ingest outcome, in submission order. *)
type outcome =
  | Clean of int  (** tid; joined the relation unchanged *)
  | Repaired of int * int  (** tid, cells changed by the repair *)
  | Quarantined of int * int list  (** tid, nulled attribute positions *)

val ingest :
  ?pool:Dq_parallel.Pool.t ->
  ?deadline:Dq_fault.Deadline.t ->
  ?request_id:string ->
  t ->
  (Value.t array * float array option) list ->
  (outcome list * string * Dq_obs.Report.t, Dq_error.t) result
(** Assign fresh tids to a batch and repair it into the relation.
    Commits — relation swap, counters, quarantine — only on full
    success; a deadline cut ([degraded] report) commits nothing and
    returns [Deadline_exceeded].  The string is the engine's stats
    line.  [request_id] is threaded into the engine context so the
    engine's trace spans carry the originating request.  Caller must
    hold the lock. *)

type resolution =
  | Discard  (** drop the quarantined tuple for good *)
  | Replace of Value.t array * float array option
      (** re-ingest with corrected values under the same tid *)

val resolve :
  ?pool:Dq_parallel.Pool.t ->
  ?deadline:Dq_fault.Deadline.t ->
  ?request_id:string ->
  t ->
  int ->
  resolution ->
  (outcome, Dq_error.t) result
(** Settle one quarantined tuple by tid.  [Replace] values that would
    quarantine again are refused ([Invalid_input]) and the entry stays.
    An unknown tid is [Invalid_input].  Caller must hold the lock. *)

val find_quarantined : t -> int -> quarantined option
