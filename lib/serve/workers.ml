(* A small domain pool for whole ingest jobs.

   Connection handlers are systhreads, and systhreads within one domain
   share the runtime lock — two sessions repairing "concurrently" on
   handler threads still serialize their OCaml compute.  Real
   cross-session parallelism needs domains, so the daemon (when started
   with ingest workers) ships each lane job here and blocks the handler
   thread on the result.

   This pool is deliberately separate from Dq_parallel.Pool: engines
   chunk their scans through that pool, and its contract forbids
   submitting tasks from inside tasks — a whole ingest job (which calls
   into the engine) must therefore never run *on* it.  Jobs here are
   coarse (one per HTTP request), so a plain mutex-guarded queue is
   enough. *)

module Trace = Dq_obs.Trace

type job = unit -> unit

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let worker_loop t () =
  let rec next () =
    Mutex.lock t.lock;
    let rec wait () =
      if Queue.is_empty t.queue && not t.closed then begin
        Condition.wait t.nonempty t.lock;
        wait ()
      end
    in
    wait ();
    if Queue.is_empty t.queue then (
      Mutex.unlock t.lock (* closed and drained *))
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.lock;
      job ();
      next ()
    end
  in
  next ()

let create ~workers =
  if workers < 1 then
    invalid_arg (Printf.sprintf "Workers.create: workers = %d" workers);
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker_loop t));
  t

(* Run [f] on a worker domain and wait for its result; exceptions
   re-raise in the caller with their original backtrace.  On a closed
   pool the job runs inline — drain must never lose a request that was
   already admitted. *)
let exec t f =
  let ctx = Trace.current_context () in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let result = ref None in
  let job () =
    let r =
      Trace.with_context ctx (fun () ->
          try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    Mutex.lock m;
    result := Some r;
    Condition.signal cv;
    Mutex.unlock m
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    f ()
  end
  else begin
    Queue.add job t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock;
    Mutex.lock m;
    while !result = None do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    match Option.get !result with
    | Ok v -> v
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end

let shutdown t =
  let domains =
    Mutex.protect t.lock (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          Condition.broadcast t.nonempty;
          let ds = t.domains in
          t.domains <- [];
          ds
        end)
  in
  List.iter Domain.join domains
