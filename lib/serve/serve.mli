(** The streaming repair daemon behind [cfdclean serve].

    An HTTP/1.1 JSON API (one request per connection) over versioned
    envelopes ({!Dq_obs.Envelope}, [v = 2]).  Endpoints:

    - [GET /v1/health] — liveness, version, uptime, session count,
      checkpoint state-dir status, engine registry;
    - [GET /v1/metrics] — Prometheus text exposition (no envelope);
      only routed when the daemon was started with metrics on;
    - [POST /v1/sessions] — create a session from a schema, a ruleset
      and an ingest-capable engine (gated like the CLI: lint errors,
      termination verdict, satisfiability, engine fragment);
    - [GET /v1/sessions], [GET /v1/sessions/ID],
      [DELETE /v1/sessions/ID];
    - [POST /v1/sessions/ID/tuples] — ingest a batch; unrepairable
      tuples are quarantined, not failed (see {!Session});
    - [GET /v1/sessions/ID/relation] — the clean relation as chunked
      CSV;
    - [GET /v1/sessions/ID/quarantine],
      [POST /v1/sessions/ID/quarantine/TID/resolve].

    Engine invocations from all sessions drain through one in-process
    ingest queue (a daemon-wide lock), so concurrent batches serialize
    deterministically.  A per-request [x-deadline-seconds] header arms a
    cooperative {!Dq_fault.Deadline}; an expired one maps to HTTP 504
    with nothing committed.  With a state directory every committed
    mutation is checkpointed ({!Store}) {e before} the 200 goes out, so
    [kill -9] + restart with [resume] serves byte-identical relations. *)

val version : string
(** The version string /v1/health reports (keep in sync with the CLI's
    man-page version). *)

(** What the daemon observes about itself.  Structured logging is not in
    here: the daemon logs through {!Dq_obs.Log} unconditionally, and the
    process (the CLI's [serve] subcommand, or a test) decides whether a
    sink is installed.  With [metrics = false] and no log sink the
    daemon generates no request ids and its responses are byte-identical
    to the pre-telemetry wire format. *)
type telemetry = {
  metrics : bool;
      (** collect {!Dq_obs.Metrics} (request counters and latency
          histograms per route, session/quarantine/GC gauges, checkpoint
          and ingest histograms) and expose [GET /v1/metrics] in
          Prometheus text format.  Turning this on enables the
          process-wide metrics gate. *)
  slow_request_s : float option;
      (** warn-log any request slower than this many seconds *)
}

val default_telemetry : telemetry
(** Metrics on, no slow-request threshold. *)

val telemetry_off : telemetry
(** Everything off — the zero-overhead configuration (and what the
    byte-identity tests run under). *)

type config = {
  port : int;  (** 0 picks an ephemeral port (tests) *)
  state_dir : string option;  (** checkpoint directory; [None] = in-memory *)
  jobs : int;  (** worker pool size for the repair passes; 1 = sequential *)
  resume : bool;  (** load sessions back from [state_dir] on start *)
  telemetry : telemetry;
}

type t
(** A running daemon. *)

val start : config -> (t, Dq_error.t) result
(** Bind [127.0.0.1], load checkpointed sessions when [resume], and
    begin accepting in a background thread. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val wait : t -> unit
(** Block until the daemon is stopped. *)

val stop : t -> unit
(** Stop accepting, shut the pool down.  Idempotent. *)

val status_of_error : Dq_error.t -> int
(** The HTTP status a {!Dq_error.t} maps to (404 for
    [No_such_session], 400 for the input family, 422 for gated
    refusals, 504 for a deadline, 500 otherwise). *)
