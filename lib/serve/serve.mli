(** The streaming repair daemon behind [cfdclean serve].

    An HTTP/1.1 JSON API over versioned envelopes ({!Dq_obs.Envelope},
    [v = 2]).  Endpoints:

    - [GET /v1/health] — liveness, version, uptime, session count,
      checkpoint state-dir status, engine registry;
    - [GET /v1/metrics] — Prometheus text exposition (no envelope);
      only routed when the daemon was started with metrics on;
    - [POST /v1/sessions] — create a session from a schema, a ruleset
      and an ingest-capable engine (gated like the CLI: lint errors,
      termination verdict, satisfiability, engine fragment);
    - [GET /v1/sessions], [GET /v1/sessions/ID],
      [DELETE /v1/sessions/ID];
    - [POST /v1/sessions/ID/tuples] — ingest a batch; unrepairable
      tuples are quarantined, not failed (see {!Session});
    - [POST /v1/sessions/ID/resume] — close a session's circuit
      breaker after repeated engine faults quarantined it;
    - [GET /v1/sessions/ID/relation] — the clean relation as chunked
      CSV;
    - [GET /v1/sessions/ID/quarantine],
      [POST /v1/sessions/ID/quarantine/TID/resolve].

    Each session owns a FIFO ingest {e lane} (see {!Session}): batches
    for one session commit in arrival order while independent sessions
    repair concurrently — and, with [ingest_workers], in parallel on
    worker domains.  A per-request [x-deadline-seconds] header arms a
    cooperative {!Dq_fault.Deadline}; an expired one maps to HTTP 504
    with nothing committed.  With a state directory every committed
    mutation is checkpointed ({!Store}) {e before} the 200 goes out, so
    [kill -9] + restart with [resume] serves byte-identical relations.

    Overload behavior is governed by {!limits}: a full lane answers 429
    with [retry-after]; the in-flight and connection ceilings answer
    503 (health and metrics stay exempt so an overloaded daemon remains
    observable); {!stop} drains gracefully — in-flight and lane-queued
    work finishes, new requests get 503 + [connection: close] — bounded
    by [drain_timeout_s].  With {!default_limits} all of it is off and
    the daemon's wire behavior is byte-identical to the pre-limits
    daemon. *)

val version : string
(** The version string /v1/health reports (keep in sync with the CLI's
    man-page version). *)

(** What the daemon observes about itself.  Structured logging is not in
    here: the daemon logs through {!Dq_obs.Log} unconditionally, and the
    process (the CLI's [serve] subcommand, or a test) decides whether a
    sink is installed.  With [metrics = false] and no log sink the
    daemon generates no request ids and its responses are byte-identical
    to the pre-telemetry wire format. *)
type telemetry = {
  metrics : bool;
      (** collect {!Dq_obs.Metrics} (request counters and latency
          histograms per route, session/quarantine/GC gauges, checkpoint
          and ingest histograms) and expose [GET /v1/metrics] in
          Prometheus text format.  Turning this on enables the
          process-wide metrics gate. *)
  slow_request_s : float option;
      (** warn-log any request slower than this many seconds *)
}

val default_telemetry : telemetry
(** Metrics on, no slow-request threshold. *)

val telemetry_off : telemetry
(** Everything off — the zero-overhead configuration (and what the
    byte-identity tests run under). *)

(** Overload limits.  Every field's zero/false value means {e off}; with
    {!default_limits} the daemon behaves exactly like the pre-limits
    daemon (one request per connection, unbounded admission, no
    timeouts, no breaker, no eviction) and performs no extra syscalls
    on the request path. *)
type limits = {
  max_connections : int;
      (** refuse (503, no handler thread) connections past this many
          concurrently open ones; 0 = unbounded *)
  max_inflight : int;
      (** answer 503 past this many requests in flight; [/v1/health]
          and [/v1/metrics] are exempt; 0 = unbounded *)
  queue_depth : int;
      (** shed (429 + [retry-after]) ingest/resolve when the session's
          lane already holds this many jobs; 0 = unbounded *)
  ingest_workers : int;
      (** worker domains running whole ingest jobs, giving independent
          sessions CPU parallelism; 0 = run on the handler thread *)
  keep_alive : bool;
      (** HTTP/1.1 persistent connections (default: close after one
          response, the historical framing) *)
  idle_timeout_s : float;
      (** with [keep_alive], close a connection idle between requests
          this long *)
  read_timeout_s : float;
      (** bound every socket read within a request (slowloris defense:
          a stalled mid-request peer gets 408); 0 = no bound *)
  evict_idle_s : float;
      (** checkpoint and drop sessions idle this long (requires a state
          directory; the next request reloads transparently); 0 = never *)
  breaker_threshold : int;
      (** quarantine a session ([engine_failed], 503) after this many
          consecutive engine faults, until [POST .../resume]; 0 = off *)
  drain_timeout_s : float;
      (** {!stop}: bound on waiting for in-flight work before
          force-closing straggler connections *)
}

val default_limits : limits
(** Everything off; [idle_timeout_s = 5.] (used only with
    [keep_alive]), [drain_timeout_s = 30.]. *)

type config = {
  port : int;  (** 0 picks an ephemeral port (tests) *)
  state_dir : string option;  (** checkpoint directory; [None] = in-memory *)
  jobs : int;  (** worker pool size for the repair passes; 1 = sequential *)
  resume : bool;  (** load sessions back from [state_dir] on start *)
  telemetry : telemetry;
  limits : limits;
}

type t
(** A running daemon. *)

val start : config -> (t, Dq_error.t) result
(** Bind [127.0.0.1], load checkpointed sessions when [resume], and
    begin accepting in a background thread.  Invalid limits (negative
    values, idle eviction without a state directory) are refused. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val wait : t -> unit
(** Block until the daemon is stopped. *)

val stop : t -> unit
(** Graceful drain: stop accepting, answer new requests 503 +
    [connection: close], let in-flight and lane-queued work finish
    (bounded by [drain_timeout_s], then force-close stragglers), join
    the handler threads, checkpoint every session, shut the pools
    down.  Idempotent; concurrent calls return without a second
    drain. *)

val status_of_error : Dq_error.t -> int
(** The HTTP status a {!Dq_error.t} maps to (404 for
    [No_such_session], 400 for the input family, 422 for gated
    refusals, 429 for a full lane, 503 for unavailability and an open
    breaker, 504 for a deadline, 500 otherwise). *)
