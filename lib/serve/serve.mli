(** The streaming repair daemon behind [cfdclean serve].

    An HTTP/1.1 JSON API (one request per connection) over versioned
    envelopes ({!Dq_obs.Envelope}, [v = 2]).  Endpoints:

    - [GET /v1/health] — liveness, session count, engine registry;
    - [POST /v1/sessions] — create a session from a schema, a ruleset
      and an ingest-capable engine (gated like the CLI: lint errors,
      termination verdict, satisfiability, engine fragment);
    - [GET /v1/sessions], [GET /v1/sessions/ID],
      [DELETE /v1/sessions/ID];
    - [POST /v1/sessions/ID/tuples] — ingest a batch; unrepairable
      tuples are quarantined, not failed (see {!Session});
    - [GET /v1/sessions/ID/relation] — the clean relation as chunked
      CSV;
    - [GET /v1/sessions/ID/quarantine],
      [POST /v1/sessions/ID/quarantine/TID/resolve].

    Engine invocations from all sessions drain through one in-process
    ingest queue (a daemon-wide lock), so concurrent batches serialize
    deterministically.  A per-request [x-deadline-seconds] header arms a
    cooperative {!Dq_fault.Deadline}; an expired one maps to HTTP 504
    with nothing committed.  With a state directory every committed
    mutation is checkpointed ({!Store}) {e before} the 200 goes out, so
    [kill -9] + restart with [resume] serves byte-identical relations. *)

type config = {
  port : int;  (** 0 picks an ephemeral port (tests) *)
  state_dir : string option;  (** checkpoint directory; [None] = in-memory *)
  jobs : int;  (** worker pool size for the repair passes; 1 = sequential *)
  resume : bool;  (** load sessions back from [state_dir] on start *)
}

type t
(** A running daemon. *)

val start : config -> (t, Dq_error.t) result
(** Bind [127.0.0.1], load checkpointed sessions when [resume], and
    begin accepting in a background thread. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val wait : t -> unit
(** Block until the daemon is stopped. *)

val stop : t -> unit
(** Stop accepting, shut the pool down.  Idempotent. *)

val status_of_error : Dq_error.t -> int
(** The HTTP status a {!Dq_error.t} maps to (404 for
    [No_such_session], 400 for the input family, 422 for gated
    refusals, 504 for a deadline, 500 otherwise). *)
