open Dq_relation
open Dq_cfd
open Dq_analysis
module Engine = Dq_engine.Engine

let ( let* ) = Result.bind

type quarantined = { tuple : Tuple.t; attrs : int list; batch : int }

type t = {
  id : string;
  schema : Schema.t;
  rules : string;
  sigma : Cfd.t array;
  engine : string;
  mutable relation : Relation.t;
  mutable next_tid : int;
  mutable quarantine : quarantined list;
  mutable batches : int;
  mutable repaired : int;
  mutable quarantined_total : int;
  mutable resolved : int;
  lock : Mutex.t;
  (* ingest lane: a ticket lock ordering this session's repair jobs
     (FIFO) independently of every other session *)
  lane_lock : Mutex.t;
  lane_turn : Condition.t;
  mutable lane_next : int;
  mutable lane_serving : int;
  (* overload bookkeeping, maintained by the daemon *)
  mutable last_touch : float;  (* wall clock of the last request *)
  mutable pins : int;  (* handlers currently holding this session *)
  mutable engine_faults : int;  (* consecutive engine faults *)
  mutable breaker_open : bool;
}

let with_lock t f = Mutex.protect t.lock f

(* ---- ingest lane -------------------------------------------------------- *)

let lane_depth t =
  Mutex.protect t.lane_lock (fun () -> t.lane_next - t.lane_serving)

(* Take a ticket and block until it is at the head of the lane; [false]
   (shed, without blocking) when the lane already holds [depth] jobs
   (0 = unbounded).  Pair every [true] with {!lane_exit}. *)
let lane_enter ?(depth = 0) t =
  Mutex.lock t.lane_lock;
  if depth > 0 && t.lane_next - t.lane_serving >= depth then begin
    Mutex.unlock t.lane_lock;
    false
  end
  else begin
    let ticket = t.lane_next in
    t.lane_next <- ticket + 1;
    while t.lane_serving <> ticket do
      Condition.wait t.lane_turn t.lane_lock
    done;
    Mutex.unlock t.lane_lock;
    true
  end

let lane_exit t =
  Mutex.lock t.lane_lock;
  t.lane_serving <- t.lane_serving + 1;
  Condition.broadcast t.lane_turn;
  Mutex.unlock t.lane_lock

let with_lane ?depth t f =
  if lane_enter ?depth t then
    Some (Fun.protect ~finally:(fun () -> lane_exit t) f)
  else None

(* ---- circuit breaker ---------------------------------------------------- *)

(* All breaker state is read and written under the session lock. *)

let touch t = t.last_touch <- Unix.gettimeofday ()

let breaker_ok t = not t.breaker_open

(* Record one engine fault; [true] when this fault just opened the
   breaker (threshold 0 = breaker disabled). *)
let breaker_trip ~threshold t =
  t.engine_faults <- t.engine_faults + 1;
  if threshold > 0 && t.engine_faults >= threshold && not t.breaker_open then begin
    t.breaker_open <- true;
    true
  end
  else false

let breaker_note_success t = t.engine_faults <- 0

let breaker_reset t =
  t.breaker_open <- false;
  t.engine_faults <- 0

(* The session id stands in for a file path in gate diagnostics — the
   ruleset arrived in a request body, not from disk. *)
let rules_path id = Printf.sprintf "session %s ruleset" id

let make_schema ~schema_name ~attributes =
  match Schema.make ~name:schema_name attributes with
  | schema -> Ok schema
  | exception Invalid_argument msg -> Error (Dq_error.Invalid_input msg)

let parse_rules ~id rules =
  match Cfd_parser.parse_string_located rules with
  | Ok ltabs -> Ok ltabs
  | Error e ->
    Error
      (Dq_error.Parse
         {
           path = rules_path id;
           line = e.Cfd_parser.line;
           col = e.Cfd_parser.col;
           message = e.Cfd_parser.message;
         })

let resolve_rules schema ltabs =
  match Cfd_parser.resolve schema (Cfd_parser.Located.strip_all ltabs) with
  | sigma -> Ok sigma
  | exception Invalid_argument msg -> Error (Dq_error.Invalid_input msg)

(* The engine behind a session must repair incrementally: sessions only
   ever call [ingest]. *)
let resolve_engine ~engine schema sigma =
  let* (module E : Engine.ENGINE) = Engine.find engine in
  let* () =
    if E.supports_ingest then Ok ()
    else
      Error
        (Dq_error.Engine_unsupported
           {
             engine = E.name;
             reason =
               "no incremental ingest: serve sessions need an INCREPAIR \
                engine (inc, l-inc or w-inc)";
           })
  in
  let* () = Engine.check_fragment (module E) schema sigma in
  Ok (module E : Engine.ENGINE)

let session ~id ~schema ~rules ~sigma ~engine ~relation ~next_tid ~quarantine
    ~batches ~repaired ~quarantined_total ~resolved =
  {
    id;
    schema;
    rules;
    sigma;
    engine;
    relation;
    next_tid;
    quarantine;
    batches;
    repaired;
    quarantined_total;
    resolved;
    lock = Mutex.create ();
    lane_lock = Mutex.create ();
    lane_turn = Condition.create ();
    lane_next = 0;
    lane_serving = 0;
    last_touch = Unix.gettimeofday ();
    pins = 0;
    engine_faults = 0;
    breaker_open = false;
  }

(* Creation runs the CLI's gates unconditionally: a session ingests
   unattended, so an oscillation-prone or lint-broken Σ is refused up
   front rather than discovered mid-stream. *)
let create ~id ~schema_name ~attributes ~rules ~engine ?(force = false) () =
  let* schema = make_schema ~schema_name ~attributes in
  let* ltabs = parse_rules ~id rules in
  let* () =
    let errors =
      if force then [] else Lint.run ~errors_only:true ~schema ltabs
    in
    if errors = [] then Ok ()
    else
      Error
        (Dq_error.Lint_gated
           {
             path = rules_path id;
             errors = List.length errors;
             hint = "lint the ruleset with `cfdclean lint`, or pass force";
           })
  in
  let* sigma = resolve_rules schema ltabs in
  let* () =
    if Satisfiability.is_satisfiable schema sigma then Ok ()
    else Error Dq_error.Unsatisfiable
  in
  let* () =
    if force then Ok ()
    else
      match (Interaction.analyze schema sigma).Interaction.termination with
      | Interaction.Terminating -> Ok ()
      | Interaction.May_oscillate cycles ->
        Error
          (Dq_error.Analyze_gated
             {
               path = rules_path id;
               cycles = List.length cycles;
               hint =
                 "run `cfdclean analyze` for the cycle certificates, or pass \
                  force";
             })
  in
  let* (module _ : Engine.ENGINE) = resolve_engine ~engine schema sigma in
  Ok
    (session ~id ~schema ~rules ~sigma ~engine
       ~relation:(Relation.create schema) ~next_tid:1 ~quarantine:[]
       ~batches:0 ~repaired:0 ~quarantined_total:0 ~resolved:0)

let restore ~id ~schema_name ~attributes ~rules ~engine ~relation ~next_tid
    ~quarantine ~batches ~repaired ~quarantined_total ~resolved =
  let* schema = make_schema ~schema_name ~attributes in
  let* ltabs = parse_rules ~id rules in
  let* sigma = resolve_rules schema ltabs in
  let* (module _ : Engine.ENGINE) = resolve_engine ~engine schema sigma in
  Ok
    (session ~id ~schema ~rules ~sigma ~engine ~relation ~next_tid ~quarantine
       ~batches ~repaired ~quarantined_total ~resolved)

(* ---- ingest ------------------------------------------------------------ *)

type outcome =
  | Clean of int
  | Repaired of int * int
  | Quarantined of int * int list

let check_row schema (values, weights) =
  let arity = Schema.arity schema in
  if Array.length values <> arity then
    Error
      (Dq_error.Invalid_input
         (Printf.sprintf "tuple has %d values, schema %s has %d attributes"
            (Array.length values) (Schema.name schema) arity))
  else
    match weights with
    | Some w when Array.length w <> arity ->
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "tuple has %d weights for %d attributes"
              (Array.length w) arity))
    | Some w
      when Array.exists (fun x -> not (x >= 0. && x <= 1.)) w ->
      Error (Dq_error.Invalid_input "weights must lie in [0, 1]")
    | _ -> Ok ()

(* A repair that introduced Null where the submitted tuple had a
   constant could not settle a certain value (Section 3.1) — that tuple
   is unrepairable here and goes to quarantine. *)
let nulled_positions ~submitted ~repaired =
  let out = ref [] in
  for p = Tuple.arity submitted - 1 downto 0 do
    if
      Value.is_null (Tuple.get repaired p)
      && not (Value.is_null (Tuple.get submitted p))
    then out := p :: !out
  done;
  !out

let ingest_delta ?pool ?(deadline = Dq_fault.Deadline.never) ?request_id t
    delta =
  let* (module E : Engine.ENGINE) =
    resolve_engine ~engine:t.engine t.schema t.sigma
  in
  let ctx = Engine.ctx ?pool ~deadline ?request_id t.relation t.sigma in
  let* (repaired_rel, stats), report = E.ingest ctx delta in
  (* A deadline cut mid-batch commits nothing: the session keeps its
     last consistent relation and the client retries the whole batch. *)
  if report.Dq_obs.Report.degraded <> None then Error Dq_error.Deadline_exceeded
  else Ok ((repaired_rel, stats), report)

(* Classify each delta tuple against its repaired form, removing the
   unrepairable ones from [rel] (a deletion never creates a violation,
   Section 3.3). *)
let classify t ~batch rel delta =
  List.map
    (fun submitted ->
      let tid = Tuple.tid submitted in
      let repaired = Relation.find_exn rel tid in
      match nulled_positions ~submitted ~repaired with
      | [] ->
        let changed = List.length (Tuple.diff_positions submitted repaired) in
        if changed = 0 then Clean tid else Repaired (tid, changed)
      | attrs ->
        ignore (Relation.delete rel tid);
        t.quarantine <- t.quarantine @ [ { tuple = submitted; attrs; batch } ];
        t.quarantined_total <- t.quarantined_total + 1;
        Quarantined (tid, attrs))
    delta

let ingest ?pool ?deadline ?request_id t rows =
  let* () =
    List.fold_left
      (fun acc row -> Result.bind acc (fun () -> check_row t.schema row))
      (Ok ()) rows
  in
  let delta =
    List.mapi
      (fun i (values, weights) ->
        Tuple.create ?weights ~tid:(t.next_tid + i) values)
      rows
  in
  let* (repaired_rel, stats), report =
    ingest_delta ?pool ?deadline ?request_id t delta
  in
  let batch = t.batches + 1 in
  let outcomes = classify t ~batch repaired_rel delta in
  t.relation <- repaired_rel;
  t.next_tid <- t.next_tid + List.length rows;
  t.batches <- batch;
  t.repaired <-
    t.repaired
    + List.length
        (List.filter (function Repaired _ -> true | _ -> false) outcomes);
  Ok (outcomes, stats, report)

(* ---- quarantine -------------------------------------------------------- *)

type resolution = Discard | Replace of Value.t array * float array option

let find_quarantined t tid =
  List.find_opt (fun q -> Tuple.tid q.tuple = tid) t.quarantine

let drop_quarantined t tid =
  t.quarantine <- List.filter (fun q -> Tuple.tid q.tuple <> tid) t.quarantine;
  t.resolved <- t.resolved + 1

let resolve ?pool ?deadline ?request_id t tid resolution =
  let* (_ : quarantined) =
    match find_quarantined t tid with
    | Some q -> Ok q
    | None ->
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf "no quarantined tuple with tid %d" tid))
  in
  match resolution with
  | Discard ->
    drop_quarantined t tid;
    Ok (Clean tid)
  | Replace (values, weights) ->
    let* () = check_row t.schema (values, weights) in
    let submitted = Tuple.create ?weights ~tid values in
    let* (repaired_rel, _stats), _report =
      ingest_delta ?pool ?deadline ?request_id t [ submitted ]
    in
    let repaired = Relation.find_exn repaired_rel tid in
    (match nulled_positions ~submitted ~repaired with
    | _ :: _ as attrs ->
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf
              "resolution for tid %d is still unrepairable (nulled: %s)" tid
              (String.concat ", "
                 (List.map (Schema.attribute t.schema) attrs))))
    | [] ->
      t.relation <- repaired_rel;
      drop_quarantined t tid;
      let changed = List.length (Tuple.diff_positions submitted repaired) in
      Ok (if changed = 0 then Clean tid else Repaired (tid, changed)))
