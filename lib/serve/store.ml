open Dq_relation
module Json = Dq_obs.Json

let ( let* ) = Result.bind

let version = 1

let kind = "serve-session"

(* ---- exact value encoding ---------------------------------------------- *)

(* Mirrors lib/core/checkpoint.ml: floats as C99 hex literals so resumed
   relations render byte-identically, ints tagged so they cannot be
   confused with a float of the same magnitude on the way back in. *)
let value_to_json = function
  | Value.Null -> Json.Null
  | Value.String s -> Json.String s
  | Value.Int n -> Json.Obj [ ("i", Json.Int n) ]
  | Value.Float f -> Json.Obj [ ("f", Json.String (Printf.sprintf "%h" f)) ]

let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.String s -> Ok (Value.String s)
  | Json.Obj [ ("i", Json.Int n) ] -> Ok (Value.Int n)
  | Json.Obj [ ("f", Json.String h) ] -> (
    match float_of_string_opt h with
    | Some f -> Ok (Value.Float f)
    | None -> Error (Printf.sprintf "bad float literal %S" h))
  | j -> Error ("unexpected value encoding: " ^ Json.to_string ~minify:true j)

let weight_to_json w = Json.String (Printf.sprintf "%h" w)

let weight_of_json = function
  | Json.String h -> (
    match float_of_string_opt h with
    | Some w -> Ok w
    | None -> Error (Printf.sprintf "bad weight literal %S" h))
  | j -> Error ("unexpected weight encoding: " ^ Json.to_string ~minify:true j)

(* All-1 weight vectors — the default — are omitted from tuple rows. *)
let tuple_to_json t =
  let base =
    [
      ("tid", Json.Int (Tuple.tid t));
      ( "values",
        Json.List
          (Array.to_list (Array.map value_to_json (Tuple.values t))) );
    ]
  in
  let weights =
    List.init (Tuple.arity t) (fun i -> Tuple.weight t i)
  in
  if List.for_all (fun w -> w = 1.) weights then Json.Obj base
  else
    Json.Obj
      (base @ [ ("weights", Json.List (List.map weight_to_json weights)) ])

(* ---- json plumbing ----------------------------------------------------- *)

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  let* v = field name j in
  match v with
  | Json.Int n -> Ok n
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let string_field name j =
  let* v = field name j in
  match v with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let list_field name j =
  let* v = field name j in
  match v with
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "field %S: expected a list" name)

let map_m f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let tuple_of_json j =
  let* tid = int_field "tid" j in
  let* values = list_field "values" j in
  let* values = map_m value_of_json values in
  let* weights =
    match Json.member "weights" j with
    | None -> Ok None
    | Some (Json.List l) ->
      let* ws = map_m weight_of_json l in
      Ok (Some (Array.of_list ws))
    | Some _ -> Error "field \"weights\": expected a list"
  in
  match Tuple.create ?weights ~tid (Array.of_list values) with
  | t -> Ok t
  | exception Invalid_argument msg -> Error msg

(* ---- session <-> json --------------------------------------------------- *)

let quarantined_to_json (q : Session.quarantined) =
  match tuple_to_json q.Session.tuple with
  | Json.Obj fields ->
    Json.Obj
      (fields
      @ [
          ( "attrs",
            Json.List (List.map (fun a -> Json.Int a) q.Session.attrs) );
          ("batch", Json.Int q.Session.batch);
        ])
  | j -> j

let quarantined_of_json j =
  let* tuple = tuple_of_json j in
  let* attrs = list_field "attrs" j in
  let* attrs =
    map_m
      (function
        | Json.Int a -> Ok a | _ -> Error "field \"attrs\": expected integers")
      attrs
  in
  let* batch = int_field "batch" j in
  Ok { Session.tuple; attrs; batch }

let to_json (s : Session.t) =
  Json.Obj
    [
      ("v", Json.Int version);
      ("kind", Json.String kind);
      ("id", Json.String s.Session.id);
      ( "schema",
        Json.Obj
          [
            ("name", Json.String (Schema.name s.Session.schema));
            ( "attributes",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun a -> Json.String a)
                      (Schema.attributes s.Session.schema))) );
          ] );
      ("engine", Json.String s.Session.engine);
      ("rules", Json.String s.Session.rules);
      ("next_tid", Json.Int s.Session.next_tid);
      ("batches", Json.Int s.Session.batches);
      ("repaired", Json.Int s.Session.repaired);
      ("quarantined_total", Json.Int s.Session.quarantined_total);
      ("resolved", Json.Int s.Session.resolved);
      ( "relation",
        Json.List
          (List.map tuple_to_json (Relation.to_list s.Session.relation)) );
      ( "quarantine",
        Json.List (List.map quarantined_to_json s.Session.quarantine) );
    ]

let of_json j =
  let* v = int_field "v" j in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "unsupported session file version %d" v)
  in
  let* k = string_field "kind" j in
  let* () =
    if String.equal k kind then Ok ()
    else Error (Printf.sprintf "not a session file (kind %S)" k)
  in
  let* id = string_field "id" j in
  let* schema = field "schema" j in
  let* schema_name = string_field "name" schema in
  let* attributes = list_field "attributes" schema in
  let* attributes =
    map_m
      (function
        | Json.String a -> Ok a
        | _ -> Error "field \"attributes\": expected strings")
      attributes
  in
  let* engine = string_field "engine" j in
  let* rules = string_field "rules" j in
  let* next_tid = int_field "next_tid" j in
  let* batches = int_field "batches" j in
  let* repaired = int_field "repaired" j in
  let* quarantined_total = int_field "quarantined_total" j in
  let* resolved = int_field "resolved" j in
  let* rows = list_field "relation" j in
  let* tuples = map_m tuple_of_json rows in
  let* quarantine = list_field "quarantine" j in
  let* quarantine = map_m quarantined_of_json quarantine in
  let* relation =
    match Schema.make ~name:schema_name attributes with
    | schema ->
      let rel = Relation.create schema in
      (match List.iter (Relation.add rel) tuples with
      | () -> Ok rel
      | exception Invalid_argument msg -> Error msg)
    | exception Invalid_argument msg -> Error msg
  in
  Result.map_error Dq_error.to_string
    (Session.restore ~id ~schema_name ~attributes ~rules ~engine ~relation
       ~next_tid ~quarantine ~batches ~repaired ~quarantined_total ~resolved)

(* ---- files -------------------------------------------------------------- *)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let path ~dir id = Filename.concat dir (id ^ ".json")

let save ~dir (s : Session.t) =
  mkdirs dir;
  let contents = Json.to_string (to_json s) in
  Dq_fault.Atomic_io.write_file (path ~dir s.Session.id) contents;
  String.length contents

let delete ~dir id =
  try Sys.remove (path ~dir id) with Sys_error _ -> ()

let load file =
  let* contents =
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> Ok s
    | exception Sys_error msg -> Error msg
  in
  let* j = Json.parse contents in
  Result.map_error (fun msg -> file ^ ": " ^ msg) (of_json j)

let load_id ~dir id = load (path ~dir id)

let load_dir dir =
  mkdirs dir;
  match Sys.readdir dir with
  | files ->
    Array.sort String.compare files;
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> map_m (fun f ->
           let* s = load (Filename.concat dir f) in
           Ok (f, s))
  | exception Sys_error msg -> Error msg
