(* Minimal HTTP/1.1 framing over Unix file descriptors: just enough for
   the serve daemon's request/response API — no TLS, no multipart.
   Connections are one-request-per-connection by default; a [reader]
   carries leftover bytes between requests so keep-alive (and pipelined
   requests) work when the daemon enables them.  Parsing is split from
   socket I/O so the framing rules are unit-testable on plain strings. *)

module Fault = Dq_fault.Fault

type request = {
  meth : string;
  target : string;
  path : string list;
  headers : (string * string) list;
  body : string;
}

(* A framing error carries the HTTP status the daemon answers with, so
   an oversized body is a 413 and a stalled mid-request read a 408, not
   a generic 400. *)
type error = { status : int; reason : string }

let err status reason = Error { status; reason }

let header r name = List.assoc_opt (String.lowercase_ascii name) r.headers

let max_head_bytes = 64 * 1024

let default_max_body = 64 * 1024 * 1024

(* Path segments of the request target, query string dropped.  Ids in
   our routes are plain alphanumerics, so no percent-decoding. *)
let split_target target =
  let path =
    match String.index_opt target '?' with
    | Some i -> String.sub target 0 i
    | None -> target
  in
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

(* [(head_end, body_start)] of the first blank line (CRLF CRLF, or bare
   LF LF for hand-typed clients), if any. *)
let find_head_end s =
  let n = String.length s in
  let rec scan i =
    if i + 1 >= n then None
    else if
      i + 3 < n
      && s.[i] = '\r'
      && s.[i + 1] = '\n'
      && s.[i + 2] = '\r'
      && s.[i + 3] = '\n'
    then Some (i, i + 4)
    else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, i + 2)
    else scan (i + 1)
  in
  scan 0

let trim_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Parse the head: request line plus header lines (no blank line). *)
let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> err 400 "empty request head"
  | request_line :: header_lines -> (
    match String.split_on_char ' ' (trim_cr request_line) with
    | [ meth; target; version ]
      when String.length version >= 8 && String.sub version 0 7 = "HTTP/1." ->
      let rec headers acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          let line = trim_cr line in
          if line = "" then headers acc rest
          else
            match String.index_opt line ':' with
            | None -> err 400 (Printf.sprintf "malformed header line %S" line)
            | Some i ->
              let name = String.lowercase_ascii (String.sub line 0 i) in
              let value =
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              headers ((name, value) :: acc) rest)
      in
      Result.map
        (fun headers ->
          { meth; target; path = split_target target; headers; body = "" })
        (headers [] header_lines)
    | _ ->
      err 400 (Printf.sprintf "malformed request line %S" (trim_cr request_line)))

let content_length r =
  match header r "content-length" with
  | None -> Ok 0
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> Ok n
    | _ -> err 400 (Printf.sprintf "bad content-length %S" s))

(* Parse one whole request held in a string — head, then exactly
   [content-length] body bytes.  The unit-testable core of
   {!read_request}. *)
let parse ?(max_body = default_max_body) bytes =
  match find_head_end bytes with
  | None -> err 400 "request head not terminated"
  | Some (head_end, body_start) -> (
    match parse_head (String.sub bytes 0 head_end) with
    | Error _ as e -> e
    | Ok r -> (
      match content_length r with
      | Error _ as e -> e
      | Ok len when len > max_body ->
        err 413 (Printf.sprintf "body of %d bytes exceeds limit" len)
      | Ok len ->
        if String.length bytes - body_start < len then
          err 400 "truncated request body"
        else Ok { r with body = String.sub bytes body_start len }))

(* ---- socket I/O -------------------------------------------------------- *)

exception Closed

let rec write_all fd s off len =
  if len > 0 then begin
    Fault.hit "serve.write";
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Closed
    in
    write_all fd s (off + n) (len - n)
  end

let send fd s = write_all fd s 0 (String.length s)

(* Bytes read past the end of one request (a pipelined follow-up) are
   held in [pending] for the next {!read_request} on the same reader. *)
type reader = { fd : Unix.file_descr; mutable pending : string }

let reader fd = { fd; pending = "" }

(* SO_RCVTIMEO turns a blocked read into EAGAIN/EWOULDBLOCK after the
   timeout.  Sockets that do not support it (unlikely on Linux) just
   keep blocking — timeouts are defensive, not load-bearing. *)
let set_read_timeout fd secs =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs
  with Unix.Unix_error _ | Invalid_argument _ -> ()

type read_outcome = Got of int | Eof | Timed_out

(* Read one request from a connected socket: accumulate the head up to
   the blank line (bounded), then exactly content-length body bytes.
   [Ok None] when the peer closed — or, with [idle_timeout], stayed
   silent — before sending anything. *)
let read_request ?(max_body = default_max_body) ?idle_timeout ?read_timeout
    rd =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf rd.pending;
  rd.pending <- "";
  let chunk = Bytes.create 8192 in
  let timeouts = idle_timeout <> None || read_timeout <> None in
  (* the idle timeout covers the wait for the request's first byte; once
     any of it has arrived, the (tighter) read timeout takes over *)
  let arm_timeout () =
    if timeouts then
      let t =
        if Buffer.length buf = 0 then
          match idle_timeout with Some t -> t | None -> Option.get read_timeout
        else match read_timeout with Some t -> t | None -> 0.
      in
      set_read_timeout rd.fd t
  in
  let read_more () =
    Fault.hit "serve.read";
    arm_timeout ();
    match Unix.read rd.fd chunk 0 (Bytes.length chunk) with
    | 0 -> Eof
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      Got n
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Eof
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      when timeouts ->
      Timed_out
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Got 0
  in
  let rec fill_head () =
    match find_head_end (Buffer.contents buf) with
    | Some split -> Ok (Some split)
    | None ->
      if Buffer.length buf > max_head_bytes then
        err 431 "request head too large"
      else (
        match read_more () with
        | Got _ -> fill_head ()
        | Eof ->
          if Buffer.length buf = 0 then Ok None
          else err 400 "truncated request head"
        | Timed_out ->
          if Buffer.length buf = 0 then Ok None
          else err 408 "timed out reading request head")
  in
  match fill_head () with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some (head_end, body_start)) -> (
    match parse_head (String.sub (Buffer.contents buf) 0 head_end) with
    | Error _ as e -> e
    | Ok r -> (
      match content_length r with
      | Error _ as e -> e
      | Ok len when len > max_body ->
        err 413 (Printf.sprintf "body of %d bytes exceeds limit" len)
      | Ok len ->
        let rec fill_body () =
          if Buffer.length buf - body_start >= len then Ok ()
          else
            match read_more () with
            | Got _ -> fill_body ()
            | Eof -> err 400 "truncated request body"
            | Timed_out -> err 408 "timed out reading request body"
        in
        (match fill_body () with
        | Error _ as e -> e
        | Ok () ->
          let all = Buffer.contents buf in
          let body_end = body_start + len in
          (* keep any pipelined follow-up bytes for the next request *)
          if String.length all > body_end then
            rd.pending <-
              String.sub all body_end (String.length all - body_end);
          Ok (Some { r with body = String.sub all body_start len }))))

(* ---- responses --------------------------------------------------------- *)

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

let head ~status ~content_type ?(keep_alive = false) extra =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string b (Printf.sprintf "content-type: %s\r\n" content_type);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    extra;
  Buffer.add_string b
    (if keep_alive then "connection: keep-alive\r\n\r\n"
     else "connection: close\r\n\r\n");
  Buffer.contents b

let respond fd ~status ?(content_type = "application/json") ?(headers = [])
    ?keep_alive body =
  send fd
    (head ~status ~content_type ?keep_alive
       (headers @ [ ("content-length", string_of_int (String.length body)) ]));
  send fd body

(* Chunked response: [produce] is handed a writer it may call any number
   of times — the relation endpoint streams row groups through it
   without materialising the whole CSV.  Returns the number of body bytes
   streamed, for the access log. *)
let respond_stream fd ~status ~content_type ?(headers = []) ?keep_alive
    produce =
  send fd
    (head ~status ~content_type ?keep_alive
       (headers @ [ ("transfer-encoding", "chunked") ]));
  let bytes = ref 0 in
  let write chunk =
    if String.length chunk > 0 then begin
      bytes := !bytes + String.length chunk;
      send fd (Printf.sprintf "%x\r\n" (String.length chunk));
      send fd chunk;
      send fd "\r\n"
    end
  in
  produce write;
  send fd "0\r\n\r\n";
  !bytes
