(** A small domain pool for whole ingest jobs.

    Connection handlers are systhreads sharing one runtime lock, so two
    sessions repairing on handler threads cannot overlap their OCaml
    compute; shipping each lane job to a worker {e domain} gives
    independent sessions real parallelism.  Separate from
    {!Dq_parallel.Pool} on purpose: engines chunk through that pool from
    inside these jobs, and its contract forbids nested submission. *)

type t

val create : workers:int -> t
(** Spawn [workers] (>= 1) worker domains.  Each worker domain counts
    against the runtime's domain budget alongside the repair pool's
    [jobs - 1] domains. *)

val exec : t -> (unit -> 'a) -> 'a
(** Run the job on a worker domain, blocking the calling thread until it
    finishes; exceptions re-raise in the caller.  On a pool already shut
    down the job runs inline in the caller — an admitted request is
    never lost to drain ordering. *)

val shutdown : t -> unit
(** Finish queued jobs, then join the worker domains.  Idempotent. *)
