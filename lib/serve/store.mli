(** Crash-safe session checkpoints.

    Every committed mutation of a {!Session.t} is snapshotted to
    [DIR/ID.json] via {!Dq_fault.Atomic_io} {e before} the daemon
    acknowledges the request, so a [kill -9] at any point leaves each
    session file at its last acknowledged state and a restarted daemon
    ([--resume]) serves byte-identical relations.

    Values round-trip exactly: ints and floats use a tagged encoding
    ([{"i": n}] / [{"f": "<%h hex literal>"}]) because the relation's
    CSV rendering — the byte-identity the restart test asserts — is a
    function of the typed value, not of its decimal approximation.
    Weights are stored as [%h] strings for the same reason. *)

val version : int
(** Schema version written to and required from session files. *)

val save : dir:string -> Session.t -> int
(** Atomically write [dir/ID.json], returning the snapshot's size in
    bytes (what the daemon's checkpoint metrics record).  Creates [dir]
    if missing.  Caller holds the session lock.  @raise Sys_error on
    I/O failure. *)

val delete : dir:string -> string -> unit
(** Remove a session's file, ignoring a missing one. *)

val load : string -> (Session.t, string) result
(** Read one session file. *)

val load_id : dir:string -> string -> (Session.t, string) result
(** Read the session [id] back from [dir/ID.json] — how the daemon
    reloads an idle-evicted session on its next touch. *)

val load_dir : string -> ((string * Session.t) list, string) result
(** Load every [*.json] session file under a directory (created if
    missing), as [(filename, session)] sorted by filename.  The first
    unreadable file fails the whole load: resuming from a corrupt state
    directory should be loud, not partial. *)
