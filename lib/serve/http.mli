(** Minimal HTTP/1.1 framing for the serve daemon.

    Just enough protocol for a local request/response API: one request
    per connection ([connection: close]), [content-length] bodies on the
    way in, fixed-length or chunked bodies on the way out.  Parsing is
    split from socket I/O so the framing rules are unit-testable on
    plain strings ({!parse}). *)

type request = {
  meth : string;  (** verb, verbatim ([GET], [POST], ...) *)
  target : string;  (** the raw request target *)
  path : string list;  (** target split on [/], query string dropped *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

val header : request -> string -> string option
(** Case-insensitive header lookup (first match). *)

val split_target : string -> string list

val parse : ?max_body:int -> string -> (request, string) result
(** Parse one whole request held in a string: head up to the blank line
    (CRLF or bare LF), then exactly [content-length] body bytes. *)

exception Closed
(** The peer went away mid-write (EPIPE / ECONNRESET).  Handlers treat
    it as a benign end of conversation. *)

val read_request : ?max_body:int -> Unix.file_descr -> (request option, string) result
(** Read one request from a connected socket.  [Ok None] when the peer
    closed before sending anything; [Error _] on framing problems
    (oversized head, truncated body, malformed request line). *)

val send : Unix.file_descr -> string -> unit
(** Write a whole string.  @raise Closed if the peer went away. *)

val status_text : int -> string

val respond :
  Unix.file_descr ->
  status:int ->
  ?content_type:string ->
  ?headers:(string * string) list ->
  string ->
  unit
(** One fixed-length response ([content-length], [connection: close]).
    Default content type is [application/json]; [headers] are emitted
    before the framing headers.  @raise Closed *)

val respond_stream :
  Unix.file_descr ->
  status:int ->
  content_type:string ->
  ?headers:(string * string) list ->
  ((string -> unit) -> unit) ->
  int
(** Chunked response: the callback receives a writer it may call any
    number of times; the terminating zero-chunk is appended after it
    returns.  Returns the number of body bytes streamed.  @raise Closed *)
