(** Minimal HTTP/1.1 framing for the serve daemon.

    Just enough protocol for a local request/response API:
    [content-length] bodies on the way in, fixed-length or chunked
    bodies on the way out.  Connections close after one response unless
    the caller passes [keep_alive]; a {!reader} carries pipelined
    leftover bytes between requests on the same connection.  Parsing is
    split from socket I/O so the framing rules are unit-testable on
    plain strings ({!parse}). *)

type request = {
  meth : string;  (** verb, verbatim ([GET], [POST], ...) *)
  target : string;  (** the raw request target *)
  path : string list;  (** target split on [/], query string dropped *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type error = { status : int; reason : string }
(** A framing problem plus the HTTP status it answers with: 400 for
    malformed requests, 408 for a mid-request read timeout, 413 for an
    oversized body, 431 for an oversized head. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first match). *)

val split_target : string -> string list

val parse : ?max_body:int -> string -> (request, error) result
(** Parse one whole request held in a string: head up to the blank line
    (CRLF or bare LF), then exactly [content-length] body bytes. *)

exception Closed
(** The peer went away mid-write (EPIPE / ECONNRESET).  Handlers treat
    it as a benign end of conversation. *)

type reader
(** Per-connection read state: the socket plus any bytes already read
    past the previous request's body. *)

val reader : Unix.file_descr -> reader

val read_request :
  ?max_body:int ->
  ?idle_timeout:float ->
  ?read_timeout:float ->
  reader ->
  (request option, error) result
(** Read one request.  [Ok None] when the peer closed — or, with
    [idle_timeout], sent nothing within it — before the request's first
    byte; [Error _] on framing problems.  [idle_timeout] bounds the wait
    for the first byte (keep-alive gaps), [read_timeout] every read
    after it (slowloris defense); both use [SO_RCVTIMEO] and are
    entirely skipped — no socket option traffic — when absent. *)

val send : Unix.file_descr -> string -> unit
(** Write a whole string.  @raise Closed if the peer went away. *)

val status_text : int -> string

val respond :
  Unix.file_descr ->
  status:int ->
  ?content_type:string ->
  ?headers:(string * string) list ->
  ?keep_alive:bool ->
  string ->
  unit
(** One fixed-length response ([content-length]).  Default content type
    is [application/json]; [headers] are emitted before the framing
    headers; [keep_alive] (default false) selects the [connection]
    header.  @raise Closed *)

val respond_stream :
  Unix.file_descr ->
  status:int ->
  content_type:string ->
  ?headers:(string * string) list ->
  ?keep_alive:bool ->
  ((string -> unit) -> unit) ->
  int
(** Chunked response: the callback receives a writer it may call any
    number of times; the terminating zero-chunk is appended after it
    returns.  Returns the number of body bytes streamed.  @raise Closed *)
