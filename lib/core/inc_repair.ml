open Dq_relation
open Dq_cfd
module Metrics = Dq_obs.Metrics
module Provenance = Dq_obs.Provenance
module Report = Dq_obs.Report
module Trace = Dq_obs.Trace
module Progress = Dq_obs.Progress
module Fault = Dq_fault.Fault
module Deadline = Dq_fault.Deadline

type ordering = Linear | By_violations | By_weight

let ordering_name = function
  | Linear -> "L-IncRepair"
  | By_violations -> "V-IncRepair"
  | By_weight -> "W-IncRepair"

type stats = {
  tuples_processed : int;
  tuples_changed : int;
  cells_changed : int;
  nulls_introduced : int;
  runtime : float;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>processed=%d changed=%d cells_changed=%d nulls=%d runtime=%.3fs@]"
    s.tuples_processed s.tuples_changed s.cells_changed s.nulls_introduced
    s.runtime

let m_resolves = Metrics.counter "inc.resolves"

let m_tuples_changed = Metrics.counter "inc.tuples_changed"

let m_t_order = Metrics.timer "inc.phase.order"

let m_t_resolve = Metrics.timer "inc.phase.resolve"

let m_t_core = Metrics.timer "inc.phase.core"

(* Order ΔD for processing.  V-INCREPAIR scores each tuple by the number of
   violations it incurs in D ⊕ ΔD (both against the clean base and against
   its fellow insertions); W-INCREPAIR by descending total weight.  Sorts
   are stable, so ties keep the input order. *)
let order_tuples ?pool ?deadline ordering base delta sigma =
  match ordering with
  | Linear -> delta
  | By_weight ->
    List.stable_sort
      (fun t1 t2 -> Float.compare (Tuple.total_weight t2) (Tuple.total_weight t1))
      delta
  | By_violations ->
    let staging = Relation.copy base in
    List.iter (Relation.add staging) delta;
    let counts = Violation.vio_counts ?pool ?deadline staging sigma in
    let vio t =
      match Hashtbl.find_opt counts (Tuple.tid t) with Some n -> n | None -> 0
    in
    List.stable_sort (fun t1 t2 -> Int.compare (vio t1) (vio t2)) delta

(* The tuples of [delta] must carry tids distinct from [base]'s and from
   each other — a collision would make the provenance trail (and the
   repair itself) ambiguous, so it is rejected up front. *)
let check_delta_tids base delta =
  let seen = Hashtbl.create 64 in
  let bad = ref None in
  List.iter
    (fun t ->
      let tid = Tuple.tid t in
      if !bad = None && (Relation.mem base tid || Hashtbl.mem seen tid) then
        bad := Some tid;
      Hashtbl.replace seen tid ())
    delta;
  match !bad with
  | None -> Ok ()
  | Some tid ->
    Error
      (Dq_error.Invalid_input
         (Printf.sprintf
            "Inc_repair: delta tuple id %d collides with the base relation \
             or an earlier delta tuple"
            tid))

let run ?pool ?k ?max_candidates ?use_cluster_index
    ?(ordering = By_violations) ?(phases = ref [])
    ?(deadline = Deadline.never) base delta sigma =
  Trace.span ~cat:"engine"
    ~args:(fun () ->
      [
        ("base", Dq_obs.Json.Int (Relation.cardinality base));
        ("delta", Dq_obs.Json.Int (List.length delta));
        ("clauses", Dq_obs.Json.Int (Array.length sigma));
      ])
    "inc_repair"
  @@ fun () ->
  let started = Unix.gettimeofday () in
  match check_delta_tids base delta with
  | Error _ as e -> e
  | Ok () ->
    let repr = Relation.copy base in
    let env =
      Tuple_resolve.make_env ?k ?max_candidates ?use_cluster_index repr sigma
    in
    match
      Report.phase_m phases "order" m_t_order (fun () ->
          order_tuples ?pool ~deadline ordering base delta sigma)
    with
    | exception Deadline.Expired -> Error Dq_error.Deadline_exceeded
    | delta -> (
      let schema = Relation.schema base in
      let trail = Provenance.create () in
      let tuples_changed = ref 0 in
      let cells_changed = ref 0 in
      let nulls = ref 0 in
      let n_delta = List.length delta in
      (* First delta position left unresolved because the deadline expired;
         [None] when the run completed. *)
      let cut_at = ref None in
      Report.phase_m phases "resolve" m_t_resolve (fun () ->
          List.iteri
            (fun pass t ->
              if !cut_at <> None then
                (* Past the deadline: the rest of the delta is appended
                   unrepaired, so the caller still gets a complete (if
                   possibly still violating) relation. *)
                Relation.add repr (Tuple.copy t)
              else if Deadline.expired deadline then begin
                cut_at := Some pass;
                Relation.add repr (Tuple.copy t)
              end
              else begin
                Fault.hit "resolve.tuple";
                let rt =
                  Trace.span ~cat:"inc"
                    ~args:(fun () ->
                      [
                        ("tid", Dq_obs.Json.Int (Tuple.tid t));
                        ("pass", Dq_obs.Json.Int pass);
                      ])
                    "tupleresolve"
                    (fun () -> Tuple_resolve.resolve env t)
                in
                Metrics.incr m_resolves;
                Progress.emit (fun () ->
                    Printf.sprintf
                      "inc_repair: tuple %d/%d | %d changed | %.0f tuples/s"
                      (pass + 1) n_delta !tuples_changed
                      (float_of_int (pass + 1)
                      /. Float.max 1e-9 (Unix.gettimeofday () -. started)));
                let diffs = Tuple.diff_positions t rt in
                if diffs <> [] then begin
                  incr tuples_changed;
                  Metrics.incr m_tuples_changed
                end;
                cells_changed := !cells_changed + List.length diffs;
                List.iter
                  (fun pos ->
                    let old_value = Tuple.get t pos in
                    let new_value = Tuple.get rt pos in
                    if Value.is_null new_value then incr nulls;
                    Provenance.record trail
                      {
                        Provenance.tid = Tuple.tid t;
                        attr = pos;
                        attr_name = Schema.attribute schema pos;
                        old_value;
                        new_value;
                        clause = None;
                        cost_delta =
                          Tuple.weight t pos
                          *. Cost.similarity old_value new_value;
                        pass;
                      })
                  diffs;
                Relation.add repr rt;
                Tuple_resolve.register env rt;
                Deadline.tick deadline
              end)
            delta);
      match !cut_at with
      | Some 0 -> Error Dq_error.Deadline_exceeded
      | cut ->
        let processed =
          match cut with Some p -> p | None -> n_delta
        in
        let degraded =
          Option.map
            (fun p ->
              {
                Report.reason = "deadline expired";
                progress = float_of_int p /. float_of_int (max 1 n_delta);
              })
            cut
        in
        let stats =
          {
            tuples_processed = processed;
            tuples_changed = !tuples_changed;
            cells_changed = !cells_changed;
            nulls_introduced = !nulls;
            runtime = Unix.gettimeofday () -. started;
          }
        in
        let report =
          Report.make ~engine:"inc_repair"
            ~summary:
              [
                ("ordering", Dq_obs.Json.String (ordering_name ordering));
                ("tuples_processed", Dq_obs.Json.Int stats.tuples_processed);
                ("tuples_changed", Dq_obs.Json.Int stats.tuples_changed);
                ("cells_changed", Dq_obs.Json.Int stats.cells_changed);
                ("nulls_introduced", Dq_obs.Json.Int stats.nulls_introduced);
              ]
            ~phases:!phases
            ~provenance:(Provenance.entries trail)
            ?degraded ()
        in
        Ok ((repr, stats), report))

let repair_inserts ?pool ?k ?max_candidates ?use_cluster_index ?ordering
    ?deadline base delta sigma =
  run ?pool ?k ?max_candidates ?use_cluster_index ?ordering ?deadline base
    delta sigma

let consistent_core ?pool ?deadline rel sigma =
  let counts = Violation.vio_counts ?pool ?deadline rel sigma in
  Relation.fold
    (fun acc t ->
      if Hashtbl.mem counts (Tuple.tid t) then acc else Tuple.tid t :: acc)
    [] rel
  |> List.rev

let repair_dirty ?pool ?k ?max_candidates ?use_cluster_index ?ordering
    ?deadline rel sigma =
  let phases = ref [] in
  match
    Report.phase_m phases "core" m_t_core (fun () ->
        consistent_core ?pool ?deadline rel sigma)
  with
  | exception Deadline.Expired -> Error Dq_error.Deadline_exceeded
  | core ->
    let core_set = Hashtbl.create (List.length core) in
    List.iter (fun tid -> Hashtbl.add core_set tid ()) core;
    let base = Relation.create (Relation.schema rel) in
    let delta = ref [] in
    Relation.iter
      (fun t ->
        if Hashtbl.mem core_set (Tuple.tid t) then
          Relation.add base (Tuple.copy t)
        else delta := Tuple.copy t :: !delta)
      rel;
    run ?pool ?k ?max_candidates ?use_cluster_index ?ordering ?deadline
      ~phases base (List.rev !delta) sigma
