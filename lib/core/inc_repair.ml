open Dq_relation
open Dq_cfd

type ordering = Linear | By_violations | By_weight

let ordering_name = function
  | Linear -> "L-IncRepair"
  | By_violations -> "V-IncRepair"
  | By_weight -> "W-IncRepair"

type stats = {
  tuples_processed : int;
  tuples_changed : int;
  cells_changed : int;
  nulls_introduced : int;
  runtime : float;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>processed=%d changed=%d cells_changed=%d nulls=%d runtime=%.3fs@]"
    s.tuples_processed s.tuples_changed s.cells_changed s.nulls_introduced
    s.runtime

(* Order ΔD for processing.  V-INCREPAIR scores each tuple by the number of
   violations it incurs in D ⊕ ΔD (both against the clean base and against
   its fellow insertions); W-INCREPAIR by descending total weight.  Sorts
   are stable, so ties keep the input order. *)
let order_tuples ?pool ordering base delta sigma =
  match ordering with
  | Linear -> delta
  | By_weight ->
    List.stable_sort
      (fun t1 t2 -> Float.compare (Tuple.total_weight t2) (Tuple.total_weight t1))
      delta
  | By_violations ->
    let staging = Relation.copy base in
    List.iter (Relation.add staging) delta;
    let counts = Violation.vio_counts ?pool staging sigma in
    let vio t =
      match Hashtbl.find_opt counts (Tuple.tid t) with Some n -> n | None -> 0
    in
    List.stable_sort (fun t1 t2 -> Int.compare (vio t1) (vio t2)) delta

let run ?pool ?k ?max_candidates ?use_cluster_index
    ?(ordering = By_violations) base delta sigma =
  let started = Unix.gettimeofday () in
  let repr = Relation.copy base in
  let env = Tuple_resolve.make_env ?k ?max_candidates ?use_cluster_index repr sigma in
  let delta = order_tuples ?pool ordering base delta sigma in
  let tuples_changed = ref 0 in
  let cells_changed = ref 0 in
  let nulls = ref 0 in
  List.iter
    (fun t ->
      let rt = Tuple_resolve.resolve env t in
      let diffs = Tuple.diff_positions t rt in
      if diffs <> [] then incr tuples_changed;
      cells_changed := !cells_changed + List.length diffs;
      List.iter
        (fun pos -> if Value.is_null (Tuple.get rt pos) then incr nulls)
        diffs;
      Relation.add repr rt;
      Tuple_resolve.register env rt)
    delta;
  ( repr,
    {
      tuples_processed = List.length delta;
      tuples_changed = !tuples_changed;
      cells_changed = !cells_changed;
      nulls_introduced = !nulls;
      runtime = Unix.gettimeofday () -. started;
    } )

let repair_inserts ?pool ?k ?max_candidates ?use_cluster_index ?ordering base
    delta sigma =
  run ?pool ?k ?max_candidates ?use_cluster_index ?ordering base delta sigma

let consistent_core ?pool rel sigma =
  let counts = Violation.vio_counts ?pool rel sigma in
  Relation.fold
    (fun acc t ->
      if Hashtbl.mem counts (Tuple.tid t) then acc else Tuple.tid t :: acc)
    [] rel
  |> List.rev

let repair_dirty ?pool ?k ?max_candidates ?use_cluster_index ?ordering rel
    sigma =
  let core = consistent_core ?pool rel sigma in
  let core_set = Hashtbl.create (List.length core) in
  List.iter (fun tid -> Hashtbl.add core_set tid ()) core;
  let base = Relation.create (Relation.schema rel) in
  let delta = ref [] in
  Relation.iter
    (fun t ->
      if Hashtbl.mem core_set (Tuple.tid t) then Relation.add base (Tuple.copy t)
      else delta := Tuple.copy t :: !delta)
    rel;
  run ?pool ?k ?max_candidates ?use_cluster_index ?ordering base
    (List.rev !delta) sigma
