open Dq_relation
open Dq_cfd
module Pool = Dq_parallel.Pool

type config = {
  max_lhs_size : int;
  min_support : int;
  min_confidence : float;
  max_rows_per_fd : int;
}

let default_config ?(max_lhs_size = 2) ?(min_support = 10)
    ?(min_confidence = 1.0) () =
  { max_lhs_size; min_support; min_confidence; max_rows_per_fd = 5_000 }

type discovered = {
  schema : Schema.t;
  tableaus : Cfd.Tableau.t list;
  n_variable : int;
  n_constant : int;
}

let rec combinations k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest ->
      List.map (fun c -> x :: c) (combinations (k - 1) rest)
      @ combinations k rest

(* Statistics of one LHS group: total tuples, per-RHS-value counts. *)
type group = { mutable total : int; counts : (Value.t, int ref) Hashtbl.t }

let group_by rel lhs rhs =
  let table = Vkey.Table.create 256 in
  Relation.iter
    (fun t ->
      let key = Array.map (Tuple.get t) lhs in
      let v = Tuple.get t rhs in
      if
        (not (Value.is_null v))
        && not (Array.exists Value.is_null key)
      then begin
        let g =
          match Vkey.Table.find_opt table key with
          | Some g -> g
          | None ->
            let g = { total = 0; counts = Hashtbl.create 4 } in
            Vkey.Table.add table key g;
            g
        in
        g.total <- g.total + 1;
        match Hashtbl.find_opt g.counts v with
        | Some n -> incr n
        | None -> Hashtbl.add g.counts v (ref 1)
      end)
    rel;
  table

let majority g =
  Hashtbl.fold
    (fun v n acc ->
      match acc with
      | Some (_, best) when best >= !n -> acc
      | _ -> Some (v, !n))
    g.counts None

(* Keys for the subset-pruning table of mined constant rows:
   (sorted LHS positions, their values in that order, RHS position). *)
let row_key lhs key rhs =
  let paired = Array.mapi (fun i pos -> (pos, key.(i))) lhs in
  Array.sort (fun (p1, _) (p2, _) -> Int.compare p1 p2) paired;
  ( Array.to_list (Array.map fst paired),
    Array.map snd paired,
    rhs )

module Row_table = Hashtbl.Make (struct
  type t = int list * Value.t array * int

  let equal (l1, k1, r1) (l2, k2, r2) =
    r1 = r2 && l1 = l2 && Vkey.equal k1 k2

  let hash (l, k, r) = Hashtbl.hash (l, Vkey.hash k, r)
end)

let discover ?pool ?(config = default_config ()) rel =
  if config.max_lhs_size < 1 then
    invalid_arg "Discovery.discover: max_lhs_size must be >= 1";
  let schema = Relation.schema rel in
  let arity = Schema.arity schema in
  let positions = List.init arity Fun.id in
  let fds : (int list * int) list ref = ref [] in
  (* mined constant rows, for subset pruning *)
  let rows = Row_table.create 1024 in
  let tableaus = ref [] in
  let n_variable = ref 0 and n_constant = ref 0 in
  let fd_implied lhs rhs =
    List.exists
      (fun (lhs', rhs') ->
        rhs' = rhs && List.for_all (fun p -> List.mem p lhs) lhs')
      !fds
  in
  (* A candidate row is implied if a mined row over a subset of its LHS
     (same values at those positions) forces the same RHS value. *)
  let row_implied lhs key rhs value =
    let indexed = Array.to_list (Array.mapi (fun i pos -> (i, pos)) lhs) in
    let rec subsets = function
      | [] -> [ [] ]
      | x :: rest ->
        let tails = subsets rest in
        List.map (fun s -> x :: s) tails @ tails
    in
    List.exists
      (fun subset ->
        subset <> Array.to_list (Array.mapi (fun i pos -> (i, pos)) lhs)
        &&
        let sub_lhs = Array.of_list (List.map snd subset) in
        let sub_key = Array.of_list (List.map (fun (i, _) -> key.(i)) subset) in
        match Row_table.find_opt rows (row_key sub_lhs sub_key rhs) with
        | Some v -> Value.equal v value
        | None -> false)
      (subsets indexed)
  in
  for size = 1 to min config.max_lhs_size (arity - 1) do
    (* Candidates of one level are independent: subset pruning ([fd_implied],
       [row_implied]) only consults strictly smaller LHS sets, i.e. state
       frozen at the end of the previous level.  So each candidate can be
       evaluated against the frozen [fds]/[rows] in parallel, and the merge —
       which is what mutates them — replayed sequentially in enumeration
       order, giving output byte-identical to the plain nested loop. *)
    let candidates =
      Array.of_list
        (List.concat_map
           (fun lhs_list ->
             List.filter_map
               (fun rhs ->
                 if List.mem rhs lhs_list then None else Some (lhs_list, rhs))
               positions)
           (combinations size positions))
    in
    let evaluate (lhs_list, rhs) =
      let lhs = Array.of_list lhs_list in
      let groups = group_by rel lhs rhs in
      let n_groups = ref 0 and consistent_groups = ref 0 in
      let constant_rows = ref [] in
      Vkey.Table.iter
        (fun key g ->
          incr n_groups;
          if Hashtbl.length g.counts <= 1 then incr consistent_groups;
          if g.total >= config.min_support then
            match majority g with
            | Some (v, n)
              when float_of_int n
                   >= config.min_confidence *. float_of_int g.total ->
              if not (row_implied lhs key rhs v) then
                constant_rows := (key, v) :: !constant_rows
            | Some _ | None -> ())
        groups;
      (* variable clause: the embedded FD holds (within tolerance)
         and is not implied by a smaller FD *)
      let fd_holds =
        !n_groups >= 2
        && float_of_int !consistent_groups
           >= config.min_confidence *. float_of_int !n_groups
      in
      let fd_new = fd_holds && not (fd_implied lhs_list rhs) in
      let constant_rows =
        let sorted =
          List.sort
            (fun ((k1 : Vkey.t), _) (k2, _) ->
              compare (Array.map Value.to_string k1)
                (Array.map Value.to_string k2))
            !constant_rows
        in
        List.filteri (fun i _ -> i < config.max_rows_per_fd) sorted
      in
      (fd_new, constant_rows)
    in
    let results = Pool.map_array pool evaluate candidates in
    Array.iteri
      (fun i (fd_new, constant_rows) ->
        let lhs_list, rhs = candidates.(i) in
        let lhs = Array.of_list lhs_list in
        if fd_new then begin
          fds := (lhs_list, rhs) :: !fds;
          incr n_variable
        end;
        if fd_new || constant_rows <> [] then begin
          List.iter
            (fun (key, v) ->
              Row_table.replace rows (row_key lhs key rhs) v;
              incr n_constant)
            constant_rows;
          let lhs_attrs = List.map (Schema.attribute schema) lhs_list in
          let rhs_attr = Schema.attribute schema rhs in
          let wild_row =
            Cfd.Tableau.
              {
                lhs = List.map (fun _ -> Pattern.Wild) lhs_list;
                rhs = [ Pattern.Wild ];
              }
          in
          let const_row (key, v) =
            Cfd.Tableau.
              {
                lhs = Array.to_list (Array.map Pattern.const key);
                rhs = [ Pattern.const v ];
              }
          in
          let tableau =
            Cfd.Tableau.
              {
                name =
                  Printf.sprintf "d_%s_%s"
                    (String.concat "_" lhs_attrs)
                    rhs_attr;
                lhs_attrs;
                rhs_attrs = [ rhs_attr ];
                rows =
                  (if fd_new then [ wild_row ] else [])
                  @ List.map const_row constant_rows;
              }
          in
          tableaus := tableau :: !tableaus
        end)
      results
  done;
  {
    schema;
    tableaus = List.rev !tableaus;
    n_variable = !n_variable;
    n_constant = !n_constant;
  }

let resolve d =
  Cfd.number (List.concat_map (Cfd.normalize d.schema) d.tableaus)
