open Dq_relation
open Dq_cfd

type env = {
  repr : Relation.t;
  sigma : Cfd.t array;
  index : Lhs_index.t;
  clusters : Cluster_index.t option array;
  use_cluster_index : bool;
  k : int;
  max_candidates : int;
  arity : int;
  clause_attrs : int list array; (* clause id -> attributes it mentions *)
  rhs_clauses : int list array; (* attr -> clauses with this RHS *)
}

let make_env ?(k = 2) ?(max_candidates = 6) ?(use_cluster_index = true) repr
    sigma =
  if k < 1 then invalid_arg "Tuple_resolve.make_env: k must be >= 1";
  let arity = Schema.arity (Relation.schema repr) in
  let rhs_clauses = Array.make arity [] in
  Array.iteri
    (fun cid cfd ->
      let a = Cfd.rhs cfd in
      rhs_clauses.(a) <- cid :: rhs_clauses.(a))
    sigma;
  {
    repr;
    sigma;
    index = Lhs_index.build sigma repr;
    clusters = Array.make arity None;
    use_cluster_index;
    k;
    max_candidates;
    arity;
    clause_attrs = Array.map Cfd.attrs sigma;
    rhs_clauses;
  }

let register env t =
  Lhs_index.add_tuple env.index t;
  (* Drop the lazily built clusters: the new tuple may extend an
     attribute's active domain, and candidate enumeration must be a
     function of the tuples registered so far, not of when a cluster
     happened to be built — otherwise repairing a delta in one call and
     in several calls (serve's per-batch ingest) tie-breaks equal-cost
     repairs differently. *)
  Array.fill env.clusters 0 (Array.length env.clusters) None

let vio_against env t = Lhs_index.vio env.index t

let cluster env pos =
  match env.clusters.(pos) with
  | Some c -> c
  | None ->
    let c = Cluster_index.of_attribute env.repr pos in
    env.clusters.(pos) <- Some c;
    c

let rec combinations k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest ->
      List.map (fun c -> x :: c) (combinations (k - 1) rest)
      @ combinations k rest

(* Candidate values for one attribute of the tuple under repair, in
   preference order: keep the current value; values forced by clauses whose
   RHS is this attribute (pattern constants and LHS-index lookups — the
   "semantically related" values FINDV favours); near neighbours from the
   cost-based index; and always null as the escape hatch. *)
let candidates env rt pos =
  let seen = ref [] in
  let out = ref [] in
  let push v =
    if not (List.exists (Value.equal v) !seen) then begin
      seen := v :: !seen;
      if List.length !out < env.max_candidates then out := v :: !out
    end
  in
  let current = Tuple.get rt pos in
  if not (Value.is_null current) then push current;
  List.iter
    (fun cid ->
      match Lhs_index.expected_rhs env.index env.sigma.(cid) rt with
      | Some v -> push v
      | None -> ())
    env.rhs_clauses.(pos);
  if env.use_cluster_index && not (Value.is_null current) then
    List.iter push (Cluster_index.nearest (cluster env pos) current ~k:4);
  List.rev (Value.null :: !out)

(* Clauses that must hold once the attributes in [positions] are fixed:
   every attribute is already fixed or being fixed now, and at least one is
   being fixed now (clauses fully inside the previously fixed set were
   checked when their last attribute froze and cannot be re-broken). *)
let clauses_in_scope env fixed positions =
  let in_step pos = List.mem pos positions in
  let ok pos = fixed.(pos) || in_step pos in
  let result = ref [] in
  Array.iteri
    (fun cid attrs ->
      if List.exists in_step attrs && List.for_all ok attrs then
        result := cid :: !result)
    env.clause_attrs;
  !result

let rec cross_product = function
  | [] -> [ [] ]
  | cands :: rest ->
    let tails = cross_product rest in
    List.concat_map (fun v -> List.map (fun tail -> v :: tail) tails) cands

let resolve env t =
  let rt = Tuple.copy t in
  let violated =
    let out = ref [] in
    Array.iter
      (fun cfd -> if Lhs_index.violates env.index cfd rt then out := Cfd.id cfd :: !out)
      env.sigma;
    !out
  in
  if violated = [] then rt
  else begin
    let fixed = Array.make env.arity true in
    let remaining = ref [] in
    (* Only attributes of violated clauses stay open; everything else is
       frozen at its current value (zero cost, already consistent). *)
    List.iter
      (fun cid ->
        List.iter
          (fun pos ->
            if fixed.(pos) then begin
              fixed.(pos) <- false;
              remaining := pos :: !remaining
            end)
          env.clause_attrs.(cid))
      violated;
    let remaining = ref (List.sort Int.compare !remaining) in
    while !remaining <> [] do
      let step_k = min env.k (List.length !remaining) in
      let best = ref None in
      let consider cost positions values =
        match !best with
        | Some (c, _, _) when c <= cost -> ()
        | _ -> best := Some (cost, positions, values)
      in
      List.iter
        (fun positions ->
          let scope = clauses_in_scope env fixed positions in
          let cand_lists = List.map (candidates env rt) positions in
          List.iter
            (fun values ->
              let scratch = Tuple.copy rt in
              List.iter2 (Tuple.set scratch) positions values;
              let scope_ok =
                List.for_all
                  (fun cid ->
                    not (Lhs_index.violates env.index env.sigma.(cid) scratch))
                  scope
              in
              if scope_ok then begin
                let change = Cost.tuple_change ~original:t ~repaired:scratch in
                let vio = Lhs_index.vio env.index scratch in
                consider (change *. float_of_int (1 + vio)) positions values
              end)
            (cross_product cand_lists))
        (combinations step_k !remaining);
      match !best with
      | None ->
        (* unreachable: the all-null candidate always satisfies the scope *)
        assert false
      | Some (_, positions, values) ->
        List.iter2 (Tuple.set rt) positions values;
        List.iter (fun pos -> fixed.(pos) <- true) positions;
        remaining := List.filter (fun pos -> not (List.mem pos positions)) !remaining
    done;
    rt
  end
