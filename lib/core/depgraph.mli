(** The attribute dependency graph of a CFD set and the stratification used
    by the optimized [PICKNEXT] (Section 7.2 mentions BATCHREPAIR is "very
    slow" without optimizations "based on the dependency graph of the CFDs").

    Nodes are attribute positions; each clause [(X → A, tp)] contributes
    edges [B → A] for every [B ∈ X].  Strongly connected components are
    condensed and topologically ordered; a clause's stratum is the
    condensation level of its RHS attribute.  Repairing upstream clauses
    first means their decisions are already fixed when downstream clauses
    are examined, cutting re-resolution churn on cyclic CFD sets. *)

val scc : n:int -> edges:(int * int) list -> int array
(** [scc ~n ~edges] assigns each node [0..n-1] a component id such that
    component ids are a reverse topological order: if there is an edge
    [u → v] across components then [comp.(u) < comp.(v)].  The numbering
    is canonical — a function of the edge {e set} (ties between
    incomparable components broken by smallest member node) — so
    permuting or duplicating [edges] cannot change the result. *)

val strata : Dq_relation.Schema.t -> Dq_cfd.Cfd.t array -> int array
(** Map each clause id to its stratum (small strata first). *)
