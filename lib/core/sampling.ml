open Dq_relation
open Dq_cfd
module Metrics = Dq_obs.Metrics
module Report = Dq_obs.Report
module Trace = Dq_obs.Trace
module Deadline = Dq_fault.Deadline

type strategy = By_violations of int list | By_cost of float list

let m_inspections = Metrics.counter "sampling.inspections"

let m_drawn = Metrics.counter "sampling.drawn"

let m_t_stratify = Metrics.timer "sampling.phase.stratify"

let m_t_score = Metrics.timer "sampling.phase.score"

type config = {
  epsilon : float;
  confidence : float;
  sample_size : int;
  fractions : float array;
  strategy : strategy;
}

let default_config ?(epsilon = 0.05) ?(confidence = 0.95) ?(sample_size = 200)
    () =
  {
    epsilon;
    confidence;
    sample_size;
    fractions = [| 0.2; 0.3; 0.5 |];
    strategy = By_violations [ 1; 3 ];
  }

let n_strata config =
  match config.strategy with
  | By_violations bs -> List.length bs + 1
  | By_cost bs -> List.length bs + 1

let rec sorted_ascending cmp = function
  | [] | [ _ ] -> true
  | x :: (y :: _ as rest) -> cmp x y <= 0 && sorted_ascending cmp rest

let validate_config config =
  let m = n_strata config in
  if not (config.epsilon > 0. && config.epsilon < 1.) then
    Error "epsilon must be in (0,1)"
  else if not (config.confidence > 0. && config.confidence < 1.) then
    Error "confidence must be in (0,1)"
  else if config.sample_size <= 0 then Error "sample_size must be positive"
  else if Array.length config.fractions <> m then
    Error
      (Printf.sprintf "fractions has %d entries but the strategy makes %d strata"
         (Array.length config.fractions) m)
  else if Array.exists (fun f -> f < 0.) config.fractions then
    Error "fractions must be non-negative"
  else if
    Float.abs (Array.fold_left ( +. ) 0. config.fractions -. 1.) > 1e-9
  then Error "fractions must sum to 1"
  else if
    not
      (sorted_ascending Float.compare (Array.to_list config.fractions))
  then Error "fractions must be non-decreasing (priority to dirtier strata)"
  else
    match config.strategy with
    | By_violations bs when not (sorted_ascending Int.compare bs) ->
      Error "violation boundaries must be ascending"
    | By_cost bs when not (sorted_ascending Float.compare bs) ->
      Error "cost boundaries must be ascending"
    | By_violations _ | By_cost _ -> Ok ()

type report = {
  sample : (int * Tuple.t) list;
  strata_sizes : int array;
  drawn : int array;
  inaccurate : int array;
  p_hat : float;
  z : float;
  z_critical : float;
  accepted : bool;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>strata sizes: %s@,drawn: %s@,inaccurate: %s@,p_hat=%.4f z=%.3f \
     z_critical=%.3f -> %s@]"
    (String.concat " " (Array.to_list (Array.map string_of_int r.strata_sizes)))
    (String.concat " " (Array.to_list (Array.map string_of_int r.drawn)))
    (String.concat " " (Array.to_list (Array.map string_of_int r.inaccurate)))
    r.p_hat r.z r.z_critical
    (if r.accepted then "ACCEPT (inaccuracy below bound)" else "REJECT (needs another round)")

let stratum_of config ~original ~sigma =
  match config.strategy with
  | By_violations boundaries ->
    let counts = Violation.vio_counts original sigma in
    fun (t_orig : Tuple.t) (_t_repaired : Tuple.t) ->
      let vio =
        match Hashtbl.find_opt counts (Tuple.tid t_orig) with
        | Some n -> n
        | None -> 0
      in
      List.fold_left (fun s b -> if vio >= b then s + 1 else s) 0 boundaries
  | By_cost boundaries ->
    fun t_orig t_repaired ->
      let cost = Cost.tuple_change ~original:t_orig ~repaired:t_repaired in
      List.fold_left (fun s b -> if cost >= b then s + 1 else s) 0 boundaries

let inspect ?(seed = 42) ?(deadline = Deadline.never) config ~original ~repair
    ~sigma ~oracle =
  Trace.span ~cat:"engine"
    ~args:(fun () ->
      [
        ("tuples", Dq_obs.Json.Int (Relation.cardinality repair));
        ("clauses", Dq_obs.Json.Int (Array.length sigma));
      ])
    "sampling.inspect"
  @@ fun () ->
  match validate_config config with
  | Error msg -> Error (Dq_error.Invalid_config ("Sampling.inspect: " ^ msg))
  | Ok () when Deadline.expired deadline ->
    (* A sampling verdict is accept-or-reject: there is no meaningful
       partial answer, so an expired deadline — checked on entry and
       between the stratify and score phases — fails outright. *)
    Error Dq_error.Deadline_exceeded
  | Ok () ->
    Metrics.incr m_inspections;
    let phases = ref [] in
    let m = n_strata config in
    let sizes = Array.make m 0 in
    let reservoirs =
      Array.init m (fun i ->
          let capacity =
            int_of_float
              (Float.round
                 (config.fractions.(i) *. float_of_int config.sample_size))
          in
          Reservoir.create ~seed:(seed + i) capacity)
    in
    Report.phase_m phases "stratify" m_t_stratify (fun () ->
        let stratum = stratum_of config ~original ~sigma in
        Relation.iter
          (fun t' ->
            match Relation.find original (Tuple.tid t') with
            | None -> () (* repairs preserve tids; ignore strays *)
            | Some t ->
              let s = stratum t t' in
              sizes.(s) <- sizes.(s) + 1;
              Reservoir.add reservoirs.(s) (s, t'))
          repair);
    Deadline.tick deadline;
    if Deadline.expired deadline then Error Dq_error.Deadline_exceeded
    else begin
    let sample =
      List.concat_map Reservoir.contents (Array.to_list reservoirs)
    in
    let drawn = Array.make m 0 in
    let inaccurate = Array.make m 0 in
    let r =
      Report.phase_m phases "score" m_t_score @@ fun () ->
      List.iter
        (fun (s, t') ->
          drawn.(s) <- drawn.(s) + 1;
          if oracle t' then inaccurate.(s) <- inaccurate.(s) + 1)
        sample;
      (* Weighted inaccuracy estimate: scale each stratum's rejects by the
         inverse sampling fraction s_i = |P_i| / drawn_i, then divide by the
         total population.  (The paper prints Σ|P_i|·s_i in the denominator,
         which does not reduce to e/k in the single-stratum case; Σ|P_i| is
         the intended normaliser.) *)
      let estimated_bad = ref 0. in
      let population = ref 0 in
      Array.iteri
        (fun i size ->
          population := !population + size;
          if drawn.(i) > 0 then begin
            let s_i = float_of_int size /. float_of_int drawn.(i) in
            estimated_bad :=
              !estimated_bad +. (float_of_int inaccurate.(i) *. s_i)
          end)
        sizes;
      let p_hat =
        if !population = 0 then 0.
        else !estimated_bad /. float_of_int !population
      in
      let k = Array.fold_left ( + ) 0 drawn in
      Metrics.add m_drawn k;
      let k = max k 1 in
      let z = Stats.z_statistic ~p_hat ~epsilon:config.epsilon ~sample_size:k in
      let z_critical = Stats.critical_value ~confidence:config.confidence in
      {
        sample;
        strata_sizes = sizes;
        drawn;
        inaccurate;
        p_hat;
        z;
        z_critical;
        accepted = z <= -.z_critical;
      }
    in
    let ints a =
      Dq_obs.Json.List
        (Array.to_list (Array.map (fun n -> Dq_obs.Json.Int n) a))
    in
    let obs =
      Report.make ~engine:"sampling"
        ~summary:
          [
            ("strata_sizes", ints r.strata_sizes);
            ("drawn", ints r.drawn);
            ("inaccurate", ints r.inaccurate);
            ("p_hat", Dq_obs.Json.Float r.p_hat);
            ("z", Dq_obs.Json.Float r.z);
            ("z_critical", Dq_obs.Json.Float r.z_critical);
            ("accepted", Dq_obs.Json.Bool r.accepted);
          ]
        ~phases:!phases ()
    in
    Ok (r, obs)
    end
