(** The sampling module of Section 6: stratified inspection of a repair
    with a statistical accuracy guarantee.

    A repair [Repr] of a dirty database [D] is partitioned into strata by
    how suspicious each tuple is — its violation count [vio(t)] in [D], or
    alternatively the cost of the changes the repair made to it.  A sample
    of [k] tuples is drawn with a (non-decreasing) fraction [ξᵢ] from each
    stratum, so the user inspects proportionally more of the tuples most
    likely to be wrong.  From the user's verdicts a weighted inaccuracy
    rate [p̂] is computed and the one-sided z-test of {!Stats} decides
    whether the repair's inaccuracy rate is below ε at confidence δ. *)

open Dq_relation

type strategy =
  | By_violations of int list
      (** stratum boundaries on [vio(t)] in the original database,
          ascending; [m-1] boundaries make [m] strata *)
  | By_cost of float list
      (** stratum boundaries on [cost(t', t)], the repair cost of the
          tuple *)

type config = {
  epsilon : float;  (** acceptable inaccuracy rate bound ε *)
  confidence : float;  (** confidence level δ *)
  sample_size : int;  (** total tuples the user is asked to inspect, k *)
  fractions : float array;
      (** ξ₁ … ξ_m, summing to 1, non-decreasing: the share of the sample
          drawn from each stratum *)
  strategy : strategy;
}

val default_config : ?epsilon:float -> ?confidence:float -> ?sample_size:int -> unit -> config
(** ε = 0.05, δ = 0.95, k = 200, three strata on [vio] boundaries [1; 3]
    with fractions [0.2; 0.3; 0.5]. *)

val validate_config : config -> (unit, string) result

type report = {
  sample : (int * Tuple.t) list;  (** (stratum, repaired tuple) inspected *)
  strata_sizes : int array;  (** |Pᵢ| *)
  drawn : int array;  (** tuples drawn from each stratum *)
  inaccurate : int array;  (** eᵢ: user-rejected tuples per stratum *)
  p_hat : float;  (** weighted inaccuracy estimate *)
  z : float;  (** test statistic *)
  z_critical : float;  (** z_α *)
  accepted : bool;  (** z ≤ −z_α: inaccuracy < ε at confidence δ *)
}

val pp_report : Format.formatter -> report -> unit

val inspect :
  ?seed:int ->
  ?deadline:Dq_fault.Deadline.t ->
  config ->
  original:Relation.t ->
  repair:Relation.t ->
  sigma:Dq_cfd.Cfd.t array ->
  oracle:(Tuple.t -> bool) ->
  (report * Dq_obs.Report.t, Dq_error.t) result
(** Draw and score a stratified sample.  [oracle t'] is the user's verdict
    on a repaired tuple: [true] means inaccurate.  [original] supplies the
    pre-repair tuples for stratification.  An invalid configuration is
    [Error (Invalid_config _)].  The attached {!Dq_obs.Report.t} carries
    the stratum statistics and the test verdict in its summary (no
    provenance — inspection changes nothing).

    A sampling verdict is accept-or-reject, so there is no degraded
    partial result: an expired [deadline] — checked on entry and at the
    stratify/score phase boundary — is [Error Deadline_exceeded]. *)
