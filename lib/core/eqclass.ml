open Dq_relation

type target = Unfixed | Const of Value.t | Null

let pp_target ppf = function
  | Unfixed -> Format.pp_print_string ppf "_"
  | Const v -> Value.pp ppf v
  | Null -> Format.pp_print_string ppf "null"

type info = {
  mutable target : target;
  mutable repr : Value.t;
  mutable members : (int * int) list;
  mutable size : int;
  mutable rank : int;
}

type t = {
  arity : int;
  original : tid:int -> attr:int -> Value.t;
  parent : (int, int) Hashtbl.t; (* non-root cell -> parent cell *)
  info : (int, info) Hashtbl.t; (* root cell -> class info *)
}

let create ~arity ~original =
  if arity <= 0 then invalid_arg "Eqclass.create: arity must be positive";
  { arity; original; parent = Hashtbl.create 1024; info = Hashtbl.create 1024 }

let register eq c =
  if (not (Hashtbl.mem eq.info c)) && not (Hashtbl.mem eq.parent c) then begin
    let tid = c / eq.arity and attr = c mod eq.arity in
    Hashtbl.add eq.info c
      {
        target = Unfixed;
        repr = eq.original ~tid ~attr;
        members = [ (tid, attr) ];
        size = 1;
        rank = 0;
      }
  end

let cell eq ~tid ~attr =
  if attr < 0 || attr >= eq.arity then
    invalid_arg (Printf.sprintf "Eqclass.cell: attribute %d out of range" attr);
  let c = (tid * eq.arity) + attr in
  register eq c;
  c

let tid_attr eq c = (c / eq.arity, c mod eq.arity)

let rec find eq c =
  register eq c;
  match Hashtbl.find_opt eq.parent c with
  | None -> c
  | Some p ->
    let root = find eq p in
    if root <> p then Hashtbl.replace eq.parent c root;
    root

let same_class eq c1 c2 = find eq c1 = find eq c2

let info_of eq c = Hashtbl.find eq.info (find eq c)

let target eq c = (info_of eq c).target

let repr eq c = (info_of eq c).repr

let effective eq c =
  let i = info_of eq c in
  match i.target with Unfixed -> i.repr | Const v -> v | Null -> Value.null

let upgrade_ok before after =
  match before, after with
  | Unfixed, _ -> true
  | Const _, Null -> true
  | Const a, Const b -> Value.equal a b
  | Const _, Unfixed -> false
  | Null, Null -> true
  | Null, (Unfixed | Const _) -> false

let set_target eq c tgt =
  let i = info_of eq c in
  if not (upgrade_ok i.target tgt) then
    invalid_arg
      (Format.asprintf "Eqclass.set_target: illegal move %a -> %a" pp_target
         i.target pp_target tgt);
  i.target <- tgt

let join_targets t1 t2 =
  match t1, t2 with
  | Unfixed, t | t, Unfixed -> t
  | Null, _ | _, Null -> Null
  | Const a, Const b ->
    if Value.equal a b then Const a
    else
      invalid_arg
        (Format.asprintf
           "Eqclass.union: classes with distinct constant targets %a / %a"
           Value.pp a Value.pp b)

let union eq c1 c2 =
  let r1 = find eq c1 and r2 = find eq c2 in
  if r1 = r2 then r1
  else begin
    let i1 = Hashtbl.find eq.info r1 and i2 = Hashtbl.find eq.info r2 in
    let joined = join_targets i1.target i2.target in
    let root, child, ri, ci =
      if i1.rank >= i2.rank then (r1, r2, i1, i2) else (r2, r1, i2, i1)
    in
    Hashtbl.replace eq.parent child root;
    Hashtbl.remove eq.info child;
    ri.target <- joined;
    (* Keep a constant-bearing side's representative: when the joined target
       is a constant the representative is irrelevant, but when both sides
       were Unfixed the surviving root's representative stands. *)
    ri.members <- List.rev_append ci.members ri.members;
    ri.size <- ri.size + ci.size;
    if ri.rank = ci.rank then ri.rank <- ri.rank + 1;
    root
  end

let members eq c = (info_of eq c).members

let size eq c = (info_of eq c).size

let n_cells eq = Hashtbl.length eq.parent + Hashtbl.length eq.info

let n_classes eq = Hashtbl.length eq.info

let iter_roots f eq =
  (* Collect first: [f] may trigger path compression, mutating the table. *)
  let roots = Hashtbl.fold (fun root _ acc -> root :: acc) eq.info [] in
  List.iter f roots

let set_repr eq c v =
  let i = info_of eq c in
  match i.target with
  | Unfixed -> i.repr <- v
  | Const _ | Null ->
    invalid_arg "Eqclass.set_repr: representative is fixed once targeted"

(* ---- snapshots (checkpoint/resume) ----------------------------------- *)

type class_state = {
  cls_root : int;
  cls_target : target;
  cls_repr : Value.t;
  cls_rank : int;
  cls_members : (int * int) list;
}

type snapshot = { snap_arity : int; snap_classes : class_state list }

let snapshot eq =
  (* Roots in sorted order so the snapshot is a pure function of the
     partition, independent of hash-table history. *)
  let roots = Hashtbl.fold (fun root _ acc -> root :: acc) eq.info [] in
  let classes =
    List.map
      (fun root ->
        let i = Hashtbl.find eq.info root in
        {
          cls_root = root;
          cls_target = i.target;
          cls_repr = i.repr;
          cls_rank = i.rank;
          (* Member order is preserved exactly: resumed [members] lists
             must replay identically. *)
          cls_members = i.members;
        })
      (List.sort compare roots)
  in
  { snap_arity = eq.arity; snap_classes = classes }

let restore ~original { snap_arity = arity; snap_classes } =
  let eq = create ~arity ~original in
  List.iter
    (fun { cls_root; cls_target; cls_repr; cls_rank; cls_members } ->
      Hashtbl.add eq.info cls_root
        {
          target = cls_target;
          repr = cls_repr;
          members = cls_members;
          size = List.length cls_members;
          rank = cls_rank;
        };
      (* Fully compressed: every non-root member points straight at the
         root.  [find] keeps it that way, so a restored structure and the
         structure it was snapshotted from answer all queries alike. *)
      List.iter
        (fun (tid, attr) ->
          let c = (tid * arity) + attr in
          if c <> cls_root then Hashtbl.replace eq.parent c cls_root)
        cls_members)
    snap_classes;
  eq
