open Dq_relation
open Dq_cfd

type config = {
  max_rounds : int;
  insertion_cost_per_null : float;
  max_key_scan : int;
}

let default_config ?(max_rounds = 4) ?(insertion_cost_per_null = 0.5) () =
  { max_rounds; insertion_cost_per_null; max_key_scan = 4096 }

type stats = {
  rounds : int;
  cells_modified : int;
  tuples_inserted : int;
  cfds_satisfied : bool;
  inds_satisfied : bool;
  runtime : float;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>rounds=%d cells_modified=%d inserted=%d cfds_ok=%b inds_ok=%b \
     runtime=%.3fs@]"
    s.rounds s.cells_modified s.tuples_inserted s.cfds_satisfied
    s.inds_satisfied s.runtime

(* Distance between a dangling reference and a candidate referenced key:
   weighted, length-normalised edit distance summed over the key columns. *)
let redirect_cost t lhs key candidate =
  let cost = ref 0. in
  Array.iteri
    (fun i pos ->
      cost :=
        !cost
        +. Cost.change ~weight:(Tuple.weight t pos) key.(i) candidate.(i))
    lhs;
  !cost

let nearest_key config t lhs key keys =
  let best = ref None in
  let scanned = ref 0 in
  (try
     Vkey.Table.iter
       (fun candidate () ->
         incr scanned;
         if !scanned > config.max_key_scan then raise Exit;
         let c = redirect_cost t lhs key candidate in
         match !best with
         | Some (_, bc) when bc <= c -> ()
         | _ -> best := Some (candidate, c))
       keys
   with Exit -> ());
  !best

(* Resolve every dangling reference of one IND; returns (modified cells,
   inserted tuples). *)
let resolve_ind config db ind =
  let r1 = Database.find_exn db (Ind.lhs_relation ind) in
  let r2 = Database.find_exn db (Ind.rhs_relation ind) in
  let lhs = Ind.lhs_positions ind and rhs = Ind.rhs_positions ind in
  let keys = Vkey.Table.create 256 in
  Relation.iter
    (fun t ->
      let key = Array.map (Tuple.get t) rhs in
      if not (Array.exists Value.is_null key) then
        Vkey.Table.replace keys key ())
    r2;
  let arity2 = Schema.arity (Relation.schema r2) in
  let insertion_cost =
    config.insertion_cost_per_null *. float_of_int (arity2 - Array.length rhs)
  in
  let modified = ref 0 and inserted = ref 0 in
  let dangling =
    Relation.fold
      (fun acc t ->
        match Ind.project_lhs ind t with
        | Some key when not (Vkey.Table.mem keys key) -> (t, key) :: acc
        | Some _ | None -> acc)
      [] r1
    |> List.rev
  in
  List.iter
    (fun (t, key) ->
      let redirect = nearest_key config t lhs key keys in
      match redirect with
      | Some (candidate, c) when c <= insertion_cost ->
        Array.iteri
          (fun i pos ->
            if not (Value.equal (Tuple.get t pos) candidate.(i)) then begin
              Relation.set_value r1 t pos candidate.(i);
              incr modified
            end)
          lhs;
        (* the key set is unchanged: candidate was already present *)
        ()
      | Some _ | None ->
        (* insert a referenced tuple carrying the key, null elsewhere *)
        let values = Array.make arity2 Value.null in
        Array.iteri (fun i pos -> values.(pos) <- key.(i)) rhs;
        ignore (Relation.insert r2 values);
        incr inserted;
        Vkey.Table.replace keys key ())
    dangling;
  (!modified, !inserted)

let validate db cfds inds =
  List.iter
    (fun (name, _) ->
      if not (Database.mem db name) then
        invalid_arg
          (Printf.sprintf "Ind_repair.repair: unknown relation %S in cfds" name))
    cfds;
  List.iter
    (fun ind ->
      List.iter
        (fun name ->
          if not (Database.mem db name) then
            invalid_arg
              (Printf.sprintf "Ind_repair.repair: unknown relation %S in ind %s"
                 name (Ind.name ind)))
        [ Ind.lhs_relation ind; Ind.rhs_relation ind ])
    inds

let cfds_clean db cfds =
  List.for_all
    (fun (name, sigma) -> Violation.satisfies (Database.find_exn db name) sigma)
    cfds

let repair ?(config = default_config ()) db ~cfds ~inds =
  let started = Unix.gettimeofday () in
  validate db cfds inds;
  let db = Database.copy db in
  let cells_modified = ref 0 and tuples_inserted = ref 0 in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < config.max_rounds do
    incr rounds;
    let changed_this_round = ref false in
    (* 1. per-relation CFD repair, swapping the repaired copies in *)
    List.iter
      (fun (name, sigma) ->
        let rel = Database.find_exn db name in
        if not (Violation.satisfies rel sigma) then begin
          let repaired, stats =
            match Batch_repair.repair rel sigma with
            | Ok (pair, _report) -> pair
            | Error e -> failwith (Dq_error.to_string e)
          in
          cells_modified := !cells_modified + stats.Batch_repair.cells_changed;
          if stats.Batch_repair.cells_changed > 0 then
            changed_this_round := true;
          (* BATCHREPAIR returns a fresh copy with the same tids; write its
             values back into the registered relation *)
          Relation.iter
            (fun t ->
              let src = Relation.find_exn repaired (Tuple.tid t) in
              for pos = 0 to Tuple.arity t - 1 do
                if not (Value.equal (Tuple.get t pos) (Tuple.get src pos)) then
                  Relation.set_value rel t pos (Tuple.get src pos)
              done)
            rel
        end)
      cfds;
    (* 2. IND resolution *)
    List.iter
      (fun ind ->
        let m, i = resolve_ind config db ind in
        cells_modified := !cells_modified + m;
        tuples_inserted := !tuples_inserted + i;
        if m + i > 0 then changed_this_round := true)
      inds;
    if (not !changed_this_round) || (Ind.satisfies db inds && cfds_clean db cfds)
    then continue := false
  done;
  ( db,
    {
      rounds = !rounds;
      cells_modified = !cells_modified;
      tuples_inserted = !tuples_inserted;
      cfds_satisfied = cfds_clean db cfds;
      inds_satisfied = Ind.satisfies db inds;
      runtime = Unix.gettimeofday () -. started;
    } )
