open Dq_relation

type user = {
  inspect : Tuple.t -> Tuple.t option;
  revise_cfds : Dq_cfd.Cfd.t array -> Dq_cfd.Cfd.t array;
}

let passive_user inspect = { inspect; revise_cfds = Fun.id }

type algorithm = Batch | Incremental of Inc_repair.ordering

type round_log = {
  round : int;
  report : Sampling.report;
  corrections : int;
}

type outcome = {
  repair : Relation.t;
  sigma : Dq_cfd.Cfd.t array;
  rounds : round_log list;
  accepted : bool;
}

let run_repairer algorithm db sigma =
  let unwrap = function
    | Ok ((rel, _stats), _report) -> rel
    | Error e -> failwith (Dq_error.to_string e)
  in
  match algorithm with
  | Batch -> unwrap (Batch_repair.repair db sigma)
  | Incremental ordering -> unwrap (Inc_repair.repair_dirty ~ordering db sigma)

let clean ?(max_rounds = 5) ?(seed = 42) ?(algorithm = Batch) ~sampling ~user
    db sigma =
  if max_rounds < 1 then invalid_arg "Framework.clean: max_rounds must be >= 1";
  let working = Relation.copy db in
  let rec round i sigma logs =
    let repair = run_repairer algorithm working sigma in
    let corrections = ref [] in
    let oracle t' =
      match user.inspect t' with
      | None -> false
      | Some fixed ->
        corrections := (Tuple.tid t', fixed) :: !corrections;
        true
    in
    let report =
      match
        Sampling.inspect ~seed:(seed + i) sampling ~original:working ~repair
          ~sigma ~oracle
      with
      | Ok (report, _obs) -> report
      | Error e -> invalid_arg ("Framework.clean: " ^ Dq_error.to_string e)
    in
    let log = { round = i; report; corrections = List.length !corrections } in
    let logs = log :: logs in
    if report.Sampling.accepted || i >= max_rounds then
      {
        repair;
        sigma;
        rounds = List.rev logs;
        accepted = report.Sampling.accepted;
      }
    else begin
      (* Fold the user's edits back into the working database with full
         confidence so the next round's repair keeps them. *)
      List.iter
        (fun (tid, fixed) ->
          match Relation.find working tid with
          | None -> ()
          | Some t ->
            for pos = 0 to Tuple.arity t - 1 do
              Relation.set_value working t pos (Tuple.get fixed pos);
              Tuple.set_weight t pos 1.0
            done)
        !corrections;
      round (i + 1) (user.revise_cfds sigma) logs
    end
  in
  round 1 sigma []
