open Dq_relation
open Dq_cfd
module Json = Dq_obs.Json
module Provenance = Dq_obs.Provenance

type counters = {
  pass : int;
  steps : int;
  rescans : int;
  merges : int;
  rhs_fixes : int;
  lhs_fixes : int;
  nulls_introduced : int;
}

type t = {
  kind : string;
  fingerprint : int;
  use_dependency_graph : bool;
  counters : counters;
  eq : Eqclass.snapshot;
  trail : Provenance.entry list;
}

let version = 1

let batch_kind = "batch-repair"

let opt_fd_kind = "opt-fd-repair"

let known_kinds = [ batch_kind; opt_fd_kind ]

(* ---- fingerprint ------------------------------------------------------ *)

(* A cheap structural hash over everything that must not change between
   the checkpointing run and the resuming one: schema, tuples (ids,
   values, weights), ruleset and configuration. *)
let fingerprint rel sigma ~use_dependency_graph =
  let h = ref 5381 in
  let mix n = h := ((!h * 33) + n) land 0x3FFFFFFF in
  let schema = Relation.schema rel in
  Array.iter (fun a -> mix (Hashtbl.hash a)) (Schema.attributes schema);
  Relation.iter
    (fun t ->
      mix (Tuple.tid t);
      for i = 0 to Tuple.arity t - 1 do
        mix (Hashtbl.hash (Tuple.get t i));
        mix (Hashtbl.hash (Tuple.weight t i))
      done)
    rel;
  Array.iter (fun cfd -> mix (Hashtbl.hash (Format.asprintf "%a" Cfd.pp cfd))) sigma;
  mix (Bool.to_int use_dependency_graph);
  !h

(* ---- exact value round-trips ------------------------------------------ *)

(* Json renders floats with "%.12g", which is lossy.  Checkpoints encode
   floats as C99 hex literals instead: [float_of_string] reads them back
   bit-for-bit, so resumed cost arithmetic is identical. *)
let float_to_json f = Json.String (Printf.sprintf "%h" f)

let float_of_json = function
  | Json.String s -> (
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad float %S" s))
  | _ -> Error "expected a float (hex string)"

let value_to_json = function
  | Value.Null -> Json.Null
  | Value.Int i -> Json.Obj [ ("i", Json.Int i) ]
  | Value.Float f -> Json.Obj [ ("f", float_to_json f) ]
  | Value.String s -> Json.Obj [ ("s", Json.String s) ]

let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Obj [ ("i", Json.Int i) ] -> Ok (Value.Int i)
  | Json.Obj [ ("f", f) ] -> Result.map (fun f -> Value.Float f) (float_of_json f)
  | Json.Obj [ ("s", Json.String s) ] -> Ok (Value.String s)
  | _ -> Error "expected a value"

let target_to_json = function
  | Eqclass.Unfixed -> Json.String "unfixed"
  | Eqclass.Null -> Json.String "null"
  | Eqclass.Const v -> Json.Obj [ ("const", value_to_json v) ]

let target_of_json = function
  | Json.String "unfixed" -> Ok Eqclass.Unfixed
  | Json.String "null" -> Ok Eqclass.Null
  | Json.Obj [ ("const", v) ] ->
    Result.map (fun v -> Eqclass.Const v) (value_of_json v)
  | _ -> Error "expected a target"

(* ---- (de)serialisation helpers ---------------------------------------- *)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name json =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let bool_field name json =
  match Json.member name json with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let list_field name json =
  match Json.member name json with
  | Some (Json.List l) -> Ok l
  | Some _ -> Error (Printf.sprintf "field %S must be a list" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

(* ---- eq snapshot ------------------------------------------------------ *)

let class_to_json (c : Eqclass.class_state) =
  Json.Obj
    [
      ("root", Json.Int c.cls_root);
      ("target", target_to_json c.cls_target);
      ("repr", value_to_json c.cls_repr);
      ("rank", Json.Int c.cls_rank);
      ( "members",
        Json.List
          (List.map
             (fun (tid, attr) -> Json.List [ Json.Int tid; Json.Int attr ])
             c.cls_members) );
    ]

let class_of_json json =
  let* cls_root = int_field "root" json in
  let* target = field "target" json in
  let* cls_target = target_of_json target in
  let* repr = field "repr" json in
  let* cls_repr = value_of_json repr in
  let* cls_rank = int_field "rank" json in
  let* members = list_field "members" json in
  let* cls_members =
    map_result
      (function
        | Json.List [ Json.Int tid; Json.Int attr ] -> Ok (tid, attr)
        | _ -> Error "expected a [tid, attr] pair")
      members
  in
  Ok { Eqclass.cls_root; cls_target; cls_repr; cls_rank; cls_members }

let eq_to_json (s : Eqclass.snapshot) =
  Json.Obj
    [
      ("arity", Json.Int s.snap_arity);
      ("classes", Json.List (List.map class_to_json s.snap_classes));
    ]

let eq_of_json json =
  let* snap_arity = int_field "arity" json in
  let* classes = list_field "classes" json in
  let* snap_classes = map_result class_of_json classes in
  Ok { Eqclass.snap_arity; snap_classes }

(* ---- provenance trail ------------------------------------------------- *)

let entry_to_json (e : Provenance.entry) =
  Json.Obj
    [
      ("tid", Json.Int e.tid);
      ("attr", Json.Int e.attr);
      ("attr_name", Json.String e.attr_name);
      ("old", value_to_json e.old_value);
      ("new", value_to_json e.new_value);
      ( "clause",
        match e.clause with None -> Json.Null | Some c -> Json.String c );
      ("cost", float_to_json e.cost_delta);
      ("pass", Json.Int e.pass);
    ]

let entry_of_json json =
  let* tid = int_field "tid" json in
  let* attr = int_field "attr" json in
  let* attr_name =
    match Json.member "attr_name" json with
    | Some (Json.String s) -> Ok s
    | _ -> Error "field \"attr_name\" must be a string"
  in
  let* old_v = field "old" json in
  let* old_value = value_of_json old_v in
  let* new_v = field "new" json in
  let* new_value = value_of_json new_v in
  let* clause =
    match Json.member "clause" json with
    | Some Json.Null -> Ok None
    | Some (Json.String c) -> Ok (Some c)
    | _ -> Error "field \"clause\" must be a string or null"
  in
  let* cost = field "cost" json in
  let* cost_delta = float_of_json cost in
  let* pass = int_field "pass" json in
  Ok { Provenance.tid; attr; attr_name; old_value; new_value; clause; cost_delta; pass }

(* ---- whole checkpoint ------------------------------------------------- *)

let to_json cp =
  Json.Obj
    [
      ("version", Json.Int version);
      ("kind", Json.String cp.kind);
      ("fingerprint", Json.Int cp.fingerprint);
      ("use_dependency_graph", Json.Bool cp.use_dependency_graph);
      ("pass", Json.Int cp.counters.pass);
      ("steps", Json.Int cp.counters.steps);
      ("rescans", Json.Int cp.counters.rescans);
      ("merges", Json.Int cp.counters.merges);
      ("rhs_fixes", Json.Int cp.counters.rhs_fixes);
      ("lhs_fixes", Json.Int cp.counters.lhs_fixes);
      ("nulls_introduced", Json.Int cp.counters.nulls_introduced);
      ("eq", eq_to_json cp.eq);
      ("trail", Json.List (List.map entry_to_json cp.trail));
    ]

let of_json json =
  let* v = int_field "version" json in
  if v <> version then
    Error
      (Printf.sprintf "unsupported checkpoint version %d (this build reads %d)"
         v version)
  else
    let* kind =
      match Json.member "kind" json with
      | Some (Json.String s) -> Ok s
      | _ -> Error "missing field \"kind\""
    in
    if not (List.mem kind known_kinds) then
      Error (Printf.sprintf "unsupported checkpoint kind %S" kind)
    else
      let* fingerprint = int_field "fingerprint" json in
      let* use_dependency_graph = bool_field "use_dependency_graph" json in
      let* pass = int_field "pass" json in
      let* steps = int_field "steps" json in
      let* rescans = int_field "rescans" json in
      let* merges = int_field "merges" json in
      let* rhs_fixes = int_field "rhs_fixes" json in
      let* lhs_fixes = int_field "lhs_fixes" json in
      let* nulls_introduced = int_field "nulls_introduced" json in
      let* eq_json = field "eq" json in
      let* eq = eq_of_json eq_json in
      let* trail_json = list_field "trail" json in
      let* trail = map_result entry_of_json trail_json in
      Ok
        {
          kind;
          fingerprint;
          use_dependency_graph;
          counters =
            {
              pass;
              steps;
              rescans;
              merges;
              rhs_fixes;
              lhs_fixes;
              nulls_introduced;
            };
          eq;
          trail;
        }

let save path cp =
  Dq_fault.Atomic_io.write_file path (Json.to_string ~minify:true (to_json cp))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    match Json.parse text with
    | Error msg -> Error ("not a checkpoint: " ^ msg)
    | Ok json -> of_json json)
