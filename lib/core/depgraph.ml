open Dq_cfd

(* Tarjan's strongly-connected-components algorithm, iterative-friendly
   sizes here (attribute counts are tiny), so the recursive form is fine. *)
let tarjan ~n ~edges =
  let adj = Array.make n [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp = Array.make n (-1) in
  let comps = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order; [comps] collected
     by consing is therefore in topological order: sources get low ids. *)
  List.iteri (fun i members -> List.iter (fun v -> comp.(v) <- i) members) !comps;
  comp

(* Tarjan's numbering is topological but not canonical: incomparable
   components come out in an order that depends on the adjacency-list
   order, i.e. on the order [edges] was supplied in.  Renumber with
   Kahn's algorithm, breaking ties by each component's smallest member
   node, so the result is a function of the edge {e set} — callers
   (strata, the interaction analyzer) then get identical output under
   clause permutation. *)
let scc ~n ~edges =
  let comp0 = tarjan ~n ~edges in
  let n_comps = Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp0 in
  if n_comps = 0 then comp0
  else begin
    let cond = Array.make_matrix n_comps n_comps false in
    let indegree = Array.make n_comps 0 in
    List.iter
      (fun (u, v) ->
        let cu = comp0.(u) and cv = comp0.(v) in
        if cu <> cv && not cond.(cu).(cv) then begin
          cond.(cu).(cv) <- true;
          indegree.(cv) <- indegree.(cv) + 1
        end)
      edges;
    let smallest = Array.make n_comps max_int in
    for v = n - 1 downto 0 do
      smallest.(comp0.(v)) <- v
    done;
    let rank = Array.make n_comps (-1) in
    for next = 0 to n_comps - 1 do
      (* smallest-member component among those with no unprocessed
         predecessor *)
      let pick = ref (-1) in
      for c = n_comps - 1 downto 0 do
        if rank.(c) = -1 && indegree.(c) = 0 then
          if !pick = -1 || smallest.(c) < smallest.(!pick) then pick := c
      done;
      let c = !pick in
      rank.(c) <- next;
      for d = 0 to n_comps - 1 do
        if cond.(c).(d) then indegree.(d) <- indegree.(d) - 1
      done
    done;
    Array.map (fun c -> rank.(c)) comp0
  end

let strata schema sigma =
  let n = Dq_relation.Schema.arity schema in
  let edges =
    Array.to_list sigma
    |> List.concat_map (fun cfd ->
           let rhs = Cfd.rhs cfd in
           Array.to_list (Cfd.lhs cfd) |> List.map (fun b -> (b, rhs)))
  in
  let comp = scc ~n ~edges in
  Array.map (fun cfd -> comp.(Cfd.rhs cfd)) sigma
