(** BATCHREPAIR (Section 4, Figures 4–5): heuristic repair of a dirty
    database against a set of CFDs.

    The algorithm maintains equivalence classes of tuple attributes
    ({!Eqclass}) and a per-clause set of (potentially) dirty tuples.  Each
    step, [PICKNEXT] scores one candidate fix per dirty (clause, tuple)
    pair and applies the cheapest:

    - case 1.1 — a constant-RHS clause with an unfixed target: upgrade the
      RHS class's target to the pattern constant;
    - case 2.1 — two tuples disagree on a wildcard-RHS clause and at least
      one RHS class is unfixed: merge the two classes;
    - cases 1.2 / 2.2 — the RHS targets are committed constants: change an
      LHS attribute instead, to a [FINDV]-chosen semantically related value
      if one resolves the violation, otherwise to [null].

    Every step merges classes or upgrades a target in the one-way lattice
    [_ → const → null], so the algorithm terminates (Theorem 4.2) even on
    CFD sets where RHS-only FD repairing would loop (Example 4.1).  When no
    dirty tuples remain, still-unfixed classes are instantiated with their
    least-cost constant, which may surface new violations; the loop then
    resumes until none remain. *)

open Dq_relation
open Dq_cfd

type stats = {
  steps : int;  (** resolution steps applied *)
  merges : int;  (** case-2.1 class merges *)
  rhs_fixes : int;  (** case-1.1 target upgrades *)
  lhs_fixes : int;  (** case-1.2/2.2 LHS changes *)
  nulls_introduced : int;  (** targets upgraded to [null] *)
  cells_changed : int;  (** attribute values differing from the input *)
  instantiate_visits : int;
      (** class roots visited across all instantiation rounds — the
          re-resolution churn metric the shard partition cuts: a
          full-width run revisits every cell's root each round, a
          partitioned run only the roots of each shard's own columns *)
  runtime : float;  (** wall-clock seconds *)
}

val pp_stats : Format.formatter -> stats -> unit

type checkpoint_spec = {
  path : string;  (** where to write snapshots ({!Checkpoint.save}) *)
  every : int;  (** write one every [every] pass boundaries (>= 1) *)
}

val repair :
  ?pool:Dq_parallel.Pool.t ->
  ?use_dependency_graph:bool ->
  ?deadline:Dq_fault.Deadline.t ->
  ?checkpoint:checkpoint_spec ->
  ?resume:Checkpoint.t ->
  ?partition:int array ->
  Relation.t ->
  Cfd.t array ->
  ((Relation.t * stats) * Dq_obs.Report.t, Dq_error.t) result
(** [repair d sigma] returns a repaired deep copy of [d] (tids preserved)
    satisfying [sigma], together with statistics and a structured
    {!Dq_obs.Report.t}.  The report's provenance trail holds one entry per
    effective-value change — replaying it over [d] with
    {!Dq_obs.Provenance.replay} reconstructs the repaired relation
    byte-for-byte — and its summary repeats the deterministic counters of
    [stats], so reports are {!Dq_obs.Report.equal} across job counts.
    [Error (Internal _)] signals a broken engine invariant (step budget or
    rescan convergence) — a bug, not a property of the input.

    The optional [pool] parallelises the initial Dirty_Tuples scan over
    constant clauses (valid because at initialisation effective values
    equal original values, so the scan is a pure read); offers are
    replayed in relation order, keeping the repair byte-identical at any
    job count.  The resolution loop itself — one globally cheapest fix at
    a time against shared union–find state — stays sequential.

    [PICKNEXT] is realised as a lazy priority queue over (clause, tuple)
    pairs keyed by plan cost: popped pairs are re-verified against the
    current targets and re-queued at their true cost when stale, so each
    step applies the globally cheapest live fix without rescanning every
    dirty tuple — the optimization that makes BATCHREPAIR scale
    (Section 7.2).  [use_dependency_graph] (default [true]) additionally
    biases freshly discovered violations by their stratum in the SCC
    condensation of the attribute dependency graph, so upstream clauses
    are scored first.

    {2 Deadlines}

    [deadline] stops the run cooperatively.  Wall-clock deadlines
    ({!Dq_fault.Deadline.after}) are polled every 1024 resolution steps
    and at every pass boundary; pass-count deadlines
    ({!Dq_fault.Deadline.after_passes}) tick {e only} at boundaries, so a
    run cut after [k] passes is exactly the first [k] passes of the
    uninterrupted run.  A cut run still instantiates every unfixed class
    — the result is a usable, fully-valued relation that may however
    still violate [sigma] — and its report carries
    [degraded = Some {reason; progress}], where [progress] is the share
    of known repair steps that were applied.  If the deadline expires
    before any step of a fresh run, there is nothing usable and the
    result is [Error Deadline_exceeded].

    {2 Checkpoint / resume}

    [checkpoint] snapshots the run's state ({!Checkpoint}) at pass
    boundaries — atomically, so a crash mid-write leaves the previous
    snapshot intact.  [resume] continues from such a snapshot: the
    relation and ruleset must be the ones the checkpoint was taken from
    (enforced by fingerprint; mismatch is [Error (Invalid_input _)]).

    Either option switches the engine into {e canonical mode}: every
    decision that could depend on hash-table iteration history (offer
    order, conflict-partner choice, float-summation order, instantiation
    order) runs through a value-sorted path instead, so a run killed at
    any point and resumed from its last checkpoint produces output
    byte-identical to the same run left uninterrupted {e with the same
    options}.  Canonical mode may pick different (equally valid,
    equally costed) repairs than the default mode; without [checkpoint]
    or [resume] the engine is byte-identical to what it produced before
    these options existed.

    {2 Shard partition}

    [partition] maps each clause id to a shard id (the
    [Dq_analysis.Interaction] shard plan).  Clause groups with disjoint
    attribute sets are repaired independently — each over the projection
    of the input onto its own attributes — and the per-shard results are
    written back into one copy of the input.  Because no two shards touch
    a common attribute, the merged relation equals the full-width result,
    while each shard's queue, buckets and instantiation rounds only visit
    its own columns (see [stats.instantiate_visits]).  With a [pool],
    shards run as parallel pool tasks; the merge is in shard order either
    way, so output does not depend on the job count.  The report's
    summary gains a ["shards"] count and its phases are
    ["shardN."]-prefixed.  A partition whose clauses share attributes
    across shards would break the disjointness argument — use the
    analyzer's partition, which is correct by construction.  Partitioned
    repair refuses [checkpoint]/[resume]
    ([Error (Invalid_config _)]); a partition with a single shard (or
    [None]) falls back to the ordinary path. *)
