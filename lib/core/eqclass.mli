(** Equivalence classes of tuple attributes with target values (Section 4.1).

    A class groups cells [(t, A)] — tuple/attribute pairs — that a repair
    will assign a single {e target} value.  Targets live in a one-way
    upgrade lattice:

    {v  Unfixed ('_')  →  Const a  →  Null  v}

    A target is never downgraded and never moves between distinct
    constants; when a constant target clashes with a constraint, the repair
    must touch LHS attributes instead (case 1.2 / 2.2 of the paper).

    While a class is [Unfixed], its {e representative value} — the original
    value of the cell that created the class's root — stands in for the
    eventual target when checking violations; see {!effective}.  Separating
    "which cells must agree" from "on what value" is what lets the
    algorithm defer poor local decisions (Section 4.1). *)

open Dq_relation

type target = Unfixed | Const of Value.t | Null

val pp_target : Format.formatter -> target -> unit

type t

val create : arity:int -> original:(tid:int -> attr:int -> Value.t) -> t
(** [original] reads a cell's value in the original database; it is
    consulted when a cell is first registered, to seed representatives. *)

val cell : t -> tid:int -> attr:int -> int
(** Encode a cell id.  Registers the cell (as a singleton class) on first
    use.  @raise Invalid_argument if [attr] is outside [0, arity). *)

val tid_attr : t -> int -> int * int
(** Decode a cell id back to [(tid, attr)]. *)

val find : t -> int -> int
(** Root cell of the class (with path compression). *)

val same_class : t -> int -> int -> bool

val target : t -> int -> target
(** Target of the cell's class. *)

val repr : t -> int -> Value.t
(** Representative original value of the cell's class. *)

val effective : t -> int -> Value.t
(** The value the cell currently stands for: the constant if the target is
    [Const], [Value.null] if [Null], the representative if [Unfixed]. *)

val set_target : t -> int -> target -> unit
(** Upgrade the class's target.  @raise Invalid_argument on a downgrade or
    a move between distinct constants. *)

val union : t -> int -> int -> int
(** Merge two classes and return the new root.  Targets join in the
    lattice ([Unfixed ⊔ x = x], [Null ⊔ x = Null]).
    @raise Invalid_argument when both targets are distinct constants — the
    caller must resolve such conflicts by other means (case 2.2). *)

val members : t -> int -> (int * int) list
(** All [(tid, attr)] cells of the class. *)

val size : t -> int -> int

val n_cells : t -> int

val n_classes : t -> int

val iter_roots : (int -> unit) -> t -> unit
(** Iterate over the current class roots (order unspecified). *)

val set_repr : t -> int -> Value.t -> unit
(** Update the representative of the cell's class.  Only meaningful while
    the target is [Unfixed]: callers use it to keep the representative
    aligned with the value the class is expected to take (e.g. the
    weighted-majority member value after a merge).
    @raise Invalid_argument if the target is not [Unfixed]. *)

(** {1 Snapshots}

    The serialisable projection of the structure, used by batch-repair
    checkpoints.  A snapshot captures, per class: root, target,
    representative, union rank and the member list {e in its exact
    order} — rank and member order are what make decisions replay
    identically after {!restore} (future unions pick the same surviving
    root; member folds visit cells in the same sequence). *)

type class_state = {
  cls_root : int;
  cls_target : target;
  cls_repr : Value.t;
  cls_rank : int;
  cls_members : (int * int) list;  (** exact order preserved *)
}

type snapshot = { snap_arity : int; snap_classes : class_state list }

val snapshot : t -> snapshot
(** Classes sorted by root cell id: a pure function of the partition,
    not of hash-table history. *)

val restore :
  original:(tid:int -> attr:int -> Value.t) -> snapshot -> t
(** Rebuild a structure answering every query ([find], [target],
    [effective], [members], …) exactly as the snapshotted one did, with
    all parent chains fully compressed. *)
