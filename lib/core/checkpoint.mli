(** Versioned on-disk snapshots of a batch repair in flight.

    A checkpoint captures everything [Batch_repair] needs to continue
    from a pass boundary: the equivalence-class partition (targets,
    representatives, ranks, member order), the provenance trail so far,
    the progress counters, and a fingerprint of the inputs so a stale
    file cannot be resumed against different data.

    Values — including floats — round-trip {e exactly}: floats are
    serialised as C99 hex literals ([%h]), not decimal, so a resumed
    run's cost arithmetic and trail are bit-identical to the run that
    wrote the checkpoint.

    Files are written atomically ({!Dq_fault.Atomic_io}), so a crash
    during checkpointing leaves the previous checkpoint intact — the
    invariant behind the kill-and-resume tests. *)

type counters = {
  pass : int;  (** pass boundaries completed *)
  steps : int;
  rescans : int;
  merges : int;
  rhs_fixes : int;
  lhs_fixes : int;
  nulls_introduced : int;
}

type t = {
  kind : string;  (** which engine wrote it — {!batch_kind} or {!opt_fd_kind} *)
  fingerprint : int;  (** {!fingerprint} of the inputs *)
  use_dependency_graph : bool;
  counters : counters;
  eq : Eqclass.snapshot;
  trail : Dq_obs.Provenance.entry list;
}

val version : int
(** Schema version written to and required from files (currently 1). *)

val batch_kind : string
(** ["batch-repair"] — written by [Batch_repair]. *)

val opt_fd_kind : string
(** ["opt-fd-repair"] — written by [Opt_fd_repair].  Its counters reuse
    this record: [pass] counts completed attribute strata, [steps] counts
    LHS-key groups examined; the remaining batch-specific counters stay
    zero. *)

val known_kinds : string list
(** Kinds {!of_json} accepts.  An engine must additionally check that a
    resumed checkpoint's [kind] is its own. *)

val fingerprint :
  Dq_relation.Relation.t ->
  Dq_cfd.Cfd.t array ->
  use_dependency_graph:bool ->
  int
(** A structural hash of the dirty relation, the ruleset and the
    configuration.  Resume refuses a checkpoint whose fingerprint does
    not match the current invocation. *)

val to_json : t -> Dq_obs.Json.t

val of_json : Dq_obs.Json.t -> (t, string) result

val save : string -> t -> unit
(** Atomic write ({!Dq_fault.Atomic_io.write_file}).
    @raise Sys_error on I/O failure. *)

val load : string -> (t, string) result
(** Read, parse and validate (including the schema version).  I/O
    failures are returned as [Error], not raised. *)
