(** CFD discovery — the paper's first "future work" item ("we are studying
    effective methods to automatically discover useful CFDs from real-life
    data"), in the style of the later CFDMiner/CTANE line of work.

    Given a (mostly clean) instance, {!discover} proposes CFDs of the
    normal form [(X → A, tp)]:

    - {e variable} clauses: embedded FDs [X → A] that hold on the whole
      instance (or on all but a tolerated fraction of key groups);
    - {e constant} clauses: pattern rows [(c₁ … c_k ‖ a)] such that among
      the tuples matching [c₁ … c_k] — at least [min_support] of them —
      the fraction agreeing on [A = a] is at least [min_confidence].

    Candidates are enumerated over LHS attribute sets up to
    [max_lhs_size], pruned top-down: a constant row is only reported if no
    row over a subset of its LHS already implies it, and an FD only if no
    FD with a smaller LHS over the same attributes holds. *)

open Dq_relation

type config = {
  max_lhs_size : int;  (** LHS attribute sets up to this size (default 2) *)
  min_support : int;  (** tuples a pattern row must cover (default 10) *)
  min_confidence : float;
      (** fraction of covered tuples that must agree on the RHS value for a
          constant row, and of groups that must be conflict-free for an
          embedded FD (default 1.0 = exact) *)
  max_rows_per_fd : int;  (** cap on constant rows per embedded FD *)
}

val default_config : ?max_lhs_size:int -> ?min_support:int -> ?min_confidence:float -> unit -> config

type discovered = {
  schema : Schema.t;
  tableaus : Dq_cfd.Cfd.Tableau.t list;
      (** one tableau per embedded FD that produced any rows; plain FDs
          appear with an explicit all-wildcard row *)
  n_variable : int;  (** embedded FDs that hold instance-wide *)
  n_constant : int;  (** constant pattern rows mined *)
}

val discover :
  ?pool:Dq_parallel.Pool.t -> ?config:config -> Relation.t -> discovered
(** Mine CFDs from an instance.  Deterministic; runs in
    O(|attrs|^[max_lhs_size] · |D|) grouping passes.  With a [pool], the
    candidates of each LHS-size level — whose subset pruning only consults
    strictly smaller, already-frozen levels — are evaluated in parallel
    and merged in enumeration order, so the mined tableaus are
    byte-identical at any job count. *)

val resolve : discovered -> Dq_cfd.Cfd.t array
(** The mined constraints as numbered normal-form clauses. *)
