open Dq_relation
open Dq_cfd
module Pool = Dq_parallel.Pool
module Metrics = Dq_obs.Metrics
module Provenance = Dq_obs.Provenance
module Report = Dq_obs.Report
module Trace = Dq_obs.Trace
module Progress = Dq_obs.Progress
module Fault = Dq_fault.Fault
module Deadline = Dq_fault.Deadline

let src = Logs.Src.create "dataqual.batch_repair" ~doc:"BATCHREPAIR steps"

module Log = (val Logs.src_log src : Logs.LOG)

let m_steps = Metrics.counter "batch.resolve_steps"

let m_merges = Metrics.counter "batch.merges"

let m_rescans = Metrics.counter "batch.rescans"

let m_t_init = Metrics.timer "batch.phase.init"

let m_t_scan = Metrics.timer "batch.phase.initial_scan"

let m_t_resolve = Metrics.timer "batch.phase.resolve"

let m_t_write = Metrics.timer "batch.phase.write_back"

let timed = Report.phase_m

type stats = {
  steps : int;
  merges : int;
  rhs_fixes : int;
  lhs_fixes : int;
  nulls_introduced : int;
  cells_changed : int;
  instantiate_visits : int;
  runtime : float;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>steps=%d merges=%d rhs_fixes=%d lhs_fixes=%d nulls=%d \
     cells_changed=%d runtime=%.3fs@]"
    s.steps s.merges s.rhs_fixes s.lhs_fixes s.nulls_introduced s.cells_changed
    s.runtime

type action =
  | Set_rhs of { cell : int; value : Value.t }
  | Merge of { cell1 : int; cell2 : int }
  | Set_lhs of { cell : int; target : Eqclass.target }

type plan = { cost : float; action : action }

type state = {
  rel : Relation.t; (* working copy; values untouched until write-back *)
  canonical : bool;
  (* Checkpoint/resume mode.  A resumed run rebuilds its hash tables from
     a snapshot and so cannot share their iteration history with the run
     that wrote it; in canonical mode every decision that would otherwise
     depend on hash-table order (offer order, partner choice, float-sum
     order, instantiation order) is routed through a sorted, history-free
     path instead.  Off by default: the default mode stays byte-identical
     to what it produced before checkpointing existed. *)
  sigma : Cfd.t array;
  lhs_of : int array array; (* cfd id -> LHS positions *)
  lhs_pats_of : Pattern.t array array;
  eq : Eqclass.t;
  arity : int;
  buckets : (int, unit) Hashtbl.t Vkey.Table.t array; (* wild cfds only *)
  bucket_key : (int, Vkey.t) Hashtbl.t array; (* tid -> its current key *)
  attr_cfds_plain : int list array;
  (* attr -> clauses mentioning it whose LHS patterns are all wildcards *)
  attr_cfds_anchored : (int * Value.t, int list) Hashtbl.t array;
  (* attr -> (anchor position, anchor constant) -> clauses mentioning attr
     whose LHS pattern holds that constant at that position.  A tuple can
     only match such a clause if its effective value at the anchor equals
     the constant, so lookups by the tuple's own values prune the
     (potentially thousands of) pattern rows to the handful that apply. *)
  attr_lhs_wild : int list array; (* attr -> wildcard-RHS clauses with attr in LHS *)
  const_plain : int list; (* constant-RHS clauses with all-wildcard LHS *)
  const_anchored : (int * Value.t, int list) Hashtbl.t;
  (* (anchor position, anchor constant) -> constant-RHS clauses, for the
     full-relation rescans *)
  strata : int array; (* cfd id -> dependency-graph stratum *)
  queue : (int * int) Heap.t;
  (* (cfd id, tid) keyed by plan cost, ties broken by (cfd id, tid).  The
     tie-break is load-bearing: it makes the pop order a pure function of
     the queue's contents, so a shard-partitioned run — whose queue holds
     only its own group's pairs — replays exactly the full-width run's
     per-shard pop subsequence.  A layout-dependent tie-break would let
     other groups' traffic through the shared heap reorder equal-cost
     pairs of one group, and greedy repair is order-sensitive on ties. *)
  enqueued : (int * int, float) Hashtbl.t; (* pair -> its queued priority *)
  findv : (int * int, int list Vkey.Table.t) Hashtbl.t; (* lazy FINDV indices *)
  class_weights : (int, (Value.t, float) Hashtbl.t) Hashtbl.t;
  (* class root -> aggregate weight of members per distinct original value;
     built lazily, folded together on union.  Lets class costs and medoids
     be computed in O(distinct values) instead of O(members). *)
  mutable merges : int;
  mutable rhs_fixes : int;
  mutable lhs_fixes : int;
  mutable nulls_introduced : int;
  mutable instantiate_visits : int;
  (* class roots visited across all [instantiate] calls — the re-resolution
     churn the shard partition is meant to cut: a full-width run revisits
     every root each round, a per-shard run only its own columns' roots *)
  trail : Provenance.trail;
  (* Context for the provenance entries the next [with_change] records:
     the clause the resolution step is serving, its plan cost, and the
     step counter.  [None]/[0.] during instantiation. *)
  mutable ctx_clause : string option;
  mutable ctx_cost : float;
  mutable ctx_pass : int;
}

let tuple st tid = Relation.find_exn st.rel tid

let cellof st tid attr = Eqclass.cell st.eq ~tid ~attr

let eff st tid attr = Eqclass.effective st.eq (cellof st tid attr)

let eff_matches_lhs st cid tid =
  let lhs = st.lhs_of.(cid) and pats = st.lhs_pats_of.(cid) in
  let rec loop i =
    i >= Array.length lhs
    || (Pattern.matches (eff st tid lhs.(i)) pats.(i) && loop (i + 1))
  in
  loop 0

let eff_key st cid tid = Array.map (eff st tid) st.lhs_of.(cid)

(* Offer a (clause, tuple) pair to the queue.  Fresh offers enter
   optimistically (near-zero priority, biased by the clause's dependency
   stratum): the pop loop verifies, computes the true plan cost and either
   applies the plan or re-queues the pair at that cost, so every live
   violation gets scored before anything more expensive is applied — a
   lazy, incremental PICKNEXT. *)
let offer st cid tid =
  let key = (cid, tid) in
  let optimistic = float_of_int st.strata.(cid) *. 1e-9 in
  match Hashtbl.find_opt st.enqueued key with
  | Some p when p <= optimistic -> ()
  | _ ->
    Hashtbl.replace st.enqueued key optimistic;
    Heap.add st.queue ~priority:optimistic key

(* Clauses mentioning [attr] that the tuple could currently match, given
   its effective values read through [eff_at]. *)
let clauses_touching st eff_at attr =
  let out = ref st.attr_cfds_plain.(attr) in
  for p = 0 to st.arity - 1 do
    match Hashtbl.find_opt st.attr_cfds_anchored.(attr) (p, eff_at p) with
    | Some cids -> out := List.rev_append cids !out
    | None -> ()
  done;
  !out

let mark_dirty st tid attr =
  List.iter
    (fun cid -> offer st cid tid)
    (clauses_touching st (eff st tid) attr)

(* Buckets: group tuples of each wildcard-RHS clause by their effective LHS
   key, maintained incrementally as targets change. *)

let bucket_remove st cid tid =
  match Hashtbl.find_opt st.bucket_key.(cid) tid with
  | None -> ()
  | Some key -> (
    Hashtbl.remove st.bucket_key.(cid) tid;
    match Vkey.Table.find_opt st.buckets.(cid) key with
    | Some set -> Hashtbl.remove set tid
    | None -> ())

let bucket_insert st cid tid =
  if eff_matches_lhs st cid tid then begin
    let key = eff_key st cid tid in
    Hashtbl.replace st.bucket_key.(cid) tid key;
    let set =
      match Vkey.Table.find_opt st.buckets.(cid) key with
      | Some set -> set
      | None ->
        let set = Hashtbl.create 4 in
        Vkey.Table.add st.buckets.(cid) key set;
        set
    in
    Hashtbl.replace set tid ()
  end

(* Run a mutation of the equivalence classes containing [cells], keeping
   buckets and dirty sets in sync.  Only members of classes whose
   {e effective value actually changes} are touched: when a one-cell class
   merges into a 200-member group whose value stands, only the one cell is
   reindexed — without this, absorbing a group costs O(|group|²). *)
let with_change st cells mutate =
  (* Distinct affected classes, with members and pre-mutation values. *)
  let classes = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let root = Eqclass.find st.eq c in
      if not (Hashtbl.mem classes root) then
        Hashtbl.add classes root
          (Eqclass.members st.eq root, Eqclass.effective st.eq root))
    cells;
  mutate ();
  let changed = Hashtbl.create 8 in
  let prov = ref [] in
  Hashtbl.iter
    (fun root (members, before) ->
      let after = Eqclass.effective st.eq root in
      if not (Value.equal before after) then
        List.iter
          (fun (tid, attr) ->
            Hashtbl.replace changed ((tid * st.arity) + attr) (tid, attr);
            prov := (tid, attr, before, after) :: !prov)
          members)
    classes;
  (* Every cell whose effective value changed gets a trail entry.  The
     entries of one mutation are sorted by (tid, attr) so the trail is a
     canonical function of the decision sequence, not of hash-table
     iteration order. *)
  let schema = Relation.schema st.rel in
  List.iter
    (fun (tid, attr, old_value, new_value) ->
      Provenance.record st.trail
        {
          Provenance.tid;
          attr;
          attr_name = Schema.attribute schema attr;
          old_value;
          new_value;
          clause = st.ctx_clause;
          cost_delta = st.ctx_cost;
          pass = st.ctx_pass;
        })
    (List.sort
       (fun (t1, a1, _, _) (t2, a2, _, _) ->
         match compare t1 t2 with 0 -> compare a1 a2 | c -> c)
       !prov);
  let reindex = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (tid, attr) ->
      List.iter
        (fun cid -> Hashtbl.replace reindex (cid, tid) ())
        st.attr_lhs_wild.(attr))
    changed;
  (* The values already changed, but stored bucket keys record where each
     tuple was filed, so removal by the recorded key still works. *)
  if st.canonical then begin
    (* Sorted visit order: the re-offers this triggers land in the queue
       in an order that is a pure function of the decision sequence, so a
       resumed run (whose hash tables have a different history) replays
       them identically. *)
    let reindex =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) reindex [])
    in
    let changed =
      List.sort compare (Hashtbl.fold (fun _ ta acc -> ta :: acc) changed [])
    in
    List.iter (fun (cid, tid) -> bucket_remove st cid tid) reindex;
    List.iter (fun (cid, tid) -> bucket_insert st cid tid) reindex;
    List.iter (fun (tid, attr) -> mark_dirty st tid attr) changed
  end
  else begin
    Hashtbl.iter (fun (cid, tid) () -> bucket_remove st cid tid) reindex;
    Hashtbl.iter (fun (cid, tid) () -> bucket_insert st cid tid) reindex;
    Hashtbl.iter (fun _ (tid, attr) -> mark_dirty st tid attr) changed
  end

(* Aggregate weight of the class's members per distinct original value;
   cached per root and folded on union. *)
let class_weights st c =
  let root = Eqclass.find st.eq c in
  match Hashtbl.find_opt st.class_weights root with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 8 in
    List.iter
      (fun (tid, attr) ->
        let t = tuple st tid in
        let v = Tuple.get t attr in
        if not (Value.is_null v) then begin
          let w = Tuple.weight t attr in
          match Hashtbl.find_opt table v with
          | Some acc -> Hashtbl.replace table v (acc +. w)
          | None -> Hashtbl.add table v w
        end)
      (Eqclass.members st.eq root);
    Hashtbl.add st.class_weights root table;
    table

(* Value-sorted (value, weight) pairs of a weight table: the canonical
   iteration order for float sums and candidate scans, independent of the
   table's insertion history. *)
let weight_pairs_sorted table =
  Hashtbl.fold (fun v w acc -> (v, w) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

(* Cost(t, B, v): weighted cost of moving every member of the class to [v],
   measured from the members' original values (Section 4.2).  Computed from
   the per-value weight table: sum_u W_u * sim(u, v). *)
let class_cost st c v =
  let table = class_weights st c in
  if st.canonical then
    List.fold_left
      (fun acc (u, w_u) -> acc +. (w_u *. Cost.similarity u v))
      0. (weight_pairs_sorted table)
  else
    Hashtbl.fold
      (fun u w_u acc -> acc +. (w_u *. Cost.similarity u v))
      table 0.

(* The weighted-medoid original value over one or two classes' weight
   tables: the value the union's instantiation would pick. *)
let medoid_of_tables ~canonical tables =
  if canonical then begin
    let pairs =
      List.concat_map weight_pairs_sorted tables
      |> List.sort (fun (a, _) (b, _) -> Value.compare a b)
    in
    let cost v =
      List.fold_left
        (fun acc (u, w_u) -> acc +. (w_u *. Cost.similarity u v))
        0. pairs
    in
    let best = ref None in
    List.iter
      (fun (v, _) ->
        let c = cost v in
        match !best with
        | Some (bv, bc) when bc < c || (bc = c && Value.compare bv v <= 0) ->
          ()
        | _ -> best := Some (v, c))
      pairs;
    Option.map fst !best
  end
  else begin
    let cost v =
      List.fold_left
        (fun acc table ->
          Hashtbl.fold
            (fun u w_u acc -> acc +. (w_u *. Cost.similarity u v))
            table acc)
        0. tables
    in
    let best = ref None in
    List.iter
      (fun table ->
        Hashtbl.iter
          (fun v _ ->
            let c = cost v in
            match !best with
            | Some (bv, bc)
              when bc < c || (bc = c && Value.compare bv v <= 0) ->
              ()
            | _ -> best := Some (v, c))
          table)
      tables;
    Option.map fst !best
  end

(* FINDV's relation-backed value source: tuples agreeing with [t] on
   X ∪ {A} \ {B}.  The index is built once per (clause, LHS position) from
   original values; candidates are re-validated against the current state
   by the caller, so staleness only costs candidate quality, not
   correctness. *)
let findv_positions st cid lhs_pos =
  let lhs = st.lhs_of.(cid) in
  let keep = ref [] in
  Array.iteri (fun i pos -> if i <> lhs_pos then keep := pos :: !keep) lhs;
  Array.of_list (List.rev (Cfd.rhs st.sigma.(cid) :: !keep))

let findv_table st cid lhs_pos =
  match Hashtbl.find_opt st.findv (cid, lhs_pos) with
  | Some table -> table
  | None ->
    let positions = findv_positions st cid lhs_pos in
    let table = Vkey.Table.create 256 in
    Relation.iter
      (fun t ->
        let key = Array.map (Tuple.get t) positions in
        let prev =
          match Vkey.Table.find_opt table key with Some l -> l | None -> []
        in
        if List.length prev < 32 then
          Vkey.Table.replace table key (Tuple.tid t :: prev))
      st.rel;
    Hashtbl.add st.findv (cid, lhs_pos) table;
    table

let findv_candidates st cid lhs_pos tid =
  let positions = findv_positions st cid lhs_pos in
  let key = Array.map (eff st tid) positions in
  let table = findv_table st cid lhs_pos in
  let attr = st.lhs_of.(cid).(lhs_pos) in
  let current = eff st tid attr in
  match Vkey.Table.find_opt table key with
  | None -> []
  | Some tids ->
    List.fold_left
      (fun acc tid' ->
        if tid' = tid then acc
        else
          let v = eff st tid' attr in
          if
            Value.is_null v || Value.equal v current
            || List.exists (Value.equal v) acc
          then acc
          else v :: acc)
      [] tids

(* Estimate how many clause violations tuple [tid] would incur if the
   effective value of [attr] became [v] (everything else unchanged).  Used
   to score candidate fixes: a fix that is locally cheap but knocks the
   tuple out of line with other clauses (e.g. relocating a tuple to the
   city its corrupted area code points at, against zip and tax-rate
   evidence) scores worse than one consistent with the rest of the tuple.
   Only clauses touching [attr] can change status, so only they are
   examined. *)
let vio_estimate st tid attr v =
  let eff' tid' a = if tid' = tid && a = attr then v else eff st tid' a in
  let count = ref 0 in
  List.iter
    (fun cid ->
      let cfd = st.sigma.(cid) in
      let lhs = st.lhs_of.(cid) and pats = st.lhs_pats_of.(cid) in
      let lhs_match =
        let rec loop i =
          i >= Array.length lhs
          || (Pattern.matches (eff' tid lhs.(i)) pats.(i) && loop (i + 1))
        in
        loop 0
      in
      if lhs_match then begin
        let rv = eff' tid (Cfd.rhs cfd) in
        match Cfd.rhs_pattern cfd with
        | Pattern.Const a ->
          if (not (Value.is_null rv)) && not (Value.equal rv a) then incr count
        | Pattern.Wild ->
          if not (Value.is_null rv) then begin
            let key = Array.map (eff' tid) lhs in
            match Vkey.Table.find_opt st.buckets.(cid) key with
            | None -> ()
            | Some set ->
              let conflicting =
                try
                  Hashtbl.iter
                    (fun tid' () ->
                      if tid' <> tid then
                        let rv' = eff' tid' (Cfd.rhs cfd) in
                        if (not (Value.is_null rv')) && not (Value.equal rv rv')
                        then raise Exit)
                    set;
                  false
                with Exit -> true
              in
              if conflicting then incr count
          end
      end)
    (clauses_touching st (eff' tid) attr);
  !count

(* costfix-style score: weighted change cost, inflated by the violations
   the tuple would still incur after the change (plus a small absolute
   penalty so zero-weight changes still prefer violation-free values) and
   discounted by the violations the change resolves.  The discount is what
   makes a fix that reconciles several clauses at once (restoring a
   swapped state code repairs the zip, tax-rate and area-code evidence
   together) beat a cheap fix that silences a single clause by pushing the
   tuple further from the rest of its own evidence. *)
let plan_score st tid attr v base_cost =
  let before = vio_estimate st tid attr (eff st tid attr) in
  let after = vio_estimate st tid attr v in
  let removed = max 0 (before - after) in
  ((base_cost *. float_of_int (1 + after)) +. (0.05 *. float_of_int after))
  /. float_of_int (1 + removed)

(* Cases 1.2 / 2.2: the RHS target is a committed constant, so resolve by
   changing an LHS attribute of [tid].  [resolves i v] decides whether
   setting the LHS attribute at position [i] to [v] actually breaks the
   violation (pattern mismatch, or key inequality in the pair case). *)
let lhs_fix_plan st cid tid ~resolves =
  let lhs = st.lhs_of.(cid) in
  let best = ref None in
  let consider cost action =
    match !best with
    | Some { cost = c; _ } when c <= cost -> ()
    | _ -> best := Some { cost; action }
  in
  Array.iteri
    (fun i attr ->
      let c = cellof st tid attr in
      let null_plan () =
        consider
          (plan_score st tid attr Value.null (class_cost st c Value.null))
          (Set_lhs { cell = c; target = Eqclass.Null })
      in
      match Eqclass.target st.eq c with
      | Eqclass.Null -> ()
      | Eqclass.Const _ -> null_plan ()
      | Eqclass.Unfixed -> (
        let candidates =
          List.filter (resolves i) (findv_candidates st cid i tid)
        in
        match candidates with
        | [] -> null_plan ()
        | vs ->
          List.iter
            (fun v ->
              consider
                (plan_score st tid attr v (class_cost st c v))
                (Set_lhs { cell = c; target = Eqclass.Const v }))
            vs))
    lhs;
  !best

(* Verify whether (clause, tuple) still violates under the current targets;
   if so, produce the cheapest local fix (the CFD-RESOLVE case analysis). *)
let verify_and_plan st cid tid =
  if not (Relation.mem st.rel tid) then None
  else begin
    let cfd = st.sigma.(cid) in
    let rhs = Cfd.rhs cfd in
    match Cfd.rhs_pattern cfd with
    | Pattern.Const a ->
      if not (eff_matches_lhs st cid tid) then None
      else begin
        let c = cellof st tid rhs in
        match Eqclass.target st.eq c with
        | Eqclass.Null -> None
        | Eqclass.Unfixed ->
          if Value.equal (Eqclass.effective st.eq c) a then None
          else
            (* case 1.1: the target is free, commit it to the constant *)
            Some
              {
                cost = plan_score st tid rhs a (class_cost st c a);
                action = Set_rhs { cell = c; value = a };
              }
        | Eqclass.Const b ->
          if Value.equal b a then None
          else
            (* case 1.2: committed elsewhere; break the LHS match *)
            let pats = st.lhs_pats_of.(cid) in
            let resolves i v =
              match pats.(i) with
              | Pattern.Const p -> not (Value.equal v p)
              | Pattern.Wild -> false
            in
            lhs_fix_plan st cid tid ~resolves
      end
    | Pattern.Wild -> (
      match Hashtbl.find_opt st.bucket_key.(cid) tid with
      | None -> None (* effective LHS no longer matches the pattern *)
      | Some key -> (
        let v = eff st tid rhs in
        if Value.is_null v then None
        else
          let partner =
            match Vkey.Table.find_opt st.buckets.(cid) key with
            | None -> None
            | Some set ->
              if st.canonical then begin
                (* smallest conflicting tid: a pure function of the
                   bucket's contents, replayable after a resume *)
                let best = ref None in
                Hashtbl.iter
                  (fun tid' () ->
                    if tid' <> tid then
                      let v' = eff st tid' rhs in
                      if (not (Value.is_null v')) && not (Value.equal v v')
                      then
                        match !best with
                        | Some b when b <= tid' -> ()
                        | _ -> best := Some tid')
                  set;
                !best
              end
              else begin
                (* first conflicting bucket-mate; early exit keeps big
                   groups cheap (hash order is deterministic for a given
                   history) *)
                let found = ref None in
                try
                  Hashtbl.iter
                    (fun tid' () ->
                      if tid' <> tid then
                        let v' = eff st tid' rhs in
                        if (not (Value.is_null v')) && not (Value.equal v v')
                        then begin
                          found := Some tid';
                          raise Exit
                        end)
                    set;
                  None
                with Exit -> !found
              end
          in
          match partner with
          | None -> None
          | Some tid' -> (
            let c1 = cellof st tid rhs and c2 = cellof st tid' rhs in
            (* Case 2.2's resolution: break the key equality (or pattern
               match) of one of the two tuples on the LHS. *)
            let lhs_alternative () =
              let pats = st.lhs_pats_of.(cid) in
              let lhs = st.lhs_of.(cid) in
              let plan_for this other =
                let resolves i v =
                  (match pats.(i) with
                  | Pattern.Const p -> not (Value.equal v p)
                  | Pattern.Wild -> false)
                  || not (Value.equal v (eff st other lhs.(i)))
                in
                lhs_fix_plan st cid this ~resolves
              in
              match plan_for tid tid', plan_for tid' tid with
              | Some p, Some p' -> Some (if p.cost <= p'.cost then p else p')
              | (Some _ as p), None | None, (Some _ as p) -> p
              | None, None -> None
            in
            match Eqclass.target st.eq c1, Eqclass.target st.eq c2 with
            | Eqclass.Null, _ | _, Eqclass.Null -> None (* case 2.3 *)
            | Eqclass.Unfixed, Eqclass.Unfixed ->
              (* case 2.1: merge; estimate the cost of moving the smaller
                 class onto the larger one's value (the exact post-merge
                 medoid is recomputed when the plan is applied) *)
              let big, small, small_tid =
                if Eqclass.size st.eq c1 >= Eqclass.size st.eq c2 then
                  (c1, c2, tid')
                else (c2, c1, tid)
              in
              let keep = Eqclass.effective st.eq big in
              Some
                {
                  cost =
                    plan_score st small_tid rhs keep (class_cost st small keep);
                  action = Merge { cell1 = c1; cell2 = c2 };
                }
            | Eqclass.Const cst, Eqclass.Unfixed ->
              (* One side already committed: merging drags the free side
                 onto the constant, which is catastrophic when the free
                 side is a large innocent class and the committed tuple is
                 the one whose LHS has drifted — so an LHS fix competes. *)
              let merge =
                {
                  cost = plan_score st tid' rhs cst (class_cost st c2 cst);
                  action = Merge { cell1 = c1; cell2 = c2 };
                }
              in
              Some
                (match lhs_alternative () with
                | Some p when p.cost < merge.cost -> p
                | _ -> merge)
            | Eqclass.Unfixed, Eqclass.Const cst ->
              let merge =
                {
                  cost = plan_score st tid rhs cst (class_cost st c1 cst);
                  action = Merge { cell1 = c1; cell2 = c2 };
                }
              in
              Some
                (match lhs_alternative () with
                | Some p when p.cost < merge.cost -> p
                | _ -> merge)
            | Eqclass.Const _, Eqclass.Const _ ->
              (* case 2.2: both committed; only an LHS change can help *)
              lhs_alternative ())))
  end

(* PICKNEXT as a lazy best-first loop over the queue.  Popping a pair
   re-verifies it against the current targets: resolved pairs are dropped,
   pairs whose true plan cost exceeds their queued priority are re-queued
   at the true cost, and a pair popped at (or below) its true cost is the
   globally cheapest live fix — exactly the greedy choice of Fig. 5, at
   amortised O(log q) per step instead of a full rescan. *)
let pick_next st =
  let rec pop () =
    match Heap.pop_min st.queue with
    | None -> None
    | Some (priority, ((cid, tid) as key)) -> (
      match Hashtbl.find_opt st.enqueued key with
      | Some p when p < priority -. 1e-12 -> pop () (* a fresher copy exists *)
      | _ -> (
        Hashtbl.remove st.enqueued key;
        match verify_and_plan st cid tid with
        | None -> pop ()
        | Some plan ->
          if plan.cost <= priority +. 1e-9 then Some (cid, tid, plan)
          else begin
            Hashtbl.replace st.enqueued key plan.cost;
            Heap.add st.queue ~priority:plan.cost key;
            pop ()
          end))
  in
  pop ()

(* The weighted-medoid value of a class: the member original value that
   minimises the class's change cost — what instantiation will pick.  [None]
   when every member was originally null. *)
let best_constant st root =
  medoid_of_tables ~canonical:st.canonical [ class_weights st root ]

let apply st = function
  | Set_rhs { cell; value } ->
    with_change st [ cell ] (fun () ->
        Eqclass.set_target st.eq cell (Eqclass.Const value));
    st.rhs_fixes <- st.rhs_fixes + 1
  | Merge { cell1; cell2 } ->
    Trace.span ~cat:"batch"
      ~args:(fun () ->
        [
          ("cell1", Dq_obs.Json.Int cell1);
          ("cell2", Dq_obs.Json.Int cell2);
        ])
      "batch.merge"
    @@ fun () ->
    with_change st [ cell1; cell2 ] (fun () ->
        if st.canonical then begin
          (* Drop the cached weight tables and let [class_weights] rebuild
             from the merged member list: per-value weight sums are then
             always accumulated in member order — the one order a resumed
             run reproduces exactly. *)
          let r1 = Eqclass.find st.eq cell1
          and r2 = Eqclass.find st.eq cell2 in
          let root = Eqclass.union st.eq cell1 cell2 in
          Hashtbl.remove st.class_weights r1;
          Hashtbl.remove st.class_weights r2;
          Hashtbl.remove st.class_weights root;
          if Eqclass.target st.eq root = Eqclass.Unfixed then
            match
              medoid_of_tables ~canonical:true [ class_weights st root ]
            with
            | Some v -> Eqclass.set_repr st.eq root v
            | None -> ()
        end
        else begin
          let t1 = class_weights st cell1 and t2 = class_weights st cell2 in
          let r1 = Eqclass.find st.eq cell1
          and r2 = Eqclass.find st.eq cell2 in
          let root = Eqclass.union st.eq cell1 cell2 in
          (* Fold the smaller weight table into the larger and rebind it to
             the surviving root. *)
          let big, small =
            if Hashtbl.length t1 >= Hashtbl.length t2 then (t1, t2)
            else (t2, t1)
          in
          Hashtbl.iter
            (fun v w ->
              match Hashtbl.find_opt big v with
              | Some acc -> Hashtbl.replace big v (acc +. w)
              | None -> Hashtbl.add big v w)
            small;
          Hashtbl.remove st.class_weights r1;
          Hashtbl.remove st.class_weights r2;
          Hashtbl.replace st.class_weights root big;
          (* Keep the representative aligned with the value the merged
             class is headed for, so effective-value checks (and the
             pattern rows they trigger) see the likely outcome rather than
             whichever side's representative survived the union. *)
          if Eqclass.target st.eq root = Eqclass.Unfixed then
            match medoid_of_tables ~canonical:false [ big ] with
            | Some v -> Eqclass.set_repr st.eq root v
            | None -> ()
        end);
    st.merges <- st.merges + 1;
    Metrics.incr m_merges
  | Set_lhs { cell; target } ->
    with_change st [ cell ] (fun () -> Eqclass.set_target st.eq cell target);
    st.lhs_fixes <- st.lhs_fixes + 1;
    if target = Eqclass.Null then
      st.nulls_introduced <- st.nulls_introduced + 1

(* Lines 10–13 of Fig. 4: give every still-unfixed class its least-cost
   constant.  Classes whose best constant is their own representative keep
   their effective value, so they need no bucket or dirty maintenance. *)
let instantiate st =
  let changed = ref false in
  (* Collect the roots first (targets never change which cells are roots,
     so the snapshot is exact); canonical mode then sorts them, because
     [iter_roots] order reflects registration history. *)
  let roots = ref [] in
  Eqclass.iter_roots (fun root -> roots := root :: !roots) st.eq;
  let roots =
    if st.canonical then List.sort compare !roots else List.rev !roots
  in
  st.instantiate_visits <- st.instantiate_visits + List.length roots;
  List.iter
    (fun root ->
      if Eqclass.target st.eq root = Eqclass.Unfixed then
        match best_constant st root with
        | None ->
          (* every member was originally null: the class is uncertain *)
          let repr_null = Value.is_null (Eqclass.repr st.eq root) in
          if repr_null then Eqclass.set_target st.eq root Eqclass.Null
          else begin
            with_change st [ root ] (fun () ->
                Eqclass.set_target st.eq root Eqclass.Null);
            changed := true
          end
        | Some best ->
          if Value.equal best (Eqclass.repr st.eq root) then
            Eqclass.set_target st.eq root (Eqclass.Const best)
          else begin
            with_change st [ root ] (fun () ->
                Eqclass.set_target st.eq root (Eqclass.Const best));
            changed := true
          end)
    roots;
  !changed

let init_state ?eq rel sigma ~use_dependency_graph ~canonical =
  let schema = Relation.schema rel in
  let arity = Schema.arity schema in
  let n = Array.length sigma in
  let lhs_of = Array.map Cfd.lhs sigma in
  let lhs_pats_of = Array.map Cfd.lhs_patterns sigma in
  let attr_cfds_plain = Array.make arity [] in
  let attr_cfds_anchored =
    Array.init arity (fun _ -> Hashtbl.create 64)
  in
  let attr_lhs_wild = Array.make arity [] in
  let const_plain = ref [] in
  let const_anchored = Hashtbl.create 256 in
  Array.iteri
    (fun cid cfd ->
      (* Anchor the clause on its first constant LHS pattern, if any. *)
      let anchor = ref None in
      Array.iteri
        (fun i pos ->
          if !anchor = None then
            match lhs_pats_of.(cid).(i) with
            | Pattern.Const c -> anchor := Some (pos, c)
            | Pattern.Wild -> ())
        lhs_of.(cid);
      List.iter
        (fun attr ->
          match !anchor with
          | None -> attr_cfds_plain.(attr) <- cid :: attr_cfds_plain.(attr)
          | Some key ->
            let tbl = attr_cfds_anchored.(attr) in
            let prev =
              match Hashtbl.find_opt tbl key with Some l -> l | None -> []
            in
            Hashtbl.replace tbl key (cid :: prev))
        (Cfd.attrs cfd);
      if Cfd.is_constant cfd then begin
        match !anchor with
        | None -> const_plain := cid :: !const_plain
        | Some key ->
          let prev =
            match Hashtbl.find_opt const_anchored key with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace const_anchored key (cid :: prev)
      end
      else
        Array.iter
          (fun attr -> attr_lhs_wild.(attr) <- cid :: attr_lhs_wild.(attr))
          lhs_of.(cid))
    sigma;
  let strata =
    if use_dependency_graph then Depgraph.strata schema sigma
    else Array.make n 0
  in
  let eq =
    match eq with
    | Some eq -> eq (* restored from a checkpoint *)
    | None ->
      Eqclass.create ~arity ~original:(fun ~tid ~attr ->
          Tuple.get (Relation.find_exn rel tid) attr)
  in
  let st =
    {
      rel;
      canonical;
      sigma;
      lhs_of;
      lhs_pats_of;
      eq;
      arity;
      buckets = Array.map (fun _ -> Vkey.Table.create 256) sigma;
      bucket_key = Array.map (fun _ -> Hashtbl.create 256) sigma;
      attr_cfds_plain;
      attr_cfds_anchored;
      attr_lhs_wild;
      const_plain = !const_plain;
      const_anchored;
      strata;
      queue = Heap.create ~tie:compare ();
      enqueued = Hashtbl.create 1024;
      findv = Hashtbl.create 16;
      class_weights = Hashtbl.create 1024;
      merges = 0;
      rhs_fixes = 0;
      lhs_fixes = 0;
      nulls_introduced = 0;
      instantiate_visits = 0;
      trail = Provenance.create ();
      ctx_clause = None;
      ctx_cost = 0.;
      ctx_pass = 0;
    }
  in
  (* Register every cell (line 1 of Fig. 4) and build the buckets.  On a
     restored [eq] the registration no-ops (every cell is already a class
     member) and the buckets rebuild from the checkpoint's effective
     values. *)
  Relation.iter
    (fun t ->
      let tid = Tuple.tid t in
      for attr = 0 to arity - 1 do
        ignore (cellof st tid attr)
      done;
      Array.iteri
        (fun cid cfd ->
          if not (Cfd.is_constant cfd) then bucket_insert st cid tid)
        sigma)
    rel;
  st

(* Rebuild every wildcard clause's bucket structure from the current
   effective values — the ground truth the incremental maintenance must
   agree with. *)
let rebuild_buckets st =
  Array.iteri
    (fun cid cfd ->
      if not (Cfd.is_constant cfd) then begin
        Vkey.Table.reset st.buckets.(cid);
        Hashtbl.reset st.bucket_key.(cid);
        Relation.iter (fun t -> bucket_insert st cid (Tuple.tid t)) st.rel
      end)
    st.sigma

(* Wildcard clauses: offer every member of any bucket holding two distinct
   effective RHS values.  In canonical mode the offers of each clause are
   collected and sorted first, because bucket-table iteration order is a
   function of insertion history that a resumed run cannot reproduce. *)
let offer_wild_violations st ~offer =
  Array.iteri
    (fun cid cfd ->
      if not (Cfd.is_constant cfd) then begin
        let pending = if st.canonical then Some (ref []) else None in
        Vkey.Table.iter
          (fun _key set ->
            let distinct = Hashtbl.create 4 in
            Hashtbl.iter
              (fun tid () ->
                let v = eff st tid (Cfd.rhs cfd) in
                if not (Value.is_null v) then Hashtbl.replace distinct v ())
              set;
            if Hashtbl.length distinct >= 2 then
              match pending with
              | Some acc ->
                Hashtbl.iter (fun tid () -> acc := tid :: !acc) set
              | None -> Hashtbl.iter (fun tid () -> offer cid tid) set)
          st.buckets.(cid);
        match pending with
        | Some acc ->
          List.iter (fun tid -> offer cid tid) (List.sort_uniq compare !acc)
        | None -> ()
      end)
    st.sigma

(* Offer every live violation under the current effective values: constant
   clauses by direct checks, wildcard clauses from conflicting buckets.
   Used to re-verify at quiescence.  Returns how many (clause, tuple) pairs
   were offered. *)
let offer_all_violations st =
  let offered = ref 0 in
  let offer st cid tid =
    incr offered;
    offer st cid tid
  in
  (* Constant clauses: probe the anchored clause index with each tuple's
     own effective values rather than scanning every pattern row per
     tuple.  (Anchored clauses with a wildcard RHS are re-checked too,
     harmlessly: [check] only offers genuinely violating constant rows.) *)
  let check tid cid =
    let cfd = st.sigma.(cid) in
    match Cfd.rhs_pattern cfd with
    | Pattern.Wild -> ()
    | Pattern.Const a ->
      if eff_matches_lhs st cid tid then
        let v = eff st tid (Cfd.rhs cfd) in
        if (not (Value.is_null v)) && not (Value.equal v a) then
          offer st cid tid
  in
  Relation.iter
    (fun t ->
      let tid = Tuple.tid t in
      let eff_at = eff st tid in
      List.iter (check tid) st.const_plain;
      for p = 0 to st.arity - 1 do
        match Hashtbl.find_opt st.const_anchored (p, eff_at p) with
        | Some cids -> List.iter (check tid) cids
        | None -> ()
      done)
    st.rel;
  offer_wild_violations st ~offer:(fun cid tid -> offer st cid tid);
  !offered

(* Line 4 of Fig. 4: the initial Dirty_Tuples scan.  At this point every
   equivalence class is a fresh singleton whose effective value {e is} the
   tuple's original value, so the constant-clause pass can read tuples
   directly — pure, domain-safe — in parallel chunks over the tuple
   snapshot.  The offers are then replayed in relation order, so the
   queue's contents (and hence the whole repair) are byte-identical to the
   sequential scan at any job count.  Wildcard conflicts come from the
   just-built buckets, sequentially (bucket tables are not domain-safe). *)
let initial_offer ?pool ?deadline st =
  let tuples = Relation.tuples st.rel in
  let n = Array.length tuples in
  let chunk lo hi =
    let out = ref [] in
    for i = lo to hi - 1 do
      let t = tuples.(i) in
      let tid = Tuple.tid t in
      let check cid =
        let cfd = st.sigma.(cid) in
        match Cfd.rhs_pattern cfd with
        | Pattern.Wild -> ()
        | Pattern.Const a ->
          let lhs = st.lhs_of.(cid) and pats = st.lhs_pats_of.(cid) in
          let rec matches i =
            i >= Array.length lhs
            || Pattern.matches (Tuple.get t lhs.(i)) pats.(i)
               && matches (i + 1)
          in
          if matches 0 then
            let v = Tuple.get t (Cfd.rhs cfd) in
            if (not (Value.is_null v)) && not (Value.equal v a) then
              out := (cid, tid) :: !out
      in
      List.iter check st.const_plain;
      for p = 0 to st.arity - 1 do
        match Hashtbl.find_opt st.const_anchored (p, Tuple.get t p) with
        | Some cids -> List.iter check cids
        | None -> ()
      done
    done;
    List.rev !out
  in
  List.iter
    (List.iter (fun (cid, tid) -> offer st cid tid))
    (Pool.map_chunks ?deadline ~label:"initial_scan.chunk" pool ~n chunk);
  offer_wild_violations st ~offer:(fun cid tid -> offer st cid tid)

type checkpoint_spec = { path : string; every : int }

let repair_single ?pool ?(use_dependency_graph = true)
    ?(deadline = Deadline.never) ?checkpoint ?resume db sigma =
  Trace.span ~cat:"engine"
    ~args:(fun () ->
      [
        ("tuples", Dq_obs.Json.Int (Relation.cardinality db));
        ("clauses", Dq_obs.Json.Int (Array.length sigma));
      ])
    "batch_repair"
  @@ fun () ->
  let started = Unix.gettimeofday () in
  let phases = ref [] in
  (* Checkpointing or resuming switches the engine into canonical mode: a
     resumed run rebuilds its hash tables from a snapshot and cannot share
     their iteration history with the run that wrote it, so every decision
     that could depend on that history runs through a sorted path instead.
     Without either flag the engine behaves — byte for byte — as it did
     before checkpointing existed. *)
  let canonical = checkpoint <> None || resume <> None in
  let invalid =
    match checkpoint with
    | Some { every; _ } when every < 1 ->
      Some (Dq_error.Invalid_config "checkpoint interval must be at least 1")
    | _ -> None
  in
  match invalid with
  | Some e -> Error e
  | None -> (
    let fp =
      if canonical then Checkpoint.fingerprint db sigma ~use_dependency_graph
      else 0
    in
    match resume with
    | Some cp when cp.Checkpoint.kind <> Checkpoint.batch_kind ->
      Error
        (Dq_error.Invalid_input
           (Printf.sprintf
              "checkpoint kind %S was written by a different engine \
               (this engine reads %S)"
              cp.Checkpoint.kind Checkpoint.batch_kind))
    | Some cp when cp.Checkpoint.fingerprint <> fp ->
      Error
        (Dq_error.Invalid_input
           "checkpoint does not match this input (data, ruleset or \
            configuration changed)")
    | _ -> (
      let rel = Relation.copy db in
      let eq =
        Option.map
          (fun cp ->
            Eqclass.restore
              ~original:(fun ~tid ~attr ->
                Tuple.get (Relation.find_exn rel tid) attr)
              cp.Checkpoint.eq)
          resume
      in
      let st =
        timed phases "init" m_t_init (fun () ->
            init_state ?eq rel sigma ~use_dependency_graph ~canonical)
      in
      let steps = ref 0 in
      let rescans = ref 0 in
      let pass_no = ref 0 in
      (match resume with
      | None -> ()
      | Some cp ->
        steps := cp.Checkpoint.counters.steps;
        rescans := cp.Checkpoint.counters.rescans;
        pass_no := cp.Checkpoint.counters.pass;
        st.merges <- cp.Checkpoint.counters.merges;
        st.rhs_fixes <- cp.Checkpoint.counters.rhs_fixes;
        st.lhs_fixes <- cp.Checkpoint.counters.lhs_fixes;
        st.nulls_introduced <- cp.Checkpoint.counters.nulls_introduced;
        List.iter (Provenance.record st.trail) cp.Checkpoint.trail);
      let budget = 20 * (Eqclass.n_cells st.eq + 1) in
      let degraded = ref None in
      let progress_fraction () =
        let s = float_of_int !steps
        and q = float_of_int (Heap.length st.queue) in
        if s = 0. && q = 0. then 1. else s /. Float.max 1. (s +. q)
      in
      let write_checkpoint () =
        match checkpoint with
        | Some { path; every } when !pass_no mod every = 0 ->
          Checkpoint.save path
            {
              Checkpoint.kind = Checkpoint.batch_kind;
              fingerprint = fp;
              use_dependency_graph;
              counters =
                {
                  Checkpoint.pass = !pass_no;
                  steps = !steps;
                  rescans = !rescans;
                  merges = st.merges;
                  rhs_fixes = st.rhs_fixes;
                  lhs_fixes = st.lhs_fixes;
                  nulls_introduced = st.nulls_introduced;
                };
              eq = Eqclass.snapshot st.eq;
              trail = Provenance.entries st.trail;
            }
        | _ -> ()
      in
      (* One resolution pass: pop-and-apply until the queue verifies clean
         (or the step budget trips).  Instantiation and quiescence rescans
         separate passes, so each pass is one drain of the violation
         queue.  A wall-clock deadline is polled every 1024 steps —
         pass-count deadlines are only ever checked at boundaries, so they
         stay exactly reproducible. *)
      let rec drain () =
        if !steps > budget then
          Error (Dq_error.Internal "Batch_repair.repair: step budget exceeded")
        else if !steps land 1023 = 0 && Deadline.wall_expired deadline then
          Ok `Cut
        else begin
      match pick_next st with
      | Some (cid, tid, plan) ->
        Log.debug (fun m ->
            let describe = function
              | Set_rhs { cell; value } ->
                let ctid, cattr = Eqclass.tid_attr st.eq cell in
                Format.asprintf "set_rhs (%d,%s) := %a" ctid
                  (Schema.attribute (Relation.schema st.rel) cattr)
                  Value.pp value
              | Merge { cell1; cell2 } ->
                let t1, a1 = Eqclass.tid_attr st.eq cell1 in
                let t2, a2 = Eqclass.tid_attr st.eq cell2 in
                Format.asprintf "merge (%d,%d) ~ (%d,%d)" t1 a1 t2 a2
              | Set_lhs { cell; target } ->
                let ctid, cattr = Eqclass.tid_attr st.eq cell in
                Format.asprintf "set_lhs (%d,%s) := %a" ctid
                  (Schema.attribute (Relation.schema st.rel) cattr)
                  Eqclass.pp_target target
            in
            m "step %d: %s tid=%d cost=%.4f %s" !steps
              (Cfd.name st.sigma.(cid))
              tid plan.cost (describe plan.action));
        st.ctx_clause <- Some (Cfd.name st.sigma.(cid));
        st.ctx_cost <- plan.cost;
        st.ctx_pass <- !steps;
        apply st plan.action;
        (* A wildcard-clause plan resolves the conflict with one partner;
           the tuple may still conflict with others in its group, so the
           pair goes straight back in the queue until it verifies clean. *)
        offer st cid tid;
        incr steps;
        Metrics.incr m_steps;
        Progress.emit (fun () ->
            Printf.sprintf
              "batch_repair: pass %d | step %d | %d unresolved | %.0f steps/s"
              !pass_no !steps (Heap.length st.queue)
              (float_of_int !steps
              /. Float.max 1e-9 (Unix.gettimeofday () -. started)));
      if Sys.getenv_opt "DATAQUAL_PARANOID" <> None then begin
        (* Expensive invariant check: every live violation must be queued. *)
        Array.iteri
          (fun cid cfd ->
            if not (Cfd.is_constant cfd) then
              Vkey.Table.iter
                (fun _ set ->
                  Hashtbl.iter
                    (fun tid () ->
                      let v = eff st tid (Cfd.rhs cfd) in
                      if not (Value.is_null v) then
                        Hashtbl.iter
                          (fun tid' () ->
                            let v' = eff st tid' (Cfd.rhs cfd) in
                            if
                              tid' <> tid
                              && (not (Value.is_null v'))
                              && (not (Value.equal v v'))
                              && (not (Hashtbl.mem st.enqueued (cid, tid)))
                              && not (Hashtbl.mem st.enqueued (cid, tid'))
                            then
                              Log.err (fun m ->
                                  m
                                    "step %d: live pair (%s, %d~%d) not \
                                     queued after %s"
                                    !steps
                                    (Cfd.name st.sigma.(cid))
                                    tid tid'
                                    (Format.asprintf "%a" Cfd.pp
                                       st.sigma.(cid))))
                          set)
                    set)
                st.buckets.(cid))
          st.sigma
      end;
        drain ()
      | None -> Ok `Drained
    end
      in
      (* A deadline cut: record why and how far the run got, then
         instantiate once so the written-back targets are complete — the
         anytime result.  A cut before any work on a fresh run has nothing
         usable to return: that is exit code 4's case. *)
      let cut reason =
        if !steps = 0 && resume = None then Error Dq_error.Deadline_exceeded
        else begin
          degraded := Some { Report.reason; progress = progress_fraction () };
          st.ctx_clause <- None;
          st.ctx_cost <- 0.;
          st.ctx_pass <- !steps;
          ignore
            (Trace.span ~cat:"batch" "batch.instantiate" (fun () ->
                 instantiate st));
          Ok ()
        end
      in
      let rec drive () =
        incr pass_no;
        let drained =
          Trace.span ~cat:"batch"
            ~args:(fun () ->
              [
                ("pass", Dq_obs.Json.Int !pass_no);
                ("queued", Dq_obs.Json.Int (Heap.length st.queue));
              ])
            "batch.pass" drain
        in
        match drained with
        | Error _ as e -> e
        | Ok `Cut -> cut "deadline expired mid-pass"
        | Ok `Drained -> boundary ()
      (* The pass boundary: the queue has verified clean, so the class
         structure is a consistent cut — the one place a checkpoint can be
         taken and a deadline can stop the run deterministically. *)
      and boundary () =
        st.ctx_clause <- None;
        st.ctx_cost <- 0.;
        st.ctx_pass <- !steps;
        (* Checkpoint first, fault site second: a crash injected at
           ["repair.pass"] (or a kill -9 during its delay action) always
           finds the snapshot of this very boundary already on disk —
           the window the kill-and-resume tests exercise. *)
        write_checkpoint ();
        Fault.hit "repair.pass";
        Deadline.tick deadline;
        if Deadline.expired deadline then
          cut "deadline expired at a pass boundary"
        else if
          Trace.span ~cat:"batch" "batch.instantiate" (fun () ->
              instantiate st)
        then drive ()
        else begin
          (* Quiescent: cross-check against a full rebuild and rescan.
             The incremental dirty propagation is designed to be complete,
             but a missed pair here would silently break Theorem 4.2's
             guarantee, so trust nothing and re-verify. *)
          let missed =
            Trace.span ~cat:"batch" "batch.rescan" (fun () ->
                rebuild_buckets st;
                offer_all_violations st)
          in
          if missed > 0 then begin
            incr rescans;
            Metrics.incr m_rescans;
            if !rescans > 50 then
              Error
                (Dq_error.Internal
                   "Batch_repair.repair: rescans not converging")
            else begin
              Log.debug (fun m ->
                  m "quiescence rescan re-offered %d violation pairs" missed);
              drive ()
            end
          end
          else Ok ()
        end
      in
      let entry =
        match resume with
        | Some _ ->
          (* The checkpoint was taken at a boundary with an empty queue,
             after the initial scan's offers had all been consumed: skip
             the scan and re-enter right at the boundary. *)
          Ok `Resume
        | None -> (
          match
            timed phases "initial_scan" m_t_scan (fun () ->
                initial_offer ?pool ~deadline st)
          with
          | () -> Ok `Fresh
          | exception Deadline.Expired -> Error Dq_error.Deadline_exceeded)
      in
      match entry with
      | Error _ as e -> e
      | Ok entry -> (
        let run () =
          match entry with `Resume -> boundary () | `Fresh -> drive ()
        in
        match timed phases "resolve" m_t_resolve run with
        | Error _ as e -> e
        | Ok () ->
          (* Write the target values back into the working copy (lines
             14-15). *)
          let cells_changed = ref 0 in
          timed phases "write_back" m_t_write (fun () ->
              let tuples = Relation.tuples rel in
              Array.iter
                (fun t ->
                  let tid = Tuple.tid t in
                  for attr = 0 to st.arity - 1 do
                    let v = Eqclass.effective st.eq (cellof st tid attr) in
                    if not (Value.equal v (Tuple.get t attr)) then begin
                      Relation.set_value rel t attr v;
                      incr cells_changed
                    end
                  done)
                tuples);
          let stats =
            {
              steps = !steps;
              merges = st.merges;
              rhs_fixes = st.rhs_fixes;
              lhs_fixes = st.lhs_fixes;
              nulls_introduced = st.nulls_introduced;
              cells_changed = !cells_changed;
              instantiate_visits = st.instantiate_visits;
              runtime = Unix.gettimeofday () -. started;
            }
          in
          let report =
            Report.make ~engine:"batch_repair"
              ~summary:
                [
                  ("steps", Dq_obs.Json.Int stats.steps);
                  ("merges", Dq_obs.Json.Int stats.merges);
                  ("rhs_fixes", Dq_obs.Json.Int stats.rhs_fixes);
                  ("lhs_fixes", Dq_obs.Json.Int stats.lhs_fixes);
                  ("nulls_introduced", Dq_obs.Json.Int stats.nulls_introduced);
                  ("cells_changed", Dq_obs.Json.Int stats.cells_changed);
                ]
              ~phases:!phases
              ~provenance:(Provenance.entries st.trail)
              ?degraded:!degraded ()
          in
          Ok ((rel, stats), report))))

(* ---- shard-partitioned repair ----------------------------------------- *)

(* Repair each clause group of [partition] independently over the
   projection of [db] onto the attributes the group touches.  Groups with
   disjoint attribute sets cannot interact through any cell — no clause of
   one group reads or writes an attribute of another — so the per-group
   repairs compose: writing each group's changed cells back into a copy of
   [db] yields the same relation a full-width run would produce, while
   every group's queue, buckets and instantiation rounds only ever visit
   its own columns. *)
let repair_partitioned ?pool ~use_dependency_graph ~deadline db sigma
    partition n_shards =
  Trace.span ~cat:"engine"
    ~args:(fun () ->
      [
        ("tuples", Dq_obs.Json.Int (Relation.cardinality db));
        ("clauses", Dq_obs.Json.Int (Array.length sigma));
        ("shards", Dq_obs.Json.Int n_shards);
      ])
    "batch_repair.partitioned"
  @@ fun () ->
  let started = Unix.gettimeofday () in
  let schema = Relation.schema db in
  let arity = Schema.arity schema in
  let groups = Array.make n_shards [] in
  for i = Array.length sigma - 1 downto 0 do
    groups.(partition.(i)) <- i :: groups.(partition.(i))
  done;
  (* Shard ids with no member clause contribute nothing; drop them. *)
  let groups =
    Array.of_list (List.filter (fun l -> l <> []) (Array.to_list groups))
  in
  let n_groups = Array.length groups in
  let shards =
    Array.map
      (fun cids ->
        let mark = Array.make arity false in
        List.iter
          (fun cid ->
            List.iter (fun a -> mark.(a) <- true) (Cfd.attrs sigma.(cid)))
          cids;
        let positions = ref [] in
        for a = arity - 1 downto 0 do
          if mark.(a) then positions := a :: !positions
        done;
        let positions = Array.of_list !positions in
        let proj_schema =
          Schema.make ~name:(Schema.name schema)
            (Array.to_list (Array.map (Schema.attribute schema) positions))
        in
        let proj_sigma =
          Cfd.number
            (List.map (fun cid -> Cfd.with_schema proj_schema sigma.(cid)) cids)
        in
        let proj_rel = Relation.create proj_schema in
        Relation.iter
          (fun t ->
            let values = Tuple.project t positions in
            let weights = Array.map (Tuple.weight t) positions in
            Relation.add proj_rel
              (Tuple.create ~weights ~tid:(Tuple.tid t) values))
          db;
        (positions, proj_sigma, proj_rel))
      groups
  in
  let results = Array.make n_groups None in
  let task i () =
    let _, proj_sigma, proj_rel = shards.(i) in
    (* pool:None — tasks must not submit to the pool they run on; the
       shard-level fan-out is the parallelism. *)
    results.(i) <-
      Some (repair_single ~use_dependency_graph ~deadline proj_rel proj_sigma)
  in
  (match pool with
  | Some pool when Pool.jobs pool > 1 && n_groups > 1 ->
    Pool.run pool (Array.init n_groups (fun i () -> task i ()))
  | _ ->
    for i = 0 to n_groups - 1 do
      task i ()
    done);
  let first_error = ref None in
  Array.iter
    (fun r ->
      match r with
      | Some (Error e) when !first_error = None -> first_error := Some e
      | _ -> ())
    results;
  match !first_error with
  | Some e -> Error e
  | None ->
    (* Merge, in shard order: copy the input and write back each shard's
       changed cells.  Disjoint attribute sets make the write-back order
       irrelevant to the final relation; fixing it keeps the provenance
       trail (and hence the report) deterministic. *)
    let rel = Relation.copy db in
    let cells_changed = ref 0 in
    let acc =
      ref
        {
          steps = 0;
          merges = 0;
          rhs_fixes = 0;
          lhs_fixes = 0;
          nulls_introduced = 0;
          cells_changed = 0;
          instantiate_visits = 0;
          runtime = 0.;
        }
    in
    let phases = ref [] in
    let provenance = ref [] in
    let degraded = ref None in
    Array.iteri
      (fun i r ->
        match r with
        | Some (Ok ((shard_rel, s), (report : Report.t))) ->
          let positions, _, _ = shards.(i) in
          Relation.iter
            (fun t ->
              let full = Relation.find_exn rel (Tuple.tid t) in
              Array.iteri
                (fun j pos ->
                  let v = Tuple.get t j in
                  if not (Value.equal v (Tuple.get full pos)) then begin
                    Relation.set_value rel full pos v;
                    incr cells_changed
                  end)
                positions)
            shard_rel;
          acc :=
            {
              steps = !acc.steps + s.steps;
              merges = !acc.merges + s.merges;
              rhs_fixes = !acc.rhs_fixes + s.rhs_fixes;
              lhs_fixes = !acc.lhs_fixes + s.lhs_fixes;
              nulls_introduced = !acc.nulls_introduced + s.nulls_introduced;
              cells_changed = 0;
              instantiate_visits =
                !acc.instantiate_visits + s.instantiate_visits;
              runtime = 0.;
            };
          phases :=
            !phases
            @ List.map
                (fun (name, secs) ->
                  (Printf.sprintf "shard%d.%s" i name, secs))
                report.Report.phases;
          provenance :=
            !provenance
            @ List.map
                (fun (e : Provenance.entry) ->
                  { e with Provenance.attr = positions.(e.Provenance.attr) })
                report.Report.provenance;
          (match report.Report.degraded with
          | Some d when !degraded = None -> degraded := Some d
          | _ -> ())
        | _ -> assert false)
      results;
    let stats =
      {
        !acc with
        cells_changed = !cells_changed;
        runtime = Unix.gettimeofday () -. started;
      }
    in
    let report =
      Report.make ~engine:"batch_repair"
        ~summary:
          [
            ("steps", Dq_obs.Json.Int stats.steps);
            ("merges", Dq_obs.Json.Int stats.merges);
            ("rhs_fixes", Dq_obs.Json.Int stats.rhs_fixes);
            ("lhs_fixes", Dq_obs.Json.Int stats.lhs_fixes);
            ("nulls_introduced", Dq_obs.Json.Int stats.nulls_introduced);
            ("cells_changed", Dq_obs.Json.Int stats.cells_changed);
            ("shards", Dq_obs.Json.Int n_groups);
          ]
        ~phases:!phases ~provenance:!provenance ?degraded:!degraded ()
    in
    Ok ((rel, stats), report)

let repair ?pool ?(use_dependency_graph = true) ?(deadline = Deadline.never)
    ?checkpoint ?resume ?partition db sigma =
  match partition with
  | None ->
    repair_single ?pool ~use_dependency_graph ~deadline ?checkpoint ?resume db
      sigma
  | Some partition ->
    if checkpoint <> None || resume <> None then
      Error
        (Dq_error.Invalid_config
           "partitioned repair does not support checkpoint/resume")
    else if Array.length partition <> Array.length sigma then
      Error
        (Dq_error.Invalid_config
           "partition length does not match the ruleset")
    else if Array.exists (fun s -> s < 0) partition then
      Error (Dq_error.Invalid_config "partition contains a negative shard id")
    else begin
      let n_shards =
        Array.fold_left (fun acc s -> max acc (s + 1)) 0 partition
      in
      if n_shards <= 1 then
        repair_single ?pool ~use_dependency_graph ~deadline db sigma
      else
        repair_partitioned ?pool ~use_dependency_graph ~deadline db sigma
          partition n_shards
    end
