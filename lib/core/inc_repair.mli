(** INCREPAIR (Section 5, Figure 6): incremental repairing, plus its
    Section-5.3 application to whole-database (non-incremental) repair.

    Given a clean database [D] and insertions [ΔD], each tuple is repaired
    by {!Tuple_resolve} in some order and added to the repair, so that the
    growing repair supplies ever more context for later tuples; [D] itself
    is never modified.  Deletions never create violations and need no
    repairing (Section 3.3).

    The processing {e ordering} matters for quality (Section 5.2):
    - {!Linear} (L-INCREPAIR): the given order, no extra cost;
    - {!By_violations} (V-INCREPAIR): ascending [vio(t)], so the most
      trustworthy tuples enter the repair first;
    - {!By_weight} (W-INCREPAIR): descending total tuple weight [wt(t)].

    The optional [pool] parallelises the violation-counting passes
    ({!Dq_cfd.Violation.vio_counts} inside V-INCREPAIR ordering and
    {!consistent_core}); the repair loop itself is inherently sequential
    — each tuple is resolved against the repair built so far — so
    repairs are byte-identical at any job count. *)

open Dq_relation

type ordering = Linear | By_violations | By_weight

val ordering_name : ordering -> string

type stats = {
  tuples_processed : int;
  tuples_changed : int;  (** tuples the resolver modified *)
  cells_changed : int;
  nulls_introduced : int;
  runtime : float;  (** wall-clock seconds *)
}

val pp_stats : Format.formatter -> stats -> unit

val repair_inserts :
  ?pool:Dq_parallel.Pool.t ->
  ?k:int ->
  ?max_candidates:int ->
  ?use_cluster_index:bool ->
  ?ordering:ordering ->
  ?deadline:Dq_fault.Deadline.t ->
  Relation.t ->
  Tuple.t list ->
  Dq_cfd.Cfd.t array ->
  ((Relation.t * stats) * Dq_obs.Report.t, Dq_error.t) result
(** [repair_inserts d delta sigma] assumes [d |= sigma] and returns a fresh
    relation [d ⊕ ΔD_repr] satisfying [sigma], leaving [d]'s tuples
    untouched, together with statistics and a {!Dq_obs.Report.t} whose
    provenance trail holds one entry per changed cell of the repaired
    insertions — replaying it over [d ⊕ ΔD] reconstructs the repair.
    The tuples of [delta] must carry tids distinct from [d]'s and from each
    other, else [Error (Invalid_input _)].  Default ordering is
    {!By_violations}.

    [deadline] is checked before each tuple: once expired, the remaining
    delta tuples are added {e unrepaired} (no provenance entries, not
    counted in [tuples_processed]) and the report carries
    [degraded = Some _] with [progress] = the fraction of delta tuples
    actually resolved.  The degraded result is complete but may still
    violate [sigma].  If the deadline expires before the first tuple (or
    during the ordering scan), nothing was repaired and the result is
    [Error Deadline_exceeded]. *)

val consistent_core :
  ?pool:Dq_parallel.Pool.t ->
  ?deadline:Dq_fault.Deadline.t ->
  Relation.t ->
  Dq_cfd.Cfd.t array ->
  int list
(** Tids of tuples involved in no violation — the efficiently computable
    stand-in for a maximal consistent subset (finding a truly maximal one
    is NP-hard, Proposition 5.4).  An expired [deadline] raises
    [Dq_fault.Deadline.Expired]. *)

val repair_dirty :
  ?pool:Dq_parallel.Pool.t ->
  ?k:int ->
  ?max_candidates:int ->
  ?use_cluster_index:bool ->
  ?ordering:ordering ->
  ?deadline:Dq_fault.Deadline.t ->
  Relation.t ->
  Dq_cfd.Cfd.t array ->
  ((Relation.t * stats) * Dq_obs.Report.t, Dq_error.t) result
(** Section 5.3: repair a dirty database with INCREPAIR by extracting the
    consistent core and re-inserting the remaining tuples one at a time.
    The report's phases additionally carry the consistent-core pass.
    [deadline] behaves as in {!repair_inserts} (a cut during the core
    extraction itself returns [Error Deadline_exceeded]). *)
