open Dq_relation
open Dq_cfd
open Dq_core
module Report = Dq_obs.Report
module Provenance = Dq_obs.Provenance
module Trace = Dq_obs.Trace
module Progress = Dq_obs.Progress
module Fault = Dq_fault.Fault
module Deadline = Dq_fault.Deadline

type stats = {
  strata : int;
  groups : int;
  merges : int;
  cells_changed : int;
  runtime : float;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>strata=%d groups=%d merges=%d cells_changed=%d runtime=%.3fs@]"
    s.strata s.groups s.merges s.cells_changed s.runtime

type checkpoint_spec = { path : string; every : int }

let engine_name = "opt-fd"

(* ---- fragment check ---------------------------------------------------- *)

(* The sweep is only optimal (and only terminates in one pass) when Σ is
   pure embedded FDs over an acyclic attribute dependency graph: constant
   patterns reintroduce the committed-constant conflicts the topological
   order is there to avoid, and a cycle leaves no order to process
   strata in. *)
let fragment schema sigma =
  match
    Array.to_list sigma
    |> List.find_opt (fun c -> not (Cfd.is_embedded_fd c))
  with
  | Some c ->
    Error
      (Printf.sprintf
         "clause %s has constant patterns; only pure FDs (all-wildcard \
          pattern rows) are supported"
         (Cfd.name c))
  | None -> (
    match
      (Dq_analysis.Interaction.analyze schema sigma)
        .Dq_analysis.Interaction.termination
    with
    | Dq_analysis.Interaction.Terminating -> Ok ()
    | Dq_analysis.Interaction.May_oscillate cycles ->
      Error
        (Printf.sprintf
           "the attribute dependency graph has %d cycle%s (run `cfdclean \
            analyze` for the certificates); stratified repair needs an \
            acyclic ruleset"
           (List.length cycles)
           (if List.length cycles = 1 then "" else "s")))

(* ---- the stratified sweep ---------------------------------------------- *)

let repair ?pool:_ ?(deadline = Deadline.never) ?checkpoint ?resume db sigma =
  Trace.span ~cat:"engine"
    ~args:(fun () ->
      [
        ("tuples", Dq_obs.Json.Int (Relation.cardinality db));
        ("clauses", Dq_obs.Json.Int (Array.length sigma));
      ])
    "opt_fd_repair"
  @@ fun () ->
  let started = Unix.gettimeofday () in
  let schema = Relation.schema db in
  match fragment schema sigma with
  | Error reason -> Error (Dq_error.Engine_unsupported { engine = engine_name; reason })
  | Ok () -> (
    match checkpoint with
    | Some { every; _ } when every < 1 ->
      Error (Dq_error.Invalid_config "checkpoint interval must be at least 1")
    | _ -> (
      let fp =
        if checkpoint <> None || resume <> None then
          Checkpoint.fingerprint db sigma ~use_dependency_graph:false
        else 0
      in
      match resume with
      | Some cp when cp.Checkpoint.kind <> Checkpoint.opt_fd_kind ->
        Error
          (Dq_error.Invalid_input
             (Printf.sprintf
                "checkpoint kind %S was written by a different engine (this \
                 engine reads %S)"
                cp.Checkpoint.kind Checkpoint.opt_fd_kind))
      | Some cp when cp.Checkpoint.fingerprint <> fp ->
        Error
          (Dq_error.Invalid_input
             "checkpoint does not match this input (data, ruleset or \
              configuration changed)")
      | _ ->
        let rel = Relation.copy db in
        let arity = Schema.arity schema in
        let phases = ref [] in
        let original ~tid ~attr = Tuple.get (Relation.find_exn rel tid) attr in
        (* Attribute strata: clauses grouped by RHS attribute, attributes
           ordered by their SCC id — a reverse topological numbering, so
           every attribute a stratum groups on (an edge source) carries a
           smaller id and is processed (or never written) first. *)
        let eq, clauses_of, strata_attrs =
          Report.phase phases "init" @@ fun () ->
          let eq =
            match resume with
            | Some cp -> Eqclass.restore ~original cp.Checkpoint.eq
            | None -> Eqclass.create ~arity ~original
          in
          let edges =
            Array.to_list sigma
            |> List.concat_map (fun c ->
                   Array.to_list (Cfd.lhs c)
                   |> List.map (fun b -> (b, Cfd.rhs c)))
          in
          let comp = Depgraph.scc ~n:arity ~edges in
          let clauses_of = Array.make arity [] in
          for cid = Array.length sigma - 1 downto 0 do
            let a = Cfd.rhs sigma.(cid) in
            clauses_of.(a) <- cid :: clauses_of.(a)
          done;
          let strata_attrs =
            List.init arity Fun.id
            |> List.filter (fun a -> clauses_of.(a) <> [])
            |> List.sort (fun a b -> compare (comp.(a), a) (comp.(b), b))
          in
          (eq, clauses_of, strata_attrs)
        in
        let total = List.length strata_attrs in
        let groups = ref 0 in
        let merges = ref 0 in
        let strata_done = ref 0 in
        let trail = Provenance.create () in
        (match resume with
        | Some cp ->
          strata_done := cp.Checkpoint.counters.pass;
          groups := cp.Checkpoint.counters.steps;
          merges := cp.Checkpoint.counters.merges;
          List.iter (Provenance.record trail) cp.Checkpoint.trail
        | None -> ());
        let degraded = ref None in
        let write_checkpoint () =
          match checkpoint with
          | Some { path; every } when !strata_done mod every = 0 ->
            Checkpoint.save path
              {
                Checkpoint.kind = Checkpoint.opt_fd_kind;
                fingerprint = fp;
                use_dependency_graph = false;
                counters =
                  {
                    Checkpoint.pass = !strata_done;
                    steps = !groups;
                    rescans = 0;
                    merges = !merges;
                    rhs_fixes = Provenance.length trail;
                    lhs_fixes = 0;
                    nulls_introduced = 0;
                  };
                eq = Eqclass.snapshot eq;
                trail = Provenance.entries trail;
              }
          | _ -> ()
        in
        let tuples = Relation.tuples rel in
        (* One stratum: for each FD with this RHS attribute, group tuples
           by their current (already-final) LHS key and union the RHS
           cells of each group; then give every class its weighted-medoid
           member value.  All iteration is in relation/clause order, so
           the result is independent of hash-table history. *)
        let process_stratum stratum_no a =
          Trace.span ~cat:"engine"
            ~args:(fun () -> [ ("attr", Dq_obs.Json.Int a) ])
            "opt_fd.stratum"
          @@ fun () ->
          let cells = ref [] in
          List.iter
            (fun cid ->
              let cfd = sigma.(cid) in
              let lhs = Cfd.lhs cfd in
              let table = Hashtbl.create 64 in
              Array.iter
                (fun t ->
                  let tid = Tuple.tid t in
                  let key =
                    Array.map
                      (fun b ->
                        Eqclass.effective eq (Eqclass.cell eq ~tid ~attr:b))
                      lhs
                  in
                  if not (Array.exists Value.is_null key) then begin
                    let c = Eqclass.cell eq ~tid ~attr:a in
                    if not (Value.is_null (Eqclass.effective eq c)) then begin
                      let key = Array.to_list key in
                      match Hashtbl.find_opt table key with
                      | None ->
                        Hashtbl.replace table key c;
                        incr groups;
                        cells := c :: !cells
                      | Some c0 ->
                        if not (Eqclass.same_class eq c0 c) then begin
                          ignore (Eqclass.union eq c0 c);
                          incr merges
                        end;
                        cells := c :: !cells
                    end
                  end)
                tuples)
            clauses_of.(a);
          let clause_name =
            match clauses_of.(a) with
            | cid :: _ -> Some (Cfd.name sigma.(cid))
            | [] -> None
          in
          let attr_name = Schema.attribute schema a in
          let seen = Hashtbl.create 64 in
          List.iter
            (fun c ->
              let root = Eqclass.find eq c in
              if not (Hashtbl.mem seen root) then begin
                Hashtbl.replace seen root ();
                match Eqclass.target eq root with
                | Eqclass.Const _ | Eqclass.Null -> ()
                | Eqclass.Unfixed ->
                  let members = Eqclass.members eq root in
                  (* Value-sorted (value, weight) pairs over the members'
                     original values: the canonical order for the float
                     sums of the medoid scan. *)
                  let rec squash = function
                    | (u, wu) :: (v, wv) :: rest when Value.equal u v ->
                      squash ((u, wu +. wv) :: rest)
                    | p :: rest -> p :: squash rest
                    | [] -> []
                  in
                  let pairs =
                    List.filter_map
                      (fun (tid, attr) ->
                        let t = Relation.find_exn rel tid in
                        let v = Tuple.get t attr in
                        if Value.is_null v then None
                        else Some (v, Tuple.weight t attr))
                      members
                    |> List.sort (fun (u, _) (v, _) -> Value.compare u v)
                    |> squash
                  in
                  let cost v =
                    List.fold_left
                      (fun acc (u, w_u) -> acc +. (w_u *. Cost.similarity u v))
                      0. pairs
                  in
                  let best = ref None in
                  List.iter
                    (fun (v, _) ->
                      let c = cost v in
                      match !best with
                      | Some (bv, bc)
                        when bc < c || (bc = c && Value.compare bv v <= 0) ->
                        ()
                      | _ -> best := Some (v, c))
                    pairs;
                  (match !best with
                  | None -> ()
                  | Some (v, _) ->
                    Eqclass.set_target eq root (Eqclass.Const v);
                    List.sort
                      (fun (t1, _) (t2, _) -> compare t1 t2)
                      members
                    |> List.iter (fun (tid, attr) ->
                           let t = Relation.find_exn rel tid in
                           let old_v = Tuple.get t attr in
                           if not (Value.equal old_v v) then
                             Provenance.record trail
                               {
                                 Provenance.tid;
                                 attr;
                                 attr_name;
                                 old_value = old_v;
                                 new_value = v;
                                 clause = clause_name;
                                 cost_delta =
                                   Cost.change
                                     ~weight:(Tuple.weight t attr)
                                     old_v v;
                                 pass = stratum_no;
                               }))
              end)
            (List.rev !cells);
          Progress.emit (fun () ->
              Printf.sprintf
                "opt_fd_repair: stratum %d/%d | %d groups | %d merges"
                stratum_no total !groups !merges)
        in
        (* A deadline cut: nothing usable exists before the first stratum
           of a fresh run; afterwards the completed strata are already a
           consistent prefix of the repair — the anytime result. *)
        let cut () =
          if !strata_done = 0 then Error Dq_error.Deadline_exceeded
          else begin
            degraded :=
              Some
                {
                  Report.reason = "deadline expired at a stratum boundary";
                  progress = float_of_int !strata_done /. float_of_int total;
                };
            Ok ()
          end
        in
        let rec drive = function
          | [] -> Ok ()
          | a :: rest ->
            if Deadline.wall_expired deadline then cut ()
            else begin
              process_stratum (!strata_done + 1) a;
              incr strata_done;
              (* Checkpoint first, fault site second: a crash injected at
                 ["repair.pass"] always finds this boundary's snapshot
                 already on disk — same choreography as the batch engine,
                 and the window the kill-and-resume tests exercise. *)
              write_checkpoint ();
              Fault.hit "repair.pass";
              Deadline.tick deadline;
              if rest <> [] && Deadline.expired deadline then cut ()
              else drive rest
            end
        in
        let remaining =
          List.filteri (fun i _ -> i >= !strata_done) strata_attrs
        in
        (match
           if Deadline.expired deadline then cut ()
           else Report.phase phases "resolve" (fun () -> drive remaining)
         with
        | Error _ as e -> e
        | Ok () ->
          let cells_changed = ref 0 in
          Report.phase phases "write_back" (fun () ->
              Array.iter
                (fun t ->
                  let tid = Tuple.tid t in
                  for attr = 0 to arity - 1 do
                    let v = Eqclass.effective eq (Eqclass.cell eq ~tid ~attr) in
                    if not (Value.equal v (Tuple.get t attr)) then begin
                      Relation.set_value rel t attr v;
                      incr cells_changed
                    end
                  done)
                tuples);
          let stats =
            {
              strata = !strata_done;
              groups = !groups;
              merges = !merges;
              cells_changed = !cells_changed;
              runtime = Unix.gettimeofday () -. started;
            }
          in
          let report =
            Report.make ~engine:"opt_fd_repair"
              ~summary:
                [
                  ("strata", Dq_obs.Json.Int stats.strata);
                  ("strata_total", Dq_obs.Json.Int total);
                  ("groups", Dq_obs.Json.Int stats.groups);
                  ("merges", Dq_obs.Json.Int stats.merges);
                  ("cells_changed", Dq_obs.Json.Int stats.cells_changed);
                ]
              ~phases:!phases
              ~provenance:(Provenance.entries trail)
              ?degraded:!degraded ()
          in
          Ok ((rel, stats), report))))
