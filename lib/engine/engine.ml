open Dq_relation
open Dq_cfd
open Dq_core

type checkpoint_spec = { path : string; every : int }

type ctx = {
  relation : Relation.t;
  sigma : Cfd.t array;
  pool : Dq_parallel.Pool.t option;
  deadline : Dq_fault.Deadline.t;
  checkpoint : checkpoint_spec option;
  resume : Checkpoint.t option;
  partition : int array option;
  request_id : string option;
}

let ctx ?pool ?(deadline = Dq_fault.Deadline.never) ?checkpoint ?resume
    ?partition ?request_id relation sigma =
  { relation; sigma; pool; deadline; checkpoint; resume; partition; request_id }

(* When the ctx carries a serving request id, every engine invocation
   opens one span annotated with it — the engine's phase spans nest
   inside, so a trace of the daemon groups repair work under the request
   that caused it.  Without an id (the CLI) this is a direct call and
   trace output is unchanged. *)
let with_request_span c f =
  match c.request_id with
  | None -> f ()
  | Some id ->
    Dq_obs.Trace.span ~cat:"serve"
      ~args:(fun () -> [ ("request_id", Dq_obs.Json.String id) ])
      "engine.request" f

module type ENGINE = sig
  val name : string

  val doc : string

  val supports_checkpoint : bool

  val supports_partition : bool

  val supports_ingest : bool

  val fragment : Schema.t -> Cfd.t array -> (unit, string) result

  val run :
    ctx -> ((Relation.t * string) * Dq_obs.Report.t, Dq_error.t) result

  val ingest :
    ctx ->
    Tuple.t list ->
    ((Relation.t * string) * Dq_obs.Report.t, Dq_error.t) result
end

let no_ingest name _ _ =
  Error
    (Dq_error.Engine_unsupported
       {
         engine = name;
         reason =
           "no incremental ingest: this engine repairs whole relations (use \
            an INCREPAIR engine: inc, l-inc or w-inc)";
       })

(* ---- built-in engines -------------------------------------------------- *)

module Batch : ENGINE = struct
  let name = "batch"

  let doc =
    "BATCHREPAIR (Cong et al. 2007): equivalence classes over cells, \
     cost-ordered resolution, any CFD ruleset"

  let supports_checkpoint = true

  let supports_partition = true

  let supports_ingest = false

  let fragment _ _ = Ok ()

  let run c =
    with_request_span c @@ fun () ->
    let checkpoint =
      Option.map
        (fun { path; every } -> { Batch_repair.path; every })
        c.checkpoint
    in
    match
      Batch_repair.repair ?pool:c.pool ~deadline:c.deadline ?checkpoint
        ?resume:c.resume ?partition:c.partition c.relation c.sigma
    with
    | Ok ((repaired, stats), report) ->
      Ok
        ( ( repaired,
            Format.asprintf "batchrepair: %a" Batch_repair.pp_stats stats ),
          report )
    | Error _ as e -> e

  let ingest = no_ingest name
end

(* The three INCREPAIR orderings share one adapter: tuple-at-a-time
   resolution keeps no pass-boundary state, so neither checkpointing nor
   the shard partition applies — but precisely because each tuple is
   resolved against the repair built so far, they are the engines that
   can ingest a delta into a clean relation (what serve sessions do). *)
let inc_engine engine_name ordering : (module ENGINE) =
  (module struct
    let name = engine_name

    let doc =
      Printf.sprintf
        "INCREPAIR (Cong et al. 2007), %s tuple ordering: tuple-at-a-time \
         repair, any CFD ruleset"
        (Inc_repair.ordering_name ordering)

    let supports_checkpoint = false

    let supports_partition = false

    let supports_ingest = true

    let fragment _ _ = Ok ()

    let stats_line stats =
      Format.asprintf "%s: %a"
        (Inc_repair.ordering_name ordering)
        Inc_repair.pp_stats stats

    let run c =
      with_request_span c @@ fun () ->
      match
        Inc_repair.repair_dirty ?pool:c.pool ~ordering ~deadline:c.deadline
          c.relation c.sigma
      with
      | Ok ((repaired, stats), report) ->
        Ok ((repaired, stats_line stats), report)
      | Error _ as e -> e

    let ingest c delta =
      with_request_span c @@ fun () ->
      match
        Inc_repair.repair_inserts ?pool:c.pool ~ordering ~deadline:c.deadline
          c.relation delta c.sigma
      with
      | Ok ((repaired, stats), report) ->
        Ok ((repaired, stats_line stats), report)
      | Error _ as e -> e
  end)

module Opt_fd : ENGINE = struct
  let name = Opt_fd_repair.engine_name

  let doc =
    "optimal value repair for acyclic FD-only rulesets \
     (Livshits-Kimelfeld-Roy): one topological sweep, per-class \
     weighted-medoid assignment"

  let supports_checkpoint = true

  (* The sweep already treats every RHS attribute independently, so the
     shard partition cannot change its result: accepting --partition is a
     provable no-op rather than a refusal. *)
  let supports_partition = true

  let supports_ingest = false

  let fragment = Opt_fd_repair.fragment

  let run c =
    with_request_span c @@ fun () ->
    let checkpoint =
      Option.map
        (fun { path; every } -> { Opt_fd_repair.path; every })
        c.checkpoint
    in
    match
      Opt_fd_repair.repair ?pool:c.pool ~deadline:c.deadline ?checkpoint
        ?resume:c.resume c.relation c.sigma
    with
    | Ok ((repaired, stats), report) ->
      Ok
        ( ( repaired,
            Format.asprintf "%s: %a" Opt_fd_repair.engine_name
              Opt_fd_repair.pp_stats stats ),
          report )
    | Error _ as e -> e

  let ingest = no_ingest name
end

(* ---- registry ---------------------------------------------------------- *)

let builtin : (module ENGINE) list =
  [
    (module Batch);
    inc_engine "inc" Inc_repair.By_violations;
    inc_engine "l-inc" Inc_repair.Linear;
    inc_engine "w-inc" Inc_repair.By_weight;
    (module Opt_fd);
  ]

let registered : (module ENGINE) list ref = ref []

let register e = registered := !registered @ [ e ]

let all () = builtin @ !registered

let names () = List.map (fun (module E : ENGINE) -> E.name) (all ())

(* Historical spellings from --algorithm that map onto registry names. *)
let aliases = [ ("v-inc", "inc") ]

let find name =
  let canonical =
    match List.assoc_opt name aliases with Some n -> n | None -> name
  in
  let matches (module E : ENGINE) = String.equal E.name canonical in
  match List.find_opt matches (List.rev !registered) with
  | Some e -> Ok e
  | None -> (
    match List.find_opt matches builtin with
    | Some e -> Ok e
    | None -> Error (Dq_error.Unknown_engine { name; known = names () }))

let check_fragment (module E : ENGINE) schema sigma =
  match E.fragment schema sigma with
  | Ok () -> Ok ()
  | Error reason ->
    Error (Dq_error.Engine_unsupported { engine = E.name; reason })
