(** Pluggable repair engines behind one signature.

    An engine turns a dirty relation and a ruleset Σ into a repaired
    relation plus a structured {!Dq_obs.Report.t}.  Everything an
    invocation needs — the relation, Σ, and the shared execution hooks
    (worker pool, cooperative deadline, checkpoint/resume, shard
    partition) — travels in one {!type-ctx} record, built once by the
    caller with {!val-ctx}.  The CLI's [repair --engine NAME], the serve
    daemon's sessions, the differential test harness and the bench
    head-to-head all hand engines the same record, so no layer re-parses
    another layer's option spelling, and a new engine becomes a drop-in
    everywhere by implementing {!ENGINE} and calling {!register} (or
    joining the built-in list).

    Contract every engine must honour (what the differential suite
    checks):
    - the returned relation satisfies Σ ([Violation.total] = 0), unless
      the report is marked degraded by a deadline cut;
    - output is byte-identical at any job count, and under [--partition]
      when [supports_partition];
    - the report's provenance trail replays: [Provenance.replay] over
      the dirty input reproduces the repaired relation;
    - unsupported Σ fragments are rejected up front by {!val-fragment}
      with a one-line reason, never by a wrong repair. *)

open Dq_relation
open Dq_cfd

type checkpoint_spec = { path : string; every : int }

(** The one context record shared by every engine invocation, CLI and
    serve alike: the instance itself plus the execution hooks.  Engines
    ignore hooks they do not support only after the caller has gated on
    the capability flags — the CLI refuses [--checkpoint]/[--partition]
    for engines that would silently drop them, and the daemon refuses
    sessions on engines without [supports_ingest]. *)
type ctx = {
  relation : Relation.t;  (** the instance to repair (or ingest into) *)
  sigma : Cfd.t array;  (** the ruleset Σ, already resolved *)
  pool : Dq_parallel.Pool.t option;
  deadline : Dq_fault.Deadline.t;
  checkpoint : checkpoint_spec option;
  resume : Dq_core.Checkpoint.t option;
  partition : int array option;
  request_id : string option;
      (** the serve daemon's per-request correlation id; when present,
          every engine invocation opens a trace span carrying it so the
          engine's phase spans group under the request that caused them *)
}

val ctx :
  ?pool:Dq_parallel.Pool.t ->
  ?deadline:Dq_fault.Deadline.t ->
  ?checkpoint:checkpoint_spec ->
  ?resume:Dq_core.Checkpoint.t ->
  ?partition:int array ->
  ?request_id:string ->
  Relation.t ->
  Cfd.t array ->
  ctx
(** Build a context.  Defaults: no pool, no deadline, no checkpointing,
    no partition, no request id. *)

module type ENGINE = sig
  val name : string
  (** Registry name ([--engine NAME]); lowercase, stable. *)

  val doc : string
  (** One-line description for listings and docs. *)

  val supports_checkpoint : bool
  (** Whether [ctx.checkpoint]/[ctx.resume] are honoured. *)

  val supports_partition : bool
  (** Whether [ctx.partition] is honoured (or provably a no-op). *)

  val supports_ingest : bool
  (** Whether {!ingest} maintains a clean relation incrementally — what
      a serve session needs.  Engines built for whole-relation repair
      (batch, opt-fd) say [false] and their {!ingest} fails. *)

  val fragment : Schema.t -> Cfd.t array -> (unit, string) result
  (** [Ok ()] when the engine can repair this Σ; otherwise a one-line
      reason.  Callers surface failures as
      [Dq_error.Engine_unsupported] — see {!check_fragment}. *)

  val run :
    ctx -> ((Relation.t * string) * Dq_obs.Report.t, Dq_error.t) result
  (** Repair [ctx.relation] against [ctx.sigma].  The string is the
      engine's rendered stats line (what the CLI prints to stderr in
      text mode); everything machine-readable lives in the report's
      summary. *)

  val ingest :
    ctx ->
    Tuple.t list ->
    ((Relation.t * string) * Dq_obs.Report.t, Dq_error.t) result
  (** [ingest ctx delta] assumes [ctx.relation |= ctx.sigma] and returns
      a fresh relation [ctx.relation ⊕ ΔD_repr] with the delta tuples
      repaired into it, leaving [ctx.relation] untouched — INCREPAIR's
      insertion mode, the serve ingest path.  Delta tids must be fresh.
      Engines with [supports_ingest = false] return
      [Error (Engine_unsupported _)]. *)
end

val all : unit -> (module ENGINE) list
(** Built-in engines ([batch], [inc], [l-inc], [w-inc], [opt-fd]) plus
    anything {!register}ed, in registration order. *)

val names : unit -> string list

val register : (module ENGINE) -> unit
(** Append an engine to the registry.  A later registration shadows an
    earlier engine of the same name in {!find}. *)

val find : string -> ((module ENGINE), Dq_error.t) result
(** Resolve a registry name (or the alias [v-inc] for [inc]);
    [Error (Unknown_engine _)] otherwise. *)

val check_fragment :
  (module ENGINE) -> Schema.t -> Cfd.t array -> (unit, Dq_error.t) result
(** [fragment] with the failure wrapped as
    [Dq_error.Engine_unsupported]. *)
