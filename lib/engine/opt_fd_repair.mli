(** Optimal value repair for the FD-only fragment of Σ.

    The algorithm is the stratified variant of Livshits–Kimelfeld–Roy
    (arXiv:1712.07705): when every clause is an embedded FD (all pattern
    cells wildcards) and the attribute dependency graph is acyclic, an
    optimal {e value} repair can be computed in one sweep, with no
    fixpoint iteration:

    - process RHS attributes in topological order of the dependency
      graph, so every LHS value a stratum groups on is already final;
    - within the stratum of attribute [A], for each FD [X → A], group
      tuples by their (repaired) [X] key and union the [A]-cells of each
      group into one equivalence class;
    - assign each class its weighted-medoid member value — the constant
      minimising [Σ w(t,A) · sim(t[A], v)] over the class, which is the
      per-class optimum of the Section 4.2 cost model.

    Because the sweep never commits a constant before its upstream
    values are final, it cannot run into the constant-vs-constant
    conflicts that force BATCHREPAIR into LHS fixes or null
    introductions — so on this fragment its cost never exceeds the batch
    engine's, and it introduces no nulls at all.

    The engine is deterministic by construction (no decision depends on
    hash-table iteration order or the job count), emits the same
    provenance trail as the other engines ([Provenance.replay] over the
    dirty input reproduces the repair), checks deadlines at stratum
    boundaries, and checkpoints there with {!Dq_core.Checkpoint}
    (kind [opt-fd-repair]). *)

open Dq_relation
open Dq_cfd

type stats = {
  strata : int;  (** attribute strata completed *)
  groups : int;  (** distinct LHS-key groups examined *)
  merges : int;  (** equivalence-class unions *)
  cells_changed : int;
  runtime : float;
}

val pp_stats : Format.formatter -> stats -> unit

type checkpoint_spec = { path : string; every : int }

val engine_name : string
(** ["opt-fd"], the registry name. *)

val fragment : Schema.t -> Cfd.t array -> (unit, string) result
(** [Ok ()] iff every clause of Σ is an embedded FD and the attribute
    dependency graph is acyclic; otherwise a one-line reason naming the
    first offending clause or the cycle count. *)

val repair :
  ?pool:Dq_parallel.Pool.t ->
  ?deadline:Dq_fault.Deadline.t ->
  ?checkpoint:checkpoint_spec ->
  ?resume:Dq_core.Checkpoint.t ->
  Relation.t ->
  Cfd.t array ->
  ((Relation.t * stats) * Dq_obs.Report.t, Dq_error.t) result
(** Fragment violations return [Error (Engine_unsupported _)].  A
    deadline cut before any stratum completed (on a fresh run) returns
    [Error Deadline_exceeded]; later cuts return the strata finished so
    far with [degraded] set and progress = strata done / total.  [pool]
    is accepted for signature parity and unused: the sweep is cheap and
    already independent per attribute. *)
