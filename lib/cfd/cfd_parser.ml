open Dq_relation

type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

exception Parse_error of error

type span = { line : int; col_start : int; col_end : int }

let join_spans a b =
  if a.line = b.line && b.col_end > a.col_end then { a with col_end = b.col_end }
  else a

module Located = struct
  type row = { row : Cfd.Tableau.row; span : span }

  type tableau = {
    tab : Cfd.Tableau.t;
    name_span : span;
    lhs_attr_spans : span list;
    rhs_attr_spans : span list;
    row_spans : span list;
  }

  let strip t = t.tab

  let strip_all ts = List.map strip ts
end

let fail_span span fmt =
  Format.kasprintf
    (fun message ->
      raise (Parse_error { line = span.line; col = span.col_start; message }))
    fmt

(* Lexer ------------------------------------------------------------- *)

type token =
  | Word of string (* bare word: attribute name, CFD name or value *)
  | Quoted of string
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Colon
  | Arrow (* -> *)
  | Bars (* || *)

let token_name = function
  | Word w -> Printf.sprintf "%S" w
  | Quoted q -> Printf.sprintf "\"%s\"" q
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Comma -> "','"
  | Colon -> "':'"
  | Arrow -> "'->'"
  | Bars -> "'||'"

let is_bare_char c =
  match c with
  | '[' | ']' | '(' | ')' | '{' | '}' | ',' | ':' | '#' | '"' | '|' -> false
  | c when c = ' ' || c = '\t' || c = '\n' || c = '\r' -> false
  | _ -> true

let tokenize text =
  let n = String.length text in
  let tokens = Vec.create () in
  let line = ref 1 in
  let bol = ref 0 in
  let col i = i - !bol + 1 in
  let push t ~from ~until =
    Vec.push tokens (t, { line = !line; col_start = col from; col_end = col until })
  in
  let fail_at i fmt =
    Format.kasprintf
      (fun message -> raise (Parse_error { line = !line; col = col i; message }))
      fmt
  in
  let rec skip_comment i =
    if i >= n || text.[i] = '\n' then i else skip_comment (i + 1)
  in
  let rec lex i =
    if i >= n then ()
    else
      match text.[i] with
      | '\n' ->
        incr line;
        bol := i + 1;
        lex (i + 1)
      | ' ' | '\t' | '\r' -> lex (i + 1)
      | '#' -> lex (skip_comment i)
      | '[' -> push Lbracket ~from:i ~until:(i + 1); lex (i + 1)
      | ']' -> push Rbracket ~from:i ~until:(i + 1); lex (i + 1)
      | '(' -> push Lparen ~from:i ~until:(i + 1); lex (i + 1)
      | ')' -> push Rparen ~from:i ~until:(i + 1); lex (i + 1)
      | '{' -> push Lbrace ~from:i ~until:(i + 1); lex (i + 1)
      | '}' -> push Rbrace ~from:i ~until:(i + 1); lex (i + 1)
      | ',' -> push Comma ~from:i ~until:(i + 1); lex (i + 1)
      | ':' -> push Colon ~from:i ~until:(i + 1); lex (i + 1)
      | '|' ->
        if i + 1 < n && text.[i + 1] = '|' then begin
          push Bars ~from:i ~until:(i + 2);
          lex (i + 2)
        end
        else fail_at i "expected '||' (single '|' is not a token)"
      | '"' ->
        let start_line = !line and start_col = col i in
        let b = Buffer.create 16 in
        let rec quoted j =
          if j >= n then
            raise
              (Parse_error
                 {
                   line = start_line;
                   col = start_col;
                   message = "unterminated quoted value";
                 })
          else if text.[j] = '"' then begin
            (* A quoted value spanning lines keeps only its opening position. *)
            let span =
              if !line = start_line then
                { line = start_line; col_start = start_col; col_end = col (j + 1) }
              else
                { line = start_line; col_start = start_col; col_end = start_col + 1 }
            in
            Vec.push tokens (Quoted (Buffer.contents b), span);
            lex (j + 1)
          end
          else begin
            if text.[j] = '\n' then begin
              incr line;
              bol := j + 1
            end;
            Buffer.add_char b text.[j];
            quoted (j + 1)
          end
        in
        quoted (i + 1)
      | c when is_bare_char c ->
        (* '-' starts a bare word unless it begins '->'. *)
        let continue_bare k =
          k < n && is_bare_char text.[k] && not (text.[k] = '-' && k + 1 < n && text.[k + 1] = '>')
        in
        if c = '-' && i + 1 < n && text.[i + 1] = '>' then begin
          push Arrow ~from:i ~until:(i + 2);
          lex (i + 2)
        end
        else begin
          let j = ref i in
          let b = Buffer.create 16 in
          while continue_bare !j do
            Buffer.add_char b text.[!j];
            incr j
          done;
          push (Word (Buffer.contents b)) ~from:i ~until:!j;
          lex !j
        end
      | c -> fail_at i "unexpected character %C" c
  in
  lex 0;
  Vec.to_list tokens

(* Parser ------------------------------------------------------------ *)

type state = { mutable toks : (token * span) list; mutable last_span : span }

let fail st fmt = fail_span st.last_span fmt

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail st "unexpected end of input"
  | (t, span) :: rest ->
    st.toks <- rest;
    st.last_span <- span;
    t

let expect st want =
  let t = next st in
  if t <> want then
    fail st "expected %s but found %s" (token_name want) (token_name t)

let parse_word st ~what =
  match next st with
  | Word w -> w
  | Quoted q -> q
  | t -> fail st "expected %s but found %s" what (token_name t)

(* Each attribute comes back with the span of its own token, so a lint pass
   can point at exactly the offending name. *)
let parse_attr_list st =
  expect st Lbracket;
  let rec more acc =
    let a = parse_word st ~what:"an attribute name" in
    let aspan = st.last_span in
    match next st with
    | Comma -> more ((a, aspan) :: acc)
    | Rbracket -> List.rev ((a, aspan) :: acc)
    | t -> fail st "expected ',' or ']' but found %s" (token_name t)
  in
  more []

let parse_pattern st =
  match next st with
  | Word "_" -> Pattern.Wild
  | Word w -> Pattern.const (Value.of_string w)
  | Quoted q -> Pattern.const (Value.string q)
  | t -> fail st "expected a pattern but found %s" (token_name t)

let parse_row st ~n_lhs ~n_rhs =
  expect st Lparen;
  let open_span = st.last_span in
  let rec pats acc stop =
    let p = parse_pattern st in
    match next st with
    | Comma -> pats (p :: acc) stop
    | t when t = stop -> List.rev (p :: acc)
    | t ->
      fail st "expected ',' or %s but found %s" (token_name stop) (token_name t)
  in
  let lhs = pats [] Bars in
  let rhs = pats [] Rparen in
  let span = join_spans open_span st.last_span in
  if List.length lhs <> n_lhs then
    fail_span span "pattern row has %d LHS entries, expected %d"
      (List.length lhs) n_lhs;
  if List.length rhs <> n_rhs then
    fail_span span "pattern row has %d RHS entries, expected %d"
      (List.length rhs) n_rhs;
  (match peek st with Some Comma -> ignore (next st) | _ -> ());
  Located.{ row = Cfd.Tableau.{ lhs; rhs }; span }

let parse_cfd st =
  let name = parse_word st ~what:"a CFD name" in
  let name_span = st.last_span in
  expect st Colon;
  let lhs = parse_attr_list st in
  expect st Arrow;
  let rhs = parse_attr_list st in
  let rows =
    match peek st with
    | Some Lbrace ->
      ignore (next st);
      let rec more acc =
        match peek st with
        | Some Rbrace ->
          ignore (next st);
          List.rev acc
        | Some _ ->
          more
            (parse_row st ~n_lhs:(List.length lhs) ~n_rhs:(List.length rhs)
            :: acc)
        | None -> fail st "unterminated '{' block"
      in
      more []
    | _ -> []
  in
  Located.
    {
      tab =
        Cfd.Tableau.
          {
            name;
            lhs_attrs = List.map fst lhs;
            rhs_attrs = List.map fst rhs;
            rows = List.map (fun r -> r.row) rows;
          };
      name_span;
      lhs_attr_spans = List.map snd lhs;
      rhs_attr_spans = List.map snd rhs;
      row_spans = List.map (fun r -> r.span) rows;
    }

let parse_string_located text =
  match
    let st =
      { toks = tokenize text; last_span = { line = 1; col_start = 1; col_end = 1 } }
    in
    let rec all acc =
      match peek st with None -> List.rev acc | Some _ -> all (parse_cfd st :: acc)
    in
    all []
  with
  | tabs -> Ok tabs
  | exception Parse_error e -> Error e

let parse_string text =
  Result.map Located.strip_all (parse_string_located text)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file_located path = parse_string_located (read_file path)

let parse_file path = parse_string (read_file path)

let resolve schema tabs =
  Cfd.number (List.concat_map (Cfd.normalize schema) tabs)

let quote_if_needed s =
  let bare =
    String.length s > 0
    && String.for_all is_bare_char s
    && (not (String.equal s "_"))
    && not (String.length s >= 2 && s.[0] = '-' && s.[1] = '>')
  in
  if bare then s else "\"" ^ s ^ "\""

let pattern_to_source = function
  | Pattern.Wild -> "_"
  | Pattern.Const v -> quote_if_needed (Value.to_string v)

let to_string tabs =
  let b = Buffer.create 1024 in
  List.iter
    (fun (tab : Cfd.Tableau.t) ->
      Buffer.add_string b
        (Printf.sprintf "%s: [%s] -> [%s]" tab.name
           (String.concat ", " tab.lhs_attrs)
           (String.concat ", " tab.rhs_attrs));
      (match tab.rows with
      | [] -> ()
      | rows ->
        Buffer.add_string b " {\n";
        List.iter
          (fun (row : Cfd.Tableau.row) ->
            let pats ps = String.concat ", " (List.map pattern_to_source ps) in
            Buffer.add_string b
              (Printf.sprintf "  (%s || %s)\n" (pats row.lhs) (pats row.rhs)))
          rows;
        Buffer.add_string b "}");
      Buffer.add_char b '\n')
    tabs;
  Buffer.contents b
