(** Conditional functional dependencies.

    A CFD [φ = (R : X → Y, Tp)] pairs an embedded FD with a pattern tableau
    (Section 2).  Following the paper we work internally in {e normal form}:
    each {!t} is [(R : X → A, tp)] with a single right-hand-side attribute
    and a single pattern tuple.  {!Tableau} is the user-facing multi-row,
    multi-RHS form; {!normalize} expands it. *)

open Dq_relation

type t
(** A normal-form CFD clause. *)

module Tableau : sig
  (** The user-facing form: [(R : X → Y, Tp)] with a full tableau. *)

  type row = { lhs : Pattern.t list; rhs : Pattern.t list }

  type nonrec t = {
    name : string;  (** e.g. ["phi1"] *)
    lhs_attrs : string list;
    rhs_attrs : string list;
    rows : row list;  (** empty means a plain FD: one all-wildcard row *)
  }

  val fd : name:string -> lhs:string list -> rhs:string list -> t
  (** A traditional FD expressed as a CFD (single all-wild pattern row). *)

  val pp : Format.formatter -> t -> unit
end

val make :
  ?name:string ->
  Schema.t ->
  lhs:(string * Pattern.t) list ->
  rhs:string * Pattern.t ->
  t
(** Build a single normal-form clause directly.  The RHS attribute may also
    appear in the LHS (the paper's [tp[A_L]]/[tp[A_R]] case).
    @raise Invalid_argument on an unknown attribute or an empty or
    duplicated LHS. *)

val normalize : Schema.t -> Tableau.t -> t list
(** Expand a tableau CFD into normal-form clauses: one per (row, RHS
    attribute).  An empty [rows] list yields the all-wildcard row.
    @raise Invalid_argument on arity mismatches or unknown attributes. *)

val with_schema : Schema.t -> t -> t
(** Re-express a clause over another schema containing the same attribute
    names (e.g. a projection): positions are remapped by name; the id,
    name and patterns are kept.
    @raise Invalid_argument if an attribute is missing from the target. *)

val number : t list -> t array
(** Assign ids [0..n-1] (by position).  Every algorithm takes Σ as the array
    returned here; {!id} indexes per-CFD state. *)

val id : t -> int

val name : t -> string

val schema : t -> Schema.t

val lhs : t -> int array
(** LHS attribute positions, distinct, in declaration order (aligned with
    {!lhs_patterns}). *)

val rhs : t -> int
(** RHS attribute position. *)

val lhs_patterns : t -> Pattern.t array

val rhs_pattern : t -> Pattern.t

val attrs : t -> int list
(** All attribute positions mentioned ([X ∪ {A}]). *)

val is_constant : t -> bool
(** Whether the RHS pattern is a constant ("constant CFD"). *)

val is_embedded_fd : t -> bool
(** Whether every pattern entry is a wildcard, i.e. the clause is exactly
    its embedded FD. *)

val embedded_fd : t -> t
(** The clause with every pattern entry replaced by a wildcard — the FD
    embedded in the CFD.  Used for the FD-baseline of Figure 8. *)

val embedded_fds : t list -> t list
(** Embedded FDs of a set, deduplicated by (lhs, rhs). *)

val applies_lhs : t -> Tuple.t -> bool
(** [t[X] ≼ tp[X]] — the tuple (null-free on [X]) matches the LHS pattern. *)

val rhs_matches : t -> Tuple.t -> bool
(** [t[A] ≼ tp[A]]. *)

val lhs_key : t -> Tuple.t -> Value.t array
(** The tuple's LHS values in LHS order (for grouping and indexing). *)

val same_embedded_fd : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Render as e.g. [phi1#0: [AC, PN] -> [CT] | (212, _ || NYC)]. *)
