open Dq_relation

type t = {
  id : int;
  name : string;
  schema : Schema.t;
  lhs : int array;
  rhs : int;
  lhs_pats : Pattern.t array;
  rhs_pat : Pattern.t;
}

module Tableau = struct
  type row = { lhs : Pattern.t list; rhs : Pattern.t list }

  type nonrec t = {
    name : string;
    lhs_attrs : string list;
    rhs_attrs : string list;
    rows : row list;
  }

  let fd ~name ~lhs ~rhs = { name; lhs_attrs = lhs; rhs_attrs = rhs; rows = [] }

  let pp_row ppf { lhs; rhs } =
    let pats ps = String.concat ", " (List.map Pattern.to_string ps) in
    Format.fprintf ppf "(%s || %s)" (pats lhs) (pats rhs)

  let pp ppf t =
    Format.fprintf ppf "@[<v2>%s: [%s] -> [%s] {@,%a@]@,}" t.name
      (String.concat ", " t.lhs_attrs)
      (String.concat ", " t.rhs_attrs)
      (Format.pp_print_list pp_row)
      t.rows
end

let resolve_attr schema a =
  match Schema.position schema a with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Cfd: unknown attribute %S in schema %s" a
         (Schema.name schema))

let check_lhs lhs =
  if Array.length lhs = 0 then invalid_arg "Cfd: empty LHS";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      if Hashtbl.mem seen i then invalid_arg "Cfd: duplicate LHS attribute";
      Hashtbl.add seen i ())
    lhs

let make ?(name = "cfd") schema ~lhs ~rhs =
  let lhs_attrs = Array.of_list (List.map fst lhs) in
  let lhs_pats = Array.of_list (List.map snd lhs) in
  let lhs = Array.map (resolve_attr schema) lhs_attrs in
  check_lhs lhs;
  let rhs_attr, rhs_pat = rhs in
  { id = 0; name; schema; lhs; rhs = resolve_attr schema rhs_attr; lhs_pats; rhs_pat }

let normalize schema (tab : Tableau.t) =
  let lhs = Array.of_list (List.map (resolve_attr schema) tab.lhs_attrs) in
  check_lhs lhs;
  let rhs = List.map (resolve_attr schema) tab.rhs_attrs in
  if rhs = [] then invalid_arg "Cfd.normalize: empty RHS";
  let rows =
    match tab.rows with
    | [] ->
      [
        Tableau.
          {
            lhs = List.map (fun _ -> Pattern.Wild) tab.lhs_attrs;
            rhs = List.map (fun _ -> Pattern.Wild) tab.rhs_attrs;
          };
      ]
    | rows -> rows
  in
  let n_lhs = Array.length lhs and n_rhs = List.length rhs in
  List.concat_map
    (fun (row : Tableau.row) ->
      if List.length row.lhs <> n_lhs || List.length row.rhs <> n_rhs then
        invalid_arg
          (Printf.sprintf "Cfd.normalize: pattern row arity mismatch in %s"
             tab.name);
      let lhs_pats = Array.of_list row.lhs in
      List.map2
        (fun rhs_attr rhs_pat ->
          { id = 0; name = tab.name; schema; lhs; rhs = rhs_attr; lhs_pats; rhs_pat })
        rhs row.rhs)
    rows

let number clauses = Array.of_list (List.mapi (fun id c -> { c with id }) clauses)

let with_schema schema c =
  let remap i = resolve_attr schema (Schema.attribute c.schema i) in
  { c with schema; lhs = Array.map remap c.lhs; rhs = remap c.rhs }

let id c = c.id

let name c = c.name

let schema c = c.schema

let lhs c = Array.copy c.lhs

let rhs c = c.rhs

let lhs_patterns c = Array.copy c.lhs_pats

let rhs_pattern c = c.rhs_pat

let attrs c = Array.to_list c.lhs @ [ c.rhs ]

let is_constant c = not (Pattern.is_wild c.rhs_pat)

let is_embedded_fd c =
  Pattern.is_wild c.rhs_pat && Array.for_all Pattern.is_wild c.lhs_pats

let embedded_fd c =
  {
    c with
    lhs_pats = Array.map (fun _ -> Pattern.Wild) c.lhs_pats;
    rhs_pat = Pattern.Wild;
  }

let same_embedded_fd c1 c2 =
  c1.rhs = c2.rhs
  && Array.length c1.lhs = Array.length c2.lhs
  &&
  let sorted a =
    let a = Array.copy a in
    Array.sort Int.compare a;
    a
  in
  sorted c1.lhs = sorted c2.lhs

let embedded_fds clauses =
  List.fold_left
    (fun acc c ->
      let fd = embedded_fd c in
      if List.exists (same_embedded_fd fd) acc then acc else acc @ [ fd ])
    [] clauses

let applies_lhs c t =
  let rec loop i =
    i >= Array.length c.lhs
    || (Pattern.matches (Tuple.get t c.lhs.(i)) c.lhs_pats.(i) && loop (i + 1))
  in
  loop 0

let rhs_matches c t = Pattern.matches (Tuple.get t c.rhs) c.rhs_pat

let lhs_key c t = Array.map (Tuple.get t) c.lhs

let pp ppf c =
  let attr i = Schema.attribute c.schema i in
  Format.fprintf ppf "%s#%d: [%s] -> [%s] | (%s || %s)" c.name c.id
    (String.concat ", " (Array.to_list (Array.map attr c.lhs)))
    (attr c.rhs)
    (String.concat ", "
       (Array.to_list (Array.map Pattern.to_string c.lhs_pats)))
    (Pattern.to_string c.rhs_pat)
