(** A textual format for CFD sets, so constraints can live in files next to
    the data they govern.

    Grammar (comments run from [#] to end of line):
    {v
    cfd   ::= name ':' '[' attrs ']' '->' '[' attrs ']' body?
    body  ::= '{' row* '}'           (* absent body = plain FD *)
    row   ::= '(' pats '||' pats ')' ','?
    pat   ::= '_' | value
    value ::= bare word | "quoted string"
    v}

    Example:
    {v
    phi1: [AC, PN] -> [STR, CT, ST] {
      (212, _ || _, NYC, NY)
      (610, _ || _, PHI, PA)
    }
    phi3: [id] -> [name, PR]        # a traditional FD
    v}

    Bare values are typed like CSV cells ({!Dq_relation.Value.of_string});
    quoted values are always strings. *)

type error = { line : int; col : int; message : string }
(** Parse errors point at the offending token: 1-based line and column. *)

val pp_error : Format.formatter -> error -> unit

type span = { line : int; col_start : int; col_end : int }
(** A source region on a single line: 1-based line, 1-based [col_start]
    inclusive, [col_end] exclusive.  Constructs spanning several lines keep
    the span of their opening token. *)

val join_spans : span -> span -> span
(** Extend the first span to the end of the second when both sit on the same
    line (otherwise the first span is returned unchanged). *)

(** Parse results that remember where each construct came from, so the lint
    pass ({!Dq_analysis.Lint}) can attach source positions to diagnostics. *)
module Located : sig
  type row = { row : Cfd.Tableau.row; span : span }

  type tableau = {
    tab : Cfd.Tableau.t;
    name_span : span;  (** the CFD's name token *)
    lhs_attr_spans : span list;  (** aligned with [tab.lhs_attrs] *)
    rhs_attr_spans : span list;  (** aligned with [tab.rhs_attrs] *)
    row_spans : span list;  (** aligned with [tab.rows] *)
  }

  val strip : tableau -> Cfd.Tableau.t

  val strip_all : tableau list -> Cfd.Tableau.t list
end

val parse_string : string -> (Cfd.Tableau.t list, error) result

val parse_file : string -> (Cfd.Tableau.t list, error) result

val parse_string_located : string -> (Located.tableau list, error) result

val parse_file_located : string -> (Located.tableau list, error) result

val resolve : Dq_relation.Schema.t -> Cfd.Tableau.t list -> Cfd.t array
(** Normalize the tableaux against a schema and number the clauses —
    the Σ every algorithm consumes.  @raise Invalid_argument on unknown
    attributes or arity mismatches ({!Dq_analysis.Lint} reports the same
    problems as positioned [E003] diagnostics instead of raising). *)

val to_string : Cfd.Tableau.t list -> string
(** Render tableaux back into the file format ([parse_string] ∘
    [to_string] is the identity up to layout). *)
