(** CFD violation detection and the [vio] measure of Section 3.1.

    Two violation shapes exist for a normal-form clause [φ = (X → A, tp)]:

    - {b single-tuple} (case 1): [t[X] ≼ tp[X]] but [t[A] ⋠ tp[A]], which
      can only happen when [tp[A]] is a constant;
    - {b pair} (case 2): [t[X] = t'[X] ≼ tp[X]] but [t[A] ≠ t'[A]]
      (w.l.o.g. [tp[A] = '_']).

    Nulls: a tuple whose [X] values contain [null] matches no pattern and
    hence violates nothing; a [null] in the [A] position equates with
    anything under the simple SQL semantics, so it resolves rather than
    causes violations.  This is exactly what makes setting a target to
    [null] a terminal resolution step in the repairing algorithms.

    {b Parallelism.}  Detection is embarrassingly parallel: the functions
    below accept an optional domain pool and partition the tuple snapshot
    into chunks, each scanned against read-only clause indexes
    (per-clause group tables for wildcard-RHS clauses, an anchored index
    for constant clauses), with chunk results merged in chunk-index
    order.  Results are {e byte-identical at any job count}, and the
    sequential path (no [pool]) runs the very same code on a single
    chunk. *)

open Dq_relation

type t =
  | Single of { tid : int; cfd : Cfd.t }
  | Pair of { tid1 : int; tid2 : int; cfd : Cfd.t }

val cfd_of : t -> Cfd.t

val tids : t -> int list

val pp : Format.formatter -> t -> unit

val violates_constant : Cfd.t -> Tuple.t -> bool
(** Case-1 check for one tuple against a constant-RHS clause (always [false]
    for a wildcard-RHS clause). *)

val pair_conflict : Cfd.t -> Tuple.t -> Tuple.t -> bool
(** Case-2 check for two tuples against a wildcard-RHS clause (always
    [false] for a constant-RHS clause — such conflicts surface as case 1). *)

val find_all : ?pool:Dq_parallel.Pool.t -> Relation.t -> Cfd.t array -> t list
(** All single-tuple violations, plus — to avoid a quadratic listing — for
    each conflicting group one {!Pair} per tuple, against a witness holding
    a different RHS value.  Every tuple involved in any violation appears in
    at least one returned violation; use {!vio_tuple}/{!total} for exact
    counts.  Order is canonical and job-count independent: constant-clause
    singles in relation order first, then pairs per wildcard clause in Σ
    order, each clause's pairs in relation order with the witness being the
    group's first conflicting member in relation order. *)

val violating_tids : Relation.t -> Cfd.t array -> int list
(** Distinct tids of tuples involved in at least one violation, in
    insertion order. *)

val vio_tuple : Relation.t -> Cfd.t array -> Tuple.t -> int
(** [vio(t)]: number of violations incurred by [t] (Section 3.1).  The tuple
    need not belong to the relation (used to score candidate insertions). *)

val vio_counts :
  ?pool:Dq_parallel.Pool.t ->
  ?deadline:Dq_fault.Deadline.t ->
  Relation.t ->
  Cfd.t array ->
  (int, int) Hashtbl.t
(** [vio(t)] for every tuple of the relation at once (tid-keyed); tuples
    with no violations are absent.  One pass per clause; the table is
    populated in relation order so folds over it are deterministic.
    An expired [deadline] raises [Dq_fault.Deadline.Expired] (checked at
    chunk boundaries). *)

val total : ?pool:Dq_parallel.Pool.t -> Relation.t -> Cfd.t array -> int
(** [vio(D)]: sum of [vio(t)] over all tuples. *)

val satisfies : ?pool:Dq_parallel.Pool.t -> Relation.t -> Cfd.t array -> bool
(** [D |= Σ] — no violation of any clause, with early exit (cooperative
    across chunks when parallel). *)
