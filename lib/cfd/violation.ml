open Dq_relation
module Pool = Dq_parallel.Pool
module Metrics = Dq_obs.Metrics
module Trace = Dq_obs.Trace

(* Entry-span arguments: the scan's input sizes. *)
let scan_args rel sigma () =
  [
    ("tuples", Dq_obs.Json.Int (Relation.cardinality rel));
    ("clauses", Dq_obs.Json.Int (Array.length sigma));
  ]

(* Detection instruments (no-ops unless metrics collection is enabled):
   scans made, violations surfaced, and wall time per entry point. *)
let m_scans = Metrics.counter "violation.scans"

let m_found = Metrics.counter "violation.found"

let m_find_all = Metrics.timer "violation.find_all"

let m_vio_counts = Metrics.timer "violation.vio_counts"

let m_satisfies = Metrics.timer "violation.satisfies"

type t =
  | Single of { tid : int; cfd : Cfd.t }
  | Pair of { tid1 : int; tid2 : int; cfd : Cfd.t }

let cfd_of = function Single { cfd; _ } -> cfd | Pair { cfd; _ } -> cfd

let tids = function
  | Single { tid; _ } -> [ tid ]
  | Pair { tid1; tid2; _ } -> [ tid1; tid2 ]

let pp ppf = function
  | Single { tid; cfd } ->
    Format.fprintf ppf "tuple #%d violates %a" tid Cfd.pp cfd
  | Pair { tid1; tid2; cfd } ->
    Format.fprintf ppf "tuples #%d and #%d violate %a" tid1 tid2 Cfd.pp cfd

let violates_constant cfd t =
  match Cfd.rhs_pattern cfd with
  | Pattern.Wild -> false
  | Pattern.Const a ->
    Cfd.applies_lhs cfd t
    &&
    let v = Tuple.get t (Cfd.rhs cfd) in
    (not (Value.is_null v)) && not (Value.equal v a)

let pair_conflict cfd t1 t2 =
  Pattern.is_wild (Cfd.rhs_pattern cfd)
  && Cfd.applies_lhs cfd t1 && Cfd.applies_lhs cfd t2
  && Vkey.equal (Cfd.lhs_key cfd t1) (Cfd.lhs_key cfd t2)
  &&
  let v1 = Tuple.get t1 (Cfd.rhs cfd) and v2 = Tuple.get t2 (Cfd.rhs cfd) in
  (not (Value.is_null v1)) && (not (Value.is_null v2)) && not (Value.equal v1 v2)

(* ---- constant clauses ------------------------------------------------- *)

(* Pattern tableaus can hold thousands of rows, so scanning every clause
   per tuple is ruinous; instead each constant clause is anchored on its
   first constant LHS pattern and looked up by the tuple's own value at
   that position — O(arity) probes per tuple plus the matching rows. *)
type const_index = {
  plain : Cfd.t list; (* all-wildcard-LHS constant clauses, in Σ order *)
  anchored : (int * Value.t, Cfd.t list) Hashtbl.t;
}

let const_index sigma =
  let plain = ref [] in
  let anchored = Hashtbl.create 256 in
  Array.iter
    (fun cfd ->
      if Cfd.is_constant cfd then begin
        let lhs = Cfd.lhs cfd and pats = Cfd.lhs_patterns cfd in
        let anchor = ref None in
        Array.iteri
          (fun i pos ->
            if !anchor = None then
              match pats.(i) with
              | Pattern.Const c -> anchor := Some (pos, c)
              | Pattern.Wild -> ())
          lhs;
        match !anchor with
        | None -> plain := cfd :: !plain
        | Some key ->
          let prev =
            match Hashtbl.find_opt anchored key with Some l -> l | None -> []
          in
          Hashtbl.replace anchored key (cfd :: prev)
      end)
    sigma;
  { plain = List.rev !plain; anchored }

(* Probe the index with one tuple, calling [check] on every candidate
   clause in the canonical order: plain clauses first (Σ order), then
   anchored clauses by anchor position.  Pure reads only — safe to run
   concurrently over disjoint tuple chunks. *)
let iter_tuple_candidates idx arity t check =
  List.iter check idx.plain;
  for p = 0 to arity - 1 do
    match Hashtbl.find_opt idx.anchored (p, Tuple.get t p) with
    | Some cfds -> List.iter check cfds
    | None -> ()
  done

(* ---- wildcard clauses: partition-and-merge group tables --------------- *)

(* Group the tuples matching a wildcard-RHS clause's LHS pattern by their
   LHS key, recording per-group RHS value multiplicities.  All
   pair-violation queries reduce to these group statistics.  [members] is
   kept in relation order so witness choice is independent of hashing and
   chunking. *)
type group = {
  mutable members : Tuple.t list;
  rhs_counts : (Value.t, int ref) Hashtbl.t; (* non-null RHS values *)
  mutable non_null : int;
}

(* One chunk's worth of a clause's group table; [rmembers] holds the
   chunk's members in reverse chunk order (prepend-built). *)
type chunk_group = {
  mutable rmembers : Tuple.t list;
  chunk_rhs_counts : (Value.t, int ref) Hashtbl.t;
  mutable chunk_non_null : int;
}

let chunk_groups cfd tuples lo hi =
  let table = Vkey.Table.create 256 in
  for i = lo to hi - 1 do
    let t = tuples.(i) in
    if Cfd.applies_lhs cfd t then begin
      let key = Cfd.lhs_key cfd t in
      let g =
        match Vkey.Table.find_opt table key with
        | Some g -> g
        | None ->
          let g =
            {
              rmembers = [];
              chunk_rhs_counts = Hashtbl.create 4;
              chunk_non_null = 0;
            }
          in
          Vkey.Table.add table key g;
          g
      in
      g.rmembers <- t :: g.rmembers;
      let v = Tuple.get t (Cfd.rhs cfd) in
      if not (Value.is_null v) then begin
        g.chunk_non_null <- g.chunk_non_null + 1;
        match Hashtbl.find_opt g.chunk_rhs_counts v with
        | Some n -> incr n
        | None -> Hashtbl.add g.chunk_rhs_counts v (ref 1)
      end
    end
  done;
  table

(* Merge chunk tables into one table whose member lists are in relation
   order.  Chunks are folded from last to first so each group's members
   are rebuilt by prepending whole (already-ordered) chunk segments —
   O(total members), and the result is independent of chunk boundaries. *)
let merge_chunk_groups chunk_tables =
  let merged = Vkey.Table.create 256 in
  List.iter
    (fun chunk_table ->
      Vkey.Table.iter
        (fun key (cg : chunk_group) ->
          let g =
            match Vkey.Table.find_opt merged key with
            | Some g -> g
            | None ->
              let g =
                { members = []; rhs_counts = Hashtbl.create 4; non_null = 0 }
              in
              Vkey.Table.add merged key g;
              g
          in
          g.members <- List.rev_append cg.rmembers g.members;
          g.non_null <- g.non_null + cg.chunk_non_null;
          Hashtbl.iter
            (fun v n ->
              match Hashtbl.find_opt g.rhs_counts v with
              | Some m -> m := !m + !n
              | None -> Hashtbl.add g.rhs_counts v (ref !n))
            cg.chunk_rhs_counts)
        chunk_table)
    (List.rev chunk_tables);
  merged

let groups_of_clause ?pool ?deadline tuples cfd =
  let n = Array.length tuples in
  merge_chunk_groups
    (Pool.map_chunks ?deadline ~label:"groups.chunk" pool ~n (fun lo hi ->
         chunk_groups cfd tuples lo hi))

let group_conflicts g = Hashtbl.length g.rhs_counts >= 2

(* Number of pair violations a tuple with RHS value [v] incurs inside its
   group: members whose RHS value is non-null and different from [v]. *)
let group_vio_of g v =
  if Value.is_null v then 0
  else
    let same =
      match Hashtbl.find_opt g.rhs_counts v with Some n -> !n | None -> 0
    in
    g.non_null - same

let wild_clauses sigma =
  Array.to_list sigma |> List.filter (fun cfd -> not (Cfd.is_constant cfd))

(* ---- the public detection API ----------------------------------------- *)

(* Every function below follows the same partition-and-merge shape: build
   read-only indexes (constant anchors, per-clause group tables), then scan
   the tuple snapshot in chunks whose results are merged in chunk-index
   order.  Chunk boundaries never influence the merged result, so output is
   byte-identical at any job count — including the no-pool path, which is
   the same code on a single chunk. *)

let find_all ?pool rel sigma =
  Trace.span ~cat:"violation" ~args:(scan_args rel sigma) "find_all"
  @@ fun () ->
  Metrics.time m_find_all @@ fun () ->
  Metrics.incr m_scans;
  let tuples = Relation.tuples rel in
  let n = Array.length tuples in
  let arity = Schema.arity (Relation.schema rel) in
  let idx = const_index sigma in
  let singles =
    Pool.map_chunks ~label:"find_all.chunk" pool ~n (fun lo hi ->
        let out = ref [] in
        for i = lo to hi - 1 do
          let t = tuples.(i) in
          iter_tuple_candidates idx arity t (fun cfd ->
              if violates_constant cfd t then
                out := Single { tid = Tuple.tid t; cfd } :: !out)
        done;
        List.rev !out)
  in
  (* One pair per involved tuple, each against a witness with a different
     (non-null) RHS value, so every involved tuple is reported without a
     quadratic listing.  The witness is the group's first such member in
     relation order. *)
  let pairs =
    List.map
      (fun cfd ->
        let table = groups_of_clause ?pool tuples cfd in
        Pool.map_chunks ~label:"find_all.chunk" pool ~n (fun lo hi ->
            let out = ref [] in
            for i = lo to hi - 1 do
              let t = tuples.(i) in
              if Cfd.applies_lhs cfd t then
                match Vkey.Table.find_opt table (Cfd.lhs_key cfd t) with
                | Some g when group_conflicts g ->
                  let v = Tuple.get t (Cfd.rhs cfd) in
                  if group_vio_of g v > 0 then begin
                    let witness =
                      List.find
                        (fun t' ->
                          let v' = Tuple.get t' (Cfd.rhs cfd) in
                          (not (Value.is_null v')) && not (Value.equal v v'))
                        g.members
                    in
                    out :=
                      Pair { tid1 = Tuple.tid t; tid2 = Tuple.tid witness; cfd }
                      :: !out
                  end
                | Some _ | None -> ()
            done;
            List.rev !out))
      (wild_clauses sigma)
  in
  let all = List.concat (singles @ List.concat pairs) in
  if Metrics.enabled () then Metrics.add m_found (List.length all);
  all

(* vio(t) for every tuple at once, as an array aligned with [tuples].
   Chunks write only their own slots, so the array needs no locking. *)
let counts_array ?pool ?deadline rel sigma tuples =
  let n = Array.length tuples in
  let arity = Schema.arity (Relation.schema rel) in
  let idx = const_index sigma in
  let counts = Array.make n 0 in
  Pool.for_chunks ?deadline ~label:"vio_counts.chunk" pool ~n (fun lo hi ->
      for i = lo to hi - 1 do
        let t = tuples.(i) in
        let c = ref 0 in
        iter_tuple_candidates idx arity t (fun cfd ->
            if violates_constant cfd t then incr c);
        counts.(i) <- !c
      done);
  List.iter
    (fun cfd ->
      let table = groups_of_clause ?pool ?deadline tuples cfd in
      Pool.for_chunks ?deadline ~label:"vio_counts.chunk" pool ~n (fun lo hi ->
          for i = lo to hi - 1 do
            let t = tuples.(i) in
            if Cfd.applies_lhs cfd t then
              match Vkey.Table.find_opt table (Cfd.lhs_key cfd t) with
              | Some g ->
                counts.(i) <-
                  counts.(i) + group_vio_of g (Tuple.get t (Cfd.rhs cfd))
              | None -> ()
          done))
    (wild_clauses sigma);
  counts

let vio_counts ?pool ?deadline rel sigma =
  Trace.span ~cat:"violation" ~args:(scan_args rel sigma) "vio_counts"
  @@ fun () ->
  Metrics.time m_vio_counts @@ fun () ->
  Metrics.incr m_scans;
  let tuples = Relation.tuples rel in
  let counts = counts_array ?pool ?deadline rel sigma tuples in
  if Metrics.enabled () then Metrics.add m_found (Array.fold_left ( + ) 0 counts);
  (* Materialised in relation order, so the table's internal layout (and
     hence any fold over it) is identical at every job count. *)
  let out = Hashtbl.create 256 in
  Array.iteri
    (fun i c -> if c > 0 then Hashtbl.add out (Tuple.tid tuples.(i)) c)
    counts;
  out

let violating_tids rel sigma =
  let counts = vio_counts rel sigma in
  Relation.fold
    (fun acc t -> if Hashtbl.mem counts (Tuple.tid t) then Tuple.tid t :: acc else acc)
    [] rel
  |> List.rev

let total ?pool rel sigma =
  let tuples = Relation.tuples rel in
  Array.fold_left ( + ) 0 (counts_array ?pool rel sigma tuples)

let vio_tuple rel sigma t =
  let vio = ref 0 in
  Array.iter
    (fun cfd ->
      if Cfd.is_constant cfd then begin
        if violates_constant cfd t then incr vio
      end
      else if Cfd.applies_lhs cfd t then begin
        let v = Tuple.get t (Cfd.rhs cfd) in
        if not (Value.is_null v) then begin
          let key = Cfd.lhs_key cfd t in
          Relation.iter
            (fun t' ->
              if
                Tuple.tid t' <> Tuple.tid t
                && Cfd.applies_lhs cfd t'
                && Vkey.equal (Cfd.lhs_key cfd t') key
              then
                let v' = Tuple.get t' (Cfd.rhs cfd) in
                if (not (Value.is_null v')) && not (Value.equal v v') then incr vio)
            rel
        end
      end)
    sigma;
  !vio

let satisfies ?pool rel sigma =
  Trace.span ~cat:"violation" ~args:(scan_args rel sigma) "satisfies"
  @@ fun () ->
  Metrics.time m_satisfies @@ fun () ->
  Metrics.incr m_scans;
  let tuples = Relation.tuples rel in
  let n = Array.length tuples in
  let arity = Schema.arity (Relation.schema rel) in
  let idx = const_index sigma in
  let found = Atomic.make false in
  Pool.for_chunks ~label:"satisfies.chunk" pool ~n (fun lo hi ->
      let i = ref lo in
      while (not (Atomic.get found)) && !i < hi do
        let t = tuples.(!i) in
        (try
           iter_tuple_candidates idx arity t (fun cfd ->
               if violates_constant cfd t then raise Exit)
         with Exit -> Atomic.set found true);
        incr i
      done);
  (not (Atomic.get found))
  && not
       (List.exists
          (fun cfd ->
            let table = groups_of_clause ?pool tuples cfd in
            try
              Vkey.Table.iter
                (fun _key g -> if group_conflicts g then raise Exit)
                table;
              false
            with Exit -> true)
          (wild_clauses sigma))
