(** A minimal JSON value type with a deterministic printer.

    Every machine-readable artefact of the project — the CLI's
    [--format json] envelope, [--metrics] dumps, engine reports, the bench
    harness's [BENCH_*.json] files — is built from this one type, so all
    of them share the same escaping, float rendering and (stable) field
    order.  Objects print their fields {e in construction order}: callers
    are responsible for building them in a canonical order, which is what
    makes report output byte-comparable across runs and job counts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val of_value : Dq_relation.Value.t -> t
(** [Value.Null] maps to {!Null}; constants keep their type. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control characters). *)

val to_string : ?minify:bool -> t -> string
(** Render with two-space indentation (or none when [minify]), ending in a
    newline in the pretty form.  Non-finite floats render as [null];
    finite floats use ["%.12g"], a fixed-precision rendering that is a
    pure function of the value. *)

val equal : t -> t -> bool
(** Structural equality (field order significant — two objects with the
    same fields in different orders are different documents here). *)

val member : string -> t -> t option
(** First field of that name, when the value is an object. *)

val parse : string -> (t, string) result
(** Parse one JSON document (the inverse of {!to_string}).  Numbers
    without a fraction or exponent load as {!Int}, everything else as
    {!Float}; [\u] escapes decode to UTF-8.  Errors carry a byte
    offset.  Used by [bench --compare] to read [BENCH_*.json] files
    back, and by the test suite to check emitted traces. *)
