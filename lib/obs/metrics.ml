let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

(* Counters are monotonic; [add] documents non-negativity and [strict]
   decides what a violation does: raise (debug builds, the test suite)
   or clamp to a no-op (release daemons must not die on a bad delta). *)
let strict_flag = Atomic.make false

let set_strict b = Atomic.set strict_flag b

(* ---- label rendering ---------------------------------------------------- *)

(* Labels are part of an instrument's identity.  They are stored sorted
   by key, so the same label set in any order names the same instrument,
   and rendered once at registration: the hot recording path never
   touches them. *)
let canonical_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let escape_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

(* ---- instruments -------------------------------------------------------- *)

type counter = {
  c_name : string;
  c_labels : (string * string) list;
  value : int Atomic.t;
}

type timer = {
  t_name : string;
  t_labels : (string * string) list;
  lock : Mutex.t;
  mutable count : int;
  mutable total : float;
  mutable min : float;
  mutable max : float;
}

type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  g_lock : Mutex.t;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_labels : (string * string) list;
  h_lock : Mutex.t;
  buckets : float array;  (** upper bounds, increasing; +Inf is implicit *)
  counts : int array;  (** length = Array.length buckets + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

(* Log-spaced 1-2.5-5 ladders.  Latency buckets span 100µs to 10s;
   size buckets 1 to 1M (batch sizes, checkpoint bytes). *)
let latency_buckets =
  [|
    0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1;
    0.25; 0.5; 1.; 2.5; 5.; 10.;
  |]

let size_buckets =
  [|
    1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1_000.; 2_500.; 5_000.;
    10_000.; 25_000.; 50_000.; 100_000.; 250_000.; 500_000.; 1_000_000.;
  |]

(* Handles are typically created at module-initialisation time
   (single-domain), but labeled instruments are registered on demand
   from request threads, so registration takes the registry lock. *)
let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let key name labels = name ^ render_labels labels

let register tbl name labels create =
  let labels = canonical_labels labels in
  let k = key name labels in
  Mutex.lock registry_lock;
  let v =
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None ->
      let v = create labels in
      Hashtbl.add tbl k v;
      v
  in
  Mutex.unlock registry_lock;
  v

let counter ?(labels = []) name =
  register counters name labels (fun c_labels ->
      { c_name = name; c_labels; value = Atomic.make 0 })

let add c n =
  if n < 0 then begin
    if Atomic.get strict_flag then
      invalid_arg
        (Printf.sprintf "Metrics.add: negative increment %d on counter %s" n
           c.c_name)
    (* clamp: a monotonic counter never goes down *)
  end
  else if enabled () then ignore (Atomic.fetch_and_add c.value n)

let incr c = add c 1

let counter_value c = Atomic.get c.value

let timer ?(labels = []) name =
  register timers name labels (fun t_labels ->
      {
        t_name = name;
        t_labels;
        lock = Mutex.create ();
        count = 0;
        total = 0.;
        min = infinity;
        max = neg_infinity;
      })

let record t dt =
  if enabled () then begin
    Mutex.lock t.lock;
    t.count <- t.count + 1;
    t.total <- t.total +. dt;
    if dt < t.min then t.min <- dt;
    if dt > t.max then t.max <- dt;
    Mutex.unlock t.lock
  end

let time t f =
  if not (enabled ()) then f ()
  else begin
    let started = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> record t (Unix.gettimeofday () -. started))
      f
  end

let gauge ?(labels = []) name =
  register gauges name labels (fun g_labels ->
      { g_name = name; g_labels; g_lock = Mutex.create (); g_value = 0. })

let set_gauge g v =
  if enabled () then begin
    Mutex.lock g.g_lock;
    g.g_value <- v;
    Mutex.unlock g.g_lock
  end

let add_gauge g d =
  if enabled () then begin
    Mutex.lock g.g_lock;
    g.g_value <- g.g_value +. d;
    Mutex.unlock g.g_lock
  end

let gauge_value g =
  Mutex.lock g.g_lock;
  let v = g.g_value in
  Mutex.unlock g.g_lock;
  v

let histogram ?(labels = []) ?(buckets = latency_buckets) name =
  register histograms name labels (fun h_labels ->
      {
        h_name = name;
        h_labels;
        h_lock = Mutex.create ();
        buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        h_sum = 0.;
        h_count = 0;
      })

let observe h v =
  if enabled () then begin
    let n = Array.length h.buckets in
    let rec slot i = if i >= n || v <= h.buckets.(i) then i else slot (i + 1) in
    let i = slot 0 in
    Mutex.lock h.h_lock;
    h.counts.(i) <- h.counts.(i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1;
    Mutex.unlock h.h_lock
  end

let histogram_count h =
  Mutex.lock h.h_lock;
  let c = h.h_count in
  Mutex.unlock h.h_lock;
  c

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter
    (fun _ t ->
      Mutex.lock t.lock;
      t.count <- 0;
      t.total <- 0.;
      t.min <- infinity;
      t.max <- neg_infinity;
      Mutex.unlock t.lock)
    timers;
  Hashtbl.iter
    (fun _ g ->
      Mutex.lock g.g_lock;
      g.g_value <- 0.;
      Mutex.unlock g.g_lock)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.h_lock;
      Array.fill h.counts 0 (Array.length h.counts) 0;
      h.h_sum <- 0.;
      h.h_count <- 0;
      Mutex.unlock h.h_lock)
    histograms;
  Mutex.unlock registry_lock

(* ---- JSON snapshot ------------------------------------------------------ *)

let sorted_values tbl name_of =
  Mutex.lock registry_lock;
  let vs = Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] in
  Mutex.unlock registry_lock;
  List.sort (fun a b -> String.compare (name_of a) (name_of b)) vs

let instrument_name name labels = name ^ render_labels labels

let snapshot () =
  let cs = sorted_values counters (fun c -> key c.c_name c.c_labels) in
  let ts = sorted_values timers (fun t -> key t.t_name t.t_labels) in
  let gs = sorted_values gauges (fun g -> key g.g_name g.g_labels) in
  let hs = sorted_values histograms (fun h -> key h.h_name h.h_labels) in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map
             (fun c ->
               ( instrument_name c.c_name c.c_labels,
                 Json.Int (Atomic.get c.value) ))
             cs) );
      ( "timers",
        Json.Obj
          (List.map
             (fun t ->
               Mutex.lock t.lock;
               let count = t.count
               and total = t.total
               and mn = t.min
               and mx = t.max in
               Mutex.unlock t.lock;
               ( instrument_name t.t_name t.t_labels,
                 Json.Obj
                   [
                     ("count", Json.Int count);
                     ("total_s", Json.Float total);
                     ("min_s", Json.Float (if count = 0 then 0. else mn));
                     ("max_s", Json.Float (if count = 0 then 0. else mx));
                   ] ))
             ts) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun g ->
               (instrument_name g.g_name g.g_labels, Json.Float (gauge_value g)))
             gs) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun h ->
               Mutex.lock h.h_lock;
               let count = h.h_count and sum = h.h_sum in
               Mutex.unlock h.h_lock;
               ( instrument_name h.h_name h.h_labels,
                 Json.Obj
                   [ ("count", Json.Int count); ("sum", Json.Float sum) ] ))
             hs) );
    ]

(* ---- Prometheus text exposition ----------------------------------------- *)

(* Stable metric naming: every family is cfdclean_<mangled instrument
   name> — dots and any other non-[a-zA-Z0-9_] byte become '_'.  Output
   is sorted by family name, then by rendered label set, so two scrapes
   of the same registry state are byte-identical. *)
let mangle name =
  let b = Buffer.create (String.length name + 9) in
  Buffer.add_string b "cfdclean_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let matches_prefix prefix name =
  match prefix with
  | None -> true
  | Some p ->
    String.length name >= String.length p
    && String.equal (String.sub name 0 (String.length p)) p

(* One family: its TYPE line followed by its samples, already sorted. *)
let family buf ~typ fam samples =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam typ);
  List.iter (fun line -> Buffer.add_string buf line) samples

let to_prometheus ?prefix () =
  let buf = Buffer.create 4096 in
  let collect tbl name_of =
    sorted_values tbl name_of
  in
  (* Group instruments of one kind by family name; instruments are
     already sorted by (name, labels), so groups come out ordered. *)
  let grouped instruments name_of =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun i ->
        let fam = name_of i in
        match Hashtbl.find_opt tbl fam with
        | Some l -> l := i :: !l
        | None ->
          Hashtbl.add tbl fam (ref [ i ]);
          order := fam :: !order)
      instruments;
    List.rev_map (fun fam -> (fam, List.rev !(Hashtbl.find tbl fam))) !order
    |> List.rev
  in
  let emit ~typ fam members sample_lines =
    family buf ~typ fam (List.concat_map sample_lines members)
  in
  (* Families of all kinds interleave in one sorted stream. *)
  let entries = ref [] in
  let push fam thunk = entries := (fam, thunk) :: !entries in
  List.iter
    (fun (fam, cs) ->
      push fam (fun () ->
          emit ~typ:"counter" fam cs (fun c ->
              [
                Printf.sprintf "%s%s %d\n" fam
                  (render_labels c.c_labels)
                  (Atomic.get c.value);
              ])))
    (grouped
       (List.filter
          (fun c -> matches_prefix prefix c.c_name)
          (collect counters (fun c -> key c.c_name c.c_labels)))
       (fun c -> mangle c.c_name ^ "_total"));
  List.iter
    (fun (fam, gs) ->
      push fam (fun () ->
          emit ~typ:"gauge" fam gs (fun g ->
              [
                Printf.sprintf "%s%s %s\n" fam
                  (render_labels g.g_labels)
                  (float_repr (gauge_value g));
              ])))
    (grouped
       (List.filter
          (fun g -> matches_prefix prefix g.g_name)
          (collect gauges (fun g -> key g.g_name g.g_labels)))
       (fun g -> mangle g.g_name));
  List.iter
    (fun (fam, ts) ->
      push fam (fun () ->
          emit ~typ:"summary" fam ts (fun t ->
              Mutex.lock t.lock;
              let count = t.count and total = t.total in
              Mutex.unlock t.lock;
              let labels = render_labels t.t_labels in
              [
                Printf.sprintf "%s_sum%s %s\n" fam labels (float_repr total);
                Printf.sprintf "%s_count%s %d\n" fam labels count;
              ])))
    (grouped
       (List.filter
          (fun t -> matches_prefix prefix t.t_name)
          (collect timers (fun t -> key t.t_name t.t_labels)))
       (fun t -> mangle t.t_name ^ "_seconds"));
  List.iter
    (fun (fam, hs) ->
      push fam (fun () ->
          emit ~typ:"histogram" fam hs (fun h ->
              Mutex.lock h.h_lock;
              let counts = Array.copy h.counts
              and sum = h.h_sum
              and count = h.h_count in
              Mutex.unlock h.h_lock;
              let cumulative = ref 0 in
              let bucket_lines =
                List.concat
                  [
                    List.init (Array.length h.buckets) (fun i ->
                        cumulative := !cumulative + counts.(i);
                        Printf.sprintf "%s_bucket%s %d\n" fam
                          (render_labels
                             (canonical_labels
                                (("le", float_repr h.buckets.(i))
                                :: h.h_labels)))
                          !cumulative);
                    [
                      Printf.sprintf "%s_bucket%s %d\n" fam
                        (render_labels
                           (canonical_labels (("le", "+Inf") :: h.h_labels)))
                        count;
                    ];
                  ]
              in
              bucket_lines
              @ [
                  Printf.sprintf "%s_sum%s %s\n" fam
                    (render_labels h.h_labels)
                    (float_repr sum);
                  Printf.sprintf "%s_count%s %d\n" fam
                    (render_labels h.h_labels)
                    count;
                ])))
    (grouped
       (List.filter
          (fun h -> matches_prefix prefix h.h_name)
          (collect histograms (fun h -> key h.h_name h.h_labels)))
       (fun h -> mangle h.h_name));
  List.iter
    (fun (_, thunk) -> thunk ())
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (List.rev !entries));
  Buffer.contents buf
