let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

type counter = { c_name : string; value : int Atomic.t }

type timer = {
  t_name : string;
  lock : Mutex.t;
  mutable count : int;
  mutable total : float;
  mutable min : float;
  mutable max : float;
}

(* Handles are created at module-initialisation time (single-domain), but
   guard registration anyway so dynamic creation stays safe. *)
let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { c_name = name; value = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c
  in
  Mutex.unlock registry_lock;
  c

let add c n = if enabled () then ignore (Atomic.fetch_and_add c.value n)

let incr c = add c 1

let counter_value c = Atomic.get c.value

let timer name =
  Mutex.lock registry_lock;
  let t =
    match Hashtbl.find_opt timers name with
    | Some t -> t
    | None ->
      let t =
        {
          t_name = name;
          lock = Mutex.create ();
          count = 0;
          total = 0.;
          min = infinity;
          max = neg_infinity;
        }
      in
      Hashtbl.add timers name t;
      t
  in
  Mutex.unlock registry_lock;
  t

let record t dt =
  if enabled () then begin
    Mutex.lock t.lock;
    t.count <- t.count + 1;
    t.total <- t.total +. dt;
    if dt < t.min then t.min <- dt;
    if dt > t.max then t.max <- dt;
    Mutex.unlock t.lock
  end

let time t f =
  if not (enabled ()) then f ()
  else begin
    let started = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> record t (Unix.gettimeofday () -. started))
      f
  end

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter
    (fun _ t ->
      Mutex.lock t.lock;
      t.count <- 0;
      t.total <- 0.;
      t.min <- infinity;
      t.max <- neg_infinity;
      Mutex.unlock t.lock)
    timers;
  Mutex.unlock registry_lock

let snapshot () =
  Mutex.lock registry_lock;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters [] in
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) timers [] in
  Mutex.unlock registry_lock;
  let cs = List.sort (fun a b -> String.compare a.c_name b.c_name) cs in
  let ts = List.sort (fun a b -> String.compare a.t_name b.t_name) ts in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun c -> (c.c_name, Json.Int (Atomic.get c.value))) cs) );
      ( "timers",
        Json.Obj
          (List.map
             (fun t ->
               Mutex.lock t.lock;
               let count = t.count
               and total = t.total
               and mn = t.min
               and mx = t.max in
               Mutex.unlock t.lock;
               ( t.t_name,
                 Json.Obj
                   [
                     ("count", Json.Int count);
                     ("total_s", Json.Float total);
                     ("min_s", Json.Float (if count = 0 then 0. else mn));
                     ("max_s", Json.Float (if count = 0 then 0. else mx));
                   ] ))
             ts) );
    ]
