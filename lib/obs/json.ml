type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let of_value (v : Dq_relation.Value.t) =
  match v with
  | Dq_relation.Value.Null -> Null
  | Dq_relation.Value.Int i -> Int i
  | Dq_relation.Value.Float f -> Float f
  | Dq_relation.Value.String s -> String s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.12g is a pure function of the float, so renderings are stable across
   runs; JSON has no literal for non-finite numbers, so those become null. *)
let float_repr f =
  if not (Float.is_finite f) then "null" else Printf.sprintf "%.12g" f

let to_string ?(minify = false) json =
  let b = Buffer.create 1024 in
  let pad n = if not minify then Buffer.add_string b (String.make n ' ') in
  let nl () = if not minify then Buffer.add_char b '\n' in
  let sep () = Buffer.add_string b (if minify then ":" else ": ") in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          nl ();
          pad (indent + 2);
          go (indent + 2) item)
        items;
      nl ();
      pad indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          nl ();
          pad (indent + 2);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_char b '"';
          sep ();
          go (indent + 2) v)
        fields;
      nl ();
      pad indent;
      Buffer.add_char b '}'
  in
  go 0 json;
  nl ();
  Buffer.contents b

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
  | _ -> false

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

(* ---- parsing ---------------------------------------------------------- *)

exception Bad of string * int

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (msg, !pos)) in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then error "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'; incr pos
          | '\\' -> Buffer.add_char b '\\'; incr pos
          | '/' -> Buffer.add_char b '/'; incr pos
          | 'b' -> Buffer.add_char b '\b'; incr pos
          | 'f' -> Buffer.add_char b '\012'; incr pos
          | 'n' -> Buffer.add_char b '\n'; incr pos
          | 'r' -> Buffer.add_char b '\r'; incr pos
          | 't' -> Buffer.add_char b '\t'; incr pos
          | 'u' ->
            if !pos + 4 >= n then error "truncated \\u escape";
            let code =
              match int_of_string ("0x" ^ String.sub s (!pos + 1) 4) with
              | code -> code
              | exception _ -> error "bad \\u escape"
            in
            add_utf8 b code;
            pos := !pos + 5
          | _ -> error "unknown escape");
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let continues () =
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while continues () do
      incr pos
    done;
    let body = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt body with
      | Some f -> Float f
      | None -> error "malformed number"
    else
      match int_of_string_opt body with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt body with
        | Some f -> Float f
        | None -> error "malformed number")
  in
  (* Comma-separated [item]s until [close]; the opening bracket is already
     consumed. *)
  let rec elements close item acc =
    skip_ws ();
    if !pos >= n then error "unterminated container"
    else if s.[!pos] = close then begin
      incr pos;
      List.rev acc
    end
    else begin
      let acc = item () :: acc in
      skip_ws ();
      if !pos < n && s.[!pos] = ',' then begin
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = close then error "trailing comma";
        elements close item acc
      end
      else if !pos < n && s.[!pos] = close then begin
        incr pos;
        List.rev acc
      end
      else error "expected ',' or closing bracket"
    end
  in
  let rec value () =
    skip_ws ();
    if !pos >= n then error "unexpected end of input"
    else
      match s.[!pos] with
      | 'n' -> literal "null" Null
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | '"' -> String (parse_string ())
      | '-' | '0' .. '9' -> parse_number ()
      | '[' ->
        incr pos;
        List (elements ']' value [])
      | '{' ->
        incr pos;
        Obj
          (elements '}'
             (fun () ->
               skip_ws ();
               let key = parse_string () in
               skip_ws ();
               expect ':';
               let v = value () in
               (key, v))
             [])
      | _ -> error "unexpected character"
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)
