type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let of_value (v : Dq_relation.Value.t) =
  match v with
  | Dq_relation.Value.Null -> Null
  | Dq_relation.Value.Int i -> Int i
  | Dq_relation.Value.Float f -> Float f
  | Dq_relation.Value.String s -> String s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.12g is a pure function of the float, so renderings are stable across
   runs; JSON has no literal for non-finite numbers, so those become null. *)
let float_repr f =
  if not (Float.is_finite f) then "null" else Printf.sprintf "%.12g" f

let to_string ?(minify = false) json =
  let b = Buffer.create 1024 in
  let pad n = if not minify then Buffer.add_string b (String.make n ' ') in
  let nl () = if not minify then Buffer.add_char b '\n' in
  let sep () = Buffer.add_string b (if minify then ":" else ": ") in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          nl ();
          pad (indent + 2);
          go (indent + 2) item)
        items;
      nl ();
      pad indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          nl ();
          pad (indent + 2);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_char b '"';
          sep ();
          go (indent + 2) v)
        fields;
      nl ();
      pad indent;
      Buffer.add_char b '}'
  in
  go 0 json;
  nl ();
  Buffer.contents b

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
  | _ -> false
