open Dq_relation

type entry = {
  tid : int;
  attr : int;
  attr_name : string;
  old_value : Value.t;
  new_value : Value.t;
  clause : string option;
  cost_delta : float;
  pass : int;
}

let entry_equal a b =
  a.tid = b.tid && a.attr = b.attr
  && String.equal a.attr_name b.attr_name
  && Value.equal a.old_value b.old_value
  && Value.equal a.new_value b.new_value
  && Option.equal String.equal a.clause b.clause
  && Float.equal a.cost_delta b.cost_delta
  && a.pass = b.pass

let entry_to_json e =
  Json.Obj
    [
      ("tid", Json.Int e.tid);
      ("attr", Json.Int e.attr);
      ("attr_name", Json.String e.attr_name);
      ("old", Json.of_value e.old_value);
      ("new", Json.of_value e.new_value);
      ( "clause",
        match e.clause with Some c -> Json.String c | None -> Json.Null );
      ("cost_delta", Json.Float e.cost_delta);
      ("pass", Json.Int e.pass);
    ]

let pp_entry ppf e =
  Format.fprintf ppf "%4d  t%-5d %-10s %-14s -> %-14s %-14s %8.4f" e.pass
    e.tid e.attr_name
    (Value.to_display e.old_value)
    (Value.to_display e.new_value)
    (match e.clause with Some c -> c | None -> "-")
    e.cost_delta

type trail = { mutable rev_entries : entry list; mutable n : int }

let create () = { rev_entries = []; n = 0 }

let record trail e =
  trail.rev_entries <- e :: trail.rev_entries;
  trail.n <- trail.n + 1

let length trail = trail.n

let entries trail = List.rev trail.rev_entries

let replay original entries =
  let rel = Relation.copy original in
  List.iter
    (fun e ->
      match Relation.find rel e.tid with
      | Some t -> Relation.set_value rel t e.attr e.new_value
      | None -> ())
    entries;
  rel
