(* Leveled, structured JSON-lines logging for long-lived processes.

   The same zero-overhead discipline as Metrics and Trace: one atomic
   read per call site when logging is off (no sink installed), field
   construction behind a thunk so it costs nothing unless the line is
   actually emitted.  Lines are written under one mutex, so concurrent
   connection threads never interleave bytes and timestamps come out
   non-decreasing in file order. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* [enabled_flag] is the single hot-path gate; [threshold] only matters
   once a sink is installed. *)
let enabled_flag = Atomic.make false

let threshold = Atomic.make (severity Info)

let set_level l = Atomic.set threshold (severity l)

let enabled l =
  Atomic.get enabled_flag && severity l >= Atomic.get threshold

type sink = { write : string -> unit; close : unit -> unit }

let sink_lock = Mutex.create ()

let current_sink : sink option ref = ref None

(* Process start, the origin for [uptime_s].  Wall timestamps are
   clamped to be non-decreasing across the sink mutex: a clock step
   backwards (NTP) cannot make the log travel back in time. *)
let started = Unix.gettimeofday ()

let last_ts = ref started

let set_sink s =
  Mutex.lock sink_lock;
  (match !current_sink with Some old -> old.close () | None -> ());
  current_sink := s;
  Mutex.unlock sink_lock;
  Atomic.set enabled_flag (s <> None)

let stderr_sink () =
  { write = (fun line -> output_string stderr line; flush stderr);
    close = (fun () -> ()) }

let file_sink path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
    Ok
      {
        write = (fun line -> output_string oc line; flush oc);
        close = (fun () -> close_out_noerr oc);
      }
  | exception Sys_error msg -> Error msg

let log lvl event fields =
  if enabled lvl then begin
    Mutex.lock sink_lock;
    match !current_sink with
    | None -> Mutex.unlock sink_lock
    | Some sink ->
      let now = Unix.gettimeofday () in
      let ts = if now > !last_ts then now else !last_ts in
      last_ts := ts;
      let doc =
        Json.Obj
          ([
             ("ts", Json.Float ts);
             ("uptime_s", Json.Float (ts -. started));
             ("level", Json.String (level_to_string lvl));
             ("event", Json.String event);
           ]
          @ fields ())
      in
      let line = Json.to_string ~minify:true doc ^ "\n" in
      Fun.protect
        ~finally:(fun () -> Mutex.unlock sink_lock)
        (fun () -> sink.write line)
  end

let debug event fields = log Debug event fields

let info event fields = log Info event fields

let warn event fields = log Warn event fields

let error event fields = log Error event fields
