type degraded = { reason : string; progress : float }

type t = {
  engine : string;
  summary : (string * Json.t) list;
  phases : (string * float) list;
  provenance : Provenance.entry list;
  degraded : degraded option;
}

let make ~engine ?(summary = []) ?(phases = []) ?(provenance = []) ?degraded ()
    =
  { engine; summary; phases; provenance; degraded }

let degraded_equal a b =
  String.equal a.reason b.reason && Float.equal a.progress b.progress

let equal a b =
  String.equal a.engine b.engine
  && List.equal
       (fun (k, v) (k', v') -> String.equal k k' && Json.equal v v')
       a.summary b.summary
  && List.equal Provenance.entry_equal a.provenance b.provenance
  && Option.equal degraded_equal a.degraded b.degraded

let json_parts ~with_phases r =
  [
    ("engine", Json.String r.engine);
    ("summary", Json.Obj r.summary);
  ]
  @ (if with_phases then
       [
         ( "phases",
           Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) r.phases) );
       ]
     else [])
  @ [ ("provenance", Json.List (List.map Provenance.entry_to_json r.provenance)) ]
  (* Emitted only when present, so reports from undegraded runs are
     byte-identical to what they were before the field existed. *)
  @ (match r.degraded with
    | None -> []
    | Some { reason; progress } ->
      [
        ("degraded", Json.Bool true);
        ("degraded_reason", Json.String reason);
        ("progress", Json.Float progress);
      ])

let to_json r = Json.Obj (json_parts ~with_phases:true r)

let stable_json r = Json.Obj (json_parts ~with_phases:false r)

let phase acc name f =
  Trace.span ~cat:"phase" name (fun () ->
      let started = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          acc := !acc @ [ (name, Unix.gettimeofday () -. started) ])
        f)

let phase_m acc name timer f =
  Trace.span ~cat:"phase" name (fun () ->
      let started = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Unix.gettimeofday () -. started in
          acc := !acc @ [ (name, dt) ];
          Metrics.record timer dt)
        f)
