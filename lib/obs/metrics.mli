(** Named monotonic counters, duration timers, gauges and log-bucketed
    histograms.

    A process-wide registry, disabled by default: every recording
    operation first reads one atomic flag and returns immediately when
    collection is off, so instrumented hot paths pay (almost) nothing
    unless the user asked for metrics ([--metrics FILE] in the CLI,
    the serve daemon, or {!set_enabled} in a library embedding).

    Handles are created once — at module-initialisation time by the
    instrumented modules themselves ([let m = Metrics.counter "x.y"] at
    top level), or on demand for labeled instruments (the serve daemon
    registers one [serve.requests] counter per (route, status) pair as
    traffic arrives).  Creating a handle registers the name, so
    {!snapshot} and {!to_prometheus} report every instrument the process
    carries even when its value is zero.  Recording is domain-safe:
    counters are atomics, everything else takes a per-handle mutex —
    both are touched by {!Dq_parallel.Pool} workers.

    Labels: instruments of the same name with different label sets are
    different instruments of one {e family}; label order is
    canonicalised at registration, so [[("a", "1"); ("b", "2")]] and its
    permutation name the same handle.

    Metrics are {e observability, not results}: they are cumulative per
    process, wall-clock dependent, and deliberately excluded from report
    equality (see {!Report}). *)

type counter

type timer

type gauge

type histogram

val set_enabled : bool -> unit
(** Turn collection on or off (off initially). *)

val enabled : unit -> bool

val set_strict : bool -> unit
(** In strict mode (the test suite, debug builds) a negative {!add}
    raises [Invalid_argument]; otherwise it is clamped to a no-op —
    counters are monotonic either way.  Off initially. *)

val counter : ?labels:(string * string) list -> string -> counter
(** Register (or retrieve) the named monotonic counter. *)

val add : counter -> int -> unit
(** No-op when disabled.  [n] must be non-negative (counters are
    monotonic): a negative [n] raises [Invalid_argument] under
    {!set_strict}, and is ignored otherwise. *)

val incr : counter -> unit

val counter_value : counter -> int

val timer : ?labels:(string * string) list -> string -> timer
(** Register (or retrieve) the named duration timer. *)

val record : timer -> float -> unit
(** Record one duration, in seconds.  No-op when disabled. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock duration when enabled (also
    on exceptional exit).  When disabled the thunk is called directly —
    no clock reads. *)

val gauge : ?labels:(string * string) list -> string -> gauge
(** Register (or retrieve) the named gauge — a value that can go up and
    down (live sessions, quarantine depth, GC words). *)

val set_gauge : gauge -> float -> unit
(** Overwrite the gauge.  No-op when disabled. *)

val add_gauge : gauge -> float -> unit
(** Adjust the gauge by a (possibly negative) delta.  No-op when
    disabled. *)

val gauge_value : gauge -> float

val latency_buckets : float array
(** The default histogram bounds: a log-spaced 1-2.5-5 ladder from
    100µs to 10s. *)

val size_buckets : float array
(** Log-spaced bounds from 1 to 1M, for batch sizes and byte counts. *)

val histogram :
  ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** Register (or retrieve) the named histogram.  [buckets] are the
    upper bounds of the finite buckets, strictly increasing; an
    implicit [+Inf] bucket catches the rest.  Defaults to
    {!latency_buckets}. *)

val observe : histogram -> float -> unit
(** Record one observation.  No-op when disabled. *)

val histogram_count : histogram -> int

val reset : unit -> unit
(** Zero every registered instrument (handles stay valid). *)

val snapshot : unit -> Json.t
(** The registry as one JSON object with four fields — ["counters"],
    ["timers"], ["gauges"], ["histograms"] — each sorted by instrument
    name (labels rendered into the name).  A counter renders as its
    integer value; a timer as [{count, total_s, min_s, max_s}]; a gauge
    as its float value; a histogram as [{count, sum}]. *)

val to_prometheus : ?prefix:string -> unit -> string
(** The registry in Prometheus text exposition format.  Families are
    named [cfdclean_<instrument name with non-alphanumerics mangled to
    _>]; counters gain a [_total] suffix, timers render as summaries
    under [<family>_seconds] with [_sum]/[_count] samples, histograms
    as cumulative [_bucket{le="..."}] series plus [_sum]/[_count].
    Output is sorted by family name then label set, so two scrapes of
    the same registry state are byte-identical.  [prefix] restricts the
    exposition to instruments whose (unmangled) name starts with it —
    the golden tests use this to keep the rest of the registry out of
    the comparison. *)
