(** Named monotonic counters and duration histograms.

    A process-wide registry, disabled by default: every recording
    operation first reads one atomic flag and returns immediately when
    collection is off, so instrumented hot paths pay (almost) nothing
    unless the user asked for metrics ([--metrics FILE] in the CLI, or
    {!set_enabled} in a library embedding).

    Handles are created once, at module initialisation time, by the
    instrumented modules themselves ([let m = Metrics.counter "x.y"] at
    top level); creating a handle registers the name, so {!snapshot}
    reports every instrument the binary carries even when its value is
    zero.  Recording is domain-safe: counters are atomics, histograms
    take a per-handle mutex — both are touched by {!Dq_parallel.Pool}
    workers.

    Metrics are {e observability, not results}: they are cumulative per
    process, wall-clock dependent, and deliberately excluded from report
    equality (see {!Report}). *)

type counter

type timer

val set_enabled : bool -> unit
(** Turn collection on or off (off initially). *)

val enabled : unit -> bool

val counter : string -> counter
(** Register (or retrieve) the named monotonic counter. *)

val add : counter -> int -> unit
(** No-op when disabled.  [n] must be non-negative (counters are
    monotonic); this is not checked. *)

val incr : counter -> unit

val counter_value : counter -> int

val timer : string -> timer
(** Register (or retrieve) the named duration histogram. *)

val record : timer -> float -> unit
(** Record one duration, in seconds.  No-op when disabled. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock duration when enabled (also
    on exceptional exit).  When disabled the thunk is called directly —
    no clock reads. *)

val reset : unit -> unit
(** Zero every registered instrument (handles stay valid). *)

val snapshot : unit -> Json.t
(** The registry as one JSON object with two fields, ["counters"] and
    ["timers"], each sorted by instrument name.  A counter renders as its
    integer value; a timer as [{count, total_s, min_s, max_s}]. *)
