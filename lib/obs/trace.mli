(** Hierarchical span tracing in Chrome trace-event form.

    Where {!Metrics} aggregates (how many merges, total seconds in a
    phase), a trace keeps every occurrence: a {e span} is one timed
    interval with a name, a category, the domain it ran on, and optional
    arguments (tuple and clause counts, pass numbers).  Spans nest — the
    engines open one around each {!Report} phase and finer-grained ones
    inside the hot paths (per resolution pass and per equivalence-class
    merge in BATCHREPAIR, per [TUPLERESOLVE] in INCREPAIR, per worker
    chunk inside {!Dq_parallel.Pool}) — so loading the dump in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto} shows
    where a repair's time actually goes, with [--jobs n] rendering as
    [n] parallel lanes.

    Collection rides the same kind of atomic gate as {!Metrics}: off by
    default, one atomic read per {!span} call when disabled, switched on
    by [--trace FILE] in the CLI and the bench harness.

    {2 Determinism contract}

    Span {e names and nesting} are part of the engines' deterministic
    surface: the set of distinct span paths (see {!type:event}[.path])
    produced by a run is identical at any [--jobs] count.  Timestamps,
    durations, event multiplicities of worker-chunk spans (one per
    chunk) and domain ids are measurement and vary run to run — the
    same split {!Report.stable_json} makes for reports. *)

type context
(** The calling domain's current span stack.  {!Dq_parallel.Pool}
    captures it when a batch is submitted and installs it in the worker
    domains, so a chunk span's logical parent is the span that submitted
    the batch even though it runs on another domain (lane). *)

type event = {
  ph : [ `B | `E ];  (** span begin / span end *)
  name : string;
  cat : string;
  ts : float;  (** microseconds since the trace was enabled/cleared *)
  tid : int;  (** id of the domain the span ran on *)
  path : string list;
      (** enclosing span names, outermost first, ending with this span's
          own name — the logical position in the span tree, independent
          of which domain lane the span landed on *)
  args : (string * Json.t) list;  (** on [`B] events; [[]] on [`E] *)
}

val set_enabled : bool -> unit
(** Turn collection on or off (off initially).  Turning it on resets the
    timestamp origin. *)

val enabled : unit -> bool

val clear : unit -> unit
(** Drop all buffered events and reset the timestamp origin. *)

val span :
  ?cat:string ->
  ?args:(unit -> (string * Json.t) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [span name f] runs [f] inside a span.  When collection is disabled
    this is one atomic read and a direct call — [args] is a thunk so
    argument construction costs nothing unless a trace is being taken.
    The end event is emitted even on exceptional exit. *)

val current_context : unit -> context

val with_context : context -> (unit -> 'a) -> 'a
(** Run the thunk with the given span stack installed in this domain
    (restored afterwards) — how pool workers inherit their submitter's
    position in the span tree. *)

val events : unit -> event list
(** Buffered events in emission order.  The subsequence of any one [tid]
    is properly nested (B/E balance like brackets); the test suite's
    well-formedness checks run on this view. *)

val to_json : unit -> Json.t
(** The buffer in Chrome trace-event JSON object form:
    [{"traceEvents": [{"cat", "name", "ph", "ts", "pid", "tid",
    "args"}, ...], "displayTimeUnit": "ms"}] — loadable directly in
    [chrome://tracing] and Perfetto. *)

val write : string -> unit
(** Dump {!to_json} to a file.  @raise Sys_error on I/O failure. *)
