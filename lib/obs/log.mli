(** Leveled, structured JSON-lines logging.

    Each call emits one minified JSON object per line through the
    installed process sink:

    {v {"ts": <wall seconds>, "uptime_s": <seconds since start>,
       "level": "info", "event": "http.access", ...caller fields} v}

    - [ts] is wall-clock but {e monotonic within the log}: emission
      serialises on one mutex and each timestamp is clamped to be no
      earlier than the previous line's, so a clock stepping backwards
      cannot reorder the file.
    - [uptime_s] is seconds since the process started.
    - Caller fields are appended in the order given; the serve daemon
      puts its per-request correlation fields (request id, route,
      session) here.

    Zero-overhead discipline: with no sink installed every logging call
    is one atomic read, and field lists are thunks, built only when a
    line is actually emitted.  Writing is domain- and thread-safe. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug" | "info" | "warn" | "error"]. *)

val level_of_string : string -> level option

val set_level : level -> unit
(** Drop lines below this level (default {!Info}). *)

val enabled : level -> bool
(** Whether a line at this level would be emitted (sink installed and
    level at or above the threshold). *)

type sink = {
  write : string -> unit;  (** receives one newline-terminated line *)
  close : unit -> unit;  (** called when the sink is replaced *)
}

val set_sink : sink option -> unit
(** Install (or with [None] remove) the process sink.  The previous
    sink's [close] runs first.  Installing a sink turns logging on. *)

val stderr_sink : unit -> sink
(** Lines to stderr, flushed per line. *)

val file_sink : string -> (sink, string) result
(** Lines appended to a file, flushed per line. *)

val log : level -> string -> (unit -> (string * Json.t) list) -> unit
(** [log level event fields] emits one line.  No-op (one atomic read)
    when logging is off or the level is below the threshold. *)

val debug : string -> (unit -> (string * Json.t) list) -> unit

val info : string -> (unit -> (string * Json.t) list) -> unit

val warn : string -> (unit -> (string * Json.t) list) -> unit

val error : string -> (unit -> (string * Json.t) list) -> unit
