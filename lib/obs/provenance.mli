(** Cell-level repair provenance.

    A repair engine records one {!entry} for every write it performs to a
    cell's (effective) value: which tuple and attribute, the value before
    and after, the clause whose resolution caused the write, the cost
    model's score for the step (Section 4.2's [cost]), and the pass — a
    monotonically increasing step counter, so the trail totally orders
    the engine's decisions.

    The trail is {e append-only} and {e replayable}: applying the entries
    in order to the dirty input reconstructs the repaired relation
    exactly (a cell may be written several times; the last write wins,
    exactly as it did inside the engine).  That property is what lets a
    user audit a repair — or the Section 6 inspection loop present the
    evidence behind a sampled tuple — without re-running the engine. *)

open Dq_relation

type entry = {
  tid : int;  (** tuple id in the input relation *)
  attr : int;  (** attribute position *)
  attr_name : string;  (** attribute name, for self-describing output *)
  old_value : Value.t;  (** effective value before the write *)
  new_value : Value.t;  (** effective value after the write *)
  clause : string option;
      (** resolving clause name; [None] for steps not attributable to one
          clause (instantiation, tuple-level resolution) *)
  cost_delta : float;
      (** the Section-4 cost-model score of the step that caused this
          write (the plan cost for BATCHREPAIR resolutions, the per-cell
          weighted change cost elsewhere) *)
  pass : int;  (** step counter; entries of one step share a pass *)
}

val entry_equal : entry -> entry -> bool

val entry_to_json : entry -> Json.t
(** Deterministic field order:
    [tid, attr, attr_name, old, new, clause, cost_delta, pass]. *)

val pp_entry : Format.formatter -> entry -> unit
(** One row of the [--explain] table. *)

type trail
(** A mutable append-only accumulator. *)

val create : unit -> trail

val record : trail -> entry -> unit

val length : trail -> int

val entries : trail -> entry list
(** In append order. *)

val replay : Relation.t -> entry list -> Relation.t
(** [replay original entries] applies every entry, in order, to a deep
    copy of [original] and returns it.  Entries whose tid is absent are
    ignored (deletions are out of scope for value-modification repairs).
    Replaying a repair's trail against its dirty input reproduces the
    repaired relation byte-for-byte. *)
