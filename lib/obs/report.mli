(** The uniform structured report every engine entry point returns
    alongside its value.

    A report has four parts:

    - [engine] — which algorithm produced it;
    - [summary] — the engine's deterministic result statistics, as an
      ordered association list of JSON values.  Stable under [--jobs]:
      two runs of the same input must produce equal summaries at any job
      count;
    - [phases] — per-phase wall-clock seconds, in execution order.
      Timing is measurement, not result: phases are {e excluded} from
      {!equal} and from {!stable_json};
    - [provenance] — the cell-level trail ({!Provenance}), {e included}
      in equality: the sequence of repair decisions is part of the
      result's contract, not an implementation detail.

    {!to_json} keeps a fixed field order, so serialised reports are
    byte-comparable once timing fields are stripped — which is exactly
    what {!stable_json} does. *)

type degraded = { reason : string; progress : float }
(** Why a run was cut short (e.g. ["deadline"]) and roughly how much of
    the work had been done, as a fraction in [\[0, 1\]] — defined per
    engine (batch: share of repair steps known at the cut; inc: share
    of tuples resolved). *)

type t = {
  engine : string;
  summary : (string * Json.t) list;
  phases : (string * float) list;  (** wall seconds, execution order *)
  provenance : Provenance.entry list;
  degraded : degraded option;
      (** [Some _] when the engine stopped early (deadline) and the
          value alongside this report is best-so-far, not final *)
}

val make :
  engine:string ->
  ?summary:(string * Json.t) list ->
  ?phases:(string * float) list ->
  ?provenance:Provenance.entry list ->
  ?degraded:degraded ->
  unit ->
  t

val equal : t -> t -> bool
(** Engine, summary, provenance and degraded must agree; phases
    (timing) are ignored. *)

val to_json : t -> Json.t
(** Field order: [engine, summary, phases, provenance], then — only on
    degraded runs, so undegraded output is byte-identical to what it
    was before the field existed — [degraded, degraded_reason,
    progress]. *)

val stable_json : t -> Json.t
(** {!to_json} without the [phases] field: a byte-identical-across-jobs
    projection, the one compared in tests. *)

val phase : (string * float) list ref -> string -> (unit -> 'a) -> 'a
(** [phase acc name f] runs [f], appending [(name, seconds)] to [acc] —
    the helper engines use to build the [phases] list in execution
    order.  Records also on exceptional exit. *)

val phase_m :
  (string * float) list ref -> string -> Metrics.timer -> (unit -> 'a) -> 'a
(** {!phase} that additionally records the duration on a {!Metrics}
    timer (a no-op when collection is disabled). *)
