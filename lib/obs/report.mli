(** The uniform structured report every engine entry point returns
    alongside its value.

    A report has four parts:

    - [engine] — which algorithm produced it;
    - [summary] — the engine's deterministic result statistics, as an
      ordered association list of JSON values.  Stable under [--jobs]:
      two runs of the same input must produce equal summaries at any job
      count;
    - [phases] — per-phase wall-clock seconds, in execution order.
      Timing is measurement, not result: phases are {e excluded} from
      {!equal} and from {!stable_json};
    - [provenance] — the cell-level trail ({!Provenance}), {e included}
      in equality: the sequence of repair decisions is part of the
      result's contract, not an implementation detail.

    {!to_json} keeps a fixed field order, so serialised reports are
    byte-comparable once timing fields are stripped — which is exactly
    what {!stable_json} does. *)

type t = {
  engine : string;
  summary : (string * Json.t) list;
  phases : (string * float) list;  (** wall seconds, execution order *)
  provenance : Provenance.entry list;
}

val make :
  engine:string ->
  ?summary:(string * Json.t) list ->
  ?phases:(string * float) list ->
  ?provenance:Provenance.entry list ->
  unit ->
  t

val equal : t -> t -> bool
(** Engine, summary and provenance must agree; phases (timing) are
    ignored. *)

val to_json : t -> Json.t
(** Field order: [engine, summary, phases, provenance]. *)

val stable_json : t -> Json.t
(** {!to_json} without the [phases] field: a byte-identical-across-jobs
    projection, the one compared in tests. *)

val phase : (string * float) list ref -> string -> (unit -> 'a) -> 'a
(** [phase acc name f] runs [f], appending [(name, seconds)] to [acc] —
    the helper engines use to build the [phases] list in execution
    order.  Records also on exceptional exit. *)

val phase_m :
  (string * float) list ref -> string -> Metrics.timer -> (unit -> 'a) -> 'a
(** {!phase} that additionally records the duration on a {!Metrics}
    timer (a no-op when collection is disabled). *)
