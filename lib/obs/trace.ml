type context = string list
(* Innermost-first stack of enclosing span names for the current domain. *)

type event = {
  ph : [ `B | `E ];
  name : string;
  cat : string;
  ts : float;
  tid : int;
  path : string list;
  args : (string * Json.t) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Timestamp origin, set when collection starts so traces begin near 0. *)
let epoch = Atomic.make 0.0
let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

(* Events are appended under a mutex in real chronological order, so the
   per-domain subsequence is well-nested by construction — no timestamp
   sorting (and its zero-duration tie-break hazards) needed on output. *)
let lock = Mutex.create ()
let buf : event list ref = ref []

let push ev =
  Mutex.lock lock;
  buf := ev :: !buf;
  Mutex.unlock lock

let clear () =
  Mutex.lock lock;
  buf := [];
  Mutex.unlock lock;
  Atomic.set epoch (Unix.gettimeofday ())

let set_enabled b =
  if b && not (Atomic.get enabled_flag) then
    Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag b

(* Per-domain span stack; fresh worker domains start empty unless the pool
   installs a submitter context via [with_context]. *)
let stack_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let current_context () = Domain.DLS.get stack_key

let with_context ctx f =
  let saved = Domain.DLS.get stack_key in
  Domain.DLS.set stack_key ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set stack_key saved) f

let span ?(cat = "span") ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let tid = (Domain.self () :> int) in
    let stack = Domain.DLS.get stack_key in
    let path = List.rev (name :: stack) in
    let args = match args with None -> [] | Some thunk -> thunk () in
    Domain.DLS.set stack_key (name :: stack);
    push { ph = `B; name; cat; ts = now_us (); tid; path; args };
    Fun.protect
      ~finally:(fun () ->
        push { ph = `E; name; cat; ts = now_us (); tid; path; args = [] };
        Domain.DLS.set stack_key stack)
      f
  end

let events () =
  Mutex.lock lock;
  let evs = List.rev !buf in
  Mutex.unlock lock;
  evs

let pid = lazy (Unix.getpid ())

let event_json ev =
  let base =
    [
      ("cat", Json.String ev.cat);
      ("name", Json.String ev.name);
      ("ph", Json.String (match ev.ph with `B -> "B" | `E -> "E"));
      ("ts", Json.Float ev.ts);
      ("pid", Json.Int (Lazy.force pid));
      ("tid", Json.Int ev.tid);
    ]
  in
  Json.Obj (match ev.args with [] -> base | args -> base @ [ ("args", Json.Obj args) ])

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json (events ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let write path =
  Dq_fault.Atomic_io.write_file path
    (Json.to_string ~minify:true (to_json ()))
