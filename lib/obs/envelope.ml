(* The versioned wire envelope shared by the CLI and the serve daemon. *)

let version = 2

let make ~request ~ok ~report ~diagnostics =
  Json.Obj
    [
      ("v", Json.Int version);
      ("request", Json.String request);
      ("ok", Json.Bool ok);
      ("report", report);
      ("diagnostics", Json.List diagnostics);
    ]

let error ~request err_json =
  make ~request ~ok:false ~report:Json.Null ~diagnostics:[ err_json ]
