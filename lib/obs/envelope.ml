(* The versioned wire envelope shared by the CLI and the serve daemon. *)

let version = 2

(* [id] is the serve daemon's per-request correlation id.  It is emitted
   only when present, so CLI envelopes (and serve responses with
   telemetry off) are byte-identical to what they were before the field
   existed. *)
let make ~request ?id ~ok ~report ~diagnostics () =
  Json.Obj
    ([ ("v", Json.Int version); ("request", Json.String request) ]
    @ (match id with None -> [] | Some id -> [ ("id", Json.String id) ])
    @ [
        ("ok", Json.Bool ok);
        ("report", report);
        ("diagnostics", Json.List diagnostics);
      ])

let error ~request ?id err_json =
  make ~request ?id ~ok:false ~report:Json.Null ~diagnostics:[ err_json ] ()
