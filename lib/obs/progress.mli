(** Live progress lines for long repairs.

    When enabled ([--progress] in the CLI) the engines call {!emit} from
    their hot loops with a thunk that renders the current state (pass
    number, unresolved violations, tuples per second).  Lines go to
    {b stderr only} — [--format json] stdout stays machine-parseable —
    rewriting in place with [\r] and throttled to roughly 4 Hz so a
    million-step repair does not drown the terminal.  Disabled (the
    default), {!emit} is one atomic read. *)

val set_enabled : bool -> unit
(** Off initially.  Turning it off mid-run behaves like {!finish}. *)

val enabled : unit -> bool

val emit : (unit -> string) -> unit
(** Show the rendered line, unless one was shown within the last
    quarter-second.  The thunk only runs when a line is actually
    written. *)

val finish : unit -> unit
(** Clear the progress line (if any was written) so subsequent stderr
    output starts on a clean line. *)
