(** The versioned JSON envelope every machine-readable response shares.

    One schema wraps every [cfdclean] subcommand's [--format json]
    output, every [cfdclean serve] endpoint's response body, and the
    bench harness's [BENCH_*.json] files:

    {v {"v": 2, "request": ..., "ok": ..., "report": ..., "diagnostics": [...]} v}

    - [v] — the envelope schema version ({!version}).  Consumers must
      check it before reading anything else; additions bump it.
    - [request] — what produced the envelope.  For the CLI this is the
      subcommand name (["repair"]); for the daemon it is the endpoint
      label (["sessions.ingest"]).  Replaces v1's CLI-shaped [command]
      field so the same parser reads both transports.
    - [ok] — whether the request succeeded.
    - [report] — the engine's structured {!Report} as JSON ([null] on
      failure).
    - [diagnostics] — warnings and, on failure, the structured error. *)

val version : int
(** The wire schema version emitted and required: [2]. *)

val make :
  request:string ->
  ?id:string ->
  ok:bool ->
  report:Json.t ->
  diagnostics:Json.t list ->
  unit ->
  Json.t
(** Build an envelope.  Field order is fixed ([v, request, id?, ok,
    report, diagnostics]) so output is byte-comparable.  [id] is the
    serve daemon's per-request correlation id, emitted only when
    present — envelopes without one are byte-identical to the pre-[id]
    schema, which is what keeps CLI goldens and the daemon's
    telemetry-off zero-overhead gate intact. *)

val error : request:string -> ?id:string -> Json.t -> Json.t
(** [error ~request err] is the failure envelope: [ok = false], a [null]
    report, and [err] as the one diagnostic. *)
