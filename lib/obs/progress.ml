let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let interval = 0.25 (* seconds between repaints: ~4 Hz *)

(* Timestamp of the last repaint; [dirty] remembers whether anything was
   drawn so [finish] knows if there is a line to wipe.  Guarded writes keep
   concurrent emitters (pool workers) from interleaving partial lines. *)
let lock = Mutex.create ()
let last = ref neg_infinity
let dirty = ref false

let clear_line () =
  if !dirty then begin
    output_string stderr "\r\027[K";
    flush stderr;
    dirty := false
  end

let set_enabled b =
  if not b then begin
    Mutex.lock lock;
    clear_line ();
    last := neg_infinity;
    Mutex.unlock lock
  end;
  Atomic.set enabled_flag b

let emit render =
  if Atomic.get enabled_flag then begin
    Mutex.lock lock;
    let now = Unix.gettimeofday () in
    if now -. !last >= interval then begin
      last := now;
      output_string stderr ("\r\027[K" ^ render ());
      flush stderr;
      dirty := true
    end;
    Mutex.unlock lock
  end

let finish () =
  Mutex.lock lock;
  clear_line ();
  last := neg_infinity;
  Mutex.unlock lock
