type t =
  | Never
  | Wall of float  (** absolute [Unix.gettimeofday] limit *)
  | Passes of { budget : int; used : int Atomic.t }

exception Expired

let never = Never

let after secs = Wall (Unix.gettimeofday () +. secs)

let after_passes n = Passes { budget = n; used = Atomic.make 0 }

let tick = function
  | Never | Wall _ -> ()
  | Passes { used; _ } -> ignore (Atomic.fetch_and_add used 1)

let expired = function
  | Never -> false
  | Wall limit -> Unix.gettimeofday () >= limit
  | Passes { budget; used } -> Atomic.get used >= budget

let wall_expired = function
  | Wall limit -> Unix.gettimeofday () >= limit
  | Never | Passes _ -> false

let check d = if expired d then raise Expired
