(** Deterministic fault injection.

    Code under test declares named {e sites} by calling {!hit} at
    interesting points ([Csv.load_file] calls [hit "csv.load"], the
    domain pool wraps every task in [hit "pool.task"], and so on).  A
    test or an operator arms a {e plan} — "at the [k]-th execution of
    site [s], raise (or stall)" — and the next matching [hit] fires.

    The contract mirrors [Dq_obs.Metrics]/[Trace]: when nothing is
    armed (the default), [hit] is a single read of an atomic flag, so
    instrumented production code pays nothing.

    Plans are parsed from the grammar used by [--fault-plan] and the
    [DQ_FAULT] environment variable:

    {v PLAN   ::= SPEC ("," SPEC)*
SPEC   ::= SITE "@" HIT (":" ACTION)?
ACTION ::= "raise" | "delay" WS MS v}

    e.g. ["io.write@1"] (raise at the first file write),
    ["pool.task@3:delay 50"] (stall the third pool task for 50 ms). *)

(** Raised by {!hit} when an armed [raise] plan fires.  The payload is
    the site name. *)
exception Injected of string

type action =
  | Raise  (** raise {!Injected} at the site *)
  | Delay of float  (** sleep this many seconds, then continue *)

type spec = {
  site : string;  (** which site *)
  hits : int;  (** fire on the [hits]-th execution (1-based) *)
  action : action;
}

type plan = spec list

(** Sites instrumented in this codebase; used by the CLI to reject
    typo'd plans early. *)
val known_sites : string list

(** [parse_plan s] parses the [--fault-plan]/[DQ_FAULT] grammar above.
    Accepts any site name; validation against {!known_sites} is the
    caller's choice. *)
val parse_plan : string -> (plan, string) result

val pp_spec : Format.formatter -> spec -> unit

(** Arm a plan, replacing any previous one and resetting all hit
    counters.  Arming [[]] disarms. *)
val arm : plan -> unit

(** Disarm and reset all counters. *)
val disarm : unit -> unit

(** True when a non-empty plan is armed. *)
val armed : unit -> bool

(** Declare an execution of a named site.  No-op (one atomic read)
    unless a plan targeting this site is armed, in which case the
    armed action fires on the matching execution count.  Thread-safe. *)
val hit : string -> unit
