(** Cooperative deadlines.

    A [Deadline.t] is a cancellation token checked by long-running
    engines at natural boundaries (batch passes, resolved tuples,
    pool chunks).  Two flavours:

    - {!after}: a wall-clock budget in seconds — what [--deadline]
      arms.  [expired] becomes true once the wall clock passes the
      limit, regardless of {!tick}s.
    - {!after_passes}: a logical budget — expired after [n] calls to
      {!tick}.  Because it ignores the clock it cuts at a
      deterministic boundary, which is what the determinism tests
      ("a repair cut at pass k equals the first k passes of an
      uninterrupted run") need.

    Checking is cooperative: nothing is interrupted preemptively, code
    must poll {!expired} (or call {!check}) and wind down with its
    best result so far. *)

type t

exception Expired

(** Never expires.  [expired never] is false and costs one branch, so
    engines can take a [?deadline] without a fast-path penalty. *)
val never : t

(** [after secs] expires [secs] seconds of wall-clock time from now.
    [after 0.] is already expired. *)
val after : float -> t

(** [after_passes n] expires once {!tick} has been called [n] times.
    Deterministic: independent of wall clock and job count. *)
val after_passes : int -> t

(** Count one logical unit of work (a batch pass, a resolved tuple).
    No-op on [never] and wall-clock deadlines. *)
val tick : t -> unit

(** True once the budget — wall-clock or logical — is exhausted. *)
val expired : t -> bool

(** Like {!expired}, but only for wall-clock deadlines: logical
    deadlines report false.  Lets an engine poll mid-pass for
    responsiveness without making [after_passes] cuts depend on where
    the clock happened to land. *)
val wall_expired : t -> bool

(** Raise {!Expired} if {!expired}. *)
val check : t -> unit
