exception Injected of string

type action = Raise | Delay of float

type spec = { site : string; hits : int; action : action }

type plan = spec list

let known_sites =
  [
    "csv.load";
    "io.write";
    "pool.task";
    "repair.pass";
    "resolve.tuple";
    (* network-layer sites in the serve daemon: the start of a connection
       thread, each socket read/write, and the point just before an
       ingest batch reaches the engine (so a fired ingest fault commits
       nothing and the client can retry the whole batch) *)
    "serve.accept";
    "serve.read";
    "serve.write";
    "serve.ingest";
  ]

(* Same zero-overhead contract as Metrics/Trace: [hit] reads one atomic
   flag when nothing is armed.  The mutable counter table behind it is
   guarded by a mutex — fault plans only fire in tests and incident
   drills, so the armed path can afford a lock. *)
let armed_flag = Atomic.make false

let lock = Mutex.create ()

(* site -> (executions so far, trigger count, action) *)
let sites : (string, int ref * int * action) Hashtbl.t = Hashtbl.create 8

let armed () = Atomic.get armed_flag

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let disarm () =
  locked (fun () ->
      Atomic.set armed_flag false;
      Hashtbl.reset sites)

let arm plan =
  locked (fun () ->
      Hashtbl.reset sites;
      List.iter
        (fun { site; hits; action } ->
          Hashtbl.replace sites site (ref 0, hits, action))
        plan;
      Atomic.set armed_flag (plan <> []))

let hit site =
  if Atomic.get armed_flag then begin
    let fired =
      locked (fun () ->
          match Hashtbl.find_opt sites site with
          | None -> None
          | Some (count, trigger, action) ->
            incr count;
            if !count = trigger then Some action else None)
    in
    match fired with
    | None -> ()
    | Some Raise -> raise (Injected site)
    | Some (Delay seconds) -> Unix.sleepf seconds
  end

let pp_spec ppf { site; hits; action } =
  match action with
  | Raise -> Format.fprintf ppf "%s@%d" site hits
  | Delay s -> Format.fprintf ppf "%s@%d:delay %g" site hits (s *. 1000.)

let parse_spec s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "%S: expected SITE@HIT[:ACTION]" s)
  | Some at ->
    let site = String.sub s 0 at in
    let rest = String.sub s (at + 1) (String.length s - at - 1) in
    let hit_s, action_s =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some colon ->
        ( String.sub rest 0 colon,
          Some (String.sub rest (colon + 1) (String.length rest - colon - 1)) )
    in
    if site = "" then Error (Printf.sprintf "%S: empty site name" s)
    else begin
      match int_of_string_opt (String.trim hit_s) with
      | None | Some 0 ->
        Error (Printf.sprintf "%S: hit count must be a positive integer" s)
      | Some n when n < 0 ->
        Error (Printf.sprintf "%S: hit count must be a positive integer" s)
      | Some hits -> (
        match Option.map String.trim action_s with
        | None | Some "raise" -> Ok { site; hits; action = Raise }
        | Some a when String.length a > 5 && String.sub a 0 5 = "delay" -> (
          match float_of_string_opt (String.trim (String.sub a 5 (String.length a - 5))) with
          | Some ms when ms >= 0. -> Ok { site; hits; action = Delay (ms /. 1000.) }
          | Some _ | None ->
            Error (Printf.sprintf "%S: delay wants milliseconds, e.g. \"delay 50\"" s))
        | Some a ->
          Error (Printf.sprintf "%S: unknown action %S (raise | delay MS)" s a))
    end

let parse_plan s =
  let specs =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if specs = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc spec ->
        match (acc, parse_spec spec) with
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e
        | Ok plan, Ok p -> Ok (p :: plan))
      (Ok []) specs
    |> Result.map List.rev
