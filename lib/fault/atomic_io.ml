(* Respect the process umask so atomically-written files get the same
   permissions plain [open_out] would have given them ([Filename.temp_file]
   creates 0600). *)
let default_perm () =
  let mask = Unix.umask 0 in
  ignore (Unix.umask mask);
  0o666 land lnot mask

let write_file ?(fsync = true) path contents =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let tmp =
    try Filename.temp_file ~temp_dir:dir ("." ^ base ^ ".") ".tmp"
    with Sys_error msg -> raise (Sys_error (path ^ ": " ^ msg))
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc contents;
       flush oc;
       if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Unix.chmod tmp (default_perm ());
    (* The crash window the rename protects against: data staged but not
       yet published. *)
    Fault.hit "io.write";
    Sys.rename tmp path
  with
  | Unix.Unix_error (err, _, _) ->
    cleanup ();
    raise (Sys_error (path ^ ": " ^ Unix.error_message err))
  | e ->
    cleanup ();
    raise e

let with_out ?fsync path f =
  let buf = Buffer.create 4096 in
  f buf;
  write_file ?fsync path (Buffer.contents buf)
