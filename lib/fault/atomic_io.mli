(** Crash-safe file writes.

    [write_file path contents] writes to a fresh temp file in [path]'s
    directory, fsyncs, then [rename]s over [path] — so readers of
    [path] see either the old bytes or the new bytes, never a
    truncated mix, no matter where the writer dies.  This is the one
    write primitive behind [Csv.save_file], [--in-place], [--metrics],
    [--trace], checkpoints and [generate] outputs.

    The rename is preceded by the ["io.write"] fault site, so an armed
    plan can kill the write after the data is staged but before it is
    published — the canonical crash the tests inject. *)

(** [write_file path contents] atomically replaces [path].  The temp
    file is removed on any failure.  Raises [Sys_error] on I/O errors
    (OS errors are normalised to [Sys_error]) and [Fault.Injected]
    when the ["io.write"] site is armed.  [fsync] (default true) can
    be disabled for tests on slow filesystems. *)
val write_file : ?fsync:bool -> string -> string -> unit

(** [with_out path f] builds the contents with a formatter-style
    writer: [f] receives a [Buffer.t], and the buffer is then written
    via {!write_file}. *)
val with_out : ?fsync:bool -> string -> (Buffer.t -> unit) -> unit
