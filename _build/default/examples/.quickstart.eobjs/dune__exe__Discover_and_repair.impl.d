examples/discover_and_repair.ml: Array Batch_repair Cfd Datagen Discovery Dq_cfd Dq_core Dq_relation Dq_workload Fmt Implication List Metrics Noise Order_schema Relation String Violation
