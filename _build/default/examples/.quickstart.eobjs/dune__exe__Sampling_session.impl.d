examples/sampling_session.ml: Datagen Dq_core Dq_relation Dq_workload Fmt Framework List Metrics Noise Relation Sampling Stats Tuple
