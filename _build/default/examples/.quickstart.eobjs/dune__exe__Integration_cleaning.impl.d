examples/integration_cleaning.ml: Batch_repair Cfd Cfd_parser Csv Dq_cfd Dq_core Dq_relation Fmt List Relation Tuple Value Violation
