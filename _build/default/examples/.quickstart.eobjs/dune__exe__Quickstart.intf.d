examples/quickstart.mli:
