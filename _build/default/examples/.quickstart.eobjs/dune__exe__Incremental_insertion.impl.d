examples/incremental_insertion.ml: Array Datagen Dq_cfd Dq_core Dq_relation Dq_workload Fmt Inc_repair List Order_schema Relation Tuple Value Violation
