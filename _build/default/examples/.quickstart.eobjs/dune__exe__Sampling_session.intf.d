examples/sampling_session.mli:
