examples/incremental_insertion.mli:
