examples/integration_cleaning.mli:
