examples/quickstart.ml: Array Batch_repair Cfd Cfd_parser Cost Csv Dq_cfd Dq_core Dq_relation Fmt List Relation Satisfiability Tuple Violation
