examples/discover_and_repair.mli:
