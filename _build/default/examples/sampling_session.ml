(* The accuracy guarantee (Section 6) and the full Figure-3 framework loop.

   A dirty database is repaired; a stratified sample of the repair is shown
   to a (simulated) domain expert; the z-test decides whether the estimated
   inaccuracy rate is below epsilon at confidence delta.  If not, the
   expert's corrections flow back and the loop repairs again.

   Run with: dune exec examples/sampling_session.exe *)

open Dq_relation
open Dq_core
open Dq_workload

let () =
  let epsilon = 0.05 and confidence = 0.95 in
  let ds = Datagen.generate (Datagen.default_params ~n_tuples:3_000 ()) in
  let noise = Noise.inject (Noise.default_params ~rate:0.05 ()) ds in
  Fmt.pr "Dirty database: %d tuples, %d dirtied.@.@."
    (Relation.cardinality noise.Noise.dirty)
    (List.length noise.Noise.dirty_tids);

  (* Theorem 6.1: how large must a sample be so that, with probability
     >= delta, at least c inaccurate tuples show up when the true rate is
     epsilon? *)
  List.iter
    (fun c ->
      Fmt.pr "Chernoff sample size for c=%2d (eps=%.2f, delta=%.2f): %d@." c
        epsilon confidence
        (Stats.chernoff_sample_size ~epsilon ~confidence ~c))
    [ 1; 5; 10; 20 ];

  (* The simulated expert inspects a repaired tuple by comparing it with
     the ground truth Dopt and returns the corrected tuple when needed. *)
  let expert t' =
    match Relation.find ds.Datagen.dopt (Tuple.tid t') with
    | Some truth when Tuple.equal_values t' truth -> None
    | Some truth -> Some (Tuple.copy truth)
    | None -> None
  in

  let sampling =
    {
      (Sampling.default_config ~epsilon ~confidence ~sample_size:400 ()) with
      Sampling.strategy = Sampling.By_violations [ 1; 3 ];
      fractions = [| 0.2; 0.3; 0.5 |];
    }
  in
  let outcome =
    Framework.clean ~max_rounds:3 ~sampling
      ~user:(Framework.passive_user expert)
      noise.Noise.dirty ds.Datagen.sigma
  in
  List.iter
    (fun (round : Framework.round_log) ->
      Fmt.pr "@.Round %d (user fixed %d sample tuples):@.%a@."
        round.Framework.round round.Framework.corrections Sampling.pp_report
        round.Framework.report)
    outcome.Framework.rounds;

  let m =
    Metrics.evaluate ~dopt:ds.Datagen.dopt ~dirty:noise.Noise.dirty
      ~repair:outcome.Framework.repair
  in
  Fmt.pr "@.Final repair accepted? %b@." outcome.Framework.accepted;
  Fmt.pr "True quality vs ground truth: %a@." Metrics.pp m
