(* cfdclean: CFD-based data cleaning from the command line.

   Subcommands:
     detect    report CFD violations in a CSV file
     repair    repair a CSV file (BATCHREPAIR or INCREPAIR)
     check     check a CFD file for satisfiability
     sample    repair, then estimate the repair's inaccuracy rate by
               stratified sampling against a ground-truth file
     generate  emit a synthetic order dataset (clean + dirty + CFDs)

   Data is CSV with a header row; constraints use the textual CFD format
   (see the dataqual.cfd documentation or `cfdclean generate`). *)

open Cmdliner
open Dq_relation
open Dq_cfd
open Dq_core
open Dq_workload

let load_sigma schema path =
  match Cfd_parser.parse_file path with
  | Error e -> `Error (false, Fmt.str "%s: %a" path Cfd_parser.pp_error e)
  | Ok tableaus -> (
    match Cfd_parser.resolve schema tableaus with
    | sigma -> `Ok sigma
    | exception Invalid_argument msg -> `Error (false, msg))

let with_inputs data_path cfd_path k =
  match Csv.load_file data_path with
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)
  | rel -> (
    match load_sigma (Relation.schema rel) cfd_path with
    | `Error _ as e -> e
    | `Ok sigma -> k rel sigma)

(* ---- detect ---- *)

let detect data_path cfd_path verbose =
  with_inputs data_path cfd_path @@ fun rel sigma ->
  let counts = Violation.vio_counts rel sigma in
  let dirty = Hashtbl.length counts in
  Fmt.pr "%d tuples, %d clauses: %d violating tuples, vio(D) = %d@."
    (Relation.cardinality rel) (Array.length sigma) dirty
    (Violation.total rel sigma);
  if verbose then
    List.iter (Fmt.pr "  %a@." Violation.pp) (Violation.find_all rel sigma);
  `Ok (if dirty = 0 then 0 else 1)

let detect_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List each violation.")
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Report CFD violations in a CSV file")
    Term.(ret (const detect $ data $ cfds $ verbose))

(* ---- repair ---- *)

type algorithm = Batch | Inc of Inc_repair.ordering

let algorithm_conv =
  let parse = function
    | "batch" -> Ok Batch
    | "inc" | "v-inc" -> Ok (Inc Inc_repair.By_violations)
    | "l-inc" -> Ok (Inc Inc_repair.Linear)
    | "w-inc" -> Ok (Inc Inc_repair.By_weight)
    | s -> Error (`Msg (Fmt.str "unknown algorithm %S" s))
  in
  let print ppf = function
    | Batch -> Fmt.string ppf "batch"
    | Inc Inc_repair.By_violations -> Fmt.string ppf "v-inc"
    | Inc Inc_repair.Linear -> Fmt.string ppf "l-inc"
    | Inc Inc_repair.By_weight -> Fmt.string ppf "w-inc"
  in
  Arg.conv (parse, print)

let repair data_path cfd_path output algorithm =
  with_inputs data_path cfd_path @@ fun rel sigma ->
  if not (Satisfiability.is_satisfiable (Relation.schema rel) sigma) then
    `Error (false, "the CFD set is unsatisfiable; no repair exists")
  else begin
    let repaired =
      match algorithm with
      | Batch ->
        let repaired, stats = Batch_repair.repair rel sigma in
        Fmt.epr "batchrepair: %a@." Batch_repair.pp_stats stats;
        repaired
      | Inc ordering ->
        let repaired, stats = Inc_repair.repair_dirty ~ordering rel sigma in
        Fmt.epr "%s: %a@."
          (Inc_repair.ordering_name ordering)
          Inc_repair.pp_stats stats;
        repaired
    in
    Fmt.epr "repair cost: %.3f; dif: %d cells@."
      (Cost.repair_cost ~original:rel ~repair:repaired)
      (Relation.dif rel repaired);
    (match output with
    | Some path -> Csv.save_file repaired path
    | None -> print_string (Csv.save_string repaired));
    `Ok 0
  end

let repair_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.csv"
          ~doc:"Write the repair here instead of stdout.")
  in
  let algorithm =
    Arg.(
      value & opt algorithm_conv Batch
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"One of batch, v-inc, l-inc, w-inc.")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"Compute a repair satisfying the CFDs")
    Term.(ret (const repair $ data $ cfds $ output $ algorithm))

(* ---- check ---- *)

let check schema_csv cfd_path =
  match Csv.load_file schema_csv with
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)
  | rel -> (
    match load_sigma (Relation.schema rel) cfd_path with
    | `Error _ as e -> e
    | `Ok sigma ->
      if Satisfiability.is_satisfiable (Relation.schema rel) sigma then begin
        Fmt.pr "satisfiable (%d normal-form clauses)@." (Array.length sigma);
        `Ok 0
      end
      else begin
        Fmt.pr "UNSATISFIABLE: no non-empty instance can satisfy these CFDs@.";
        `Ok 1
      end)

let check_cmd =
  let data =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DATA.csv" ~doc:"Any CSV with the target header row.")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a CFD set for satisfiability")
    Term.(ret (const check $ data $ cfds))

(* ---- sample ---- *)

let sample data_path cfd_path truth_path epsilon confidence sample_size =
  with_inputs data_path cfd_path @@ fun rel sigma ->
  match Csv.load_file truth_path with
  | exception Failure msg -> `Error (false, msg)
  | truth ->
    let repaired, _ = Batch_repair.repair rel sigma in
    let oracle t' =
      match Relation.find truth (Tuple.tid t') with
      | Some t -> not (Tuple.equal_values t t')
      | None -> true
    in
    let config = Sampling.default_config ~epsilon ~confidence ~sample_size () in
    let report =
      Sampling.inspect config ~original:rel ~repair:repaired ~sigma ~oracle
    in
    Fmt.pr "%a@." Sampling.pp_report report;
    `Ok (if report.Sampling.accepted then 0 else 1)

let sample_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let truth =
    Arg.(
      required
      & pos 2 (some file) None
      & info [] ~docv:"TRUTH.csv"
          ~doc:"Ground truth standing in for the inspecting user.")
  in
  let epsilon =
    Arg.(value & opt float 0.05 & info [ "epsilon" ] ~doc:"Inaccuracy bound.")
  in
  let confidence =
    Arg.(value & opt float 0.95 & info [ "confidence" ] ~doc:"Confidence level.")
  in
  let size =
    Arg.(value & opt int 200 & info [ "sample-size" ] ~doc:"Tuples to inspect.")
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Repair, then statistically assess the repair's accuracy")
    Term.(ret (const sample $ data $ cfds $ truth $ epsilon $ confidence $ size))

(* ---- generate ---- *)

let generate n rate seed out_prefix =
  let ds = Datagen.generate (Datagen.default_params ~n_tuples:n ~seed ()) in
  let noise = Noise.inject (Noise.default_params ~rate ~seed ()) ds in
  let clean_path = out_prefix ^ "_clean.csv" in
  let dirty_path = out_prefix ^ "_dirty.csv" in
  let cfd_path = out_prefix ^ ".cfd" in
  Csv.save_file ds.Datagen.dopt clean_path;
  Csv.save_file noise.Noise.dirty dirty_path;
  let oc = open_out cfd_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Cfd_parser.to_string ds.Datagen.tableaus));
  Fmt.pr "wrote %s (%d tuples), %s (%d dirtied), %s (%d pattern rows)@."
    clean_path n dirty_path
    (List.length noise.Noise.dirty_tids)
    cfd_path
    (Datagen.pattern_row_count ds);
  `Ok 0

(* ---- discover ---- *)

let discover data_path out min_support min_confidence max_lhs =
  match Csv.load_file data_path with
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)
  | rel ->
    let config =
      Discovery.default_config ~max_lhs_size:max_lhs ~min_support
        ~min_confidence ()
    in
    let d = Discovery.discover ~config rel in
    Fmt.epr "discovered %d embedded FDs and %d constant pattern rows@."
      d.Discovery.n_variable d.Discovery.n_constant;
    let text = Cfd_parser.to_string d.Discovery.tableaus in
    (match out with
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text)
    | None -> print_string text);
    `Ok 0

let discover_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.cfd"
          ~doc:"Write the discovered CFDs here instead of stdout.")
  in
  let support =
    Arg.(
      value & opt int 10
      & info [ "min-support" ] ~doc:"Tuples a constant pattern row must cover.")
  in
  let confidence =
    Arg.(
      value & opt float 1.0
      & info [ "min-confidence" ]
          ~doc:"Fraction of covered tuples that must agree (1.0 = exact).")
  in
  let max_lhs =
    Arg.(
      value & opt int 2
      & info [ "max-lhs" ] ~doc:"Largest LHS attribute set to consider.")
  in
  Cmd.v
    (Cmd.info "discover" ~doc:"Mine CFDs from a (mostly clean) CSV file")
    Term.(ret (const discover $ data $ out $ support $ confidence $ max_lhs))

let generate_cmd =
  let n = Arg.(value & opt int 5_000 & info [ "n" ] ~doc:"Number of tuples.") in
  let rate = Arg.(value & opt float 0.05 & info [ "rate" ] ~doc:"Noise rate.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  let prefix =
    Arg.(value & opt string "orders" & info [ "prefix" ] ~doc:"Output prefix.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic order dataset")
    Term.(ret (const generate $ n $ rate $ seed $ prefix))

let () =
  let doc = "CFD-based data cleaning (Cong et al., VLDB 2007)" in
  let info = Cmd.info "cfdclean" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ detect_cmd; repair_cmd; check_cmd; sample_cmd; discover_cmd; generate_cmd ]))
