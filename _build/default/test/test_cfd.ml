open Dq_relation
open Dq_cfd
open Helpers

let v = Value.of_string

let test_normalize_expands () =
  (* phi1 has 4 rows x 3 RHS attrs = 12 normal-form clauses. *)
  let clauses = Cfd.normalize order_schema phi1 in
  Alcotest.(check int) "12 clauses" 12 (List.length clauses);
  (* phi3 is a plain FD: 1 implicit row x 2 RHS = 2 clauses, all wild. *)
  let fd_clauses = Cfd.normalize order_schema phi3 in
  Alcotest.(check int) "2 clauses" 2 (List.length fd_clauses);
  Alcotest.(check bool) "all embedded FDs" true
    (List.for_all Cfd.is_embedded_fd fd_clauses)

let test_number_assigns_ids () =
  let sigma = fig1_sigma () in
  Array.iteri (fun i c -> Alcotest.(check int) "id = index" i (Cfd.id c)) sigma

let test_unknown_attribute () =
  Alcotest.check_raises "unknown attr"
    (Invalid_argument "Cfd: unknown attribute \"BOGUS\" in schema order")
    (fun () ->
      ignore
        (Cfd.normalize order_schema
           (Cfd.Tableau.fd ~name:"x" ~lhs:[ "BOGUS" ] ~rhs:[ "CT" ])))

let test_arity_mismatch_in_row () =
  let bad =
    Cfd.Tableau.
      {
        name = "bad";
        lhs_attrs = [ "AC" ];
        rhs_attrs = [ "CT" ];
        rows = [ { lhs = [ wild; wild ]; rhs = [ wild ] } ];
      }
  in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Cfd.normalize: pattern row arity mismatch in bad")
    (fun () -> ignore (Cfd.normalize order_schema bad))

let test_duplicate_lhs_rejected () =
  Alcotest.check_raises "dup lhs" (Invalid_argument "Cfd: duplicate LHS attribute")
    (fun () ->
      ignore
        (Cfd.make order_schema ~name:"d"
           ~lhs:[ ("AC", wild); ("AC", wild) ]
           ~rhs:("CT", wild)))

let test_is_constant () =
  let c =
    Cfd.make order_schema ~name:"c"
      ~lhs:[ ("zip", const "10012") ]
      ~rhs:("CT", const "NYC")
  in
  let w =
    Cfd.make order_schema ~name:"w" ~lhs:[ ("zip", wild) ] ~rhs:("CT", wild)
  in
  Alcotest.(check bool) "constant" true (Cfd.is_constant c);
  Alcotest.(check bool) "variable" false (Cfd.is_constant w)

let test_embedded_fd () =
  let c =
    Cfd.make order_schema ~name:"c"
      ~lhs:[ ("zip", const "10012") ]
      ~rhs:("CT", const "NYC")
  in
  let fd = Cfd.embedded_fd c in
  Alcotest.(check bool) "wildcarded" true (Cfd.is_embedded_fd fd);
  Alcotest.(check bool) "same attrs" true (Cfd.same_embedded_fd c fd)

let test_embedded_fds_dedup () =
  let sigma = fig1_sigma () in
  let fds = Cfd.embedded_fds (Array.to_list sigma) in
  (* phi1 contributes 3 (STR,CT,ST), phi2 2 (CT,ST), phi3 2, phi4 1: 8 distinct. *)
  Alcotest.(check int) "8 distinct embedded FDs" 8 (List.length fds);
  Alcotest.(check bool) "all wild" true (List.for_all Cfd.is_embedded_fd fds)

let test_applies_and_keys () =
  let c =
    Cfd.make order_schema ~name:"c"
      ~lhs:[ ("AC", const "212"); ("PN", wild) ]
      ~rhs:("CT", const "NYC")
  in
  let db = fig1_db () in
  let t3 = Relation.find_exn db 2 in
  let t1 = Relation.find_exn db 0 in
  Alcotest.(check bool) "t3 has AC 212" true (Cfd.applies_lhs c t3);
  Alcotest.(check bool) "t1 has AC 215" false (Cfd.applies_lhs c t1);
  Alcotest.(check bool) "t3 CT is PHI, not NYC" false (Cfd.rhs_matches c t3);
  Alcotest.(check (array value)) "lhs key"
    [| v "212"; v "3345677" |]
    (Cfd.lhs_key c t3)

let test_null_lhs_never_applies () =
  let c =
    Cfd.make order_schema ~name:"c" ~lhs:[ ("AC", wild) ] ~rhs:("CT", wild)
  in
  let db = fig1_db () in
  let t = Relation.find_exn db 0 in
  Relation.set_value db t (Dq_relation.Schema.position_exn order_schema "AC") Value.null;
  Alcotest.(check bool) "null fails even wildcards" false (Cfd.applies_lhs c t)

let test_rhs_attr_in_lhs_allowed () =
  (* The paper's tp[A_L]/tp[A_R] case: A on both sides. *)
  let c =
    Cfd.make order_schema ~name:"c"
      ~lhs:[ ("CT", const "NYC") ]
      ~rhs:("CT", const "NYC")
  in
  Alcotest.(check int) "rhs pos" (Dq_relation.Schema.position_exn order_schema "CT") (Cfd.rhs c)

let suite =
  [
    Alcotest.test_case "normalize expands" `Quick test_normalize_expands;
    Alcotest.test_case "number assigns ids" `Quick test_number_assigns_ids;
    Alcotest.test_case "unknown attribute" `Quick test_unknown_attribute;
    Alcotest.test_case "row arity mismatch" `Quick test_arity_mismatch_in_row;
    Alcotest.test_case "duplicate LHS" `Quick test_duplicate_lhs_rejected;
    Alcotest.test_case "is_constant" `Quick test_is_constant;
    Alcotest.test_case "embedded FD" `Quick test_embedded_fd;
    Alcotest.test_case "embedded FDs dedup" `Quick test_embedded_fds_dedup;
    Alcotest.test_case "applies/keys" `Quick test_applies_and_keys;
    Alcotest.test_case "null LHS never applies" `Quick test_null_lhs_never_applies;
    Alcotest.test_case "RHS attr may appear in LHS" `Quick test_rhs_attr_in_lhs_allowed;
  ]
