test/test_implication.ml: Alcotest Array Cfd Dq_cfd Dq_core Dq_relation Implication List Pattern Printf Relation Schema Value Violation
