test/test_tuple.ml: Alcotest Array Dq_relation Helpers List Tuple Value
