test/test_relation.ml: Alcotest Dq_relation List Relation Schema Tuple Value
