test/test_vec.ml: Alcotest Dq_relation Int List Option QCheck QCheck_alcotest Vec
