test/test_noise.ml: Alcotest Array Cfd Datagen Dq_cfd Dq_core Dq_relation Dq_workload Hashtbl List Noise Printf Random Relation String Tuple Value Violation
