test/test_framework.ml: Alcotest Datagen Dq_cfd Dq_core Dq_relation Dq_workload Framework Inc_repair List Noise Relation Sampling Tuple
