test/test_tuple_resolve.ml: Alcotest Array Batch_repair Dq_cfd Dq_core Dq_relation Helpers List Printf Relation Schema Tuple Tuple_resolve Value Violation
