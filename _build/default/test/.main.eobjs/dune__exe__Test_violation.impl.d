test/test_violation.ml: Alcotest Array Cfd Dq_cfd Dq_relation Hashtbl Helpers Int List Pattern Printf Relation Schema Tuple Value Violation
