test/test_heap.ml: Alcotest Dq_relation Float Heap List Option QCheck QCheck_alcotest
