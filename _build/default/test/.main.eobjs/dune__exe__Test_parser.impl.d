test/test_parser.ml: Alcotest Array Cfd Cfd_parser Dq_cfd Dq_relation Helpers List Pattern Printf Value
