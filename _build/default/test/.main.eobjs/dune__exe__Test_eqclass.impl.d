test/test_eqclass.ml: Alcotest Dq_core Dq_relation Eqclass Fun List Printf QCheck QCheck_alcotest Value
