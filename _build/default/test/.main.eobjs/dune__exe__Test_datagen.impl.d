test/test_datagen.ml: Alcotest Array Cfd Datagen Dq_cfd Dq_core Dq_relation Dq_workload Entities Hashtbl List Order_schema Relation Schema String Violation
