test/test_satisfiability.ml: Alcotest Array Cfd Dq_cfd Dq_relation Helpers Pattern Relation Satisfiability Schema Value
