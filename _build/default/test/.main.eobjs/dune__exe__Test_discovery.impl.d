test/test_discovery.ml: Alcotest Cfd Datagen Discovery Dq_cfd Dq_core Dq_relation Dq_workload List Noise Pattern Relation Schema Value Violation
