test/test_properties.ml: Batch_repair Cfd Dq_cfd Dq_core Dq_relation Inc_repair List Pattern Printf QCheck QCheck_alcotest Relation Satisfiability Schema Tuple Value Violation
