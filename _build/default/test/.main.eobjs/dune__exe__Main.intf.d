test/main.mli:
