test/test_stats.ml: Alcotest Dq_core Float List Printf QCheck QCheck_alcotest Stats
