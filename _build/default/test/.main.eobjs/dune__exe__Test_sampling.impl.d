test/test_sampling.ml: Alcotest Array Datagen Dq_core Dq_relation Dq_workload Float List Noise Order_schema Printf Relation Result Sampling Tuple Value
