test/test_depgraph.ml: Alcotest Array Cfd Depgraph Dq_cfd Dq_core Dq_relation Helpers Int List Option QCheck QCheck_alcotest Schema String
