test/test_inc_repair.ml: Alcotest Array Batch_repair Dq_cfd Dq_core Dq_relation Helpers Inc_repair List Relation Schema Tuple Value Violation
