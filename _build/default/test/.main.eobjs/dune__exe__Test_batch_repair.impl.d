test/test_batch_repair.ml: Alcotest Array Batch_repair Cfd Dq_cfd Dq_core Dq_relation Helpers Pattern Relation Schema Tuple Value Violation
