test/test_cfd.ml: Alcotest Array Cfd Dq_cfd Dq_relation Helpers List Relation Value
