test/test_schema.ml: Alcotest Array Dq_relation Schema
