test/test_csv.ml: Alcotest Csv Dq_relation Filename Fun QCheck QCheck_alcotest Relation Sys Tuple Value
