test/test_pattern.ml: Alcotest Dq_cfd Dq_relation Pattern QCheck QCheck_alcotest Value
