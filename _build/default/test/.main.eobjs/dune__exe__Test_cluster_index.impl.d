test/test_cluster_index.ml: Alcotest Cluster_index Dq_core Dq_relation List Option QCheck QCheck_alcotest Relation Schema String Value
