test/test_reservoir.ml: Alcotest Array Dq_core Fun Int List Printf QCheck QCheck_alcotest Reservoir
