test/test_lhs_index.ml: Alcotest Array Batch_repair Cfd Dq_cfd Dq_core Dq_relation Helpers Lhs_index List Pattern Schema String Tuple Value
