test/test_ind.ml: Alcotest Cfd Database Dq_cfd Dq_core Dq_relation Ind Ind_repair List Pattern Relation Schema Tuple Value
