test/test_cost.ml: Alcotest Cost Dq_core Dq_relation Helpers List QCheck QCheck_alcotest Relation String Tuple Value
