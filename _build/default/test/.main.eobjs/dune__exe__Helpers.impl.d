test/helpers.ml: Alcotest Array Cfd Dq_cfd Dq_relation List Pattern Relation Schema Value
