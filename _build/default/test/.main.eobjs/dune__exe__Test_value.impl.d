test/test_value.ml: Alcotest Dq_relation Helpers List Printf Value
