test/test_workload.ml: Alcotest Batch_repair Datagen Dq_cfd Dq_core Dq_relation Dq_workload Format Hashtbl Inc_repair List Metrics Noise Order_schema Printf Relation Satisfiability Violation
