open Dq_relation

let test_basic_order () =
  let h = Heap.create () in
  Heap.add h ~priority:3.0 "c";
  Heap.add h ~priority:1.0 "a";
  Heap.add h ~priority:2.0 "b";
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1.0, "a")) (Heap.peek_min h);
  Alcotest.(check (option (pair (float 0.) string))) "pop a" (Some (1.0, "a")) (Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.) string))) "pop b" (Some (2.0, "b")) (Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.) string))) "pop c" (Some (3.0, "c")) (Heap.pop_min h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check (option (pair (float 0.) int))) "pop empty" None (Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.) int))) "peek empty" None (Heap.peek_min h)

let test_clear () =
  let h = Heap.create () in
  Heap.add h ~priority:1.0 1;
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

let test_negative_and_duplicate_priorities () =
  let h = Heap.create () in
  List.iter (fun (p, x) -> Heap.add h ~priority:p x)
    [ (0.0, 1); (-1.0, 2); (0.0, 3); (-1.0, 4) ];
  let p1, _ = Option.get (Heap.pop_min h) in
  let p2, _ = Option.get (Heap.pop_min h) in
  let p3, _ = Option.get (Heap.pop_min h) in
  let p4, _ = Option.get (Heap.pop_min h) in
  Alcotest.(check (list (float 0.))) "priority order" [ -1.0; -1.0; 0.0; 0.0 ]
    [ p1; p2; p3; p4 ]

let prop_heap_sorts =
  QCheck.Test.make ~name:"popping yields non-decreasing priorities" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.add h ~priority:p i) priorities;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      List.length out = List.length priorities
      && out = List.sort Float.compare priorities)

let suite =
  [
    Alcotest.test_case "basic ordering" `Quick test_basic_order;
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "duplicates and negatives" `Quick
      test_negative_and_duplicate_priorities;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
  ]
