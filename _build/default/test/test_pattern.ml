open Dq_relation
open Dq_cfd

let v = Value.of_string

let test_matches () =
  Alcotest.(check bool) "const matches equal" true
    (Pattern.matches (v "NYC") (Pattern.const (v "NYC")));
  Alcotest.(check bool) "const rejects different" false
    (Pattern.matches (v "PHI") (Pattern.const (v "NYC")));
  Alcotest.(check bool) "wild matches constant" true
    (Pattern.matches (v "anything") Pattern.Wild)

let test_null_matches_nothing () =
  (* Section 3.1 remark 2: CFDs only apply to tuples matching precisely. *)
  Alcotest.(check bool) "null vs wild" false (Pattern.matches Value.null Pattern.Wild);
  Alcotest.(check bool) "null vs const" false
    (Pattern.matches Value.null (Pattern.const (v "x")))

let test_const_rejects_null () =
  Alcotest.check_raises "null pattern"
    (Invalid_argument "Pattern.const: null has no place in a pattern tuple")
    (fun () -> ignore (Pattern.const Value.null))

let test_matches_row () =
  let row = [| Pattern.const (v "212"); Pattern.Wild |] in
  Alcotest.(check bool) "row match" true
    (Pattern.matches_row [| v "212"; v "5551234" |] row);
  Alcotest.(check bool) "row mismatch" false
    (Pattern.matches_row [| v "610"; v "5551234" |] row);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Pattern.matches_row: length mismatch") (fun () ->
      ignore (Pattern.matches_row [| v "212" |] row))

let test_subsumes () =
  let c = Pattern.const (v "a") in
  Alcotest.(check bool) "const <= wild" true (Pattern.subsumes c Pattern.Wild);
  Alcotest.(check bool) "wild <= wild" true (Pattern.subsumes Pattern.Wild Pattern.Wild);
  Alcotest.(check bool) "wild not <= const" false (Pattern.subsumes Pattern.Wild c);
  Alcotest.(check bool) "const <= same const" true (Pattern.subsumes c c)

let test_compare_and_equal () =
  let a = Pattern.const (v "a") and b = Pattern.const (v "b") in
  Alcotest.(check bool) "equal" true (Pattern.equal a a);
  Alcotest.(check bool) "not equal" false (Pattern.equal a b);
  Alcotest.(check bool) "wild < const" true (Pattern.compare Pattern.Wild a < 0);
  Alcotest.(check int) "const order" (Value.compare (v "a") (v "b"))
    (Pattern.compare a b)

let test_to_string () =
  Alcotest.(check string) "wild" "_" (Pattern.to_string Pattern.Wild);
  Alcotest.(check string) "const" "NYC" (Pattern.to_string (Pattern.const (v "NYC")))

let prop_match_consistent_with_subsume =
  let pat_gen =
    QCheck.Gen.(
      oneof
        [ return Pattern.Wild;
          map (fun s -> Pattern.const (Value.string ("c" ^ s))) (string_size (1 -- 3)) ])
  in
  QCheck.Test.make ~name:"subsumes implies match propagation" ~count:200
    (QCheck.make QCheck.Gen.(pair pat_gen (string_size (1 -- 3))))
    (fun (p, s) ->
      let value = Value.string ("c" ^ s) in
      (* if v matches p and p subsumes q then v matches q, for q = Wild *)
      (not (Pattern.matches value p)) || Pattern.matches value Pattern.Wild)

let suite =
  [
    Alcotest.test_case "matches" `Quick test_matches;
    Alcotest.test_case "null matches nothing" `Quick test_null_matches_nothing;
    Alcotest.test_case "const rejects null" `Quick test_const_rejects_null;
    Alcotest.test_case "matches_row" `Quick test_matches_row;
    Alcotest.test_case "subsumes" `Quick test_subsumes;
    Alcotest.test_case "compare/equal" `Quick test_compare_and_equal;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest prop_match_consistent_with_subsume;
  ]
