open Dq_relation
open Dq_cfd
open Dq_core

let schema = Schema.make ~name:"r" [ "A"; "B"; "C" ]

let w = Pattern.Wild

let c s = Pattern.const (Value.string s)

let mk ?(name = "psi") lhs rhs = Cfd.make schema ~name ~lhs ~rhs

let fd_ab = mk [ ("A", w) ] ("B", w)

let test_self_implication () =
  Alcotest.(check bool) "phi implies phi" true
    (Implication.implies schema [| fd_ab |] fd_ab)

let test_specialisation_implied () =
  (* A -> B implies (A=a -> B) as a variable clause, and a constant row is
     implied by a more general constant row. *)
  let special = mk [ ("A", c "a") ] ("B", w) in
  Alcotest.(check bool) "conditional instance implied" true
    (Implication.implies schema [| fd_ab |] special);
  let general_row = mk [ ("A", c "a") ] ("B", c "b") in
  let longer_row = Cfd.make schema ~name:"phi" ~lhs:[ ("A", c "a"); ("C", c "x") ] ~rhs:("B", c "b") in
  Alcotest.(check bool) "syntactic subsumption misses different lhs" false
    (Implication.subsumes general_row longer_row);
  Alcotest.(check bool) "semantically implied" true
    (Implication.implies schema [| general_row |] longer_row)

let test_not_implied () =
  let fd_ba = mk [ ("B", w) ] ("A", w) in
  Alcotest.(check bool) "A->B does not imply B->A" false
    (Implication.implies schema [| fd_ab |] fd_ba);
  match Implication.counterexample schema [| fd_ab |] fd_ba with
  | Some (t1, t2) ->
    (* the witness must itself satisfy Σ and violate φ *)
    let rel = Relation.create schema in
    ignore (Relation.insert rel t1);
    ignore (Relation.insert rel t2);
    Alcotest.(check bool) "witness satisfies sigma" true
      (Violation.satisfies rel (Cfd.number [ fd_ab ]));
    Alcotest.(check bool) "witness violates phi" false
      (Violation.satisfies rel (Cfd.number [ fd_ba ]))
  | None -> Alcotest.fail "expected a counterexample"

let test_transitivity () =
  let fd_bc = mk [ ("B", w) ] ("C", w) in
  let fd_ac = mk [ ("A", w) ] ("C", w) in
  Alcotest.(check bool) "A->B, B->C imply A->C" true
    (Implication.implies schema [| fd_ab; fd_bc |] fd_ac);
  Alcotest.(check bool) "A->B alone does not" false
    (Implication.implies schema [| fd_ab |] fd_ac)

let test_constant_chaining () =
  (* (A=a -> B=b) and (B=b -> C=c) imply (A=a -> C=c). *)
  let r1 = mk [ ("A", c "a") ] ("B", c "b") in
  let r2 = mk [ ("B", c "b") ] ("C", c "c") in
  let goal = mk [ ("A", c "a") ] ("C", c "c") in
  Alcotest.(check bool) "constant chaining" true
    (Implication.implies schema [| r1; r2 |] goal);
  Alcotest.(check bool) "not from r1 alone" false
    (Implication.implies schema [| r1 |] goal)

let test_unsatisfiable_implies_everything () =
  let contra1 = mk [ ("A", w) ] ("B", c "x") in
  let contra2 = mk [ ("A", w) ] ("B", c "y") in
  let anything = mk [ ("C", w) ] ("A", c "q") in
  Alcotest.(check bool) "vacuous implication" true
    (Implication.implies schema [| contra1; contra2 |] anything)

let test_subsumes () =
  let general = mk [ ("A", w) ] ("B", c "b") in
  let specific = mk [ ("A", c "a") ] ("B", c "b") in
  Alcotest.(check bool) "general subsumes specific" true
    (Implication.subsumes general specific);
  Alcotest.(check bool) "specific does not subsume general" false
    (Implication.subsumes specific general);
  Alcotest.(check bool) "different rhs pattern" false
    (Implication.subsumes general (mk [ ("A", w) ] ("B", w)))

let test_minimize () =
  let fd_bc = mk [ ("B", w) ] ("C", w) in
  let fd_ac = mk [ ("A", w) ] ("C", w) in
  let redundant_row = mk [ ("A", c "a") ] ("B", w) in
  let sigma = Cfd.number [ fd_ab; fd_bc; fd_ac; redundant_row ] in
  let cover = Implication.minimize schema sigma in
  (* fd_ac follows from fd_ab + fd_bc; the conditional row from fd_ab. *)
  Alcotest.(check int) "two clauses survive" 2 (Array.length cover);
  (* the cover still implies what was dropped *)
  Alcotest.(check bool) "cover implies dropped fd" true
    (Implication.implies schema cover fd_ac)

let test_budget () =
  let wide = Schema.make ~name:"wide" (List.init 12 (fun i -> Printf.sprintf "A%d" i)) in
  let clauses =
    List.init 11 (fun i ->
        Cfd.make wide
          ~lhs:[ (Printf.sprintf "A%d" i, Pattern.Wild) ]
          ~rhs:(Printf.sprintf "A%d" (i + 1), Pattern.Wild))
  in
  let goal =
    Cfd.make wide ~lhs:[ ("A11", Pattern.Wild) ] ~rhs:("A0", Pattern.Wild)
  in
  Alcotest.check_raises "tiny budget exhausts" Implication.Budget_exceeded
    (fun () ->
      ignore
        (Implication.implies ~node_budget:10 wide (Array.of_list clauses) goal))

let suite =
  [
    Alcotest.test_case "self implication" `Quick test_self_implication;
    Alcotest.test_case "specialisation implied" `Quick test_specialisation_implied;
    Alcotest.test_case "non-implication with witness" `Quick test_not_implied;
    Alcotest.test_case "FD transitivity" `Quick test_transitivity;
    Alcotest.test_case "constant chaining" `Quick test_constant_chaining;
    Alcotest.test_case "unsatisfiable implies everything" `Quick
      test_unsatisfiable_implies_everything;
    Alcotest.test_case "syntactic subsumption" `Quick test_subsumes;
    Alcotest.test_case "minimize" `Quick test_minimize;
    Alcotest.test_case "budget" `Quick test_budget;
  ]
