open Dq_relation
open Dq_cfd
open Dq_core

(* A two-relation world: orders reference items by id. *)
let item_schema = Schema.make ~name:"item" [ "id"; "iname"; "price" ]

let order_schema = Schema.make ~name:"ord" [ "oid"; "item_id"; "qty" ]

let v = Value.of_string

let build ~items ~orders =
  let db = Database.create () in
  let item_rel = Relation.create item_schema in
  List.iter
    (fun (id, n, p) -> ignore (Relation.insert item_rel [| v id; v n; v p |]))
    items;
  let order_rel = Relation.create order_schema in
  List.iter
    (fun (o, i, q) -> ignore (Relation.insert order_rel [| v o; v i; v q |]))
    orders;
  Database.add db item_rel;
  Database.add db order_rel;
  db

let fk =
  Ind.make ~name:"fk" ~lhs:(order_schema, [ "item_id" ]) ~rhs:(item_schema, [ "id" ]) ()

let test_database_basics () =
  let db = build ~items:[ ("a1", "Pen", "2") ] ~orders:[] in
  Alcotest.(check (list string)) "names in order" [ "item"; "ord" ] (Database.names db);
  Alcotest.(check bool) "mem" true (Database.mem db "item");
  Alcotest.(check bool) "absent" false (Database.mem db "nope");
  Alcotest.(check int) "total cardinality" 1 (Database.total_cardinality db);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Database.add: relation \"item\" already present")
    (fun () -> Database.add db (Relation.create item_schema));
  let db2 = Database.copy db in
  let t = Relation.find_exn (Database.find_exn db2 "item") 0 in
  Relation.set_value (Database.find_exn db2 "item") t 1 (v "Mutated");
  Alcotest.(check bool) "deep copy" false
    (Tuple.equal_values t (Relation.find_exn (Database.find_exn db "item") 0))

let test_ind_validation () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Ind.make: LHS and RHS attribute lists differ in length")
    (fun () ->
      ignore
        (Ind.make ~lhs:(order_schema, [ "item_id"; "qty" ])
           ~rhs:(item_schema, [ "id" ]) ()));
  Alcotest.check_raises "unknown attribute"
    (Invalid_argument "Ind.make: unknown attribute \"bogus\" in ord") (fun () ->
      ignore (Ind.make ~lhs:(order_schema, [ "bogus" ]) ~rhs:(item_schema, [ "id" ]) ()))

let test_violation_detection () =
  let db =
    build
      ~items:[ ("a1", "Pen", "2"); ("a2", "Ink", "5") ]
      ~orders:[ ("o1", "a1", "3"); ("o2", "a9", "1"); ("o3", "a2", "2") ]
  in
  Alcotest.(check (list int)) "dangling o2" [ 1 ] (Ind.violations db fk);
  Alcotest.(check bool) "satisfies false" false (Ind.satisfies db [ fk ]);
  (* nulls are exempt *)
  let orders = Database.find_exn db "ord" in
  Relation.set_value orders (Relation.find_exn orders 1) 1 Value.null;
  Alcotest.(check (list int)) "null reference exempt" [] (Ind.violations db fk)

let test_repair_redirects_typo () =
  (* "a1x" is one edit from the real key "a1": redirect beats insertion. *)
  let db =
    build
      ~items:[ ("a1", "Pen", "2"); ("b7", "Ink", "5") ]
      ~orders:[ ("o1", "a1x", "3") ]
  in
  let repaired, stats = Ind_repair.repair db ~cfds:[] ~inds:[ fk ] in
  Alcotest.(check bool) "inds satisfied" true stats.Ind_repair.inds_satisfied;
  Alcotest.(check int) "no insertion" 0 stats.Ind_repair.tuples_inserted;
  let o = Relation.find_exn (Database.find_exn repaired "ord") 0 in
  Alcotest.(check bool) "redirected to a1" true
    (Value.equal (Tuple.get o 1) (v "a1"))

let test_repair_inserts_for_distant_key () =
  (* No existing key is close: inserting a stub item is cheaper. *)
  let db =
    build
      ~items:[ ("a1", "Pen", "2") ]
      ~orders:[ ("o1", "zzzzzzzzzz", "3") ]
  in
  let config = Ind_repair.default_config ~insertion_cost_per_null:0.3 () in
  let repaired, stats = Ind_repair.repair ~config db ~cfds:[] ~inds:[ fk ] in
  Alcotest.(check bool) "inds satisfied" true stats.Ind_repair.inds_satisfied;
  Alcotest.(check int) "one insertion" 1 stats.Ind_repair.tuples_inserted;
  let items = Database.find_exn repaired "item" in
  Alcotest.(check int) "item table grew" 2 (Relation.cardinality items);
  (* the stub carries the key and nulls elsewhere *)
  let stub =
    Relation.fold
      (fun acc t -> if Value.equal (Tuple.get t 0) (v "zzzzzzzzzz") then Some t else acc)
      None items
  in
  match stub with
  | None -> Alcotest.fail "stub not found"
  | Some t ->
    Alcotest.(check bool) "null name" true (Value.is_null (Tuple.get t 1));
    Alcotest.(check bool) "null price" true (Value.is_null (Tuple.get t 2))

let test_combined_cfd_and_ind () =
  (* Orders carry a redundant price column governed by a CFD keyed on
     item_id; one order has a dangling reference AND a wrong price. *)
  let schema = Schema.make ~name:"sale" [ "sid"; "item_id"; "price" ] in
  let sale = Relation.create schema in
  List.iter
    (fun (s, i, p) -> ignore (Relation.insert sale [| v s; v i; v p |]))
    [ ("s1", "a1", "2"); ("s2", "a1", "9"); ("s3", "a1x", "2") ]
    (* s2 violates the CFD (a1 || 2); s3 dangles *);
  let items = Relation.create item_schema in
  ignore (Relation.insert items [| v "a1"; v "Pen"; v "2" |]);
  let db = Database.create () in
  Database.add db items;
  Database.add db sale;
  let sigma =
    Cfd.number
      [
        Cfd.make schema ~name:"price_rule"
          ~lhs:[ ("item_id", Pattern.const (v "a1")) ]
          ~rhs:("price", Pattern.const (v "2"));
      ]
  in
  let ind =
    Ind.make ~name:"fk" ~lhs:(schema, [ "item_id" ]) ~rhs:(item_schema, [ "id" ]) ()
  in
  let repaired, stats =
    Ind_repair.repair db ~cfds:[ ("sale", sigma) ] ~inds:[ ind ]
  in
  Alcotest.(check bool) "cfds satisfied" true stats.Ind_repair.cfds_satisfied;
  Alcotest.(check bool) "inds satisfied" true stats.Ind_repair.inds_satisfied;
  let sale' = Database.find_exn repaired "sale" in
  Alcotest.(check bool) "price fixed" true
    (Value.equal (Tuple.get (Relation.find_exn sale' 1) 2) (v "2"));
  Alcotest.(check bool) "reference fixed" true
    (Value.equal (Tuple.get (Relation.find_exn sale' 2) 1) (v "a1"))

let test_clean_database_untouched () =
  let db =
    build ~items:[ ("a1", "Pen", "2") ] ~orders:[ ("o1", "a1", "3") ]
  in
  let repaired, stats = Ind_repair.repair db ~cfds:[] ~inds:[ fk ] in
  Alcotest.(check int) "nothing modified" 0 stats.Ind_repair.cells_modified;
  Alcotest.(check int) "nothing inserted" 0 stats.Ind_repair.tuples_inserted;
  Alcotest.(check int) "identical orders" 0
    (Relation.dif (Database.find_exn db "ord") (Database.find_exn repaired "ord"))

let test_unknown_relation_rejected () =
  let db = build ~items:[] ~orders:[] in
  ignore db;
  let db = build ~items:[ ("a1", "Pen", "2") ] ~orders:[] in
  Alcotest.check_raises "unknown cfd relation"
    (Invalid_argument "Ind_repair.repair: unknown relation \"ghost\" in cfds")
    (fun () ->
      ignore (Ind_repair.repair db ~cfds:[ ("ghost", [||]) ] ~inds:[]))

let suite =
  [
    Alcotest.test_case "database basics" `Quick test_database_basics;
    Alcotest.test_case "IND validation" `Quick test_ind_validation;
    Alcotest.test_case "violation detection" `Quick test_violation_detection;
    Alcotest.test_case "repair redirects typos" `Quick test_repair_redirects_typo;
    Alcotest.test_case "repair inserts stubs" `Quick
      test_repair_inserts_for_distant_key;
    Alcotest.test_case "combined CFD + IND repair" `Quick test_combined_cfd_and_ind;
    Alcotest.test_case "clean database untouched" `Quick test_clean_database_untouched;
    Alcotest.test_case "unknown relation rejected" `Quick
      test_unknown_relation_rejected;
  ]
