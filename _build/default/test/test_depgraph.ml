open Dq_relation
open Dq_cfd
open Dq_core
open Helpers

let test_scc_dag () =
  (* 0 -> 1 -> 2, no cycles: three components in topological order. *)
  let comp = Depgraph.scc ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "0 before 1" true (comp.(0) < comp.(1));
  Alcotest.(check bool) "1 before 2" true (comp.(1) < comp.(2))

let test_scc_cycle () =
  (* 0 <-> 1 form one component; 2 downstream. *)
  let comp = Depgraph.scc ~n:3 ~edges:[ (0, 1); (1, 0); (0, 2) ] in
  Alcotest.(check int) "cycle collapsed" comp.(0) comp.(1);
  Alcotest.(check bool) "2 after the cycle" true (comp.(2) > comp.(0))

let test_scc_disconnected () =
  let comp = Depgraph.scc ~n:4 ~edges:[] in
  Alcotest.(check int) "4 isolated components" 4
    (List.length (List.sort_uniq Int.compare (Array.to_list comp)))

let test_scc_self_loop () =
  let comp = Depgraph.scc ~n:2 ~edges:[ (0, 0); (0, 1) ] in
  Alcotest.(check bool) "self loop ok" true (comp.(0) < comp.(1))

let test_fig1_strata () =
  (* phi2: zip -> CT and phi4: CT,STR -> zip make zip and CT cyclic, so
     every clause of phi2 and phi4 shares a stratum. *)
  let sigma = fig1_sigma () in
  let strata = Depgraph.strata order_schema sigma in
  let stratum_of name rhs_attr =
    let found = ref None in
    Array.iteri
      (fun cid c ->
        if
          String.equal (Cfd.name c) name
          && Cfd.rhs c = Schema.position_exn order_schema rhs_attr
        then found := Some strata.(cid))
      sigma;
    Option.get !found
  in
  Alcotest.(check int) "phi2 CT and phi4 zip share a stratum"
    (stratum_of "phi2" "CT") (stratum_of "phi4" "zip");
  (* phi3's RHS name depends on nothing downstream of the cycle. *)
  Alcotest.(check bool) "strata assigned to all clauses" true
    (Array.length strata = Array.length sigma)

let prop_scc_respects_edges =
  QCheck.Test.make ~name:"edges never point to lower components" ~count:200
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let comp = Depgraph.scc ~n:10 ~edges in
      List.for_all (fun (u, v) -> comp.(u) <= comp.(v)) edges)

let prop_scc_mutual_reachability =
  (* Nodes on a generated cycle end up in one component. *)
  QCheck.Test.make ~name:"cycles collapse" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 2 6) (int_bound 9))
    (fun nodes ->
      let distinct = List.sort_uniq Int.compare nodes in
      QCheck.assume (List.length distinct >= 2);
      let cycle_edges =
        let arr = Array.of_list distinct in
        Array.to_list
          (Array.mapi
             (fun i x -> (x, arr.((i + 1) mod Array.length arr)))
             arr)
      in
      let comp = Depgraph.scc ~n:10 ~edges:cycle_edges in
      List.for_all (fun x -> comp.(x) = comp.(List.hd distinct)) distinct)

let suite =
  [
    Alcotest.test_case "DAG order" `Quick test_scc_dag;
    Alcotest.test_case "cycle collapsed" `Quick test_scc_cycle;
    Alcotest.test_case "disconnected nodes" `Quick test_scc_disconnected;
    Alcotest.test_case "self loop" `Quick test_scc_self_loop;
    Alcotest.test_case "fig1 strata" `Quick test_fig1_strata;
    QCheck_alcotest.to_alcotest prop_scc_respects_edges;
    QCheck_alcotest.to_alcotest prop_scc_mutual_reachability;
  ]
