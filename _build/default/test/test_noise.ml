open Dq_relation
open Dq_cfd
open Dq_workload

let dataset () =
  Datagen.generate
    {
      Datagen.n_tuples = 500;
      n_cities = 10;
      n_streets_per_city = 4;
      n_items = 40;
      n_customers = 120;
      tableau_coverage = 0.8;
      seed = 21;
    }

let test_typo_properties () =
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun s ->
      for _ = 1 to 20 do
        let t = Noise.typo rng s in
        Alcotest.(check bool) "differs from input" false (String.equal t s);
        Alcotest.(check bool) "non-empty" true (String.length t > 0);
        Alcotest.(check bool) "DL-close (<= 6 edits + slack)" true
          (Dq_core.Cost.dl_distance s t <= 7)
      done)
    [ "Walnut"; "19014"; "x"; ""; "NYC" ]

let test_rate_zero_and_one () =
  let ds = dataset () in
  let zero = Noise.inject (Noise.default_params ~rate:0.0 ()) ds in
  Alcotest.(check int) "rate 0 dirties nothing" 0
    (List.length zero.Noise.dirty_tids);
  let all = Noise.inject (Noise.default_params ~rate:1.0 ()) ds in
  Alcotest.(check bool) "rate 1 dirties most tuples" true
    (List.length all.Noise.dirty_tids > 400)

let test_rate_out_of_range () =
  let ds = dataset () in
  Alcotest.check_raises "rate 2" (Invalid_argument "Noise.inject: rate must be in [0,1]")
    (fun () -> ignore (Noise.inject (Noise.default_params ~rate:2.0 ()) ds));
  Alcotest.check_raises "max_attrs 0"
    (Invalid_argument "Noise.inject: max_attrs must be >= 1") (fun () ->
      ignore
        (Noise.inject { (Noise.default_params ()) with Noise.max_attrs = 0 } ds))

let test_every_dirty_tuple_violates () =
  let ds = dataset () in
  List.iter
    (fun share ->
      let info =
        Noise.inject (Noise.default_params ~rate:0.08 ~constant_share:share ()) ds
      in
      let counts = Violation.vio_counts info.Noise.dirty ds.Datagen.sigma in
      List.iter
        (fun tid ->
          Alcotest.(check bool)
            (Printf.sprintf "share %.1f: tuple %d violates" share tid)
            true (Hashtbl.mem counts tid))
        info.Noise.dirty_tids)
    [ 0.0; 0.5; 1.0 ]

let test_dirtied_cells_really_differ () =
  let ds = dataset () in
  let info = Noise.inject (Noise.default_params ~rate:0.08 ()) ds in
  List.iter
    (fun (tid, attr) ->
      let d = Tuple.get (Relation.find_exn info.Noise.dirty tid) attr in
      let o = Tuple.get (Relation.find_exn ds.Datagen.dopt tid) attr in
      Alcotest.(check bool) "cell really changed" false (Value.equal d o);
      Alcotest.(check bool) "no nulls injected" false (Value.is_null d))
    info.Noise.dirtied_cells

let test_weight_model () =
  let ds = dataset () in
  let info = Noise.inject (Noise.default_params ~rate:0.08 ()) ds in
  let dirtied = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace dirtied c ()) info.Noise.dirtied_cells;
  Relation.iter
    (fun t ->
      for attr = 0 to Tuple.arity t - 1 do
        let w = Tuple.weight t attr in
        if Hashtbl.mem dirtied (Tuple.tid t, attr) then
          Alcotest.(check bool) "dirty cell weight <= a" true (w <= 0.6)
        else Alcotest.(check bool) "clean cell weight >= b" true (w >= 0.5)
      done)
    info.Noise.dirty

let test_unweighted_mode () =
  let ds = dataset () in
  let info =
    Noise.inject { (Noise.default_params ~rate:0.05 ()) with Noise.weighted = false } ds
  in
  Relation.iter
    (fun t ->
      for attr = 0 to Tuple.arity t - 1 do
        Alcotest.(check (float 1e-9)) "weight 1" 1.0 (Tuple.weight t attr)
      done)
    info.Noise.dirty

let test_constant_share_targets () =
  let ds = dataset () in
  (* With share 1.0, dirty tuples must each violate some constant clause;
     with share 0.0, most should violate a wildcard clause (a constant
     violation may still arise as collateral). *)
  let info = Noise.inject (Noise.default_params ~rate:0.08 ~constant_share:1.0 ()) ds in
  let const_clauses =
    Array.to_list ds.Datagen.sigma |> List.filter Cfd.is_constant
  in
  List.iter
    (fun tid ->
      let t = Relation.find_exn info.Noise.dirty tid in
      Alcotest.(check bool) "violates a constant clause" true
        (List.exists (fun c -> Violation.violates_constant c t) const_clauses))
    info.Noise.dirty_tids

let suite =
  [
    Alcotest.test_case "typo properties" `Quick test_typo_properties;
    Alcotest.test_case "rate extremes" `Quick test_rate_zero_and_one;
    Alcotest.test_case "parameter validation" `Quick test_rate_out_of_range;
    Alcotest.test_case "every dirty tuple violates" `Quick
      test_every_dirty_tuple_violates;
    Alcotest.test_case "dirtied cells differ" `Quick test_dirtied_cells_really_differ;
    Alcotest.test_case "weight model" `Quick test_weight_model;
    Alcotest.test_case "unweighted mode" `Quick test_unweighted_mode;
    Alcotest.test_case "constant share targets" `Quick test_constant_share_targets;
  ]
