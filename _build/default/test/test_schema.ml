open Dq_relation

let test_make_and_lookup () =
  let s = Schema.make ~name:"r" [ "A"; "B"; "C" ] in
  Alcotest.(check string) "name" "r" (Schema.name s);
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check string) "attribute 1" "B" (Schema.attribute s 1);
  Alcotest.(check (option int)) "position B" (Some 1) (Schema.position s "B");
  Alcotest.(check (option int)) "position missing" None (Schema.position s "Z");
  Alcotest.(check bool) "mem" true (Schema.mem s "C");
  Alcotest.(check int) "position_exn" 2 (Schema.position_exn s "C")

let test_rejects_duplicates () =
  Alcotest.check_raises "duplicate attrs"
    (Invalid_argument "Schema.make: duplicate attribute \"A\"") (fun () ->
      ignore (Schema.make ~name:"r" [ "A"; "A" ]))

let test_rejects_empty () =
  Alcotest.check_raises "no attrs"
    (Invalid_argument "Schema.make: a schema needs at least one attribute")
    (fun () -> ignore (Schema.make ~name:"r" []));
  Alcotest.check_raises "empty name"
    (Invalid_argument "Schema.make: empty attribute name") (fun () ->
      ignore (Schema.make ~name:"r" [ "A"; "" ]))

let test_attribute_bounds () =
  let s = Schema.make ~name:"r" [ "A" ] in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Schema.attribute: position 1 out of bounds") (fun () ->
      ignore (Schema.attribute s 1))

let test_position_exn_missing () =
  let s = Schema.make ~name:"r" [ "A" ] in
  Alcotest.check_raises "missing attr" Not_found (fun () ->
      ignore (Schema.position_exn s "B"))

let test_equal () =
  let s1 = Schema.make ~name:"r" [ "A"; "B" ] in
  let s2 = Schema.make ~name:"r" [ "A"; "B" ] in
  let s3 = Schema.make ~name:"r" [ "B"; "A" ] in
  let s4 = Schema.make ~name:"q" [ "A"; "B" ] in
  Alcotest.(check bool) "equal" true (Schema.equal s1 s2);
  Alcotest.(check bool) "order matters" false (Schema.equal s1 s3);
  Alcotest.(check bool) "name matters" false (Schema.equal s1 s4)

let test_attributes_fresh () =
  let s = Schema.make ~name:"r" [ "A"; "B" ] in
  let a = Schema.attributes s in
  a.(0) <- "mutated";
  Alcotest.(check string) "internal state protected" "A" (Schema.attribute s 0)

let suite =
  [
    Alcotest.test_case "make and lookup" `Quick test_make_and_lookup;
    Alcotest.test_case "rejects duplicates" `Quick test_rejects_duplicates;
    Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
    Alcotest.test_case "attribute bounds" `Quick test_attribute_bounds;
    Alcotest.test_case "position_exn missing" `Quick test_position_exn_missing;
    Alcotest.test_case "equality" `Quick test_equal;
    Alcotest.test_case "attributes returns a copy" `Quick test_attributes_fresh;
  ]
