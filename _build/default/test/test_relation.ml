open Dq_relation

let schema = Schema.make ~name:"r" [ "A"; "B" ]

let v = Value.of_string

let mk () = Relation.create schema

let test_insert_find () =
  let r = mk () in
  let t = Relation.insert r [| v "a"; v "1" |] in
  Alcotest.(check int) "cardinality" 1 (Relation.cardinality r);
  Alcotest.(check bool) "mem" true (Relation.mem r (Tuple.tid t));
  Alcotest.(check bool) "find" true (Relation.find r (Tuple.tid t) = Some t)

let test_fresh_tids () =
  let r = mk () in
  let t1 = Relation.insert r [| v "a"; v "1" |] in
  let t2 = Relation.insert r [| v "b"; v "2" |] in
  Alcotest.(check bool) "distinct tids" true (Tuple.tid t1 <> Tuple.tid t2)

let test_add_preserves_tid_and_rejects_dup () =
  let r = mk () in
  let t = Tuple.create ~tid:42 [| v "a"; v "1" |] in
  Relation.add r t;
  Alcotest.(check bool) "tid 42 present" true (Relation.mem r 42);
  Alcotest.check_raises "duplicate tid"
    (Invalid_argument "Relation.add: duplicate tid 42") (fun () ->
      Relation.add r (Tuple.copy t));
  (* fresh inserts skip past explicit tids *)
  let t2 = Relation.insert r [| v "b"; v "2" |] in
  Alcotest.(check bool) "next tid above 42" true (Tuple.tid t2 > 42)

let test_delete () =
  let r = mk () in
  let t = Relation.insert r [| v "a"; v "1" |] in
  Alcotest.(check bool) "delete" true (Relation.delete r (Tuple.tid t));
  Alcotest.(check bool) "gone" false (Relation.mem r (Tuple.tid t));
  Alcotest.(check bool) "double delete" false (Relation.delete r (Tuple.tid t));
  Alcotest.(check int) "empty" 0 (Relation.cardinality r)

let test_active_domain_tracking () =
  let r = mk () in
  let t1 = Relation.insert r [| v "x"; v "1" |] in
  let _t2 = Relation.insert r [| v "x"; v "2" |] in
  Alcotest.(check int) "adom A one distinct" 1 (Relation.active_domain_size r 0);
  Alcotest.(check int) "adom B two" 2 (Relation.active_domain_size r 1);
  (* update through set_value keeps adom current *)
  Relation.set_value r t1 0 (v "y");
  Alcotest.(check bool) "y added" true (Relation.in_active_domain r 0 (v "y"));
  Alcotest.(check bool) "x still there (t2)" true (Relation.in_active_domain r 0 (v "x"));
  Relation.set_value r t1 0 (v "x");
  ignore (Relation.delete r (Tuple.tid t1));
  Alcotest.(check bool) "y gone after delete" false
    (Relation.in_active_domain r 0 (v "y"))

let test_nulls_not_in_adom () =
  let r = mk () in
  ignore (Relation.insert r [| Value.null; v "1" |]);
  Alcotest.(check int) "null excluded" 0 (Relation.active_domain_size r 0)

let test_set_value_foreign_tuple () =
  let r = mk () in
  ignore (Relation.insert r [| v "a"; v "1" |]);
  let foreign = Tuple.create ~tid:0 [| v "a"; v "1" |] in
  Alcotest.check_raises "foreign tuple"
    (Invalid_argument "Relation.set_value: tuple not in this relation")
    (fun () -> Relation.set_value r foreign 0 (v "z"))

let test_iteration_order () =
  let r = mk () in
  let tids = List.init 5 (fun i -> Tuple.tid (Relation.insert r [| v (string_of_int i); v "x" |])) in
  let seen = Relation.fold (fun acc t -> Tuple.tid t :: acc) [] r in
  Alcotest.(check (list int)) "insertion order" tids (List.rev seen)

let test_iteration_order_after_deletes () =
  let r = mk () in
  let tids = List.init 100 (fun i -> Tuple.tid (Relation.insert r [| v (string_of_int i); v "x" |])) in
  List.iteri (fun i tid -> if i mod 2 = 0 then ignore (Relation.delete r tid)) tids;
  let expected = List.filteri (fun i _ -> i mod 2 = 1) tids in
  let seen = List.rev (Relation.fold (fun acc t -> Tuple.tid t :: acc) [] r) in
  Alcotest.(check (list int)) "survivors in order" expected seen

let test_copy_deep () =
  let r = mk () in
  let t = Relation.insert r [| v "a"; v "1" |] in
  let r2 = Relation.copy r in
  Relation.set_value r2 (Relation.find_exn r2 (Tuple.tid t)) 0 (v "z");
  Alcotest.check (Alcotest.testable Value.pp Value.equal) "original intact"
    (v "a") (Tuple.get t 0);
  Alcotest.(check int) "copy dif" 1 (Relation.dif r r2)

let test_dif () =
  let r1 = mk () in
  let r2 = mk () in
  let t1 = Relation.insert r1 [| v "a"; v "1" |] in
  Relation.add r2 (Tuple.copy t1);
  Alcotest.(check int) "identical" 0 (Relation.dif r1 r2);
  Relation.set_value r2 (Relation.find_exn r2 (Tuple.tid t1)) 1 (v "9");
  Alcotest.(check int) "one cell" 1 (Relation.dif r1 r2);
  ignore (Relation.insert r2 [| v "b"; v "2" |]);
  Alcotest.(check int) "extra tuple counts arity" 3 (Relation.dif r1 r2);
  Alcotest.(check int) "symmetric" (Relation.dif r1 r2) (Relation.dif r2 r1)

let test_arity_mismatch () =
  let r = mk () in
  Alcotest.check_raises "bad arity" (Invalid_argument "Relation.insert: arity mismatch")
    (fun () -> ignore (Relation.insert r [| v "a" |]))

let suite =
  [
    Alcotest.test_case "insert/find" `Quick test_insert_find;
    Alcotest.test_case "fresh tids" `Quick test_fresh_tids;
    Alcotest.test_case "add preserves tid" `Quick test_add_preserves_tid_and_rejects_dup;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "active domain tracking" `Quick test_active_domain_tracking;
    Alcotest.test_case "nulls not in adom" `Quick test_nulls_not_in_adom;
    Alcotest.test_case "set_value rejects foreign tuples" `Quick
      test_set_value_foreign_tuple;
    Alcotest.test_case "iteration order" `Quick test_iteration_order;
    Alcotest.test_case "iteration order after deletes" `Quick
      test_iteration_order_after_deletes;
    Alcotest.test_case "deep copy" `Quick test_copy_deep;
    Alcotest.test_case "dif" `Quick test_dif;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
  ]
