open Dq_relation

let test_parse_simple () =
  Alcotest.(check (list (list string)))
    "rows" [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv.parse_string "a,b\nc,d\n")

let test_parse_crlf_and_no_trailing_newline () =
  Alcotest.(check (list (list string)))
    "crlf" [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv.parse_string "a,b\r\nc,d")

let test_parse_quoted () =
  Alcotest.(check (list (list string)))
    "quotes" [ [ "a,b"; "he said \"hi\""; "multi\nline" ] ]
    (Csv.parse_string "\"a,b\",\"he said \"\"hi\"\"\",\"multi\nline\"")

let test_parse_empty_cells () =
  Alcotest.(check (list (list string)))
    "empties" [ [ ""; "x"; "" ] ]
    (Csv.parse_string ",x,\n")

let test_unterminated_quote () =
  Alcotest.check_raises "unterminated"
    (Failure "Csv.parse_string: unterminated quoted field") (fun () ->
      ignore (Csv.parse_string "\"oops"))

let test_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_cell "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_cell "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_cell "a\"b")

let test_load_and_save_roundtrip () =
  let text = "A,B,C\n1,NYC,\nx y,\"q,r\",2.5\n" in
  let rel = Csv.load_string ~name:"t" text in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality rel);
  let t0 = Relation.find_exn rel 0 in
  Alcotest.(check bool) "int typed" true (Value.equal (Tuple.get t0 0) (Value.int 1));
  Alcotest.(check bool) "null cell" true (Value.is_null (Tuple.get t0 2));
  let rel2 = Csv.load_string ~name:"t" (Csv.save_string rel) in
  Alcotest.(check int) "roundtrip identical" 0 (Relation.dif rel rel2)

let test_load_ragged () =
  Alcotest.check_raises "ragged row"
    (Failure "Csv.load_string: row 2 has 1 cells, expected 2") (fun () ->
      ignore (Csv.load_string "A,B\nonly_one\n"))

let test_load_empty () =
  Alcotest.check_raises "empty file" (Failure "Csv.load_string: empty input")
    (fun () -> ignore (Csv.load_string ""))

let test_file_roundtrip () =
  let path = Filename.temp_file "dataqual" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rel = Csv.load_string ~name:"t" "A,B\n1,x\n2,y\n" in
      Csv.save_file rel path;
      let rel2 = Csv.load_file path in
      Alcotest.(check int) "file roundtrip" 0 (Relation.dif rel rel2))

let prop_roundtrip =
  (* Cells from a CSV-hostile alphabet: commas, quotes, newlines. *)
  let cell =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; ','; '"'; '\n'; 'z' ]) (1 -- 6))
  in
  QCheck.Test.make ~name:"escape/parse roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 4) cell))
    (fun row ->
      let text = Csv.rows_to_string [ row ] in
      match Csv.parse_string text with [ parsed ] -> parsed = row | _ -> false)

let suite =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse crlf" `Quick test_parse_crlf_and_no_trailing_newline;
    Alcotest.test_case "parse quoted" `Quick test_parse_quoted;
    Alcotest.test_case "empty cells" `Quick test_parse_empty_cells;
    Alcotest.test_case "unterminated quote" `Quick test_unterminated_quote;
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "load/save roundtrip" `Quick test_load_and_save_roundtrip;
    Alcotest.test_case "ragged rows rejected" `Quick test_load_ragged;
    Alcotest.test_case "empty input rejected" `Quick test_load_empty;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
