open Dq_relation
open Dq_cfd
open Dq_core
open Dq_workload

let small_config = Discovery.default_config ~max_lhs_size:2 ~min_support:3 ()

let simple_rel rows =
  let schema = Schema.make ~name:"r" [ "A"; "B"; "C" ] in
  let rel = Relation.create schema in
  List.iter
    (fun (a, b, c) ->
      ignore
        (Relation.insert rel
           [| Value.string a; Value.string b; Value.string c |]))
    rows;
  rel

let test_discovers_plain_fd () =
  (* B is a function of A throughout: expect the FD A -> B. *)
  let rel =
    simple_rel
      [
        ("a1", "x", "p"); ("a1", "x", "q"); ("a2", "y", "p"); ("a2", "y", "q");
        ("a3", "x", "r"); ("a3", "x", "p");
      ]
  in
  let d = Discovery.discover ~config:small_config rel in
  Alcotest.(check bool) "found a variable clause" true (d.Discovery.n_variable >= 1);
  let has_fd =
    List.exists
      (fun (t : Cfd.Tableau.t) ->
        t.Cfd.Tableau.lhs_attrs = [ "A" ]
        && t.Cfd.Tableau.rhs_attrs = [ "B" ]
        && List.exists
             (fun (r : Cfd.Tableau.row) -> List.for_all Pattern.is_wild r.Cfd.Tableau.lhs)
             t.Cfd.Tableau.rows)
      d.Discovery.tableaus
  in
  Alcotest.(check bool) "A -> B present" true has_fd

let test_discovers_constant_rows () =
  (* No global FD from A to B (a1 maps to two values), but the pattern
     (a2 || y) holds with full confidence and support 4. *)
  let rel =
    simple_rel
      [
        ("a1", "x", "p"); ("a1", "z", "q"); ("a2", "y", "p"); ("a2", "y", "q");
        ("a2", "y", "r"); ("a2", "y", "s");
      ]
  in
  let d = Discovery.discover ~config:small_config rel in
  let row_found =
    List.exists
      (fun (t : Cfd.Tableau.t) ->
        t.Cfd.Tableau.lhs_attrs = [ "A" ]
        && t.Cfd.Tableau.rhs_attrs = [ "B" ]
        && List.exists
             (fun (r : Cfd.Tableau.row) ->
               match r.Cfd.Tableau.lhs, r.Cfd.Tableau.rhs with
               | [ Pattern.Const a ], [ Pattern.Const b ] ->
                 Value.equal a (Value.string "a2") && Value.equal b (Value.string "y")
               | _ -> false)
             t.Cfd.Tableau.rows)
      d.Discovery.tableaus
  in
  Alcotest.(check bool) "(a2 || y) mined" true row_found

let test_mined_cfds_hold () =
  (* Whatever is mined from an instance must be satisfied by it. *)
  let ds =
    Datagen.generate
      {
        Datagen.n_tuples = 400;
        n_cities = 8;
        n_streets_per_city = 4;
        n_items = 30;
        n_customers = 90;
        tableau_coverage = 0.8;
        seed = 17;
      }
  in
  let d =
    Discovery.discover
      ~config:(Discovery.default_config ~max_lhs_size:1 ~min_support:5 ())
      ds.Datagen.dopt
  in
  let sigma = Discovery.resolve d in
  Alcotest.(check bool) "instance satisfies mined sigma" true
    (Violation.satisfies ds.Datagen.dopt sigma);
  (* The generator's world has zip -> CT; discovery must find it. *)
  let found =
    List.exists
      (fun (t : Cfd.Tableau.t) ->
        t.Cfd.Tableau.lhs_attrs = [ "zip" ] && t.Cfd.Tableau.rhs_attrs = [ "CT" ])
      d.Discovery.tableaus
  in
  Alcotest.(check bool) "zip -> CT rediscovered" true found

let test_mined_cfds_catch_noise () =
  (* CFDs mined from clean data should flag noise injected later. *)
  let ds =
    Datagen.generate
      {
        Datagen.n_tuples = 600;
        n_cities = 8;
        n_streets_per_city = 4;
        n_items = 30;
        n_customers = 90;
        tableau_coverage = 0.8;
        seed = 19;
      }
  in
  let d =
    Discovery.discover
      ~config:(Discovery.default_config ~max_lhs_size:2 ~min_support:5 ())
      ds.Datagen.dopt
  in
  let sigma = Discovery.resolve d in
  let info = Noise.inject (Noise.default_params ~rate:0.05 ~seed:19 ()) ds in
  Alcotest.(check bool) "dirty data violates mined sigma" false
    (Violation.satisfies info.Noise.dirty sigma)

let test_subset_pruning () =
  (* When (a || y) already forces B, the two-attribute row (a, c || y)
     must not be emitted. *)
  let rel =
    simple_rel
      [
        ("a", "y", "c"); ("a", "y", "c"); ("a", "y", "c"); ("a", "y", "c");
        ("b", "z", "c"); ("b", "z", "c"); ("b", "z", "c"); ("b", "z", "c");
      ]
  in
  let d = Discovery.discover ~config:small_config rel in
  let two_attr_rows_to_b =
    List.filter
      (fun (t : Cfd.Tableau.t) ->
        List.length t.Cfd.Tableau.lhs_attrs = 2
        && t.Cfd.Tableau.rhs_attrs = [ "B" ]
        && List.exists
             (fun (r : Cfd.Tableau.row) ->
               not (List.for_all Pattern.is_wild r.Cfd.Tableau.lhs))
             t.Cfd.Tableau.rows)
      d.Discovery.tableaus
  in
  Alcotest.(check (list string)) "no redundant 2-attribute constant rows" []
    (List.map (fun (t : Cfd.Tableau.t) -> t.Cfd.Tableau.name) two_attr_rows_to_b)

let test_min_support_respected () =
  let rel =
    simple_rel [ ("a", "x", "1"); ("a", "x", "2"); ("b", "y", "1") ]
  in
  let config = Discovery.default_config ~max_lhs_size:1 ~min_support:5 () in
  let d = Discovery.discover ~config rel in
  Alcotest.(check int) "no constant rows below support" 0 d.Discovery.n_constant

let test_confidence_tolerance () =
  (* 7 of 8 tuples with A=a agree on B=y: mined at confidence 0.8, not 1. *)
  let rel =
    simple_rel
      [
        ("a", "y", "1"); ("a", "y", "2"); ("a", "y", "3"); ("a", "y", "4");
        ("a", "y", "5"); ("a", "y", "6"); ("a", "y", "7"); ("a", "z", "8");
      ]
  in
  let mined confidence =
    let d =
      Discovery.discover
        ~config:
          (Discovery.default_config ~max_lhs_size:1 ~min_support:4
             ~min_confidence:confidence ())
        rel
    in
    List.exists
      (fun (t : Cfd.Tableau.t) ->
        t.Cfd.Tableau.lhs_attrs = [ "A" ]
        && t.Cfd.Tableau.rhs_attrs = [ "B" ]
        && List.exists
             (fun (r : Cfd.Tableau.row) ->
               not (List.for_all Pattern.is_wild r.Cfd.Tableau.lhs))
             t.Cfd.Tableau.rows)
      d.Discovery.tableaus
  in
  Alcotest.(check bool) "tolerant mining finds (a || y)" true (mined 0.8);
  Alcotest.(check bool) "exact mining does not" false (mined 1.0)

let suite =
  [
    Alcotest.test_case "discovers plain FDs" `Quick test_discovers_plain_fd;
    Alcotest.test_case "discovers constant rows" `Quick test_discovers_constant_rows;
    Alcotest.test_case "mined CFDs hold on the source" `Quick test_mined_cfds_hold;
    Alcotest.test_case "mined CFDs catch later noise" `Quick
      test_mined_cfds_catch_noise;
    Alcotest.test_case "subset pruning" `Quick test_subset_pruning;
    Alcotest.test_case "min support respected" `Quick test_min_support_respected;
    Alcotest.test_case "confidence tolerance" `Quick test_confidence_tolerance;
  ]
